// Reproduces the deadlock demonstrations of Section 6.1 in the wormhole
// simulator, then shows that the Chapter 6 algorithms drain the same
// workloads:
//
//  1. Fig. 6.1/6.2 -- two simultaneous nCUBE-2 binomial broadcasts on a
//     3-cube acquire each other's channels and block forever.
//  2. Fig. 6.4 -- two X-first multicast trees on a 3x4 mesh deadlock.
//  3. The same hypercube workload under dual-path routing completes.
//  4. The same mesh workload under double-channel X-first trees completes.
#include <cstdio>

#include "core/dc_xfirst_tree.hpp"
#include "core/dual_path.hpp"
#include "core/naive_tree.hpp"
#include "core/xfirst_mt.hpp"
#include "evsim/scheduler.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh2d.hpp"
#include "wormhole/deadlock.hpp"
#include "wormhole/network.hpp"
#include "wormhole/worm.hpp"

namespace {

using namespace mcnet;

void report(const char* title, const worm::Network& net, std::uint64_t expected_messages) {
  std::printf("%s\n", title);
  std::printf("  messages completed: %llu / %llu; network idle: %s\n",
              static_cast<unsigned long long>(net.messages_completed()),
              static_cast<unsigned long long>(expected_messages),
              net.idle() ? "yes" : "no");
  const worm::DeadlockReport dl = worm::check_deadlock(net);
  if (dl.deadlocked()) {
    std::printf("  DEADLOCK detected -- %s", dl.description.c_str());
  } else {
    std::printf("  no deadlock\n");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using mcast::MulticastRequest;
  const worm::WormholeParams params{.flit_time = 50e-9, .message_flits = 128,
                                    .channel_copies = 1};

  // --- 1. nCUBE-2 broadcasts on a 3-cube (Fig. 6.1) -------------------------
  {
    const topo::Hypercube cube(3);
    evsim::Scheduler sched;
    worm::Network net(cube, params, sched);
    MulticastRequest req0{0b000, {}}, req1{0b001, {}};
    for (topo::NodeId d = 0; d < 8; ++d) {
      if (d != req0.source) req0.destinations.push_back(d);
      if (d != req1.source) req1.destinations.push_back(d);
    }
    net.inject(worm::make_worm_specs(cube, binomial_broadcast_route(cube, req0), 1));
    net.inject(worm::make_worm_specs(cube, binomial_broadcast_route(cube, req1), 1));
    sched.run();
    report("[1] two binomial broadcasts from 000 and 001 on a 3-cube:", net, 2);
  }

  // --- 2. X-first multicast trees on a 3x4 mesh (Fig. 6.4) ------------------
  {
    const topo::Mesh2D mesh(4, 3);
    evsim::Scheduler sched;
    worm::Network net(mesh, params, sched);
    // Fig. 6.4: M0: source (1,1) -> {(0,2), (3,1)} acquires [(1,1),(0,1)]
    // and needs [(2,1),(3,1)]; M1: source (2,1) -> {(0,1), (3,0)} holds
    // [(2,1),(3,1)] and needs [(1,1),(0,1)].
    const MulticastRequest m0{mesh.node(1, 1), {mesh.node(0, 2), mesh.node(3, 1)}};
    const MulticastRequest m1{mesh.node(2, 1), {mesh.node(0, 1), mesh.node(3, 0)}};
    net.inject(worm::make_worm_specs(mesh, xfirst_mt_route(mesh, m0), 1));
    net.inject(worm::make_worm_specs(mesh, xfirst_mt_route(mesh, m1), 1));
    sched.run();
    report("[2] two X-first multicast trees on a mesh (Fig. 6.4 pattern):", net, 2);
  }

  // --- 3. Same hypercube workload, dual-path routing -------------------------
  {
    const topo::Hypercube cube(3);
    const ham::HypercubeGrayLabeling lab(cube);
    evsim::Scheduler sched;
    worm::Network net(cube, params, sched);
    MulticastRequest req0{0b000, {}}, req1{0b001, {}};
    for (topo::NodeId d = 0; d < 8; ++d) {
      if (d != req0.source) req0.destinations.push_back(d);
      if (d != req1.source) req1.destinations.push_back(d);
    }
    net.inject(worm::make_worm_specs(cube, dual_path_route(cube, lab, req0), 1));
    net.inject(worm::make_worm_specs(cube, dual_path_route(cube, lab, req1), 1));
    sched.run();
    report("[3] the same broadcasts routed dual-path (deadlock-free):", net, 2);
  }

  // --- 4. Mesh workload on double channels (Section 6.2.1) -------------------
  {
    const topo::Mesh2D mesh(4, 3);
    evsim::Scheduler sched;
    worm::Network net(mesh, {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 2},
                      sched);
    const MulticastRequest m0{mesh.node(1, 1), {mesh.node(0, 2), mesh.node(3, 1)}};
    const MulticastRequest m1{mesh.node(2, 1), {mesh.node(0, 1), mesh.node(3, 0)}};
    net.inject(worm::make_worm_specs(mesh, dc_xfirst_tree_route(mesh, m0), 2));
    net.inject(worm::make_worm_specs(mesh, dc_xfirst_tree_route(mesh, m1), 2));
    sched.run();
    report("[4] the same mesh multicasts as double-channel X-first trees:", net, 2);
  }
  return 0;
}
