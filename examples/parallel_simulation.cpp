// Parallel logic-circuit simulation -- the motivating workload of Fig. 1.2:
// "the output of a gate may become the input of some connected gates", so
// after each evaluation wave a node must deliver the same value message to
// an arbitrary set of other nodes: a multicast.
//
// A random layered circuit is partitioned over the 16 nodes of a 4x4 mesh.
// Each wave, every node owning gates with off-node fan-out issues one
// multicast to the set of nodes hosting successor gates; the next wave
// starts when every message of the current wave has been delivered.  The
// program reports the communication makespan per multicast algorithm.
//
//   $ ./examples/parallel_simulation
#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "core/route_factory.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "wormhole/network.hpp"
#include "wormhole/worm.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

struct Wave {
  // For each sending node: the set of receiving nodes.
  std::vector<std::pair<topo::NodeId, std::vector<topo::NodeId>>> multicasts;
};

// Synthesise a layered random circuit and reduce it to per-wave multicast
// patterns between mesh nodes.
std::vector<Wave> make_circuit_waves(const topo::Mesh2D& mesh, std::uint32_t waves,
                                     std::uint32_t gates_per_node, std::uint64_t seed) {
  evsim::Rng rng(seed);
  std::vector<Wave> result(waves);
  for (Wave& wave : result) {
    for (topo::NodeId sender = 0; sender < mesh.num_nodes(); ++sender) {
      std::set<topo::NodeId> receivers;
      for (std::uint32_t g = 0; g < gates_per_node; ++g) {
        // Each gate fans out to 1..3 successor gates on random nodes.
        const std::uint32_t fanout = rng.uniform_int(1, 3);
        for (std::uint32_t f = 0; f < fanout; ++f) {
          const topo::NodeId r = rng.uniform_int(0, mesh.num_nodes() - 1);
          if (r != sender) receivers.insert(r);
        }
      }
      if (!receivers.empty()) {
        wave.multicasts.emplace_back(
            sender, std::vector<topo::NodeId>(receivers.begin(), receivers.end()));
      }
    }
  }
  return result;
}

double run_circuit(const mcast::MeshRoutingSuite& suite, const std::vector<Wave>& waves,
                   Algorithm algo, std::uint8_t copies) {
  const topo::Mesh2D& mesh = suite.mesh();
  evsim::Scheduler sched;
  worm::Network net(
      mesh, {.flit_time = 50e-9, .message_flits = 32, .channel_copies = copies}, sched);
  worm::NetworkHooks hooks;
  std::uint64_t outstanding = 0;
  std::size_t next_wave = 0;

  std::function<void()> launch_wave = [&] {
    if (next_wave >= waves.size()) return;
    const Wave& wave = waves[next_wave++];
    outstanding = wave.multicasts.size();
    for (const auto& [sender, receivers] : wave.multicasts) {
      net.inject(worm::make_worm_specs(
          mesh, suite.route(algo, mcast::MulticastRequest{sender, receivers}), copies));
    }
  };
  hooks.on_message_done = [&](std::uint64_t, double) {
    if (--outstanding == 0) launch_wave();  // barrier between waves
  };
  net.set_hooks(std::move(hooks));
  launch_wave();
  sched.run();
  return sched.now();
}

}  // namespace

int main() {
  const topo::Mesh2D mesh(4, 4);
  const mcast::MeshRoutingSuite suite(mesh);
  const std::vector<Wave> waves = make_circuit_waves(mesh, /*waves=*/20,
                                                     /*gates_per_node=*/6, /*seed=*/2026);
  std::size_t total_multicasts = 0;
  for (const Wave& w : waves) total_multicasts += w.multicasts.size();
  std::printf("parallel circuit simulation on a 4x4 mesh: %zu waves, %zu multicasts,\n"
              "32-byte value messages, barrier between waves\n\n",
              waves.size(), total_multicasts);
  std::printf("%-22s %10s %22s\n", "algorithm", "channels", "comm. makespan (us)");
  struct Row {
    Algorithm algo;
    std::uint8_t copies;
  };
  for (const Row& row :
       {Row{Algorithm::kMultiUnicast, 1}, Row{Algorithm::kDualPath, 1},
        Row{Algorithm::kMultiPath, 1}, Row{Algorithm::kFixedPath, 1},
        Row{Algorithm::kDCXFirstTree, 2}}) {
    const double t = run_circuit(suite, waves, row.algo, row.copies);
    std::printf("%-22s %10u %22.2f\n", std::string(algorithm_name(row.algo)).c_str(),
                row.copies, t * 1e6);
  }
  return 0;
}
