// Quickstart: route one multicast on an 8x8 mesh with every algorithm,
// compare traffic, then replay the dual-path route through the wormhole
// simulator and print per-destination latencies.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "core/router.hpp"
#include "evsim/scheduler.hpp"
#include "wormhole/network.hpp"

int main() {
  using namespace mcnet;
  using mcast::Algorithm;

  // 1. Build the topology.  make_router() binds an algorithm to it
  //    (labelings, Hamiltonian cycle and unicast routing are derived once,
  //    up front, inside the router's suite).
  const topo::Mesh2D mesh(8, 8);

  // 2. One multicast: source (3,3), seven destinations.
  const mcast::MulticastRequest request{
      mesh.node(3, 3),
      {mesh.node(0, 0), mesh.node(7, 0), mesh.node(5, 2), mesh.node(1, 4), mesh.node(6, 6),
       mesh.node(0, 7), mesh.node(7, 7)}};
  request.validate(mesh.num_nodes());

  std::printf("multicast from node (3,3) to %zu destinations on %s\n\n",
              request.destinations.size(), mesh.name().c_str());
  std::printf("%-20s %10s %12s %10s %10s\n", "algorithm", "traffic", "additional",
              "max hops", "dl-free");
  for (const Algorithm a :
       {Algorithm::kMultiUnicast, Algorithm::kBroadcast, Algorithm::kSortedMP,
        Algorithm::kGreedyST, Algorithm::kXFirstMT, Algorithm::kDividedGreedyMT,
        Algorithm::kDualPath, Algorithm::kMultiPath, Algorithm::kFixedPath,
        Algorithm::kDCXFirstTree}) {
    const auto router = mcast::make_router(mesh, a);
    const mcast::MulticastRoute route = router->route(request);
    verify_route(mesh, request, route);
    std::printf("%-20s %10llu %12lld %10u %10s\n", std::string(router->name()).c_str(),
                static_cast<unsigned long long>(route.traffic()),
                static_cast<long long>(
                    route.additional_traffic(request.destinations.size())),
                route.max_delivery_hops(), router->deadlock_free() ? "yes" : "no");
  }

  // 3. Replay the dual-path route in the flit-level wormhole simulator:
  //    128-byte messages over 20 Mbyte/s channels (the paper's setting).
  evsim::Scheduler sched;
  worm::Network net(mesh, {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 1},
                    sched);
  worm::NetworkHooks hooks;
  hooks.on_delivery = [&mesh](std::uint64_t, topo::NodeId dest, double latency) {
    const topo::Coord2 c = mesh.coord(dest);
    std::printf("  delivered to (%d,%d) after %.2f us\n", c.x, c.y, latency * 1e6);
  };
  net.set_hooks(std::move(hooks));

  std::printf("\ndual-path wormhole replay (contention-free):\n");
  const auto dual = mcast::make_router(mesh, Algorithm::kDualPath, 1);
  net.inject(dual->specs(dual->route(request)));
  sched.run();
  std::printf("network idle: %s\n", net.idle() ? "yes" : "no");
  return 0;
}
