// Reproduces the illustrative routing examples of Section 5.4 and
// Section 6.2.2 as ASCII diagrams: the sorted-MP path in a 4x4 mesh
// (Fig. 5.7), the greedy Steiner tree in an 8x8 mesh (Fig. 5.9), the
// X-first and divided-greedy trees in a 6x6 mesh (Figs. 5.11/5.12), and
// the dual-/multi-/fixed-path patterns of Figs. 6.13/6.16/6.17.
#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "core/route_factory.hpp"
#include "viz/ascii.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;
using topo::Mesh2D;
using topo::NodeId;

void show(const char* title, const Mesh2D& mesh, const mcast::MeshRoutingSuite& suite,
          Algorithm algo, const mcast::MulticastRequest& req) {
  const mcast::MulticastRoute route = suite.route(algo, req);
  verify_route(mesh, req, route);
  std::printf("%s\n", title);
  std::printf("algorithm %s: traffic %llu, max delivery %u hops\n",
              std::string(algorithm_name(algo)).c_str(),
              static_cast<unsigned long long>(route.traffic()), route.max_delivery_hops());
  std::string art = viz::render_mesh_route(mesh, req, route);
  // Indent for readability.
  std::printf("  ");
  for (const char c : art) {
    std::putchar(c);
    if (c == '\n') std::printf("  ");
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace mcnet;

  {
    // Fig. 5.7: sorted MP in a 4x4 mesh, source 9, K = {0, 1, 6, 12}.
    const Mesh2D mesh(4, 4);
    const mcast::MeshRoutingSuite suite(mesh);
    const mcast::MulticastRequest req{9, {0, 1, 6, 12}};
    show("=== Fig. 5.7: sorted MP, 4x4 mesh, source node 9 ===", mesh, suite,
         Algorithm::kSortedMP, req);
  }
  {
    // Fig. 5.9: greedy ST in an 8x8 mesh, source [2,7].
    const Mesh2D mesh(8, 8);
    const mcast::MeshRoutingSuite suite(mesh);
    const mcast::MulticastRequest req{
        mesh.node(2, 7),
        {mesh.node(0, 5), mesh.node(2, 3), mesh.node(4, 1), mesh.node(6, 3), mesh.node(7, 4)}};
    show("=== Fig. 5.9: greedy Steiner tree, 8x8 mesh, source (2,7) ===", mesh, suite,
         Algorithm::kGreedyST, req);
  }
  {
    const Mesh2D mesh(6, 6);
    const mcast::MeshRoutingSuite suite(mesh);
    const mcast::MulticastRequest ch5{
        mesh.node(3, 2),
        {mesh.node(2, 0), mesh.node(3, 0), mesh.node(4, 0), mesh.node(1, 1), mesh.node(5, 1),
         mesh.node(0, 2), mesh.node(1, 3), mesh.node(2, 5), mesh.node(3, 5), mesh.node(5, 5)}};
    show("=== Fig. 5.11: X-first multicast tree, 6x6 mesh, source (3,2) ===", mesh, suite,
         Algorithm::kXFirstMT, ch5);
    show("=== Fig. 5.12: divided greedy multicast tree, same request ===", mesh, suite,
         Algorithm::kDividedGreedyMT, ch5);

    const mcast::MulticastRequest ch6{
        mesh.node(3, 2),
        {mesh.node(0, 0), mesh.node(0, 2), mesh.node(0, 5), mesh.node(1, 3), mesh.node(4, 5),
         mesh.node(5, 0), mesh.node(5, 1), mesh.node(5, 3), mesh.node(5, 4)}};
    show("=== Fig. 6.13: dual-path routing, 6x6 mesh, source (3,2) ===", mesh, suite,
         Algorithm::kDualPath, ch6);
    show("=== Fig. 6.16: multi-path routing, same request ===", mesh, suite,
         Algorithm::kMultiPath, ch6);
    show("=== Fig. 6.17: fixed-path routing, same request ===", mesh, suite,
         Algorithm::kFixedPath, ch6);
  }
  {
    // Figs. 6.19 / 6.21: dual- and multi-path routing in a 4-cube, source
    // 1100, destinations 0100, 0011, 0111, 1000, 1111 (printed as node
    // sequences; '!' marks a delivery).
    const topo::Hypercube cube(4);
    const mcast::CubeRoutingSuite csuite(cube);
    const mcast::MulticastRequest req{0b1100, {0b0100, 0b0011, 0b0111, 0b1000, 0b1111}};
    for (const auto& [title, algo] :
         {std::pair{"=== Fig. 6.19: dual-path routing, 4-cube, source 1100 ===",
                    Algorithm::kDualPath},
          {"=== Fig. 6.21: multi-path routing, 4-cube, source 1100 ===",
           Algorithm::kMultiPath}}) {
      const mcast::MulticastRoute route = csuite.route(algo, req);
      verify_route(cube, req, route);
      std::printf("%s\ntraffic %llu, max delivery %u hops\n%s\n", title,
                  static_cast<unsigned long long>(route.traffic()),
                  route.max_delivery_hops(), viz::describe_route(route).c_str());
    }
  }
  return 0;
}
