// A full dynamic simulation in the style of Section 7.2, plus a small
// demonstration of the CSIM-style coroutine substrate (processes,
// facilities, mailboxes) the simulator is built on.
//
//   $ ./examples/dynamic_sim
#include <cstdio>

#include "core/route_cache.hpp"
#include "evsim/facility.hpp"
#include "evsim/process.hpp"
#include "evsim/scheduler.hpp"
#include "wormhole/experiment.hpp"

namespace {

using namespace mcnet;

// --- CSIM-style substrate demo ----------------------------------------------
// Three "processors" contend for one shared bus facility and report via a
// mailbox -- the programming model of the paper's CSIM simulations.
evsim::Process processor(evsim::Scheduler& sched, evsim::Facility& bus,
                         evsim::Mailbox<int>& done, int id, double think_us) {
  for (int round = 0; round < 3; ++round) {
    co_await evsim::delay(sched, think_us * 1e-6);
    co_await bus.acquire();
    co_await evsim::delay(sched, 5e-6);  // 5 us bus transaction
    bus.release();
  }
  done.send(id);
}

evsim::Process collector(evsim::Scheduler& sched, evsim::Mailbox<int>& done, int n) {
  for (int i = 0; i < n; ++i) {
    const int id = co_await done.receive();
    std::printf("  processor %d finished at t = %.1f us\n", id, sched.now() * 1e6);
  }
}

void csim_demo() {
  std::printf("CSIM-style substrate demo (3 processes, 1 bus facility):\n");
  evsim::Scheduler sched;
  evsim::Facility bus(sched, 1);
  evsim::Mailbox<int> done(sched);
  collector(sched, done, 3);
  processor(sched, bus, done, 0, 2.0);
  processor(sched, bus, done, 1, 3.0);
  processor(sched, bus, done, 2, 4.0);
  sched.run();
  std::printf("\n");
}

}  // namespace

int main() {
  csim_demo();

  // --- Dynamic wormhole experiment -----------------------------------------
  // The paper's reference point: 8x8 mesh, 128-byte messages, 20 Mbyte/s
  // channels, ~10 destinations, 300 us mean interarrival per node.
  const topo::Mesh2D mesh(8, 8);

  std::printf("dynamic wormhole simulation, 8x8 mesh, 300 us interarrival:\n");
  std::printf("%-16s %14s %12s %12s %10s\n", "algorithm", "latency (us)", "95%-CI",
              "deliveries", "converged");
  for (const mcast::Algorithm algo :
       {mcast::Algorithm::kDualPath, mcast::Algorithm::kMultiPath,
        mcast::Algorithm::kFixedPath}) {
    worm::DynamicConfig cfg;
    cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 1};
    cfg.traffic = {.mean_interarrival_s = 300e-6,
                   .avg_destinations = 10,
                   .fixed_destinations = false,
                   .exponential_interarrival = false,
                   .seed = 4242};
    cfg.target_messages = 1500;
    cfg.max_messages = 5000;
    cfg.max_sim_time_s = 0.5;
    const auto router = mcast::make_caching_router(mesh, algo, 1);
    const worm::DynamicResult r = run_dynamic(*router, cfg);
    std::printf("%-16s %14.2f %12.2f %12llu %10s\n",
                std::string(router->name()).c_str(), r.mean_latency_us, r.ci_half_us,
                static_cast<unsigned long long>(r.deliveries), r.converged ? "yes" : "no");
  }
  return 0;
}
