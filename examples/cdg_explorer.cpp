// Channel-dependency-graph explorer: mechanises the Dally-Seitz deadlock
// analyses of Chapters 2 and 6 on small networks and prints the verdicts
// (and a concrete dependency cycle when one exists).
//
//   $ ./examples/cdg_explorer
#include <cstdio>

#include "cdg/analyzers.hpp"
#include "cdg/channel_graph.hpp"
#include "topology/hamiltonian.hpp"

namespace {

using namespace mcnet;
using topo::NodeId;

void analyse(const char* name, const topo::Topology& t, const cdg::RoutingFunction& route) {
  const cdg::ChannelGraph g = cdg::build_unicast_cdg(t, route);
  const auto cycle = g.find_cycle();
  std::printf("%-44s %5zu deps  %s\n", name, g.num_dependencies(),
              cycle ? "CYCLIC (deadlock possible)" : "acyclic (deadlock-free)");
  if (cycle) {
    std::printf("  cycle:");
    for (const topo::ChannelId c : *cycle) {
      const topo::ChannelEnds e = t.channel_ends(c);
      std::printf(" [%u->%u]", e.from, e.to);
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  const topo::Mesh2D mesh(4, 4);
  const ham::MeshBoustrophedonLabeling mlab(mesh);
  const topo::Hypercube cube(3);
  const ham::HypercubeGrayLabeling clab(cube);

  std::printf("=== channel dependency graphs on a 4x4 mesh ===\n");
  analyse("X-first (XY) routing", mesh, cdg::xfirst_routing(mesh));
  analyse("label routing R, high-channel subnetwork", mesh,
          cdg::label_routing(mesh, mlab, true));
  analyse("label routing R, low-channel subnetwork", mesh,
          cdg::label_routing(mesh, mlab, false));

  // The classic cyclic counter-example: a routing with all four turns.
  const auto quadrant_turns = [&mesh](NodeId cur, NodeId dst) -> NodeId {
    if (cur == dst) return topo::kInvalidNode;
    const topo::Coord2 c = mesh.coord(cur);
    const topo::Coord2 d = mesh.coord(dst);
    const std::int32_t sx = d.x > c.x ? 1 : (d.x < c.x ? -1 : 0);
    const std::int32_t sy = d.y > c.y ? 1 : (d.y < c.y ? -1 : 0);
    if (sx == 0) return mesh.node(c.x, c.y + sy);
    if (sy == 0) return mesh.node(c.x + sx, c.y);
    return (sx > 0) == (sy > 0) ? mesh.node(c.x + sx, c.y) : mesh.node(c.x, c.y + sy);
  };
  analyse("quadrant-turn routing (all four turns)", mesh, quadrant_turns);

  std::printf("\n=== channel dependency graphs on a 3-cube ===\n");
  analyse("e-cube routing", cube, cdg::ecube_routing(cube));
  analyse("label routing R, high-channel subnetwork", cube,
          cdg::label_routing(cube, clab, true));
  analyse("label routing R, low-channel subnetwork", cube,
          cdg::label_routing(cube, clab, false));

  std::printf("\n=== node-graph acyclicity of the Chapter 6 partitions ===\n");
  const bool high_ok = cdg::subnetwork_is_acyclic(
      mesh, [&](NodeId u, NodeId v) { return mlab.label(u) < mlab.label(v); });
  const bool low_ok = cdg::subnetwork_is_acyclic(
      mesh, [&](NodeId u, NodeId v) { return mlab.label(u) > mlab.label(v); });
  std::printf("mesh high-channel subnetwork: %s\n", high_ok ? "acyclic" : "cyclic");
  std::printf("mesh low-channel subnetwork:  %s\n", low_ok ? "acyclic" : "cyclic");
  return 0;
}
