// Barrier synchronisation via multicast (Section 1.2: "barrier
// synchronization can be efficiently implemented using multicast
// communication").
//
// All 64 nodes of an 8x8 mesh arrive at a barrier at slightly staggered
// times; each reports to the root with a short unicast, and once the root
// has heard from everyone it releases the barrier with ONE multicast to
// all 63 nodes.  The barrier cost is dominated by that release multicast,
// so the choice of multicast algorithm is directly visible.
//
//   $ ./examples/barrier_sync
#include <cstdio>

#include "core/route_factory.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "wormhole/network.hpp"
#include "wormhole/worm.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

double run_barrier(const mcast::MeshRoutingSuite& suite, Algorithm release_algo,
                   std::uint8_t copies) {
  const topo::Mesh2D& mesh = suite.mesh();
  const topo::NodeId root = mesh.node(3, 3);
  evsim::Scheduler sched;
  worm::Network net(
      mesh, {.flit_time = 50e-9, .message_flits = 8, .channel_copies = copies}, sched);

  // Phase 1: arrival reports (8-byte unicasts) from every non-root node,
  // staggered over the first 2 us.
  std::uint32_t arrived = 0;
  double barrier_done = -1.0;
  evsim::Rng rng(7);

  worm::NetworkHooks hooks;
  hooks.on_delivery = [&](std::uint64_t, topo::NodeId dest, double) {
    if (dest == root) {
      if (++arrived == mesh.num_nodes() - 1) {
        // Phase 2: release multicast to everyone.
        mcast::MulticastRequest release{root, {}};
        for (topo::NodeId d = 0; d < mesh.num_nodes(); ++d) {
          if (d != root) release.destinations.push_back(d);
        }
        net.inject(worm::make_worm_specs(mesh, suite.route(release_algo, release), copies));
      }
    }
  };
  hooks.on_message_done = [&](std::uint64_t, double) {
    // The last completed message is the release multicast; remember when.
    barrier_done = sched.now();
  };
  net.set_hooks(std::move(hooks));

  for (topo::NodeId n = 0; n < mesh.num_nodes(); ++n) {
    if (n == root) continue;
    sched.schedule_in(rng.uniform(0.0, 2e-6), [&net, &suite, n, root, copies] {
      net.inject(worm::make_worm_specs(
          suite.mesh(), suite.route(Algorithm::kDualPath, {n, {root}}), copies));
    });
  }
  sched.run();
  return barrier_done;
}

}  // namespace

int main() {
  const topo::Mesh2D mesh(8, 8);
  const mcast::MeshRoutingSuite suite(mesh);

  std::printf("barrier synchronisation on an 8x8 mesh (root (3,3), 8-byte messages)\n\n");
  std::printf("%-22s %10s %16s\n", "release multicast", "channels", "barrier time (us)");
  struct Row {
    Algorithm algo;
    std::uint8_t copies;
  };
  for (const Row& row : {Row{Algorithm::kDualPath, 1}, Row{Algorithm::kMultiPath, 1},
                         Row{Algorithm::kFixedPath, 1}, Row{Algorithm::kBroadcast, 1},
                         Row{Algorithm::kDCXFirstTree, 2}}) {
    const double t = run_barrier(suite, row.algo, row.copies);
    std::printf("%-22s %10u %16.2f\n", std::string(algorithm_name(row.algo)).c_str(),
                row.copies, t * 1e6);
  }
  std::printf("\n(the release multicast dominates; tree shapes deliver in parallel\n"
              "while single-path shapes serialise the long Hamiltonian walk)\n");
  return 0;
}
