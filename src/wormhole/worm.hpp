// Worm specifications: the simulator-facing form of a multicast route.
//
// Both path and tree multicasts are modelled as lock-step worm trees (a
// path is the single-branch special case, where lock-step degenerates to
// ordinary per-hop wormhole advancement):
//
//  * at global progress p the worm tries to acquire every link at depth
//    p + 1; following the nCUBE-2 semantics of Section 6.1, granted
//    channels are held while the worm waits for the rest of the frontier;
//  * when the whole frontier is granted, every flit of the worm advances
//    one hop per flit time;
//  * the link at depth d is released when the tail flit has crossed it
//    (progress d + L for an L-flit message) and the destination reached
//    through depth d receives the complete message at progress d + L - 1;
//  * when the deepest branch arrives, the remaining flits drain into the
//    destinations at channel rate.
#pragma once

#include <cstdint>
#include <vector>

#include "core/multicast.hpp"
#include "topology/mesh2d.hpp"
#include "topology/topology.hpp"

namespace mcnet::worm {

using topo::ChannelId;
using topo::NodeId;

struct WormLink {
  ChannelId channel = topo::kInvalidChannel;
  NodeId from = topo::kInvalidNode;
  NodeId to = topo::kInvalidNode;
  std::uint32_t depth = 1;  // hops from the source; root links have depth 1
  std::int8_t copy = -1;    // kAnyCopy, or a pinned physical copy
};

/// One worm: links sorted by ascending depth, plus the destinations
/// delivered at each depth.
struct WormSpec {
  std::vector<WormLink> links;
  /// (depth, destination) pairs sorted by depth.
  std::vector<std::pair<std::uint32_t, NodeId>> deliveries;

  [[nodiscard]] std::uint32_t max_depth() const {
    return links.empty() ? 0 : links.back().depth;
  }
};

/// Convert a MulticastRoute into worm specs with the generic copy policy:
/// path worms use any copy (their subnetworks are acyclic per label
/// direction regardless of copy), tree worms pin copy channel_class %
/// copies.  Throws if a worm would use the same (channel, pinned copy)
/// twice (such a worm would self-deadlock).
[[nodiscard]] std::vector<WormSpec> make_worm_specs(const topo::Topology& topology,
                                                    const mcast::MulticastRoute& route,
                                                    std::uint8_t copies);

/// Mesh-aware conversion: trees whose channel_class is a quadrant index
/// (the double-channel X-first algorithm) pin each hop to the copy its
/// quadrant subnetwork owns (Section 6.2.1's channel partition).
[[nodiscard]] std::vector<WormSpec> make_worm_specs(const topo::Mesh2D& mesh,
                                                    const mcast::MulticastRoute& route,
                                                    std::uint8_t copies);

}  // namespace mcnet::worm
