// The wormhole network simulator: drives worm trees through the channel
// pool on an evsim::Scheduler, records per-destination latency, and exposes
// the blocked-worm wait-for graph for deadlock analysis.
//
// Fault model: the network shares a fault::FaultState with the routing
// layer.  When a channel or node fails mid-flight, every worm holding or
// requesting the failed hardware is killed -- its channels release (waiters
// cascade normally), its queued requests are cancelled, and each
// not-yet-delivered destination is reported through the on_drop hook and
// counted.  A worm whose frontier reaches a failed channel later is killed
// at that point, so no worm ever blocks on dead hardware.  Recovery makes
// the hardware acquirable again; it never resurrects killed worms (the
// service layer's retry path re-sends instead).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "evsim/scheduler.hpp"
#include "fault/fault_state.hpp"
#include "topology/topology.hpp"
#include "wormhole/channel_pool.hpp"
#include "wormhole/worm.hpp"

namespace mcnet::obs {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace mcnet::obs

namespace mcnet::worm {

struct WormholeParams {
  /// Seconds for one flit to cross one channel.  The paper's setting:
  /// 1-byte flits over 20 Mbyte/s channels = 50 ns.
  double flit_time = 50e-9;
  /// Message length L in flits (128-byte messages, 1-byte flits).
  std::uint32_t message_flits = 128;
  /// Physical copies of every directed channel (2 = double-channel network).
  std::uint8_t channel_copies = 1;
  /// Channel arbitration policy (Section 2.3.3).
  Arbitration arbitration = Arbitration::kFcfs;
  /// Virtual cut-through mode (Section 2.2.2): a blocked message is
  /// absorbed into the blocking node's buffer -- its held channels drain
  /// and release while a continuation worm keeps the FCFS wait -- instead
  /// of stalling in the network like a wormhole worm.  Path worms only
  /// (node buffers are unbounded, as in the Kermani-Kleinrock model).
  bool virtual_cut_through = false;
};

/// Observer callbacks (all optional).
struct NetworkHooks {
  /// A multicast entered the network (fires before any of its worms move).
  std::function<void(std::uint64_t message_id, double t)> on_inject;
  /// A destination received the complete message.
  std::function<void(std::uint64_t message_id, NodeId destination, double latency_s)>
      on_delivery;
  /// Every worm of a message finished (all deliveries + tail drained).
  /// Fires for killed messages too, once their last worm is gone; pair it
  /// with on_drop to tell full deliveries from degraded ones.
  std::function<void(std::uint64_t message_id, double latency_s)> on_message_done;
  /// A destination will never receive this message: the worm carrying it
  /// was killed by a fault or an abort_message() call.
  std::function<void(std::uint64_t message_id, NodeId destination, double t)> on_drop;
  /// Channel-level trace (for audits/visualisation): a worm acquired /
  /// released physical copy `copy` of channel `c` at the current time.
  std::function<void(ChannelId c, std::uint8_t copy, std::uint32_t worm_id, double t)>
      on_channel_grant;
  std::function<void(ChannelId c, std::uint8_t copy, std::uint32_t worm_id, double t)>
      on_channel_release;
};

class Network {
 public:
  /// `faults` is the failure state to simulate against; pass the instance
  /// shared with a fault::FaultAwareRouter so routing and the simulator
  /// agree on what is dead.  nullptr creates a private all-healthy state.
  Network(const topo::Topology& topology, const WormholeParams& params,
          evsim::Scheduler& sched, std::shared_ptr<fault::FaultState> faults = nullptr);

  /// Inject a multicast as a set of worms created at the current simulated
  /// time; returns the message id.  Worms routed over already-failed
  /// channels are killed immediately (their destinations drop).
  std::uint64_t inject(std::vector<WormSpec> specs);

  void set_hooks(NetworkHooks hooks) { hooks_ = std::move(hooks); }

  /// Register this network's instruments on `registry` (nullptr detaches):
  /// counters network.injections / .deliveries / .drops / .worms_killed,
  /// histograms network.delivery_latency_s / .grant_wait_s /
  /// .channel_hold_s (all in simulated seconds) and gauge
  /// network.channel_busy_time_s.  When detached (the default) the hot
  /// paths pay one null check.  Multiple networks may share a registry;
  /// their counts aggregate.
  void set_metrics(obs::MetricsRegistry* registry);

  /// Fail a directed channel at the current simulated time: worms holding
  /// or waiting on any copy of it are killed.  Idempotent.
  void fail_channel(ChannelId c);
  /// Recover a failed channel (new acquisitions succeed again).
  void recover_channel(ChannelId c);
  /// Fail a node: every incident channel becomes unusable and the worms
  /// holding or waiting on them are killed.
  void fail_node(NodeId n);
  void recover_node(NodeId n);

  /// Kill every still-active worm of `message` (e.g. on a service-level
  /// timeout).  Undelivered destinations drop; on_message_done fires once
  /// the last worm is gone.  No-op for completed or unknown messages.
  void abort_message(std::uint64_t message_id);

  [[nodiscard]] fault::FaultState& faults() { return *faults_; }
  [[nodiscard]] const fault::FaultState& faults() const { return *faults_; }
  [[nodiscard]] const std::shared_ptr<fault::FaultState>& fault_state() const {
    return faults_;
  }
  /// Worms killed by faults or aborts.
  [[nodiscard]] std::uint64_t worms_killed() const { return worms_killed_; }
  /// Destination deliveries abandoned by killed worms.
  [[nodiscard]] std::uint64_t deliveries_dropped() const { return deliveries_dropped_; }

  [[nodiscard]] const topo::Topology& topology() const { return *topology_; }
  [[nodiscard]] const WormholeParams& params() const { return params_; }
  [[nodiscard]] std::uint64_t messages_injected() const { return next_message_; }
  [[nodiscard]] std::uint64_t messages_completed() const { return messages_completed_; }
  [[nodiscard]] std::uint32_t active_worms() const { return active_worms_; }
  [[nodiscard]] bool idle() const { return active_worms_ == 0; }
  [[nodiscard]] const ChannelPool& pool() const { return pool_; }

  /// Total channel-hold time accumulated over all physical channels (s).
  [[nodiscard]] double channel_busy_time() const { return busy_time_; }
  /// Total time finished worms spent blocked waiting for channels -- the
  /// "blocking time" component of communication latency (Section 2.2).
  [[nodiscard]] double total_blocked_time() const { return blocked_time_total_; }
  /// Mean utilisation of the physical channels over [0, now].
  [[nodiscard]] double utilization() const;

  /// Worm ids forming a deadlock cycle in the wait-for graph (worm ->
  /// holders of the channels it waits on); empty when deadlock-free.
  [[nodiscard]] std::vector<std::uint32_t> find_deadlock() const;

  /// Human-readable description of a blocked worm (for the deadlock demo).
  [[nodiscard]] std::string describe_worm(std::uint32_t worm_id) const;

 private:
  struct Worm {
    std::uint64_t message = 0;
    double t_created = 0.0;
    std::vector<WormLink> links;
    std::vector<std::pair<std::uint32_t, NodeId>> deliveries;
    std::vector<std::uint32_t> depth_start;  // index of first link at each depth
    std::vector<std::uint8_t> copy_used;     // granted copy per link
    std::uint32_t progress = 0;
    std::uint32_t max_depth = 0;
    std::uint32_t frontier_begin = 0;
    std::uint32_t frontier_end = 0;
    std::uint32_t granted = 0;
    std::uint32_t next_delivery = 0;
    std::uint32_t next_release = 0;  // first link not yet released
    double block_started = -1.0;     // time the current blocked wait began
    double blocked_time = 0.0;       // accumulated blocking (Sec. 2.2's term)
    /// The worm's single outstanding kernel event (an advance or a
    /// drain_step); null while blocked.  kill_worm cancels it outright --
    /// no stale closure ever fires for a retired incarnation.
    evsim::EventId pending;
    double drain_t0 = 0.0;  // absolute base time of the drain milestones
    bool active = false;

    [[nodiscard]] bool blocked() const {
      return active && frontier_end > frontier_begin && granted < frontier_end - frontier_begin;
    }
  };

  struct Message {
    double t_created = 0.0;
    std::uint32_t worms_left = 0;
  };

  [[nodiscard]] std::size_t phys_index(ChannelId c, std::uint8_t copy) const {
    return static_cast<std::size_t>(c) * params_.channel_copies + copy;
  }
  void note_grant(ChannelId c, std::uint8_t copy);
  void note_release(ChannelId c, std::uint8_t copy);

  void begin_frontier(std::uint32_t worm_id);
  void vct_absorb(std::uint32_t worm_id);
  std::uint32_t allocate_worm();
  void on_grant(std::uint32_t worm_id, std::uint32_t link_index, std::uint8_t copy);
  /// Arm the worm's single pending event: one flit time to the next hop.
  void arm_advance(std::uint32_t worm_id);
  void advance(std::uint32_t worm_id);
  /// Enter the completion drain: from here the worm is driven by one
  /// self-rearming drain_step event that folds every same-time delivery
  /// and tail release into a single kernel dispatch (the old code armed
  /// one event per delivery, per link and for the finish).
  void drain(std::uint32_t worm_id);
  /// Schedule drain_step at the earliest not-yet-fired drain milestone.
  /// Milestones are absolute times off drain_t0 (delivery at depth d:
  /// (d + L - 1 - p) flit times; release of the link at depth d:
  /// (d + L - p); finish: L), computed with the exact same expressions the
  /// per-event code used, so dispatch timestamps stay bit-identical.
  void arm_drain(std::uint32_t worm_id);
  void drain_step(std::uint32_t worm_id);
  void release_link(Worm& w, std::uint32_t link_index);
  void finish_worm(std::uint32_t worm_id);
  /// Kill an active worm: cancel its pending kernel event, cancel its
  /// waits, release its holds, drop its undelivered destinations, retire
  /// the slot.
  void kill_worm(std::uint32_t worm_id);
  /// Kill every worm holding or waiting on channel `c`.
  void kill_channel_users(ChannelId c);

  /// Registry instruments bound once in set_metrics(); all-null when
  /// metrics are disabled (`active()` is the single hot-path check).
  struct Metrics {
    obs::Counter* injections = nullptr;
    obs::Counter* deliveries = nullptr;
    obs::Counter* drops = nullptr;
    obs::Counter* worms_killed = nullptr;
    obs::Histogram* delivery_latency_s = nullptr;
    obs::Histogram* grant_wait_s = nullptr;
    obs::Histogram* channel_hold_s = nullptr;
    obs::Gauge* channel_busy_time_s = nullptr;

    [[nodiscard]] bool active() const { return injections != nullptr; }
  };

  const topo::Topology* topology_;
  WormholeParams params_;
  evsim::Scheduler* sched_;
  ChannelPool pool_;
  std::shared_ptr<fault::FaultState> faults_;
  NetworkHooks hooks_;
  Metrics metrics_;

  std::vector<Worm> worms_;
  /// Incarnation counter per worm slot.  Events are cancelled for real via
  /// Worm::pending, but the counter still guards (a) victim snapshots in
  /// kill_channel_users / abort_message and (b) hook callouts inside
  /// advance / drain_step: a hook may kill this very worm and reuse its
  /// slot, so the loops re-check the generation after every callout.
  std::vector<std::uint64_t> worm_gen_;
  std::vector<std::uint32_t> free_worm_slots_;
  std::vector<Message> messages_;  // indexed by message id
  std::uint64_t next_message_ = 0;
  std::uint64_t messages_completed_ = 0;
  std::uint64_t worms_killed_ = 0;
  std::uint64_t deliveries_dropped_ = 0;
  std::uint32_t active_worms_ = 0;
  double busy_time_ = 0.0;
  double blocked_time_total_ = 0.0;
  std::vector<double> acquired_at_;  // per physical channel copy
};

}  // namespace mcnet::worm
