// Dynamic-experiment harness: wires topology + routing algorithm + traffic
// into one simulation run and collects latency statistics with the paper's
// batch-means stopping rule.  A small thread-pool map parallelises sweeps
// over independent parameter points.
#pragma once

#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "evsim/stats.hpp"
#include "wormhole/network.hpp"
#include "wormhole/traffic.hpp"

namespace mcnet::obs {
class MetricsRegistry;
class EventTracer;
}  // namespace mcnet::obs

namespace mcnet::worm {

struct DynamicConfig {
  WormholeParams params;
  TrafficConfig traffic;
  /// Stop once this many multicasts have completed and the latency CI has
  /// converged (saturated runs stop at the hard caps below).
  std::uint64_t target_messages = 2000;
  std::uint64_t max_messages = 8000;
  double max_sim_time_s = 0.5;
  std::uint32_t batch_size = 1000;  // per-delivery samples per batch
  double rel_precision = 0.05;
  std::uint32_t min_batches = 10;
  /// Optional observability: when set, the run's Network registers its
  /// counters/histograms here (thread-safe; sweeps may share one registry
  /// across parallel runs).
  obs::MetricsRegistry* metrics = nullptr;
  /// Optional event tracing: worm lifecycle and channel occupancy land in
  /// this tracer (one tracer per run -- tracers are not thread-safe).
  obs::EventTracer* tracer = nullptr;
};

struct DynamicResult {
  double mean_latency_us = 0.0;      // per-destination network latency
  /// 95 % CI half-width; quiet NaN when `ci_valid` is false (fewer than 2
  /// effective batches -- an unconverged or saturated run must not report
  /// a zero half-width and masquerade as perfectly precise).
  double ci_half_us = 0.0;
  bool ci_valid = false;
  double mean_completion_us = 0.0;   // whole-multicast completion latency
  std::uint64_t deliveries = 0;
  std::uint64_t messages_completed = 0;
  std::uint64_t messages_injected = 0;
  double sim_time_s = 0.0;
  /// Mean physical-channel utilisation over the run.
  double utilization = 0.0;
  /// Mean blocking time per completed message (us) -- the contention
  /// component of the Section 2.2 latency decomposition.
  double mean_blocking_us = 0.0;
  bool converged = false;
  /// True when the run hit a hard cap with injections outpacing
  /// completions (the network is saturated at this load).
  bool saturated = false;
};

/// Run one dynamic experiment on `topology` with the algorithm embodied by
/// `builder`.
[[nodiscard]] DynamicResult run_dynamic(const topo::Topology& topology,
                                        const RouteBuilder& builder,
                                        const DynamicConfig& config);

/// Run one dynamic experiment routed through `router` on its own topology.
[[nodiscard]] DynamicResult run_dynamic(const mcast::Router& router,
                                        const DynamicConfig& config);

/// Map `fn` over [0, n) on up to `threads` std::threads (independent
/// simulations only; results land in caller-provided storage inside `fn`).
/// `threads == 0` means one per hardware thread, falling back to 4 workers
/// when std::thread::hardware_concurrency() reports 0 (unknown).
///
/// Exception safety: if `fn` throws in a worker, the first exception is
/// captured, remaining indices are abandoned (workers drain without
/// calling `fn` again), every thread is joined, and the exception is
/// rethrown on the calling thread -- a throwing body no longer
/// std::terminate()s the process.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads = 0);

}  // namespace mcnet::worm
