#include "wormhole/network.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace mcnet::worm {

namespace {
constexpr std::uint8_t kNotGranted = 0xFF;
}

Network::Network(const topo::Topology& topology, const WormholeParams& params,
                 evsim::Scheduler& sched, std::shared_ptr<fault::FaultState> faults)
    : topology_(&topology),
      params_(params),
      sched_(&sched),
      pool_(topology.num_channels(), params.channel_copies, params.arbitration,
            [this](std::uint32_t worm_id) { return worms_[worm_id].t_created; }),
      faults_(std::move(faults)) {
  if (params.message_flits == 0) throw std::invalid_argument("message needs >= 1 flit");
  if (params.flit_time <= 0.0) throw std::invalid_argument("flit time must be positive");
  if (!faults_) faults_ = std::make_shared<fault::FaultState>(topology);
  if (faults_->topology().num_channels() != topology.num_channels()) {
    throw std::invalid_argument("fault state built for another topology");
  }
  acquired_at_.assign(static_cast<std::size_t>(topology.num_channels()) *
                          params.channel_copies,
                      0.0);
}

void Network::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.injections = &registry->counter("network.injections");
  metrics_.deliveries = &registry->counter("network.deliveries");
  metrics_.drops = &registry->counter("network.drops");
  metrics_.worms_killed = &registry->counter("network.worms_killed");
  metrics_.delivery_latency_s = &registry->histogram("network.delivery_latency_s");
  metrics_.grant_wait_s = &registry->histogram("network.grant_wait_s");
  metrics_.channel_hold_s = &registry->histogram("network.channel_hold_s");
  metrics_.channel_busy_time_s = &registry->gauge("network.channel_busy_time_s");
}

void Network::note_grant(ChannelId c, std::uint8_t copy) {
  acquired_at_[phys_index(c, copy)] = sched_->now();
  if (hooks_.on_channel_grant) {
    hooks_.on_channel_grant(c, copy, pool_.holder(c, copy), sched_->now());
  }
}

void Network::note_release(ChannelId c, std::uint8_t copy) {
  const double held = sched_->now() - acquired_at_[phys_index(c, copy)];
  busy_time_ += held;
  if (metrics_.active()) {
    metrics_.channel_hold_s->record(held);
    metrics_.channel_busy_time_s->add(held);
  }
  if (hooks_.on_channel_release) {
    hooks_.on_channel_release(c, copy, pool_.holder(c, copy), sched_->now());
  }
}

double Network::utilization() const {
  const double elapsed = sched_->now();
  if (elapsed <= 0.0) return 0.0;
  // In-flight holds are counted up to "now".
  double busy = busy_time_;
  for (ChannelId c = 0; c < pool_.num_channels(); ++c) {
    for (std::uint8_t k = 0; k < pool_.copies(); ++k) {
      if (pool_.holder(c, k) != kNoWorm) busy += elapsed - acquired_at_[phys_index(c, k)];
    }
  }
  return busy / (elapsed * static_cast<double>(acquired_at_.size()));
}

std::uint64_t Network::inject(std::vector<WormSpec> specs) {
  const std::uint64_t msg = next_message_++;
  messages_.push_back(Message{sched_->now(), static_cast<std::uint32_t>(specs.size())});
  if (metrics_.active()) metrics_.injections->inc();
  if (hooks_.on_inject) hooks_.on_inject(msg, sched_->now());
  if (specs.empty()) {
    ++messages_completed_;
    if (hooks_.on_message_done) hooks_.on_message_done(msg, 0.0);
    return msg;
  }
  for (WormSpec& spec : specs) {
    const std::uint32_t id = allocate_worm();
    Worm& w = worms_[id];
    w = Worm{};
    w.message = msg;
    w.t_created = sched_->now();
    w.links = std::move(spec.links);
    w.deliveries = std::move(spec.deliveries);
    w.max_depth = w.links.back().depth;
    w.copy_used.assign(w.links.size(), kNotGranted);
    // depth_start[d] = first link index at depth >= d, for d in [1, max+1].
    w.depth_start.assign(w.max_depth + 2, static_cast<std::uint32_t>(w.links.size()));
    for (std::uint32_t i = w.links.size(); i-- > 0;) {
      w.depth_start[w.links[i].depth] = i;
    }
    for (std::uint32_t d = w.max_depth; d >= 1; --d) {
      w.depth_start[d] = std::min(w.depth_start[d], w.depth_start[d + 1]);
    }
    w.active = true;
    ++active_worms_;
    begin_frontier(id);
  }
  return msg;
}

std::uint32_t Network::allocate_worm() {
  if (!free_worm_slots_.empty()) {
    const std::uint32_t id = free_worm_slots_.back();
    free_worm_slots_.pop_back();
    return id;
  }
  worms_.emplace_back();
  worm_gen_.push_back(0);
  return static_cast<std::uint32_t>(worms_.size() - 1);
}

void Network::begin_frontier(std::uint32_t worm_id) {
  Worm& w = worms_[worm_id];
  const std::uint32_t depth = w.progress + 1;
  w.frontier_begin = w.depth_start[depth];
  w.frontier_end = w.depth_start[depth + 1];
  w.granted = 0;
  // A frontier touching failed hardware kills the worm: it can never be
  // granted, and letting it hold-and-wait would wedge the network.
  if (!faults_->healthy()) {
    for (std::uint32_t i = w.frontier_begin; i < w.frontier_end; ++i) {
      if (!faults_->channel_usable(w.links[i].channel)) {
        kill_worm(worm_id);
        return;
      }
    }
  }
  const std::uint32_t frontier_size = w.frontier_end - w.frontier_begin;
  for (std::uint32_t i = w.frontier_begin; i < w.frontier_end; ++i) {
    const WormLink& link = w.links[i];
    if (const auto copy = pool_.acquire(link.channel, ChannelRequest{worm_id, i, link.copy})) {
      note_grant(link.channel, *copy);
      w.copy_used[i] = *copy;
      ++w.granted;
    }
  }
  if (w.granted == frontier_size) {
    arm_advance(worm_id);
  } else {
    w.block_started = sched_->now();
    if (params_.virtual_cut_through) vct_absorb(worm_id);
  }
}

// Virtual cut-through blocking: the message is buffered at the head node.
// The worm's held prefix drains and releases (exactly the completion drain
// with the route truncated at the head), while a continuation worm takes
// over the queued FCFS wait and the remaining route suffix.
void Network::vct_absorb(std::uint32_t worm_id) {
  Worm& w = worms_[worm_id];
  if (w.frontier_end - w.frontier_begin != 1) {
    throw std::logic_error("virtual cut-through supports path worms only");
  }
  const std::uint32_t blocked = w.frontier_begin;  // index of the refused link
  if (w.next_release >= blocked) {
    // Nothing is held upstream: waiting in place is free, identical to
    // wormhole semantics (this also covers blocking at injection).
    return;
  }
  const std::uint32_t p = w.progress;

  // Build the continuation: the route suffix rebased to depth 1.
  const std::uint32_t cont = allocate_worm();
  // NOTE: `w` may dangle after allocate_worm (vector growth); re-fetch.
  Worm& old_w = worms_[worm_id];
  Worm& cw = worms_[cont];
  cw = Worm{};
  cw.message = old_w.message;
  cw.t_created = old_w.t_created;
  cw.links.assign(old_w.links.begin() + blocked, old_w.links.end());
  for (WormLink& l : cw.links) l.depth -= p;
  for (const auto& [depth, dest] : old_w.deliveries) {
    if (depth > p) cw.deliveries.emplace_back(depth - p, dest);
  }
  cw.max_depth = cw.links.back().depth;
  cw.copy_used.assign(cw.links.size(), 0xFF);
  cw.depth_start.assign(cw.max_depth + 2, static_cast<std::uint32_t>(cw.links.size()));
  for (std::uint32_t i = static_cast<std::uint32_t>(cw.links.size()); i-- > 0;) {
    cw.depth_start[cw.links[i].depth] = i;
  }
  for (std::uint32_t d = cw.max_depth; d >= 1; --d) {
    cw.depth_start[d] = std::min(cw.depth_start[d], cw.depth_start[d + 1]);
  }
  cw.frontier_begin = 0;
  cw.frontier_end = cw.depth_start[2];
  cw.granted = 0;
  cw.block_started = sched_->now();  // it is waiting from birth
  cw.blocked_time = old_w.blocked_time;
  old_w.blocked_time = 0.0;
  old_w.block_started = -1.0;
  cw.active = true;
  ++active_worms_;
  ++messages_[cw.message].worms_left;
  if (!pool_.retarget(cw.links[0].channel, worm_id, blocked, cont, 0)) {
    throw std::logic_error("VCT retarget failed: no queued request");
  }

  // Truncate the original worm at the head node and drain it there.
  old_w.links.resize(blocked);
  std::erase_if(old_w.deliveries, [p](const auto& d) { return d.first > p; });
  old_w.next_delivery = std::min<std::uint32_t>(
      old_w.next_delivery, static_cast<std::uint32_t>(old_w.deliveries.size()));
  old_w.copy_used.resize(blocked);
  old_w.max_depth = p;
  drain(worm_id);
}

void Network::on_grant(std::uint32_t worm_id, std::uint32_t link_index, std::uint8_t copy) {
  Worm& w = worms_[worm_id];
  w.copy_used[link_index] = copy;
  ++w.granted;
  if (w.granted == w.frontier_end - w.frontier_begin) {
    if (w.block_started >= 0.0) {
      const double waited = sched_->now() - w.block_started;
      w.blocked_time += waited;
      w.block_started = -1.0;
      if (metrics_.active()) metrics_.grant_wait_s->record(waited);
    }
    arm_advance(worm_id);
  }
}

void Network::arm_advance(std::uint32_t worm_id) {
  worms_[worm_id].pending =
      sched_->schedule_in(params_.flit_time, [this, worm_id] { advance(worm_id); });
}

void Network::release_link(Worm& w, std::uint32_t link_index) {
  const std::uint8_t copy = w.copy_used[link_index];
  if (copy == kNotGranted) throw std::logic_error("releasing an ungranted link");
  const ChannelId channel = w.links[link_index].channel;
  note_release(channel, copy);
  if (const auto grant = pool_.release(channel, copy)) {
    note_grant(channel, grant->second);
    on_grant(grant->first.worm_id, grant->first.link_index, grant->second);
  }
}

void Network::advance(std::uint32_t worm_id) {
  // NOTE: hooks may call inject(), which can reallocate worms_; never hold
  // a Worm reference across a hook invocation.  A hook can also kill THIS
  // worm (fail_channel / abort_message from a channel-trace or delivery
  // callback) and even reuse its slot, so every callout is followed by a
  // generation check.
  worms_[worm_id].pending = evsim::EventId{};  // this event just fired
  const std::uint64_t gen = worm_gen_[worm_id];
  const std::uint32_t l = params_.message_flits;
  worms_[worm_id].progress += 1;

  // Tail release: link at depth d frees at progress d + L.  Grant cascades
  // fire the channel-trace hooks.
  while (true) {
    Worm& w = worms_[worm_id];
    if (w.next_release >= w.links.size() ||
        w.links[w.next_release].depth + l > w.progress) {
      break;
    }
    const std::uint32_t idx = w.next_release++;
    release_link(w, idx);
    if (worm_gen_[worm_id] != gen) return;  // a hook retired this worm
  }
  // Deliveries: destination at depth d completes at progress d + L - 1.
  while (true) {
    Worm& w = worms_[worm_id];
    if (w.next_delivery >= w.deliveries.size() ||
        w.deliveries[w.next_delivery].first + l - 1 > w.progress) {
      break;
    }
    const auto [depth, dest] = w.deliveries[w.next_delivery++];
    const std::uint64_t message = w.message;
    const double latency = sched_->now() - w.t_created;
    if (metrics_.active()) {
      metrics_.deliveries->inc();
      metrics_.delivery_latency_s->record(latency);
    }
    if (hooks_.on_delivery) hooks_.on_delivery(message, dest, latency);  // may inject
    if (worm_gen_[worm_id] != gen) return;
  }

  if (worms_[worm_id].progress < worms_[worm_id].max_depth) {
    begin_frontier(worm_id);
  } else {
    drain(worm_id);
  }
}

void Network::drain(std::uint32_t worm_id) {
  Worm& w = worms_[worm_id];
  w.frontier_begin = w.frontier_end = 0;  // nothing left to acquire
  w.drain_t0 = sched_->now();
  // The next_delivery / next_release cursors advance as each milestone
  // actually fires (not eagerly here), so a mid-drain kill_worm sees
  // exactly which links are still held and which destinations are still
  // owed a delivery.
  arm_drain(worm_id);
}

void Network::arm_drain(std::uint32_t worm_id) {
  Worm& w = worms_[worm_id];
  const std::uint32_t l = params_.message_flits;
  const double tau = params_.flit_time;
  const std::uint32_t p = w.progress;
  // Finish is the latest milestone (deliveries sit at < L flit times,
  // releases at <= L) and ran last in the per-event code, so it is the
  // fallback, not a min candidate on its own.
  double t_next = w.drain_t0 + static_cast<double>(l) * tau;
  if (w.next_delivery < w.deliveries.size()) {
    const double dt = static_cast<double>(w.deliveries[w.next_delivery].first + l - 1 - p) * tau;
    t_next = std::min(t_next, w.drain_t0 + dt);
  }
  if (w.next_release < w.links.size()) {
    const double dt = static_cast<double>(w.links[w.next_release].depth + l - p) * tau;
    t_next = std::min(t_next, w.drain_t0 + dt);
  }
  w.pending = sched_->schedule_at(t_next, [this, worm_id] { drain_step(worm_id); });
}

void Network::drain_step(std::uint32_t worm_id) {
  worms_[worm_id].pending = evsim::EventId{};
  const std::uint64_t gen = worm_gen_[worm_id];
  const std::uint32_t l = params_.message_flits;
  const double tau = params_.flit_time;
  const double now = sched_->now();

  // Deliveries due now run before releases due now -- the per-event code
  // scheduled all deliveries first, so equal-time ties broke the same way.
  while (true) {
    Worm& w = worms_[worm_id];
    if (w.next_delivery >= w.deliveries.size()) break;
    const auto [depth, dest] = w.deliveries[w.next_delivery];
    const double t_due =
        w.drain_t0 + static_cast<double>(depth + l - 1 - w.progress) * tau;
    if (t_due > now) break;
    ++w.next_delivery;
    const std::uint64_t message = w.message;
    const double latency = now - w.t_created;
    if (metrics_.active()) {
      metrics_.deliveries->inc();
      metrics_.delivery_latency_s->record(latency);
    }
    if (hooks_.on_delivery) hooks_.on_delivery(message, dest, latency);  // may inject
    if (worm_gen_[worm_id] != gen) return;  // a hook retired this worm
  }
  while (true) {
    Worm& w = worms_[worm_id];
    if (w.next_release >= w.links.size()) break;
    const double t_due =
        w.drain_t0 + static_cast<double>(w.links[w.next_release].depth + l - w.progress) * tau;
    if (t_due > now) break;
    const std::uint32_t idx = w.next_release++;
    release_link(worms_[worm_id], idx);
    if (worm_gen_[worm_id] != gen) return;
  }

  Worm& w = worms_[worm_id];
  const double t_finish = w.drain_t0 + static_cast<double>(l) * tau;
  if (w.next_delivery >= w.deliveries.size() && w.next_release >= w.links.size() &&
      t_finish <= now) {
    finish_worm(worm_id);
    return;
  }
  arm_drain(worm_id);
}

void Network::finish_worm(std::uint32_t worm_id) {
  // Retire the worm slot completely before firing the completion hook: the
  // hook may inject new multicasts, reallocating worms_ / messages_ and
  // reusing this slot.
  ++worm_gen_[worm_id];  // invalidate victim snapshots / in-flight loop guards
  worms_[worm_id].pending = evsim::EventId{};  // drain_step (running now) armed nothing
  const std::uint64_t message_id = worms_[worm_id].message;
  blocked_time_total_ += worms_[worm_id].blocked_time;
  {
    Worm& w = worms_[worm_id];
    w.active = false;
    w.links.clear();
    w.links.shrink_to_fit();
    w.deliveries.clear();
    w.copy_used.clear();
    w.depth_start.clear();
  }
  --active_worms_;
  free_worm_slots_.push_back(worm_id);

  const double t_created = messages_[message_id].t_created;
  const bool message_done = (--messages_[message_id].worms_left == 0);
  if (message_done) {
    ++messages_completed_;
    if (hooks_.on_message_done) {
      hooks_.on_message_done(message_id, sched_->now() - t_created);  // may inject
    }
  }
}

void Network::kill_worm(std::uint32_t worm_id) {
  if (!worms_[worm_id].active) return;
  ++worm_gen_[worm_id];  // invalidate victim snapshots / in-flight loop guards
  // True cancellation: the worm's pending advance/drain_step dies in the
  // kernel (its closure is destroyed, never dispatched) instead of firing
  // as a stale generation-checked no-op.
  sched_->cancel(worms_[worm_id].pending);
  worms_[worm_id].pending = evsim::EventId{};
  pool_.cancel_requests(worm_id);
  {
    Worm& w = worms_[worm_id];
    if (w.block_started >= 0.0) {
      w.blocked_time += sched_->now() - w.block_started;
      w.block_started = -1.0;
    }
  }
  // Destinations the worm still owed a delivery are dropped.
  std::vector<NodeId> dropped;
  {
    const Worm& w = worms_[worm_id];
    for (std::uint32_t i = w.next_delivery; i < w.deliveries.size(); ++i) {
      dropped.push_back(w.deliveries[i].second);
    }
  }
  // Release surviving holds; grant cascades fire the channel-trace hooks,
  // which may inject, so re-fetch the worm reference every iteration.
  const std::uint32_t num_links = static_cast<std::uint32_t>(worms_[worm_id].links.size());
  for (std::uint32_t i = worms_[worm_id].next_release; i < num_links; ++i) {
    Worm& w = worms_[worm_id];
    if (w.copy_used[i] == kNotGranted) continue;
    release_link(w, i);
  }

  const std::uint64_t message_id = worms_[worm_id].message;
  blocked_time_total_ += worms_[worm_id].blocked_time;
  ++worms_killed_;
  deliveries_dropped_ += dropped.size();
  if (metrics_.active()) {
    metrics_.worms_killed->inc();
    metrics_.drops->inc(dropped.size());
  }
  {
    Worm& w = worms_[worm_id];
    w.active = false;
    w.links.clear();
    w.links.shrink_to_fit();
    w.deliveries.clear();
    w.copy_used.clear();
    w.depth_start.clear();
  }
  --active_worms_;
  free_worm_slots_.push_back(worm_id);

  const double now = sched_->now();
  if (hooks_.on_drop) {
    for (const NodeId d : dropped) hooks_.on_drop(message_id, d, now);  // may inject
  }
  const double t_created = messages_[message_id].t_created;
  if (--messages_[message_id].worms_left == 0) {
    ++messages_completed_;
    if (hooks_.on_message_done) {
      hooks_.on_message_done(message_id, sched_->now() - t_created);  // may inject
    }
  }
}

void Network::kill_channel_users(ChannelId c) {
  // Snapshot (worm, generation) pairs first: kills cascade grants and may
  // inject via hooks, either of which reshuffles pool state under us.
  std::vector<std::pair<std::uint32_t, std::uint64_t>> victims;
  for (std::uint8_t k = 0; k < pool_.copies(); ++k) {
    const std::uint32_t holder = pool_.holder(c, k);
    if (holder != kNoWorm) victims.emplace_back(holder, worm_gen_[holder]);
  }
  for (const ChannelRequest& req : pool_.waiters(c)) {
    victims.emplace_back(req.worm_id, worm_gen_[req.worm_id]);
  }
  for (const auto& [id, gen] : victims) {
    if (worm_gen_[id] == gen && worms_[id].active) kill_worm(id);
  }
}

void Network::fail_channel(ChannelId c) {
  if (!faults_->fail_channel(c)) return;
  kill_channel_users(c);
}

void Network::recover_channel(ChannelId c) { faults_->recover_channel(c); }

void Network::fail_node(NodeId n) {
  if (!faults_->fail_node(n)) return;
  // Every channel incident to the node is now unusable; evict its users.
  // neighbors() returns a span into the immutable topology, so it stays
  // valid across the kill cascades.
  for (const NodeId v : topology_->neighbors(n)) {
    kill_channel_users(topology_->channel(n, v));
    kill_channel_users(topology_->channel(v, n));
  }
}

void Network::recover_node(NodeId n) { faults_->recover_node(n); }

void Network::abort_message(std::uint64_t message_id) {
  std::vector<std::pair<std::uint32_t, std::uint64_t>> victims;
  for (std::uint32_t id = 0; id < worms_.size(); ++id) {
    if (worms_[id].active && worms_[id].message == message_id) {
      victims.emplace_back(id, worm_gen_[id]);
    }
  }
  for (const auto& [id, gen] : victims) {
    if (worm_gen_[id] == gen && worms_[id].active) kill_worm(id);
  }
}

std::vector<std::uint32_t> Network::find_deadlock() const {
  // Wait-for edges: blocked worm -> every worm holding a copy that could
  // satisfy one of its ungranted frontier links.
  const std::uint32_t n = static_cast<std::uint32_t>(worms_.size());
  std::vector<std::vector<std::uint32_t>> edges(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    const Worm& w = worms_[id];
    if (!w.blocked()) continue;
    for (std::uint32_t i = w.frontier_begin; i < w.frontier_end; ++i) {
      if (w.copy_used[i] != kNotGranted) continue;
      const WormLink& link = w.links[i];
      for (std::uint8_t k = 0; k < pool_.copies(); ++k) {
        if (link.copy != kAnyCopy && link.copy != static_cast<std::int8_t>(k)) continue;
        const std::uint32_t holder = pool_.holder(link.channel, k);
        if (holder != kNoWorm && holder != id) edges[id].push_back(holder);
      }
    }
  }
  // DFS cycle detection over the wait-for graph.
  enum class Colour : std::uint8_t { White, Grey, Black };
  std::vector<Colour> colour(n, Colour::White);
  std::vector<std::uint32_t> path;
  std::vector<std::pair<std::uint32_t, std::size_t>> stack;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (colour[root] != Colour::White || edges[root].empty()) continue;
    stack.emplace_back(root, 0);
    colour[root] = Colour::Grey;
    path.push_back(root);
    while (!stack.empty()) {
      auto& [u, idx] = stack.back();
      if (idx < edges[u].size()) {
        const std::uint32_t v = edges[u][idx++];
        if (colour[v] == Colour::Grey) {
          const auto it = std::find(path.begin(), path.end(), v);
          return {it, path.end()};
        }
        if (colour[v] == Colour::White) {
          colour[v] = Colour::Grey;
          stack.emplace_back(v, 0);
          path.push_back(v);
        }
      } else {
        colour[u] = Colour::Black;
        stack.pop_back();
        path.pop_back();
      }
    }
  }
  return {};
}

std::string Network::describe_worm(std::uint32_t worm_id) const {
  const Worm& w = worms_[worm_id];
  std::ostringstream os;
  os << "worm " << worm_id << " (message " << w.message << ", progress " << w.progress << "/"
     << w.max_depth << ")";
  if (!w.active) {
    os << " [finished]";
    return os.str();
  }
  os << " holds {";
  bool first = true;
  for (std::uint32_t i = 0; i < w.links.size(); ++i) {
    if (w.copy_used[i] == kNotGranted) continue;
    if (i < w.next_release) continue;  // already released
    os << (first ? "" : ", ") << "[" << w.links[i].from << "->" << w.links[i].to << "]";
    first = false;
  }
  os << "}";
  if (w.blocked()) {
    os << " waits {";
    first = true;
    for (std::uint32_t i = w.frontier_begin; i < w.frontier_end; ++i) {
      if (w.copy_used[i] != kNotGranted) continue;
      os << (first ? "" : ", ") << "[" << w.links[i].from << "->" << w.links[i].to << "]";
      first = false;
    }
    os << "}";
  }
  return os.str();
}

}  // namespace mcnet::worm
