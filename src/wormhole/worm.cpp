#include "wormhole/worm.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <unordered_set>

#include "core/dc_xfirst_tree.hpp"
#include "wormhole/channel_pool.hpp"

namespace mcnet::worm {

namespace {

// Pinned-copy selector for a tree link.
using CopyFn = std::function<std::int8_t(const mcast::TreeRoute&, NodeId from, NodeId to)>;

WormSpec path_to_spec(const topo::Topology& topology, const mcast::PathRoute& path,
                      std::uint8_t copies) {
  WormSpec spec;
  spec.links.reserve(path.hops());
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    WormLink link;
    link.from = path.nodes[i];
    link.to = path.nodes[i + 1];
    link.channel = topology.channel(link.from, link.to);
    if (link.channel == topo::kInvalidChannel) throw std::logic_error("path uses non-edge");
    link.depth = static_cast<std::uint32_t>(i + 1);
    link.copy = copies > 1 ? kAnyCopy : 0;
    spec.links.push_back(link);
  }
  for (const std::uint32_t h : path.delivery_hops) {
    if (h == 0) throw std::logic_error("delivery at the source");
    spec.deliveries.emplace_back(h, path.nodes[h]);
  }
  std::sort(spec.deliveries.begin(), spec.deliveries.end());
  return spec;
}

WormSpec tree_to_spec(const topo::Topology& topology, const mcast::TreeRoute& tree,
                      const CopyFn& copy_of) {
  WormSpec spec;
  spec.links.reserve(tree.links.size());
  // TreeRoute links are parent-before-child but not depth-sorted; stable
  // sort by depth and remember the permutation for delivery mapping.
  std::vector<std::uint32_t> order(tree.links.size());
  for (std::uint32_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return tree.links[a].depth < tree.links[b].depth;
  });
  for (const std::uint32_t li : order) {
    const mcast::TreeRoute::Link& l = tree.links[li];
    WormLink link;
    link.from = l.from;
    link.to = l.to;
    link.channel = topology.channel(l.from, l.to);
    if (link.channel == topo::kInvalidChannel) throw std::logic_error("tree uses non-edge");
    link.depth = l.depth;
    link.copy = copy_of(tree, l.from, l.to);
    spec.links.push_back(link);
  }
  for (const std::uint32_t li : tree.delivery_links) {
    const mcast::TreeRoute::Link& l = tree.links[li];
    spec.deliveries.emplace_back(l.depth, l.to);
  }
  std::sort(spec.deliveries.begin(), spec.deliveries.end());

  // A worm that needs the same pinned physical channel twice would wait on
  // itself forever; reject such routes up front.
  std::unordered_set<std::uint64_t> seen;
  for (const WormLink& l : spec.links) {
    if (l.copy == kAnyCopy) continue;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(l.channel) << 8) | static_cast<std::uint8_t>(l.copy);
    if (!seen.insert(key).second) {
      throw std::logic_error("tree worm reuses a physical channel (would self-deadlock)");
    }
  }
  return spec;
}

std::vector<WormSpec> convert(const topo::Topology& topology,
                              const mcast::MulticastRoute& route, std::uint8_t copies,
                              const CopyFn& tree_copy) {
  std::vector<WormSpec> specs;
  specs.reserve(route.paths.size() + route.trees.size());
  for (const mcast::PathRoute& p : route.paths) {
    if (p.hops() == 0) continue;  // nothing to transmit
    specs.push_back(path_to_spec(topology, p, copies));
  }
  for (const mcast::TreeRoute& t : route.trees) {
    if (t.links.empty()) continue;
    specs.push_back(tree_to_spec(topology, t, tree_copy));
  }
  return specs;
}

}  // namespace

std::vector<WormSpec> make_worm_specs(const topo::Topology& topology,
                                      const mcast::MulticastRoute& route,
                                      std::uint8_t copies) {
  return convert(topology, route, copies,
                 [copies](const mcast::TreeRoute& tree, NodeId, NodeId) -> std::int8_t {
                   return static_cast<std::int8_t>(tree.channel_class % copies);
                 });
}

std::vector<WormSpec> make_worm_specs(const topo::Mesh2D& mesh,
                                      const mcast::MulticastRoute& route,
                                      std::uint8_t copies) {
  if (copies < 2) return make_worm_specs(static_cast<const topo::Topology&>(mesh), route, copies);
  return convert(mesh, route, copies,
                 [&mesh](const mcast::TreeRoute& tree, NodeId from, NodeId to) -> std::int8_t {
                   const topo::Coord2 a = mesh.coord(from);
                   const topo::Coord2 b = mesh.coord(to);
                   return static_cast<std::int8_t>(mcast::quadrant_channel_copy(
                       static_cast<mcast::Quadrant>(tree.channel_class % 4), b.x - a.x,
                       b.y - a.y));
                 });
}

}  // namespace mcnet::worm
