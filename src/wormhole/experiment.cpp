#include "wormhole/experiment.hpp"

#include <algorithm>
#include <atomic>

#include "core/router.hpp"
#include "evsim/scheduler.hpp"

namespace mcnet::worm {

DynamicResult run_dynamic(const topo::Topology& topology, const RouteBuilder& builder,
                          const DynamicConfig& config) {
  evsim::Scheduler sched;
  Network network(topology, config.params, sched);
  TrafficDriver driver(sched, network, config.traffic, builder);

  evsim::BatchMeans latency(config.batch_size, /*discard=*/1);
  evsim::Summary completion;
  NetworkHooks hooks;
  hooks.on_delivery = [&](std::uint64_t, topo::NodeId, double l) { latency.add(l); };
  hooks.on_message_done = [&](std::uint64_t, double l) { completion.add(l); };
  network.set_hooks(std::move(hooks));

  driver.start();
  bool converged = false;
  while (sched.step()) {
    if (network.messages_completed() >= config.target_messages &&
        latency.converged(config.rel_precision, config.min_batches)) {
      converged = true;
      break;
    }
    if (network.messages_completed() >= config.max_messages ||
        sched.now() >= config.max_sim_time_s) {
      break;
    }
  }
  driver.stop();

  DynamicResult result;
  result.mean_latency_us = latency.mean() * 1e6;
  result.ci_half_us = latency.effective_batches() >= 2 ? latency.half_width() * 1e6 : 0.0;
  result.mean_completion_us = completion.mean() * 1e6;
  result.deliveries = latency.samples();
  result.messages_completed = network.messages_completed();
  result.messages_injected = network.messages_injected();
  result.sim_time_s = sched.now();
  result.utilization = network.utilization();
  result.mean_blocking_us =
      result.messages_completed > 0
          ? network.total_blocked_time() / static_cast<double>(result.messages_completed) * 1e6
          : 0.0;
  result.converged = converged;
  result.saturated =
      !converged && result.messages_injected > 0 &&
      result.messages_completed * 10 < result.messages_injected * 9;  // >10 % backlog
  return result;
}

DynamicResult run_dynamic(const mcast::Router& router, const DynamicConfig& config) {
  return run_dynamic(router.topology(), make_route_builder(router), config);
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  if (threads == 0) {
    // hardware_concurrency() may legitimately report 0 (unknown); fall back
    // to a sane worker count instead of degenerating to a single thread.
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 4;
  }
  threads = std::max(1u, std::min<unsigned>(threads, static_cast<unsigned>(n)));
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    });
  }
  for (std::thread& th : pool) th.join();
}

}  // namespace mcnet::worm
