#include "wormhole/experiment.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>
#include <mutex>

#include "core/router.hpp"
#include "evsim/scheduler.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace mcnet::worm {

namespace {

/// Shared body of the two run_dynamic overloads; `make_driver` decides
/// whether the TrafficDriver is wired to a RouteBuilder or to a Router
/// (the latter enables TrafficConfig::route_batch prefetching).
DynamicResult run_dynamic_impl(
    const topo::Topology& topology, const DynamicConfig& config,
    const std::function<TrafficDriver(evsim::Scheduler&, Network&)>& make_driver) {
  evsim::Scheduler sched;
  Network network(topology, config.params, sched);
  TrafficDriver driver = make_driver(sched, network);
  network.set_metrics(config.metrics);

  evsim::BatchMeans latency(config.batch_size, /*discard=*/1);
  evsim::Summary completion;
  NetworkHooks hooks;
  hooks.on_delivery = [&](std::uint64_t, topo::NodeId, double l) { latency.add(l); };
  hooks.on_message_done = [&](std::uint64_t, double l) { completion.add(l); };
  if (config.tracer != nullptr) hooks = config.tracer->instrument(network, std::move(hooks));
  network.set_hooks(std::move(hooks));

  driver.start();
  bool converged = false;
  while (sched.step()) {
    if (network.messages_completed() >= config.target_messages &&
        latency.converged(config.rel_precision, config.min_batches)) {
      converged = true;
      break;
    }
    if (network.messages_completed() >= config.max_messages ||
        sched.now() >= config.max_sim_time_s) {
      break;
    }
  }
  driver.stop();

  DynamicResult result;
  result.mean_latency_us = latency.mean() * 1e6;
  result.ci_valid = latency.effective_batches() >= 2;
  result.ci_half_us = result.ci_valid ? latency.half_width() * 1e6
                                      : std::numeric_limits<double>::quiet_NaN();
  result.mean_completion_us = completion.mean() * 1e6;
  result.deliveries = latency.samples();
  result.messages_completed = network.messages_completed();
  result.messages_injected = network.messages_injected();
  result.sim_time_s = sched.now();
  result.utilization = network.utilization();
  result.mean_blocking_us =
      result.messages_completed > 0
          ? network.total_blocked_time() / static_cast<double>(result.messages_completed) * 1e6
          : 0.0;
  result.converged = converged;
  result.saturated =
      !converged && result.messages_injected > 0 &&
      result.messages_completed * 10 < result.messages_injected * 9;  // >10 % backlog
  return result;
}

}  // namespace

DynamicResult run_dynamic(const topo::Topology& topology, const RouteBuilder& builder,
                          const DynamicConfig& config) {
  return run_dynamic_impl(topology, config,
                          [&](evsim::Scheduler& sched, Network& network) {
                            return TrafficDriver(sched, network, config.traffic, builder);
                          });
}

DynamicResult run_dynamic(const mcast::Router& router, const DynamicConfig& config) {
  // Hand the router itself to the driver (not just a builder closure) so
  // TrafficConfig::route_batch > 1 can prefetch through route_many.
  return run_dynamic_impl(router.topology(), config,
                          [&](evsim::Scheduler& sched, Network& network) {
                            return TrafficDriver(sched, network, config.traffic, router);
                          });
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn,
                  unsigned threads) {
  if (threads == 0) {
    // hardware_concurrency() may legitimately report 0 (unknown); fall back
    // to a sane worker count instead of degenerating to a single thread.
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 4;
  }
  threads = std::max(1u, std::min<unsigned>(threads, static_cast<unsigned>(n)));
  if (threads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // The first exception thrown by any worker wins; the rest of the work is
  // abandoned (an uncaught exception in a std::thread would terminate the
  // whole process).
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (unsigned t = 0; t < threads; ++t) {
    pool.emplace_back([&] {
      for (std::size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) {
        if (failed.load(std::memory_order_acquire)) return;
        try {
          fn(i);
        } catch (...) {
          {
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!first_error) first_error = std::current_exception();
          }
          failed.store(true, std::memory_order_release);
          return;
        }
      }
    });
  }
  for (std::thread& th : pool) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace mcnet::worm
