#include "wormhole/deadlock.hpp"

#include <sstream>

namespace mcnet::worm {

DeadlockReport check_deadlock(const Network& network) {
  DeadlockReport report;
  report.cycle = network.find_deadlock();
  if (!report.cycle.empty()) {
    std::ostringstream os;
    os << "deadlock cycle of " << report.cycle.size() << " worm(s):\n";
    for (const std::uint32_t id : report.cycle) {
      os << "  " << network.describe_worm(id) << "\n";
    }
    report.description = os.str();
  }
  return report;
}

}  // namespace mcnet::worm
