#include "wormhole/traffic.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/router.hpp"

namespace mcnet::worm {

RouteBuilder make_route_builder(const mcast::Router& router) {
  return [&router](topo::NodeId source, const std::vector<topo::NodeId>& destinations) {
    return router.build(source, destinations);
  };
}

TrafficDriver::TrafficDriver(evsim::Scheduler& sched, Network& network, TrafficConfig config,
                             const mcast::Router& router)
    : TrafficDriver(sched, network, config, make_route_builder(router)) {
  router_ = &router;
  if (batching()) {
    const std::uint32_t n = network.topology().num_nodes();
    queues_.resize(n);
    dest_rngs_.reserve(n);
    // A distinct stream family for the prefetched destination draws keeps
    // batch-mode runs deterministic without perturbing the gap stream.
    for (std::uint32_t i = 0; i < n; ++i) {
      dest_rngs_.emplace_back(evsim::derive_seed(config.seed ^ 0x6d636173745f6271ULL, i));
    }
  }
}

TrafficDriver::TrafficDriver(evsim::Scheduler& sched, Network& network, TrafficConfig config,
                             RouteBuilder builder)
    : sched_(&sched), network_(&network), config_(config), builder_(std::move(builder)) {
  if (config.route_batch == 0) {
    throw std::invalid_argument("TrafficConfig: route_batch must be >= 1 (got 0)");
  }
  const std::uint32_t n = network.topology().num_nodes();
  rngs_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    rngs_.emplace_back(evsim::derive_seed(config.seed, i));
  }
}

double TrafficDriver::next_gap(evsim::Rng& rng) {
  return config_.exponential_interarrival
             ? rng.exponential(config_.mean_interarrival_s)
             : rng.uniform(0.0, 2.0 * config_.mean_interarrival_s);
}

void TrafficDriver::start() {
  for (topo::NodeId node = 0; node < network_->topology().num_nodes(); ++node) {
    sched_->schedule_in(next_gap(rngs_[node]), [this, node] { arrival(node); });
  }
}

void TrafficDriver::refill(topo::NodeId node) {
  SpecQueue& queue = queues_[node];
  queue.specs.clear();
  queue.next = 0;
  evsim::Rng& rng = dest_rngs_[node];
  const std::uint32_t num_nodes = network_->topology().num_nodes();
  const std::uint32_t max_k = num_nodes - 1;
  std::vector<mcast::MulticastRequest> requests;
  requests.reserve(config_.route_batch);
  for (std::uint32_t b = 0; b < config_.route_batch; ++b) {
    std::uint32_t k = config_.fixed_destinations
                          ? config_.avg_destinations
                          : rng.uniform_int(1, 2 * config_.avg_destinations - 1);
    k = std::min(k, max_k);
    requests.push_back(
        mcast::MulticastRequest{node, rng.sample_destinations(num_nodes, node, k)});
  }
  const mcast::RouteBatch batch = router_->route_many(requests);
  queue.specs.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    queue.specs.push_back(router_->batch_specs(batch, i));
  }
}

void TrafficDriver::arrival(topo::NodeId node) {
  if (stopped_) return;
  evsim::Rng& rng = rngs_[node];
  if (batching()) {
    SpecQueue& queue = queues_[node];
    if (queue.next == queue.specs.size()) refill(node);
    network_->inject(std::move(queue.specs[queue.next++]));
  } else {
    const std::uint32_t max_k = network_->topology().num_nodes() - 1;
    std::uint32_t k = config_.fixed_destinations
                          ? config_.avg_destinations
                          : rng.uniform_int(1, 2 * config_.avg_destinations - 1);
    k = std::min(k, max_k);
    const std::vector<topo::NodeId> dests =
        rng.sample_destinations(network_->topology().num_nodes(), node, k);
    network_->inject(builder_(node, dests));
  }
  sched_->schedule_in(next_gap(rng), [this, node] { arrival(node); });
}

}  // namespace mcnet::worm
