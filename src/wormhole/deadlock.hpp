// Deadlock reporting helpers over the network's wait-for graph.
#pragma once

#include <string>
#include <vector>

#include "wormhole/network.hpp"

namespace mcnet::worm {

struct DeadlockReport {
  /// Worm ids forming a wait-for cycle; empty when no deadlock exists.
  std::vector<std::uint32_t> cycle;
  /// Human-readable dump of the cycle (one line per worm).
  std::string description;

  [[nodiscard]] bool deadlocked() const { return !cycle.empty(); }
};

/// Inspect the network for a deadlock cycle.
[[nodiscard]] DeadlockReport check_deadlock(const Network& network);

}  // namespace mcnet::worm
