#include "wormhole/channel_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcnet::worm {

ChannelPool::ChannelPool(std::uint32_t num_channels, std::uint8_t copies,
                         Arbitration arbitration,
                         std::function<double(std::uint32_t)> priority, std::uint64_t seed)
    : copies_(copies),
      arbitration_(arbitration),
      priority_(std::move(priority)),
      rng_(seed),
      holder_(static_cast<std::size_t>(num_channels) * copies, kNoWorm),
      queues_(num_channels) {
  if (copies == 0) throw std::invalid_argument("need >= 1 channel copy");
  if (arbitration == Arbitration::kOldestFirst && !priority_) {
    throw std::invalid_argument("oldest-first arbitration needs a priority function");
  }
}

std::optional<std::uint8_t> ChannelPool::acquire(ChannelId c, const ChannelRequest& req) {
  if (req.copy == kAnyCopy) {
    for (std::uint8_t k = 0; k < copies_; ++k) {
      if (holder_[index(c, k)] == kNoWorm) {
        holder_[index(c, k)] = req.worm_id;
        ++busy_;
        return k;
      }
    }
  } else {
    const auto k = static_cast<std::uint8_t>(req.copy);
    if (k >= copies_) throw std::invalid_argument("copy index out of range");
    if (holder_[index(c, k)] == kNoWorm) {
      holder_[index(c, k)] = req.worm_id;
      ++busy_;
      return k;
    }
  }
  queues_[c].push_back(req);
  return std::nullopt;
}

std::optional<std::pair<ChannelRequest, std::uint8_t>> ChannelPool::release(
    ChannelId c, std::uint8_t copy) {
  auto& slot = holder_[index(c, copy)];
  if (slot == kNoWorm) throw std::logic_error("releasing a free channel");
  slot = kNoWorm;
  --busy_;
  auto& q = queues_[c];
  // Collect the compatible waiters, then arbitrate (Section 2.3.3).
  std::vector<std::size_t> compatible;
  for (std::size_t i = 0; i < q.size(); ++i) {
    if (q[i].copy == kAnyCopy || q[i].copy == static_cast<std::int8_t>(copy)) {
      compatible.push_back(i);
      if (arbitration_ == Arbitration::kFcfs) break;  // first wins
    }
  }
  if (compatible.empty()) return std::nullopt;
  std::size_t pick = compatible.front();
  if (arbitration_ == Arbitration::kOldestFirst) {
    for (const std::size_t i : compatible) {
      if (priority_(q[i].worm_id) < priority_(q[pick].worm_id)) pick = i;
    }
  } else if (arbitration_ == Arbitration::kRandom) {
    pick = compatible[rng_.uniform_int(0, static_cast<std::uint32_t>(compatible.size() - 1))];
  }
  const ChannelRequest req = q[pick];
  q.erase(q.begin() + static_cast<std::ptrdiff_t>(pick));
  holder_[index(c, copy)] = req.worm_id;
  ++busy_;
  return std::make_pair(req, copy);
}

bool ChannelPool::retarget(ChannelId c, std::uint32_t old_worm, std::uint32_t old_link,
                           std::uint32_t new_worm, std::uint32_t new_link) {
  for (ChannelRequest& r : queues_[c]) {
    if (r.worm_id == old_worm && r.link_index == old_link) {
      r.worm_id = new_worm;
      r.link_index = new_link;
      return true;
    }
  }
  return false;
}

void ChannelPool::cancel_requests(std::uint32_t worm_id) {
  for (auto& q : queues_) {
    std::erase_if(q, [worm_id](const ChannelRequest& r) { return r.worm_id == worm_id; });
  }
}

}  // namespace mcnet::worm
