// Dynamic workload generation (Section 7.2): every node runs a multicast
// generator that repeatedly waits a random interarrival time, draws a
// uniform random destination set, and injects the multicast routed by the
// algorithm under test.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "wormhole/network.hpp"

namespace mcnet::mcast {
class Router;
}

namespace mcnet::worm {

struct TrafficConfig {
  /// Mean time between multicasts per node (the paper's reference point is
  /// 300 us).
  double mean_interarrival_s = 300e-6;
  /// Average number of destinations; the count is drawn uniformly from
  /// [1, 2*avg - 1] (mean = avg) unless `fixed_destinations`.
  std::uint32_t avg_destinations = 10;
  bool fixed_destinations = false;
  /// Interarrival distribution: uniform on [0, 2*mean) by default (the
  /// paper's "uniformly random" interval), exponential when set.
  bool exponential_interarrival = false;
  std::uint64_t seed = 1;
};

/// Builds the worm specs for one multicast (source + destinations).
/// Compatibility shim: new code routes through mcast::Router; a builder is
/// what remains for workloads that need per-message request rewriting.
using RouteBuilder = std::function<std::vector<WormSpec>(
    topo::NodeId source, const std::vector<topo::NodeId>& destinations)>;

/// Adapt a Router into a RouteBuilder (the router must outlive it).
[[nodiscard]] RouteBuilder make_route_builder(const mcast::Router& router);

/// Drives one generator per node on the shared scheduler.
class TrafficDriver {
 public:
  TrafficDriver(evsim::Scheduler& sched, Network& network, TrafficConfig config,
                RouteBuilder builder);

  /// Route every generated multicast through `router` (which must outlive
  /// the driver).
  TrafficDriver(evsim::Scheduler& sched, Network& network, TrafficConfig config,
                const mcast::Router& router);

  /// Schedule the first arrival of every node's generator.
  void start();
  /// Stop generating (in-flight worms continue draining).
  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

 private:
  void arrival(topo::NodeId node);
  [[nodiscard]] double next_gap(evsim::Rng& rng);

  evsim::Scheduler* sched_;
  Network* network_;
  TrafficConfig config_;
  RouteBuilder builder_;
  std::vector<evsim::Rng> rngs_;  // one stream per node
  bool stopped_ = false;
};

}  // namespace mcnet::worm
