// Dynamic workload generation (Section 7.2): every node runs a multicast
// generator that repeatedly waits a random interarrival time, draws a
// uniform random destination set, and injects the multicast routed by the
// algorithm under test.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "wormhole/network.hpp"

namespace mcnet::mcast {
class Router;
}

namespace mcnet::worm {

struct TrafficConfig {
  /// Mean time between multicasts per node (the paper's reference point is
  /// 300 us).
  double mean_interarrival_s = 300e-6;
  /// Average number of destinations; the count is drawn uniformly from
  /// [1, 2*avg - 1] (mean = avg) unless `fixed_destinations`.
  std::uint32_t avg_destinations = 10;
  bool fixed_destinations = false;
  /// Interarrival distribution: uniform on [0, 2*mean) by default (the
  /// paper's "uniformly random" interval), exponential when set.
  bool exponential_interarrival = false;
  std::uint64_t seed = 1;
  /// Requests routed per Router::route_many call.  1 (the default) is the
  /// exact legacy behaviour: one route per arrival, destination sets drawn
  /// from the same per-node stream as the interarrival gaps.  Values > 1
  /// prefetch that many destination draws per node from a dedicated
  /// destination stream and route them in one batch (amortised cache
  /// lookups and routing scratch); arrivals and injections are unchanged,
  /// but the destination randomness moves to its own stream, so results
  /// are deterministic yet not draw-for-draw identical to route_batch=1.
  /// Ignored by the RouteBuilder constructor (no batch API to call).
  std::uint32_t route_batch = 1;
};

/// Builds the worm specs for one multicast (source + destinations).
/// Compatibility shim: new code routes through mcast::Router; a builder is
/// what remains for workloads that need per-message request rewriting.
using RouteBuilder = std::function<std::vector<WormSpec>(
    topo::NodeId source, const std::vector<topo::NodeId>& destinations)>;

/// Adapt a Router into a RouteBuilder (the router must outlive it).
[[nodiscard]] RouteBuilder make_route_builder(const mcast::Router& router);

/// Drives one generator per node on the shared scheduler.
class TrafficDriver {
 public:
  TrafficDriver(evsim::Scheduler& sched, Network& network, TrafficConfig config,
                RouteBuilder builder);

  /// Route every generated multicast through `router` (which must outlive
  /// the driver).
  TrafficDriver(evsim::Scheduler& sched, Network& network, TrafficConfig config,
                const mcast::Router& router);

  /// Schedule the first arrival of every node's generator.
  void start();
  /// Stop generating (in-flight worms continue draining).
  void stop() { stopped_ = true; }
  [[nodiscard]] bool stopped() const { return stopped_; }

 private:
  void arrival(topo::NodeId node);
  [[nodiscard]] double next_gap(evsim::Rng& rng);
  [[nodiscard]] bool batching() const {
    return router_ != nullptr && config_.route_batch > 1;
  }
  /// Draw route_batch destination sets for `node`, route them in one
  /// route_many call, and refill the node's prefetch queue of worm specs.
  void refill(topo::NodeId node);

  /// Per-node prefetch queue of routed specs (batch mode only).
  struct SpecQueue {
    std::vector<std::vector<WormSpec>> specs;
    std::size_t next = 0;
  };

  evsim::Scheduler* sched_;
  Network* network_;
  TrafficConfig config_;
  RouteBuilder builder_;
  const mcast::Router* router_ = nullptr;  // set by the Router ctor
  std::vector<evsim::Rng> rngs_;       // one stream per node
  std::vector<evsim::Rng> dest_rngs_;  // batch-mode destination streams
  std::vector<SpecQueue> queues_;
  bool stopped_ = false;
};

}  // namespace mcnet::worm
