// Physical channel state for the wormhole simulator.
//
// Each directed topology channel exists in `copies` physical instances
// (copies = 2 models the paper's double-channel networks of Section 6.2.1).
// Worms acquire whole channels from header arrival until their tail flit
// has drained past; blocked requests wait in a strict FCFS queue per
// channel.  A request may demand a specific copy (the tree algorithms pin
// each quadrant subnetwork to its own copy, which is what makes them
// deadlock-free) or accept any copy (the path algorithms' subnetworks are
// acyclic regardless of copy).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "evsim/random.hpp"
#include "topology/topology.hpp"

namespace mcnet::worm {

/// Resource selection policy (Section 2.3.3): which waiting message gets a
/// freed channel.
enum class Arbitration : std::uint8_t {
  kFcfs,         // first come first served (the default everywhere)
  kOldestFirst,  // fixed priority by message age
  kRandom,       // uniformly random among compatible waiters
};

using topo::ChannelId;

inline constexpr std::uint32_t kNoWorm = static_cast<std::uint32_t>(-1);
inline constexpr std::int8_t kAnyCopy = -1;

/// A pending acquisition: worm `worm_id` wants this channel for its link
/// `link_index`, restricted to `copy` (or kAnyCopy).
struct ChannelRequest {
  std::uint32_t worm_id = kNoWorm;
  std::uint32_t link_index = 0;
  std::int8_t copy = kAnyCopy;
};

class ChannelPool {
 public:
  /// `priority` (required for kOldestFirst) maps a worm id to its creation
  /// time; smaller wins.
  ChannelPool(std::uint32_t num_channels, std::uint8_t copies,
              Arbitration arbitration = Arbitration::kFcfs,
              std::function<double(std::uint32_t)> priority = {},
              std::uint64_t seed = 1);

  /// Try to acquire a copy of channel `c`; returns the granted copy index,
  /// or queues the request and returns nullopt.
  [[nodiscard]] std::optional<std::uint8_t> acquire(ChannelId c, const ChannelRequest& req);

  /// Release copy `copy` of channel `c`; if a compatible waiter exists, the
  /// copy is handed to the first one and (request, copy) is returned so the
  /// caller can notify the worm.  Strict FCFS among compatible waiters.
  [[nodiscard]] std::optional<std::pair<ChannelRequest, std::uint8_t>> release(
      ChannelId c, std::uint8_t copy);

  /// Drop every queued request of `worm_id` (used when aborting a worm).
  void cancel_requests(std::uint32_t worm_id);

  /// Re-address a queued request in place, preserving its FCFS position
  /// (used by virtual cut-through to hand a blocked wait over to the
  /// continuation worm).  Returns false if no such request is queued.
  bool retarget(ChannelId c, std::uint32_t old_worm, std::uint32_t old_link,
                std::uint32_t new_worm, std::uint32_t new_link);

  [[nodiscard]] std::uint32_t holder(ChannelId c, std::uint8_t copy) const {
    return holder_[index(c, copy)];
  }
  [[nodiscard]] const std::deque<ChannelRequest>& waiters(ChannelId c) const {
    return queues_[c];
  }
  [[nodiscard]] std::uint8_t copies() const { return copies_; }
  [[nodiscard]] std::uint32_t num_channels() const {
    return static_cast<std::uint32_t>(queues_.size());
  }
  [[nodiscard]] std::uint32_t busy_count() const { return busy_; }

 private:
  [[nodiscard]] std::size_t index(ChannelId c, std::uint8_t copy) const {
    return static_cast<std::size_t>(c) * copies_ + copy;
  }

  std::uint8_t copies_;
  Arbitration arbitration_;
  std::function<double(std::uint32_t)> priority_;
  evsim::Rng rng_;
  std::uint32_t busy_ = 0;
  std::vector<std::uint32_t> holder_;           // per physical copy
  std::vector<std::deque<ChannelRequest>> queues_;  // per logical channel
};

}  // namespace mcnet::worm
