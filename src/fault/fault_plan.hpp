// Deterministic fault schedules: a FaultPlan is a time-ordered list of
// link/node failures and recoveries, built by hand or sampled from a seed.
// The same (topology, seed, fraction) triple always yields the same plan,
// so every degraded-network experiment is reproducible.
//
// Plans are pure data; fault_injector.hpp binds one onto a running
// wormhole Network via the event scheduler.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/topology.hpp"

namespace mcnet::fault {

using topo::ChannelId;
using topo::NodeId;

enum class FaultKind : std::uint8_t {
  kChannelFail,
  kChannelRecover,
  kNodeFail,
  kNodeRecover,
};

struct FaultEvent {
  double time = 0.0;  // simulated seconds
  FaultKind kind = FaultKind::kChannelFail;
  std::uint32_t id = 0;  // ChannelId for channel events, NodeId for node events

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& fail_channel_at(double t, ChannelId c);
  FaultPlan& recover_channel_at(double t, ChannelId c);
  /// Fail / recover both directed channels of the undirected link (u, v).
  /// Throws std::invalid_argument when u and v are not neighbours.
  FaultPlan& fail_link_at(double t, const topo::Topology& topology, NodeId u, NodeId v);
  FaultPlan& recover_link_at(double t, const topo::Topology& topology, NodeId u, NodeId v);
  FaultPlan& fail_node_at(double t, NodeId n);
  FaultPlan& recover_node_at(double t, NodeId n);

  /// Stable-sort events by time (builders append out of order freely).
  void sort();

  [[nodiscard]] bool empty() const { return events.empty(); }

  /// Sample `fraction` of the topology's undirected links (rounded down,
  /// without replacement) and fail both directions of each at a time drawn
  /// uniformly from [t_begin, t_end].  Fully determined by `seed`.
  [[nodiscard]] static FaultPlan random_link_failures(const topo::Topology& topology,
                                                      double fraction, double t_begin,
                                                      double t_end, std::uint64_t seed);
};

/// All undirected links of `topology` as (min-end, max-end) directed channel
/// pairs, ordered by channel id of the lower end.
[[nodiscard]] std::vector<std::pair<ChannelId, ChannelId>> undirected_links(
    const topo::Topology& topology);

}  // namespace mcnet::fault
