// Binds a FaultPlan onto a live wormhole Network: each event is scheduled
// on the simulation clock and applied through the Network's fail/recover
// entry points, so worms holding or requesting failed hardware are killed
// at the instant the fault fires.
#pragma once

#include "evsim/scheduler.hpp"
#include "fault/fault_plan.hpp"

namespace mcnet::worm {
class Network;
}

namespace mcnet::fault {

/// Apply one event to the network immediately (at the current simulated
/// time).
void apply_fault_event(worm::Network& network, const FaultEvent& event);

/// Schedule every event of `plan` at its absolute simulated time.  Events
/// in the past (time < sched.now()) throw, matching Scheduler semantics.
void schedule_fault_plan(worm::Network& network, evsim::Scheduler& sched,
                         const FaultPlan& plan);

}  // namespace mcnet::fault
