#include "fault/fault_plan.hpp"

#include <algorithm>
#include <stdexcept>

#include "evsim/random.hpp"

namespace mcnet::fault {

namespace {

ChannelId require_channel(const topo::Topology& topology, NodeId u, NodeId v) {
  const ChannelId c = topology.channel(u, v);
  if (c == topo::kInvalidChannel) {
    throw std::invalid_argument("fault plan: " + std::to_string(u) + " -> " +
                                std::to_string(v) + " is not a link of " + topology.name());
  }
  return c;
}

}  // namespace

FaultPlan& FaultPlan::fail_channel_at(double t, ChannelId c) {
  events.push_back({t, FaultKind::kChannelFail, c});
  return *this;
}

FaultPlan& FaultPlan::recover_channel_at(double t, ChannelId c) {
  events.push_back({t, FaultKind::kChannelRecover, c});
  return *this;
}

FaultPlan& FaultPlan::fail_link_at(double t, const topo::Topology& topology, NodeId u,
                                   NodeId v) {
  fail_channel_at(t, require_channel(topology, u, v));
  fail_channel_at(t, require_channel(topology, v, u));
  return *this;
}

FaultPlan& FaultPlan::recover_link_at(double t, const topo::Topology& topology, NodeId u,
                                      NodeId v) {
  recover_channel_at(t, require_channel(topology, u, v));
  recover_channel_at(t, require_channel(topology, v, u));
  return *this;
}

FaultPlan& FaultPlan::fail_node_at(double t, NodeId n) {
  events.push_back({t, FaultKind::kNodeFail, n});
  return *this;
}

FaultPlan& FaultPlan::recover_node_at(double t, NodeId n) {
  events.push_back({t, FaultKind::kNodeRecover, n});
  return *this;
}

void FaultPlan::sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time < b.time; });
}

std::vector<std::pair<ChannelId, ChannelId>> undirected_links(
    const topo::Topology& topology) {
  std::vector<std::pair<ChannelId, ChannelId>> links;
  links.reserve(topology.num_channels() / 2);
  for (ChannelId c = 0; c < topology.num_channels(); ++c) {
    const topo::ChannelEnds ends = topology.channel_ends(c);
    if (ends.from < ends.to) {
      links.emplace_back(c, topology.channel(ends.to, ends.from));
    }
  }
  return links;
}

FaultPlan FaultPlan::random_link_failures(const topo::Topology& topology, double fraction,
                                          double t_begin, double t_end,
                                          std::uint64_t seed) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw std::invalid_argument("fault plan: link-failure fraction must be in [0, 1]");
  }
  if (t_end < t_begin) throw std::invalid_argument("fault plan: t_end before t_begin");

  std::vector<std::pair<ChannelId, ChannelId>> links = undirected_links(topology);
  const std::size_t count =
      static_cast<std::size_t>(fraction * static_cast<double>(links.size()));

  // Partial Fisher-Yates: the first `count` entries are a uniform sample.
  evsim::Rng rng(seed);
  FaultPlan plan;
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t j =
        i + rng.uniform_int(0, static_cast<std::uint32_t>(links.size() - 1 - i));
    std::swap(links[i], links[j]);
    const double t = t_end > t_begin ? rng.uniform(t_begin, t_end) : t_begin;
    plan.fail_channel_at(t, links[i].first);
    plan.fail_channel_at(t, links[i].second);
  }
  plan.sort();
  return plan;
}

}  // namespace mcnet::fault
