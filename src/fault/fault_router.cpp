#include "fault/fault_router.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace mcnet::fault {

FaultAwareRouter::FaultAwareRouter(std::unique_ptr<mcast::Router> inner,
                                   std::shared_ptr<FaultState> faults)
    : inner_(std::move(inner)),
      cache_(dynamic_cast<mcast::CachingRouter*>(inner_.get())),
      faults_(std::move(faults)),
      seen_epoch_(0) {
  if (!inner_) throw std::invalid_argument("FaultAwareRouter: inner router must not be null");
  if (!faults_) throw std::invalid_argument("FaultAwareRouter: fault state must not be null");
  if (&inner_->topology() != &faults_->topology() &&
      inner_->topology().num_channels() != faults_->topology().num_channels()) {
    throw std::invalid_argument("FaultAwareRouter: fault state built for another topology");
  }
  seen_epoch_.store(faults_->epoch(), std::memory_order_release);
}

void FaultAwareRouter::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metric_fallbacks_ = metric_partitions_ = metric_invalidations_ = nullptr;
    return;
  }
  metric_fallbacks_ = &registry->counter("fault.fallbacks");
  metric_partitions_ = &registry->counter("fault.partitions");
  metric_invalidations_ = &registry->counter("fault.epoch_invalidations");
  if (cache_ != nullptr) cache_->set_metrics(registry);
}

void FaultAwareRouter::sync_epoch() const {
  const std::uint64_t epoch = faults_->epoch();
  std::uint64_t seen = seen_epoch_.load(std::memory_order_acquire);
  if (epoch == seen) return;
  // One caller wins the CAS and clears; late epochs re-clear, which is
  // correct (just redundant) since stale entries are gone either way.
  if (seen_epoch_.compare_exchange_strong(seen, epoch, std::memory_order_acq_rel) &&
      cache_ != nullptr) {
    cache_->clear();
    if (metric_invalidations_ != nullptr) metric_invalidations_->inc();
  }
}

bool FaultAwareRouter::route_usable(const mcast::MulticastRoute& route) const {
  if (faults_->healthy()) return true;
  const topo::Topology& t = inner_->topology();
  for (const mcast::PathRoute& p : route.paths) {
    for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
      if (!faults_->channel_usable(t.channel(p.nodes[i], p.nodes[i + 1]))) return false;
    }
  }
  for (const mcast::TreeRoute& tree : route.trees) {
    for (const mcast::TreeRoute::Link& l : tree.links) {
      if (!faults_->channel_usable(t.channel(l.from, l.to))) return false;
    }
  }
  return true;
}

mcast::MulticastRoute FaultAwareRouter::unicast_split(
    NodeId source, const std::vector<NodeId>& destinations) const {
  const topo::Topology& t = inner_->topology();
  // BFS parent forest from the source over usable channels.
  std::vector<NodeId> parent(t.num_nodes(), topo::kInvalidNode);
  parent[source] = source;
  std::deque<NodeId> frontier{source};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const NodeId v : t.neighbors(u)) {
      if (parent[v] != topo::kInvalidNode) continue;
      if (!faults_->channel_usable(t.channel(u, v))) continue;
      parent[v] = u;
      frontier.push_back(v);
    }
  }

  mcast::MulticastRoute route;
  route.source = source;
  route.paths.reserve(destinations.size());
  for (const NodeId d : destinations) {
    if (parent[d] == topo::kInvalidNode) {
      throw std::logic_error("unicast_split: destination unreachable");
    }
    mcast::PathRoute path;
    for (NodeId u = d; u != source; u = parent[u]) path.nodes.push_back(u);
    path.nodes.push_back(source);
    std::reverse(path.nodes.begin(), path.nodes.end());
    path.delivery_hops.push_back(static_cast<std::uint32_t>(path.nodes.size() - 1));
    route.paths.push_back(std::move(path));
  }
  return route;
}

FaultRouteResult FaultAwareRouter::route_with_faults(
    const mcast::MulticastRequest& request) const {
  sync_epoch();
  return route_with_faults_synced(request);
}

FaultRouteResult FaultAwareRouter::route_with_faults_synced(
    const mcast::MulticastRequest& request) const {
  const topo::Topology& t = inner_->topology();
  const mcast::MulticastRequest req = request.normalized(t.num_nodes());

  FaultRouteResult result;
  result.epoch = faults_->epoch();
  result.route.source = req.source;
  if (faults_->healthy()) {
    result.route = inner_->route(req);
    return result;
  }

  // Partition detection: reachability over the degraded topology decides
  // exactly which destinations can be served at all.
  const std::vector<std::uint8_t> seen = faults_->reachable_from(req.source);
  std::vector<NodeId> reachable;
  reachable.reserve(req.destinations.size());
  for (const NodeId d : req.destinations) {
    if (seen[d] != 0) {
      reachable.push_back(d);
    } else {
      result.unreachable.push_back(d);
    }
  }
  if (!result.unreachable.empty() && metric_partitions_ != nullptr) {
    metric_partitions_->inc();
  }
  if (reachable.empty()) return result;

  // Prefer the wrapped algorithm's route when it happens to dodge every
  // failure; otherwise split into per-destination BFS unicasts.
  try {
    mcast::MulticastRoute candidate =
        inner_->route(mcast::MulticastRequest{req.source, reachable});
    if (route_usable(candidate)) {
      result.route = std::move(candidate);
      return result;
    }
  } catch (const std::exception&) {
    // Some algorithms throw on shapes they cannot route; fall through.
  }
  result.degraded = true;
  if (metric_fallbacks_ != nullptr) metric_fallbacks_->inc();
  result.route = unicast_split(req.source, reachable);
  return result;
}

mcast::MulticastRoute FaultAwareRouter::route(const mcast::MulticastRequest& request) const {
  FaultRouteResult result = route_with_faults(request);
  if (!result.unreachable.empty()) {
    throw std::runtime_error("multicast destination " +
                             std::to_string(result.unreachable.front()) +
                             " is unreachable in the degraded topology (" +
                             std::to_string(result.unreachable.size()) + " of " +
                             std::to_string(request.destinations.size()) + " cut off)");
  }
  return std::move(result.route);
}

mcast::RouteBatch FaultAwareRouter::route_many(
    std::span<const mcast::MulticastRequest> requests) const {
  // One epoch check covers the whole batch: a concurrent fault injection
  // lands either before it (whole batch sees the new epoch) or after it
  // (whole batch routed against the old one), exactly as a scalar loop
  // straddling the injection would.
  sync_epoch();
  if (faults_->healthy()) return inner_->route_many(requests);

  mcast::RouteBatch batch;
  batch.reserve(requests.size());
  for (const mcast::MulticastRequest& request : requests) {
    FaultRouteResult result = route_with_faults_synced(request);
    if (!result.unreachable.empty()) {
      throw std::runtime_error("multicast destination " +
                               std::to_string(result.unreachable.front()) +
                               " is unreachable in the degraded topology (" +
                               std::to_string(result.unreachable.size()) + " of " +
                               std::to_string(request.destinations.size()) +
                               " cut off)");
    }
    batch.append(result.route);
  }
  return batch;
}

std::unique_ptr<FaultAwareRouter> make_fault_aware_router(
    const topo::Topology& topology, mcast::Algorithm algorithm,
    std::shared_ptr<FaultState> faults, std::uint8_t copies,
    mcast::RouteCacheConfig cache_config) {
  return std::make_unique<FaultAwareRouter>(
      std::make_unique<mcast::CachingRouter>(mcast::make_router(topology, algorithm, copies),
                                             cache_config),
      std::move(faults));
}

}  // namespace mcnet::fault
