// Failure-aware routing decorator over mcast::Router.
//
// A FaultAwareRouter consults a shared FaultState on every request:
//
//  * routes from the wrapped algorithm are validated against the failure
//    set; a route that would traverse a failed channel or node falls back
//    to per-destination unicast splitting over BFS shortest paths in the
//    degraded topology (the tree/path structure the Chapter 5/6 algorithms
//    rely on does not survive arbitrary link cuts);
//  * destinations cut off by a partition are detected by reachability and
//    reported as unreachable instead of routed into a dead end;
//  * when the wrapped router is a CachingRouter, its entries are
//    invalidated on every fault-epoch change, so no cached route ever
//    crosses a channel that failed after it was computed.
//
// The fallback unicast paths are shortest paths in whatever subgraph
// survives, not label-ordered paths, so the deadlock-freedom guarantees of
// Chapter 6 do not extend to degraded operation; the service layer's
// timeout + abort (multicast_reliable) is the backstop that keeps the
// simulation live regardless.
#pragma once

#include <atomic>
#include <memory>

#include "core/route_cache.hpp"
#include "core/router.hpp"
#include "fault/fault_state.hpp"

namespace mcnet::obs {
class MetricsRegistry;
class Counter;
}  // namespace mcnet::obs

namespace mcnet::fault {

/// Outcome of routing one request against the current failure state.
struct FaultRouteResult {
  /// Route covering exactly the reachable destinations (empty when none).
  mcast::MulticastRoute route;
  /// Destinations with no usable path from the source, in request order.
  std::vector<NodeId> unreachable;
  /// True when the wrapped algorithm's route was unusable and the fallback
  /// unicast splitting produced `route` instead.
  bool degraded = false;
  /// Fault epoch the result was computed against.
  std::uint64_t epoch = 0;
};

class FaultAwareRouter final : public mcast::Router {
 public:
  /// `faults` is shared with the Network simulating the same topology (see
  /// worm::Network::fault_state()).  The inner router is typically a
  /// CachingRouter: it is detected and cleared on epoch changes.
  FaultAwareRouter(std::unique_ptr<mcast::Router> inner,
                   std::shared_ptr<FaultState> faults);

  /// Route around the current failure set; never throws on unreachable
  /// destinations (they are reported in the result instead).
  [[nodiscard]] FaultRouteResult route_with_faults(
      const mcast::MulticastRequest& request) const;

  /// Router interface: equivalent to route_with_faults(), but throws
  /// std::runtime_error when any destination is unreachable (the plain
  /// interface has no channel for partial delivery).
  [[nodiscard]] mcast::MulticastRoute route(
      const mcast::MulticastRequest& request) const override;

  /// Batch form: the fault epoch is synced once for the whole batch, then a
  /// healthy network delegates straight to the inner router's batch path
  /// (cache included); a degraded network routes each request through the
  /// fault-aware fallback.  Throws std::runtime_error exactly as route()
  /// does when a request has unreachable destinations.
  [[nodiscard]] mcast::RouteBatch route_many(
      std::span<const mcast::MulticastRequest> requests) const override;

  [[nodiscard]] std::vector<worm::WormSpec> specs(
      const mcast::MulticastRoute& route) const override {
    return inner_->specs(route);
  }
  [[nodiscard]] std::string_view name() const override { return inner_->name(); }
  [[nodiscard]] mcast::Algorithm algorithm() const override { return inner_->algorithm(); }
  [[nodiscard]] bool deadlock_free() const override { return inner_->deadlock_free(); }
  [[nodiscard]] const topo::Topology& topology() const override {
    return inner_->topology();
  }
  [[nodiscard]] std::uint8_t channel_copies() const override {
    return inner_->channel_copies();
  }

  [[nodiscard]] const mcast::Router& inner() const { return *inner_; }
  [[nodiscard]] const FaultState& faults() const { return *faults_; }
  [[nodiscard]] const std::shared_ptr<FaultState>& fault_state() const { return faults_; }
  /// The wrapped route cache, when present (nullptr otherwise).
  [[nodiscard]] const mcast::CachingRouter* cache() const { return cache_; }

  /// True iff `route` avoids every failed channel and node.  Exposed for
  /// tests and audits.
  [[nodiscard]] bool route_usable(const mcast::MulticastRoute& route) const;

  /// Register live counters fault.fallbacks (degraded unicast-split
  /// routes), fault.partitions (requests with >= 1 unreachable
  /// destination) and fault.epoch_invalidations (cache clears on fault
  /// epoch changes) on `registry`; nullptr detaches.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  /// Clear the wrapped cache if the fault epoch moved since the last call.
  void sync_epoch() const;

  /// route_with_faults body after the epoch sync (route_many syncs once per
  /// batch instead of once per request).
  [[nodiscard]] FaultRouteResult route_with_faults_synced(
      const mcast::MulticastRequest& request) const;

  /// BFS shortest-path unicast per destination over usable channels only.
  /// Every destination must be reachable (callers filter first).
  [[nodiscard]] mcast::MulticastRoute unicast_split(
      NodeId source, const std::vector<NodeId>& destinations) const;

  std::unique_ptr<mcast::Router> inner_;
  mcast::CachingRouter* cache_;  // inner_, when it is a CachingRouter
  std::shared_ptr<FaultState> faults_;
  mutable std::atomic<std::uint64_t> seen_epoch_;
  obs::Counter* metric_fallbacks_ = nullptr;
  obs::Counter* metric_partitions_ = nullptr;
  obs::Counter* metric_invalidations_ = nullptr;
};

/// make_router(...) behind a CachingRouter behind a FaultAwareRouter — the
/// standard stack for degraded-network simulation.
[[nodiscard]] std::unique_ptr<FaultAwareRouter> make_fault_aware_router(
    const topo::Topology& topology, mcast::Algorithm algorithm,
    std::shared_ptr<FaultState> faults, std::uint8_t copies = 1,
    mcast::RouteCacheConfig cache_config = {});

}  // namespace mcnet::fault
