#include "fault/fault_state.hpp"

#include <deque>

namespace mcnet::fault {

FaultState::FaultState(const topo::Topology& topology)
    : topology_(&topology),
      channel_failed_(topology.num_channels(), 0),
      node_failed_(topology.num_nodes(), 0) {}

bool FaultState::fail_channel(ChannelId c) {
  if (channel_failed_[c] != 0) return false;
  channel_failed_[c] = 1;
  ++failed_channel_count_;
  bump();
  return true;
}

bool FaultState::recover_channel(ChannelId c) {
  if (channel_failed_[c] == 0) return false;
  channel_failed_[c] = 0;
  --failed_channel_count_;
  bump();
  return true;
}

bool FaultState::fail_node(NodeId n) {
  if (node_failed_[n] != 0) return false;
  node_failed_[n] = 1;
  ++failed_node_count_;
  bump();
  return true;
}

bool FaultState::recover_node(NodeId n) {
  if (node_failed_[n] == 0) return false;
  node_failed_[n] = 0;
  --failed_node_count_;
  bump();
  return true;
}

std::vector<std::uint8_t> FaultState::reachable_from(NodeId source) const {
  std::vector<std::uint8_t> seen(topology_->num_nodes(), 0);
  if (node_failed_[source] != 0) return seen;
  seen[source] = 1;
  std::deque<NodeId> frontier{source};
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop_front();
    for (const NodeId v : topology_->neighbors(u)) {
      if (seen[v] != 0) continue;
      if (!channel_usable(topology_->channel(u, v))) continue;
      seen[v] = 1;
      frontier.push_back(v);
    }
  }
  return seen;
}

std::vector<NodeId> FaultState::unreachable_destinations(
    NodeId source, const std::vector<NodeId>& destinations) const {
  if (healthy()) return {};
  const std::vector<std::uint8_t> seen = reachable_from(source);
  std::vector<NodeId> out;
  for (const NodeId d : destinations) {
    if (seen[d] == 0) out.push_back(d);
  }
  return out;
}

}  // namespace mcnet::fault
