// Live failure state of a network: which directed channels and nodes are
// currently failed, plus a monotonically increasing *fault epoch* that
// bumps on every change.  Consumers that precompute or cache anything
// derived from the healthy topology (route caches, reachability sets)
// compare epochs instead of diffing failure sets.
//
// FaultState is the single source of truth shared between the wormhole
// Network (which kills worms on the failed hardware) and the fault-aware
// routing layer (which routes around it).  Mutations must happen on the
// simulation thread -- in a running simulation, always mutate through
// worm::Network::fail_channel()/fail_node() so in-flight worms are killed
// consistently; mutating the state directly is only safe before injection
// starts.  epoch() is atomic and may be polled from other threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "topology/topology.hpp"

namespace mcnet::fault {

using topo::ChannelId;
using topo::NodeId;

class FaultState {
 public:
  explicit FaultState(const topo::Topology& topology);

  /// Mark a directed channel failed / recovered.  Return true when the
  /// state changed (and the epoch advanced); repeated calls are idempotent.
  bool fail_channel(ChannelId c);
  bool recover_channel(ChannelId c);

  /// Mark a node failed / recovered.  A failed node cannot source, sink or
  /// forward messages: every channel incident to it becomes unusable
  /// (without being individually marked failed, so recovery is exact).
  bool fail_node(NodeId n);
  bool recover_node(NodeId n);

  [[nodiscard]] bool channel_failed(ChannelId c) const { return channel_failed_[c] != 0; }
  [[nodiscard]] bool node_failed(NodeId n) const { return node_failed_[n] != 0; }

  /// A channel carries traffic iff it is not failed and neither endpoint is.
  [[nodiscard]] bool channel_usable(ChannelId c) const {
    if (channel_failed_[c] != 0) return false;
    const topo::ChannelEnds ends = topology_->channel_ends(c);
    return node_failed_[ends.from] == 0 && node_failed_[ends.to] == 0;
  }

  /// Fast path: true when nothing at all is failed.
  [[nodiscard]] bool healthy() const {
    return failed_channel_count_ == 0 && failed_node_count_ == 0;
  }

  /// Bumped on every successful fail/recover call.
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t failed_channel_count() const { return failed_channel_count_; }
  [[nodiscard]] std::size_t failed_node_count() const { return failed_node_count_; }
  [[nodiscard]] const topo::Topology& topology() const { return *topology_; }

  /// BFS over usable channels: flags[v] != 0 iff v is reachable from
  /// `source` in the degraded topology (a failed source reaches nothing,
  /// not even itself).
  [[nodiscard]] std::vector<std::uint8_t> reachable_from(NodeId source) const;

  /// The subset of `destinations` unreachable from `source`, in input order.
  [[nodiscard]] std::vector<NodeId> unreachable_destinations(
      NodeId source, const std::vector<NodeId>& destinations) const;

 private:
  void bump() { epoch_.fetch_add(1, std::memory_order_acq_rel); }

  const topo::Topology* topology_;
  std::vector<std::uint8_t> channel_failed_;  // per directed channel
  std::vector<std::uint8_t> node_failed_;     // per node
  std::size_t failed_channel_count_ = 0;
  std::size_t failed_node_count_ = 0;
  std::atomic<std::uint64_t> epoch_{0};
};

}  // namespace mcnet::fault
