#include "fault/fault_injector.hpp"

#include "wormhole/network.hpp"

namespace mcnet::fault {

void apply_fault_event(worm::Network& network, const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kChannelFail:
      network.fail_channel(event.id);
      break;
    case FaultKind::kChannelRecover:
      network.recover_channel(event.id);
      break;
    case FaultKind::kNodeFail:
      network.fail_node(event.id);
      break;
    case FaultKind::kNodeRecover:
      network.recover_node(event.id);
      break;
  }
}

void schedule_fault_plan(worm::Network& network, evsim::Scheduler& sched,
                         const FaultPlan& plan) {
  for (const FaultEvent& event : plan.events) {
    sched.schedule_at(event.time,
                      [&network, event] { apply_fault_event(network, event); });
  }
}

}  // namespace mcnet::fault
