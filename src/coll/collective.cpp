#include "coll/collective.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "evsim/scheduler.hpp"
#include "obs/metrics.hpp"

namespace mcnet::coll {

const char* to_string(OpKind op) {
  switch (op) {
    case OpKind::kBroadcast: return "broadcast";
    case OpKind::kBarrier: return "barrier";
    case OpKind::kAllgather: return "allgather";
    case OpKind::kAllreduce: return "allreduce";
    case OpKind::kAllToAllBroadcast: return "all_to_all_broadcast";
  }
  return "?";
}

void CollConfig::validate() const {
  if (chunks == 0) {
    throw std::invalid_argument("CollConfig.chunks must be >= 1 (got 0)");
  }
  if (max_reissues_per_chunk == 0) {
    throw std::invalid_argument("CollConfig.max_reissues_per_chunk must be >= 1 (got 0)");
  }
  if (!(reissue_backoff_s >= 0.0)) {
    throw std::invalid_argument("CollConfig.reissue_backoff_s must be >= 0 (got " +
                                std::to_string(reissue_backoff_s) + ")");
  }
}

Collective::Collective(svc::GroupService& groups, svc::GroupId group, CollConfig config)
    : groups_(&groups),
      group_(group),
      config_(config),
      alive_token_(std::make_shared<const bool>(true)) {
  config_.validate();
  (void)groups_->view(group_);  // throws for an unknown group
  delivery_hook_ = groups_->add_delivery_hook(
      [this](svc::GroupId g, topo::NodeId receiver, topo::NodeId sender,
             svc::SeqNum seq, svc::ViewId /*view*/) {
        if (g == group_) on_delivery(receiver, sender, seq);
      });
  view_hook_ = groups_->add_view_settled_hook(
      [this](svc::GroupId g, const svc::MembershipView& view) {
        if (g == group_) on_view_settled(view);
      });
}

Collective::~Collective() {
  groups_->remove_delivery_hook(delivery_hook_);
  groups_->remove_view_settled_hook(view_hook_);
}

std::uint64_t Collective::broadcast(topo::NodeId root, DoneFn done) {
  return start_phase(OpKind::kBroadcast, root, std::move(done));
}
std::uint64_t Collective::barrier(DoneFn done) {
  return start_phase(OpKind::kBarrier, topo::kInvalidNode, std::move(done));
}
std::uint64_t Collective::allgather(DoneFn done) {
  return start_phase(OpKind::kAllgather, topo::kInvalidNode, std::move(done));
}
std::uint64_t Collective::allreduce(DoneFn done) {
  return start_phase(OpKind::kAllreduce, topo::kInvalidNode, std::move(done));
}
std::uint64_t Collective::all_to_all_broadcast(DoneFn done) {
  return start_phase(OpKind::kAllToAllBroadcast, topo::kInvalidNode, std::move(done));
}

std::uint64_t Collective::start_phase(OpKind op, topo::NodeId broadcast_root, DoneFn done) {
  if (phase_.active) {
    throw std::logic_error("Collective: a phase is already running (op " +
                           std::string(to_string(phase_.op)) + ")");
  }

  Phase p;
  p.op = op;
  p.id = next_phase_++;
  p.roster = groups_->view(group_).members;
  p.started_at = groups_->service().scheduler().now();
  const std::size_t m = p.roster.size();
  p.alive = Bitset(m);
  for (std::size_t r = 0; r < m; ++r) p.alive.set(r);
  p.done_fn = std::move(done);

  const auto make_gather = [&p, m](std::uint32_t root, std::uint32_t chunk) {
    GatherTask t;
    t.root = root;
    t.chunk = chunk;
    t.done = Bitset(m);
    t.covered = Bitset(m);
    t.done.set(root);  // the root holds its own data from the start
    p.gather.push_back(std::move(t));
  };

  switch (op) {
    case OpKind::kBroadcast: {
      const std::size_t r0 =
          std::lower_bound(p.roster.begin(), p.roster.end(), broadcast_root) -
          p.roster.begin();
      if (r0 >= m || p.roster[r0] != broadcast_root) {
        throw std::invalid_argument("Collective::broadcast: root " +
                                    std::to_string(broadcast_root) +
                                    " is not a group member");
      }
      for (std::uint32_t c = 0; c < config_.chunks; ++c)
        make_gather(static_cast<std::uint32_t>(r0), c);
      break;
    }
    case OpKind::kBarrier:
      // One arrival token per member; chunking is meaningless for an
      // empty payload.
      for (std::uint32_t r = 0; r < m; ++r) make_gather(r, 0);
      break;
    case OpKind::kAllgather:
    case OpKind::kAllToAllBroadcast:
      for (std::uint32_t r = 0; r < m; ++r)
        for (std::uint32_t c = 0; c < config_.chunks; ++c) make_gather(r, c);
      break;
    case OpKind::kAllreduce:
      p.reduce.reserve(config_.chunks);
      for (std::uint32_t c = 0; c < config_.chunks; ++c) {
        ReduceChunk rc;
        rc.owner = m == 0 ? 0 : static_cast<std::uint32_t>(c % m);
        rc.contribs = Bitset(m);
        rc.contrib_covered = Bitset(m);
        rc.contrib_issued = Bitset(m);
        rc.done = Bitset(m);
        rc.covered = Bitset(m);
        if (m != 0) rc.contribs.set(rc.owner);  // owner's own contribution is local
        p.reduce.push_back(std::move(rc));
      }
      break;
  }

  const std::size_t n_observed =
      op == OpKind::kAllreduce ? p.reduce.size() : p.gather.size();
  p.observed.assign(m, Bitset(n_observed));
  // Roots observe their own chunks without traffic.
  for (std::size_t i = 0; i < p.gather.size(); ++i) {
    p.observed[p.gather[i].root].set(i);
  }

  p.active = true;
  phase_ = std::move(p);
  stats_.phases_started++;
  if (metrics_.active()) metrics_.phases_started->inc();

  step_all(false);
  check_complete();
  return phase_.id;
}

std::size_t Collective::rank_of(topo::NodeId node) const {
  const auto it = std::lower_bound(phase_.roster.begin(), phase_.roster.end(), node);
  if (it == phase_.roster.end() || *it != node) return npos;
  return static_cast<std::size_t>(it - phase_.roster.begin());
}

std::size_t Collective::lowest_live_holder(const Bitset& done) const {
  for (std::size_t r = 0; r < phase_.alive.size(); ++r) {
    if (phase_.alive.test(r) && done.test(r)) return r;
  }
  return npos;
}

std::size_t Collective::lowest_live() const {
  for (std::size_t r = 0; r < phase_.alive.size(); ++r) {
    if (phase_.alive.test(r)) return r;
  }
  return npos;
}

void Collective::send_chunk(std::uint32_t src, std::vector<std::uint32_t> targets,
                            MsgTag tag, bool first_issue) {
  const svc::MembershipView& view = groups_->view(group_);
  const topo::NodeId src_node = phase_.roster[src];
  // A source or target that already left the current view cannot be
  // addressed; the view-settled restart re-roots / waives it.
  if (!view.contains(src_node)) return;
  std::vector<topo::NodeId> dest_nodes;
  std::vector<std::uint32_t> live_targets;
  dest_nodes.reserve(targets.size());
  live_targets.reserve(targets.size());
  for (const std::uint32_t r : targets) {
    const topo::NodeId node = phase_.roster[r];
    if (node != src_node && view.contains(node)) {
      dest_nodes.push_back(node);
      live_targets.push_back(r);
    }
  }
  if (dest_nodes.empty()) return;

  // Mark coverage before the send: reliable multicast may deliver and
  // report synchronously inside send_to.
  Bitset& covered = tag.is_contribution
                        ? phase_.reduce[tag.task].contrib_covered
                        : (phase_.op == OpKind::kAllreduce
                               ? phase_.reduce[tag.task].covered
                               : phase_.gather[tag.task].covered);
  if (tag.is_contribution) {
    covered.set(tag.contributor);
  } else {
    for (const std::uint32_t r : live_targets) covered.set(r);
  }

  if (first_issue) {
    phase_.chunks_sent++;
    stats_.chunks_sent++;
    if (metrics_.active()) metrics_.chunks_sent->inc();
  } else {
    phase_.chunks_reissued++;
    stats_.chunks_reissued++;
    if (metrics_.active()) metrics_.chunks_reissued->inc();
  }

  const std::uint64_t pid = phase_.id;
  const MsgTag sent_tag = tag;
  const svc::SeqNum seq = groups_->send_to(
      group_, src_node, std::move(dest_nodes),
      [this, pid, sent_tag, live_targets](const svc::GroupSendReport& report) {
        if (!phase_.active || phase_.id != pid) {
          stats_.stale_discards++;
          if (metrics_.active()) metrics_.stale_discards->inc();
          return;
        }
        if (sent_tag.is_contribution) {
          contribution_report(sent_tag.task, sent_tag.gen, sent_tag.contributor, report);
        } else if (phase_.op == OpKind::kAllreduce) {
          reduce_gather_report(sent_tag.task, sent_tag.gen, live_targets, report);
        } else {
          gather_report(sent_tag.task, live_targets, report);
        }
      });
  seq_tags_.insert_or_assign(std::make_pair(src_node, seq), sent_tag);

  // Replay deliveries that raced ahead of the tag registration.
  if (!early_.empty()) {
    auto pending = std::move(early_);
    early_.clear();
    for (auto& [key, receiver] : pending) {
      const auto it = seq_tags_.find(key);
      if (it == seq_tags_.end()) {
        early_.push_back({key, receiver});
      } else {
        apply_observation(it->second, receiver);
      }
    }
  }
}

void Collective::on_delivery(topo::NodeId receiver, topo::NodeId sender,
                             svc::SeqNum seq) {
  const auto it = seq_tags_.find(std::make_pair(sender, seq));
  if (it == seq_tags_.end()) {
    // Either an application send we never tagged, or our own send whose
    // seq is not yet known (synchronous delivery inside send_to); buffer
    // and retry after the send returns.
    if (early_.size() < 4096) early_.push_back({{sender, seq}, receiver});
    return;
  }
  apply_observation(it->second, receiver);
}

void Collective::apply_observation(const MsgTag& tag, topo::NodeId receiver) {
  if (!phase_.active || tag.phase != phase_.id) {
    stats_.stale_discards++;
    if (metrics_.active()) metrics_.stale_discards->inc();
    return;
  }
  if (tag.is_contribution) return;  // owner-side application is report-driven
  const std::size_t rank = rank_of(receiver);
  if (rank == npos) return;
  if (phase_.op == OpKind::kAllreduce) {
    if (tag.gen != phase_.reduce[tag.task].gen) {
      stats_.stale_discards++;
      if (metrics_.active()) metrics_.stale_discards->inc();
      return;
    }
  }
  phase_.observed[rank].set(tag.task);
}

void Collective::count_delivered(const svc::GroupSendReport& report, Bitset& done) {
  for (const auto& d : report.destinations) {
    if (d.outcome != svc::GroupOutcome::kDeliveredInView) continue;
    const std::size_t rank = rank_of(d.node);
    if (rank == npos) continue;
    done.set(rank);
    stats_.chunks_delivered++;
    if (metrics_.active()) metrics_.chunks_delivered->inc();
  }
}

namespace {
bool any_failed(const svc::GroupSendReport& report) {
  for (const auto& d : report.destinations) {
    if (d.outcome != svc::GroupOutcome::kDeliveredInView) return true;
  }
  return false;
}
}  // namespace

void Collective::defer_step(bool is_reduce, std::uint32_t idx) {
  const std::uint64_t pid = phase_.id;
  std::weak_ptr<const bool> alive = alive_token_;
  groups_->service().scheduler().schedule_in(
      config_.reissue_backoff_s, [this, alive, pid, is_reduce, idx] {
        if (alive.expired()) return;
        if (!phase_.active || phase_.id != pid) return;
        if (is_reduce) {
          if (!phase_.reduce[idx].voided) step_reduce(idx);
        } else {
          if (!phase_.gather[idx].voided) step_gather(idx);
        }
        check_complete();
      });
}

void Collective::gather_report(std::uint32_t task_idx,
                               const std::vector<std::uint32_t>& targets,
                               const svc::GroupSendReport& report) {
  GatherTask& t = phase_.gather[task_idx];
  count_delivered(report, t.done);
  for (const std::uint32_t r : targets) t.covered.reset(r);
  if (!t.voided) {
    // A failed destination may have failed synchronously inside the send;
    // re-stepping inline would recurse, so back off through the scheduler.
    if (any_failed(report)) {
      defer_step(false, task_idx);
    } else {
      step_gather(task_idx);
    }
  }
  check_complete();
}

void Collective::contribution_report(std::uint32_t chunk_idx, std::uint32_t gen,
                                     std::uint32_t contributor,
                                     const svc::GroupSendReport& report) {
  ReduceChunk& rc = phase_.reduce[chunk_idx];
  if (gen != rc.gen) {
    // Superseded ownership generation: the re-owned chunk restarted its
    // reduction from scratch, so this outcome must not touch it.
    stats_.stale_discards++;
    if (metrics_.active()) metrics_.stale_discards->inc();
    return;
  }
  rc.contrib_covered.reset(contributor);
  bool delivered = false;
  for (const auto& d : report.destinations) {
    delivered |= d.outcome == svc::GroupOutcome::kDeliveredInView;
  }
  if (delivered) {
    if (rc.contribs.test(contributor)) {
      // Applying the same (generation, contributor) twice would double the
      // contribution in a real reduction; the issue guards make this
      // unreachable and tests pin the counter to zero.
      stats_.double_applies++;
      if (metrics_.active()) metrics_.double_applies->inc();
    } else {
      rc.contribs.set(contributor);
      stats_.contributions_applied++;
      stats_.chunks_delivered++;
      if (metrics_.active()) {
        metrics_.contributions_applied->inc();
        metrics_.chunks_delivered->inc();
      }
    }
  }
  if (!rc.voided) {
    if (delivered) {
      step_reduce(chunk_idx);
    } else {
      defer_step(true, chunk_idx);
    }
  }
  check_complete();
}

void Collective::reduce_gather_report(std::uint32_t chunk_idx, std::uint32_t gen,
                                      const std::vector<std::uint32_t>& targets,
                                      const svc::GroupSendReport& report) {
  ReduceChunk& rc = phase_.reduce[chunk_idx];
  if (gen != rc.gen) {
    stats_.stale_discards++;
    if (metrics_.active()) metrics_.stale_discards->inc();
    return;
  }
  count_delivered(report, rc.done);
  for (const std::uint32_t r : targets) rc.covered.reset(r);
  if (!rc.voided) {
    if (any_failed(report)) {
      defer_step(true, chunk_idx);
    } else {
      step_reduce(chunk_idx);
    }
  }
  check_complete();
}

void Collective::void_chunk(bool is_reduce, std::uint32_t idx) {
  if (is_reduce) {
    phase_.reduce[idx].voided = true;
  } else {
    phase_.gather[idx].voided = true;
  }
  phase_.chunks_voided++;
  phase_.degraded = true;
  stats_.chunks_voided++;
  if (metrics_.active()) metrics_.chunks_voided->inc();
}

void Collective::step_gather(std::uint32_t task_idx) {
  if (!phase_.active) return;
  GatherTask& t = phase_.gather[task_idx];
  if (t.voided) return;

  std::vector<std::uint32_t> needed;
  for (std::size_t r = 0; r < phase_.alive.size(); ++r) {
    if (phase_.alive.test(r) && !t.done.test(r) && !t.covered.test(r)) {
      needed.push_back(static_cast<std::uint32_t>(r));
    }
  }
  if (needed.empty()) return;

  // Re-root from the lowest live holder: the root itself while it lives,
  // else any member the chunk already reached (same data, so the relayed
  // copy is identical).
  const std::size_t src = lowest_live_holder(t.done);
  if (src == npos) {
    void_chunk(false, task_idx);
    return;
  }
  if (t.issued) {
    if (t.reissues >= config_.max_reissues_per_chunk) {
      void_chunk(false, task_idx);
      return;
    }
    t.reissues++;
  }
  const bool first = !t.issued;
  t.issued = true;
  send_chunk(static_cast<std::uint32_t>(src), std::move(needed),
             MsgTag{phase_.id, false, task_idx, 0, 0}, first);
}

void Collective::step_reduce(std::uint32_t chunk_idx) {
  if (!phase_.active) return;
  const std::uint64_t pid = phase_.id;
  ReduceChunk& rc = phase_.reduce[chunk_idx];
  if (rc.voided) return;

  // Ownership repair first.  A reduced chunk re-roots to a live holder
  // (identical value); an unreduced or holder-less chunk restarts its
  // reduction under a new owner and generation, discarding in-flight
  // state wholesale via the generation check.
  if (!phase_.alive.test(rc.owner)) {
    const std::size_t holder = rc.reduced ? lowest_live_holder(rc.done) : npos;
    if (holder != npos) {
      rc.owner = static_cast<std::uint32_t>(holder);
    } else {
      const std::size_t fresh = lowest_live();
      if (fresh == npos) return;  // nobody left; completion is trivial
      rc.owner = static_cast<std::uint32_t>(fresh);
      rc.gen++;
      rc.reduced = false;
      rc.contribs.clear();
      rc.contrib_covered.clear();
      rc.done.clear();
      rc.covered.clear();
      rc.contribs.set(rc.owner);
      for (auto& bits : phase_.observed) bits.reset(chunk_idx);
    }
  }

  if (!rc.reduced) {
    // Reduce-scatter: every live contributor ships its chunk contribution
    // to the owner, exactly once per generation.
    for (std::size_t r = 0; r < phase_.alive.size(); ++r) {
      if (r == rc.owner || !phase_.alive.test(r)) continue;
      if (rc.contribs.test(r) || rc.contrib_covered.test(r)) continue;
      const bool first = !rc.contrib_issued.test(r);
      if (!first) {
        // Contribution re-sends draw on the same re-issue budget as the
        // allgather leg, so a permanently unreachable owner voids the
        // chunk instead of retrying forever.
        if (rc.reissues >= config_.max_reissues_per_chunk) {
          void_chunk(true, chunk_idx);
          return;
        }
        rc.reissues++;
      }
      rc.contrib_issued.set(r);
      send_chunk(static_cast<std::uint32_t>(r), {rc.owner},
                 MsgTag{phase_.id, true, chunk_idx, rc.gen,
                        static_cast<std::uint32_t>(r)},
                 first);
      if (!phase_.active || phase_.id != pid) return;  // completed re-entrantly
    }
    bool all_in = true;
    for (std::size_t r = 0; r < phase_.alive.size(); ++r) {
      if (phase_.alive.test(r) && !rc.contribs.test(r)) {
        all_in = false;
        break;
      }
    }
    if (!all_in) return;
    rc.reduced = true;
    rc.done.clear();
    rc.done.set(rc.owner);
    phase_.observed[rc.owner].set(chunk_idx);
  }

  // Allgather leg: the owner (or a re-rooted holder) multicasts the
  // reduced chunk to every live rank still missing it.
  std::vector<std::uint32_t> needed;
  for (std::size_t r = 0; r < phase_.alive.size(); ++r) {
    if (phase_.alive.test(r) && !rc.done.test(r) && !rc.covered.test(r)) {
      needed.push_back(static_cast<std::uint32_t>(r));
    }
  }
  if (needed.empty()) return;
  if (rc.issued) {
    if (rc.reissues >= config_.max_reissues_per_chunk) {
      void_chunk(true, chunk_idx);
      return;
    }
    rc.reissues++;
  }
  const bool first = !rc.issued;
  rc.issued = true;
  send_chunk(rc.owner, std::move(needed),
             MsgTag{phase_.id, false, chunk_idx, rc.gen, 0}, first);
}

void Collective::step_all(bool counting_restart) {
  const std::uint64_t pid = phase_.id;
  for (std::uint32_t c = 0; c < phase_.reduce.size(); ++c) {
    if (!phase_.active || phase_.id != pid) return;
    const ReduceChunk& rc = phase_.reduce[c];
    if (counting_restart && !rc.voided && rc.reduced) {
      bool complete = true;
      for (std::size_t r = 0; r < phase_.alive.size(); ++r) {
        if (phase_.alive.test(r) && !rc.done.test(r)) {
          complete = false;
          break;
        }
      }
      if (complete) {
        // Stable in the old view -> never re-sent.
        stats_.sends_suppressed++;
        if (metrics_.active()) metrics_.sends_suppressed->inc();
        continue;
      }
    }
    step_reduce(c);
  }
  for (std::uint32_t i = 0; i < phase_.gather.size(); ++i) {
    if (!phase_.active || phase_.id != pid) return;
    const GatherTask& t = phase_.gather[i];
    if (counting_restart && !t.voided) {
      bool complete = true;
      for (std::size_t r = 0; r < phase_.alive.size(); ++r) {
        if (phase_.alive.test(r) && !t.done.test(r)) {
          complete = false;
          break;
        }
      }
      if (complete) {
        stats_.sends_suppressed++;
        if (metrics_.active()) metrics_.sends_suppressed->inc();
        continue;
      }
    }
    step_gather(i);
  }
}

void Collective::on_view_settled(const svc::MembershipView& view) {
  if (!phase_.active) return;
  // Sticky death: a roster member missing from ANY view installed during
  // the phase stays excluded, so an evict + rejoin (a joiner) defers to
  // the next phase's fresh roster.
  for (std::size_t r = 0; r < phase_.alive.size(); ++r) {
    if (phase_.alive.test(r) && !view.contains(phase_.roster[r])) {
      phase_.alive.reset(r);
    }
  }
  phase_.restarts++;
  stats_.restarts++;
  if (metrics_.active()) metrics_.restarts->inc();

  const std::uint64_t before = phase_.chunks_reissued;
  step_all(true);
  if (metrics_.active()) {
    metrics_.chunks_reissued_per_restart->record(
        static_cast<double>(phase_.chunks_reissued - before));
  }
  check_complete();
}

void Collective::check_complete() {
  if (!phase_.active) return;
  for (const ReduceChunk& rc : phase_.reduce) {
    if (rc.voided) continue;
    if (!rc.reduced) return;
    for (std::size_t r = 0; r < phase_.alive.size(); ++r) {
      if (phase_.alive.test(r) && !rc.done.test(r)) return;
    }
  }
  for (const GatherTask& t : phase_.gather) {
    if (t.voided) continue;
    for (std::size_t r = 0; r < phase_.alive.size(); ++r) {
      if (phase_.alive.test(r) && !t.done.test(r)) return;
    }
  }
  finish_phase();
}

void Collective::finish_phase() {
  phase_.active = false;

  PhaseResult result;
  result.op = phase_.op;
  result.phase_id = phase_.id;
  result.degraded = phase_.degraded;
  result.completed = true;  // every recoverable chunk reached every survivor
  result.started_at_s = phase_.started_at;
  result.completed_at_s = groups_->service().scheduler().now();
  result.roster = phase_.roster;
  for (std::size_t r = 0; r < phase_.alive.size(); ++r) {
    if (phase_.alive.test(r)) result.survivors.push_back(phase_.roster[r]);
  }
  result.chunks_sent = phase_.chunks_sent;
  result.chunks_reissued = phase_.chunks_reissued;
  result.restarts = phase_.restarts;
  result.chunks_voided = phase_.chunks_voided;

  stats_.phases_completed++;
  if (metrics_.active()) {
    metrics_.phases_completed->inc();
    metrics_.phase_latency_s->record(result.completed_at_s - result.started_at_s);
  }

  seq_tags_.clear();
  early_.clear();

  if (phase_.done_fn) {
    // Defer past the current event so the callback can safely start the
    // next phase while report/step frames for this one unwind.
    DoneFn fn = std::move(phase_.done_fn);
    phase_.done_fn = {};
    groups_->service().scheduler().schedule_in(
        0.0, [fn = std::move(fn), result] { fn(result); });
  }
}

std::size_t Collective::observed_chunks(topo::NodeId member) const {
  const std::size_t rank = rank_of(member);
  if (rank == npos || rank >= phase_.observed.size()) return 0;
  return phase_.observed[rank].count();
}

bool Collective::observed_all(topo::NodeId member) const {
  const std::size_t rank = rank_of(member);
  if (rank == npos || rank >= phase_.observed.size()) return false;
  const Bitset& bits = phase_.observed[rank];
  if (phase_.op == OpKind::kAllreduce) {
    for (std::size_t c = 0; c < phase_.reduce.size(); ++c) {
      if (!phase_.reduce[c].voided && !bits.test(c)) return false;
    }
    return true;
  }
  for (std::size_t i = 0; i < phase_.gather.size(); ++i) {
    if (!phase_.gather[i].voided && !bits.test(i)) return false;
  }
  return true;
}

void Collective::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.phases_started = &registry->counter("coll.phases_started");
  metrics_.phases_completed = &registry->counter("coll.phases_completed");
  metrics_.chunks_sent = &registry->counter("coll.chunks_sent");
  metrics_.chunks_reissued = &registry->counter("coll.chunks_reissued");
  metrics_.chunks_delivered = &registry->counter("coll.chunks_delivered");
  metrics_.chunks_voided = &registry->counter("coll.chunks_voided");
  metrics_.restarts = &registry->counter("coll.restarts");
  metrics_.sends_suppressed = &registry->counter("coll.sends_suppressed");
  metrics_.stale_discards = &registry->counter("coll.stale_discards");
  metrics_.contributions_applied = &registry->counter("coll.contributions_applied");
  metrics_.double_applies = &registry->counter("coll.double_applies");
  metrics_.phase_latency_s = &registry->histogram("coll.phase_latency_s");
  metrics_.chunks_reissued_per_restart =
      &registry->histogram("coll.chunks_reissued_per_restart");
}

}  // namespace mcnet::coll
