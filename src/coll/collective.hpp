// Collective phases over the group layer (ROADMAP item 2): allgather,
// allreduce, broadcast, barrier, and all-to-all broadcast composed from
// simultaneous multicasts inside one membership view, in the style of
// ns3-roce's AgFlowMcastPhase (SNIPPETS.md): many roots multicast
// concurrently, transfers are chunked, and per-member completion bitmaps
// drive a phase state machine.
//
// Model
//  * A phase freezes its ROSTER: the members of the group view at phase
//    start, in sorted order; a member's index in that vector is its RANK.
//    Members evicted during the phase are excluded from then on (sticky:
//    an evict + rejoin does not resurface in this phase -- joiners defer
//    to the next phase, which snapshots a fresh roster).
//  * Data is abstract: each root contributes `chunks` chunks; holding a
//    chunk is a bit, not bytes.  Gather-style ops (broadcast, barrier,
//    allgather, all-to-all broadcast) complete when every live rank's
//    completion bitmap covers every recoverable (root, chunk) task.
//    Allreduce runs chunked reduce-scatter (each contributor sends its
//    per-chunk contribution to the chunk's owner) then allgather (owners
//    multicast reduced chunks); contributions are applied exactly once
//    per (chunk generation, contributor).
//  * The state machine is driven by GroupSendReport outcomes: a
//    kDeliveredInView destination sets its completion bit; terminal
//    failures clear the chunk's covered bits so the next step re-issues.
//    View-change-aware restart rides GroupService's view-settled hook --
//    the point where evicted destinations of in-flight sends hold
//    terminal outcomes -- and deterministically re-issues ONLY chunks not
//    yet stable in the new view (per destination: not done, not covered
//    by a still-live send, still alive).  Chunks whose every live target
//    already holds them are never re-sent.
//  * Fault recovery: a dead gather root or allreduce owner re-roots to
//    the lowest live rank already holding the chunk (same value, so every
//    member converges on one result); an unreduced chunk whose owner died
//    demotes to reduce-scatter under a new owner with a bumped
//    generation, and stale-generation deliveries/reports are discarded
//    wholesale.  A chunk no live member holds is voided (the phase
//    completes degraded).
//
// See docs/COLLECTIVES.md for the phase-machine and restart walkthrough.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/flat_map.hpp"
#include "service/group_service.hpp"

namespace mcnet::obs {
class Gauge;
class Histogram;
}

namespace mcnet::coll {

/// Small dynamic bitset over roster ranks / chunk tasks.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t n) : words_((n + 63) / 64, 0), size_(n) {}

  void set(std::size_t i) { words_[i >> 6] |= std::uint64_t{1} << (i & 63); }
  void reset(std::size_t i) { words_[i >> 6] &= ~(std::uint64_t{1} << (i & 63)); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t count() const {
    std::size_t n = 0;
    for (const std::uint64_t w : words_) n += static_cast<std::size_t>(__builtin_popcountll(w));
    return n;
  }
  void clear() { std::fill(words_.begin(), words_.end(), 0); }

 private:
  std::vector<std::uint64_t> words_;
  std::size_t size_ = 0;
};

enum class OpKind : std::uint8_t {
  kBroadcast,
  kBarrier,
  kAllgather,
  kAllreduce,
  kAllToAllBroadcast,
};

[[nodiscard]] const char* to_string(OpKind op);

struct CollConfig {
  /// Chunks per root: each chunk is one multicast, so this is the
  /// concurrent-multicast fan-out per root inside a phase.  Barrier
  /// always uses one token per member regardless.
  std::uint32_t chunks = 4;
  /// A chunk re-issued more than this many times is voided (the phase
  /// then completes degraded instead of wedging on a black-holed route).
  std::uint32_t max_reissues_per_chunk = 64;
  /// Delay before re-stepping a chunk whose send reported a failed
  /// destination.  A partitioned target fails synchronously inside the
  /// send, so an immediate re-step would recurse on the same stack; the
  /// backoff breaks that cycle and gives the failure detector time to
  /// evict the dead peer before the re-issue cap voids the chunk.
  double reissue_backoff_s = 100e-6;

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// Final summary of one phase (fires exactly once, via the DoneFn).
struct PhaseResult {
  OpKind op = OpKind::kBarrier;
  std::uint64_t phase_id = 0;
  /// Every recoverable chunk reached every surviving roster member.
  bool completed = false;
  /// Some chunk was voided (unrecoverable root death or re-issue cap).
  bool degraded = false;
  double started_at_s = 0.0;
  double completed_at_s = 0.0;
  std::vector<topo::NodeId> roster;     // phase membership at start (sorted)
  std::vector<topo::NodeId> survivors;  // roster members still live at the end
  std::uint64_t chunks_sent = 0;      // multicasts issued (first sends)
  std::uint64_t chunks_reissued = 0;  // re-sends (restarts, drops, re-roots)
  std::uint64_t restarts = 0;         // view-settled restart passes
  std::uint64_t chunks_voided = 0;
};

/// Collective phase engine bound to one group of a GroupService.  One
/// phase runs at a time (start calls throw while busy()); run the
/// scheduler to drive it to its DoneFn.
class Collective {
 public:
  using DoneFn = std::function<void(const PhaseResult&)>;

  /// Hooks onto the service's delivery and view-settled seams; unhooks in
  /// the destructor.  The group must exist.
  Collective(svc::GroupService& groups, svc::GroupId group, CollConfig config = {});
  ~Collective();
  Collective(const Collective&) = delete;
  Collective& operator=(const Collective&) = delete;

  /// Start a phase; returns its phase id.  `root` must be a current
  /// member for broadcast.  Throws std::logic_error while busy().
  std::uint64_t broadcast(topo::NodeId root, DoneFn done = {});
  std::uint64_t barrier(DoneFn done = {});
  std::uint64_t allgather(DoneFn done = {});
  std::uint64_t allreduce(DoneFn done = {});
  /// Same communication pattern as allgather (every root's chunks to all
  /// members) -- kept as its own op so workloads and metrics can speak
  /// the paper's language; the Jung & Sakho step bound for it lives in
  /// the coll/atab.hpp step model.
  std::uint64_t all_to_all_broadcast(DoneFn done = {});

  [[nodiscard]] bool busy() const { return phase_.active; }

  /// Receiver-observed completion bitmap population for `member` in the
  /// current/most recent phase: chunks whose in-order delivery the member
  /// actually heard (gather ops count (root, chunk) tasks; allreduce
  /// counts current-generation reduced chunks).
  [[nodiscard]] std::size_t observed_chunks(topo::NodeId member) const;
  /// True when `member` observed every recoverable chunk of the phase.
  [[nodiscard]] bool observed_all(topo::NodeId member) const;

  struct Stats {
    std::uint64_t phases_started = 0;
    std::uint64_t phases_completed = 0;
    std::uint64_t chunks_sent = 0;
    std::uint64_t chunks_reissued = 0;
    std::uint64_t chunks_delivered = 0;  // kDeliveredInView destination outcomes
    std::uint64_t chunks_voided = 0;
    std::uint64_t restarts = 0;           // view-settled restart passes
    std::uint64_t sends_suppressed = 0;   // restart found chunk already stable
    std::uint64_t stale_discards = 0;     // stale phase/generation deliveries+reports
    std::uint64_t contributions_applied = 0;
    std::uint64_t double_applies = 0;     // MUST stay 0 (see tests)
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Register coll.* instruments on `registry` (nullptr detaches):
  /// counters mirroring Stats, histograms coll.phase_latency_s and
  /// coll.chunks_reissued_per_restart.
  void set_metrics(obs::MetricsRegistry* registry);

  [[nodiscard]] svc::GroupId group() const { return group_; }
  [[nodiscard]] const CollConfig& config() const { return config_; }

 private:
  /// One gather-style chunk task: root `root` disseminating chunk `chunk`
  /// to every live rank.
  struct GatherTask {
    std::uint32_t root = 0;   // roster rank
    std::uint32_t chunk = 0;
    Bitset done;     // ranks holding the chunk (root starts set)
    Bitset covered;  // ranks targeted by an outstanding send
    std::uint32_t reissues = 0;
    bool issued = false;
    bool voided = false;
  };

  /// One allreduce chunk: reduce-scatter into `owner`, then allgather.
  struct ReduceChunk {
    std::uint32_t owner = 0;  // roster rank owning the reduction
    std::uint32_t gen = 0;    // bumped when an unreduced chunk re-owns
    bool reduced = false;
    Bitset contribs;         // contributor ranks applied (exactly once per gen)
    Bitset contrib_covered;  // contributors with an outstanding send this gen
    Bitset contrib_issued;   // contributors that ever sent (reissue accounting)
    Bitset done;             // ranks holding the reduced chunk
    Bitset covered;
    std::uint32_t reissues = 0;
    bool issued = false;
    bool voided = false;
  };

  struct Phase {
    OpKind op = OpKind::kBarrier;
    std::uint64_t id = 0;
    bool active = false;
    double started_at = 0.0;
    std::vector<topo::NodeId> roster;  // sorted; index = rank
    Bitset alive;                      // sticky-dead ranks cleared forever
    std::vector<GatherTask> gather;
    std::vector<ReduceChunk> reduce;
    /// rank -> observed-chunk bitmap (gather: task index; reduce: chunk).
    std::vector<Bitset> observed;
    DoneFn done_fn;
    std::uint64_t chunks_sent = 0;
    std::uint64_t chunks_reissued = 0;
    std::uint64_t restarts = 0;
    std::uint64_t chunks_voided = 0;
    bool degraded = false;
  };

  /// Routes an in-order delivery (sender, seq) back to its chunk.
  struct MsgTag {
    std::uint64_t phase = 0;
    bool is_contribution = false;  // allreduce reduce-scatter leg
    std::uint32_t task = 0;        // gather task index / reduce chunk index
    std::uint32_t gen = 0;
    std::uint32_t contributor = 0;  // rank (contribution sends only)
  };

  std::uint64_t start_phase(OpKind op, topo::NodeId broadcast_root, DoneFn done);
  void on_delivery(topo::NodeId receiver, topo::NodeId sender, svc::SeqNum seq);
  void apply_observation(const MsgTag& tag, topo::NodeId receiver);
  void on_view_settled(const svc::MembershipView& view);
  /// Deterministic full pass: step every chunk in (stage, root, chunk)
  /// order, issuing exactly the sends whose targets are live, not done,
  /// and not covered.
  void step_all(bool counting_restart);
  void step_gather(std::uint32_t task_idx);
  void step_reduce(std::uint32_t chunk_idx);
  void gather_report(std::uint32_t task_idx, const std::vector<std::uint32_t>& targets,
                     const svc::GroupSendReport& report);
  void contribution_report(std::uint32_t chunk_idx, std::uint32_t gen,
                           std::uint32_t contributor,
                           const svc::GroupSendReport& report);
  void reduce_gather_report(std::uint32_t chunk_idx, std::uint32_t gen,
                            const std::vector<std::uint32_t>& targets,
                            const svc::GroupSendReport& report);
  /// Issue one multicast of one chunk from `src` to `targets` (ranks).
  /// Skips ranks that left the current view (restart will catch them).
  void send_chunk(std::uint32_t src, std::vector<std::uint32_t> targets, MsgTag tag,
                  bool first_issue);
  /// Re-step `idx` after reissue_backoff_s (used when a report carried a
  /// failed destination; stepping inline would recurse on synchronous
  /// failures).  No-op by the time it fires if the phase moved on.
  void defer_step(bool is_reduce, std::uint32_t idx);
  void void_chunk(bool is_reduce, std::uint32_t idx);
  void check_complete();
  void finish_phase();

  [[nodiscard]] std::size_t rank_of(topo::NodeId node) const;  // npos when absent
  [[nodiscard]] std::size_t lowest_live_holder(const Bitset& done) const;
  [[nodiscard]] std::size_t lowest_live() const;
  void count_delivered(const svc::GroupSendReport& report, Bitset& done);

  struct Metrics {
    obs::Counter* phases_started = nullptr;
    obs::Counter* phases_completed = nullptr;
    obs::Counter* chunks_sent = nullptr;
    obs::Counter* chunks_reissued = nullptr;
    obs::Counter* chunks_delivered = nullptr;
    obs::Counter* chunks_voided = nullptr;
    obs::Counter* restarts = nullptr;
    obs::Counter* sends_suppressed = nullptr;
    obs::Counter* stale_discards = nullptr;
    obs::Counter* contributions_applied = nullptr;
    obs::Counter* double_applies = nullptr;
    obs::Histogram* phase_latency_s = nullptr;
    obs::Histogram* chunks_reissued_per_restart = nullptr;

    [[nodiscard]] bool active() const { return phases_started != nullptr; }
  };

  svc::GroupService* groups_;
  svc::GroupId group_;
  CollConfig config_;
  std::uint64_t delivery_hook_ = 0;
  std::uint64_t view_hook_ = 0;
  std::uint64_t next_phase_ = 1;
  Phase phase_;
  /// (sender node, seq) -> chunk routing for receiver-side observation.
  util::FlatMap<std::pair<topo::NodeId, svc::SeqNum>, MsgTag> seq_tags_;
  /// Deliveries that raced ahead of their seq_tags_ entry (reliable
  /// multicast can deliver synchronously inside send_to, before the
  /// returned seq is known); drained right after each send.
  std::vector<std::pair<std::pair<topo::NodeId, svc::SeqNum>, topo::NodeId>> early_;
  /// Liveness token for deferred scheduler events (they must become no-ops
  /// if this Collective is destroyed before the scheduler drains).
  std::shared_ptr<const bool> alive_token_;
  Stats stats_;
  Metrics metrics_;

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
};

}  // namespace mcnet::coll
