#include "coll/atab.hpp"

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace mcnet::coll {
namespace {

constexpr std::uint64_t kMaxNodes = 1u << 20;

std::uint64_t pow_u64(std::uint32_t base, std::uint32_t exp) {
  std::uint64_t r = 1;
  for (std::uint32_t i = 0; i < exp; ++i) {
    if (r > kMaxNodes) return r;  // caller rejects; avoid overflow
    r *= base;
  }
  return r;
}

void validate(std::uint32_t k, std::uint32_t n) {
  if (k < 2) {
    throw std::invalid_argument("atab: radix k must be >= 2 (got " + std::to_string(k) +
                                ")");
  }
  if (n < 1) {
    throw std::invalid_argument("atab: dimensions n must be >= 1");
  }
}

/// Dense per-node message sets: N bits per node.
class HoldMatrix {
 public:
  HoldMatrix(std::size_t nodes)
      : words_per_row_((nodes + 63) / 64), bits_(nodes * words_per_row_, 0), nodes_(nodes) {}

  void set(std::size_t node, std::size_t msg) {
    bits_[node * words_per_row_ + (msg >> 6)] |= std::uint64_t{1} << (msg & 63);
  }
  [[nodiscard]] bool test(std::size_t node, std::size_t msg) const {
    return (bits_[node * words_per_row_ + (msg >> 6)] >> (msg & 63)) & 1;
  }
  /// Lowest msg id that `teacher` holds and `learner` does not (and that is
  /// not already excluded via `claimed`), or nodes_ when there is none.
  [[nodiscard]] std::size_t lowest_teachable(std::size_t teacher, std::size_t learner,
                                             const HoldMatrix& claimed) const {
    const std::uint64_t* t = &bits_[teacher * words_per_row_];
    const std::uint64_t* l = &bits_[learner * words_per_row_];
    const std::uint64_t* c = &claimed.bits_[learner * claimed.words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      const std::uint64_t gap = t[w] & ~l[w] & ~c[w];
      if (gap != 0) {
        const std::size_t msg = w * 64 + static_cast<std::size_t>(__builtin_ctzll(gap));
        return msg < nodes_ ? msg : nodes_;
      }
    }
    return nodes_;
  }
  [[nodiscard]] bool row_full(std::size_t node) const {
    std::size_t have = 0;
    const std::uint64_t* r = &bits_[node * words_per_row_];
    for (std::size_t w = 0; w < words_per_row_; ++w) {
      have += static_cast<std::size_t>(__builtin_popcountll(r[w]));
    }
    return have == nodes_;
  }
  void clear() { std::fill(bits_.begin(), bits_.end(), 0); }

 private:
  std::size_t words_per_row_;
  std::vector<std::uint64_t> bits_;
  std::size_t nodes_;
};

}  // namespace

std::uint64_t atab_lower_bound(std::uint32_t k, std::uint32_t n) {
  validate(k, n);
  const std::uint64_t nodes = pow_u64(k, n);
  const std::uint64_t ports = 2ull * n;  // all-port: both directions per dimension
  return (nodes - 1 + ports - 1) / ports;
}

AtabResult simulate_atab_on_torus(std::uint32_t k, std::uint32_t n) {
  validate(k, n);
  const std::uint64_t nodes64 = pow_u64(k, n);
  if (nodes64 > kMaxNodes) {
    throw std::invalid_argument("atab: k^n exceeds " + std::to_string(kMaxNodes) +
                                " nodes");
  }
  const std::size_t nodes = static_cast<std::size_t>(nodes64);

  // In-neighbours per node, fixed order (dimension ascending, -1 before
  // +1), deduped for k == 2 where both wrap to the same neighbour.  Each
  // entry is one directed in-link; a link teaches at most one message per
  // step.
  std::vector<std::size_t> stride(n, 1);
  for (std::uint32_t d = 1; d < n; ++d) stride[d] = stride[d - 1] * k;
  std::vector<std::vector<std::size_t>> in_nbrs(nodes);
  for (std::size_t v = 0; v < nodes; ++v) {
    auto& nb = in_nbrs[v];
    nb.reserve(2 * n);
    for (std::uint32_t d = 0; d < n; ++d) {
      const std::size_t digit = (v / stride[d]) % k;
      const std::size_t down = v - digit * stride[d] + ((digit + k - 1) % k) * stride[d];
      const std::size_t up = v - digit * stride[d] + ((digit + 1) % k) * stride[d];
      nb.push_back(down);
      if (up != down) nb.push_back(up);
    }
  }

  HoldMatrix holds(nodes);
  for (std::size_t v = 0; v < nodes; ++v) holds.set(v, v);

  AtabResult r;
  r.radix = k;
  r.dimensions = n;
  r.nodes = nodes64;
  r.lower_bound = atab_lower_bound(k, n);

  // Coordinated greedy: per step, each node reads from all its in-links;
  // a link carries the lowest-id message its tail held at the END of the
  // previous step that the head lacks and no earlier-processed link is
  // already teaching it this step.  `claimed` holds this step's incoming
  // messages so the end-of-step merge keeps the model synchronous.
  HoldMatrix claimed(nodes);
  std::vector<std::pair<std::size_t, std::size_t>> deliveries;  // (node, msg)
  const std::uint64_t step_cap = 4 * r.lower_bound + 16;
  while (r.steps < step_cap) {
    bool all_full = true;
    for (std::size_t v = 0; v < nodes; ++v) {
      if (!holds.row_full(v)) {
        all_full = false;
        break;
      }
    }
    if (all_full) {
      r.complete = true;
      break;
    }

    deliveries.clear();
    for (std::size_t v = 0; v < nodes; ++v) {
      for (const std::size_t u : in_nbrs[v]) {
        const std::size_t msg = holds.lowest_teachable(u, v, claimed);
        if (msg < nodes) {
          claimed.set(v, msg);
          deliveries.emplace_back(v, msg);
        }
      }
    }
    if (deliveries.empty()) break;  // wedged (cannot happen on a connected torus)
    for (const auto& [v, msg] : deliveries) holds.set(v, msg);
    claimed.clear();
    ++r.steps;
  }
  if (!r.complete) {
    // Re-check after the last merge (the loop tests completeness first).
    bool all_full = true;
    for (std::size_t v = 0; v < nodes; ++v) {
      if (!holds.row_full(v)) {
        all_full = false;
        break;
      }
    }
    r.complete = all_full;
  }
  return r;
}

}  // namespace mcnet::coll
