// All-to-all broadcast (ATAB) step model on k-ary n-dimensional tori,
// with the Jung & Sakho optimality lower bound (PAPERS.md: "On The
// Optimality Of All-To-All Broadcast In k-ary n-dimensional Tori").
//
// This is deliberately NOT the wormhole simulator: it is the synchronous
// all-port store-and-forward model the bound is stated in.  Each node
// starts holding one distinct message; in one step every directed torus
// link carries at most one (whole) message that its tail held at the end
// of the previous step; the broadcast completes when every node holds all
// k^n messages.  A node has 2n in-links (n dimensions, both directions;
// fewer when k <= 2 collapses +1/-1 neighbours), so it can learn at most
// 2n new messages per step -- which is exactly where the bound
//
//     steps >= ceil((k^n - 1) / (2n))
//
// comes from.  simulate_atab_on_torus runs a deterministic coordinated
// greedy schedule in this model; tests and tools/coll_smoke.sh gate that
// its step count is >= the bound (any valid schedule must be) and within
// a pinned constant factor of it (the schedule is near-optimal, so a
// regression that wedges or serialises the broadcast trips the gate).
#pragma once

#include <cstdint>

namespace mcnet::coll {

struct AtabResult {
  std::uint32_t radix = 0;       // k
  std::uint32_t dimensions = 0;  // n
  std::uint64_t nodes = 0;       // k^n
  std::uint64_t steps = 0;       // steps the greedy schedule took
  std::uint64_t lower_bound = 0; // ceil((k^n - 1) / (2n))
  bool complete = false;         // every node holds every message
};

/// ceil((k^n - 1) / (2n)); throws std::invalid_argument for k < 2 or
/// n < 1 (no torus / no links).
[[nodiscard]] std::uint64_t atab_lower_bound(std::uint32_t k, std::uint32_t n);

/// Run the coordinated greedy ATAB schedule on the k-ary n-cube torus
/// (wraparound links in every dimension).  Deterministic: nodes are
/// processed in id order and each in-link claims the lowest-id message
/// its tail can still teach the head.  Throws std::invalid_argument for
/// k < 2, n < 1, or k^n > 1M nodes (the dense holds matrix is O(N^2) bits).
[[nodiscard]] AtabResult simulate_atab_on_torus(std::uint32_t k, std::uint32_t n);

}  // namespace mcnet::coll
