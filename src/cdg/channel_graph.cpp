#include "cdg/channel_graph.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcnet::cdg {

void ChannelGraph::add_dependency(ChannelId from, ChannelId to, EdgeTag tag) {
  auto& s = succ_.at(from);
  auto& t = tags_.at(from);
  const auto it = std::lower_bound(s.begin(), s.end(), to);
  const auto idx = static_cast<std::size_t>(it - s.begin());
  if (it == s.end() || *it != to) {
    s.insert(it, to);
    t.emplace(t.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  if (tag == kNoEdgeTag) return;
  auto& edge_tags = t[idx];
  if (edge_tags.size() >= kMaxTagsPerEdge) return;
  if (std::find(edge_tags.begin(), edge_tags.end(), tag) == edge_tags.end()) {
    edge_tags.push_back(tag);
  }
}

std::size_t ChannelGraph::num_dependencies() const {
  std::size_t n = 0;
  for (const auto& s : succ_) n += s.size();
  return n;
}

std::span<const EdgeTag> ChannelGraph::edge_tags(ChannelId from, ChannelId to) const {
  const auto& s = succ_.at(from);
  const auto it = std::lower_bound(s.begin(), s.end(), to);
  if (it == s.end() || *it != to) return {};
  return tags_[from][static_cast<std::size_t>(it - s.begin())];
}

bool ChannelGraph::acyclic() const { return !find_cycle().has_value(); }

std::optional<std::vector<ChannelId>> ChannelGraph::find_cycle() const {
  return find_cycle_if({});
}

std::optional<std::vector<ChannelId>> ChannelGraph::find_cycle_if(
    const std::function<bool(ChannelId, ChannelId)>& edge_ok) const {
  // Iterative three-colour DFS keeping the grey path for cycle extraction.
  enum class Colour : std::uint8_t { White, Grey, Black };
  std::vector<Colour> colour(succ_.size(), Colour::White);
  std::vector<std::pair<ChannelId, std::size_t>> stack;  // (channel, next-succ index)
  std::vector<ChannelId> path;

  for (ChannelId root = 0; root < succ_.size(); ++root) {
    if (colour[root] != Colour::White) continue;
    stack.emplace_back(root, 0);
    colour[root] = Colour::Grey;
    path.push_back(root);
    while (!stack.empty()) {
      auto& [c, idx] = stack.back();
      if (idx < succ_[c].size()) {
        const ChannelId next = succ_[c][idx++];
        if (edge_ok && !edge_ok(c, next)) continue;
        if (colour[next] == Colour::Grey) {
          // Cycle: suffix of `path` from the first occurrence of `next`.
          const auto it = std::find(path.begin(), path.end(), next);
          return std::vector<ChannelId>(it, path.end());
        }
        if (colour[next] == Colour::White) {
          colour[next] = Colour::Grey;
          stack.emplace_back(next, 0);
          path.push_back(next);
        }
      } else {
        colour[c] = Colour::Black;
        stack.pop_back();
        path.pop_back();
      }
    }
  }
  return std::nullopt;
}

ChannelGraph build_unicast_cdg(const topo::Topology& topology, const RoutingFunction& route) {
  ChannelGraph g(topology.num_channels());
  const std::uint32_t n = topology.num_nodes();
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      if (src == dst) continue;
      NodeId cur = src;
      ChannelId prev = topo::kInvalidChannel;
      std::uint32_t hops = 0;
      while (cur != dst) {
        const NodeId next = route(cur, dst);
        if (next == topo::kInvalidNode) break;
        const ChannelId c = topology.channel(cur, next);
        if (c == topo::kInvalidChannel) {
          throw std::logic_error("routing function returned a non-neighbour");
        }
        if (prev != topo::kInvalidChannel) g.add_dependency(prev, c);
        prev = c;
        cur = next;
        if (++hops > topology.num_nodes()) {
          throw std::logic_error("routing function does not terminate");
        }
      }
    }
  }
  return g;
}

}  // namespace mcnet::cdg
