#include "cdg/analyzers.hpp"

#include <bit>

namespace mcnet::cdg {

RoutingFunction xfirst_routing(const topo::Mesh2D& mesh) {
  return [&mesh](NodeId cur, NodeId dst) -> NodeId {
    if (cur == dst) return topo::kInvalidNode;
    const topo::Coord2 c = mesh.coord(cur);
    const topo::Coord2 d = mesh.coord(dst);
    if (c.x < d.x) return mesh.node(c.x + 1, c.y);
    if (c.x > d.x) return mesh.node(c.x - 1, c.y);
    if (c.y < d.y) return mesh.node(c.x, c.y + 1);
    return mesh.node(c.x, c.y - 1);
  };
}

RoutingFunction ecube_routing(const topo::Hypercube& cube) {
  return [&cube](NodeId cur, NodeId dst) -> NodeId {
    const NodeId diff = cur ^ dst;
    if (diff == 0) return topo::kInvalidNode;
    const auto dim = static_cast<std::uint32_t>(std::countr_zero(diff));
    return cube.across(cur, dim);
  };
}

RoutingFunction zfirst_routing(const topo::Mesh3D& mesh) {
  return [&mesh](NodeId cur, NodeId dst) -> NodeId {
    if (cur == dst) return topo::kInvalidNode;
    const topo::Coord3 c = mesh.coord(cur);
    const topo::Coord3 d = mesh.coord(dst);
    if (c.x != d.x) return mesh.node({c.x + (d.x > c.x ? 1 : -1), c.y, c.z});
    if (c.y != d.y) return mesh.node({c.x, c.y + (d.y > c.y ? 1 : -1), c.z});
    return mesh.node({c.x, c.y, c.z + (d.z > c.z ? 1 : -1)});
  };
}

RoutingFunction dimension_order_routing(const topo::KAryNCube& cube) {
  return [&cube](NodeId cur, NodeId dst) -> NodeId {
    if (cur == dst) return topo::kInvalidNode;
    const std::uint32_t k = cube.radix();
    for (std::uint32_t dim = 0; dim < cube.dimensions(); ++dim) {
      const std::uint32_t dc = cube.digit(cur, dim);
      const std::uint32_t dd = cube.digit(dst, dim);
      if (dc == dd) continue;
      // Distance going +1 around the ring (modulo k when wrapping).
      const std::uint32_t up = dd > dc ? dd - dc : k - (dc - dd);
      const bool go_up = cube.wraps() ? up <= k - up : dd > dc;
      const std::uint32_t next =
          go_up ? (dc + 1 == k ? 0 : dc + 1) : (dc == 0 ? k - 1 : dc - 1);
      return cube.with_digit(cur, dim, next);
    }
    return topo::kInvalidNode;
  };
}

RoutingFunction label_routing(const topo::Topology& topology, const ham::Labeling& labeling,
                              bool high) {
  return [&topology, &labeling, high](NodeId cur, NodeId dst) -> NodeId {
    if (cur == dst) return topo::kInvalidNode;
    const std::uint32_t lc = labeling.label(cur);
    const std::uint32_t ld = labeling.label(dst);
    if (high != (ld > lc)) return topo::kInvalidNode;  // wrong subnetwork
    NodeId best = topo::kInvalidNode;
    if (high) {
      std::uint32_t best_label = 0;
      for (const NodeId p : topology.neighbors(cur)) {
        const std::uint32_t lp = labeling.label(p);
        if (lp <= ld && lp > lc && (best == topo::kInvalidNode || lp > best_label)) {
          best = p;
          best_label = lp;
        }
      }
    } else {
      std::uint32_t best_label = 0;
      for (const NodeId p : topology.neighbors(cur)) {
        const std::uint32_t lp = labeling.label(p);
        if (lp >= ld && lp < lc && (best == topo::kInvalidNode || lp < best_label)) {
          best = p;
          best_label = lp;
        }
      }
    }
    return best;
  };
}

bool subnetwork_is_acyclic(
    const topo::Topology& topology,
    const std::function<bool(topo::NodeId, topo::NodeId)>& in_subnetwork) {
  // Kahn's algorithm over the node graph restricted to selected channels.
  const std::uint32_t n = topology.num_nodes();
  std::vector<std::uint32_t> indegree(n, 0);
  for (NodeId u = 0; u < n; ++u) {
    for (const NodeId v : topology.neighbors(u)) {
      if (in_subnetwork(u, v)) ++indegree[v];
    }
  }
  std::vector<NodeId> queue;
  for (NodeId u = 0; u < n; ++u) {
    if (indegree[u] == 0) queue.push_back(u);
  }
  std::uint32_t removed = 0;
  while (!queue.empty()) {
    const NodeId u = queue.back();
    queue.pop_back();
    ++removed;
    for (const NodeId v : topology.neighbors(u)) {
      if (in_subnetwork(u, v) && --indegree[v] == 0) queue.push_back(v);
    }
  }
  return removed == n;
}

}  // namespace mcnet::cdg
