// Ready-made routing functions and subnetwork-acyclicity checks used by the
// deadlock-freedom analyses (Chapter 6 proofs, mechanised).
#pragma once

#include "cdg/channel_graph.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/hypercube.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/mesh2d.hpp"
#include "topology/mesh3d.hpp"

namespace mcnet::cdg {

/// Deterministic X-first (XY) unicast routing on a 2-D mesh: correct the X
/// offset fully, then the Y offset.  Known deadlock-free (Fig. 2.5).
[[nodiscard]] RoutingFunction xfirst_routing(const topo::Mesh2D& mesh);

/// E-cube unicast routing on a hypercube: resolve the lowest differing
/// dimension first.  Known deadlock-free [Dally & Seitz 87].
[[nodiscard]] RoutingFunction ecube_routing(const topo::Hypercube& cube);

/// Dimension-ordered (XYZ) unicast routing on a 3-D mesh: correct the X
/// offset fully, then Y, then Z.  Deadlock-free by the same dimension-order
/// argument as X-first on the 2-D mesh (Corollaries 4.1-4.4 extend the
/// host-graph results to 3-D meshes).
[[nodiscard]] RoutingFunction zfirst_routing(const topo::Mesh3D& mesh);

/// Dimension-ordered unicast routing on a k-ary n-cube: resolve digits from
/// dimension 0 upward; within a wraparound ring take the shorter direction
/// (ties broken towards +1).  Deadlock-free on the non-wrap (mesh-like)
/// variant; on wraparound rings with k >= 4 the ring channels close a
/// dependency cycle (the classic torus result motivating virtual channels),
/// which the analyzer tests demonstrate.
[[nodiscard]] RoutingFunction dimension_order_routing(const topo::KAryNCube& cube);

/// Label-order-preserving routing restricted to one subnetwork of a
/// Hamiltonian labeling (the function R of Section 6.2.2): used to verify
/// that the high- and low-channel subnetworks of the dual-/multi-/fixed-
/// path algorithms carry no dependency cycles.
///
/// The returned function routes only pairs whose direction matches `high`
/// (label(dst) > label(src) for the high network); other pairs return
/// kInvalidNode and contribute no dependencies.
[[nodiscard]] RoutingFunction label_routing(const topo::Topology& topology,
                                            const ham::Labeling& labeling, bool high);

/// Check that the subnetwork of channels selected by `in_subnetwork`
/// contains no directed cycle of channels *in the node graph itself* (the
/// network-partition acyclicity argument of Section 6.2.1): returns true if
/// the subgraph of directed edges is a DAG over nodes.
[[nodiscard]] bool subnetwork_is_acyclic(
    const topo::Topology& topology,
    const std::function<bool(topo::NodeId from, topo::NodeId to)>& in_subnetwork);

}  // namespace mcnet::cdg
