// Channel dependency graphs (CDG) and the Dally-Seitz acyclicity condition
// (Section 2.3.4): a routing algorithm is deadlock-free iff its CDG has no
// cycle.  The nodes of the CDG are the directed channels of the network; an
// edge (c_i, c_j) exists when the routing function can forward a message
// arriving on c_i out through c_j.
//
// Beyond the plain graph, every dependency edge can carry *provenance
// tags*: opaque identifiers of the message instances whose routes induced
// the edge.  The static multicast analyzer (src/analysis/) uses tags to
// turn an abstract CDG cycle into a concrete deadlock witness -- the
// minimal set of concurrent multicasts whose dependencies close the cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "topology/topology.hpp"

namespace mcnet::cdg {

using topo::ChannelId;
using topo::NodeId;

/// A unicast routing function: given the current node and the destination,
/// return the next-hop node (kInvalidNode when current == destination or
/// the pair is unroutable).  Deterministic routing only, as in the paper's
/// deadlock analyses.
using RoutingFunction = std::function<NodeId(NodeId current, NodeId destination)>;

/// Opaque provenance tag attached to a dependency edge (the analysis layer
/// uses the index of the multicast instance that created the edge).
using EdgeTag = std::uint32_t;
inline constexpr EdgeTag kNoEdgeTag = static_cast<EdgeTag>(-1);

/// Directed graph over channel ids with optional per-edge provenance.
class ChannelGraph {
 public:
  /// At most this many distinct tags are retained per edge; later
  /// contributors of an already-saturated edge are dropped (the edge itself
  /// is always kept).
  static constexpr std::size_t kMaxTagsPerEdge = 4;

  explicit ChannelGraph(std::uint32_t num_channels)
      : succ_(num_channels), tags_(num_channels) {}

  void add_dependency(ChannelId from, ChannelId to) {
    add_dependency(from, to, kNoEdgeTag);
  }
  /// Record the dependency and attach `tag` to it (kNoEdgeTag attaches
  /// nothing).  Duplicate (from, to) pairs are merged; their tag sets are
  /// unioned up to kMaxTagsPerEdge distinct tags.
  void add_dependency(ChannelId from, ChannelId to, EdgeTag tag);

  [[nodiscard]] std::uint32_t num_channels() const {
    return static_cast<std::uint32_t>(succ_.size());
  }
  /// Successor channel ids of `c`, sorted ascending.
  [[nodiscard]] const std::vector<ChannelId>& successors(ChannelId c) const {
    return succ_[c];
  }
  [[nodiscard]] std::size_t num_dependencies() const;

  /// Distinct provenance tags recorded for edge (from, to); empty when the
  /// edge does not exist or carries no tags.
  [[nodiscard]] std::span<const EdgeTag> edge_tags(ChannelId from, ChannelId to) const;

  /// True iff the graph contains no directed cycle.
  [[nodiscard]] bool acyclic() const;

  /// A directed cycle (sequence of channel ids, first repeated at the end
  /// conceptually but not stored), or nullopt if acyclic.
  [[nodiscard]] std::optional<std::vector<ChannelId>> find_cycle() const;

  /// find_cycle() restricted to edges accepted by `edge_ok`; edges for
  /// which the predicate returns false are treated as absent.
  [[nodiscard]] std::optional<std::vector<ChannelId>> find_cycle_if(
      const std::function<bool(ChannelId from, ChannelId to)>& edge_ok) const;

 private:
  std::vector<std::vector<ChannelId>> succ_;        // sorted adjacency
  std::vector<std::vector<std::vector<EdgeTag>>> tags_;  // parallel to succ_
};

/// Build the CDG of `route` on `topology`: for every (source, destination)
/// pair, walk the routed path and record each consecutive channel pair as a
/// dependency.  O(N^2 * diameter); intended for the small verification
/// networks used in tests and the cdg_explorer example.
[[nodiscard]] ChannelGraph build_unicast_cdg(const topo::Topology& topology,
                                             const RoutingFunction& route);

}  // namespace mcnet::cdg
