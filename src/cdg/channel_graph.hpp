// Channel dependency graphs (CDG) and the Dally-Seitz acyclicity condition
// (Section 2.3.4): a routing algorithm is deadlock-free iff its CDG has no
// cycle.  The nodes of the CDG are the directed channels of the network; an
// edge (c_i, c_j) exists when the routing function can forward a message
// arriving on c_i out through c_j.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "topology/topology.hpp"

namespace mcnet::cdg {

using topo::ChannelId;
using topo::NodeId;

/// A unicast routing function: given the current node and the destination,
/// return the next-hop node (kInvalidNode when current == destination or
/// the pair is unroutable).  Deterministic routing only, as in the paper's
/// deadlock analyses.
using RoutingFunction = std::function<NodeId(NodeId current, NodeId destination)>;

/// Directed graph over channel ids.
class ChannelGraph {
 public:
  explicit ChannelGraph(std::uint32_t num_channels) : succ_(num_channels) {}

  void add_dependency(ChannelId from, ChannelId to);

  [[nodiscard]] std::uint32_t num_channels() const {
    return static_cast<std::uint32_t>(succ_.size());
  }
  [[nodiscard]] const std::vector<ChannelId>& successors(ChannelId c) const {
    return succ_[c];
  }
  [[nodiscard]] std::size_t num_dependencies() const;

  /// True iff the graph contains no directed cycle.
  [[nodiscard]] bool acyclic() const;

  /// A directed cycle (sequence of channel ids, first repeated at the end
  /// conceptually but not stored), or nullopt if acyclic.
  [[nodiscard]] std::optional<std::vector<ChannelId>> find_cycle() const;

 private:
  std::vector<std::vector<ChannelId>> succ_;
};

/// Build the CDG of `route` on `topology`: for every (source, destination)
/// pair, walk the routed path and record each consecutive channel pair as a
/// dependency.  O(N^2 * diameter); intended for the small verification
/// networks used in tests and the cdg_explorer example.
[[nodiscard]] ChannelGraph build_unicast_cdg(const topo::Topology& topology,
                                             const RoutingFunction& route);

}  // namespace mcnet::cdg
