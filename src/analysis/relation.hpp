// Relation-based channel-dependency analysis: the adaptive half of the
// static analyzer (Section 8.2 adaptivity meets the Chapter 6 machinery).
//
// A deterministic route fixes one path per worm; an *adaptive routing
// relation* instead defines, per (channel class, current node, current
// target), the SET of next virtual channels a message may legally occupy.
// The engine explores every reachable worm state over all choices, closes
// the channel dependency graph over the full relation, and then decides
// deadlock freedom one of two ways:
//
//  * the closed CDG is acyclic (Dally-Seitz, strongest form), or
//  * the relation carries an *escape subfunction* -- a deterministic
//    single-choice subrelation available at every reachable state -- whose
//    extended dependency graph (direct escape-to-escape dependencies plus
//    indirect ones propagated through adaptive-channel acquisitions) is
//    acyclic.  This is Duato's sufficient condition specialized to the
//    wormhole/virtual-channel model of src/cdg/: a blocked worm can always
//    drain along the escape choices, so only a cycle among escape channels
//    could sustain a deadlock.
//
// When neither holds, the tagged CDG is handed to the same multi-instance
// cycle search and delta-debugged witness shrinking the deterministic
// analyzer uses, producing a concrete minimal set of concurrent multicasts
// (marked non-realizable: adaptive relations have no single route to build
// hold states from, so witnesses stay over-approximate).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "analysis/mcdg.hpp"
#include "analysis/scenario.hpp"
#include "core/multicast.hpp"
#include "topology/topology.hpp"

namespace mcnet::analysis {

/// One legal next hop of a relation: the neighbour moved to and the
/// virtual-channel copy the hop is pinned to.
struct RelationHop {
  topo::NodeId to = topo::kInvalidNode;
  std::uint8_t copy = 0;
};

/// One path worm of a relation instance, before any routing choice is
/// made: its channel class, an optional forced first hop (multi-path
/// addresses a specific source neighbour), and the ordered targets.
struct WormSpec {
  std::uint8_t channel_class = 0;
  topo::NodeId source = topo::kInvalidNode;
  std::optional<topo::NodeId> first_hop;
  std::uint8_t first_hop_copy = 0;
  std::vector<topo::NodeId> targets;
};

/// An adaptive routing relation under analysis.  Non-owning: the Fixture
/// that built it keeps topology and labeling alive.
struct RoutingRelation {
  std::string name;
  const topo::Topology* topology = nullptr;
  /// Virtual channel copies per physical channel.
  std::uint8_t channel_copies = 1;
  /// Message preparation: split a request into path worms.
  std::function<std::vector<WormSpec>(const mcast::MulticastRequest&)> prepare;
  /// The choice set at (channel class, current node, current target);
  /// clears and fills `out`.  Empty means the relation is stuck there.
  std::function<void(std::uint8_t channel_class, topo::NodeId cur, topo::NodeId target,
                     std::vector<RelationHop>& out)>
      candidates;
  /// Escape subfunction; null when the relation offers none.  Must return a
  /// member of the candidate set at every reachable non-terminal state
  /// (to == kInvalidNode marks "no escape here", a certification failure).
  std::function<RelationHop(std::uint8_t channel_class, topo::NodeId cur, topo::NodeId target)>
      escape;
  /// What the relation claims; drives mcnet_verify --expect auto.
  bool claimed_deadlock_free = true;
};

/// Result of the escape-channel certification pass.
struct EscapeReport {
  /// The relation supplies an escape subfunction.
  bool checked = false;
  /// Escape defined and a candidate at every reachable non-terminal state,
  /// and every escape-only walk terminates.
  bool complete = false;
  /// The extended escape dependency graph is acyclic.
  bool acyclic = false;
  std::size_t escape_channels = 0;
  std::size_t extended_dependencies = 0;
  /// First few certification failures, for reporting.
  std::vector<std::string> failures;

  [[nodiscard]] bool certified() const { return checked && complete && acyclic; }
};

/// Result of analysing one relation over the instance enumeration.
struct RelationReport {
  std::size_t instances_analyzed = 0;
  /// Distinct reachable (worm, header state) pairs explored.
  std::size_t worm_states = 0;
  std::size_t virtual_channels = 0;
  std::size_t dependencies = 0;
  /// Reachable non-terminal states with an empty candidate set.
  std::size_t stuck_states = 0;
  /// The full relation CDG is acyclic (deadlock-free outright).
  bool cdg_acyclic = false;
  EscapeReport escape;
  /// Present iff the relation is not certified and the tagged CDG admits a
  /// multi-instance cycle (always non-realizable for relations).
  std::optional<DeadlockWitness> witness;

  /// Deadlock-free by either sufficient condition, with no stuck states.
  [[nodiscard]] bool certified() const {
    return stuck_states == 0 && (cdg_acyclic || escape.certified());
  }
};

/// Relations the analyzer can check on this fixture (all require the
/// Hamiltonian labeling, which every supported topology has).
[[nodiscard]] std::vector<std::string> verifiable_relations(const Fixture& fixture);

/// Build the named relation on `fixture`.  Names:
///   adaptive-dual-path  -- Section 8.2 randomized dual-path: all monotone
///                          distance-preferring hops, escape = the
///                          deterministic label router R;
///   dual-path, multi-path, fixed-path
///                       -- singleton relation views of the deterministic
///                          suites (validation oracles: must certify
///                          exactly where the PR 4 analyzer says CLEAN);
///   min-adaptive        -- planted negative control: fully adaptive
///                          minimal unicast fan-out with NO escape
///                          (deadlocks on every CI topology);
///   min-adaptive-escape -- minimal adaptive on VC copy 1 with a
///                          dimension-order escape on copy 0 (certified on
///                          the mesh-like topologies; the wraparound ring
///                          keeps its classic escape cycle).
/// Throws std::invalid_argument for unknown names.
[[nodiscard]] RoutingRelation make_relation(const Fixture& fixture, const std::string& name);

/// Explore the relation over the systematic instance enumeration, certify
/// or search for a witness.
[[nodiscard]] RelationReport analyze_relation(const RoutingRelation& relation,
                                              const AnalysisConfig& config = {});

/// Does the relation CDG restricted to `instances` still admit a
/// multi-instance cycle?  Shrinking oracle; exposed for 1-minimality tests.
[[nodiscard]] bool relation_subset_deadlocks(
    const RoutingRelation& relation, const std::vector<mcast::MulticastRequest>& instances);

}  // namespace mcnet::analysis
