#include "analysis/scenario.hpp"

#include <stdexcept>

#include "core/dc_xfirst_tree.hpp"
#include "core/dual_path.hpp"
#include "core/fixed_path.hpp"
#include "core/multi_path.hpp"
#include "core/naive_tree.hpp"
#include "core/router.hpp"
#include "core/xfirst_mt.hpp"

namespace mcnet::analysis {

using mcast::Algorithm;

Fixture make_fixture(const std::string& topology_spec) {
  Fixture f;
  f.topology = topo::make_topology(topology_spec);
  if ((f.mesh2d = dynamic_cast<const topo::Mesh2D*>(f.topology.get()))) {
    f.labeling = std::make_unique<ham::MeshBoustrophedonLabeling>(*f.mesh2d);
  } else if ((f.cube = dynamic_cast<const topo::Hypercube*>(f.topology.get()))) {
    f.labeling = std::make_unique<ham::HypercubeGrayLabeling>(*f.cube);
  } else if ((f.mesh3d = dynamic_cast<const topo::Mesh3D*>(f.topology.get()))) {
    f.labeling = std::make_unique<ham::MixedRadixGrayLabeling>(
        ham::MixedRadixGrayLabeling::for_mesh3d(*f.mesh3d));
  } else if ((f.kary = dynamic_cast<const topo::KAryNCube*>(f.topology.get()))) {
    f.labeling = std::make_unique<ham::MixedRadixGrayLabeling>(
        ham::MixedRadixGrayLabeling::for_kary(*f.kary));
  }
  return f;
}

std::vector<Algorithm> verifiable_algorithms(const Fixture& fixture) {
  if (fixture.mesh2d != nullptr) {
    return {Algorithm::kXFirstMT, Algorithm::kDCXFirstTree, Algorithm::kDualPath,
            Algorithm::kMultiPath, Algorithm::kFixedPath};
  }
  if (fixture.cube != nullptr) {
    return {Algorithm::kBinomialBroadcast, Algorithm::kEcubeMT, Algorithm::kDualPath,
            Algorithm::kMultiPath, Algorithm::kFixedPath};
  }
  return {Algorithm::kDualPath, Algorithm::kMultiPath, Algorithm::kFixedPath};
}

bool claimed_deadlock_free(Algorithm algorithm) {
  return mcast::algorithm_deadlock_free(algorithm);
}

Scenario make_scenario(const Fixture& fixture, Algorithm algorithm) {
  Scenario s;
  s.topology = fixture.topology.get();
  s.labeling = fixture.labeling.get();
  s.name = std::string(mcast::algorithm_name(algorithm)) + " @ " + fixture.topology->name();

  const topo::Mesh2D* mesh = fixture.mesh2d;
  const topo::Hypercube* cube = fixture.cube;
  const topo::Topology* topology = fixture.topology.get();
  const ham::Labeling* labeling = fixture.labeling.get();

  switch (algorithm) {
    case Algorithm::kXFirstMT:
      if (mesh == nullptr) break;
      s.route = [mesh](const mcast::MulticastRequest& r) {
        return mcast::xfirst_mt_route(*mesh, r);
      };
      s.tree_semantics = TreeSemantics::kLockStep;
      return s;

    case Algorithm::kEcubeMT:
      if (cube == nullptr) break;
      s.route = [cube](const mcast::MulticastRequest& r) {
        return mcast::ecube_mt_route(*cube, r);
      };
      s.tree_semantics = TreeSemantics::kLockStep;
      return s;

    case Algorithm::kBinomialBroadcast:
      if (cube == nullptr) break;
      s.route = [cube](const mcast::MulticastRequest& r) {
        return mcast::binomial_broadcast_route(*cube, r);
      };
      s.tree_semantics = TreeSemantics::kLockStep;
      return s;

    case Algorithm::kDCXFirstTree:
      if (mesh == nullptr) break;
      s.route = [mesh](const mcast::MulticastRequest& r) {
        return mcast::dc_xfirst_tree_route(*mesh, r);
      };
      s.tree_semantics = TreeSemantics::kIndependentBranches;
      s.channel_copies = 2;
      s.copy_of = [mesh](std::uint8_t cls, topo::NodeId from, topo::NodeId to) {
        const topo::Coord2 a = mesh->coord(from);
        const topo::Coord2 b = mesh->coord(to);
        return mcast::quadrant_channel_copy(static_cast<mcast::Quadrant>(cls), b.x - a.x,
                                            b.y - a.y);
      };
      s.quadrant_mesh = mesh;
      return s;

    case Algorithm::kDualPath:
      if (labeling == nullptr) break;
      s.route = [topology, labeling](const mcast::MulticastRequest& r) {
        return mcast::dual_path_route(*topology, *labeling, r);
      };
      s.label_monotone_paths = true;
      // Lemma 6.1: the label router takes shortest paths -- on meshes and
      // hypercubes.  Wraparound rings break the claim (the Hamiltonian
      // subnetworks cannot shortcut across the wrap channels).
      s.shortest_unicast = fixture.kary == nullptr || !fixture.kary->wraps();
      return s;

    case Algorithm::kMultiPath:
      if (labeling == nullptr) break;
      if (mesh != nullptr) {
        const auto* mlab = static_cast<const ham::MeshBoustrophedonLabeling*>(labeling);
        s.route = [mesh, mlab](const mcast::MulticastRequest& r) {
          return mcast::multi_path_route(*mesh, *mlab, r);
        };
      } else {
        s.route = [topology, labeling](const mcast::MulticastRequest& r) {
          return mcast::multi_path_route(*topology, *labeling, r);
        };
      }
      s.label_monotone_paths = true;
      return s;

    case Algorithm::kFixedPath:
      if (labeling == nullptr) break;
      s.route = [topology, labeling](const mcast::MulticastRequest& r) {
        return mcast::fixed_path_route(*topology, *labeling, r);
      };
      s.label_monotone_paths = true;
      return s;

    default:
      break;
  }
  throw std::invalid_argument("algorithm " + std::string(mcast::algorithm_name(algorithm)) +
                              " is not verifiable on " + fixture.topology->name());
}

}  // namespace mcnet::analysis
