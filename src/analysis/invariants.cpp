#include "analysis/invariants.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "analysis/instances.hpp"
#include "core/dc_xfirst_tree.hpp"
#include "core/dual_path.hpp"

namespace mcnet::analysis {

namespace {

using mcast::MulticastRequest;
using mcast::MulticastRoute;
using mcast::PathRoute;
using mcast::TreeRoute;
using topo::ChannelId;
using topo::NodeId;

constexpr std::size_t kMaxSamples = 8;

class Recorder {
 public:
  explicit Recorder(InvariantReport& report) : report_(report) {}

  void violation(const std::string& kind, const MulticastRequest& instance,
                 std::string detail) {
    ++report_.violations;
    if (report_.samples.size() < kMaxSamples) {
      report_.samples.push_back({kind, instance, std::move(detail)});
    }
  }

 private:
  InvariantReport& report_;
};

std::string hop_text(NodeId from, NodeId to) {
  std::ostringstream out;
  out << "hop " << from << " -> " << to;
  return out.str();
}

void check_label_monotone(const Scenario& s, const MulticastRequest& instance,
                          const MulticastRoute& route, Recorder& rec) {
  for (const PathRoute& path : route.paths) {
    const bool ascending = path.channel_class == mcast::kHighChannelClass;
    for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
      const std::uint32_t lf = s.labeling->label(path.nodes[i]);
      const std::uint32_t lt = s.labeling->label(path.nodes[i + 1]);
      if (ascending ? lt > lf : lt < lf) continue;
      std::ostringstream out;
      out << hop_text(path.nodes[i], path.nodes[i + 1]) << " breaks "
          << (ascending ? "ascending" : "descending") << " label order (" << lf << " -> " << lt
          << ") on the " << (ascending ? "high" : "low") << " subnetwork";
      rec.violation("label-monotone", instance, out.str());
    }
  }
}

void check_quadrants(const Scenario& s, const MulticastRequest& instance,
                     const MulticastRoute& route, Recorder& rec) {
  // Allowed hop directions per quadrant subnetwork, indexed by Quadrant.
  static constexpr std::int32_t kDir[4][2][2] = {
      {{+1, 0}, {0, +1}},  // +X,+Y
      {{-1, 0}, {0, +1}},  // -X,+Y
      {{-1, 0}, {0, -1}},  // -X,-Y
      {{+1, 0}, {0, -1}},  // +X,-Y
  };
  for (const TreeRoute& tree : route.trees) {
    if (tree.channel_class >= 4) {
      rec.violation("quadrant", instance,
                    "tree channel class " + std::to_string(tree.channel_class) +
                        " is not a quadrant subnetwork");
      continue;
    }
    for (const TreeRoute::Link& link : tree.links) {
      const topo::Coord2 a = s.quadrant_mesh->coord(link.from);
      const topo::Coord2 b = s.quadrant_mesh->coord(link.to);
      const std::int32_t dx = b.x - a.x;
      const std::int32_t dy = b.y - a.y;
      const auto& dirs = kDir[tree.channel_class];
      const bool allowed = (dx == dirs[0][0] && dy == dirs[0][1]) ||
                           (dx == dirs[1][0] && dy == dirs[1][1]);
      if (!allowed) {
        rec.violation("quadrant", instance,
                      hop_text(link.from, link.to) + " leaves quadrant subnetwork " +
                          std::to_string(tree.channel_class));
      }
    }
  }
}

// One worm never acquires the same virtual channel twice; duplicates mean
// the route claims capacity it cannot hold.
void check_capacity(const Scenario& s, const MulticastRequest& instance,
                    const MulticastRoute& route, Recorder& rec) {
  const auto vc_of = [&](std::uint8_t cls, NodeId from, NodeId to) {
    const ChannelId c = s.topology->channel(from, to);
    const std::uint8_t copy = s.copy_of ? s.copy_of(cls, from, to) : 0;
    return virtual_channel_id(c, copy, s.channel_copies);
  };
  const auto report_duplicates = [&](std::vector<ChannelId> vcs, const char* what) {
    std::sort(vcs.begin(), vcs.end());
    const auto dup = std::adjacent_find(vcs.begin(), vcs.end());
    if (dup != vcs.end()) {
      rec.violation("capacity", instance,
                    std::string(what) + " acquires virtual channel " + std::to_string(*dup) +
                        " twice");
    }
  };
  for (const PathRoute& path : route.paths) {
    std::vector<ChannelId> vcs;
    vcs.reserve(path.nodes.empty() ? 0 : path.nodes.size() - 1);
    for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
      vcs.push_back(vc_of(path.channel_class, path.nodes[i], path.nodes[i + 1]));
    }
    report_duplicates(std::move(vcs), "path worm");
  }
  for (const TreeRoute& tree : route.trees) {
    std::vector<ChannelId> vcs;
    vcs.reserve(tree.links.size());
    for (const TreeRoute::Link& link : tree.links) {
      vcs.push_back(vc_of(tree.channel_class, link.from, link.to));
    }
    report_duplicates(std::move(vcs), "tree worm");
  }
}

void check_shortest(const Scenario& s, const MulticastRequest& instance,
                    const MulticastRoute& route, Recorder& rec) {
  if (instance.destinations.size() != 1) return;
  const NodeId dest = instance.destinations.front();
  const std::uint32_t dist = s.topology->distance(instance.source, dest);
  const std::uint32_t hops = route.max_delivery_hops();
  if (hops < dist) {
    rec.violation("shortest", instance,
                  "delivery in " + std::to_string(hops) + " hops beats the distance lower bound " +
                      std::to_string(dist));
  } else if (s.shortest_unicast && hops != dist) {
    rec.violation("shortest", instance,
                  "unicast leg takes " + std::to_string(hops) + " hops, shortest is " +
                      std::to_string(dist));
  }
}

}  // namespace

InvariantReport check_invariants(const Scenario& scenario, const AnalysisConfig& config) {
  InvariantReport report;
  Recorder rec(report);

  const std::vector<MulticastRequest> instances =
      enumerate_instances(*scenario.topology, config.max_set_size, config.max_instances);
  report.instances_checked = instances.size();

  for (const MulticastRequest& instance : instances) {
    MulticastRoute route;
    try {
      route = scenario.route(instance);
    } catch (const std::exception& e) {
      rec.violation("reachability", instance, e.what());
      continue;
    }
    try {
      mcast::verify_route(*scenario.topology, instance, route);
    } catch (const std::exception& e) {
      rec.violation("structure", instance, e.what());
      continue;
    }
    if (scenario.label_monotone_paths && scenario.labeling != nullptr) {
      check_label_monotone(scenario, instance, route, rec);
    }
    if (scenario.quadrant_mesh != nullptr) {
      check_quadrants(scenario, instance, route, rec);
    }
    check_capacity(scenario, instance, route, rec);
    check_shortest(scenario, instance, route, rec);
  }
  return report;
}

}  // namespace mcnet::analysis
