// Multicast channel-dependency-graph analysis (the static half of Chapter
// 6): enumerate the channel dependencies each multicast algorithm induces
// over systematically enumerated (source, destination-set) instances,
// search the CDG for directed cycles, and turn a cycle into a concrete,
// shrunk deadlock witness -- the minimal set of concurrent multicasts whose
// dependencies close the cycle.
//
// Dependencies are taken over *virtual* channels (physical channel id x
// copy), so the double-channel schemes are analyzed over the channel sets
// their subnetworks actually own.  Tree-shaped routes contribute edges
// according to the scenario's TreeSemantics (see analysis/scenario.hpp):
// lock-step worms admit cross-branch waits, independent branches only
// consecutive-channel waits.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/scenario.hpp"
#include "cdg/channel_graph.hpp"
#include "core/multicast.hpp"

namespace mcnet::analysis {

/// Knobs shared by the deadlock and invariant analyses.
struct AnalysisConfig {
  /// Largest destination-set size enumerated per source.
  std::uint32_t max_set_size = 2;
  /// Instance budget; the enumeration is stride-sampled above it.
  std::size_t max_instances = 300000;
  /// Run counterexample shrinking on a found cycle.
  bool shrink = true;
};

/// Virtual channel: a physical channel and the copy it is pinned to.
struct VirtualChannel {
  topo::ChannelId channel = topo::kInvalidChannel;
  std::uint8_t copy = 0;
};

/// A concrete deadlock counterexample: a minimal set of concurrent
/// multicasts and the virtual-channel cycle their dependencies close.
struct DeadlockWitness {
  /// The concurrent multicast instances (after shrinking: typically two,
  /// with minimal destination sets).
  std::vector<mcast::MulticastRequest> instances;
  /// The dependency cycle, as virtual channels in order (edge i goes from
  /// cycle[i] to cycle[(i+1) % size]).
  std::vector<VirtualChannel> cycle;
  /// Which instance (index into `instances`) induces each cycle edge.
  std::vector<std::uint32_t> edge_instance;
  /// True when a hold/request state assignment was found in which each
  /// instance's held channels are mutually disjoint and every requested
  /// channel is held by the next instance around the cycle -- i.e. the
  /// cycle is a realizable circular wait, not just an over-approximation.
  bool realizable = false;

  [[nodiscard]] std::string format(const topo::Topology& topology) const;
};

/// Result of the deadlock-freedom analysis of one scenario.
struct DeadlockReport {
  std::size_t instances_analyzed = 0;
  std::size_t virtual_channels = 0;
  std::size_t dependencies = 0;
  /// Present iff the CDG admits a multi-instance dependency cycle.
  std::optional<DeadlockWitness> witness;

  [[nodiscard]] bool deadlock_free() const { return !witness.has_value(); }
};

/// Dense virtual-channel id: channel * copies + copy.
[[nodiscard]] inline topo::ChannelId virtual_channel_id(topo::ChannelId channel,
                                                        std::uint8_t copy,
                                                        std::uint8_t copies) {
  return channel * copies + copy;
}

/// A multi-instance dependency cycle found in a tagged CDG: the virtual
/// channels in order, plus one inducing instance tag per edge (edge i goes
/// vcs[i] -> vcs[(i+1) % size]; at least two distinct tags overall).
struct TaggedCycle {
  std::vector<topo::ChannelId> vcs;
  std::vector<cdg::EdgeTag> edge_instance;
};

/// Search a tagged CDG for a directed cycle attributable to at least two
/// distinct instances (a single message cannot circularly wait on itself).
/// Shared by the deterministic analyzer and the relation-based engine.
[[nodiscard]] std::optional<TaggedCycle> find_multi_instance_cycle(
    const cdg::ChannelGraph& graph);

/// Does the CDG restricted to `instances` still witness a deadlock at the
/// given realizability level?  This is the delta-debugging oracle used by
/// witness shrinking; exposed so tests can assert shrunk witnesses are
/// 1-minimal.
[[nodiscard]] bool subset_deadlocks(const Scenario& scenario,
                                    const std::vector<mcast::MulticastRequest>& instances,
                                    bool require_realizable);

/// Append the dependency edges `route` induces under the scenario's
/// semantics to `graph`, tagging each edge with `tag`.  Exposed for tests.
void add_route_dependencies(const Scenario& scenario, const mcast::MulticastRoute& route,
                            cdg::ChannelGraph& graph, cdg::EdgeTag tag);

/// Build the full multicast CDG of `scenario` over `instances`.
[[nodiscard]] cdg::ChannelGraph build_multicast_cdg(
    const Scenario& scenario, const std::vector<mcast::MulticastRequest>& instances);

/// Enumerate instances, build the CDG, search for a multi-instance cycle
/// and (optionally) shrink it to a minimal witness.
[[nodiscard]] DeadlockReport analyze_deadlock(const Scenario& scenario,
                                              const AnalysisConfig& config = {});

}  // namespace mcnet::analysis
