// Analysis scenarios: a (topology, multicast algorithm) pair packaged with
// everything the static analyzer needs -- the route function, the worm
// delivery semantics that determine which channel dependencies a tree
// induces, the virtual-channel copy mapping (double-channel schemes), and
// the invariants the algorithm claims (label monotonicity, shortest unicast
// legs, quadrant-subnetwork membership).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/route_factory.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/spec.hpp"

namespace mcnet::analysis {

/// How a tree-shaped worm blocks, which decides the dependency edges its
/// links induce (Section 6.1 vs 6.2.1):
///
///  * kLockStep -- the nCUBE-2 model: all branches advance in lock step, so
///    a blocked branch stalls the whole worm while every already-acquired
///    channel anywhere in the tree stays held.  Any held channel can then
///    wait on any channel whose acquisition does not itself require the
///    held one, which is what makes the naive trees deadlock-prone.
///  * kIndependentBranches -- the double-channel model: each branch blocks
///    and drains on its own, so only consecutive (parent -> child) channel
///    pairs form dependencies, exactly as for path worms.
enum class TreeSemantics : std::uint8_t { kLockStep, kIndependentBranches };

/// Maps a route component's channel class and a hop direction to the
/// physical channel copy it is pinned to (double-channel schemes).
using CopyFunction =
    std::function<std::uint8_t(std::uint8_t channel_class, topo::NodeId from, topo::NodeId to)>;

/// One concrete (topology, algorithm) under static analysis.  Non-owning:
/// the Fixture (or test) that built it keeps topology and labeling alive.
struct Scenario {
  std::string name;
  const topo::Topology* topology = nullptr;
  std::function<mcast::MulticastRoute(const mcast::MulticastRequest&)> route;
  TreeSemantics tree_semantics = TreeSemantics::kIndependentBranches;
  /// Virtual channel copies per physical channel (1 = single-channel).
  std::uint8_t channel_copies = 1;
  /// Copy pinning; null means copy 0 everywhere.
  CopyFunction copy_of;
  /// Labeling for the label-order invariants; null when not applicable.
  const ham::Labeling* labeling = nullptr;
  /// Paths must be strictly label-monotone (high class ascending, low
  /// class descending) and confined to their subnetwork.
  bool label_monotone_paths = false;
  /// Singleton-destination routes must use exactly distance(src, dst) hops.
  bool shortest_unicast = false;
  /// Trees must stay inside their quadrant subnetwork (dc X-first).
  const topo::Mesh2D* quadrant_mesh = nullptr;
};

/// Owns a parsed topology plus the labeling the Chapter 6 algorithms need.
struct Fixture {
  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<ham::Labeling> labeling;
  // Concrete-type views (null when the topology is of another kind).
  const topo::Mesh2D* mesh2d = nullptr;
  const topo::Hypercube* cube = nullptr;
  const topo::Mesh3D* mesh3d = nullptr;
  const topo::KAryNCube* kary = nullptr;
};

/// Parse "mesh:WxH" / "cube:N" / "mesh3:XxYxZ" / "kary:KxN" / "karymesh:KxN"
/// and attach the matching Hamiltonian labeling.
[[nodiscard]] Fixture make_fixture(const std::string& topology_spec);

/// The multicast algorithms the analyzer can check on this fixture.
[[nodiscard]] std::vector<mcast::Algorithm> verifiable_algorithms(const Fixture& fixture);

/// Build the scenario for `algorithm` on `fixture`.  Throws
/// std::invalid_argument when the algorithm is not verifiable there.
[[nodiscard]] Scenario make_scenario(const Fixture& fixture, mcast::Algorithm algorithm);

/// True when Chapter 6 claims the algorithm deadlock-free (the analyzer is
/// expected to prove these clean and to find witnesses for the rest).
[[nodiscard]] bool claimed_deadlock_free(mcast::Algorithm algorithm);

}  // namespace mcnet::analysis
