// Systematic enumeration of multicast instances for the static analyzer:
// every (source, destination-set) pair with bounded set size, in a
// deterministic order, optionally stride-sampled down to a budget so large
// topologies stay analyzable in CI.
#pragma once

#include <cstddef>
#include <vector>

#include "core/multicast.hpp"
#include "topology/topology.hpp"

namespace mcnet::analysis {

/// Number of instances enumerate_instances() would produce before
/// stride-sampling: N * sum_{s=1..max_set_size} C(N-1, s).
[[nodiscard]] std::size_t count_instances(std::uint32_t num_nodes,
                                          std::uint32_t max_set_size);

/// Enumerate multicast requests over `topology`: for every source, every
/// destination set of size 1..max_set_size (combinations of the other
/// nodes in lexicographic order).  When the total exceeds `max_instances`
/// the sequence is stride-sampled (every ceil(total/max)-th instance) so
/// coverage stays spread over sources and set shapes instead of being
/// truncated to the low node ids.
[[nodiscard]] std::vector<mcast::MulticastRequest> enumerate_instances(
    const topo::Topology& topology, std::uint32_t max_set_size,
    std::size_t max_instances = static_cast<std::size_t>(-1));

}  // namespace mcnet::analysis
