#include "analysis/report.hpp"

namespace mcnet::analysis {

namespace {

obs::Json request_json(const mcast::MulticastRequest& request) {
  obs::Json j = obs::Json::object();
  j["source"] = request.source;
  obs::Json dests = obs::Json::array();
  for (const topo::NodeId d : request.destinations) dests.push_back(d);
  j["destinations"] = std::move(dests);
  return j;
}

}  // namespace

obs::Json witness_json(const DeadlockWitness& witness, const topo::Topology& topology) {
  obs::Json j = obs::Json::object();
  obs::Json instances = obs::Json::array();
  for (const mcast::MulticastRequest& r : witness.instances) {
    instances.push_back(request_json(r));
  }
  j["instances"] = std::move(instances);
  obs::Json cycle = obs::Json::array();
  for (const VirtualChannel& vc : witness.cycle) {
    obs::Json c = obs::Json::object();
    c["channel"] = vc.channel;
    const topo::ChannelEnds ends = topology.channel_ends(vc.channel);
    c["from"] = ends.from;
    c["to"] = ends.to;
    c["copy"] = static_cast<unsigned>(vc.copy);
    cycle.push_back(std::move(c));
  }
  j["cycle"] = std::move(cycle);
  obs::Json edges = obs::Json::array();
  for (const std::uint32_t i : witness.edge_instance) edges.push_back(i);
  j["edge_instance"] = std::move(edges);
  j["realizable"] = witness.realizable;
  return j;
}

obs::Json deadlock_json(const DeadlockReport& report, const topo::Topology& topology) {
  obs::Json j = obs::Json::object();
  j["instances_analyzed"] = report.instances_analyzed;
  j["virtual_channels"] = report.virtual_channels;
  j["dependencies"] = report.dependencies;
  j["deadlock_free"] = report.deadlock_free();
  j["witness"] = report.witness ? witness_json(*report.witness, topology) : obs::Json();
  return j;
}

obs::Json invariants_json(const InvariantReport& report) {
  obs::Json j = obs::Json::object();
  j["instances_checked"] = report.instances_checked;
  j["violations"] = report.violations;
  j["ok"] = report.ok();
  obs::Json samples = obs::Json::array();
  for (const InvariantViolation& v : report.samples) {
    obs::Json s = obs::Json::object();
    s["kind"] = v.kind;
    s["source"] = v.instance.source;
    obs::Json dests = obs::Json::array();
    for (const topo::NodeId d : v.instance.destinations) dests.push_back(d);
    s["destinations"] = std::move(dests);
    s["detail"] = v.detail;
    samples.push_back(std::move(s));
  }
  j["samples"] = std::move(samples);
  return j;
}

obs::Json relation_json(const RelationReport& report, const topo::Topology& topology) {
  obs::Json j = obs::Json::object();
  j["instances_analyzed"] = report.instances_analyzed;
  j["worm_states"] = report.worm_states;
  j["virtual_channels"] = report.virtual_channels;
  j["dependencies"] = report.dependencies;
  j["stuck_states"] = report.stuck_states;
  j["cdg_acyclic"] = report.cdg_acyclic;
  j["certified"] = report.certified();
  if (report.escape.checked) {
    obs::Json e = obs::Json::object();
    e["complete"] = report.escape.complete;
    e["acyclic"] = report.escape.acyclic;
    e["escape_channels"] = report.escape.escape_channels;
    e["extended_dependencies"] = report.escape.extended_dependencies;
    e["certified"] = report.escape.certified();
    obs::Json failures = obs::Json::array();
    for (const std::string& f : report.escape.failures) failures.push_back(f);
    e["failures"] = std::move(failures);
    j["escape"] = std::move(e);
  } else {
    j["escape"] = obs::Json();
  }
  j["witness"] = report.witness ? witness_json(*report.witness, topology) : obs::Json();
  return j;
}

}  // namespace mcnet::analysis
