// Static per-router invariant checks (the non-deadlock half of the
// analyzer): every enumerated instance's route is checked for
//
//  * reachability totality -- the algorithm produces a route for every
//    (source, destination-set) instance instead of throwing;
//  * structural soundness  -- hops are channels, every destination is
//    delivered (core verify_route);
//  * label-order monotonicity -- high-subnetwork paths visit strictly
//    ascending labels, low-subnetwork paths strictly descending (which
//    also confines each path to its own subnetwork's channels);
//  * quadrant-subnetwork membership -- double-channel X-first trees only
//    hop in their quadrant's two directions;
//  * channel capacity -- no worm acquires the same virtual channel twice;
//  * shortest-path unicast legs -- singleton destinations are delivered in
//    at least distance(src, dst) hops, and exactly that many when the
//    algorithm claims shortest unicast routing (dual-path, Lemma 6.1).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/mcdg.hpp"
#include "analysis/scenario.hpp"

namespace mcnet::analysis {

/// One concrete invariant violation.
struct InvariantViolation {
  /// Which check failed: "reachability", "structure", "label-monotone",
  /// "quadrant", "capacity", or "shortest".
  std::string kind;
  mcast::MulticastRequest instance;
  std::string detail;
};

/// Result of the invariant sweep of one scenario.
struct InvariantReport {
  std::size_t instances_checked = 0;
  std::size_t violations = 0;
  /// First few violations, for reporting (capped; `violations` is exact).
  std::vector<InvariantViolation> samples;

  [[nodiscard]] bool ok() const { return violations == 0; }
};

/// Check every enumerated instance of `scenario` against the invariants it
/// claims (see Scenario flags).
[[nodiscard]] InvariantReport check_invariants(const Scenario& scenario,
                                               const AnalysisConfig& config = {});

}  // namespace mcnet::analysis
