#include "analysis/relation.hpp"

#include <algorithm>
#include <map>
#include <set>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "analysis/instances.hpp"
#include "cdg/analyzers.hpp"
#include "core/adaptive_path.hpp"
#include "core/dual_path.hpp"
#include "core/multi_path.hpp"
#include "core/routing_function.hpp"

namespace mcnet::analysis {

namespace {

using cdg::ChannelGraph;
using cdg::EdgeTag;
using mcast::MulticastRequest;
using topo::ChannelId;
using topo::NodeId;

// --- worm-state exploration ------------------------------------------------

// Identity of a worm spec, for deduplicating exploration across instances.
using WormKey = std::vector<std::uint32_t>;

WormKey key_of(const WormSpec& spec) {
  WormKey key;
  key.reserve(4 + spec.targets.size());
  key.push_back(spec.channel_class);
  key.push_back(spec.source);
  key.push_back(spec.first_hop ? *spec.first_hop + 1 : 0);
  key.push_back(spec.first_hop_copy);
  key.insert(key.end(), spec.targets.begin(), spec.targets.end());
  return key;
}

// The reachable header-state graph of one worm: states are (remaining
// target index, current node) pairs, transitions are the relation's
// candidate hops labeled with the virtual channel they acquire.
struct WormGraph {
  struct State {
    NodeId node = topo::kInvalidNode;
    std::uint32_t target_index = 0;
  };
  std::vector<State> states;
  std::vector<bool> terminal;
  // Per state: (successor state, virtual channel acquired).
  std::vector<std::vector<std::pair<std::uint32_t, ChannelId>>> next;
  // Deduplicated CDG edges the worm induces: (vc held, vc requested next).
  std::vector<std::pair<ChannelId, ChannelId>> edges;
  std::size_t stuck = 0;
  std::uint32_t initial = 0;
};

class RelationEngine {
 public:
  explicit RelationEngine(const RoutingRelation& relation)
      : rel_(&relation),
        n_(relation.topology->num_nodes()),
        num_vcs_(relation.topology->num_channels() * relation.channel_copies) {}

  /// Pass A: build the tagged CDG over `instances`.  When `report` is
  /// non-null, also gather exploration stats and -- if the relation has an
  /// escape subfunction -- run the per-state escape checks (definedness,
  /// candidate membership, walk termination) and collect the global escape
  /// channel set.
  ChannelGraph build_cdg(const std::vector<MulticastRequest>& instances,
                         RelationReport* report) {
    ChannelGraph graph(num_vcs_);
    std::set<WormKey> seen;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      const EdgeTag tag = static_cast<EdgeTag>(i);
      for (const WormSpec& spec : rel_->prepare(instances[i])) {
        if (spec.targets.empty()) continue;
        WormKey key = key_of(spec);
        WormGraph local;
        const WormGraph& worm = lookup(spec, key, local);
        for (const auto& [from, to] : worm.edges) graph.add_dependency(from, to, tag);
        if (report != nullptr && seen.insert(std::move(key)).second) {
          report->worm_states += worm.states.size();
          report->stuck_states += worm.stuck;
          if (rel_->escape) check_escape(spec, worm, report->escape);
        }
      }
    }
    if (report != nullptr && rel_->escape) {
      report->escape.checked = true;
      report->escape.complete = report->escape.failures.empty();
      report->escape.escape_channels = escape_channels_;
    }
    return graph;
  }

  /// Pass B: close the extended escape dependency graph over every unique
  /// worm, given the escape channel set collected in pass A.  From each
  /// transition acquiring an escape channel a, every escape channel that
  /// can be *requested* after it -- directly or through any chain of
  /// adaptive (non-escape) acquisitions -- contributes an edge a -> c.
  /// Propagation stops at escape acquisitions: the crossed channel starts
  /// its own dependency chain in its own iteration.
  void close_extended_graph(const std::vector<MulticastRequest>& instances,
                            EscapeReport& escape) {
    ChannelGraph ext(num_vcs_);
    std::set<WormKey> done;
    std::vector<std::uint32_t> mark;
    std::vector<std::uint32_t> stack;
    std::uint32_t epoch = 0;
    for (const MulticastRequest& instance : instances) {
      for (const WormSpec& spec : rel_->prepare(instance)) {
        if (spec.targets.empty()) continue;
        WormKey key = key_of(spec);
        if (!done.insert(std::move(key)).second) continue;
        WormGraph local;
        const WormGraph& worm = lookup(spec, key_of(spec), local);
        mark.assign(worm.states.size(), 0);
        epoch = 0;
        for (std::uint32_t s = 0; s < worm.states.size(); ++s) {
          for (const auto& [entry, vc] : worm.next[s]) {
            if (!in_escape_set(vc)) continue;
            ++epoch;
            stack.assign(1, entry);
            mark[entry] = epoch;
            while (!stack.empty()) {
              const std::uint32_t v = stack.back();
              stack.pop_back();
              for (const auto& [succ, vc2] : worm.next[v]) {
                if (in_escape_set(vc2)) {
                  // Self-dependencies are impossible for capacity-sound
                  // relations (a worm never re-requests a held channel).
                  if (vc2 != vc) ext.add_dependency(vc, vc2);
                } else if (mark[succ] != epoch) {
                  mark[succ] = epoch;
                  stack.push_back(succ);
                }
              }
            }
          }
        }
      }
    }
    escape.extended_dependencies = ext.num_dependencies();
    escape.acyclic = ext.acyclic();
  }

 private:
  // Memoize single-target worms (unicast fan-out relations re-prepare them
  // for thousands of instances); multi-target worms are nearly unique per
  // instance, so exploring them transiently avoids an unbounded cache.
  const WormGraph& lookup(const WormSpec& spec, WormKey key, WormGraph& local) {
    if (spec.targets.size() != 1) {
      local = explore(spec);
      return local;
    }
    const auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    return memo_.emplace(std::move(key), explore(spec)).first->second;
  }

  [[nodiscard]] ChannelId vc_of(NodeId from, NodeId to, std::uint8_t copy) const {
    const ChannelId c = rel_->topology->channel(from, to);
    if (c == topo::kInvalidChannel) {
      throw std::logic_error("relation \"" + rel_->name + "\" hops over a non-channel: " +
                             std::to_string(from) + " -> " + std::to_string(to));
    }
    return virtual_channel_id(c, copy, rel_->channel_copies);
  }

  [[nodiscard]] WormGraph explore(const WormSpec& spec) const {
    WormGraph g;
    const std::uint32_t num_targets = static_cast<std::uint32_t>(spec.targets.size());
    const auto normalize = [&](std::uint32_t idx, NodeId node) {
      while (idx < num_targets && node == spec.targets[idx]) ++idx;
      return idx;
    };
    std::unordered_map<std::uint64_t, std::uint32_t> ids;
    const auto state_id = [&](std::uint32_t idx, NodeId node) {
      const std::uint64_t packed = static_cast<std::uint64_t>(idx) * n_ + node;
      const auto [it, inserted] = ids.emplace(packed, static_cast<std::uint32_t>(g.states.size()));
      if (inserted) {
        g.states.push_back({node, idx});
        g.terminal.push_back(idx >= num_targets);
        g.next.emplace_back();
      }
      return it->second;
    };
    g.initial = state_id(normalize(0, spec.source), spec.source);

    std::vector<RelationHop> hops;
    for (std::uint32_t s = 0; s < g.states.size(); ++s) {
      if (g.terminal[s]) continue;
      const NodeId node = g.states[s].node;
      const std::uint32_t idx = g.states[s].target_index;
      if (s == g.initial && spec.first_hop.has_value()) {
        // Injection honours the forced first hop, bypassing the relation.
        hops.assign(1, {*spec.first_hop, spec.first_hop_copy});
      } else {
        rel_->candidates(spec.channel_class, node, spec.targets[idx], hops);
      }
      if (hops.empty()) {
        ++g.stuck;
        continue;
      }
      for (const RelationHop& hop : hops) {
        const ChannelId vc = vc_of(node, hop.to, hop.copy);
        const std::uint32_t succ = state_id(normalize(idx, hop.to), hop.to);
        g.next[s].push_back({succ, vc});
      }
    }

    // CDG edges: a worm entering state s holding vc_in may next request any
    // of s's outgoing channels.
    std::vector<std::vector<ChannelId>> in_vcs(g.states.size());
    for (std::uint32_t s = 0; s < g.states.size(); ++s) {
      for (const auto& [succ, vc] : g.next[s]) in_vcs[succ].push_back(vc);
    }
    for (std::uint32_t s = 0; s < g.states.size(); ++s) {
      auto& ins = in_vcs[s];
      std::sort(ins.begin(), ins.end());
      ins.erase(std::unique(ins.begin(), ins.end()), ins.end());
      for (const ChannelId in : ins) {
        for (const auto& [succ, out] : g.next[s]) {
          if (in != out) g.edges.emplace_back(in, out);
        }
      }
    }
    std::sort(g.edges.begin(), g.edges.end());
    g.edges.erase(std::unique(g.edges.begin(), g.edges.end()), g.edges.end());
    return g;
  }

  // Escape pass 1 over one unique worm: the escape hop must exist and be a
  // relation candidate at every reachable in-network non-terminal state
  // (the initial state holds no channels yet, so a worm blocked at
  // injection cannot sustain a deadlock), and escape-only walks must
  // terminate.  Escape channels are accumulated into the global set.
  void check_escape(const WormSpec& spec, const WormGraph& worm, EscapeReport& escape) {
    constexpr std::size_t kMaxFailures = 8;
    const auto fail = [&](const std::string& message) {
      if (escape.failures.size() < kMaxFailures) escape.failures.push_back(message);
    };
    constexpr std::uint32_t kNoSucc = static_cast<std::uint32_t>(-1);
    std::vector<std::uint32_t> esc_succ(worm.states.size(), kNoSucc);
    for (std::uint32_t s = 0; s < worm.states.size(); ++s) {
      if (worm.terminal[s] || s == worm.initial || worm.next[s].empty()) continue;
      const NodeId node = worm.states[s].node;
      const NodeId target = spec.targets[worm.states[s].target_index];
      const RelationHop hop = rel_->escape(spec.channel_class, node, target);
      if (hop.to == topo::kInvalidNode) {
        fail("escape undefined at node " + std::to_string(node) + " toward node " +
             std::to_string(target));
        continue;
      }
      const ChannelId vc = vc_of(node, hop.to, hop.copy);
      std::uint32_t succ = kNoSucc;
      for (const auto& [next_state, next_vc] : worm.next[s]) {
        if (next_vc == vc) {
          succ = next_state;
          break;
        }
      }
      if (succ == kNoSucc) {
        fail("escape hop " + std::to_string(node) + " -> " + std::to_string(hop.to) +
             " (copy " + std::to_string(hop.copy) + ") is not a relation candidate");
        continue;
      }
      esc_succ[s] = succ;
      add_escape_channel(vc);
    }
    // Escape-only walks form a functional graph over states; a revisit
    // means the escape subfunction alone cannot drain the worm.
    std::vector<std::uint8_t> color(worm.states.size(), 0);  // 0 new, 1 active, 2 done
    for (std::uint32_t s = 0; s < worm.states.size(); ++s) {
      std::uint32_t v = s;
      std::vector<std::uint32_t> trail;
      while (v != kNoSucc && color[v] == 0) {
        color[v] = 1;
        trail.push_back(v);
        v = esc_succ[v];
      }
      if (v != kNoSucc && color[v] == 1) {
        fail("escape walk does not terminate from node " +
             std::to_string(worm.states[v].node));
      }
      for (const std::uint32_t t : trail) color[t] = 2;
    }
  }

  void add_escape_channel(ChannelId vc) {
    if (escape_set_.empty()) escape_set_.assign(num_vcs_, false);
    if (!escape_set_[vc]) {
      escape_set_[vc] = true;
      ++escape_channels_;
    }
  }
  [[nodiscard]] bool in_escape_set(ChannelId vc) const {
    return !escape_set_.empty() && escape_set_[vc];
  }

  const RoutingRelation* rel_;
  std::uint32_t n_;
  std::uint32_t num_vcs_;
  std::map<WormKey, WormGraph> memo_;
  std::vector<bool> escape_set_;
  std::size_t escape_channels_ = 0;
};

// --- witness construction --------------------------------------------------

DeadlockWitness relation_witness(const RoutingRelation& rel,
                                 std::vector<MulticastRequest> instances,
                                 const TaggedCycle& cycle) {
  DeadlockWitness witness;
  witness.instances = std::move(instances);
  witness.cycle.reserve(cycle.vcs.size());
  for (const ChannelId vc : cycle.vcs) {
    witness.cycle.push_back({vc / rel.channel_copies,
                             static_cast<std::uint8_t>(vc % rel.channel_copies)});
  }
  witness.edge_instance.assign(cycle.edge_instance.begin(), cycle.edge_instance.end());
  // Adaptive relations fix no single route per worm, so no hold-state
  // reconstruction exists; relation witnesses stay over-approximate.
  witness.realizable = false;
  return witness;
}

DeadlockWitness shrink_relation_witness(const RoutingRelation& rel,
                                        std::vector<MulticastRequest> working) {
  // Phase 1: drop whole instances while the subset still cycles.
  for (std::size_t i = 0; i < working.size() && working.size() > 2;) {
    std::vector<MulticastRequest> trial = working;
    trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
    if (relation_subset_deadlocks(rel, trial)) {
      working = std::move(trial);
    } else {
      ++i;
    }
  }
  // Phase 2: delta-debug destination sets to a fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < working.size(); ++i) {
      for (std::size_t d = 0; d < working[i].destinations.size();) {
        if (working[i].destinations.size() <= 1) break;
        std::vector<MulticastRequest> trial = working;
        trial[i].destinations.erase(trial[i].destinations.begin() +
                                    static_cast<std::ptrdiff_t>(d));
        if (relation_subset_deadlocks(rel, trial)) {
          working = std::move(trial);
          changed = true;
        } else {
          ++d;
        }
      }
    }
  }
  RelationEngine engine(rel);
  const ChannelGraph graph = engine.build_cdg(working, nullptr);
  const auto cycle = find_multi_instance_cycle(graph);
  if (!cycle) {
    // Cannot happen (shrinking only keeps cycling subsets); stay safe.
    DeadlockWitness witness;
    witness.instances = std::move(working);
    return witness;
  }
  return relation_witness(rel, std::move(working), *cycle);
}

}  // namespace

bool relation_subset_deadlocks(const RoutingRelation& relation,
                               const std::vector<MulticastRequest>& instances) {
  RelationEngine engine(relation);
  const ChannelGraph graph = engine.build_cdg(instances, nullptr);
  return find_multi_instance_cycle(graph).has_value();
}

RelationReport analyze_relation(const RoutingRelation& relation, const AnalysisConfig& config) {
  const std::vector<MulticastRequest> instances =
      enumerate_instances(*relation.topology, config.max_set_size, config.max_instances);

  RelationReport report;
  report.instances_analyzed = instances.size();
  RelationEngine engine(relation);
  const ChannelGraph graph = engine.build_cdg(instances, &report);
  report.virtual_channels = graph.num_channels();
  report.dependencies = graph.num_dependencies();
  report.cdg_acyclic = graph.acyclic();
  if (relation.escape && report.escape.complete) {
    engine.close_extended_graph(instances, report.escape);
  }
  if (report.certified()) return report;

  const auto cycle = find_multi_instance_cycle(graph);
  if (!cycle) return report;
  // Seed the witness with the instances the cycle blames, remap the edge
  // assignment onto the seed, then shrink.
  std::vector<EdgeTag> distinct = cycle->edge_instance;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  std::vector<MulticastRequest> seed;
  seed.reserve(distinct.size());
  for (const EdgeTag t : distinct) seed.push_back(instances[t]);
  TaggedCycle remapped = *cycle;
  for (EdgeTag& t : remapped.edge_instance) {
    const auto it = std::lower_bound(distinct.begin(), distinct.end(), t);
    t = static_cast<EdgeTag>(it - distinct.begin());
  }
  if (config.shrink && relation_subset_deadlocks(relation, seed)) {
    report.witness = shrink_relation_witness(relation, std::move(seed));
  } else {
    report.witness = relation_witness(relation, std::move(seed), remapped);
  }
  return report;
}

// --- the shipped relations -------------------------------------------------

namespace {

std::vector<WormSpec> dual_path_worms(const ham::Labeling& labeling,
                                      const MulticastRequest& request) {
  const mcast::DualPathSplit split = mcast::dual_path_prepare(labeling, request);
  std::vector<WormSpec> worms;
  if (!split.high.empty()) {
    worms.push_back({mcast::kHighChannelClass, request.source, std::nullopt, 0, split.high});
  }
  if (!split.low.empty()) {
    worms.push_back({mcast::kLowChannelClass, request.source, std::nullopt, 0, split.low});
  }
  return worms;
}

std::vector<WormSpec> unicast_fanout_worms(const MulticastRequest& request) {
  std::vector<WormSpec> worms;
  worms.reserve(request.destinations.size());
  for (const NodeId d : request.destinations) {
    if (d == request.source) continue;
    worms.push_back({0, request.source, std::nullopt, 0, {d}});
  }
  return worms;
}

void minimal_candidates(const topo::Topology& topology, NodeId cur, NodeId target,
                        std::uint8_t copy, std::vector<RelationHop>& out) {
  const std::uint32_t dist = topology.distance(cur, target);
  for (const NodeId p : topology.neighbors(cur)) {
    if (topology.distance(p, target) < dist) out.push_back({p, copy});
  }
}

cdg::RoutingFunction dimension_order_escape(const Fixture& fixture) {
  if (fixture.mesh2d != nullptr) return cdg::xfirst_routing(*fixture.mesh2d);
  if (fixture.cube != nullptr) return cdg::ecube_routing(*fixture.cube);
  if (fixture.mesh3d != nullptr) return cdg::zfirst_routing(*fixture.mesh3d);
  if (fixture.kary != nullptr) return cdg::dimension_order_routing(*fixture.kary);
  throw std::invalid_argument("no dimension-order escape routing on " +
                              fixture.topology->name());
}

}  // namespace

std::vector<std::string> verifiable_relations(const Fixture& fixture) {
  if (fixture.labeling == nullptr) return {"min-adaptive", "min-adaptive-escape"};
  return {"adaptive-dual-path", "dual-path",    "multi-path",
          "fixed-path",         "min-adaptive", "min-adaptive-escape"};
}

RoutingRelation make_relation(const Fixture& fixture, const std::string& name) {
  RoutingRelation rel;
  rel.name = name;
  rel.topology = fixture.topology.get();
  const topo::Topology* topology = fixture.topology.get();
  const ham::Labeling* labeling = fixture.labeling.get();
  const auto require_labeling = [&] {
    if (labeling == nullptr) {
      throw std::invalid_argument("relation \"" + name + "\" needs a Hamiltonian labeling on " +
                                  fixture.topology->name());
    }
  };

  if (name == "adaptive-dual-path") {
    require_labeling();
    rel.prepare = [labeling](const MulticastRequest& r) { return dual_path_worms(*labeling, r); };
    rel.candidates = [topology, labeling](std::uint8_t, NodeId cur, NodeId target,
                                          std::vector<RelationHop>& out) {
      out.clear();
      for (const NodeId p : mcast::monotone_candidates(*topology, *labeling, cur, target)) {
        out.push_back({p, 0});
      }
    };
    const mcast::LabelRouter router(*topology, *labeling);
    rel.escape = [router](std::uint8_t, NodeId cur, NodeId target) -> RelationHop {
      return {router.next_hop(cur, target), 0};
    };
    return rel;
  }

  if (name == "dual-path" || name == "multi-path") {
    require_labeling();
    if (name == "dual-path") {
      rel.prepare = [labeling](const MulticastRequest& r) {
        return dual_path_worms(*labeling, r);
      };
    } else if (fixture.mesh2d != nullptr) {
      const topo::Mesh2D* mesh = fixture.mesh2d;
      const auto* mlab = static_cast<const ham::MeshBoustrophedonLabeling*>(labeling);
      rel.prepare = [mesh, mlab](const MulticastRequest& r) {
        std::vector<WormSpec> worms;
        for (mcast::MultiPathWorm& w : mcast::multi_path_prepare(*mesh, *mlab, r)) {
          worms.push_back({w.channel_class, r.source, w.first_hop, 0, std::move(w.targets)});
        }
        return worms;
      };
    } else {
      rel.prepare = [topology, labeling](const MulticastRequest& r) {
        std::vector<WormSpec> worms;
        for (mcast::MultiPathWorm& w : mcast::multi_path_prepare(*topology, *labeling, r)) {
          worms.push_back({w.channel_class, r.source, w.first_hop, 0, std::move(w.targets)});
        }
        return worms;
      };
    }
    const mcast::LabelRouter router(*topology, *labeling);
    rel.candidates = [router](std::uint8_t, NodeId cur, NodeId target,
                              std::vector<RelationHop>& out) {
      out.clear();
      const NodeId next = router.next_hop(cur, target);
      if (next != topo::kInvalidNode) out.push_back({next, 0});
    };
    return rel;
  }

  if (name == "fixed-path") {
    require_labeling();
    rel.prepare = [labeling](const MulticastRequest& r) { return dual_path_worms(*labeling, r); };
    rel.candidates = [labeling](std::uint8_t, NodeId cur, NodeId target,
                                std::vector<RelationHop>& out) {
      out.clear();
      const std::uint32_t lc = labeling->label(cur);
      const std::uint32_t lt = labeling->label(target);
      out.push_back({labeling->node_at(lt > lc ? lc + 1 : lc - 1), 0});
    };
    return rel;
  }

  if (name == "min-adaptive") {
    // Planted negative control: fully adaptive minimal routing with no
    // escape -- the classic turn/ring cycles deadlock every CI topology.
    rel.claimed_deadlock_free = false;
    rel.prepare = [](const MulticastRequest& r) { return unicast_fanout_worms(r); };
    rel.candidates = [topology](std::uint8_t, NodeId cur, NodeId target,
                                std::vector<RelationHop>& out) {
      out.clear();
      minimal_candidates(*topology, cur, target, 0, out);
    };
    return rel;
  }

  if (name == "min-adaptive-escape") {
    // Minimal adaptive routing on VC copy 1 with a dimension-order escape
    // pinned to copy 0: Duato-certifiable on the mesh-like topologies; on
    // wraparound rings the dimension-order escape itself cycles (the
    // classic torus counterexample), so the control flips to DEADLOCK.
    rel.channel_copies = 2;
    rel.claimed_deadlock_free = fixture.kary == nullptr || !fixture.kary->wraps();
    const cdg::RoutingFunction esc = dimension_order_escape(fixture);
    rel.prepare = [](const MulticastRequest& r) { return unicast_fanout_worms(r); };
    rel.candidates = [topology, esc](std::uint8_t, NodeId cur, NodeId target,
                                     std::vector<RelationHop>& out) {
      out.clear();
      const NodeId e = esc(cur, target);
      if (e != topo::kInvalidNode) out.push_back({e, 0});
      minimal_candidates(*topology, cur, target, 1, out);
    };
    rel.escape = [esc](std::uint8_t, NodeId cur, NodeId target) -> RelationHop {
      return {esc(cur, target), 0};
    };
    return rel;
  }

  throw std::invalid_argument("unknown relation \"" + name + "\"");
}

}  // namespace mcnet::analysis
