#include "analysis/mcdg.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "analysis/instances.hpp"

namespace mcnet::analysis {

namespace {

using cdg::ChannelGraph;
using cdg::EdgeTag;
using mcast::MulticastRequest;
using mcast::MulticastRoute;
using mcast::PathRoute;
using mcast::TreeRoute;
using topo::ChannelId;
using topo::NodeId;

// Small dynamic bitset over tree-link indices.
class LinkSet {
 public:
  LinkSet() = default;
  explicit LinkSet(std::size_t bits) : words_((bits + 63) / 64, 0) {}
  void set(std::size_t i) { words_[i / 64] |= std::uint64_t{1} << (i % 64); }
  [[nodiscard]] bool test(std::size_t i) const {
    return (words_[i / 64] >> (i % 64)) & 1u;
  }
  void merge(const LinkSet& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

 private:
  std::vector<std::uint64_t> words_;
};

std::uint8_t copy_for(const Scenario& s, std::uint8_t cls, NodeId from, NodeId to) {
  return s.copy_of ? s.copy_of(cls, from, to) : 0;
}

ChannelId vc_of_hop(const Scenario& s, std::uint8_t cls, NodeId from, NodeId to) {
  const ChannelId c = s.topology->channel(from, to);
  if (c == topo::kInvalidChannel) {
    throw std::logic_error("route uses a non-channel hop");
  }
  return virtual_channel_id(c, copy_for(s, cls, from, to), s.channel_copies);
}

// Virtual channel of every tree link.
std::vector<ChannelId> tree_link_vcs(const Scenario& s, const TreeRoute& tree) {
  std::vector<ChannelId> vcs;
  vcs.reserve(tree.links.size());
  for (const TreeRoute::Link& l : tree.links) {
    vcs.push_back(vc_of_hop(s, tree.channel_class, l.from, l.to));
  }
  return vcs;
}

// Acquisition-requirement closure of every link of a lock-step tree worm:
// requesting link i requires its parent and every earlier sibling of the
// same fork to be acquired already (branches are created -- and their first
// channels requested -- in algorithm order), transitively.  Links are
// stored in creation order, so parents and earlier siblings always have
// smaller indices.
std::vector<LinkSet> link_closures(const TreeRoute& tree) {
  const std::size_t n = tree.links.size();
  std::vector<LinkSet> closure(n, LinkSet(n));
  for (std::size_t i = 0; i < n; ++i) {
    const std::int32_t parent = tree.links[i].parent;
    if (parent >= 0) {
      closure[i].merge(closure[static_cast<std::size_t>(parent)]);
      closure[i].set(static_cast<std::size_t>(parent));
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (tree.links[j].parent == parent) closure[i].set(j);
    }
  }
  return closure;
}

void add_path_dependencies(const Scenario& s, const PathRoute& path, ChannelGraph& g,
                           EdgeTag tag) {
  ChannelId prev = topo::kInvalidChannel;
  for (std::size_t i = 0; i + 1 < path.nodes.size(); ++i) {
    const ChannelId vc = vc_of_hop(s, path.channel_class, path.nodes[i], path.nodes[i + 1]);
    if (prev != topo::kInvalidChannel && prev != vc) g.add_dependency(prev, vc, tag);
    prev = vc;
  }
}

void add_tree_dependencies(const Scenario& s, const TreeRoute& tree, ChannelGraph& g,
                           EdgeTag tag) {
  const std::vector<ChannelId> vcs = tree_link_vcs(s, tree);
  if (s.tree_semantics == TreeSemantics::kIndependentBranches) {
    for (std::size_t i = 0; i < tree.links.size(); ++i) {
      const std::int32_t parent = tree.links[i].parent;
      if (parent >= 0 && vcs[static_cast<std::size_t>(parent)] != vcs[i]) {
        g.add_dependency(vcs[static_cast<std::size_t>(parent)], vcs[i], tag);
      }
    }
    return;
  }
  // Lock-step: a blocked branch stalls the whole worm, so any held channel
  // h can wait on any channel r whose acquisition does not require h --
  // i.e. every ordered pair (h, r) with r outside h's requirement closure.
  const std::vector<LinkSet> closure = link_closures(tree);
  for (std::size_t h = 0; h < tree.links.size(); ++h) {
    for (std::size_t r = 0; r < tree.links.size(); ++r) {
      if (h == r || vcs[h] == vcs[r] || closure[h].test(r)) continue;
      g.add_dependency(vcs[h], vcs[r], tag);
    }
  }
}

// --- multi-instance cycle search -------------------------------------------

struct FoundCycle {
  std::vector<ChannelId> vcs;                   // cycle nodes in order
  std::vector<std::vector<EdgeTag>> edge_tags;  // tags of edge i: vcs[i] -> vcs[i+1]
};

std::vector<std::vector<EdgeTag>> collect_edge_tags(const ChannelGraph& g,
                                                    const std::vector<ChannelId>& cycle) {
  std::vector<std::vector<EdgeTag>> tags;
  tags.reserve(cycle.size());
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const auto span = g.edge_tags(cycle[i], cycle[(i + 1) % cycle.size()]);
    tags.emplace_back(span.begin(), span.end());
  }
  return tags;
}

// A cycle is a deadlock candidate only if its edges can be attributed to at
// least two distinct instances: a single message cannot circularly wait on
// itself, and two concurrent copies of the *same* instance cannot either
// (their acquisition closures both contain the first channel out of the
// shared source, so their hold sets can never coexist).
bool multi_instance(const std::vector<std::vector<EdgeTag>>& edge_tags) {
  EdgeTag first = cdg::kNoEdgeTag;
  for (const auto& tags : edge_tags) {
    if (tags.empty()) return false;  // unattributable edge
    for (const EdgeTag t : tags) {
      if (first == cdg::kNoEdgeTag) {
        first = t;
      } else if (t != first) {
        return true;
      }
    }
  }
  return false;
}

std::optional<FoundCycle> search_multi_instance_cycle(const ChannelGraph& g) {
  std::vector<EdgeTag> exhausted;
  for (int rounds = 0; rounds < 256; ++rounds) {
    const auto usable = [&](ChannelId from, ChannelId to) {
      if (exhausted.empty()) return true;
      const auto tags = g.edge_tags(from, to);
      return std::any_of(tags.begin(), tags.end(), [&](EdgeTag t) {
        return std::find(exhausted.begin(), exhausted.end(), t) == exhausted.end();
      });
    };
    const auto cycle = g.find_cycle_if(usable);
    if (!cycle) return std::nullopt;
    FoundCycle found{*cycle, collect_edge_tags(g, *cycle)};
    if (multi_instance(found.edge_tags)) return found;
    // Single-instance (or unattributable) cycle: retire its sole tag and
    // search for a structurally different one.
    EdgeTag sole = cdg::kNoEdgeTag;
    for (const auto& tags : found.edge_tags) {
      if (!tags.empty()) sole = tags.front();
    }
    if (sole == cdg::kNoEdgeTag) return std::nullopt;
    exhausted.push_back(sole);
  }
  return std::nullopt;
}

// Assign one instance to each cycle edge, preferring to alternate with the
// previous edge's instance so the assignment stays attributable to the
// smallest concurrent set while still using >= 2 distinct instances.
std::vector<EdgeTag> assign_edges(const FoundCycle& cycle) {
  std::vector<EdgeTag> assignment(cycle.edge_tags.size(), cdg::kNoEdgeTag);
  for (std::size_t i = 0; i < cycle.edge_tags.size(); ++i) {
    const auto& tags = cycle.edge_tags[i];
    assignment[i] = tags.front();
    if (i > 0) {
      for (const EdgeTag t : tags) {
        if (t != assignment[i - 1]) {
          assignment[i] = t;
          break;
        }
      }
    }
  }
  // Ensure at least two distinct instances overall.
  const bool uniform = std::all_of(assignment.begin(), assignment.end(),
                                   [&](EdgeTag t) { return t == assignment.front(); });
  if (uniform) {
    for (std::size_t i = 0; i < cycle.edge_tags.size(); ++i) {
      for (const EdgeTag t : cycle.edge_tags[i]) {
        if (t != assignment.front()) {
          assignment[i] = t;
          return assignment;
        }
      }
    }
  }
  return assignment;
}

// --- realizability ---------------------------------------------------------

// Per-instance link table of a route's trees: vc -> (tree, link) lookup
// plus requirement closures, for reconstructing concrete hold states.
struct InstanceLinks {
  MulticastRoute route;
  std::vector<std::vector<ChannelId>> vcs;     // per tree
  std::vector<std::vector<LinkSet>> closures;  // per tree

  [[nodiscard]] std::optional<std::pair<std::size_t, std::size_t>> find(ChannelId vc) const {
    for (std::size_t t = 0; t < vcs.size(); ++t) {
      for (std::size_t l = 0; l < vcs[t].size(); ++l) {
        if (vcs[t][l] == vc) return std::make_pair(t, l);
      }
    }
    return std::nullopt;
  }
};

InstanceLinks build_instance_links(const Scenario& s, const MulticastRequest& request) {
  InstanceLinks il;
  il.route = s.route(request);
  for (const TreeRoute& tree : il.route.trees) {
    il.vcs.push_back(tree_link_vcs(s, tree));
    il.closures.push_back(link_closures(tree));
  }
  return il;
}

// Check that the assigned cycle is a realizable circular wait: each
// participating instance admits a hold state (closed under its acquisition
// requirements) containing its held cycle channels and the prerequisites of
// its requested ones but not the requests themselves, and the hold states
// of distinct instances are channel-disjoint.
bool check_realizable(const Scenario& s, const std::vector<MulticastRequest>& instances,
                      const std::vector<ChannelId>& cycle,
                      const std::vector<std::uint32_t>& edge_instance) {
  const std::size_t k = cycle.size();
  // Contract runs of consecutive edges with the same instance into
  // message-level (held, requested) pairs.
  struct Claim {
    std::uint32_t instance = 0;
    std::vector<ChannelId> held;
    std::vector<ChannelId> requested;
  };
  std::vector<Claim> claims;
  const auto claim_for = [&claims](std::uint32_t m) -> Claim& {
    for (Claim& c : claims) {
      if (c.instance == m) return c;
    }
    claims.push_back({m, {}, {}});
    return claims.back();
  };
  std::size_t segments = 0;
  for (std::size_t i = 0; i < k; ++i) {
    const std::uint32_t m = edge_instance[i];
    claim_for(m).held.push_back(cycle[i]);
    if (edge_instance[(i + 1) % k] != m) {
      claim_for(m).requested.push_back(cycle[(i + 1) % k]);
      ++segments;
    }
  }
  if (segments < 2 || claims.size() < 2) return false;

  std::vector<std::vector<ChannelId>> hold_sets;
  for (const Claim& claim : claims) {
    if (claim.requested.empty()) return false;  // holds but never waits: not a cycle
    InstanceLinks il;
    try {
      il = build_instance_links(s, instances[claim.instance]);
    } catch (const std::exception&) {
      return false;
    }
    // Held links: the channel itself plus everything its acquisition needed.
    std::vector<LinkSet> held_per_tree;
    held_per_tree.reserve(il.vcs.size());
    for (const auto& tree_vcs : il.vcs) held_per_tree.emplace_back(tree_vcs.size());
    const auto absorb = [&](ChannelId vc, bool include_self) -> bool {
      const auto where = il.find(vc);
      if (!where) return false;
      const auto [t, l] = *where;
      held_per_tree[t].merge(il.closures[t][l]);
      if (include_self) held_per_tree[t].set(l);
      return true;
    };
    for (const ChannelId vc : claim.held) {
      if (!absorb(vc, /*include_self=*/true)) return false;
    }
    for (const ChannelId vc : claim.requested) {
      if (!absorb(vc, /*include_self=*/false)) return false;
    }
    // A requested channel must not already be forced into the hold state.
    for (const ChannelId vc : claim.requested) {
      const auto where = il.find(vc);
      if (!where || held_per_tree[where->first].test(where->second)) return false;
    }
    std::vector<ChannelId> holds;
    for (std::size_t t = 0; t < il.vcs.size(); ++t) {
      for (std::size_t l = 0; l < il.vcs[t].size(); ++l) {
        if (held_per_tree[t].test(l)) holds.push_back(il.vcs[t][l]);
      }
    }
    std::sort(holds.begin(), holds.end());
    hold_sets.push_back(std::move(holds));
  }
  // Hold states of distinct messages must be channel-disjoint.
  for (std::size_t a = 0; a < hold_sets.size(); ++a) {
    for (std::size_t b = a + 1; b < hold_sets.size(); ++b) {
      std::vector<ChannelId> common;
      std::set_intersection(hold_sets[a].begin(), hold_sets[a].end(), hold_sets[b].begin(),
                            hold_sets[b].end(), std::back_inserter(common));
      if (!common.empty()) return false;
    }
  }
  return true;
}

// --- deadlock search -------------------------------------------------------

struct DeadlockCandidate {
  std::vector<ChannelId> vcs;       // cycle, in order
  std::vector<EdgeTag> assignment;  // instance inducing each edge
  bool realizable = false;
};

// Realizable deadlocks are searched for first among 2-cycles (the shape the
// paper's double-multicast counterexamples take): for every mutually
// dependent channel pair, try all cross-instance tag assignments until one
// passes the hold-state disjointness check.  Falling back to the general
// multi-instance cycle search keeps the analysis sound (any cycle is still
// reported) but such witnesses stay marked over-approximate.
std::optional<DeadlockCandidate> find_deadlock(const Scenario& s,
                                               const std::vector<MulticastRequest>& instances,
                                               const ChannelGraph& g,
                                               bool require_realizable) {
  for (ChannelId c = 0; c < g.num_channels(); ++c) {
    for (const ChannelId d : g.successors(c)) {
      if (d <= c) continue;
      const auto back = g.edge_tags(d, c);
      if (back.empty()) continue;
      const auto fwd = g.edge_tags(c, d);
      for (const EdgeTag ta : fwd) {
        for (const EdgeTag tb : back) {
          if (ta == tb) continue;
          const std::vector<ChannelId> cycle{c, d};
          const std::vector<std::uint32_t> assignment{ta, tb};
          if (check_realizable(s, instances, cycle, assignment)) {
            return DeadlockCandidate{cycle, {ta, tb}, true};
          }
        }
      }
    }
  }
  const auto found = search_multi_instance_cycle(g);
  if (!found) return std::nullopt;
  DeadlockCandidate cand;
  cand.vcs = found->vcs;
  cand.assignment = assign_edges(*found);
  cand.realizable = check_realizable(s, instances, cand.vcs, cand.assignment);
  if (require_realizable && !cand.realizable) return std::nullopt;
  return cand;
}

ChannelGraph build_cdg_over(const Scenario& s, const std::vector<MulticastRequest>& instances) {
  ChannelGraph g(s.topology->num_channels() * s.channel_copies);
  for (std::size_t i = 0; i < instances.size(); ++i) {
    MulticastRoute route;
    try {
      route = s.route(instances[i]);
    } catch (const std::exception&) {
      continue;  // unroutable instances are reported by the invariant pass
    }
    add_route_dependencies(s, route, g, static_cast<EdgeTag>(i));
  }
  return g;
}

DeadlockWitness make_witness(const Scenario& s, std::vector<MulticastRequest> instances,
                             const DeadlockCandidate& cand) {
  DeadlockWitness witness;
  witness.instances = std::move(instances);
  witness.cycle.reserve(cand.vcs.size());
  for (const ChannelId vc : cand.vcs) {
    witness.cycle.push_back(
        {vc / s.channel_copies, static_cast<std::uint8_t>(vc % s.channel_copies)});
  }
  witness.edge_instance.assign(cand.assignment.begin(), cand.assignment.end());
  witness.realizable = cand.realizable;
  return witness;
}

DeadlockWitness shrink_witness(const Scenario& s, std::vector<MulticastRequest> working,
                               bool require_realizable) {
  // Phase 1: drop whole instances while the reduced set still deadlocks.
  for (std::size_t i = 0; i < working.size() && working.size() > 2;) {
    std::vector<MulticastRequest> trial = working;
    trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(i));
    if (subset_deadlocks(s, trial, require_realizable)) {
      working = std::move(trial);
    } else {
      ++i;
    }
  }
  // Phase 2: delta-debug destination sets, one destination at a time, to a
  // fixpoint.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < working.size(); ++i) {
      for (std::size_t d = 0; d < working[i].destinations.size();) {
        if (working[i].destinations.size() <= 1) break;
        std::vector<MulticastRequest> trial = working;
        trial[i].destinations.erase(trial[i].destinations.begin() +
                                    static_cast<std::ptrdiff_t>(d));
        if (subset_deadlocks(s, trial, require_realizable)) {
          working = std::move(trial);
          changed = true;
        } else {
          ++d;
        }
      }
    }
  }

  const auto cand = find_deadlock(s, working, build_cdg_over(s, working), require_realizable);
  if (!cand) {
    // Cannot happen (shrinking only keeps deadlocking subsets); stay safe.
    DeadlockWitness witness;
    witness.instances = std::move(working);
    return witness;
  }
  return make_witness(s, std::move(working), *cand);
}

}  // namespace

std::optional<TaggedCycle> find_multi_instance_cycle(const ChannelGraph& graph) {
  const auto found = search_multi_instance_cycle(graph);
  if (!found) return std::nullopt;
  return TaggedCycle{found->vcs, assign_edges(*found)};
}

bool subset_deadlocks(const Scenario& scenario, const std::vector<MulticastRequest>& instances,
                      bool require_realizable) {
  return find_deadlock(scenario, instances, build_cdg_over(scenario, instances),
                       require_realizable)
      .has_value();
}

void add_route_dependencies(const Scenario& scenario, const MulticastRoute& route,
                            ChannelGraph& graph, EdgeTag tag) {
  for (const PathRoute& path : route.paths) {
    add_path_dependencies(scenario, path, graph, tag);
  }
  for (const TreeRoute& tree : route.trees) {
    add_tree_dependencies(scenario, tree, graph, tag);
  }
}

ChannelGraph build_multicast_cdg(const Scenario& scenario,
                                 const std::vector<MulticastRequest>& instances) {
  return build_cdg_over(scenario, instances);
}

DeadlockReport analyze_deadlock(const Scenario& scenario, const AnalysisConfig& config) {
  const std::vector<MulticastRequest> instances =
      enumerate_instances(*scenario.topology, config.max_set_size, config.max_instances);
  const ChannelGraph g = build_cdg_over(scenario, instances);

  DeadlockReport report;
  report.instances_analyzed = instances.size();
  report.virtual_channels = g.num_channels();
  report.dependencies = g.num_dependencies();

  const auto cand = find_deadlock(scenario, instances, g, /*require_realizable=*/false);
  if (!cand) return report;

  // Seed the witness with the instances the assignment blames, remap the
  // assignment onto the seed, then shrink.
  std::vector<EdgeTag> distinct = cand->assignment;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()), distinct.end());
  std::vector<MulticastRequest> seed;
  seed.reserve(distinct.size());
  for (const EdgeTag t : distinct) seed.push_back(instances[t]);
  DeadlockCandidate remapped = *cand;
  for (EdgeTag& t : remapped.assignment) {
    const auto it = std::lower_bound(distinct.begin(), distinct.end(), t);
    t = static_cast<EdgeTag>(it - distinct.begin());
  }

  if (config.shrink && subset_deadlocks(scenario, seed, cand->realizable)) {
    report.witness = shrink_witness(scenario, std::move(seed), cand->realizable);
  } else {
    report.witness = make_witness(scenario, std::move(seed), remapped);
  }
  return report;
}

std::string DeadlockWitness::format(const topo::Topology& topology) const {
  std::ostringstream out;
  out << "deadlock witness: " << instances.size() << " concurrent multicast(s)\n";
  for (std::size_t i = 0; i < instances.size(); ++i) {
    out << "  M" << i << ": node " << instances[i].source << " -> {";
    for (std::size_t d = 0; d < instances[i].destinations.size(); ++d) {
      out << (d ? ", " : "") << instances[i].destinations[d];
    }
    out << "}\n";
  }
  out << "  dependency cycle (" << cycle.size() << " channels):\n";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const topo::ChannelEnds ends = topology.channel_ends(cycle[i].channel);
    out << "    c" << cycle[i].channel << " (" << ends.from << " -> " << ends.to << ", copy "
        << static_cast<unsigned>(cycle[i].copy) << ")";
    if (i < edge_instance.size()) {
      out << "  held by M" << edge_instance[i] << " waiting on the next channel";
    }
    out << "\n";
  }
  out << "  realizability: "
      << (realizable ? "confirmed (disjoint hold states found)"
                     : "not confirmed (over-approximate cycle)")
      << "\n";
  return out.str();
}

}  // namespace mcnet::analysis
