// Machine-readable analyzer reports: obs::Json builders for the deadlock,
// invariant, and relation analyses, shared by `mcnet_verify --json` and the
// round-trip tests.  The document schema is tagged "mcnet-verify-v1" so CI
// can diff verdicts across commits.
#pragma once

#include "analysis/invariants.hpp"
#include "analysis/mcdg.hpp"
#include "analysis/relation.hpp"
#include "obs/json.hpp"
#include "topology/topology.hpp"

namespace mcnet::analysis {

/// Schema tag stamped into the top-level mcnet_verify --json document.
inline constexpr const char* kReportSchema = "mcnet-verify-v1";

/// {instances: [{source, destinations}], cycle: [{channel, from, to,
///  copy}], edge_instance, realizable}
[[nodiscard]] obs::Json witness_json(const DeadlockWitness& witness,
                                     const topo::Topology& topology);

/// {instances_analyzed, virtual_channels, dependencies, deadlock_free,
///  witness: null | witness_json}
[[nodiscard]] obs::Json deadlock_json(const DeadlockReport& report,
                                      const topo::Topology& topology);

/// {instances_checked, violations, ok, samples: [{kind, source,
///  destinations, detail}]}
[[nodiscard]] obs::Json invariants_json(const InvariantReport& report);

/// {instances_analyzed, worm_states, virtual_channels, dependencies,
///  stuck_states, cdg_acyclic, certified, escape: null | {...},
///  witness: null | witness_json}
[[nodiscard]] obs::Json relation_json(const RelationReport& report,
                                      const topo::Topology& topology);

}  // namespace mcnet::analysis
