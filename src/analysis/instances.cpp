#include "analysis/instances.hpp"

#include <algorithm>

namespace mcnet::analysis {

namespace {

using topo::NodeId;

// C(n, s) with saturation (the counts here stay tiny, but be safe).
std::size_t binomial(std::size_t n, std::size_t s) {
  if (s > n) return 0;
  std::size_t r = 1;
  for (std::size_t i = 1; i <= s; ++i) {
    const std::size_t num = n - s + i;
    if (r > static_cast<std::size_t>(-1) / num) return static_cast<std::size_t>(-1);
    r = r * num / i;
  }
  return r;
}

}  // namespace

std::size_t count_instances(std::uint32_t num_nodes, std::uint32_t max_set_size) {
  std::size_t total = 0;
  for (std::uint32_t s = 1; s <= max_set_size; ++s) {
    total += static_cast<std::size_t>(num_nodes) * binomial(num_nodes - 1, s);
  }
  return total;
}

std::vector<mcast::MulticastRequest> enumerate_instances(const topo::Topology& topology,
                                                         std::uint32_t max_set_size,
                                                         std::size_t max_instances) {
  const std::uint32_t n = topology.num_nodes();
  const std::size_t total = count_instances(n, max_set_size);
  const std::size_t stride =
      max_instances == 0 || total <= max_instances ? 1 : (total + max_instances - 1) / max_instances;

  std::vector<mcast::MulticastRequest> out;
  out.reserve(std::min(total, total / stride + 1));
  std::size_t index = 0;

  std::vector<NodeId> others(n - 1);
  for (NodeId src = 0; src < n; ++src) {
    std::size_t o = 0;
    for (NodeId v = 0; v < n; ++v) {
      if (v != src) others[o++] = v;
    }
    for (std::uint32_t s = 1; s <= max_set_size && s <= n - 1; ++s) {
      // Lexicographic combinations of `others` taken s at a time.
      std::vector<std::uint32_t> pick(s);
      for (std::uint32_t i = 0; i < s; ++i) pick[i] = i;
      while (true) {
        if (index++ % stride == 0) {
          mcast::MulticastRequest req;
          req.source = src;
          req.destinations.reserve(s);
          for (const std::uint32_t i : pick) req.destinations.push_back(others[i]);
          out.push_back(std::move(req));
        }
        // Advance the combination.
        std::int64_t j = static_cast<std::int64_t>(s) - 1;
        while (j >= 0 && pick[static_cast<std::size_t>(j)] ==
                             n - 1 - s + static_cast<std::uint32_t>(j + 1) - 1) {
          --j;
        }
        if (j < 0) break;
        ++pick[static_cast<std::size_t>(j)];
        for (auto i = static_cast<std::uint32_t>(j) + 1; i < s; ++i) {
          pick[i] = pick[i - 1] + 1;
        }
      }
    }
  }
  return out;
}

}  // namespace mcnet::analysis
