// Store-and-forward packet network with the two buffer-pool disciplines of
// Section 2.3.4:
//
//  * naive: every node owns one shared pool of buffers; packets wait for
//    any free buffer at the next node.  Cyclic buffer dependencies can --
//    and do -- produce buffer deadlock.
//  * structured buffer pool: buffers are partitioned into classes
//    0..C (C = longest route); a packet that has taken h hops occupies a
//    class-h buffer and may only move into a class-(h+1) buffer at the next
//    node.  Buffer classes are partially ordered, so no deadlock is
//    possible (at the cost of buffer utilisation, exactly as the paper
//    discusses).
//
// Packets hold their buffer while waiting for the next-node buffer, then
// for the (one-packet-at-a-time, FCFS) channel; a hop transfer takes
// message_bytes / bandwidth seconds.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "cdg/channel_graph.hpp"
#include "evsim/scheduler.hpp"
#include "topology/topology.hpp"

namespace mcnet::sw {

struct SafParams {
  double packet_time = 6.4e-6;  // L/B per hop (128 bytes at 20 Mbyte/s)
  bool structured = true;       // structured classes vs naive shared pool
  std::uint32_t buffers_per_class = 1;  // structured: per class per node
  std::uint32_t classes = 0;            // structured: 0 -> diameter + 1
  std::uint32_t buffers_per_node = 4;   // naive: shared pool size
};

class SafNetwork {
 public:
  SafNetwork(const topo::Topology& topology, const cdg::RoutingFunction& route,
             const SafParams& params, evsim::Scheduler& sched);

  /// Inject a packet at the current simulated time; it queues for a source
  /// buffer if none is free.  Returns the packet id.
  std::uint32_t inject(topo::NodeId source, topo::NodeId destination);

  /// Called when a packet reaches its destination (latency from inject).
  void set_on_delivered(std::function<void(std::uint32_t, double)> cb) {
    on_delivered_ = std::move(cb);
  }

  [[nodiscard]] std::uint32_t packets_injected() const { return next_packet_; }
  [[nodiscard]] std::uint32_t packets_delivered() const { return delivered_; }
  [[nodiscard]] bool idle() const { return delivered_ == next_packet_; }

  /// True when undelivered packets remain but no event can make progress
  /// (call after the scheduler has drained): buffer deadlock.
  [[nodiscard]] bool stuck() const { return !idle(); }

 private:
  struct Packet {
    topo::NodeId at = topo::kInvalidNode;
    topo::NodeId destination = topo::kInvalidNode;
    std::uint32_t hops_taken = 0;
    double t_injected = 0.0;
    bool holds_buffer = false;
  };

  // Buffer pool index: node * num_classes + class (class 0 in naive mode).
  [[nodiscard]] std::size_t pool_index(topo::NodeId node, std::uint32_t cls) const {
    return static_cast<std::size_t>(node) * num_classes_ + cls;
  }
  [[nodiscard]] std::uint32_t class_of(const Packet& p) const {
    return params_.structured ? std::min(p.hops_taken, num_classes_ - 1) : 0;
  }

  void try_acquire_buffer(std::uint32_t packet, topo::NodeId node, std::uint32_t cls);
  void buffer_granted(std::uint32_t packet);
  void channel_granted(std::uint32_t packet);
  void arrive(std::uint32_t packet);
  void release_buffer(topo::NodeId node, std::uint32_t cls);
  void release_channel(topo::ChannelId c);

  const topo::Topology* topology_;
  cdg::RoutingFunction route_;
  SafParams params_;
  evsim::Scheduler* sched_;
  std::uint32_t num_classes_;

  std::vector<Packet> packets_;
  std::uint32_t next_packet_ = 0;
  std::uint32_t delivered_ = 0;

  std::vector<std::uint32_t> free_buffers_;             // per (node, class)
  std::vector<std::deque<std::uint32_t>> buffer_queue_; // waiting packets
  std::vector<bool> channel_busy_;                      // per channel
  std::vector<std::deque<std::uint32_t>> channel_queue_;

  std::function<void(std::uint32_t, double)> on_delivered_;
};

}  // namespace mcnet::sw
