#include "switching/circuit.hpp"

#include <stdexcept>

namespace mcnet::sw {

CircuitNetwork::CircuitNetwork(const topo::Topology& topology,
                               const cdg::RoutingFunction& route,
                               const CircuitParams& params, evsim::Scheduler& sched)
    : topology_(&topology),
      route_(route),
      params_(params),
      sched_(&sched),
      rng_(params.seed),
      channel_holder_(topology.num_channels(), kFree),
      channel_queue_(topology.num_channels()) {}

std::uint32_t CircuitNetwork::inject(topo::NodeId source, topo::NodeId destination) {
  if (source == destination) throw std::invalid_argument("self-addressed circuit");
  const std::uint32_t id = next_id_++;
  circuits_.push_back(Circuit{source, destination, source, sched_->now(), {}});
  try_next_channel(id);
  return id;
}

void CircuitNetwork::try_next_channel(std::uint32_t id) {
  Circuit& c = circuits_[id];
  const topo::NodeId next = route_(c.probe_at, c.destination);
  if (next == topo::kInvalidNode) throw std::logic_error("circuit routing stuck");
  const topo::ChannelId ch = topology_->channel(c.probe_at, next);
  if (channel_holder_[ch] == kFree) {
    channel_holder_[ch] = id;
    c.held.push_back(ch);
    // The probe crosses the reserved channel.
    sched_->schedule_in(params_.probe_hop_time, [this, id] { probe_step(id); });
    return;
  }
  if (params_.drop_and_retry) {
    drop_and_backoff(id);
  } else {
    channel_queue_[ch].push_back(id);  // hold the prefix, wait FCFS
  }
}

void CircuitNetwork::probe_step(std::uint32_t id) {
  Circuit& c = circuits_[id];
  c.probe_at = topology_->channel_ends(c.held.back()).to;
  if (c.probe_at == c.destination) {
    // Circuit established: stream the message, then tear down.
    sched_->schedule_in(params_.transfer_time, [this, id] { complete(id); });
    return;
  }
  try_next_channel(id);
}

void CircuitNetwork::channel_granted(std::uint32_t id) {
  // The blocked channel has been handed to this circuit's probe.
  Circuit& c = circuits_[id];
  const topo::NodeId next = route_(c.probe_at, c.destination);
  c.held.push_back(topology_->channel(c.probe_at, next));
  sched_->schedule_in(params_.probe_hop_time, [this, id] { probe_step(id); });
}

void CircuitNetwork::complete(std::uint32_t id) {
  Circuit& c = circuits_[id];
  const double latency = sched_->now() - c.t_injected;
  // Tear the circuit down; hand each channel to its first FCFS waiter.
  std::vector<topo::ChannelId> held;
  held.swap(c.held);
  ++delivered_;
  for (const topo::ChannelId ch : held) {
    auto& q = channel_queue_[ch];
    if (!q.empty()) {
      const std::uint32_t waiter = q.front();
      q.pop_front();
      channel_holder_[ch] = waiter;
      sched_->schedule_in(0.0, [this, waiter] { channel_granted(waiter); });
    } else {
      channel_holder_[ch] = kFree;
    }
  }
  if (on_delivered_) on_delivered_(id, latency);
}

void CircuitNetwork::drop_and_backoff(std::uint32_t id) {
  Circuit& c = circuits_[id];
  ++retries_;
  std::vector<topo::ChannelId> held;
  held.swap(c.held);
  for (const topo::ChannelId ch : held) {
    // Drop-and-retry never queues, so nobody waits on these channels.
    channel_holder_[ch] = kFree;
  }
  c.probe_at = c.source;
  sched_->schedule_in(rng_.uniform(0.0, 2.0 * params_.retry_backoff_mean),
                      [this, id] { try_next_channel(id); });
}

}  // namespace mcnet::sw
