#include "switching/latency_models.hpp"

namespace mcnet::sw {

double store_and_forward_latency(const SwitchingParams& p, std::uint32_t hops) {
  return (p.message_bytes / p.bandwidth) * (hops + 1.0);
}

double virtual_cut_through_latency(const SwitchingParams& p, std::uint32_t hops) {
  return (p.header_bytes / p.bandwidth) * hops + p.message_bytes / p.bandwidth;
}

double circuit_switching_latency(const SwitchingParams& p, std::uint32_t hops) {
  return (p.control_bytes / p.bandwidth) * hops + p.message_bytes / p.bandwidth;
}

double wormhole_latency(const SwitchingParams& p, std::uint32_t hops) {
  return (p.flit_bytes / p.bandwidth) * hops + p.message_bytes / p.bandwidth;
}

}  // namespace mcnet::sw
