#include "switching/saf.hpp"

#include <stdexcept>

namespace mcnet::sw {

SafNetwork::SafNetwork(const topo::Topology& topology, const cdg::RoutingFunction& route,
                       const SafParams& params, evsim::Scheduler& sched)
    : topology_(&topology), route_(route), params_(params), sched_(&sched) {
  num_classes_ = params.structured
                     ? (params.classes > 0 ? params.classes : topology.diameter() + 1)
                     : 1;
  const std::uint32_t per_class =
      params.structured ? params.buffers_per_class : params.buffers_per_node;
  if (per_class == 0) throw std::invalid_argument("need >= 1 buffer");
  free_buffers_.assign(static_cast<std::size_t>(topology.num_nodes()) * num_classes_,
                       per_class);
  buffer_queue_.resize(free_buffers_.size());
  channel_busy_.assign(topology.num_channels(), false);
  channel_queue_.resize(topology.num_channels());
}

std::uint32_t SafNetwork::inject(topo::NodeId source, topo::NodeId destination) {
  if (source == destination) throw std::invalid_argument("self-addressed packet");
  const std::uint32_t id = next_packet_++;
  packets_.push_back(Packet{source, destination, 0, sched_->now(), false});
  try_acquire_buffer(id, source, 0);
  return id;
}

void SafNetwork::try_acquire_buffer(std::uint32_t packet, topo::NodeId node,
                                    std::uint32_t cls) {
  const std::size_t idx = pool_index(node, cls);
  if (free_buffers_[idx] > 0) {
    --free_buffers_[idx];
    buffer_granted(packet);
  } else {
    buffer_queue_[idx].push_back(packet);
  }
}

void SafNetwork::buffer_granted(std::uint32_t packet) {
  Packet& p = packets_[packet];
  if (!p.holds_buffer) {
    // Injection buffer at the source: the packet is now stored in the
    // network.  The next-hop buffer reservation is made only once the
    // store has completed (a zero-delay event), so simultaneous injections
    // claim their local buffers before anyone reserves remotely -- the
    // timing under which the Section 2.3.4 buffer deadlock actually forms.
    p.holds_buffer = true;
    sched_->schedule_in(0.0, [this, packet] {
      const Packet& pp = packets_[packet];
      const topo::NodeId next = route_(pp.at, pp.destination);
      const std::uint32_t next_cls =
          params_.structured ? std::min(pp.hops_taken + 1, num_classes_ - 1) : 0;
      try_acquire_buffer(packet, next, next_cls);
    });
    return;
  }
  // The next-node buffer is reserved; now contend for the channel.
  const topo::NodeId next = route_(p.at, p.destination);
  const topo::ChannelId c = topology_->channel(p.at, next);
  if (!channel_busy_[c]) {
    channel_busy_[c] = true;
    channel_granted(packet);
  } else {
    channel_queue_[c].push_back(packet);
  }
}

void SafNetwork::channel_granted(std::uint32_t packet) {
  sched_->schedule_in(params_.packet_time, [this, packet] { arrive(packet); });
}

void SafNetwork::arrive(std::uint32_t packet) {
  Packet& p = packets_[packet];
  const topo::NodeId old_node = p.at;
  const std::uint32_t old_cls = class_of(p);
  const topo::NodeId next = route_(old_node, p.destination);
  release_channel(topology_->channel(old_node, next));
  release_buffer(old_node, old_cls);
  p.at = next;
  ++p.hops_taken;

  if (p.at == p.destination) {
    // Consumed by the destination processor: free its buffer.
    release_buffer(p.at, class_of(p));
    p.holds_buffer = false;
    ++delivered_;
    if (on_delivered_) on_delivered_(packet, sched_->now() - p.t_injected);
    return;
  }
  const std::uint32_t next_cls =
      params_.structured ? std::min(p.hops_taken + 1, num_classes_ - 1) : 0;
  try_acquire_buffer(packet, route_(p.at, p.destination), next_cls);
}

void SafNetwork::release_buffer(topo::NodeId node, std::uint32_t cls) {
  const std::size_t idx = pool_index(node, cls);
  auto& q = buffer_queue_[idx];
  if (!q.empty()) {
    const std::uint32_t waiter = q.front();
    q.pop_front();
    // Hand the buffer straight to the waiter.
    sched_->schedule_in(0.0, [this, waiter] { buffer_granted(waiter); });
    return;
  }
  ++free_buffers_[idx];
}

void SafNetwork::release_channel(topo::ChannelId c) {
  auto& q = channel_queue_[c];
  if (!q.empty()) {
    const std::uint32_t waiter = q.front();
    q.pop_front();
    sched_->schedule_in(0.0, [this, waiter] { channel_granted(waiter); });
    return;
  }
  channel_busy_[c] = false;
}

}  // namespace mcnet::sw
