// Circuit-switched network (Section 2.2.3): a control probe reserves every
// channel from source to destination, the message streams over the
// reserved circuit in one burst, and the circuit is torn down after the
// tail is delivered.
//
// Two establishment protocols (the paper: "If a circuit cannot be set up
// due to the contention for channels, various protocols can be used to
// reestablish the circuit"):
//
//  * holding: the probe waits FCFS on the busy channel while keeping the
//    circuit prefix reserved.  Requires a dependency-acyclic routing
//    function (e.g. X-first / e-cube) to be deadlock-free.
//  * drop-and-retry: a blocked probe releases the whole prefix and retries
//    after a randomised backoff; deadlock-free with any routing at the
//    cost of wasted establishment work.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "cdg/channel_graph.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "topology/topology.hpp"

namespace mcnet::sw {

struct CircuitParams {
  double probe_hop_time = 0.1e-6;   // L_c / B per hop
  double transfer_time = 6.4e-6;    // L / B over the established circuit
  bool drop_and_retry = false;      // holding protocol by default
  double retry_backoff_mean = 5e-6; // mean uniform backoff when dropping
  std::uint64_t seed = 1;
};

class CircuitNetwork {
 public:
  CircuitNetwork(const topo::Topology& topology, const cdg::RoutingFunction& route,
                 const CircuitParams& params, evsim::Scheduler& sched);

  /// Start establishing a circuit at the current simulated time.
  std::uint32_t inject(topo::NodeId source, topo::NodeId destination);

  /// Latency from inject to tail delivery.
  void set_on_delivered(std::function<void(std::uint32_t, double)> cb) {
    on_delivered_ = std::move(cb);
  }

  [[nodiscard]] std::uint32_t circuits_injected() const { return next_id_; }
  [[nodiscard]] std::uint32_t circuits_delivered() const { return delivered_; }
  [[nodiscard]] bool idle() const { return delivered_ == next_id_; }
  [[nodiscard]] std::uint32_t retries() const { return retries_; }

 private:
  struct Circuit {
    topo::NodeId source = topo::kInvalidNode;
    topo::NodeId destination = topo::kInvalidNode;
    topo::NodeId probe_at = topo::kInvalidNode;
    double t_injected = 0.0;
    std::vector<topo::ChannelId> held;
  };

  void probe_step(std::uint32_t id);
  void try_next_channel(std::uint32_t id);
  void channel_granted(std::uint32_t id);
  void complete(std::uint32_t id);
  void drop_and_backoff(std::uint32_t id);

  const topo::Topology* topology_;
  cdg::RoutingFunction route_;
  CircuitParams params_;
  evsim::Scheduler* sched_;
  evsim::Rng rng_;

  std::vector<Circuit> circuits_;
  std::uint32_t next_id_ = 0;
  std::uint32_t delivered_ = 0;
  std::uint32_t retries_ = 0;

  std::vector<std::uint32_t> channel_holder_;  // circuit id or kFree
  std::vector<std::deque<std::uint32_t>> channel_queue_;
  std::function<void(std::uint32_t, double)> on_delivered_;

  static constexpr std::uint32_t kFree = static_cast<std::uint32_t>(-1);
};

}  // namespace mcnet::sw
