// Analytic network-latency models of Section 2.2 (Fig. 2.3): the
// contention-free latency of moving an L-byte message D hops over
// B-bytes/s channels under each switching technology.
#pragma once

#include <cstdint>

namespace mcnet::sw {

struct SwitchingParams {
  double message_bytes = 128;   // L
  double bandwidth = 20e6;      // B, bytes/s
  double header_bytes = 2;      // L_h (virtual cut-through header)
  double control_bytes = 2;     // L_c (circuit probe)
  double flit_bytes = 1;        // L_f (wormhole flit)
};

/// Store-and-forward: (L/B) * (D + 1) -- the whole packet is stored at
/// every hop.
[[nodiscard]] double store_and_forward_latency(const SwitchingParams& p, std::uint32_t hops);

/// Virtual cut-through: (L_h/B) * D + L/B.
[[nodiscard]] double virtual_cut_through_latency(const SwitchingParams& p, std::uint32_t hops);

/// Circuit switching: (L_c/B) * D + L/B (probe out, then one streamed
/// transfer over the reserved circuit).
[[nodiscard]] double circuit_switching_latency(const SwitchingParams& p, std::uint32_t hops);

/// Wormhole routing: (L_f/B) * D + L/B.
[[nodiscard]] double wormhole_latency(const SwitchingParams& p, std::uint32_t hops);

}  // namespace mcnet::sw
