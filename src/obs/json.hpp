// Minimal JSON document type for the observability layer: an ordered
// object/array/number/string/bool/null variant with a writer and a strict
// recursive-descent parser.  The writer serialises non-finite numbers as
// null (JSON has no NaN/Inf), which the bench schema exploits: an invalid
// confidence interval round-trips as null instead of poisoning consumers.
//
// This is deliberately not a general-purpose JSON library -- no comments,
// no \u surrogate-pair synthesis beyond the BMP escape, object keys kept
// in insertion order -- just enough for metrics dumps, bench result files
// and their validation in tests and CI.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mcnet::obs {

class Json {
 public:
  enum class Type : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), number_(v) {}
  Json(int v) : type_(Type::kNumber), number_(v) {}
  Json(unsigned v) : type_(Type::kNumber), number_(v) {}
  Json(long v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(long long v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(unsigned long v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(unsigned long long v) : type_(Type::kNumber), number_(static_cast<double>(v)) {}
  Json(const char* s) : type_(Type::kString), string_(s) {}
  Json(std::string s) : type_(Type::kString), string_(std::move(s)) {}
  Json(std::string_view s) : type_(Type::kString), string_(s) {}

  [[nodiscard]] static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }
  [[nodiscard]] static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_bool() const { return type_ == Type::kBool; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool() const { return bool_; }
  [[nodiscard]] double as_double() const { return number_; }
  [[nodiscard]] const std::string& as_string() const { return string_; }

  /// Object access: inserts a null member on first use (object/null only).
  Json& operator[](const std::string& key);
  /// Lookup without insertion; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const;
  [[nodiscard]] bool contains(std::string_view key) const { return find(key) != nullptr; }

  /// Array append (array/null only; null promotes to array).
  void push_back(Json value);

  /// Elements of an array / members of an object (insertion order).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] const Json& at(std::size_t index) const { return items_[index]; }
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members() const {
    return members_;
  }
  [[nodiscard]] const std::vector<Json>& items() const { return items_; }

  /// Serialise.  indent == 0 -> compact one-line output; indent > 0 ->
  /// pretty-printed with that many spaces per level.  Non-finite numbers
  /// are written as null.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Strict parse of a complete JSON document (trailing garbage rejected).
  /// On failure returns nullopt and, when `error` is non-null, stores a
  /// message with the byte offset.
  [[nodiscard]] static std::optional<Json> parse(std::string_view text,
                                                 std::string* error = nullptr);

  /// Append `s` to `out` as a quoted JSON string (used by the streaming
  /// trace writer, which never builds a DOM).
  static void append_escaped(std::string& out, std::string_view s);
  /// Append a JSON number (null when non-finite).
  static void append_number(std::string& out, double v);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Json> items_;                            // kArray
  std::vector<std::pair<std::string, Json>> members_;  // kObject
};

}  // namespace mcnet::obs
