// Schema validation for the structured bench result files written by
// bench::JsonReporter (schema "mcnet-bench-v1").  One function shared by
// the unit tests and the mcnet_bench_validate CLI that CI runs over every
// smoke-run bench, so the schema cannot drift from its checker.
//
// Required shape:
//   {
//     "schema": "mcnet-bench-v1",
//     "bench": "<non-empty name>",
//     "scale": <finite number > 0>,          // MCNET_BENCH_SCALE in effect
//     "wall_clock_s": <finite number >= 0>,
//     "series": [                            // >= 1 entry
//       {"name": "<non-empty>", "points": [  // >= 1 point per series
//         {"x": <finite>, "y": <finite>, ...extra fields...}
//       ]}
//     ],
//     ...optional: "meta" (object), "metrics" (object),
//        "histograms" (object of histogram summaries)...
//   }
//
// Point-level rules:
//   * "x" and "y" are required finite numbers (the writer emits null for
//     NaN/Inf, which fails validation -- NaNs must not masquerade as data);
//   * when "ci_valid" is present and true, "ci_half_us" must be a finite
//     number (an unconverged run claiming a valid CI is the exact bug the
//     ci_valid flag exists to expose);
//   * when "ci_valid" is present and false, "ci_half_us" must be null or
//     absent (no phantom precision).
#pragma once

#include <string>

#include "obs/json.hpp"

namespace mcnet::obs {

inline constexpr std::string_view kBenchSchemaName = "mcnet-bench-v1";

/// True when `doc` is a valid mcnet-bench-v1 result document; otherwise
/// false with a human-readable reason in `error` (when non-null).
[[nodiscard]] bool validate_bench_json(const Json& doc, std::string* error = nullptr);

}  // namespace mcnet::obs
