// EventTracer: records worm-lifecycle and channel grant/release events
// from the wormhole simulator and writes them as Chrome trace-event JSON
// (the format chrome://tracing and Perfetto load directly).
//
// Mapping onto the trace-event model:
//  * each physical channel copy is a "thread" (tid = channel * copies +
//    copy), so Perfetto renders one swim-lane per channel with an "X"
//    (complete) slice for every hold, named after the worm that held it;
//  * message lifecycle events -- inject, per-destination delivery, drop,
//    completion -- are instant events on tid 0 of a second "messages"
//    process, with the message id in args;
//  * timestamps are simulated seconds scaled to microseconds (the unit the
//    format mandates), so a 50 ns flit time renders as 0.05 us slices.
//
// The tracer is bounded: past `max_events` new events are counted as
// dropped instead of stored, so tracing a saturated run cannot exhaust
// memory.  Recording is single-threaded by design (one tracer per
// simulation); writing never happens concurrently with recording.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "wormhole/network.hpp"

namespace mcnet::obs {

class EventTracer {
 public:
  explicit EventTracer(std::size_t max_events = 1u << 20) : max_events_(max_events) {}

  /// Instant event ("i") at simulated time `ts_s` on lane `tid` of process
  /// `pid`.  `args_json` is a complete JSON object ("{...}") or empty.
  void instant(std::string name, std::string_view category, double ts_s,
               std::uint64_t pid, std::uint64_t tid, std::string args_json = {});

  /// Complete event ("X"): a slice [ts_s, ts_s + dur_s].
  void complete(std::string name, std::string_view category, double ts_s, double dur_s,
                std::uint64_t pid, std::uint64_t tid, std::string args_json = {});

  /// Wrap `hooks` so every Network callback both records a trace event and
  /// forwards to whatever was installed before.  Lane metadata (channel
  /// names) is emitted for `network`'s topology; pass the result to
  /// network.set_hooks().  The network must outlive the tracer's use.
  [[nodiscard]] worm::NetworkHooks instrument(const worm::Network& network,
                                              worm::NetworkHooks hooks = {});

  [[nodiscard]] std::size_t size() const { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

  /// The complete document: {"traceEvents": [...], "displayTimeUnit": "ns"}.
  [[nodiscard]] std::string to_json() const;
  /// Write to_json() to `path`; false (with errno intact) on I/O failure.
  [[nodiscard]] bool write_file(const std::string& path) const;

 private:
  struct Event {
    std::string name;
    std::string category;
    char phase;       // 'i' or 'X'
    double ts_us;
    double dur_us;    // 'X' only
    std::uint64_t pid;
    std::uint64_t tid;
    std::string args_json;
  };

  void push(Event e);

  std::size_t max_events_;
  std::uint64_t dropped_ = 0;
  std::vector<Event> events_;
  /// Grant timestamps per physical channel copy, for 'X' slice construction
  /// (index = channel * copies + copy).
  std::vector<double> grant_time_;
  std::vector<std::uint32_t> grant_worm_;
};

}  // namespace mcnet::obs
