#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace mcnet::obs {

Json& Json::operator[](const std::string& key) {
  if (type_ == Type::kNull) type_ = Type::kObject;
  if (type_ != Type::kObject) throw std::logic_error("Json::operator[]: not an object");
  for (auto& [k, v] : members_) {
    if (k == key) return v;
  }
  members_.emplace_back(key, Json());
  return members_.back().second;
}

const Json* Json::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::push_back(Json value) {
  if (type_ == Type::kNull) type_ = Type::kArray;
  if (type_ != Type::kArray) throw std::logic_error("Json::push_back: not an array");
  items_.push_back(std::move(value));
}

std::size_t Json::size() const {
  switch (type_) {
    case Type::kArray:
      return items_.size();
    case Type::kObject:
      return members_.size();
    default:
      return 0;
  }
}

void Json::append_escaped(std::string& out, std::string_view s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void Json::append_number(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  // Integers print without an exponent or trailing zeros; everything else
  // round-trips through %.17g.
  if (v == std::floor(v) && std::abs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * d, ' ');
  };
  switch (type_) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Type::kNumber:
      append_number(out, number_);
      break;
    case Type::kString:
      append_escaped(out, string_);
      break;
    case Type::kArray: {
      out.push_back('[');
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        items_[i].dump_to(out, indent, depth + 1);
      }
      if (!items_.empty()) newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      out.push_back('{');
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        newline(depth + 1);
        append_escaped(out, members_[i].first);
        out.push_back(':');
        if (indent > 0) out.push_back(' ');
        members_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!members_.empty()) newline(depth);
      out.push_back('}');
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Json> run(std::string* error) {
    std::optional<Json> value = parse_value();
    if (value) {
      skip_ws();
      if (pos_ != text_.size()) {
        value.reset();
        error_ = "trailing characters after document";
      }
    }
    if (!value && error != nullptr) {
      *error = error_ + " (at byte " + std::to_string(pos_) + ")";
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool expect_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    error_ = "invalid literal";
    return false;
  }

  std::optional<Json> parse_value() {
    skip_ws();
    if (pos_ >= text_.size()) {
      error_ = "unexpected end of input";
      return std::nullopt;
    }
    switch (text_[pos_]) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        std::optional<std::string> s = parse_string();
        if (!s) return std::nullopt;
        return Json(std::move(*s));
      }
      case 't':
        if (!expect_literal("true")) return std::nullopt;
        return Json(true);
      case 'f':
        if (!expect_literal("false")) return std::nullopt;
        return Json(false);
      case 'n':
        if (!expect_literal("null")) return std::nullopt;
        return Json(nullptr);
      default:
        return parse_number();
    }
  }

  std::optional<Json> parse_object() {
    ++pos_;  // '{'
    Json obj = Json::object();
    skip_ws();
    if (consume('}')) return obj;
    while (true) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        error_ = "expected ':' in object";
        return std::nullopt;
      }
      std::optional<Json> value = parse_value();
      if (!value) return std::nullopt;
      obj[*key] = std::move(*value);
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return obj;
      error_ = "expected ',' or '}' in object";
      return std::nullopt;
    }
  }

  std::optional<Json> parse_array() {
    ++pos_;  // '['
    Json arr = Json::array();
    skip_ws();
    if (consume(']')) return arr;
    while (true) {
      std::optional<Json> value = parse_value();
      if (!value) return std::nullopt;
      arr.push_back(std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return arr;
      error_ = "expected ',' or ']' in array";
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      error_ = "expected string";
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            error_ = "truncated \\u escape";
            return std::nullopt;
          }
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') {
              cp |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              cp |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              cp |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              error_ = "invalid \\u escape";
              return std::nullopt;
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs land as two
          // 3-byte sequences; good enough for our ASCII-dominated files).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default:
          error_ = "invalid escape character";
          return std::nullopt;
      }
    }
    error_ = "unterminated string";
    return std::nullopt;
  }

  std::optional<Json> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    double v = 0.0;
    const auto [ptr, ec] =
        std::from_chars(text_.data() + start, text_.data() + pos_, v);
    if (ec != std::errc() || ptr != text_.data() + pos_ || pos_ == start) {
      error_ = "invalid number";
      pos_ = start;
      return std::nullopt;
    }
    return Json(v);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_ = "parse error";
};

}  // namespace

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  return Parser(text).run(error);
}

}  // namespace mcnet::obs
