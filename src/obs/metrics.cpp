#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace mcnet::obs {

std::size_t Histogram::bucket_index(double v) {
  if (!(v > kMinValue)) return 0;  // NaN, negatives and tiny values
  const double octaves = std::log2(v / kMinValue);
  const auto idx = static_cast<std::size_t>(octaves * kBucketsPerOctave);
  return std::min(idx, kNumBuckets - 1);
}

double Histogram::bucket_lower(std::size_t i) {
  return kMinValue * std::exp2(static_cast<double>(i) / kBucketsPerOctave);
}

void Histogram::record(double v) {
  buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  // min/max via CAS loops; contention is negligible next to the sim work.
  if (!any_.exchange(true, std::memory_order_relaxed)) {
    min_.store(v, std::memory_order_relaxed);
    max_.store(v, std::memory_order_relaxed);
    return;
  }
  double cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::percentile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-th sample (1-based, ceil), then walk the buckets.
  const auto rank = static_cast<std::uint64_t>(
      std::max<double>(1.0, std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  std::size_t bucket = kNumBuckets - 1;
  for (std::size_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      bucket = i;
      break;
    }
  }
  const double lo = bucket == 0 ? 0.0 : bucket_lower(bucket);
  const double hi = bucket_upper(bucket);
  const double mid = bucket == 0 ? kMinValue / 2 : std::sqrt(lo * hi);
  // Clamp into the observed range so exact answers survive on degenerate
  // (single-value) distributions.
  return std::clamp(mid, min_.load(std::memory_order_relaxed),
                    max_.load(std::memory_order_relaxed));
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.count = count();
  s.sum = sum();
  if (s.count > 0) {
    s.min = min_.load(std::memory_order_relaxed);
    s.max = max_.load(std::memory_order_relaxed);
    s.p50 = percentile(0.50);
    s.p90 = percentile(0.90);
    s.p99 = percentile(0.99);
  }
  return s;
}

Counter& MetricsRegistry::counter(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>()).first;
  }
  return *it->second;
}

Json histogram_to_json(const HistogramSnapshot& s) {
  Json h = Json::object();
  h["count"] = Json(s.count);
  h["sum"] = Json(s.sum);
  h["mean"] = Json(s.mean());
  h["min"] = Json(s.min);
  h["max"] = Json(s.max);
  h["p50"] = Json(s.p50);
  h["p90"] = Json(s.p90);
  h["p99"] = Json(s.p99);
  return h;
}

Json MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Json out = Json::object();
  Json& counters = out["counters"];
  counters = Json::object();
  for (const auto& [name, c] : counters_) counters[name] = Json(c->value());
  Json& gauges = out["gauges"];
  gauges = Json::object();
  for (const auto& [name, g] : gauges_) gauges[name] = Json(g->value());
  Json& histograms = out["histograms"];
  histograms = Json::object();
  for (const auto& [name, h] : histograms_) {
    histograms[name] = histogram_to_json(h->snapshot());
  }
  return out;
}

}  // namespace mcnet::obs
