#include "obs/trace.hpp"

#include <cstdio>
#include <utility>

#include "obs/json.hpp"
#include "topology/topology.hpp"

namespace mcnet::obs {

namespace {
constexpr std::uint64_t kChannelsPid = 1;
constexpr std::uint64_t kMessagesPid = 2;
constexpr double kSecondsToUs = 1e6;

std::string msg_args(std::uint64_t message_id) {
  return "{\"message\":" + std::to_string(message_id) + "}";
}
}  // namespace

void EventTracer::push(Event e) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(e));
}

void EventTracer::instant(std::string name, std::string_view category, double ts_s,
                          std::uint64_t pid, std::uint64_t tid, std::string args_json) {
  push(Event{std::move(name), std::string(category), 'i', ts_s * kSecondsToUs, 0.0, pid,
             tid, std::move(args_json)});
}

void EventTracer::complete(std::string name, std::string_view category, double ts_s,
                           double dur_s, std::uint64_t pid, std::uint64_t tid,
                           std::string args_json) {
  push(Event{std::move(name), std::string(category), 'X', ts_s * kSecondsToUs,
             dur_s * kSecondsToUs, pid, tid, std::move(args_json)});
}

worm::NetworkHooks EventTracer::instrument(const worm::Network& network,
                                           worm::NetworkHooks hooks) {
  const topo::Topology& t = network.topology();
  const std::uint8_t copies = network.params().channel_copies;
  grant_time_.assign(static_cast<std::size_t>(t.num_channels()) * copies, 0.0);
  grant_worm_.assign(grant_time_.size(), 0);

  // Process/thread metadata so Perfetto labels the lanes: ph "M" events
  // are modelled as instants here but rewritten with their real phase at
  // serialisation time via the reserved "__metadata" category.
  push(Event{"process_name", "__metadata", 'M', 0.0, 0.0, kChannelsPid, 0,
             "{\"name\":\"channels\"}"});
  push(Event{"process_name", "__metadata", 'M', 0.0, 0.0, kMessagesPid, 0,
             "{\"name\":\"messages\"}"});
  for (topo::ChannelId c = 0; c < t.num_channels(); ++c) {
    const topo::ChannelEnds ends = t.channel_ends(c);
    for (std::uint8_t k = 0; k < copies; ++k) {
      std::string label = "ch " + std::to_string(ends.from) + "->" +
                          std::to_string(ends.to);
      if (copies > 1) label += " #" + std::to_string(k);
      push(Event{"thread_name", "__metadata", 'M', 0.0, 0.0, kChannelsPid,
                 static_cast<std::uint64_t>(c) * copies + k,
                 "{\"name\":" + [&label] {
                   std::string quoted;
                   Json::append_escaped(quoted, label);
                   return quoted;
                 }() + "}"});
    }
  }

  worm::NetworkHooks wrapped = std::move(hooks);

  auto prev_inject = std::move(wrapped.on_inject);
  wrapped.on_inject = [this, prev_inject = std::move(prev_inject)](std::uint64_t msg,
                                                                   double ts) {
    instant("inject", "message", ts, kMessagesPid, 0, msg_args(msg));
    if (prev_inject) prev_inject(msg, ts);
  };

  auto prev_delivery = std::move(wrapped.on_delivery);
  wrapped.on_delivery = [this, prev_delivery = std::move(prev_delivery)](
                            std::uint64_t msg, topo::NodeId dest, double latency) {
    instant("delivery@" + std::to_string(dest), "message", latency, kMessagesPid, 0,
            msg_args(msg));
    if (prev_delivery) prev_delivery(msg, dest, latency);
  };

  auto prev_done = std::move(wrapped.on_message_done);
  wrapped.on_message_done = [this, prev_done = std::move(prev_done)](std::uint64_t msg,
                                                                     double latency) {
    instant("done", "message", latency, kMessagesPid, 0, msg_args(msg));
    if (prev_done) prev_done(msg, latency);
  };

  auto prev_drop = std::move(wrapped.on_drop);
  wrapped.on_drop = [this, prev_drop = std::move(prev_drop)](std::uint64_t msg,
                                                             topo::NodeId dest, double ts) {
    instant("drop@" + std::to_string(dest), "message", ts, kMessagesPid, 0, msg_args(msg));
    if (prev_drop) prev_drop(msg, dest, ts);
  };

  auto prev_grant = std::move(wrapped.on_channel_grant);
  wrapped.on_channel_grant = [this, copies, prev_grant = std::move(prev_grant)](
                                 worm::ChannelId c, std::uint8_t copy,
                                 std::uint32_t worm_id, double ts) {
    const std::size_t idx = static_cast<std::size_t>(c) * copies + copy;
    grant_time_[idx] = ts;
    grant_worm_[idx] = worm_id;
    if (prev_grant) prev_grant(c, copy, worm_id, ts);
  };

  auto prev_release = std::move(wrapped.on_channel_release);
  wrapped.on_channel_release = [this, copies, prev_release = std::move(prev_release)](
                                   worm::ChannelId c, std::uint8_t copy,
                                   std::uint32_t worm_id, double ts) {
    const std::size_t idx = static_cast<std::size_t>(c) * copies + copy;
    complete("worm " + std::to_string(grant_worm_[idx]), "channel", grant_time_[idx],
             ts - grant_time_[idx], kChannelsPid, idx,
             "{\"worm\":" + std::to_string(grant_worm_[idx]) + "}");
    if (prev_release) prev_release(c, copy, worm_id, ts);
  };

  return wrapped;
}

std::string EventTracer::to_json() const {
  std::string out;
  out.reserve(events_.size() * 96 + 64);
  out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events_) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":";
    Json::append_escaped(out, e.name);
    const bool metadata = e.category == "__metadata";
    if (!metadata) {
      out += ",\"cat\":";
      Json::append_escaped(out, e.category);
    }
    out += ",\"ph\":\"";
    out.push_back(metadata ? 'M' : e.phase);
    out += "\",\"ts\":";
    Json::append_number(out, e.ts_us);
    if (e.phase == 'X') {
      out += ",\"dur\":";
      Json::append_number(out, e.dur_us);
    }
    if (e.phase == 'i') out += ",\"s\":\"t\"";  // thread-scoped instant
    out += ",\"pid\":" + std::to_string(e.pid) + ",\"tid\":" + std::to_string(e.tid);
    if (!e.args_json.empty()) out += ",\"args\":" + e.args_json;
    out += "}";
  }
  out += "]}";
  return out;
}

bool EventTracer::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = to_json();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return (std::fclose(f) == 0) && ok;
}

}  // namespace mcnet::obs
