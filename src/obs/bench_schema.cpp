#include "obs/bench_schema.hpp"

#include <cmath>

namespace mcnet::obs {

namespace {

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

bool finite_number(const Json* j) { return j != nullptr && j->is_number() && std::isfinite(j->as_double()); }

bool validate_point(const Json& point, const std::string& where, std::string* error) {
  if (!point.is_object()) return fail(error, where + ": point is not an object");
  if (!finite_number(point.find("x"))) {
    return fail(error, where + ": missing or non-finite \"x\"");
  }
  if (!finite_number(point.find("y"))) {
    return fail(error, where + ": missing or non-finite \"y\"");
  }
  if (const Json* ci_valid = point.find("ci_valid")) {
    if (!ci_valid->is_bool()) return fail(error, where + ": \"ci_valid\" is not a bool");
    const Json* half = point.find("ci_half_us");
    if (ci_valid->as_bool()) {
      if (!finite_number(half)) {
        return fail(error,
                    where + ": \"ci_valid\" is true but \"ci_half_us\" is not a finite number");
      }
    } else if (half != nullptr && !half->is_null()) {
      return fail(error,
                  where + ": \"ci_valid\" is false but \"ci_half_us\" carries a value");
    }
  }
  return true;
}

}  // namespace

bool validate_bench_json(const Json& doc, std::string* error) {
  if (!doc.is_object()) return fail(error, "document is not an object");

  const Json* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_string() || schema->as_string() != kBenchSchemaName) {
    return fail(error, std::string("\"schema\" must be \"") + std::string(kBenchSchemaName) + "\"");
  }
  const Json* bench = doc.find("bench");
  if (bench == nullptr || !bench->is_string() || bench->as_string().empty()) {
    return fail(error, "\"bench\" must be a non-empty string");
  }
  const Json* scale = doc.find("scale");
  if (!finite_number(scale) || scale->as_double() <= 0.0) {
    return fail(error, "\"scale\" must be a finite number > 0");
  }
  const Json* wall = doc.find("wall_clock_s");
  if (!finite_number(wall) || wall->as_double() < 0.0) {
    return fail(error, "\"wall_clock_s\" must be a finite number >= 0");
  }

  const Json* series = doc.find("series");
  if (series == nullptr || !series->is_array() || series->size() == 0) {
    return fail(error, "\"series\" must be a non-empty array");
  }
  for (std::size_t s = 0; s < series->size(); ++s) {
    const Json& entry = series->at(s);
    const std::string where = "series[" + std::to_string(s) + "]";
    if (!entry.is_object()) return fail(error, where + ": not an object");
    const Json* name = entry.find("name");
    if (name == nullptr || !name->is_string() || name->as_string().empty()) {
      return fail(error, where + ": \"name\" must be a non-empty string");
    }
    const Json* points = entry.find("points");
    if (points == nullptr || !points->is_array() || points->size() == 0) {
      return fail(error, where + ": \"points\" must be a non-empty array");
    }
    for (std::size_t p = 0; p < points->size(); ++p) {
      if (!validate_point(points->at(p), where + ".points[" + std::to_string(p) + "]",
                          error)) {
        return false;
      }
    }
  }

  for (const char* key : {"meta", "metrics", "histograms"}) {
    if (const Json* extra = doc.find(key); extra != nullptr && !extra->is_object()) {
      return fail(error, std::string("\"") + key + "\" must be an object when present");
    }
  }
  return true;
}

}  // namespace mcnet::obs
