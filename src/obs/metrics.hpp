// MetricsRegistry: named counters, gauges and log-bucketed latency
// histograms for the simulation stack (the Chapter 7 empirical study's
// quantities -- injections, deliveries, drops, grant waits, cache hits,
// fallbacks, retries -- as queryable instruments instead of printf lines).
//
// Design constraints:
//  * recording is wait-free (relaxed atomics) so parallel_for sweeps can
//    share one registry across simulation threads;
//  * instrument references returned by the registry are stable for the
//    registry's lifetime (node-based storage), so hot paths bind a pointer
//    once and pay a single null check when metrics are disabled;
//  * histograms are log-bucketed (8 buckets per factor of 2), giving
//    percentile queries a bounded relative error of 2^(1/8)-1 ~ 9 % over
//    a 1 ns .. ~18 s span -- plenty for latency distributions whose
//    interesting structure spans orders of magnitude.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.hpp"

namespace mcnet::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins double with an accumulate operation (channel busy time,
/// utilisation snapshots, ...).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double d) { value_.fetch_add(d, std::memory_order_relaxed); }
  [[nodiscard]] double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Point-in-time summary of a Histogram (see snapshot()).
struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;

  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0 : sum / static_cast<double>(count);
  }
};

/// Log-bucketed histogram over positive values.  Values <= kMinValue
/// (including zero and negatives) collapse into bucket 0; values beyond
/// the top bucket clamp into the last one.
class Histogram {
 public:
  /// 8 buckets per factor of 2 over [1e-9, 1e-9 * 2^(kNumBuckets/8)).
  static constexpr std::size_t kNumBuckets = 272;  // covers up to ~18.9 s
  static constexpr double kMinValue = 1e-9;
  static constexpr int kBucketsPerOctave = 8;

  /// Bucket index for a value (pure; exposed for the percentile tests).
  [[nodiscard]] static std::size_t bucket_index(double v);
  /// Inclusive lower bound of bucket `i`.
  [[nodiscard]] static double bucket_lower(std::size_t i);
  /// Exclusive upper bound of bucket `i`.
  [[nodiscard]] static double bucket_upper(std::size_t i) { return bucket_lower(i + 1); }

  void record(double v);

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Value at quantile q in [0, 1]: the geometric midpoint of the bucket
  /// containing the q-th sample (clamped to the observed min/max so
  /// single-sample histograms report the exact value).  0 when empty.
  [[nodiscard]] double percentile(double q) const;

  [[nodiscard]] HistogramSnapshot snapshot() const;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  std::atomic<bool> any_{false};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/// Named instrument registry.  counter()/gauge()/histogram() create on
/// first use and return stable references; lookups take a mutex, so bind
/// the reference once outside the hot path.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] Histogram& histogram(std::string_view name);

  /// Full dump, alphabetical by name:
  ///   {"counters": {name: n}, "gauges": {name: v},
  ///    "histograms": {name: {count,sum,mean,min,max,p50,p90,p99}}}
  [[nodiscard]] Json to_json() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// JSON summary of one histogram snapshot (shared by registry dumps and
/// the bench reporter).
[[nodiscard]] Json histogram_to_json(const HistogramSnapshot& s);

}  // namespace mcnet::obs
