// Group multicast with membership views, sender windows, and heartbeat
// failure detection (the SST/Derecho-style group abstraction of ROADMAP
// item 2), layered on MulticastService's reliable multicast.
//
// Model
//  * Membership is versioned: every group carries a MembershipView with a
//    monotonically increasing view id, installed by a deterministic
//    view-change protocol driven by the event simulator.  Views change on
//    join(), leave(), and detector-driven eviction; each install stamps
//    the fault::FaultState epoch, so detector evictions and injected
//    faults line up on one epoch timeline.
//  * Every live member multicasts a heartbeat to its group peers each
//    heartbeat_period_s -- real traffic through the wormhole network, so
//    congestion and link faults genuinely delay or kill heartbeats.  Each
//    member tracks per-peer last-heard times and a smoothed interarrival;
//    a periodic detector sweep suspects peer p at observer m when m has
//    not heard p for phi_threshold times the smoothed interarrival (with
//    suspicion_min_timeout_s as the floor).  A peer suspected by a strict
//    majority of its co-members is evicted and a new view installs.  An
//    eviction of a node that had NOT failed (per FaultState ground truth)
//    counts as a false positive.
//  * Sends carry per-sender sequence numbers through a bounded ring-buffer
//    window of window_size slots: seq s may launch only while
//    s < lowest_unstable + window_size; later sends queue (a window
//    stall).  A message is *stable* once every destination it owes has a
//    terminal outcome; stability of the oldest in-flight message advances
//    the window and drains the queue.  View installs drop evicted
//    destinations from in-flight messages, so windows never deadlock on a
//    dead receiver.
//  * Receivers deliver to the application in per-sender sequence order
//    (delivered-but-early messages buffer; terminal failures plug the
//    hole so ordering never wedges behind a dropped message).  A message
//    counts as "delivered in view" at a destination only while that
//    destination is still a member (same incarnation) of the group --
//    deliveries racing an eviction are filtered, never surfaced.
//
// The control plane (view state, windows, detector sweeps) is centralised
// in this object -- the simulation-side equivalent of SST's shared state
// table -- which is what makes "all live members observe identical view
// ids per epoch" hold by construction; the data plane (application sends,
// heartbeats, view-install announcements) is real simulated traffic.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/flat_map.hpp"
#include "service/multicast_service.hpp"

namespace mcnet::obs {
class Gauge;
class Histogram;
}

namespace mcnet::svc {

using GroupId = std::uint32_t;
using ViewId = std::uint64_t;
using SeqNum = std::uint64_t;

/// Tuning knobs for membership, windows, and the failure detector.  All
/// times are simulated seconds.
struct GroupConfig {
  /// Ring-buffer send-window slots per sender (max unstable messages).
  std::uint32_t window_size = 8;
  /// Heartbeat multicast period per live member.
  double heartbeat_period_s = 50e-6;
  /// Detector sweep cadence (suspicion + eviction decisions).
  double sweep_period_s = 50e-6;
  /// Minimum silence before any suspicion (floor under the phi rule).
  /// Eight heartbeat periods by default: wormhole congestion routinely
  /// delays a heartbeat by several periods, and a false eviction is far
  /// more disruptive than late detection.
  double suspicion_min_timeout_s = 400e-6;
  /// Suspect after this many multiples of the smoothed heartbeat
  /// interarrival without news (phi/timeout-style accrual).
  double phi_threshold = 6.0;
  /// Retry policy for application sends and view-install messages.
  RetryPolicy retry{};

  /// Throws std::invalid_argument naming the offending field.
  void validate() const;
};

/// One installed membership view.
struct MembershipView {
  ViewId id = 0;
  std::vector<topo::NodeId> members;  // sorted ascending
  double installed_at_s = 0.0;
  /// fault::FaultState epoch at install time -- the shared timeline
  /// between injected faults and detector-driven evictions.
  std::uint64_t fault_epoch = 0;

  [[nodiscard]] bool contains(topo::NodeId n) const;
  /// Lowest-id member; sends the view-install announcement.
  [[nodiscard]] topo::NodeId coordinator() const { return members.front(); }
};

/// Terminal outcome of one group send at one destination.
enum class GroupOutcome : std::uint8_t {
  kDeliveredInView,  // delivered while the receiver was still a member
  kEvicted,          // receiver evicted/left before the delivery counted
  kDropped,          // retry budget exhausted
  kUnreachable,      // no usable path at routing time (partition)
};

/// Final report for one group send (fires exactly once per send).
struct GroupSendReport {
  GroupId group = 0;
  topo::NodeId sender = topo::kInvalidNode;
  SeqNum seq = 0;
  /// View the message was sent in (destinations = its members minus the
  /// sender at launch time).
  ViewId view = 0;

  struct Destination {
    topo::NodeId node = topo::kInvalidNode;
    GroupOutcome outcome = GroupOutcome::kDropped;
    double latency_s = -1.0;  // -1 unless delivered in view
  };
  std::vector<Destination> destinations;  // sorted by node id

  /// True when every destination still in the group at stability time was
  /// delivered in view (the virtual-synchrony success case).
  bool stable_in_view = false;
  double sent_at_s = 0.0;
  double stable_at_s = 0.0;

  [[nodiscard]] std::size_t count(GroupOutcome o) const {
    std::size_t n = 0;
    for (const Destination& d : destinations) n += d.outcome == o ? 1 : 0;
    return n;
  }
  [[nodiscard]] std::size_t delivered_in_view() const {
    return count(GroupOutcome::kDeliveredInView);
  }
};

class GroupService {
 public:
  /// Fired once per send with the final per-destination outcome.
  using ReportFn = std::function<void(const GroupSendReport&)>;
  /// In-order application delivery: fired at `receiver` for (sender, seq)
  /// only after every earlier seq from that sender was delivered or
  /// terminally failed, and only while `receiver` is a live member.
  using AppDeliveryFn = std::function<void(GroupId group, topo::NodeId receiver,
                                           topo::NodeId sender, SeqNum seq, ViewId view)>;
  /// Fired on every view install (joins, leaves, evictions).
  using ViewFn = std::function<void(GroupId group, const MembershipView& view)>;

  /// The service must be fault-router wired (reliable_capable()); throws
  /// std::logic_error otherwise, std::invalid_argument on a bad config.
  explicit GroupService(MulticastService& service, GroupConfig config = {});

  /// Create a group over `members` (>= 1 distinct nodes) and install view
  /// 1; heartbeats and detector sweeps start immediately.
  GroupId create_group(std::vector<topo::NodeId> members);

  /// Install a new view with `node` added / removed.  Joining an existing
  /// member or leaving a non-member throws std::invalid_argument.
  void join(GroupId group, topo::NodeId node);
  void leave(GroupId group, topo::NodeId node);

  /// Multicast from `sender` (a current member; throws otherwise) to the
  /// group.  Returns the per-sender sequence number.  When the sender's
  /// window is full the send queues (a window stall) and launches as the
  /// window advances.
  SeqNum send(GroupId group, topo::NodeId sender, ReportFn on_report = {});

  /// Subset multicast (the collective-phase hook): like send(), but
  /// targeted at an explicit destination set, which must be current
  /// members distinct from the sender (throws std::invalid_argument
  /// otherwise; duplicates are deduped).  The send consumes a normal
  /// window slot and per-sender sequence number; members outside the
  /// destination set observe the sequence as a hole in the sender's
  /// in-order stream (plugged at launch, so ordering never wedges on a
  /// message they were never owed).  Destinations evicted while the send
  /// is queued are dropped at launch time.
  SeqNum send_to(GroupId group, topo::NodeId sender, std::vector<topo::NodeId> dests,
                 ReportFn on_report = {});

  void on_app_delivery(AppDeliveryFn fn) { app_delivery_ = std::move(fn); }
  void on_view_change(ViewFn fn) { view_change_ = std::move(fn); }

  /// Phase hooks (multi-subscriber, for layers like coll::Collective that
  /// ride on the group machinery without stealing the application's
  /// on_app_delivery/on_view_change slots).  Handles are stable; remove
  /// with the matching remove_*.  Delivery hooks fire after app_delivery_
  /// for every in-order delivery.  View-settled hooks fire after a view
  /// install has fully settled: evicted destinations of in-flight
  /// messages hold terminal outcomes, their reports have fired, and
  /// sender windows have advanced -- the safe point to decide a
  /// view-change restart.
  std::uint64_t add_delivery_hook(AppDeliveryFn fn);
  void remove_delivery_hook(std::uint64_t handle);
  std::uint64_t add_view_settled_hook(ViewFn fn);
  void remove_view_settled_hook(std::uint64_t handle);

  /// Stop heartbeat and detector loops (so a bounded simulation drains);
  /// in-flight sends still run to their terminal reports.
  void stop() { stopped_ = true; }

  [[nodiscard]] const MembershipView& view(GroupId group) const;
  /// Every view ever installed, in id order (view 1 first).
  [[nodiscard]] const std::vector<MembershipView>& view_history(GroupId group) const;
  [[nodiscard]] std::size_t num_groups() const { return groups_.size(); }

  /// Window introspection (0 for unknown senders).
  [[nodiscard]] std::size_t in_flight(GroupId group, topo::NodeId sender) const;
  [[nodiscard]] std::size_t queued(GroupId group, topo::NodeId sender) const;
  /// Senders (across all groups) currently stalled with a non-empty queue.
  [[nodiscard]] std::uint64_t stalled_senders() const { return stalled_senders_; }

  /// Monotonic counters mirrored into the registry (see set_metrics);
  /// queryable without one for tests.
  struct Stats {
    std::uint64_t view_installs = 0;
    std::uint64_t joins = 0;
    std::uint64_t leaves = 0;
    std::uint64_t suspicions = 0;
    std::uint64_t evictions = 0;
    std::uint64_t false_positive_evictions = 0;
    std::uint64_t sends = 0;
    std::uint64_t window_stalls = 0;  // sends that had to queue
    std::uint64_t heartbeats = 0;
    std::uint64_t view_messages = 0;
    std::uint64_t delivered_in_view = 0;
    std::uint64_t delivered_filtered = 0;  // deliveries discarded (evicted/stale)
    std::uint64_t dropped = 0;
    std::uint64_t unreachable = 0;
    std::uint64_t app_deliveries = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Register group.* instruments on `registry` (nullptr detaches):
  /// counters mirroring Stats, gauge group.window_stalled, histograms
  /// group.stability_latency_s and group.delivery_latency_s.
  void set_metrics(obs::MetricsRegistry* registry);

  [[nodiscard]] MulticastService& service() { return *service_; }
  [[nodiscard]] const GroupConfig& config() const { return config_; }

 private:
  struct HeartbeatTrack {
    double last_heard = 0.0;
    double smoothed_interval = 0.0;  // EWMA of heartbeat interarrival
    bool suspected = false;          // current suspicion (for edge counting)
  };

  /// One in-flight (unstable) send occupying a window slot.
  struct PendingMsg {
    SeqNum seq = 0;
    ViewId view = 0;
    double sent_at = 0.0;
    ReportFn on_report;
    /// Destination -> (member incarnation at launch, outcome).  An owed
    /// destination is one whose outcome is still pending.  The set is
    /// fixed at launch, so references into it stay valid across callbacks
    /// (FlatMap only invalidates on insert/erase).
    struct Dest {
      std::uint64_t incarnation = 0;
      bool terminal = false;
      GroupOutcome outcome = GroupOutcome::kDropped;
      double latency_s = -1.0;
    };
    util::FlatMap<topo::NodeId, Dest> dests;
    std::size_t open = 0;  // dests not yet terminal
  };

  struct QueuedSend {
    SeqNum seq = 0;
    ReportFn on_report;
    /// Subset sends queue their target set; empty + subset=false means
    /// "whole view at launch time".
    std::vector<topo::NodeId> dests;
    bool subset = false;
  };

  struct SenderState {
    SeqNum next_seq = 0;
    SeqNum lowest_unstable = 0;
    /// Ring buffer of window_size slots, indexed seq % window_size; a
    /// non-null slot is an unstable message still holding its slot.
    std::vector<std::shared_ptr<PendingMsg>> ring;
    std::deque<QueuedSend> queue;  // sends waiting for window space
    bool counted_stalled = false;  // contributes to stalled_senders_
  };

  /// Per-sender in-order delivery state at one receiver.
  struct ReceiverStream {
    SeqNum next = 0;                            // next seq to surface
    util::FlatMap<SeqNum, bool> pending;        // seq -> deliverable (false = hole)
  };

  /// Per-group state.  All associative members are FlatMaps (sorted
  /// vectors) so thousands of concurrent groups stay cache-dense; the
  /// price is that inserts invalidate references, which the .cpp handles
  /// by pre-populating per-member entries at view installs and re-finding
  /// entries after any callback boundary.
  struct Group {
    GroupId id = 0;
    MembershipView view;
    std::vector<MembershipView> history;
    /// Join incarnation per member (bumped on every join), so a delivery
    /// racing an evict+rejoin cannot count for the old incarnation.
    util::FlatMap<topo::NodeId, std::uint64_t> incarnation;
    util::FlatMap<topo::NodeId, SenderState> senders;
    /// observer -> subject -> heartbeat bookkeeping.
    util::FlatMap<topo::NodeId, util::FlatMap<topo::NodeId, HeartbeatTrack>> detector;
    /// (receiver, sender) -> in-order stream state.
    util::FlatMap<std::pair<topo::NodeId, topo::NodeId>, ReceiverStream> streams;
  };

  Group& group_at(GroupId group);
  const Group& group_at(GroupId group) const;

  /// Install `members` as the next view of `g` (sorted, deduped by the
  /// caller); announces via a reliable multicast from the coordinator and
  /// re-evaluates in-flight messages against the new membership.
  void install_view(Group& g, std::vector<topo::NodeId> members);

  /// Reset the in-order streams around `joiner` after it (re)joined.
  /// Re-entrant: the same node joining in two consecutive view installs
  /// (evict + rejoin before it heard any sequence) yields the same state
  /// as a single join, and a continuous member's progress through the
  /// joiner's still-in-flight sends is never discarded (the pre-fix code
  /// clobbered peers' streams to the joiner's next_seq, silently dropping
  /// messages launched while both were members).
  void reset_joiner_streams(Group& g, topo::NodeId joiner);

  void start_heartbeat(GroupId group, topo::NodeId node, std::uint64_t incarnation);
  void heartbeat_tick(GroupId group, topo::NodeId node, std::uint64_t incarnation);
  void schedule_sweep(GroupId group);
  void sweep_tick(GroupId group);
  void detector_sweep(Group& g);
  void record_heartbeat(Group& g, topo::NodeId observer, topo::NodeId subject, double at);

  SeqNum enqueue_or_launch(Group& g, topo::NodeId sender, ReportFn on_report,
                           std::vector<topo::NodeId> dests, bool subset);
  void launch(Group& g, topo::NodeId sender, SeqNum seq, ReportFn on_report,
              const std::vector<topo::NodeId>& subset_dests, bool subset);
  void classify_delivery(GroupId group, SeqNum seq, topo::NodeId sender,
                         topo::NodeId dest, double latency);
  void reliable_report(GroupId group, topo::NodeId sender, SeqNum seq,
                       const DeliveryReport& report);
  void finish_destination(Group& g, topo::NodeId sender, PendingMsg& msg,
                          topo::NodeId dest, GroupOutcome outcome, double latency);
  /// Advance the window past stable slots; launch queued sends; fire the
  /// report of every message that just became stable.  Looks the sender
  /// state up fresh after every callback boundary (FlatMap references do
  /// not survive re-entrant sends from callbacks).
  void advance_window(Group& g, topo::NodeId sender);
  void fire_report(Group& g, topo::NodeId sender, const PendingMsg& msg);
  /// Feed (sender, seq, deliverable) into the receiver's in-order stream.
  void stream_update(Group& g, topo::NodeId receiver, topo::NodeId sender, SeqNum seq,
                     bool deliverable);
  void notify_delivery(GroupId group, topo::NodeId receiver, topo::NodeId sender,
                       SeqNum seq, ViewId view);
  void update_stalled(SenderState& st);

  struct Metrics {
    obs::Counter* view_installs = nullptr;
    obs::Counter* joins = nullptr;
    obs::Counter* leaves = nullptr;
    obs::Counter* suspicions = nullptr;
    obs::Counter* evictions = nullptr;
    obs::Counter* false_positives = nullptr;
    obs::Counter* sends = nullptr;
    obs::Counter* window_stalls = nullptr;
    obs::Counter* heartbeats = nullptr;
    obs::Counter* view_messages = nullptr;
    obs::Counter* delivered_in_view = nullptr;
    obs::Counter* delivered_filtered = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* unreachable = nullptr;
    obs::Counter* app_deliveries = nullptr;
    obs::Gauge* window_stalled = nullptr;
    obs::Histogram* stability_latency_s = nullptr;
    obs::Histogram* delivery_latency_s = nullptr;

    [[nodiscard]] bool active() const { return view_installs != nullptr; }
  };

  MulticastService* service_;
  evsim::Scheduler* sched_;
  GroupConfig config_;
  /// Group ids are dense (1, 2, ...) and never recycled, so per-group
  /// state lives in a flat vector indexed id - 1; unique_ptr keeps Group
  /// addresses stable across create_group while the vector grows.
  std::vector<std::unique_ptr<Group>> groups_;
  GroupId next_group_ = 1;
  bool stopped_ = false;
  std::uint64_t stalled_senders_ = 0;
  AppDeliveryFn app_delivery_;
  ViewFn view_change_;
  util::FlatMap<std::uint64_t, AppDeliveryFn> delivery_hooks_;
  util::FlatMap<std::uint64_t, ViewFn> view_settled_hooks_;
  std::uint64_t next_hook_ = 1;
  Stats stats_;
  Metrics metrics_;
};

}  // namespace mcnet::svc
