// Seeded churn workloads for group-membership experiments: a
// ChurnSchedule is a deterministic timeline of join / leave / crash /
// recover events drawn from a base seed, and schedule_churn() replays it
// against a GroupService -- joins and leaves through the membership API,
// crashes and recoveries through the network's fault plumbing, so
// detector-driven evictions and injected faults share one
// fault::FaultState epoch timeline.
#pragma once

#include <cstdint>
#include <vector>

#include "service/group_service.hpp"

namespace mcnet::evsim {
class Scheduler;
}

namespace mcnet::svc {

struct ChurnConfig {
  /// Events are drawn in [t_begin_s, t_end_s) with exponential gaps of
  /// mean 1 / events_per_s.
  double t_begin_s = 0.0;
  double t_end_s = 1e-3;
  double events_per_s = 10e3;
  /// Relative weights of the event kinds (all zero = no events).  Kinds
  /// that are infeasible at draw time (nothing to crash, nobody outside
  /// the group to join, ...) fall through to a feasible one.
  double join_weight = 1.0;
  double leave_weight = 1.0;
  double crash_weight = 1.0;
  double recover_weight = 1.0;
  std::uint64_t seed = 1;

  void validate() const;
};

struct ChurnEvent {
  enum class Kind : std::uint8_t { kJoin, kLeave, kCrash, kRecover };
  double time_s = 0.0;
  Kind kind = Kind::kJoin;
  topo::NodeId node = topo::kInvalidNode;
};

/// A fully materialised churn timeline (inspectable, replayable).
struct ChurnSchedule {
  std::vector<ChurnEvent> events;  // sorted by time

  /// Draw a schedule over a group that starts as `initial_members`; joins
  /// pull from `candidates` (nodes allowed to ever be members).  The
  /// generator tracks the simulated member and crashed sets so every
  /// event is feasible when replayed in order: it never leaves the group
  /// empty, never crashes an already-crashed node, and never joins a
  /// current member.
  [[nodiscard]] static ChurnSchedule random(const std::vector<topo::NodeId>& initial_members,
                                            const std::vector<topo::NodeId>& candidates,
                                            const ChurnConfig& config);

  [[nodiscard]] std::size_t count(ChurnEvent::Kind k) const {
    std::size_t n = 0;
    for (const ChurnEvent& e : events) n += e.kind == k ? 1 : 0;
    return n;
  }
};

/// Replay `schedule` against group `group` of `groups` on `sched`:
/// kJoin/kLeave call the GroupService membership API (skipping events the
/// live view has made redundant -- e.g. leaving a node the detector
/// already evicted); kCrash/kRecover call Network::fail_node() /
/// recover_node().
void schedule_churn(GroupService& groups, GroupId group, evsim::Scheduler& sched,
                    const ChurnSchedule& schedule);

}  // namespace mcnet::svc
