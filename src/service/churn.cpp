#include "service/churn.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <stdexcept>
#include <string>

#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "fault/fault_state.hpp"

namespace mcnet::svc {

void ChurnConfig::validate() const {
  if (!(t_end_s >= t_begin_s) || !std::isfinite(t_begin_s) || !std::isfinite(t_end_s)) {
    throw std::invalid_argument("ChurnConfig: t_end_s must be >= t_begin_s (got [" +
                                std::to_string(t_begin_s) + ", " +
                                std::to_string(t_end_s) + "))");
  }
  if (!(events_per_s > 0.0) || !std::isfinite(events_per_s)) {
    throw std::invalid_argument("ChurnConfig.events_per_s must be positive and finite (got " +
                                std::to_string(events_per_s) + ")");
  }
  const double weights[] = {join_weight, leave_weight, crash_weight, recover_weight};
  double total = 0.0;
  for (const double w : weights) {
    if (w < 0.0 || !std::isfinite(w)) {
      throw std::invalid_argument("ChurnConfig: event weights must be finite and >= 0");
    }
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("ChurnConfig: at least one event weight must be positive");
  }
}

ChurnSchedule ChurnSchedule::random(const std::vector<topo::NodeId>& initial_members,
                                    const std::vector<topo::NodeId>& candidates,
                                    const ChurnConfig& config) {
  config.validate();
  if (initial_members.empty()) {
    throw std::invalid_argument("ChurnSchedule::random: empty initial member set");
  }

  // Simulated state the generator threads through the draw so every event
  // is feasible when replayed in order.
  std::set<topo::NodeId> members(initial_members.begin(), initial_members.end());
  std::set<topo::NodeId> outside;
  for (const topo::NodeId c : candidates) {
    if (members.count(c) == 0) outside.insert(c);
  }
  std::set<topo::NodeId> crashed;

  evsim::Rng rng(evsim::derive_seed(config.seed, 0x6368726eULL));  // "chrn"
  ChurnSchedule out;
  double t = config.t_begin_s;
  for (;;) {
    t += rng.exponential(1.0 / config.events_per_s);
    if (t >= config.t_end_s) break;

    // Weighted kind draw, then fall through the kinds in weight order
    // until one is feasible; a draw with nothing feasible is skipped.
    struct Option {
      ChurnEvent::Kind kind;
      double weight;
    };
    Option options[] = {
        {ChurnEvent::Kind::kJoin, config.join_weight},
        {ChurnEvent::Kind::kLeave, config.leave_weight},
        {ChurnEvent::Kind::kCrash, config.crash_weight},
        {ChurnEvent::Kind::kRecover, config.recover_weight},
    };
    double total = 0.0;
    for (const Option& o : options) total += o.weight;
    double pick = rng.uniform(0.0, total);
    std::size_t first = 0;
    for (; first + 1 < std::size(options); ++first) {
      if (pick < options[first].weight) break;
      pick -= options[first].weight;
    }

    const auto sample = [&rng](const std::set<topo::NodeId>& s) {
      const std::uint32_t idx =
          rng.uniform_int(0, static_cast<std::uint32_t>(s.size()) - 1);
      return *std::next(s.begin(), idx);
    };
    const auto feasible = [&](ChurnEvent::Kind k) {
      switch (k) {
        case ChurnEvent::Kind::kJoin:
          return !outside.empty();
        case ChurnEvent::Kind::kLeave:
          // Keep the group non-empty; only voluntary leaves of live
          // members (a crashed member departs by eviction, not leave()).
          for (const topo::NodeId m : members) {
            if (crashed.count(m) == 0 && members.size() > 1) return true;
          }
          return false;
        case ChurnEvent::Kind::kCrash:
          for (const topo::NodeId m : members) {
            if (crashed.count(m) == 0 && members.size() > 1) return true;
          }
          return false;
        case ChurnEvent::Kind::kRecover:
          return !crashed.empty();
      }
      return false;
    };

    ChurnEvent ev;
    ev.time_s = t;
    bool found = false;
    for (std::size_t i = 0; i < std::size(options) && !found; ++i) {
      const ChurnEvent::Kind k = options[(first + i) % std::size(options)].kind;
      if (options[(first + i) % std::size(options)].weight <= 0.0) continue;
      if (!feasible(k)) continue;
      ev.kind = k;
      found = true;
    }
    if (!found) continue;

    switch (ev.kind) {
      case ChurnEvent::Kind::kJoin:
        ev.node = sample(outside);
        outside.erase(ev.node);
        members.insert(ev.node);
        break;
      case ChurnEvent::Kind::kLeave: {
        std::set<topo::NodeId> live;
        for (const topo::NodeId m : members) {
          if (crashed.count(m) == 0) live.insert(m);
        }
        ev.node = sample(live);
        members.erase(ev.node);
        outside.insert(ev.node);
        break;
      }
      case ChurnEvent::Kind::kCrash: {
        std::set<topo::NodeId> live;
        for (const topo::NodeId m : members) {
          if (crashed.count(m) == 0) live.insert(m);
        }
        ev.node = sample(live);
        crashed.insert(ev.node);
        // The detector will evict it; model that departure so the
        // generator's member set tracks the likely live view.
        members.erase(ev.node);
        outside.insert(ev.node);
        break;
      }
      case ChurnEvent::Kind::kRecover:
        ev.node = sample(crashed);
        crashed.erase(ev.node);
        break;
    }
    out.events.push_back(ev);
  }
  return out;
}

void schedule_churn(GroupService& groups, GroupId group, evsim::Scheduler& sched,
                    const ChurnSchedule& schedule) {
  for (const ChurnEvent& ev : schedule.events) {
    sched.schedule_at(ev.time_s, [&groups, group, ev] {
      worm::Network& net = groups.service().network();
      switch (ev.kind) {
        case ChurnEvent::Kind::kJoin:
          // Skip if already a member (e.g. a crash the detector never
          // evicted followed by recover+join).
          if (!groups.view(group).contains(ev.node) &&
              !net.fault_state()->node_failed(ev.node)) {
            groups.join(group, ev.node);
          }
          break;
        case ChurnEvent::Kind::kLeave:
          // The detector may have (falsely) evicted the node already.
          if (groups.view(group).contains(ev.node) &&
              groups.view(group).members.size() > 1) {
            groups.leave(group, ev.node);
          }
          break;
        case ChurnEvent::Kind::kCrash:
          net.fail_node(ev.node);
          break;
        case ChurnEvent::Kind::kRecover:
          net.recover_node(ev.node);
          break;
      }
    });
  }
}

}  // namespace mcnet::svc
