// System-supported multicast service (the Section 8.2 "future research"
// item made concrete): a process-facing message-passing interface layered
// over the routing algorithms and the wormhole simulator.
//
// The service owns a Network and a routing policy; user code calls
// multicast()/unicast() and receives completion callbacks, without touching
// worms or channels.  Collective operations (barrier, broadcast, gather)
// are built on the same primitive, mirroring how the paper motivates
// multicast with barrier synchronisation and data distribution.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "core/multicast.hpp"
#include "evsim/scheduler.hpp"
#include "wormhole/network.hpp"

namespace mcnet::mcast {
class Router;
}

namespace mcnet::svc {

/// Routing policy: produce a multicast route for a request (bind a
/// RoutingSuite + Algorithm, an adaptive router, ...).
using RoutePolicy = std::function<mcast::MulticastRoute(const mcast::MulticastRequest&)>;

/// Spec conversion policy (handles channel-copy pinning per topology).
using SpecPolicy = std::function<std::vector<worm::WormSpec>(const mcast::MulticastRoute&)>;

class MulticastService {
 public:
  /// Wire the service onto an existing scheduler; `params` configure the
  /// simulated hardware.  Prefer the Router overload; this one remains as
  /// the escape hatch for fully custom policies.
  MulticastService(const topo::Topology& topology, const worm::WormholeParams& params,
                   evsim::Scheduler& sched, RoutePolicy route, SpecPolicy specs);

  /// Route everything through a polymorphic Router (e.g. from
  /// make_router()/make_caching_router()); the router must outlive the
  /// service and its channel-copy count drives worm-spec conversion.
  MulticastService(const mcast::Router& router, const worm::WormholeParams& params,
                   evsim::Scheduler& sched);

  using Handle = std::uint64_t;
  /// Callback fired once per destination as the full message arrives.
  using DeliveryFn = std::function<void(topo::NodeId destination, double latency_s)>;
  /// Callback fired when every destination has the message and the tail
  /// has drained.
  using DoneFn = std::function<void(double latency_s)>;

  /// Send `request` (validated); callbacks are optional.
  Handle multicast(const mcast::MulticastRequest& request, DeliveryFn on_delivery = {},
                   DoneFn on_done = {});

  /// One-destination convenience.
  Handle unicast(topo::NodeId source, topo::NodeId destination, DoneFn on_done = {});

  /// Barrier: every node reports to `root` (unicast); once all reports are
  /// in, `root` multicasts the release; `on_released` fires when the last
  /// node is released.  Report payloads use the same message size as data.
  void barrier(topo::NodeId root, std::function<void(double finish_time_s)> on_released);

  /// Broadcast from `root` to all other nodes.
  Handle broadcast(topo::NodeId root, DoneFn on_done = {});

  /// Gather: every other node sends one message to `root`; `on_done` fires
  /// when the last one arrives.
  void gather(topo::NodeId root, std::function<void(double finish_time_s)> on_done);

  [[nodiscard]] const worm::Network& network() const { return *network_; }
  [[nodiscard]] worm::Network& network() { return *network_; }

 private:
  const topo::Topology* topology_;
  evsim::Scheduler* sched_;
  std::unique_ptr<worm::Network> network_;
  RoutePolicy route_;
  SpecPolicy specs_;

  struct Pending {
    DeliveryFn on_delivery;
    DoneFn on_done;
  };
  std::unordered_map<std::uint64_t, Pending> pending_;
};

}  // namespace mcnet::svc
