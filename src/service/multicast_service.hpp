// System-supported multicast service (the Section 8.2 "future research"
// item made concrete): a process-facing message-passing interface layered
// over the routing algorithms and the wormhole simulator.
//
// The service owns a Network and a routing policy; user code calls
// multicast()/unicast() and receives completion callbacks, without touching
// worms or channels.  Collective operations (barrier, broadcast, gather)
// are built on the same primitive, mirroring how the paper motivates
// multicast with barrier synchronisation and data distribution.
//
// Under failures (see fault/), multicast_reliable() degrades gracefully
// instead of hanging: every attempt carries a timeout (expiry aborts the
// attempt's worms), dropped destinations are retried with exponential
// backoff and re-routed around whatever has failed since, and callers get
// a DeliveryReport naming each destination delivered / dropped /
// unreachable.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>

#include "core/multicast.hpp"
#include "evsim/scheduler.hpp"
#include "wormhole/network.hpp"

namespace mcnet::mcast {
class Router;
}
namespace mcnet::fault {
class FaultAwareRouter;
}
namespace mcnet::obs {
class MetricsRegistry;
class Counter;
}

namespace mcnet::svc {

/// Routing policy: produce a multicast route for a request (bind a
/// RoutingSuite + Algorithm, an adaptive router, ...).
using RoutePolicy = std::function<mcast::MulticastRoute(const mcast::MulticastRequest&)>;

/// Spec conversion policy (handles channel-copy pinning per topology).
using SpecPolicy = std::function<std::vector<worm::WormSpec>(const mcast::MulticastRoute&)>;

/// Retry/backoff policy for multicast_reliable().  All times are simulated
/// seconds; the backoff sequence (jitter included) is fully determined by
/// the policy and the operation id, so runs replay exactly.
struct RetryPolicy {
  /// Total attempts per destination (1 = no retry).
  std::uint32_t max_attempts = 4;
  /// Per-attempt timeout: when it expires, the attempt's remaining worms
  /// are aborted and the undelivered destinations move to retry.
  double timeout_s = 500e-6;
  /// Delay before the first retry; attempt n waits
  /// backoff_initial_s * backoff_factor^(n-1).
  double backoff_initial_s = 50e-6;
  double backoff_factor = 2.0;
  /// Retry jitter fraction in [0, 1): each backoff delay is scaled by a
  /// factor drawn uniformly from [1 - jitter, 1 + jitter) on a stream
  /// seeded by (jitter_seed, operation id).  Senders whose messages drop
  /// at the same instant then retry desynchronised instead of re-colliding
  /// in lock-step (self-incast), while every run still replays exactly.
  double jitter = 0.0;
  std::uint64_t jitter_seed = 0x6d636e6574ULL;  // "mcnet"

  /// Throws std::invalid_argument naming the offending field when the
  /// policy cannot drive a terminating retry loop: max_attempts == 0,
  /// non-positive (or non-finite) timeout_s / backoff_initial_s,
  /// backoff_factor < 1, or jitter outside [0, 1).
  void validate() const;
};

/// Per-destination outcome of a reliable multicast.
struct DeliveryReport {
  enum class Status : std::uint8_t {
    kDelivered,    // message arrived (possibly after retries)
    kDropped,      // every attempt failed; retry budget exhausted
    kUnreachable,  // no usable path existed at routing time (partition)
  };

  struct Destination {
    topo::NodeId node = topo::kInvalidNode;
    Status status = Status::kDropped;
    /// Attempts spent on this destination (the successful one included).
    std::uint32_t attempts = 0;
    /// Delivery latency of the successful attempt (-1 when not delivered),
    /// measured from that attempt's injection.
    double latency_s = -1.0;
  };

  /// Sorted by node id.
  std::vector<Destination> destinations;
  /// Highest attempt number any destination consumed.
  std::uint32_t attempts_used = 0;
  /// Simulated time the report was finalised.
  double finished_at_s = 0.0;

  [[nodiscard]] std::size_t count(Status s) const {
    std::size_t n = 0;
    for (const Destination& d : destinations) n += d.status == s ? 1 : 0;
    return n;
  }
  [[nodiscard]] std::size_t delivered() const { return count(Status::kDelivered); }
  [[nodiscard]] std::size_t dropped() const { return count(Status::kDropped); }
  [[nodiscard]] std::size_t unreachable() const { return count(Status::kUnreachable); }
  [[nodiscard]] bool all_delivered() const { return delivered() == destinations.size(); }
};

class MulticastService {
 public:
  /// Wire the service onto an existing scheduler; `params` configure the
  /// simulated hardware.  Prefer the Router overload; this one remains as
  /// the escape hatch for fully custom policies.
  MulticastService(const topo::Topology& topology, const worm::WormholeParams& params,
                   evsim::Scheduler& sched, RoutePolicy route, SpecPolicy specs);

  /// Route everything through a polymorphic Router (e.g. from
  /// make_router()/make_caching_router()); the router must outlive the
  /// service and its channel-copy count drives worm-spec conversion.
  MulticastService(const mcast::Router& router, const worm::WormholeParams& params,
                   evsim::Scheduler& sched);

  /// Failure-aware wiring: the service's Network shares the router's
  /// FaultState, and multicast_reliable() becomes available.  The router
  /// must outlive the service.
  MulticastService(const fault::FaultAwareRouter& router,
                   const worm::WormholeParams& params, evsim::Scheduler& sched);

  using Handle = std::uint64_t;
  /// Callback fired once per destination as the full message arrives.
  using DeliveryFn = std::function<void(topo::NodeId destination, double latency_s)>;
  /// Callback fired when every destination has the message and the tail
  /// has drained.
  using DoneFn = std::function<void(double latency_s)>;
  /// Callback fired once per reliable multicast with the final report.
  using ReportFn = std::function<void(const DeliveryReport&)>;

  /// Send `request` (normalised: duplicate destinations deduped, source in
  /// the destination set rejected); callbacks are optional.
  Handle multicast(const mcast::MulticastRequest& request, DeliveryFn on_delivery = {},
                   DoneFn on_done = {});

  /// Batch send: all requests are routed in one Router::route_many call
  /// (shared normalization scratch, grouped cache lookups, arena-backed
  /// batch) and then injected in request order.  Handle i corresponds to
  /// requests[i]; the optional callbacks are attached to every message
  /// (on_delivery already receives the destination, and handles let callers
  /// correlate on_done).  Services built with a custom RoutePolicy fall
  /// back to the scalar loop, so behaviour is identical either way.
  std::vector<Handle> multicast_many(std::span<const mcast::MulticastRequest> requests,
                                     DeliveryFn on_delivery = {}, DoneFn on_done = {});

  /// Fault-tolerant send: per-attempt timeout, bounded retry with
  /// exponential backoff for dropped destinations, unreachable reporting
  /// for partitioned ones.  `on_report` fires exactly once, when every
  /// destination reached a terminal status; the simulation never hangs on
  /// a reliable message.  `on_delivery` (optional) fires once per
  /// destination at the moment its first counted delivery lands, before
  /// the final report.  Requires the FaultAwareRouter constructor (throws
  /// std::logic_error otherwise).  Returns an operation id.
  std::uint64_t multicast_reliable(const mcast::MulticastRequest& request,
                                   ReportFn on_report, RetryPolicy policy = {},
                                   DeliveryFn on_delivery = {});

  /// True when this service was wired through a FaultAwareRouter, i.e.
  /// multicast_reliable() is available.
  [[nodiscard]] bool reliable_capable() const { return fault_router_ != nullptr; }

  [[nodiscard]] evsim::Scheduler& scheduler() { return *sched_; }
  [[nodiscard]] const topo::Topology& topology() const { return *topology_; }

  /// One-destination convenience.
  Handle unicast(topo::NodeId source, topo::NodeId destination, DoneFn on_done = {});

  /// Barrier: every node reports to `root` (unicast); once all reports are
  /// in, `root` multicasts the release; `on_released` fires when the last
  /// node is released.  Report payloads use the same message size as data.
  void barrier(topo::NodeId root, std::function<void(double finish_time_s)> on_released);

  /// Broadcast from `root` to all other nodes.
  Handle broadcast(topo::NodeId root, DoneFn on_done = {});

  /// Gather: every other node sends one message to `root`; `on_done` fires
  /// when the last one arrives.
  void gather(topo::NodeId root, std::function<void(double finish_time_s)> on_done);

  [[nodiscard]] const worm::Network& network() const { return *network_; }
  [[nodiscard]] worm::Network& network() { return *network_; }

  /// Register service-level counters on `registry` (nullptr detaches):
  /// service.multicasts, service.retries (re-attempts after drops),
  /// service.timeouts (attempts aborted by expiry), service.reports
  /// (reliable operations finalised), service.delivered / .dropped /
  /// .unreachable (per-destination terminal outcomes).  The owned Network
  /// registers its own instruments on the same registry.
  void set_metrics(obs::MetricsRegistry* registry);

 private:
  struct ReliableOp;     // one reliable multicast (defined in the .cpp)
  struct AttemptTrack;   // one attempt of it

  void reliable_attempt(const std::shared_ptr<ReliableOp>& op,
                        std::vector<topo::NodeId> destinations, std::uint32_t attempt);
  void reliable_attempt_done(const std::shared_ptr<ReliableOp>& op,
                             const std::shared_ptr<AttemptTrack>& att,
                             std::uint32_t attempt);
  static void reliable_finalize(ReliableOp& op, topo::NodeId node,
                                DeliveryReport::Status status, std::uint32_t attempt,
                                double latency_s);
  /// Fire the report once every destination is terminal.
  void reliable_maybe_report(const std::shared_ptr<ReliableOp>& op);

  struct Metrics {
    obs::Counter* multicasts = nullptr;
    obs::Counter* retries = nullptr;
    obs::Counter* timeouts = nullptr;
    obs::Counter* reports = nullptr;
    obs::Counter* delivered = nullptr;
    obs::Counter* dropped = nullptr;
    obs::Counter* unreachable = nullptr;

    [[nodiscard]] bool active() const { return multicasts != nullptr; }
  };

  const topo::Topology* topology_;
  evsim::Scheduler* sched_;
  std::unique_ptr<worm::Network> network_;
  RoutePolicy route_;
  SpecPolicy specs_;
  /// Set by the Router constructors; enables the multicast_many batch path.
  const mcast::Router* router_ = nullptr;
  const fault::FaultAwareRouter* fault_router_ = nullptr;
  std::uint64_t next_reliable_id_ = 0;
  Metrics metrics_;

  struct Pending {
    DeliveryFn on_delivery;
    DoneFn on_done;
  };
  std::unordered_map<std::uint64_t, Pending> pending_;
};

}  // namespace mcnet::svc
