#include "service/multicast_service.hpp"

#include <stdexcept>

#include "core/router.hpp"
#include "wormhole/worm.hpp"

namespace mcnet::svc {

MulticastService::MulticastService(const mcast::Router& router,
                                   const worm::WormholeParams& params,
                                   evsim::Scheduler& sched)
    : MulticastService(
          router.topology(), params, sched,
          [&router](const mcast::MulticastRequest& r) { return router.route(r); },
          [&router](const mcast::MulticastRoute& r) { return router.specs(r); }) {}

MulticastService::MulticastService(const topo::Topology& topology,
                                   const worm::WormholeParams& params,
                                   evsim::Scheduler& sched, RoutePolicy route,
                                   SpecPolicy specs)
    : topology_(&topology),
      sched_(&sched),
      network_(std::make_unique<worm::Network>(topology, params, sched)),
      route_(std::move(route)),
      specs_(std::move(specs)) {
  worm::NetworkHooks hooks;
  hooks.on_delivery = [this](std::uint64_t msg, topo::NodeId dest, double latency) {
    const auto it = pending_.find(msg);
    if (it != pending_.end() && it->second.on_delivery) it->second.on_delivery(dest, latency);
  };
  hooks.on_message_done = [this](std::uint64_t msg, double latency) {
    const auto it = pending_.find(msg);
    if (it == pending_.end()) return;
    // Detach before invoking: the callback may send again.
    const DoneFn done = std::move(it->second.on_done);
    pending_.erase(it);
    if (done) done(latency);
  };
  network_->set_hooks(std::move(hooks));
}

MulticastService::Handle MulticastService::multicast(const mcast::MulticastRequest& request,
                                                     DeliveryFn on_delivery, DoneFn on_done) {
  request.validate(topology_->num_nodes());
  const mcast::MulticastRoute route = route_(request);
  const Handle h = network_->inject(specs_(route));
  if (on_delivery || on_done) {
    pending_[h] = Pending{std::move(on_delivery), std::move(on_done)};
  }
  return h;
}

MulticastService::Handle MulticastService::unicast(topo::NodeId source,
                                                   topo::NodeId destination, DoneFn on_done) {
  return multicast(mcast::MulticastRequest{source, {destination}}, {}, std::move(on_done));
}

void MulticastService::barrier(topo::NodeId root,
                               std::function<void(double)> on_released) {
  auto arrived = std::make_shared<std::uint32_t>(0);
  const std::uint32_t expected = topology_->num_nodes() - 1;
  auto released = std::move(on_released);
  for (topo::NodeId n = 0; n < topology_->num_nodes(); ++n) {
    if (n == root) continue;
    unicast(n, root, [this, arrived, expected, root, released](double) {
      if (++*arrived != expected) return;
      broadcast(root, [this, released](double) {
        if (released) released(sched_->now());
      });
    });
  }
}

MulticastService::Handle MulticastService::broadcast(topo::NodeId root, DoneFn on_done) {
  mcast::MulticastRequest req{root, {}};
  req.destinations.reserve(topology_->num_nodes() - 1);
  for (topo::NodeId d = 0; d < topology_->num_nodes(); ++d) {
    if (d != root) req.destinations.push_back(d);
  }
  return multicast(req, {}, std::move(on_done));
}

void MulticastService::gather(topo::NodeId root, std::function<void(double)> on_done) {
  auto arrived = std::make_shared<std::uint32_t>(0);
  const std::uint32_t expected = topology_->num_nodes() - 1;
  auto done = std::move(on_done);
  for (topo::NodeId n = 0; n < topology_->num_nodes(); ++n) {
    if (n == root) continue;
    unicast(n, root, [this, arrived, expected, done](double) {
      if (++*arrived == expected && done) done(sched_->now());
    });
  }
}

}  // namespace mcnet::svc
