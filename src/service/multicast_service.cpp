#include "service/multicast_service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>
#include <unordered_set>

#include "core/router.hpp"
#include "evsim/random.hpp"
#include "fault/fault_router.hpp"
#include "obs/metrics.hpp"
#include "wormhole/worm.hpp"

namespace mcnet::svc {

void RetryPolicy::validate() const {
  if (max_attempts == 0) {
    throw std::invalid_argument("RetryPolicy.max_attempts must be >= 1 (got 0)");
  }
  if (!(timeout_s > 0.0) || !std::isfinite(timeout_s)) {
    throw std::invalid_argument("RetryPolicy.timeout_s must be positive and finite (got " +
                                std::to_string(timeout_s) + ")");
  }
  if (!(backoff_initial_s > 0.0) || !std::isfinite(backoff_initial_s)) {
    throw std::invalid_argument(
        "RetryPolicy.backoff_initial_s must be positive and finite (got " +
        std::to_string(backoff_initial_s) + ")");
  }
  if (!(backoff_factor >= 1.0) || !std::isfinite(backoff_factor)) {
    throw std::invalid_argument("RetryPolicy.backoff_factor must be >= 1 (got " +
                                std::to_string(backoff_factor) + ")");
  }
  if (!(jitter >= 0.0 && jitter < 1.0)) {
    throw std::invalid_argument("RetryPolicy.jitter must be in [0, 1) (got " +
                                std::to_string(jitter) + ")");
  }
}

/// One reliable multicast from first attempt to final report.
struct MulticastService::ReliableOp {
  std::uint64_t id = 0;
  topo::NodeId source = 0;
  RetryPolicy policy;
  ReportFn on_report;
  DeliveryFn on_delivery;
  std::size_t total = 0;  // destinations awaiting a terminal status
  std::unordered_map<topo::NodeId, DeliveryReport::Destination> final_;
  std::uint32_t attempts_used = 0;
  bool reported = false;
  /// Per-operation jitter stream (used only when policy.jitter > 0).
  evsim::Rng jitter_rng{0};
};

/// Live state of one attempt: which destinations it still owes.
struct MulticastService::AttemptTrack {
  std::unordered_set<topo::NodeId> remaining;
  bool settled = false;  // attempt finished (done, or timed out and aborted)
  /// The timeout backstop event; cancelled outright when the attempt
  /// settles early, so no expired-timeout closure lingers in the kernel
  /// holding the op/track alive.
  evsim::EventId timeout;
};

void MulticastService::reliable_finalize(ReliableOp& op, topo::NodeId node,
                                         DeliveryReport::Status status,
                                         std::uint32_t attempt, double latency_s) {
  // First terminal status wins: a destination delivered on attempt n keeps
  // that attempt count and status even if a later code path re-finalizes it
  // (emplace never overwrites an existing entry).
  op.final_.emplace(node, DeliveryReport::Destination{node, status, attempt, latency_s});
}

MulticastService::MulticastService(const mcast::Router& router,
                                   const worm::WormholeParams& params,
                                   evsim::Scheduler& sched)
    : MulticastService(
          router.topology(), params, sched,
          [&router](const mcast::MulticastRequest& r) { return router.route(r); },
          [&router](const mcast::MulticastRoute& r) { return router.specs(r); }) {
  router_ = &router;
}

MulticastService::MulticastService(const fault::FaultAwareRouter& router,
                                   const worm::WormholeParams& params,
                                   evsim::Scheduler& sched)
    : MulticastService(static_cast<const mcast::Router&>(router), params, sched) {
  fault_router_ = &router;
  // Re-wire the network onto the router's FaultState so fail/recover calls
  // and routing decisions agree on the failure set.
  network_ = std::make_unique<worm::Network>(router.topology(), params, sched,
                                            router.fault_state());
  worm::NetworkHooks hooks;
  hooks.on_delivery = [this](std::uint64_t msg, topo::NodeId dest, double latency) {
    const auto it = pending_.find(msg);
    if (it != pending_.end() && it->second.on_delivery) it->second.on_delivery(dest, latency);
  };
  hooks.on_message_done = [this](std::uint64_t msg, double latency) {
    const auto it = pending_.find(msg);
    if (it == pending_.end()) return;
    const DoneFn done = std::move(it->second.on_done);
    pending_.erase(it);
    if (done) done(latency);
  };
  network_->set_hooks(std::move(hooks));
}

MulticastService::MulticastService(const topo::Topology& topology,
                                   const worm::WormholeParams& params,
                                   evsim::Scheduler& sched, RoutePolicy route,
                                   SpecPolicy specs)
    : topology_(&topology),
      sched_(&sched),
      network_(std::make_unique<worm::Network>(topology, params, sched)),
      route_(std::move(route)),
      specs_(std::move(specs)) {
  worm::NetworkHooks hooks;
  hooks.on_delivery = [this](std::uint64_t msg, topo::NodeId dest, double latency) {
    const auto it = pending_.find(msg);
    if (it != pending_.end() && it->second.on_delivery) it->second.on_delivery(dest, latency);
  };
  hooks.on_message_done = [this](std::uint64_t msg, double latency) {
    const auto it = pending_.find(msg);
    if (it == pending_.end()) return;
    // Detach before invoking: the callback may send again.
    const DoneFn done = std::move(it->second.on_done);
    pending_.erase(it);
    if (done) done(latency);
  };
  network_->set_hooks(std::move(hooks));
}

void MulticastService::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    network_->set_metrics(nullptr);
    return;
  }
  metrics_.multicasts = &registry->counter("service.multicasts");
  metrics_.retries = &registry->counter("service.retries");
  metrics_.timeouts = &registry->counter("service.timeouts");
  metrics_.reports = &registry->counter("service.reports");
  metrics_.delivered = &registry->counter("service.delivered");
  metrics_.dropped = &registry->counter("service.dropped");
  metrics_.unreachable = &registry->counter("service.unreachable");
  network_->set_metrics(registry);
}

MulticastService::Handle MulticastService::multicast(const mcast::MulticastRequest& request,
                                                     DeliveryFn on_delivery, DoneFn on_done) {
  if (metrics_.active()) metrics_.multicasts->inc();
  const mcast::MulticastRequest req = request.normalized(topology_->num_nodes());
  const mcast::MulticastRoute route = route_(req);
  // Register the callbacks under the id inject() is about to assign BEFORE
  // injecting: when every worm dies at injection time (route crossing
  // already-failed hardware), on_message_done fires synchronously inside
  // inject() and a late registration would silently drop the callback.
  const Handle h = network_->messages_injected();
  if (on_delivery || on_done) {
    pending_[h] = Pending{std::move(on_delivery), std::move(on_done)};
  }
  const Handle injected = network_->inject(specs_(route));
  (void)injected;  // == h: message ids are assigned sequentially
  return h;
}

std::vector<MulticastService::Handle> MulticastService::multicast_many(
    std::span<const mcast::MulticastRequest> requests, DeliveryFn on_delivery,
    DoneFn on_done) {
  std::vector<Handle> handles;
  handles.reserve(requests.size());
  if (metrics_.active() && !requests.empty()) metrics_.multicasts->inc(requests.size());
  if (router_ == nullptr) {
    // Custom RoutePolicy wiring has no batch router; the scalar loop keeps
    // behaviour identical.
    for (const mcast::MulticastRequest& request : requests) {
      const mcast::MulticastRequest req = request.normalized(topology_->num_nodes());
      const Handle h = network_->messages_injected();
      if (on_delivery || on_done) pending_[h] = Pending{on_delivery, on_done};
      (void)network_->inject(specs_(route_(req)));
      handles.push_back(h);
    }
    return handles;
  }
  const mcast::RouteBatch batch = router_->route_many(requests);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Handle h = network_->messages_injected();
    if (on_delivery || on_done) pending_[h] = Pending{on_delivery, on_done};
    (void)network_->inject(router_->batch_specs(batch, i));
    handles.push_back(h);
  }
  return handles;
}

std::uint64_t MulticastService::multicast_reliable(const mcast::MulticastRequest& request,
                                                   ReportFn on_report, RetryPolicy policy,
                                                   DeliveryFn on_delivery) {
  if (fault_router_ == nullptr) {
    throw std::logic_error(
        "multicast_reliable needs the FaultAwareRouter constructor (no fault state bound)");
  }
  policy.validate();

  const mcast::MulticastRequest req = request.normalized(topology_->num_nodes());
  auto op = std::make_shared<ReliableOp>();
  op->id = next_reliable_id_++;
  op->source = req.source;
  op->policy = policy;
  op->on_report = std::move(on_report);
  op->on_delivery = std::move(on_delivery);
  op->total = req.destinations.size();
  op->jitter_rng = evsim::Rng(evsim::derive_seed(policy.jitter_seed, op->id));
  reliable_attempt(op, req.destinations, 1);
  return op->id;
}

void MulticastService::reliable_maybe_report(const std::shared_ptr<ReliableOp>& op) {
  if (op->reported || op->final_.size() < op->total) return;
  op->reported = true;
  if (metrics_.active()) {
    metrics_.reports->inc();
    for (const auto& [node, dest] : op->final_) {
      switch (dest.status) {
        case DeliveryReport::Status::kDelivered:
          metrics_.delivered->inc();
          break;
        case DeliveryReport::Status::kDropped:
          metrics_.dropped->inc();
          break;
        case DeliveryReport::Status::kUnreachable:
          metrics_.unreachable->inc();
          break;
      }
    }
  }
  DeliveryReport report;
  report.attempts_used = op->attempts_used;
  report.finished_at_s = sched_->now();
  report.destinations.reserve(op->final_.size());
  for (const auto& [node, dest] : op->final_) report.destinations.push_back(dest);
  std::sort(report.destinations.begin(), report.destinations.end(),
            [](const auto& a, const auto& b) { return a.node < b.node; });
  if (op->on_report) op->on_report(report);
}

void MulticastService::reliable_attempt(const std::shared_ptr<ReliableOp>& op,
                                        std::vector<topo::NodeId> destinations,
                                        std::uint32_t attempt) {
  op->attempts_used = std::max(op->attempts_used, attempt);
  if (attempt > 1 && metrics_.active()) metrics_.retries->inc();
  // Route around everything failed *now*; partitioned destinations are
  // terminal immediately (no point burning the retry budget on them).
  const fault::FaultRouteResult routed =
      fault_router_->route_with_faults({op->source, destinations});
  for (const topo::NodeId u : routed.unreachable) {
    reliable_finalize(*op, u, DeliveryReport::Status::kUnreachable, attempt, -1.0);
  }
  std::vector<topo::NodeId> routable;
  routable.reserve(destinations.size());
  {
    std::unordered_set<topo::NodeId> cut(routed.unreachable.begin(),
                                         routed.unreachable.end());
    for (const topo::NodeId d : destinations) {
      if (cut.find(d) == cut.end()) routable.push_back(d);
    }
  }
  if (routable.empty()) {
    reliable_maybe_report(op);
    return;
  }

  auto att = std::make_shared<AttemptTrack>();
  att->remaining.insert(routable.begin(), routable.end());

  std::vector<worm::WormSpec> specs = specs_(routed.route);
  if (specs.empty()) {
    // Defensive: nothing to inject means nothing can deliver; go straight
    // to the retry/terminal path instead of waiting out the timeout.
    reliable_attempt_done(op, att, attempt);
    return;
  }
  // Register before injecting: a fully-killed-at-injection message fires
  // on_message_done synchronously inside inject().
  const Handle h = network_->messages_injected();
  pending_[h] = Pending{
      [op, att, attempt](topo::NodeId dest, double latency) {
        if (att->settled || att->remaining.erase(dest) == 0) return;
        reliable_finalize(*op, dest, DeliveryReport::Status::kDelivered, attempt,
                             latency);
        if (op->on_delivery) op->on_delivery(dest, latency);
      },
      [this, op, att, attempt](double) { reliable_attempt_done(op, att, attempt); }};
  (void)network_->inject(std::move(specs));

  // Timeout backstop: whatever is still in flight when it expires is
  // aborted, which drops the undelivered destinations and fires the done
  // callback above.  This is what guarantees the simulation cannot hang on
  // a reliable message, deadlocked fallback routes included.
  att->timeout = sched_->schedule_in(op->policy.timeout_s, [this, att, h] {
    if (!att->settled) {
      if (metrics_.active()) metrics_.timeouts->inc();
      network_->abort_message(h);
    }
  });
}

void MulticastService::reliable_attempt_done(const std::shared_ptr<ReliableOp>& op,
                                             const std::shared_ptr<AttemptTrack>& att,
                                             std::uint32_t attempt) {
  att->settled = true;
  sched_->cancel(att->timeout);  // settled early: the backstop dies unfired
  std::vector<topo::NodeId> failed(att->remaining.begin(), att->remaining.end());
  std::sort(failed.begin(), failed.end());  // deterministic retry order
  if (failed.empty()) {
    reliable_maybe_report(op);
    return;
  }
  if (attempt >= op->policy.max_attempts) {
    for (const topo::NodeId d : failed) {
      reliable_finalize(*op, d, DeliveryReport::Status::kDropped, attempt, -1.0);
    }
    reliable_maybe_report(op);
    return;
  }
  double delay = op->policy.backoff_initial_s *
                 std::pow(op->policy.backoff_factor, static_cast<double>(attempt - 1));
  if (op->policy.jitter > 0.0) {
    // Deterministic desynchronisation: scale by [1 - j, 1 + j) from the
    // per-operation stream, so ops that dropped together retry spread out.
    delay *= op->jitter_rng.uniform(1.0 - op->policy.jitter, 1.0 + op->policy.jitter);
  }
  sched_->schedule_in(delay, [this, op, failed, attempt] {
    reliable_attempt(op, failed, attempt + 1);
  });
}

MulticastService::Handle MulticastService::unicast(topo::NodeId source,
                                                   topo::NodeId destination, DoneFn on_done) {
  return multicast(mcast::MulticastRequest{source, {destination}}, {}, std::move(on_done));
}

void MulticastService::barrier(topo::NodeId root,
                               std::function<void(double)> on_released) {
  auto arrived = std::make_shared<std::uint32_t>(0);
  const std::uint32_t expected = topology_->num_nodes() - 1;
  auto released = std::move(on_released);
  for (topo::NodeId n = 0; n < topology_->num_nodes(); ++n) {
    if (n == root) continue;
    unicast(n, root, [this, arrived, expected, root, released](double) {
      if (++*arrived != expected) return;
      broadcast(root, [this, released](double) {
        if (released) released(sched_->now());
      });
    });
  }
}

MulticastService::Handle MulticastService::broadcast(topo::NodeId root, DoneFn on_done) {
  mcast::MulticastRequest req{root, {}};
  req.destinations.reserve(topology_->num_nodes() - 1);
  for (topo::NodeId d = 0; d < topology_->num_nodes(); ++d) {
    if (d != root) req.destinations.push_back(d);
  }
  return multicast(req, {}, std::move(on_done));
}

void MulticastService::gather(topo::NodeId root, std::function<void(double)> on_done) {
  auto arrived = std::make_shared<std::uint32_t>(0);
  const std::uint32_t expected = topology_->num_nodes() - 1;
  auto done = std::move(on_done);
  for (topo::NodeId n = 0; n < topology_->num_nodes(); ++n) {
    if (n == root) continue;
    unicast(n, root, [this, arrived, expected, done](double) {
      if (++*arrived == expected && done) done(sched_->now());
    });
  }
}

}  // namespace mcnet::svc
