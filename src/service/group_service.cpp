#include "service/group_service.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "evsim/random.hpp"
#include "fault/fault_state.hpp"
#include "obs/metrics.hpp"

// FlatMap discipline (see core/flat_map.hpp): inserts invalidate
// references, and every user callback (app delivery, send reports, view
// hooks) can re-enter send()/join() and insert.  The rules this file
// follows throughout:
//  * per-member entries (senders, incarnation, detector rows) are
//    pre-populated at view installs, so the send path never inserts;
//  * any reference into a FlatMap is dropped before a callback fires and
//    re-found afterwards (advance_window / stream_update loop one step
//    per call-out);
//  * PendingMsg::dests is fixed at launch and only mutated in place, so
//    references into it stay valid across callbacks.

namespace mcnet::svc {
namespace {

// Seed stream for heartbeat phase staggering: members of a group start
// their heartbeat timers at distinct deterministic offsets inside one
// period, so heartbeats do not all collide on the same injection instant.
constexpr std::uint64_t kHeartbeatPhaseSeed = 0x67727068ULL;  // "grph"

// EWMA weight for heartbeat interarrival smoothing.
constexpr double kInterarrivalAlpha = 0.25;

}  // namespace

void GroupConfig::validate() const {
  if (window_size == 0) {
    throw std::invalid_argument("GroupConfig.window_size must be >= 1 (got 0)");
  }
  if (!(heartbeat_period_s > 0.0) || !std::isfinite(heartbeat_period_s)) {
    throw std::invalid_argument(
        "GroupConfig.heartbeat_period_s must be positive and finite (got " +
        std::to_string(heartbeat_period_s) + ")");
  }
  if (!(sweep_period_s > 0.0) || !std::isfinite(sweep_period_s)) {
    throw std::invalid_argument(
        "GroupConfig.sweep_period_s must be positive and finite (got " +
        std::to_string(sweep_period_s) + ")");
  }
  if (!(suspicion_min_timeout_s >= heartbeat_period_s) ||
      !std::isfinite(suspicion_min_timeout_s)) {
    throw std::invalid_argument(
        "GroupConfig.suspicion_min_timeout_s must be finite and >= heartbeat_period_s "
        "(got " +
        std::to_string(suspicion_min_timeout_s) + " vs period " +
        std::to_string(heartbeat_period_s) + ")");
  }
  if (!(phi_threshold >= 1.0) || !std::isfinite(phi_threshold)) {
    throw std::invalid_argument("GroupConfig.phi_threshold must be finite and >= 1 (got " +
                                std::to_string(phi_threshold) + ")");
  }
  retry.validate();
}

bool MembershipView::contains(topo::NodeId n) const {
  return std::binary_search(members.begin(), members.end(), n);
}

GroupService::GroupService(MulticastService& service, GroupConfig config)
    : service_(&service), sched_(&service.scheduler()), config_(config) {
  if (!service.reliable_capable()) {
    throw std::logic_error(
        "GroupService requires a fault-aware MulticastService "
        "(construct it from a FaultAwareRouter)");
  }
  config_.validate();
}

GroupService::Group& GroupService::group_at(GroupId group) {
  if (group == 0 || group > groups_.size()) {
    throw std::invalid_argument("GroupService: unknown group id " + std::to_string(group));
  }
  return *groups_[group - 1];
}

const GroupService::Group& GroupService::group_at(GroupId group) const {
  if (group == 0 || group > groups_.size()) {
    throw std::invalid_argument("GroupService: unknown group id " + std::to_string(group));
  }
  return *groups_[group - 1];
}

GroupId GroupService::create_group(std::vector<topo::NodeId> members) {
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  if (members.empty()) {
    throw std::invalid_argument("GroupService::create_group: empty member set");
  }
  const std::size_t num_nodes = service_->topology().num_nodes();
  for (const topo::NodeId m : members) {
    if (m >= num_nodes) {
      throw std::invalid_argument("GroupService::create_group: node " +
                                  std::to_string(m) + " outside topology (num_nodes=" +
                                  std::to_string(num_nodes) + ")");
    }
  }

  const GroupId id = next_group_++;
  groups_.push_back(std::make_unique<Group>());
  Group& g = *groups_.back();
  g.id = id;
  g.incarnation.reserve(members.size());
  for (const topo::NodeId m : members) g.incarnation[m] = 1;
  install_view(g, std::move(members));
  for (const topo::NodeId m : g.view.members) start_heartbeat(id, m, 1);
  schedule_sweep(id);
  return id;
}

void GroupService::join(GroupId group, topo::NodeId node) {
  Group& g = group_at(group);
  if (node >= service_->topology().num_nodes()) {
    throw std::invalid_argument("GroupService::join: node " + std::to_string(node) +
                                " outside topology");
  }
  if (g.view.contains(node)) {
    throw std::invalid_argument("GroupService::join: node " + std::to_string(node) +
                                " is already a member of group " + std::to_string(group));
  }
  stats_.joins++;
  if (metrics_.active()) metrics_.joins->inc();

  const std::uint64_t inc = ++g.incarnation[node];
  std::vector<topo::NodeId> members = g.view.members;
  members.push_back(node);

  reset_joiner_streams(g, node);

  install_view(g, std::move(members));
  start_heartbeat(group, node, inc);
}

void GroupService::reset_joiner_streams(Group& g, topo::NodeId joiner) {
  // Inbound floor at the joiner: it owes/expects nothing from before this
  // join, so each {joiner, m} stream floors at m's next_seq -- but only
  // ever forward.  A joiner appearing in two consecutive view installs
  // before hearing any sequence (evict + instant rejoin) must converge to
  // the same state as one join, not rewind past what the first reset
  // already established.
  const auto joiner_floor = [this, &g, joiner](topo::NodeId peer) -> SeqNum {
    // Outbound floor at peer m for a NEW {m, joiner} stream.  m was a
    // member continuously (its stream is only absent when the joiner
    // never reached it), so the joiner's unstable ring messages owed to m
    // are still coming: floor at the lowest such seq, or at the first
    // queued seq (queued sends launch against the post-join view, which
    // contains m).  Flooring at next_seq -- what the pre-fix code did for
    // every peer, existing stream or not -- silently discards all of
    // those when they arrive.
    const auto sit = g.senders.find(joiner);
    if (sit == g.senders.end()) return 0;
    const SenderState& st = sit->second;
    if (!st.ring.empty()) {
      for (SeqNum q = st.lowest_unstable; q < st.next_seq; ++q) {
        const auto& slot = st.ring[q % config_.window_size];
        if (slot && slot->seq == q && slot->dests.contains(peer)) return q;
      }
    }
    if (!st.queue.empty()) return st.queue.front().seq;
    return st.next_seq;
  };

  for (const topo::NodeId m : g.view.members) {
    if (m == joiner) continue;

    const auto sit = g.senders.find(m);
    const SeqNum m_floor = sit == g.senders.end() ? 0 : sit->second.next_seq;
    const auto in_key = std::make_pair(joiner, m);
    auto in_it = g.streams.find(in_key);
    if (in_it == g.streams.end()) {
      g.streams.try_emplace(in_key, ReceiverStream{m_floor, {}});
    } else {
      ReceiverStream& s = in_it->second;
      if (m_floor > s.next) s.next = m_floor;
      // Entries below the floor belong to the joiner's previous
      // incarnation; they can never surface and would only pin memory.
      const SeqNum floor = s.next;
      s.pending.retain([floor](const SeqNum& q, bool) { return q >= floor; });
    }

    // A continuous member's progress through the joiner's in-flight sends
    // is never reset -- only streams that do not exist yet are created.
    const auto out_key = std::make_pair(m, joiner);
    if (g.streams.find(out_key) == g.streams.end()) {
      g.streams.try_emplace(out_key, ReceiverStream{joiner_floor(m), {}});
    }
  }
}

void GroupService::leave(GroupId group, topo::NodeId node) {
  Group& g = group_at(group);
  if (!g.view.contains(node)) {
    throw std::invalid_argument("GroupService::leave: node " + std::to_string(node) +
                                " is not a member of group " + std::to_string(group));
  }
  stats_.leaves++;
  if (metrics_.active()) metrics_.leaves->inc();

  std::vector<topo::NodeId> members;
  members.reserve(g.view.members.size() - 1);
  for (const topo::NodeId m : g.view.members) {
    if (m != node) members.push_back(m);
  }
  install_view(g, std::move(members));
}

void GroupService::install_view(Group& g, std::vector<topo::NodeId> members) {
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  const double now = sched_->now();
  const auto& faults = *service_->network().fault_state();

  MembershipView v;
  v.id = g.view.id + 1;
  v.members = std::move(members);
  v.installed_at_s = now;
  v.fault_epoch = faults.epoch();
  g.view = v;
  g.history.push_back(v);
  stats_.view_installs++;
  if (metrics_.active()) metrics_.view_installs->inc();

  // Detector bookkeeping follows membership: departed members neither
  // observe nor are observed; fresh pairs start with a full grace period.
  g.detector.retain([&v](const topo::NodeId& observer, const auto&) {
    return v.contains(observer);
  });
  for (auto& [observer, row] : g.detector) {
    row.retain([&v](const topo::NodeId& subject, const HeartbeatTrack&) {
      return v.contains(subject);
    });
  }
  for (const topo::NodeId observer : v.members) {
    auto& row = g.detector[observer];
    row.reserve(v.members.size() - 1);
    for (const topo::NodeId subject : v.members) {
      if (subject == observer) continue;
      row.try_emplace(subject, HeartbeatTrack{now, 0.0, false});
    }
  }

  // Pre-populate sender-window state for every member, so the send path
  // (and everything re-entering it from callbacks) only ever *finds*
  // entries -- the FlatMap insert that would invalidate live references
  // happens here, at the view boundary, instead.
  for (const topo::NodeId m : v.members) {
    auto [sit, inserted] = g.senders.try_emplace(m);
    if (inserted) sit->second.ring.resize(config_.window_size);
  }

  // Announce the view as real traffic from the first live member (the
  // coordinator when it is alive), so view changes contend for channels
  // like any other control message.
  topo::NodeId announcer = topo::kInvalidNode;
  for (const topo::NodeId m : v.members) {
    if (!faults.node_failed(m)) {
      announcer = m;
      break;
    }
  }
  if (announcer != topo::kInvalidNode && v.members.size() >= 2) {
    std::vector<topo::NodeId> peers;
    peers.reserve(v.members.size() - 1);
    for (const topo::NodeId m : v.members) {
      if (m != announcer) peers.push_back(m);
    }
    stats_.view_messages++;
    if (metrics_.active()) metrics_.view_messages->inc();
    service_->multicast_reliable({announcer, std::move(peers)},
                                 [](const DeliveryReport&) {}, config_.retry);
  }

  if (view_change_) view_change_(g.id, g.view);

  // Re-evaluate in-flight messages: destinations no longer in the view
  // (or re-joined under a new incarnation) stop being owed, so a window
  // blocked on a dead receiver drains now instead of deadlocking.
  // Snapshot the unstable messages per sender first: finish_destination
  // fires callbacks that can re-enter send() and invalidate sender state.
  std::vector<topo::NodeId> sender_ids;
  sender_ids.reserve(g.senders.size());
  for (const auto& [node, st] : g.senders) sender_ids.push_back(node);
  for (const topo::NodeId s : sender_ids) {
    std::vector<std::shared_ptr<PendingMsg>> inflight;
    {
      const auto sit = g.senders.find(s);
      if (sit == g.senders.end() || sit->second.ring.empty()) continue;
      const SenderState& st = sit->second;
      for (SeqNum q = st.lowest_unstable; q < st.next_seq; ++q) {
        const auto& slot = st.ring[q % config_.window_size];
        if (slot && slot->seq == q) inflight.push_back(slot);
      }
    }
    for (const auto& msg : inflight) {
      for (auto& [dest, ds] : msg->dests) {
        if (ds.terminal) continue;
        const auto iit = g.incarnation.find(dest);
        const bool member = g.view.contains(dest) && iit != g.incarnation.end() &&
                            iit->second == ds.incarnation;
        if (!member) {
          finish_destination(g, s, *msg, dest, GroupOutcome::kEvicted, -1.0);
        }
      }
    }
    advance_window(g, s);
  }

  // The install has fully settled: evicted destinations hold terminal
  // outcomes, their reports fired, windows advanced.  Collective layers
  // restart from here.
  if (!view_settled_hooks_.empty()) {
    std::vector<std::uint64_t> handles;
    handles.reserve(view_settled_hooks_.size());
    for (const auto& [h, fn] : view_settled_hooks_) handles.push_back(h);
    for (const std::uint64_t h : handles) {
      const auto it = view_settled_hooks_.find(h);
      if (it == view_settled_hooks_.end()) continue;  // removed by an earlier hook
      ViewFn fn = it->second;  // copy: the hook may remove itself
      fn(g.id, g.view);
    }
  }
}

void GroupService::start_heartbeat(GroupId group, topo::NodeId node,
                                   std::uint64_t incarnation) {
  evsim::Rng rng(evsim::derive_seed(kHeartbeatPhaseSeed + group,
                                    (static_cast<std::uint64_t>(node) << 32) | incarnation));
  const double phase = rng.uniform(0.0, config_.heartbeat_period_s);
  sched_->schedule_in(phase, [this, group, node, incarnation] {
    heartbeat_tick(group, node, incarnation);
  });
}

void GroupService::heartbeat_tick(GroupId group, topo::NodeId node,
                                  std::uint64_t incarnation) {
  if (stopped_) return;
  if (group == 0 || group > groups_.size()) return;
  Group& g = *groups_[group - 1];
  // The timer dies with the membership incarnation; a rejoin starts a
  // fresh one.
  const auto iit = g.incarnation.find(node);
  if (!g.view.contains(node) || iit == g.incarnation.end() || iit->second != incarnation) {
    return;
  }

  const auto& faults = *service_->network().fault_state();
  // A failed node sends nothing (that silence is what the detector reads),
  // but the timer keeps ticking so a recovered member resumes.
  if (!faults.node_failed(node) && g.view.members.size() >= 2) {
    std::vector<topo::NodeId> peers;
    peers.reserve(g.view.members.size() - 1);
    for (const topo::NodeId m : g.view.members) {
      if (m != node) peers.push_back(m);
    }
    RetryPolicy hb;
    hb.max_attempts = 1;  // a lost heartbeat is information, not an error
    // A congestion-delayed heartbeat still proves liveness, so give the
    // attempt several periods -- but abort well before the suspicion
    // floor: fault-degraded routes may wedge the network (fault_router.hpp
    // gives no deadlock-freedom guarantee under failures), and the abort
    // is what releases the wedged channels so later heartbeats get
    // through before the silence threshold trips.
    hb.timeout_s = std::min(config_.suspicion_min_timeout_s,
                            2.0 * config_.heartbeat_period_s);
    hb.backoff_initial_s = config_.heartbeat_period_s;
    hb.backoff_factor = 1.0;
    stats_.heartbeats++;
    if (metrics_.active()) metrics_.heartbeats->inc();
    service_->multicast_reliable(
        {node, std::move(peers)}, [](const DeliveryReport&) {}, hb,
        [this, group, node](topo::NodeId dest, double /*latency_s*/) {
          if (group == 0 || group > groups_.size()) return;
          record_heartbeat(*groups_[group - 1], dest, node, sched_->now());
        });
  }

  sched_->schedule_in(config_.heartbeat_period_s, [this, group, node, incarnation] {
    heartbeat_tick(group, node, incarnation);
  });
}

void GroupService::record_heartbeat(Group& g, topo::NodeId observer, topo::NodeId subject,
                                    double at) {
  const auto rit = g.detector.find(observer);
  if (rit == g.detector.end()) return;  // observer no longer a member
  const auto tit = rit->second.find(subject);
  if (tit == rit->second.end()) return;  // subject no longer a member
  HeartbeatTrack& t = tit->second;
  const double interval = at - t.last_heard;
  if (interval > 0.0) {
    t.smoothed_interval = t.smoothed_interval == 0.0
                              ? interval
                              : (1.0 - kInterarrivalAlpha) * t.smoothed_interval +
                                    kInterarrivalAlpha * interval;
  }
  t.last_heard = at;
  t.suspected = false;  // hearing from the subject clears the suspicion
}

void GroupService::schedule_sweep(GroupId group) {
  sched_->schedule_in(config_.sweep_period_s, [this, group] { sweep_tick(group); });
}

void GroupService::sweep_tick(GroupId group) {
  if (stopped_) return;
  if (group == 0 || group > groups_.size()) return;
  Group& g = *groups_[group - 1];
  if (!g.view.members.empty()) detector_sweep(g);
  schedule_sweep(group);
}

void GroupService::detector_sweep(Group& g) {
  const double now = sched_->now();
  const auto& faults = *service_->network().fault_state();

  // Failed members neither gossip suspicions nor vote: their tracks have
  // frozen, so counting them would eventually indict everyone.
  util::FlatMap<topo::NodeId, std::size_t> votes;
  std::size_t live = 0;
  for (const topo::NodeId observer : g.view.members) {
    if (faults.node_failed(observer)) continue;
    ++live;
    const auto rit = g.detector.find(observer);
    if (rit == g.detector.end()) continue;
    auto& row = rit->second;
    for (const topo::NodeId subject : g.view.members) {
      if (subject == observer) continue;
      const auto tit = row.find(subject);
      if (tit == row.end()) continue;
      HeartbeatTrack& t = tit->second;
      const double silence = now - t.last_heard;
      const double threshold =
          std::max(config_.phi_threshold * t.smoothed_interval,
                   config_.suspicion_min_timeout_s);
      if (silence > threshold) {
        if (!t.suspected) {
          t.suspected = true;
          stats_.suspicions++;
          if (metrics_.active()) metrics_.suspicions->inc();
        }
        votes[subject]++;
      }
    }
  }

  // Evict subjects suspected by a strict majority of the live co-members.
  std::vector<topo::NodeId> evicted;
  for (const auto& [subject, n] : votes) {
    const std::size_t voters = live - (faults.node_failed(subject) ? 0 : 1);
    if (voters == 0) continue;
    if (n * 2 > voters) evicted.push_back(subject);
  }
  if (evicted.empty()) return;

  for (const topo::NodeId subject : evicted) {
    stats_.evictions++;
    if (metrics_.active()) metrics_.evictions->inc();
    if (!faults.node_failed(subject)) {
      stats_.false_positive_evictions++;
      if (metrics_.active()) metrics_.false_positives->inc();
    }
  }
  std::vector<topo::NodeId> members;
  members.reserve(g.view.members.size());
  for (const topo::NodeId m : g.view.members) {
    if (!std::binary_search(evicted.begin(), evicted.end(), m)) members.push_back(m);
  }
  install_view(g, std::move(members));
}

SeqNum GroupService::send(GroupId group, topo::NodeId sender, ReportFn on_report) {
  Group& g = group_at(group);
  if (!g.view.contains(sender)) {
    throw std::invalid_argument("GroupService::send: node " + std::to_string(sender) +
                                " is not a member of group " + std::to_string(group));
  }
  return enqueue_or_launch(g, sender, std::move(on_report), {}, false);
}

SeqNum GroupService::send_to(GroupId group, topo::NodeId sender,
                             std::vector<topo::NodeId> dests, ReportFn on_report) {
  Group& g = group_at(group);
  if (!g.view.contains(sender)) {
    throw std::invalid_argument("GroupService::send_to: node " + std::to_string(sender) +
                                " is not a member of group " + std::to_string(group));
  }
  std::sort(dests.begin(), dests.end());
  dests.erase(std::unique(dests.begin(), dests.end()), dests.end());
  if (dests.empty()) {
    throw std::invalid_argument("GroupService::send_to: empty destination set");
  }
  for (const topo::NodeId d : dests) {
    if (d == sender) {
      throw std::invalid_argument("GroupService::send_to: destination " +
                                  std::to_string(d) + " is the sender");
    }
    if (!g.view.contains(d)) {
      throw std::invalid_argument("GroupService::send_to: destination " +
                                  std::to_string(d) + " is not a member of group " +
                                  std::to_string(group));
    }
  }
  return enqueue_or_launch(g, sender, std::move(on_report), std::move(dests), true);
}

SeqNum GroupService::enqueue_or_launch(Group& g, topo::NodeId sender, ReportFn on_report,
                                       std::vector<topo::NodeId> dests, bool subset) {
  SenderState& st = g.senders[sender];
  if (st.ring.empty()) st.ring.resize(config_.window_size);

  const SeqNum seq = st.next_seq++;
  stats_.sends++;
  if (metrics_.active()) metrics_.sends->inc();

  if (st.queue.empty() && seq < st.lowest_unstable + config_.window_size) {
    launch(g, sender, seq, std::move(on_report), dests, subset);
    advance_window(g, sender);  // a destination-less send is stable at once
  } else {
    stats_.window_stalls++;
    if (metrics_.active()) metrics_.window_stalls->inc();
    st.queue.push_back(QueuedSend{seq, std::move(on_report), std::move(dests), subset});
    update_stalled(st);
  }
  return seq;
}

void GroupService::launch(Group& g, topo::NodeId sender, SeqNum seq, ReportFn on_report,
                          const std::vector<topo::NodeId>& subset_dests, bool subset) {
  auto msg = std::make_shared<PendingMsg>();
  msg->seq = seq;
  msg->view = g.view.id;
  msg->sent_at = sched_->now();
  msg->on_report = std::move(on_report);

  // The view may have changed while this send sat in the queue; it then
  // launches with whatever membership is left -- subset destinations
  // evicted meanwhile are dropped from the owed set here, and members
  // outside a subset observe the sequence as a pre-plugged hole so their
  // in-order streams never wedge on it.
  std::vector<topo::NodeId> dests;
  std::vector<topo::NodeId> holes;
  dests.reserve(g.view.members.size());
  for (const topo::NodeId m : g.view.members) {
    if (m == sender) continue;
    if (subset &&
        !std::binary_search(subset_dests.begin(), subset_dests.end(), m)) {
      holes.push_back(m);
      continue;
    }
    msg->dests.try_emplace(m, PendingMsg::Dest{g.incarnation[m], false,
                                               GroupOutcome::kDropped, -1.0});
    dests.push_back(m);
  }
  msg->open = msg->dests.size();
  {
    const auto sit = g.senders.find(sender);
    sit->second.ring[seq % config_.window_size] = msg;
  }
  // Hole-plugging surfaces in-order deliveries, i.e. fires callbacks --
  // nothing below may rely on sender-state references.
  for (const topo::NodeId m : holes) stream_update(g, m, sender, seq, false);
  if (dests.empty()) return;  // singleton group / fully-evicted subset

  const GroupId gid = g.id;
  service_->multicast_reliable(
      {sender, std::move(dests)},
      [this, gid, sender, seq](const DeliveryReport& r) {
        reliable_report(gid, sender, seq, r);
      },
      config_.retry,
      [this, gid, sender, seq](topo::NodeId dest, double latency_s) {
        classify_delivery(gid, seq, sender, dest, latency_s);
      });
}

void GroupService::classify_delivery(GroupId group, SeqNum seq, topo::NodeId sender,
                                     topo::NodeId dest, double latency) {
  if (group == 0 || group > groups_.size()) return;
  Group& g = *groups_[group - 1];
  std::shared_ptr<PendingMsg> msg;
  {
    const auto sit = g.senders.find(sender);
    if (sit == g.senders.end() || sit->second.ring.empty()) return;
    const auto& slot = sit->second.ring[seq % config_.window_size];
    if (!slot || slot->seq != seq) {
      // The message already stabilised (its owed set shrank under a view
      // change); a delivery landing now is to an evicted member -- discard.
      stats_.delivered_filtered++;
      if (metrics_.active()) metrics_.delivered_filtered->inc();
      return;
    }
    msg = slot;
  }
  const auto dit = msg->dests.find(dest);
  if (dit == msg->dests.end() || dit->second.terminal) {
    stats_.delivered_filtered++;
    if (metrics_.active()) metrics_.delivered_filtered->inc();
    return;
  }

  const auto iit = g.incarnation.find(dest);
  const bool member = g.view.contains(dest) && iit != g.incarnation.end() &&
                      iit->second == dit->second.incarnation;
  if (member) {
    finish_destination(g, sender, *msg, dest, GroupOutcome::kDeliveredInView, latency);
  } else {
    stats_.delivered_filtered++;
    if (metrics_.active()) metrics_.delivered_filtered->inc();
    finish_destination(g, sender, *msg, dest, GroupOutcome::kEvicted, -1.0);
  }
  advance_window(g, sender);
}

void GroupService::reliable_report(GroupId group, topo::NodeId sender, SeqNum seq,
                                   const DeliveryReport& report) {
  if (group == 0 || group > groups_.size()) return;
  Group& g = *groups_[group - 1];
  std::shared_ptr<PendingMsg> msg;
  {
    const auto sit = g.senders.find(sender);
    if (sit == g.senders.end() || sit->second.ring.empty()) return;
    const auto& slot = sit->second.ring[seq % config_.window_size];
    if (!slot || slot->seq != seq) return;  // already stable via evictions
    msg = slot;
  }

  for (const auto& d : report.destinations) {
    const auto dit = msg->dests.find(d.node);
    if (dit == msg->dests.end() || dit->second.terminal) continue;
    switch (d.status) {
      case DeliveryReport::Status::kDelivered: {
        // Normally classified by the per-delivery callback; fall back to
        // the same membership check here.
        const auto iit = g.incarnation.find(d.node);
        const bool member = g.view.contains(d.node) && iit != g.incarnation.end() &&
                            iit->second == dit->second.incarnation;
        finish_destination(g, sender, *msg, d.node,
                           member ? GroupOutcome::kDeliveredInView
                                  : GroupOutcome::kEvicted,
                           member ? d.latency_s : -1.0);
        break;
      }
      case DeliveryReport::Status::kDropped:
        finish_destination(g, sender, *msg, d.node, GroupOutcome::kDropped, -1.0);
        break;
      case DeliveryReport::Status::kUnreachable:
        finish_destination(g, sender, *msg, d.node, GroupOutcome::kUnreachable, -1.0);
        break;
    }
  }
  advance_window(g, sender);
}

void GroupService::finish_destination(Group& g, topo::NodeId sender, PendingMsg& msg,
                                      topo::NodeId dest, GroupOutcome outcome,
                                      double latency) {
  const auto dit = msg.dests.find(dest);
  if (dit == msg.dests.end() || dit->second.terminal) return;
  dit->second.terminal = true;
  dit->second.outcome = outcome;
  dit->second.latency_s = latency;
  --msg.open;

  switch (outcome) {
    case GroupOutcome::kDeliveredInView:
      stats_.delivered_in_view++;
      if (metrics_.active()) {
        metrics_.delivered_in_view->inc();
        metrics_.delivery_latency_s->record(latency);
      }
      stream_update(g, dest, sender, msg.seq, true);
      break;
    case GroupOutcome::kDropped:
      stats_.dropped++;
      if (metrics_.active()) metrics_.dropped->inc();
      stream_update(g, dest, sender, msg.seq, false);
      break;
    case GroupOutcome::kUnreachable:
      stats_.unreachable++;
      if (metrics_.active()) metrics_.unreachable->inc();
      stream_update(g, dest, sender, msg.seq, false);
      break;
    case GroupOutcome::kEvicted:
      stream_update(g, dest, sender, msg.seq, false);
      break;
  }
}

void GroupService::advance_window(Group& g, topo::NodeId sender) {
  const std::uint32_t w = config_.window_size;
  // One stabilisation or one queued launch per iteration, re-finding the
  // sender state each time: fire_report and launch both run user code.
  for (;;) {
    const auto sit = g.senders.find(sender);
    if (sit == g.senders.end()) return;
    SenderState& st = sit->second;
    if (st.ring.empty()) {
      update_stalled(st);
      return;
    }
    if (st.lowest_unstable < st.next_seq) {
      auto& slot = st.ring[st.lowest_unstable % w];
      if (slot && slot->seq == st.lowest_unstable && slot->open == 0) {
        const auto msg = slot;
        slot.reset();
        ++st.lowest_unstable;
        fire_report(g, sender, *msg);
        continue;
      }
    }
    if (!st.queue.empty() && st.queue.front().seq < st.lowest_unstable + w) {
      QueuedSend q = std::move(st.queue.front());
      st.queue.pop_front();
      launch(g, sender, q.seq, std::move(q.on_report), q.dests, q.subset);
      continue;
    }
    update_stalled(st);
    return;
  }
}

void GroupService::fire_report(Group& g, topo::NodeId sender, const PendingMsg& msg) {
  GroupSendReport r;
  r.group = g.id;
  r.sender = sender;
  r.seq = msg.seq;
  r.view = msg.view;
  r.sent_at_s = msg.sent_at;
  r.stable_at_s = sched_->now();
  r.destinations.reserve(msg.dests.size());
  r.stable_in_view = true;
  for (const auto& [node, ds] : msg.dests) {
    r.destinations.push_back(GroupSendReport::Destination{node, ds.outcome, ds.latency_s});
    // A destination still in the group that did not get the message in
    // view breaks virtual-synchrony stability; one that departed does not.
    const auto iit = g.incarnation.find(node);
    const bool still_member = g.view.contains(node) && iit != g.incarnation.end() &&
                              iit->second == ds.incarnation;
    if (still_member && ds.outcome != GroupOutcome::kDeliveredInView) {
      r.stable_in_view = false;
    }
  }
  if (r.stable_in_view && metrics_.active()) {
    metrics_.stability_latency_s->record(r.stable_at_s - r.sent_at_s);
  }
  if (msg.on_report) msg.on_report(r);
}

void GroupService::stream_update(Group& g, topo::NodeId receiver, topo::NodeId sender,
                                 SeqNum seq, bool deliverable) {
  const auto key = std::make_pair(receiver, sender);
  {
    ReceiverStream& stream = g.streams[key];
    if (seq < stream.next) return;  // before this receiver's join floor
    stream.pending.insert_or_assign(seq, deliverable);
  }
  // Surface in-order deliveries one at a time, re-finding the stream after
  // each: notify_delivery runs user code that can insert new streams.
  for (;;) {
    const auto it = g.streams.find(key);
    if (it == g.streams.end()) return;
    ReceiverStream& stream = it->second;
    if (stream.pending.empty() || stream.pending.begin()->first != stream.next) return;
    const bool ok = stream.pending.begin()->second;
    stream.pending.erase(stream.pending.begin());
    ++stream.next;
    const SeqNum surfaced = stream.next - 1;
    if (ok && g.view.contains(receiver)) {
      stats_.app_deliveries++;
      if (metrics_.active()) metrics_.app_deliveries->inc();
      notify_delivery(g.id, receiver, sender, surfaced, g.view.id);
    }
  }
}

void GroupService::notify_delivery(GroupId group, topo::NodeId receiver,
                                   topo::NodeId sender, SeqNum seq, ViewId view) {
  if (app_delivery_) app_delivery_(group, receiver, sender, seq, view);
  if (delivery_hooks_.empty()) return;
  std::vector<std::uint64_t> handles;
  handles.reserve(delivery_hooks_.size());
  for (const auto& [h, fn] : delivery_hooks_) handles.push_back(h);
  for (const std::uint64_t h : handles) {
    const auto it = delivery_hooks_.find(h);
    if (it == delivery_hooks_.end()) continue;  // removed by an earlier hook
    AppDeliveryFn fn = it->second;  // copy: the hook may remove itself
    fn(group, receiver, sender, seq, view);
  }
}

void GroupService::update_stalled(SenderState& st) {
  const bool stalled = !st.queue.empty();
  if (stalled == st.counted_stalled) return;
  st.counted_stalled = stalled;
  if (stalled) {
    ++stalled_senders_;
  } else {
    --stalled_senders_;
  }
  if (metrics_.active()) {
    metrics_.window_stalled->set(static_cast<double>(stalled_senders_));
  }
}

std::uint64_t GroupService::add_delivery_hook(AppDeliveryFn fn) {
  const std::uint64_t h = next_hook_++;
  delivery_hooks_.try_emplace(h, std::move(fn));
  return h;
}

void GroupService::remove_delivery_hook(std::uint64_t handle) {
  delivery_hooks_.erase(handle);
}

std::uint64_t GroupService::add_view_settled_hook(ViewFn fn) {
  const std::uint64_t h = next_hook_++;
  view_settled_hooks_.try_emplace(h, std::move(fn));
  return h;
}

void GroupService::remove_view_settled_hook(std::uint64_t handle) {
  view_settled_hooks_.erase(handle);
}

const MembershipView& GroupService::view(GroupId group) const {
  return group_at(group).view;
}

const std::vector<MembershipView>& GroupService::view_history(GroupId group) const {
  return group_at(group).history;
}

std::size_t GroupService::in_flight(GroupId group, topo::NodeId sender) const {
  const Group& g = group_at(group);
  const auto sit = g.senders.find(sender);
  if (sit == g.senders.end()) return 0;
  std::size_t n = 0;
  for (const auto& slot : sit->second.ring) n += slot ? 1 : 0;
  return n;
}

std::size_t GroupService::queued(GroupId group, topo::NodeId sender) const {
  const Group& g = group_at(group);
  const auto sit = g.senders.find(sender);
  return sit == g.senders.end() ? 0 : sit->second.queue.size();
}

void GroupService::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metrics_ = Metrics{};
    return;
  }
  metrics_.view_installs = &registry->counter("group.view_installs");
  metrics_.joins = &registry->counter("group.joins");
  metrics_.leaves = &registry->counter("group.leaves");
  metrics_.suspicions = &registry->counter("group.suspicions");
  metrics_.evictions = &registry->counter("group.evictions");
  metrics_.false_positives = &registry->counter("group.false_positive_evictions");
  metrics_.sends = &registry->counter("group.sends");
  metrics_.window_stalls = &registry->counter("group.window_stalls");
  metrics_.heartbeats = &registry->counter("group.heartbeats");
  metrics_.view_messages = &registry->counter("group.view_messages");
  metrics_.delivered_in_view = &registry->counter("group.delivered_in_view");
  metrics_.delivered_filtered = &registry->counter("group.delivered_filtered");
  metrics_.dropped = &registry->counter("group.dropped");
  metrics_.unreachable = &registry->counter("group.unreachable");
  metrics_.app_deliveries = &registry->counter("group.app_deliveries");
  metrics_.window_stalled = &registry->gauge("group.window_stalled");
  metrics_.stability_latency_s = &registry->histogram("group.stability_latency_s");
  metrics_.delivery_latency_s = &registry->histogram("group.delivery_latency_s");
}

}  // namespace mcnet::svc
