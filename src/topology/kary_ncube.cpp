#include "topology/kary_ncube.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcnet::topo {

KAryNCube::KAryNCube(std::uint32_t k, std::uint32_t n, bool wrap)
    : k_(k), n_(n), wrap_(wrap) {
  if (k < 2 || n == 0) throw std::invalid_argument("k-ary n-cube requires k >= 2, n >= 1");
  pow_.resize(n + 1);
  pow_[0] = 1;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (pow_[i] > (1u << 22) / k) throw std::invalid_argument("k-ary n-cube too large");
    pow_[i + 1] = pow_[i] * k;
  }
  const std::uint32_t total = pow_[n];
  std::vector<std::vector<NodeId>> adj(total);
  for (std::uint32_t u = 0; u < total; ++u) {
    for (std::uint32_t d = 0; d < n; ++d) {
      const std::uint32_t dig = digit(u, d);
      const std::uint32_t up = dig + 1;
      const std::uint32_t down = dig == 0 ? k - 1 : dig - 1;
      if (up < k) {
        adj[u].push_back(with_digit(u, d, up));
      } else if (wrap_ && k > 2) {
        adj[u].push_back(with_digit(u, d, 0));
      }
      // -1 neighbour; for k == 2 the ring collapses to a single link.
      if (k > 2 || dig == 1) {
        if (dig > 0) {
          adj[u].push_back(with_digit(u, d, down));
        } else if (wrap_) {
          adj[u].push_back(with_digit(u, d, k - 1));
        }
      }
    }
  }
  build(adj);
}

std::string KAryNCube::name() const {
  return std::to_string(k_) + "-ary " + std::to_string(n_) + "-cube" +
         (wrap_ ? "" : " (mesh)");
}

std::uint32_t KAryNCube::digit(NodeId u, std::uint32_t dim) const {
  return (u / pow_[dim]) % k_;
}

NodeId KAryNCube::with_digit(NodeId u, std::uint32_t dim, std::uint32_t value) const {
  return u - digit(u, dim) * pow_[dim] + value * pow_[dim];
}

std::uint32_t KAryNCube::distance(NodeId u, NodeId v) const {
  std::uint32_t d = 0;
  for (std::uint32_t i = 0; i < n_; ++i) {
    const std::uint32_t a = digit(u, i);
    const std::uint32_t b = digit(v, i);
    const std::uint32_t lin = a > b ? a - b : b - a;
    d += wrap_ ? std::min(lin, k_ - lin) : lin;
  }
  return d;
}

std::uint32_t KAryNCube::diameter() const {
  const std::uint32_t per_dim = wrap_ ? k_ / 2 : k_ - 1;
  return per_dim * n_;
}

}  // namespace mcnet::topo
