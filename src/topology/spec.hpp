// Textual topology specifications shared by the CLI tools and the static
// analyzer: "mesh:WxH", "cube:N", "mesh3:XxYxZ", "kary:KxN" (wraparound) and
// "karymesh:KxN" (non-wraparound k-ary n-cube).
#pragma once

#include <memory>
#include <string>

#include "topology/topology.hpp"

namespace mcnet::topo {

/// Parse `spec` and construct the topology.  Throws std::invalid_argument
/// with a precise message on malformed specs or unknown kinds.
[[nodiscard]] std::unique_ptr<Topology> make_topology(const std::string& spec);

}  // namespace mcnet::topo
