// Hamiltonian-path labelings and Hamiltonian cycles.
//
// Two constructions from the paper:
//
//  * Node labelings l(v) based on a Hamiltonian path (Section 6.2.2 for
//    the 2-D mesh, Section 6.3 for the hypercube).  The labeling splits the
//    network into an acyclic high-channel subnetwork (channels from lower
//    to higher labels) and an acyclic low-channel subnetwork; the
//    label-order-preserving routing function R routes on shortest paths
//    within one subnetwork, which is what makes the dual-/multi-/fixed-path
//    multicast algorithms deadlock-free.
//
//  * Hamiltonian cycles with a position map h (Section 5.1, Tables 5.1 and
//    5.3) used by the sorted-MP/MC heuristics: f(v) is the position of v
//    along the cycle starting from the source.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "topology/hypercube.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/mesh2d.hpp"
#include "topology/mesh3d.hpp"
#include "topology/topology.hpp"

namespace mcnet::ham {

using topo::NodeId;

/// A bijection between nodes and label values 0..N-1 induced by a
/// Hamiltonian path: consecutive labels are adjacent nodes.
class Labeling {
 public:
  virtual ~Labeling() = default;
  /// Label of node `u` (its position along the Hamiltonian path).
  [[nodiscard]] virtual std::uint32_t label(NodeId u) const = 0;
  /// Node carrying label `l` (inverse of label()).
  [[nodiscard]] virtual NodeId node_at(std::uint32_t l) const = 0;
  /// Number of nodes N.
  [[nodiscard]] virtual std::uint32_t size() const = 0;
};

/// Boustrophedon (snake) labeling of an N1 x N2 mesh, the paper's
///   l(x, y) = y*n + x        if y even
///   l(x, y) = y*n + n - x - 1 if y odd          (n = mesh width).
class MeshBoustrophedonLabeling final : public Labeling {
 public:
  explicit MeshBoustrophedonLabeling(const topo::Mesh2D& mesh) : mesh_(&mesh) {}

  [[nodiscard]] std::uint32_t label(NodeId u) const override {
    const topo::Coord2 c = mesh_->coord(u);
    const std::uint32_t n = mesh_->width();
    const auto y = static_cast<std::uint32_t>(c.y);
    const auto x = static_cast<std::uint32_t>(c.x);
    return (y % 2 == 0) ? y * n + x : y * n + n - x - 1;
  }
  [[nodiscard]] NodeId node_at(std::uint32_t l) const override {
    const std::uint32_t n = mesh_->width();
    const std::uint32_t y = l / n;
    const std::uint32_t r = l % n;
    const std::uint32_t x = (y % 2 == 0) ? r : n - r - 1;
    return mesh_->node(static_cast<std::int32_t>(x), static_cast<std::int32_t>(y));
  }
  [[nodiscard]] std::uint32_t size() const override { return mesh_->num_nodes(); }

  [[nodiscard]] const topo::Mesh2D& mesh() const { return *mesh_; }

 private:
  const topo::Mesh2D* mesh_;
};

/// The paper's hypercube labeling (Section 6.3):
///   l(d_{n-1}..d_0) = sum_i (c_i * !d_i + !c_i * d_i) * 2^i,
///   c_{n-1} = 0, c_{n-j} = d_{n-1} xor ... xor d_{n-j+1},
/// which is exactly the inverse binary-reflected-Gray-code map: nodes in
/// label order form the Gray-code Hamiltonian path.
class HypercubeGrayLabeling final : public Labeling {
 public:
  explicit HypercubeGrayLabeling(const topo::Hypercube& cube) : cube_(&cube) {}

  [[nodiscard]] std::uint32_t label(NodeId u) const override { return gray_decode(u); }
  [[nodiscard]] NodeId node_at(std::uint32_t l) const override { return l ^ (l >> 1); }
  [[nodiscard]] std::uint32_t size() const override { return cube_->num_nodes(); }

  [[nodiscard]] const topo::Hypercube& cube() const { return *cube_; }

  /// Gray-code decode: b_i = g_{n-1} xor ... xor g_i.
  [[nodiscard]] static std::uint32_t gray_decode(std::uint32_t g) {
    std::uint32_t b = 0;
    for (; g != 0; g >>= 1) b ^= g;
    return b;
  }

  /// The paper's label formula evaluated literally (used in tests to prove
  /// it coincides with the Gray-code decode above).
  [[nodiscard]] static std::uint32_t paper_label(std::uint32_t address, std::uint32_t n);

 private:
  const topo::Hypercube* cube_;
};

/// Mixed-radix reflected-Gray labeling: the generalisation of both the
/// mesh boustrophedon (2 dimensions) and the hypercube Gray labeling
/// (radix 2) to any k-ary n-cube or box-shaped mesh.  Digits are processed
/// from the most significant dimension down; a digit is reflected whenever
/// the sum of the more significant *output* digits is odd, which makes
/// consecutive labels differ by +/-1 in exactly one digit -- a Hamiltonian
/// path in the (non-wraparound) box graph.  This extends the Chapter 6
/// path-based multicast algorithms to 3-D meshes and k-ary n-cubes
/// (Section 8.2: "these routing algorithms can be applied to any
/// multicomputer networks that have Hamilton paths").
class MixedRadixGrayLabeling final : public Labeling {
 public:
  /// `sizes[i]` is the extent of dimension i (dimension 0 least
  /// significant); `digit_of(node, dim)` / `node_of(digits)` convert
  /// between node ids and digit vectors.
  MixedRadixGrayLabeling(std::vector<std::uint32_t> sizes,
                         std::function<std::uint32_t(NodeId, std::uint32_t)> digit_of,
                         std::function<NodeId(const std::vector<std::uint32_t>&)> node_of);

  /// Convenience constructors for the shipped topologies.
  [[nodiscard]] static MixedRadixGrayLabeling for_mesh3d(const topo::Mesh3D& mesh);
  [[nodiscard]] static MixedRadixGrayLabeling for_kary(const topo::KAryNCube& cube);

  [[nodiscard]] std::uint32_t label(NodeId u) const override;
  [[nodiscard]] NodeId node_at(std::uint32_t l) const override;
  [[nodiscard]] std::uint32_t size() const override { return total_; }

 private:
  std::vector<std::uint32_t> sizes_;
  std::uint32_t total_;
  std::function<std::uint32_t(NodeId, std::uint32_t)> digit_of_;
  std::function<NodeId(const std::vector<std::uint32_t>&)> node_of_;
};

/// A Hamiltonian cycle with its position map h: h(order()[i]) == i.
/// Validates adjacency of consecutive nodes (including the closing edge).
class HamiltonCycle {
 public:
  HamiltonCycle(const topo::Topology& topology, std::vector<NodeId> order);

  /// Nodes in cycle order.
  [[nodiscard]] const std::vector<NodeId>& order() const { return order_; }
  /// Position of node `u` along the cycle (0-based h map).
  [[nodiscard]] std::uint32_t position(NodeId u) const { return position_[u]; }
  [[nodiscard]] std::uint32_t size() const { return static_cast<std::uint32_t>(order_.size()); }

  /// Cyclic sort key relative to a source: f(v) = (h(v) - h(u0)) mod N,
  /// so f(u0) = 0 and f increases along the cycle from the source.  This is
  /// the paper's f shifted by -h(u0), which preserves all comparisons.
  [[nodiscard]] std::uint32_t key_from(NodeId source, NodeId v) const {
    const std::uint32_t n = size();
    return (position_[v] + n - position_[source]) % n;
  }

 private:
  std::vector<NodeId> order_;
  std::vector<std::uint32_t> position_;  // indexed by node id
};

/// The comb-shaped Hamiltonian cycle of an N1 x N2 mesh used in Table 5.1:
/// row 0 left-to-right, rows 1..N2-1 serpentine over columns 1..N1-1, then
/// return down column 0.  Requires at least one even dimension (fact F1);
/// the construction transposes automatically when only the width is even.
[[nodiscard]] HamiltonCycle mesh_comb_cycle(const topo::Mesh2D& mesh);

/// The binary-reflected-Gray-code Hamiltonian cycle of an n-cube
/// (Table 5.3): node at position i is i ^ (i >> 1).
[[nodiscard]] HamiltonCycle hypercube_gray_cycle(const topo::Hypercube& cube);

/// True if directed channel (from, to) belongs to the high-channel
/// subnetwork induced by `lab` (labels increase across it).
[[nodiscard]] inline bool is_high_channel(const Labeling& lab, NodeId from, NodeId to) {
  return lab.label(from) < lab.label(to);
}

}  // namespace mcnet::ham
