#include "topology/hypercube.hpp"

#include <stdexcept>

namespace mcnet::topo {

Hypercube::Hypercube(std::uint32_t dimensions) : n_(dimensions) {
  if (dimensions == 0 || dimensions > 20) {
    throw std::invalid_argument("hypercube dimension must be in [1, 20]");
  }
  const std::uint32_t n = 1u << dimensions;
  std::vector<std::vector<NodeId>> adj(n);
  for (std::uint32_t u = 0; u < n; ++u) {
    adj[u].reserve(dimensions);
    for (std::uint32_t d = 0; d < dimensions; ++d) {
      adj[u].push_back(u ^ (1u << d));
    }
  }
  build(adj);
}

std::string Hypercube::name() const { return std::to_string(n_) + "-cube"; }

}  // namespace mcnet::topo
