#include "topology/mesh3d.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcnet::topo {

Mesh3D::Mesh3D(std::uint32_t nx, std::uint32_t ny, std::uint32_t nz)
    : nx_(nx), ny_(ny), nz_(nz) {
  if (nx == 0 || ny == 0 || nz == 0) {
    throw std::invalid_argument("mesh dimensions must be positive");
  }
  const std::uint32_t n = nx * ny * nz;
  std::vector<std::vector<NodeId>> adj(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    const Coord3 c = coord(id);
    const Coord3 cand[6] = {{c.x + 1, c.y, c.z}, {c.x - 1, c.y, c.z}, {c.x, c.y + 1, c.z},
                            {c.x, c.y - 1, c.z}, {c.x, c.y, c.z + 1}, {c.x, c.y, c.z - 1}};
    for (const Coord3& d : cand) {
      if (contains(d)) adj[id].push_back(node(d));
    }
  }
  build(adj);
}

std::string Mesh3D::name() const {
  return "mesh3d(" + std::to_string(nx_) + "x" + std::to_string(ny_) + "x" +
         std::to_string(nz_) + ")";
}

std::uint32_t Mesh3D::distance(NodeId u, NodeId v) const {
  const Coord3 a = coord(u);
  const Coord3 b = coord(v);
  return static_cast<std::uint32_t>(std::abs(a.x - b.x) + std::abs(a.y - b.y) +
                                    std::abs(a.z - b.z));
}

NodeId Mesh3D::closest_on_shortest_paths(NodeId s, NodeId t, NodeId w) const {
  const Coord3 a = coord(s);
  const Coord3 b = coord(t);
  const Coord3 p = coord(w);
  const Coord3 v = {std::clamp(p.x, std::min(a.x, b.x), std::max(a.x, b.x)),
                    std::clamp(p.y, std::min(a.y, b.y), std::max(a.y, b.y)),
                    std::clamp(p.z, std::min(a.z, b.z), std::max(a.z, b.z))};
  return node(v);
}

}  // namespace mcnet::topo
