// Two-dimensional mesh topology (non-wraparound rectangular grid), the
// "2D mesh" host graph of the paper (Definition 4.1).
#pragma once

#include <cstdint>
#include <cstdlib>

#include "topology/topology.hpp"

namespace mcnet::topo {

/// Integer grid coordinate of a mesh node.
struct Coord2 {
  std::int32_t x = 0;
  std::int32_t y = 0;
  friend bool operator==(const Coord2&, const Coord2&) = default;
};

/// An N1 x N2 mesh.  Node (x, y), 0 <= x < width, 0 <= y < height, has id
/// y * width + x (row-major).  Interior nodes have degree 4; the neighbour
/// order is +X, -X, +Y, -Y (skipping directions that leave the grid).
class Mesh2D final : public DenseTopology {
 public:
  Mesh2D(std::uint32_t width, std::uint32_t height);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t distance(NodeId u, NodeId v) const override;
  [[nodiscard]] std::uint32_t diameter() const override { return width_ + height_ - 2; }

  [[nodiscard]] std::uint32_t width() const { return width_; }
  [[nodiscard]] std::uint32_t height() const { return height_; }

  [[nodiscard]] Coord2 coord(NodeId u) const {
    return {static_cast<std::int32_t>(u % width_), static_cast<std::int32_t>(u / width_)};
  }
  [[nodiscard]] NodeId node(Coord2 c) const {
    return static_cast<NodeId>(c.y) * width_ + static_cast<NodeId>(c.x);
  }
  [[nodiscard]] NodeId node(std::int32_t x, std::int32_t y) const { return node(Coord2{x, y}); }
  [[nodiscard]] bool contains(Coord2 c) const {
    return c.x >= 0 && c.y >= 0 && c.x < static_cast<std::int32_t>(width_) &&
           c.y < static_cast<std::int32_t>(height_);
  }

  /// Closest node to `w` among all nodes lying on some shortest path
  /// between `s` and `t` (the bounding-box clamp of Section 5.2).  Used by
  /// the greedy Steiner-tree heuristic.
  [[nodiscard]] NodeId closest_on_shortest_paths(NodeId s, NodeId t, NodeId w) const;

 private:
  std::uint32_t width_;
  std::uint32_t height_;
};

}  // namespace mcnet::topo
