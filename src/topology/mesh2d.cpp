#include "topology/mesh2d.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcnet::topo {

Mesh2D::Mesh2D(std::uint32_t width, std::uint32_t height)
    : width_(width), height_(height) {
  if (width == 0 || height == 0) throw std::invalid_argument("mesh dimensions must be positive");
  const std::uint32_t n = width * height;
  std::vector<std::vector<NodeId>> adj(n);
  for (std::uint32_t id = 0; id < n; ++id) {
    const Coord2 c = {static_cast<std::int32_t>(id % width), static_cast<std::int32_t>(id / width)};
    // Order: +X, -X, +Y, -Y.
    const Coord2 cand[4] = {{c.x + 1, c.y}, {c.x - 1, c.y}, {c.x, c.y + 1}, {c.x, c.y - 1}};
    for (const Coord2& d : cand) {
      if (contains(d)) adj[id].push_back(node(d));
    }
  }
  build(adj);
}

std::string Mesh2D::name() const {
  return "mesh2d(" + std::to_string(width_) + "x" + std::to_string(height_) + ")";
}

std::uint32_t Mesh2D::distance(NodeId u, NodeId v) const {
  const Coord2 a = coord(u);
  const Coord2 b = coord(v);
  return static_cast<std::uint32_t>(std::abs(a.x - b.x) + std::abs(a.y - b.y));
}

NodeId Mesh2D::closest_on_shortest_paths(NodeId s, NodeId t, NodeId w) const {
  const Coord2 a = coord(s);
  const Coord2 b = coord(t);
  const Coord2 p = coord(w);
  const std::int32_t x1 = std::min(a.x, b.x);
  const std::int32_t x2 = std::max(a.x, b.x);
  const std::int32_t y1 = std::min(a.y, b.y);
  const std::int32_t y2 = std::max(a.y, b.y);
  const Coord2 v = {std::clamp(p.x, x1, x2), std::clamp(p.y, y1, y2)};
  return node(v);
}

}  // namespace mcnet::topo
