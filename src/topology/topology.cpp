#include "topology/topology.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcnet::topo {

void DenseTopology::build(const std::vector<std::vector<NodeId>>& adj) {
  const std::size_t n = adj.size();
  row_start_.assign(n + 1, 0);
  for (std::size_t u = 0; u < n; ++u) {
    row_start_[u + 1] = row_start_[u] + static_cast<std::uint32_t>(adj[u].size());
  }
  adj_flat_.reserve(row_start_[n]);
  channel_of_edge_.reserve(row_start_[n]);
  channel_ends_.reserve(row_start_[n]);
  ChannelId next = 0;
  for (std::size_t u = 0; u < n; ++u) {
    for (NodeId v : adj[u]) {
      if (v >= n) throw std::invalid_argument("adjacency refers to node out of range");
      adj_flat_.push_back(v);
      channel_of_edge_.push_back(next);
      channel_ends_.push_back({static_cast<NodeId>(u), v});
      ++next;
    }
  }
}

std::span<const NodeId> DenseTopology::neighbors(NodeId u) const {
  return {adj_flat_.data() + row_start_[u], adj_flat_.data() + row_start_[u + 1]};
}

ChannelId DenseTopology::channel(NodeId u, NodeId v) const {
  if (u >= num_nodes()) return kInvalidChannel;
  for (std::uint32_t i = row_start_[u]; i < row_start_[u + 1]; ++i) {
    if (adj_flat_[i] == v) return channel_of_edge_[i];
  }
  return kInvalidChannel;
}

ChannelEnds DenseTopology::channel_ends(ChannelId c) const {
  return channel_ends_.at(c);
}

std::uint32_t DenseTopology::max_degree() const {
  std::uint32_t d = 0;
  for (std::uint32_t u = 0; u < num_nodes(); ++u) {
    d = std::max(d, row_start_[u + 1] - row_start_[u]);
  }
  return d;
}

}  // namespace mcnet::topo
