// k-ary n-cube topology: n dimensions with k nodes per dimension connected
// as a ring (Section 2.1.3).  Hypercube (k = 2) and tori are special cases;
// the paper's mesh is the non-wraparound variant which this class also
// supports via the `wrap` flag.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/topology.hpp"

namespace mcnet::topo {

/// General k-ary n-cube.  Node digits d_{n-1}..d_0 in radix k; node id is
/// the radix-k value.  Neighbour order: for each dimension 0..n-1, the +1
/// then -1 ring neighbour (deduplicated for k <= 2, clipped when !wrap).
class KAryNCube final : public DenseTopology {
 public:
  KAryNCube(std::uint32_t k, std::uint32_t n, bool wrap = true);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t distance(NodeId u, NodeId v) const override;
  [[nodiscard]] std::uint32_t diameter() const override;

  [[nodiscard]] std::uint32_t radix() const { return k_; }
  [[nodiscard]] std::uint32_t dimensions() const { return n_; }
  [[nodiscard]] bool wraps() const { return wrap_; }

  /// Digit of node `u` in dimension `dim`.
  [[nodiscard]] std::uint32_t digit(NodeId u, std::uint32_t dim) const;
  /// Node with digit `dim` replaced by `value`.
  [[nodiscard]] NodeId with_digit(NodeId u, std::uint32_t dim, std::uint32_t value) const;

 private:
  std::uint32_t k_;
  std::uint32_t n_;
  bool wrap_;
  std::vector<std::uint32_t> pow_;  // pow_[i] = k^i
};

}  // namespace mcnet::topo
