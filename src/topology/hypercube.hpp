// n-dimensional hypercube (n-cube) topology, Definition 4.2 of the paper.
// Node addresses are n-bit binary strings; two nodes are adjacent iff their
// addresses differ in exactly one bit.
#pragma once

#include <bit>
#include <cstdint>

#include "topology/topology.hpp"

namespace mcnet::topo {

/// An n-cube with 2^n nodes.  The neighbour of node u across dimension i is
/// u XOR (1 << i); neighbours are listed in dimension order 0..n-1.
class Hypercube final : public DenseTopology {
 public:
  explicit Hypercube(std::uint32_t dimensions);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t distance(NodeId u, NodeId v) const override {
    return static_cast<std::uint32_t>(std::popcount(u ^ v));
  }
  [[nodiscard]] std::uint32_t diameter() const override { return n_; }

  [[nodiscard]] std::uint32_t dimensions() const { return n_; }

  /// Neighbour of `u` across dimension `dim`.
  [[nodiscard]] NodeId across(NodeId u, std::uint32_t dim) const { return u ^ (NodeId{1} << dim); }

  /// Closest node to `w` among all nodes on shortest paths between `s` and
  /// `t`: bit j is w's bit where s and t differ, s's bit where they agree
  /// (Section 5.2).
  [[nodiscard]] NodeId closest_on_shortest_paths(NodeId s, NodeId t, NodeId w) const {
    const NodeId differ = s ^ t;
    return (w & differ) | (s & ~differ);
  }

 private:
  std::uint32_t n_;
};

}  // namespace mcnet::topo
