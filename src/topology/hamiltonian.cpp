#include "topology/hamiltonian.hpp"

#include <stdexcept>

namespace mcnet::ham {

std::uint32_t HypercubeGrayLabeling::paper_label(std::uint32_t address, std::uint32_t n) {
  // c_{n-1} = 0; c_{n-j} = d_{n-1} xor ... xor d_{n-j+1} for 1 < j <= n,
  // i.e. c_i is the parity of the address bits strictly above bit i.
  std::uint32_t label = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    std::uint32_t c = 0;
    for (std::uint32_t j = i + 1; j < n; ++j) c ^= (address >> j) & 1u;
    const std::uint32_t d = (address >> i) & 1u;
    label |= (c ^ d) << i;  // c*!d + !c*d == c xor d
  }
  return label;
}

MixedRadixGrayLabeling::MixedRadixGrayLabeling(
    std::vector<std::uint32_t> sizes,
    std::function<std::uint32_t(NodeId, std::uint32_t)> digit_of,
    std::function<NodeId(const std::vector<std::uint32_t>&)> node_of)
    : sizes_(std::move(sizes)), digit_of_(std::move(digit_of)), node_of_(std::move(node_of)) {
  if (sizes_.empty()) throw std::invalid_argument("need >= 1 dimension");
  total_ = 1;
  for (const std::uint32_t s : sizes_) {
    if (s == 0) throw std::invalid_argument("dimension size must be positive");
    total_ *= s;
  }
}

std::uint32_t MixedRadixGrayLabeling::label(NodeId u) const {
  // Most-significant dimension first; dimension i is reflected when the
  // parity of the *node* digits above it is odd -- the mixed-radix
  // generalisation of the paper's c_i = d_{n-1} xor ... xor d_{i+1}.
  std::uint32_t out = 0;
  bool reflect = false;
  for (std::size_t i = sizes_.size(); i-- > 0;) {
    const std::uint32_t d = digit_of_(u, static_cast<std::uint32_t>(i));
    const std::uint32_t g = reflect ? sizes_[i] - 1 - d : d;
    out = out * sizes_[i] + g;
    reflect ^= (d % 2 == 1);
  }
  return out;
}

topo::NodeId MixedRadixGrayLabeling::node_at(std::uint32_t l) const {
  // Invert: peel output digits most-significant first.
  std::vector<std::uint32_t> gray(sizes_.size());
  std::uint32_t divisor = total_;
  for (std::size_t i = sizes_.size(); i-- > 0;) {
    divisor /= sizes_[i];
    gray[i] = l / divisor;
    l %= divisor;
  }
  std::vector<std::uint32_t> digits(sizes_.size());
  bool reflect = false;
  for (std::size_t i = sizes_.size(); i-- > 0;) {
    digits[i] = reflect ? sizes_[i] - 1 - gray[i] : gray[i];
    reflect ^= (digits[i] % 2 == 1);  // parity of the node digits above
  }
  return node_of_(digits);
}

MixedRadixGrayLabeling MixedRadixGrayLabeling::for_mesh3d(const topo::Mesh3D& mesh) {
  return MixedRadixGrayLabeling(
      {mesh.nx(), mesh.ny(), mesh.nz()},
      [&mesh](NodeId u, std::uint32_t dim) -> std::uint32_t {
        const topo::Coord3 c = mesh.coord(u);
        return static_cast<std::uint32_t>(dim == 0 ? c.x : (dim == 1 ? c.y : c.z));
      },
      [&mesh](const std::vector<std::uint32_t>& d) {
        return mesh.node({static_cast<std::int32_t>(d[0]), static_cast<std::int32_t>(d[1]),
                          static_cast<std::int32_t>(d[2])});
      });
}

MixedRadixGrayLabeling MixedRadixGrayLabeling::for_kary(const topo::KAryNCube& cube) {
  return MixedRadixGrayLabeling(
      std::vector<std::uint32_t>(cube.dimensions(), cube.radix()),
      [&cube](NodeId u, std::uint32_t dim) { return cube.digit(u, dim); },
      [&cube](const std::vector<std::uint32_t>& d) {
        NodeId u = 0;
        for (std::uint32_t i = 0; i < d.size(); ++i) {
          u = cube.with_digit(u, i, d[i]);
        }
        return u;
      });
}

HamiltonCycle::HamiltonCycle(const topo::Topology& topology, std::vector<NodeId> order)
    : order_(std::move(order)) {
  const std::uint32_t n = topology.num_nodes();
  if (order_.size() != n) throw std::invalid_argument("cycle must visit every node once");
  position_.assign(n, topo::kInvalidNode);
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId u = order_[i];
    if (u >= n || position_[u] != topo::kInvalidNode) {
      throw std::invalid_argument("cycle repeats or skips a node");
    }
    position_[u] = i;
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    const NodeId u = order_[i];
    const NodeId v = order_[(i + 1) % n];
    if (n > 1 && !topology.adjacent(u, v)) {
      throw std::invalid_argument("consecutive cycle nodes are not adjacent");
    }
  }
}

namespace {

// Comb cycle for a mesh whose *height* is even: row 0 rightward, rows
// 1..H-1 serpentine over columns 1..W-1, then down column 0.  `transpose`
// swaps the roles of x and y (used when only the width is even).
std::vector<NodeId> comb_order(const topo::Mesh2D& mesh, bool transpose) {
  const auto w = static_cast<std::int32_t>(transpose ? mesh.height() : mesh.width());
  const auto h = static_cast<std::int32_t>(transpose ? mesh.width() : mesh.height());
  const auto at = [&](std::int32_t x, std::int32_t y) {
    return transpose ? mesh.node(y, x) : mesh.node(x, y);
  };
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(w) * static_cast<std::size_t>(h));
  for (std::int32_t x = 0; x < w; ++x) order.push_back(at(x, 0));
  if (h > 1) {
    if (w == 1) {
      // Degenerate single column: the path up and back is only a valid
      // cycle for h == 2; larger cases are rejected by the caller.
      for (std::int32_t y = 1; y < h; ++y) order.push_back(at(0, y));
      return order;
    }
    for (std::int32_t y = 1; y < h; ++y) {
      const bool leftward = (y % 2 == 1);
      if (leftward) {
        for (std::int32_t x = w - 1; x >= 1; --x) order.push_back(at(x, y));
      } else {
        for (std::int32_t x = 1; x <= w - 1; ++x) order.push_back(at(x, y));
      }
    }
    // The serpentine over h-1 rows ends at column 1 of the top row exactly
    // when h-1 is odd (h even); step to column 0 and descend.
    for (std::int32_t y = h - 1; y >= 1; --y) order.push_back(at(0, y));
  }
  return order;
}

}  // namespace

HamiltonCycle mesh_comb_cycle(const topo::Mesh2D& mesh) {
  if (mesh.num_nodes() == 1) return HamiltonCycle(mesh, {0});
  if (mesh.height() % 2 == 0 && mesh.width() >= 2) {
    return HamiltonCycle(mesh, comb_order(mesh, /*transpose=*/false));
  }
  if (mesh.width() % 2 == 0 && mesh.height() >= 2) {
    return HamiltonCycle(mesh, comb_order(mesh, /*transpose=*/true));
  }
  throw std::invalid_argument(
      "a mesh Hamiltonian cycle requires at least one even dimension >= 2 (fact F1)");
}

HamiltonCycle hypercube_gray_cycle(const topo::Hypercube& cube) {
  std::vector<NodeId> order(cube.num_nodes());
  for (std::uint32_t i = 0; i < cube.num_nodes(); ++i) order[i] = i ^ (i >> 1);
  return HamiltonCycle(cube, std::move(order));
}

}  // namespace mcnet::ham
