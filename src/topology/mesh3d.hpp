// Three-dimensional mesh topology.  Chapter 4 extends the 2-D complexity
// results to 3-D meshes (Corollaries 4.1-4.4); the routing substrate here
// lets the same multicast machinery run on 3-D hosts.
#pragma once

#include <cstdint>
#include <cstdlib>

#include "topology/topology.hpp"

namespace mcnet::topo {

/// Integer coordinate of a 3-D mesh node.
struct Coord3 {
  std::int32_t x = 0;
  std::int32_t y = 0;
  std::int32_t z = 0;
  friend bool operator==(const Coord3&, const Coord3&) = default;
};

/// An NX x NY x NZ mesh.  Node (x, y, z) has id (z * NY + y) * NX + x.
/// Neighbour order: +X, -X, +Y, -Y, +Z, -Z (skipping off-grid directions).
class Mesh3D final : public DenseTopology {
 public:
  Mesh3D(std::uint32_t nx, std::uint32_t ny, std::uint32_t nz);

  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint32_t distance(NodeId u, NodeId v) const override;
  [[nodiscard]] std::uint32_t diameter() const override { return nx_ + ny_ + nz_ - 3; }

  [[nodiscard]] std::uint32_t nx() const { return nx_; }
  [[nodiscard]] std::uint32_t ny() const { return ny_; }
  [[nodiscard]] std::uint32_t nz() const { return nz_; }

  [[nodiscard]] Coord3 coord(NodeId u) const {
    return {static_cast<std::int32_t>(u % nx_),
            static_cast<std::int32_t>((u / nx_) % ny_),
            static_cast<std::int32_t>(u / (nx_ * ny_))};
  }
  [[nodiscard]] NodeId node(Coord3 c) const {
    return (static_cast<NodeId>(c.z) * ny_ + static_cast<NodeId>(c.y)) * nx_ +
           static_cast<NodeId>(c.x);
  }
  [[nodiscard]] bool contains(Coord3 c) const {
    return c.x >= 0 && c.y >= 0 && c.z >= 0 && c.x < static_cast<std::int32_t>(nx_) &&
           c.y < static_cast<std::int32_t>(ny_) && c.z < static_cast<std::int32_t>(nz_);
  }

  /// Closest node to `w` on the shortest-path bundle between `s` and `t`
  /// (box clamp, the 3-D analogue of the Section 5.2 formula).
  [[nodiscard]] NodeId closest_on_shortest_paths(NodeId s, NodeId t, NodeId w) const;

 private:
  std::uint32_t nx_, ny_, nz_;
};

}  // namespace mcnet::topo
