// Topology abstractions for multicomputer interconnection networks.
//
// A topology is modelled as the host graph G(V, E) of the paper: nodes are
// processors, directed channels are the unidirectional halves of the
// communication links.  Every concrete topology provides node/neighbour
// enumeration, shortest-path distance, and a dense indexing of its directed
// channels so that simulators and channel-dependency analyses can address
// channel state in flat arrays.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace mcnet::topo {

/// Dense node identifier in [0, num_nodes()).
using NodeId = std::uint32_t;

/// Dense directed-channel identifier in [0, num_channels()).
using ChannelId = std::uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
/// Sentinel for "no channel".
inline constexpr ChannelId kInvalidChannel = static_cast<ChannelId>(-1);

/// A directed channel endpoint pair.
struct ChannelEnds {
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  friend bool operator==(const ChannelEnds&, const ChannelEnds&) = default;
};

/// Abstract interconnection topology.
///
/// Implementations must be immutable after construction so that const
/// references can be shared freely across threads (e.g. by parallel
/// experiment sweeps).
class Topology {
 public:
  virtual ~Topology() = default;

  /// Human-readable name, e.g. "mesh2d(8x8)".
  [[nodiscard]] virtual std::string name() const = 0;

  /// Number of nodes |V|.
  [[nodiscard]] virtual std::uint32_t num_nodes() const = 0;

  /// Number of directed channels (2 per undirected link).
  [[nodiscard]] virtual std::uint32_t num_channels() const = 0;

  /// Neighbours of `u` in a deterministic, implementation-defined order.
  [[nodiscard]] virtual std::span<const NodeId> neighbors(NodeId u) const = 0;

  /// Length of a shortest path between `u` and `v`.
  [[nodiscard]] virtual std::uint32_t distance(NodeId u, NodeId v) const = 0;

  /// Dense id of the directed channel u -> v; kInvalidChannel if (u, v) is
  /// not an edge.
  [[nodiscard]] virtual ChannelId channel(NodeId u, NodeId v) const = 0;

  /// Endpoints of directed channel `c`.
  [[nodiscard]] virtual ChannelEnds channel_ends(ChannelId c) const = 0;

  /// True if u and v are joined by a link.
  [[nodiscard]] bool adjacent(NodeId u, NodeId v) const {
    return channel(u, v) != kInvalidChannel;
  }

  /// Maximum node degree.
  [[nodiscard]] virtual std::uint32_t max_degree() const = 0;

  /// Network diameter (maximum pairwise distance).
  [[nodiscard]] virtual std::uint32_t diameter() const = 0;
};

/// Shared implementation: topologies that precompute adjacency into flat
/// arrays.  Concrete classes fill `adjacency_` (CSR layout) and
/// `channel_table_` in their constructors via add_node()/add_edge().
class DenseTopology : public Topology {
 public:
  [[nodiscard]] std::uint32_t num_nodes() const final {
    return static_cast<std::uint32_t>(row_start_.size() - 1);
  }
  [[nodiscard]] std::uint32_t num_channels() const final {
    return static_cast<std::uint32_t>(channel_ends_.size());
  }
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId u) const final;
  [[nodiscard]] ChannelId channel(NodeId u, NodeId v) const final;
  [[nodiscard]] ChannelEnds channel_ends(ChannelId c) const final;
  [[nodiscard]] std::uint32_t max_degree() const final;

 protected:
  /// Build the CSR adjacency from an adjacency-list description.  Channel
  /// ids are assigned in (source node, neighbour order) order.
  void build(const std::vector<std::vector<NodeId>>& adj);

 private:
  std::vector<std::uint32_t> row_start_;  // CSR row offsets, size N+1
  std::vector<NodeId> adj_flat_;          // CSR column indices
  std::vector<ChannelId> channel_of_edge_;  // parallel to adj_flat_
  std::vector<ChannelEnds> channel_ends_;   // channel id -> endpoints
};

}  // namespace mcnet::topo
