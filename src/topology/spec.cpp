#include "topology/spec.hpp"

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "topology/hypercube.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/mesh2d.hpp"
#include "topology/mesh3d.hpp"

namespace mcnet::topo {

std::unique_ptr<Topology> make_topology(const std::string& spec) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) throw std::invalid_argument("topology needs kind:dims");
  const std::string kind = spec.substr(0, colon);
  const std::string dims = spec.substr(colon + 1);
  const auto parse_dims = [&spec, &dims] {
    std::vector<std::uint32_t> out;
    std::size_t pos = 0;
    while (pos < dims.size()) {
      const std::size_t x = dims.find('x', pos);
      const std::string part = dims.substr(pos, x == std::string::npos ? x : x - pos);
      std::size_t used = 0;
      unsigned long value = 0;
      try {
        value = std::stoul(part, &used);
      } catch (const std::exception&) {
        used = 0;
      }
      if (used != part.size() || part.empty() || value > 0xffffffffUL) {
        throw std::invalid_argument("topology \"" + spec + "\" has a bad dimension \"" +
                                    part + "\" (expected kind:NxM...)");
      }
      out.push_back(static_cast<std::uint32_t>(value));
      if (x == std::string::npos) break;
      pos = x + 1;
    }
    return out;
  };

  if (kind == "mesh") {
    const auto d = parse_dims();
    if (d.size() != 2) throw std::invalid_argument("mesh:WxH");
    return std::make_unique<Mesh2D>(d[0], d[1]);
  }
  if (kind == "cube") {
    const auto d = parse_dims();
    if (d.size() != 1) throw std::invalid_argument("cube:N");
    return std::make_unique<Hypercube>(d[0]);
  }
  if (kind == "mesh3") {
    const auto d = parse_dims();
    if (d.size() != 3) throw std::invalid_argument("mesh3:XxYxZ");
    return std::make_unique<Mesh3D>(d[0], d[1], d[2]);
  }
  if (kind == "kary" || kind == "karymesh") {
    const auto d = parse_dims();
    if (d.size() != 2) throw std::invalid_argument(kind + ":KxN");
    return std::make_unique<KAryNCube>(d[0], d[1], /*wrap=*/kind == "kary");
  }
  throw std::invalid_argument("unknown topology kind: " + kind);
}

}  // namespace mcnet::topo
