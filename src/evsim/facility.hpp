// CSIM-style facilities (FCFS servers) and typed mailboxes for coroutine
// processes.  Both use direct hand-off on release/send: the released
// server (or sent message) is assigned to the waiting process before it is
// rescheduled, so a process that arrives between the release and the
// resumption cannot steal it (FCFS is strict).
#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <optional>
#include <stdexcept>
#include <utility>

#include "evsim/scheduler.hpp"

namespace mcnet::evsim {

/// A FCFS facility with `servers` identical servers.  Processes co_await
/// acquire() and must call release() when done.
class Facility {
 public:
  explicit Facility(Scheduler& sched, std::uint32_t servers = 1)
      : sched_(&sched), free_(servers), servers_(servers) {
    if (servers == 0) throw std::invalid_argument("facility needs >= 1 server");
  }

  Facility(const Facility&) = delete;
  Facility& operator=(const Facility&) = delete;

  class Acquire {
   public:
    explicit Acquire(Facility& f) : f_(&f) {}
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> h) {
      if (f_->free_ > 0) {
        --f_->free_;
        return false;  // server taken; resume immediately
      }
      f_->waiters_.push_back(h);
      return true;  // the server will be handed off by release()
    }
    void await_resume() const noexcept {}

   private:
    Facility* f_;
  };

  /// co_await fac.acquire(); pairs with release().
  [[nodiscard]] Acquire acquire() { return Acquire(*this); }

  void release() {
    if (!waiters_.empty()) {
      // Hand the server to the head waiter without returning it to the
      // free pool.
      const auto h = waiters_.front();
      waiters_.pop_front();
      sched_->schedule_in(0.0, [h] { h.resume(); });
      return;
    }
    if (free_ == servers_) throw std::logic_error("facility released more than acquired");
    ++free_;
  }

  [[nodiscard]] std::uint32_t busy() const { return servers_ - free_; }
  [[nodiscard]] std::size_t queue_length() const { return waiters_.size(); }

 private:
  Scheduler* sched_;
  std::uint32_t free_;
  std::uint32_t servers_;
  std::deque<std::coroutine_handle<>> waiters_;
};

/// A typed CSIM-style mailbox: receive() suspends until a message arrives;
/// messages are handed to receivers in FCFS order.
template <typename T>
class Mailbox {
 public:
  explicit Mailbox(Scheduler& sched) : sched_(&sched) {}

  Mailbox(const Mailbox&) = delete;
  Mailbox& operator=(const Mailbox&) = delete;

  class Receive {
   public:
    explicit Receive(Mailbox& m) : m_(&m) {}
    [[nodiscard]] bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> h) {
      if (!m_->messages_.empty()) {
        value_ = std::move(m_->messages_.front());
        m_->messages_.pop_front();
        return false;  // message taken; resume immediately
      }
      handle_ = h;
      m_->receivers_.push_back(this);
      return true;
    }
    T await_resume() { return std::move(*value_); }

   private:
    friend class Mailbox;
    Mailbox* m_;
    std::coroutine_handle<> handle_;
    std::optional<T> value_;
  };

  void send(T value) {
    if (!receivers_.empty()) {
      Receive* r = receivers_.front();
      receivers_.pop_front();
      r->value_ = std::move(value);
      const auto h = r->handle_;
      sched_->schedule_in(0.0, [h] { h.resume(); });
      return;
    }
    messages_.push_back(std::move(value));
  }

  /// co_await mbox.receive().
  [[nodiscard]] Receive receive() { return Receive(*this); }

  [[nodiscard]] std::size_t queued() const { return messages_.size(); }
  [[nodiscard]] std::size_t waiting_receivers() const { return receivers_.size(); }

 private:
  Scheduler* sched_;
  std::deque<T> messages_;
  std::deque<Receive*> receivers_;
};

}  // namespace mcnet::evsim
