// Small-buffer callable for arena-allocated kernel events.  The hot path
// (worm advancement, coroutine resumption, traffic arrivals) constructs the
// capture in place inside the event record -- no heap allocation, no
// std::function.  Oversized captures (a handful of service-layer retry
// closures) fall back to a single heap allocation instead of silently
// failing to compile.
//
// Layout matters here: the whole dispatch table is one static Ops record
// per callable type, so an EventFn is a single pointer plus the inline
// buffer.  That keeps the scheduler's Event header and a small capture
// together in one cache line (see the Event layout notes in scheduler.hpp)
// and the Ops record itself stays hot in L1 for homogeneous event streams.
//
// Invoke and destroy are split so the scheduler can (a) destroy a
// cancelled callable immediately without running it -- releasing whatever
// resources it captured -- and (b) guarantee destruction after a handler
// throws (the run_until exception contract, see scheduler.hpp).
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mcnet::evsim {

/// Inline capture budget per event: 24 bytes, sized so the scheduler's
/// whole Event record is exactly one 64-byte cache line.  That covers the
/// hot-path closures (worm advancement, traffic arrivals: a `this` plus an
/// id or two); bigger captures (service-layer retry closures holding
/// shared_ptrs and vectors) heap-allocate transparently -- they are
/// per-message control events, not per-flit traffic.
inline constexpr std::size_t kEventFnInlineBytes = 24;

class EventFn {
 public:
  EventFn() = default;
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  // Events never move: slots live in address-stable slabs.
  EventFn(EventFn&&) = delete;
  EventFn& operator=(EventFn&&) = delete;
  ~EventFn() { destroy(); }

  /// Construct the callable in place.  The slot must be empty (the
  /// scheduler destroys before reuse).
  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>, "event handler must be callable as void()");
    if constexpr (sizeof(Fn) <= kEventFnInlineBytes && alignof(Fn) <= 8) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      static constexpr Ops kOps = {
          [](void* p) { (*static_cast<Fn*>(p))(); },
          [](void* p) { static_cast<Fn*>(p)->~Fn(); },
      };
      ops_ = &kOps;
    } else {
      // Heap fallback: the pointer to the heap copy lives at the start of
      // the inline buffer, and the Ops variant knows to chase it.
      Fn* heap = new Fn(std::forward<F>(f));
      ::new (static_cast<void*>(buf_)) Fn*(heap);
      static constexpr Ops kOps = {
          [](void* p) { (**static_cast<Fn**>(p))(); },
          [](void* p) { delete *static_cast<Fn**>(p); },
      };
      ops_ = &kOps;
    }
  }

  [[nodiscard]] bool armed() const { return ops_ != nullptr; }

  /// Run the callable (may throw).  Does NOT destroy it -- pair with
  /// destroy(), which the scheduler guarantees on success and throw alike.
  /// The callable runs in place, so the slot must stay address-stable for
  /// the duration (slab arenas never move existing slots).
  void invoke() { ops_->invoke(buf_); }

  /// Destroy without running (cancellation, post-invoke cleanup, slab
  /// teardown).  Idempotent.
  void destroy() {
    if (ops_ == nullptr) return;
    const Ops* o = ops_;
    ops_ = nullptr;
    o->destroy(buf_);
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*destroy)(void*);
  };

  const Ops* ops_ = nullptr;
  alignas(8) unsigned char buf_[kEventFnInlineBytes];
};

}  // namespace mcnet::evsim
