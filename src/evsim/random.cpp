#include "evsim/random.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace mcnet::evsim {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::vector<topo::NodeId> Rng::sample_destinations(std::uint32_t num_nodes,
                                                   topo::NodeId source, std::uint32_t k) {
  if (k + 1 > num_nodes) throw std::invalid_argument("too many destinations requested");
  // Sample k distinct values from [0, num_nodes - 2] (Floyd), then map past
  // the source so it is never selected.
  const std::uint32_t pool = num_nodes - 1;
  std::unordered_set<std::uint32_t> chosen;
  chosen.reserve(k * 2);
  std::vector<topo::NodeId> result;
  result.reserve(k);
  for (std::uint32_t j = pool - k; j < pool; ++j) {
    const std::uint32_t t = uniform_int(0, j);
    const std::uint32_t pick = chosen.insert(t).second ? t : j;
    if (pick != t) chosen.insert(j);
    const topo::NodeId node = pick >= source ? pick + 1 : pick;
    result.push_back(node);
  }
  std::shuffle(result.begin(), result.end(), engine_);
  return result;
}

}  // namespace mcnet::evsim
