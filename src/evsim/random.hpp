// Deterministic random streams for workload generation.  Every experiment
// derives independent per-point / per-node streams from a base seed via
// SplitMix64, so runs are reproducible regardless of execution order.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "topology/topology.hpp"

namespace mcnet::evsim {

/// SplitMix64 step: decorrelates derived seeds.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x);

/// Seed for stream `stream` derived from `base`.
[[nodiscard]] inline std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  return splitmix64(base ^ splitmix64(stream + 0x9e3779b97f4a7c15ULL));
}

/// Convenience wrapper over mt19937_64.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::uint32_t uniform_int(std::uint32_t lo, std::uint32_t hi) {
    return std::uniform_int_distribution<std::uint32_t>(lo, hi)(engine_);
  }
  /// Uniform real in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }
  /// Exponential with the given mean.
  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// `k` distinct nodes drawn uniformly from [0, num_nodes) \ {source}, in
  /// random order (Robert Floyd's sampling followed by a shuffle).
  [[nodiscard]] std::vector<topo::NodeId> sample_destinations(std::uint32_t num_nodes,
                                                              topo::NodeId source,
                                                              std::uint32_t k);

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace mcnet::evsim
