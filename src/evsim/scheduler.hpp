// Event-driven simulation kernel: the substrate standing in for the CSIM
// package the paper's simulations were written with.  A Scheduler owns a
// time-ordered event queue; ties break in schedule order so runs are fully
// deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace mcnet::evsim {

/// Simulated time in seconds.
using SimTime = double;

class Scheduler {
 public:
  using Handler = std::function<void()>;

  /// Current simulated time (the timestamp of the last dispatched event).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `h` at absolute time `t` (must be >= now()).
  void schedule_at(SimTime t, Handler h);

  /// Schedule `h` after a delay of `dt` (must be >= 0).
  void schedule_in(SimTime dt, Handler h) { schedule_at(now_ + dt, std::move(h)); }

  /// Dispatch the next event; returns false when the queue is empty.
  bool step();

  /// Dispatch until the queue is empty; returns the number of events run.
  std::uint64_t run();

  /// Dispatch events with timestamps <= `t_end`, then advance the clock to
  /// `t_end`; returns the number of events run.
  std::uint64_t run_until(SimTime t_end);

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Handler h;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace mcnet::evsim
