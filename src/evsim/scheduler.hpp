// Event-driven simulation kernel: the substrate standing in for the CSIM
// package the paper's simulations were written with.
//
// This is the rebuilt hot path (see docs/KERNEL.md):
//
//   * Event records live in address-stable slab arenas and carry their
//     callable inline (EventFn, no std::function / no per-event heap
//     allocation on the hot path).
//   * The pending set is a calendar queue -- an array of time-bucketed
//     intrusive lists covering a sliding window, O(1) amortized insert and
//     extract at wormhole timescales -- with a binary-heap overflow band
//     for sparse far-future events (timeouts, fault plans), so a 1 s
//     timeout never degrades the 50 ns flit traffic.
//   * schedule_at/schedule_in return an EventId cancellation handle;
//     cancel() destroys the callable immediately (releasing its captures)
//     and the carcass is discarded lazily when its bucket drains.
//
// Determinism rules (pinned by the Kernel test suites and the golden
// replay):
//   * Dispatch order is strict (time, schedule order): ties at one
//     timestamp run FIFO in the order they were scheduled, including
//     events scheduled from inside a running handler at the current time.
//   * The calendar geometry (bucket count, width, window position) never
//     affects dispatch order -- it is a performance knob only.
//
// Exception contract: if a handler throws (from step/run/run_until), the
// throwing event counts as dispatched, its callable is destroyed, the
// clock rests at the event's timestamp (run_until does NOT advance to
// t_end), every other pending event stays queued, and the scheduler
// remains fully usable.  The exception propagates to the caller.
//
// Time-arithmetic clamp: schedule_at accepts times up to a few ulp in the
// past (derived-time arithmetic like `(depth + l - 1 - p) * tau` can
// undershoot now() by sub-ulp amounts) and clamps them to now(); genuinely
// past times still throw std::invalid_argument.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "evsim/event_fn.hpp"

namespace mcnet::evsim {

/// Simulated time in seconds.
using SimTime = double;

/// Cancellation handle for a scheduled event.  Null by default; a handle
/// stays safe to cancel() forever (slot reuse is generation-checked), it
/// just becomes a no-op once the event has fired or been cancelled.
class EventId {
 public:
  EventId() = default;
  [[nodiscard]] bool valid() const { return slot_ != kNull; }
  explicit operator bool() const { return valid(); }

 private:
  friend class Scheduler;
  static constexpr std::uint32_t kNull = 0xFFFFFFFFu;
  EventId(std::uint32_t slot, std::uint32_t gen) : slot_(slot), gen_(gen) {}
  std::uint32_t slot_ = kNull;
  std::uint32_t gen_ = 0;
};

class Scheduler {
 public:
  Scheduler();
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time (the timestamp of the last dispatched event).
  [[nodiscard]] SimTime now() const { return now_; }

  /// Schedule `f` at absolute time `t` (>= now(), modulo the ulp clamp
  /// documented above).  Returns a cancellation handle.
  template <typename F>
  EventId schedule_at(SimTime t, F&& f) {
    t = admit_time(t);
    // Start the destination bucket's line towards the core now; the
    // alloc + capture construction below overlaps the fetch.  (For
    // far-future times this prefetches a harmless arbitrary bucket.)
    __builtin_prefetch(&buckets_[static_cast<std::size_t>(bucket_of(t) & mask_)], 1);
    const std::uint32_t slot = alloc_slot();
    Event& ev = event(slot);
    ev.t = t;
    ev.seq = next_seq_++;
    ev.fn.emplace(std::forward<F>(f));
    ev.state = State::kQueued;
    const EventId id(slot, ev.gen);
    enqueue(slot, t);
    ++live_;
    if (live_ > (mask_ + 1) / 2 && mask_ + 1 < kMaxBuckets) grow();
    if (overloaded_) maybe_overload_rebuild();
    return id;
  }

  /// Schedule `f` after a delay of `dt` (must be >= 0, modulo ulp clamp).
  template <typename F>
  EventId schedule_in(SimTime dt, F&& f) {
    return schedule_at(now_ + dt, std::forward<F>(f));
  }

  /// Cancel a pending event: its callable is destroyed immediately (never
  /// runs) and the event will not count as dispatched.  Returns true when
  /// the handle named a still-pending event; false for null/fired/
  /// cancelled/stale handles (all safe).
  bool cancel(EventId id);

  /// Dispatch the next event; returns false when the queue is empty.
  bool step();

  /// Dispatch until the queue is empty; returns the number of events run.
  std::uint64_t run();

  /// Dispatch events with timestamps <= `t_end`, then advance the clock to
  /// `t_end`; returns the number of events run.  On a handler throw the
  /// clock stays at the event's time (see the exception contract above).
  std::uint64_t run_until(SimTime t_end);

  [[nodiscard]] bool empty() const { return live_ == 0; }
  /// Scheduled-and-not-yet-fired events (cancelled events excluded).
  [[nodiscard]] std::size_t pending() const { return live_; }
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }
  [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_; }

  /// Calendar geometry, exposed for tests and bench introspection.
  [[nodiscard]] std::size_t num_buckets() const { return mask_ + 1; }
  [[nodiscard]] double bucket_width() const { return width_; }
  [[nodiscard]] std::size_t overflow_size() const { return overflow_.size(); }

 private:
  enum class State : std::uint8_t { kFree, kQueued, kCancelled, kRunning };

  // Cache-line aligned so the header (t, seq, links) plus the EventFn ops
  // pointer plus the first ~16 bytes of capture -- i.e. everything a
  // dispatch of a typical {this, id} closure touches -- sit in one line.
  struct alignas(64) Event {
    SimTime t = 0.0;
    std::uint64_t seq = 0;
    std::uint32_t next = kNil;  // intrusive bucket list / freelist link
    std::uint32_t gen = 0;      // bumped on slot free; validates EventIds
    State state = State::kFree;
    bool in_overflow = false;  // lives in the overflow heap, not a bucket
    EventFn fn;
  };

  struct Bucket {
    std::uint32_t head = kNil;
    std::uint32_t tail = kNil;
  };

  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;
  static constexpr std::uint32_t kSlabShift = 10;  // 1024 events per slab
  static constexpr std::uint32_t kSlabSize = 1u << kSlabShift;
  static constexpr std::uint64_t kMaxBuckets = 1u << 20;
  /// Bucket indices past 2^53 exceed double's contiguous-integer range;
  /// everything beyond is one far-future band in the overflow heap.
  static constexpr double kMaxBucketIndex = 9007199254740992.0;  // 2^53
  static constexpr std::uint64_t kFarFuture = 1ull << 62;

  // --- slab arena -----------------------------------------------------
  [[nodiscard]] Event& event(std::uint32_t i) {
    return slabs_[i >> kSlabShift][i & (kSlabSize - 1)];
  }
  std::uint32_t alloc_slot();
  void free_slot(std::uint32_t slot);

  // --- calendar queue -------------------------------------------------
  [[nodiscard]] std::uint64_t bucket_of(SimTime t) const {
    const double b = t * inv_width_;
    if (!(b < kMaxBucketIndex)) return kFarFuture;
    return static_cast<std::uint64_t>(b);
  }
  /// Clamp + validate a schedule time (ulp slack, throw on the past/NaN).
  [[nodiscard]] SimTime admit_time(SimTime t) const;
  void enqueue(std::uint32_t slot, SimTime t);
  void bucket_insert(std::size_t idx, std::uint32_t slot);
  void overflow_push(std::uint32_t slot);
  std::uint32_t overflow_pop();
  void overflow_sift_down(std::size_t i);
  /// Drop cancelled carcasses from the overflow heap and re-heapify.
  /// Called when carcasses outnumber live overflow events, so a sim that
  /// cancels far-future timeouts en masse (the reliable-delivery pattern)
  /// cannot leak arena slots until the window reaches their timestamps.
  void compact_overflow();
  void refill_from_overflow();
  /// Advance to the next live (non-cancelled) event, discarding carcasses;
  /// returns its slot (still at the head of bucket `cur_`) or kNil.
  std::uint32_t skim();
  /// Pop the skimmed head and run it (exception contract applies).
  void dispatch(std::uint32_t slot);
  /// Re-bucket every pending event under a new geometry.  With
  /// `estimate_width` the width argument is replaced by a sample-based
  /// estimate of the pending population's inter-event gap (falls back to
  /// `width` when the sample is too small to trust).
  void rebuild(std::uint64_t nbuckets, double width, bool estimate_width = false);
  void grow();
  void maybe_retune();
  void maybe_overload_rebuild();

  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t cancelled_ = 0;
  std::size_t live_ = 0;

  std::vector<std::unique_ptr<Event[]>> slabs_;
  std::uint32_t free_head_ = kNil;
  std::uint32_t next_unused_ = 0;

  std::vector<Bucket> buckets_;
  std::uint64_t mask_ = 0;     // buckets_.size() - 1 (power of two)
  double width_ = 1e-6;        // bucket width in seconds (retuned online)
  double inv_width_ = 1e6;
  std::uint64_t win_lo_ = 0;   // first absolute bucket index of the window
  std::uint64_t cur_ = 0;      // scan position (absolute bucket index)
  std::size_t in_window_ = 0;  // events (incl. carcasses) in buckets_
  /// Overflow-band heap entry: the sort key is duplicated here so sifts
  /// and min-peeks walk this contiguous array instead of chasing slab
  /// lines (the slab is only touched when an event actually moves).
  struct OvfEntry {
    SimTime t;
    std::uint64_t seq;
    std::uint32_t slot;
  };
  std::vector<OvfEntry> overflow_;      // min-heap by (t, seq)
  std::size_t overflow_carcasses_ = 0;  // cancelled events still in overflow_

  // Online width tuning: EWMA of nonzero inter-dispatch gaps.
  double gap_ewma_ = 0.0;
  SimTime last_dispatch_t_ = 0.0;
  std::uint64_t retune_countdown_ = kRetunePeriod;
  static constexpr std::uint64_t kRetunePeriod = 4096;

  // Insert-side overload trigger: a bucket_insert that walks a chain past
  // kOverloadChain flags the queue, and the next schedule_at/skim rebuilds
  // with a sampled width.  Without this, a burst of inserts under a stale
  // width piles everything into a few buckets and sorted insertion goes
  // quadratic long before the dispatch-gap EWMA ever gets a chance to run.
  bool overloaded_ = false;
  std::size_t overload_mark_ = 0;  // live_ at the last overload rebuild
  static constexpr std::uint32_t kOverloadChain = 16;
};

}  // namespace mcnet::evsim
