// The seed's binary-heap-of-std::function simulation kernel, preserved
// verbatim (header-only) as a reference implementation.  Two consumers keep
// it honest and alive:
//
//   * differential tests (tests/test_evsim_kernel.cpp) pin the calendar
//     kernel's dispatch order against this one on randomized workloads, and
//   * bench_kernel reports the calendar kernel's events/sec as a ratio over
//     this kernel -- the machine-independent speedup figure the bench-smoke
//     gate tracks.
//
// Do not use it in new simulation code: it heap-allocates one std::function
// per scheduled event, re-heapifies over a moved-from element on every
// dispatch, and has no cancellation.  Those are exactly the defects the
// production kernel in scheduler.hpp exists to fix.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <stdexcept>
#include <utility>
#include <vector>

namespace mcnet::evsim {

class LegacyHeapScheduler {
 public:
  using Handler = std::function<void()>;

  [[nodiscard]] double now() const { return now_; }

  void schedule_at(double t, Handler h) {
    if (t < now_) throw std::invalid_argument("cannot schedule into the past");
    queue_.push(Event{t, next_seq_++, std::move(h)});
  }

  void schedule_in(double dt, Handler h) { schedule_at(now_ + dt, std::move(h)); }

  bool step() {
    if (queue_.empty()) return false;
    // priority_queue::top() is const; the handler is moved out via a
    // const_cast, then pop() re-heapifies over the moved-from Event.  This
    // is the hazard the production kernel eliminates.
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.t;
    ++dispatched_;
    ev.h();
    return true;
  }

  std::uint64_t run() {
    std::uint64_t n = 0;
    while (step()) ++n;
    return n;
  }

  std::uint64_t run_until(double t_end) {
    std::uint64_t n = 0;
    while (!queue_.empty() && queue_.top().t <= t_end) {
      step();
      ++n;
    }
    if (now_ < t_end) now_ = t_end;
    return n;
  }

  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_dispatched() const { return dispatched_; }

 private:
  struct Event {
    double t;
    std::uint64_t seq;
    Handler h;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      return a.t > b.t || (a.t == b.t && a.seq > b.seq);
    }
  };

  double now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace mcnet::evsim
