// CSIM-style quasi-parallel processes built on C++20 coroutines.
//
// A Process coroutine models one CSIM pseudo-process: it runs until it
// co_awaits a delay (CSIM "hold"), a Facility acquisition, or a Mailbox
// receive, at which point control returns to the Scheduler.  Processes are
// detached: the coroutine frame destroys itself when the body returns, so
// a process must terminate on its own (e.g. by checking a stop flag);
// experiment harnesses drain the event queue before tearing down.
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

#include "evsim/scheduler.hpp"

namespace mcnet::evsim {

/// Return type for detached simulation processes.
class Process {
 public:
  struct promise_type {
    Process get_return_object() { return Process{}; }
    // Eager start: the body runs inline until its first suspension.
    std::suspend_never initial_suspend() noexcept { return {}; }
    // Self-destroy on completion: never suspend at the end.
    std::suspend_never final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    [[noreturn]] void unhandled_exception() { std::terminate(); }
  };
};

/// Awaitable that suspends the process for `dt` simulated seconds.
class DelayAwaitable {
 public:
  DelayAwaitable(Scheduler& sched, SimTime dt) : sched_(&sched), dt_(dt) {}
  [[nodiscard]] bool await_ready() const noexcept { return dt_ <= 0.0; }
  void await_suspend(std::coroutine_handle<> h) const {
    sched_->schedule_in(dt_, [h] { h.resume(); });
  }
  void await_resume() const noexcept {}

 private:
  Scheduler* sched_;
  SimTime dt_;
};

/// CSIM "hold": co_await delay(sched, dt).
[[nodiscard]] inline DelayAwaitable delay(Scheduler& sched, SimTime dt) {
  return DelayAwaitable(sched, dt);
}

}  // namespace mcnet::evsim
