// Output statistics for dynamic simulations: running summaries and the
// method of batch means (Law & Kelton) with Student-t confidence
// intervals.  The paper's stopping rule -- run until the 95 % confidence
// interval is within 5 % of the mean -- is `converged()`.
#pragma once

#include <cstdint>
#include <vector>

namespace mcnet::evsim {

/// Plain running summary (count / mean / variance / extrema), Welford's
/// algorithm.
class Summary {
 public:
  void add(double x);
  [[nodiscard]] std::uint64_t count() const { return count_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const;  // sample variance (n-1)
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Upper 97.5 % Student-t quantile for `df` degrees of freedom (two-sided
/// 95 % interval); falls back to the normal quantile for large df.
[[nodiscard]] double student_t_975(std::uint32_t df);

/// Method of batch means: samples are grouped into fixed-size batches;
/// the batch averages are treated as (approximately) independent
/// observations.  The first `discard` batches are dropped as warm-up.
class BatchMeans {
 public:
  explicit BatchMeans(std::uint32_t batch_size, std::uint32_t discard = 1);

  void add(double x);

  [[nodiscard]] std::uint64_t samples() const { return samples_; }
  [[nodiscard]] std::uint32_t completed_batches() const {
    return static_cast<std::uint32_t>(batch_means_.size());
  }
  /// Batches contributing to the estimate (completed minus discarded).
  [[nodiscard]] std::uint32_t effective_batches() const;
  /// Grand mean over effective batches (0 when none).
  [[nodiscard]] double mean() const;
  /// Half-width of the 95 % confidence interval (infinity with < 2
  /// effective batches).
  [[nodiscard]] double half_width() const;
  /// The paper's stopping rule: >= `min_batches` effective batches and
  /// half-width <= rel * |mean|.
  [[nodiscard]] bool converged(double rel = 0.05, std::uint32_t min_batches = 10) const;

 private:
  std::uint32_t batch_size_;
  std::uint32_t discard_;
  std::uint64_t samples_ = 0;
  double current_sum_ = 0.0;
  std::uint32_t current_count_ = 0;
  std::vector<double> batch_means_;
};

}  // namespace mcnet::evsim
