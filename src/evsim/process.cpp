// Intentionally minimal: Process and DelayAwaitable are header-only; this
// translation unit anchors the module in the library.
#include "evsim/process.hpp"

namespace mcnet::evsim {

// (no out-of-line definitions)

}  // namespace mcnet::evsim
