// Facility and Mailbox are header-only; this translation unit anchors the
// module in the library.
#include "evsim/facility.hpp"

namespace mcnet::evsim {

// (no out-of-line definitions)

}  // namespace mcnet::evsim
