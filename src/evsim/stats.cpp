#include "evsim/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace mcnet::evsim {

void Summary::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

double student_t_975(std::uint32_t df) {
  // Two-sided 95 % quantiles, df = 1..30, then the normal approximation.
  static constexpr double kT[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df == 0) return std::numeric_limits<double>::infinity();
  if (df <= 30) return kT[df - 1];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

BatchMeans::BatchMeans(std::uint32_t batch_size, std::uint32_t discard)
    : batch_size_(batch_size), discard_(discard) {
  if (batch_size == 0) throw std::invalid_argument("batch size must be positive");
}

void BatchMeans::add(double x) {
  ++samples_;
  current_sum_ += x;
  if (++current_count_ == batch_size_) {
    batch_means_.push_back(current_sum_ / batch_size_);
    current_sum_ = 0.0;
    current_count_ = 0;
  }
}

std::uint32_t BatchMeans::effective_batches() const {
  const auto completed = static_cast<std::uint32_t>(batch_means_.size());
  return completed > discard_ ? completed - discard_ : 0;
}

double BatchMeans::mean() const {
  const std::uint32_t n = effective_batches();
  if (n == 0) return 0.0;
  double sum = 0.0;
  for (std::size_t i = discard_; i < batch_means_.size(); ++i) sum += batch_means_[i];
  return sum / n;
}

double BatchMeans::half_width() const {
  const std::uint32_t n = effective_batches();
  if (n < 2) return std::numeric_limits<double>::infinity();
  const double m = mean();
  double ss = 0.0;
  for (std::size_t i = discard_; i < batch_means_.size(); ++i) {
    const double d = batch_means_[i] - m;
    ss += d * d;
  }
  const double s2 = ss / (n - 1);
  return student_t_975(n - 1) * std::sqrt(s2 / n);
}

bool BatchMeans::converged(double rel, std::uint32_t min_batches) const {
  const std::uint32_t n = effective_batches();
  if (n < min_batches) return false;
  const double m = mean();
  if (m == 0.0) return false;
  return half_width() <= rel * std::abs(m);
}

}  // namespace mcnet::evsim
