#include "evsim/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace mcnet::evsim {

Scheduler::Scheduler() {
  buckets_.assign(256, Bucket{});
  mask_ = buckets_.size() - 1;
}

Scheduler::~Scheduler() = default;

// --- slab arena -------------------------------------------------------

std::uint32_t Scheduler::alloc_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t slot = free_head_;
    free_head_ = event(slot).next;
    return slot;
  }
  if ((next_unused_ >> kSlabShift) == slabs_.size()) {
    slabs_.emplace_back(new Event[kSlabSize]);
  }
  return next_unused_++;
}

void Scheduler::free_slot(std::uint32_t slot) {
  Event& ev = event(slot);
  ev.fn.destroy();  // idempotent; already destroyed for cancelled events
  ev.state = State::kFree;
  ev.in_overflow = false;
  ++ev.gen;  // invalidate outstanding EventIds for this slot
  ev.next = free_head_;
  free_head_ = slot;
}

// --- time admission ---------------------------------------------------

SimTime Scheduler::admit_time(SimTime t) const {
  if (t >= now_) return t;  // NaN fails this and falls through to the throw
  // Derived-time arithmetic (e.g. `t0 + (depth + l - 1 - p) * tau`) can
  // undershoot now() by a few ulp; clamp those, reject anything worse.
  const double slack =
      64.0 * std::numeric_limits<double>::epsilon() * std::max(1.0, std::fabs(now_));
  if (t >= now_ - slack) return now_;
  throw std::invalid_argument("cannot schedule into the past");
}

// --- calendar queue ---------------------------------------------------

void Scheduler::bucket_insert(std::size_t idx, std::uint32_t slot) {
  Bucket& bk = buckets_[idx];
  Event& ev = event(slot);
  ev.next = kNil;
  if (bk.head == kNil) {
    bk.head = bk.tail = slot;
    return;
  }
  // Fast path: new events carry the largest seq so far, so append wins
  // whenever the timestamp is not earlier than the tail's.
  Event& tail = event(bk.tail);
  if (ev.t > tail.t || (ev.t == tail.t && ev.seq > tail.seq)) {
    tail.next = slot;
    bk.tail = slot;
    return;
  }
  // Sorted insert by (t, seq) keeps the bucket a ready-to-dispatch run.
  std::uint32_t prev = kNil;
  std::uint32_t cur = bk.head;
  std::uint32_t walked = 0;
  while (cur != kNil) {
    const Event& c = event(cur);
    if (ev.t < c.t || (ev.t == c.t && ev.seq < c.seq)) break;
    prev = cur;
    cur = c.next;
    ++walked;
  }
  if (walked > kOverloadChain) overloaded_ = true;
  ev.next = cur;
  if (prev == kNil) {
    bk.head = slot;
  } else {
    event(prev).next = slot;
  }
  if (cur == kNil) bk.tail = slot;
}

void Scheduler::overflow_push(std::uint32_t slot) {
  Event& ev = event(slot);
  ev.in_overflow = true;
  overflow_.push_back(OvfEntry{ev.t, ev.seq, slot});
  std::size_t i = overflow_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    const OvfEntry& a = overflow_[i];
    const OvfEntry& b = overflow_[parent];
    if (a.t > b.t || (a.t == b.t && a.seq > b.seq)) break;
    std::swap(overflow_[i], overflow_[parent]);
    i = parent;
  }
}

void Scheduler::overflow_sift_down(std::size_t i) {
  const std::size_t n = overflow_.size();
  auto earlier = [](const OvfEntry& a, const OvfEntry& b) {
    return a.t < b.t || (a.t == b.t && a.seq < b.seq);
  };
  for (;;) {
    const std::size_t l = 2 * i + 1;
    const std::size_t r = l + 1;
    std::size_t min = i;
    if (l < n && earlier(overflow_[l], overflow_[min])) min = l;
    if (r < n && earlier(overflow_[r], overflow_[min])) min = r;
    if (min == i) break;
    std::swap(overflow_[i], overflow_[min]);
    i = min;
  }
}

std::uint32_t Scheduler::overflow_pop() {
  const std::uint32_t top = overflow_.front().slot;
  event(top).in_overflow = false;
  if (event(top).state == State::kCancelled) --overflow_carcasses_;
  overflow_.front() = overflow_.back();
  overflow_.pop_back();
  overflow_sift_down(0);
  return top;
}

void Scheduler::compact_overflow() {
  std::size_t keep = 0;
  for (const OvfEntry& e : overflow_) {
    if (event(e.slot).state == State::kCancelled) {
      event(e.slot).in_overflow = false;
      free_slot(e.slot);
    } else {
      overflow_[keep++] = e;
    }
  }
  overflow_.resize(keep);
  overflow_carcasses_ = 0;
  // Floyd heap construction: O(n) over the survivors.
  for (std::size_t i = keep / 2; i-- > 0;) overflow_sift_down(i);
}

void Scheduler::enqueue(std::uint32_t slot, SimTime t) {
  std::uint64_t b = bucket_of(t);
  if (b >= win_lo_ + (mask_ + 1)) {
    overflow_push(slot);
    return;
  }
  // A clamped-or-boundary time can map below the scan position; folding it
  // into bucket cur_ is order-safe because buckets hold (t, seq)-sorted
  // runs and every later bucket holds strictly later times (the bucket map
  // is monotone in t).
  if (b < cur_) b = cur_;
  bucket_insert(static_cast<std::size_t>(b & mask_), slot);
  ++in_window_;
}

void Scheduler::refill_from_overflow() {
  while (!overflow_.empty()) {
    const std::uint32_t top = overflow_.front().slot;
    if (event(top).state == State::kCancelled) {
      overflow_pop();
      free_slot(top);
      continue;
    }
    std::uint64_t b = bucket_of(overflow_.front().t);
    if (b >= win_lo_ + (mask_ + 1)) break;
    overflow_pop();
    if (b < cur_) b = cur_;
    bucket_insert(static_cast<std::size_t>(b & mask_), top);
    ++in_window_;
  }
}

std::uint32_t Scheduler::skim() {
  for (;;) {
    if (overloaded_) maybe_overload_rebuild();  // e.g. tripped during refill
    if (in_window_ == 0) {
      while (!overflow_.empty() &&
             event(overflow_.front().slot).state == State::kCancelled) {
        const std::uint32_t s = overflow_pop();
        free_slot(s);
      }
      if (overflow_.empty()) return kNil;
      const SimTime tmin = overflow_.front().t;
      if (!std::isfinite(tmin)) {
        // +inf timestamps have no bucket; feed them through bucket cur_
        // one at a time in heap (t, seq) order.
        const std::uint32_t s = overflow_pop();
        bucket_insert(static_cast<std::size_t>(cur_ & mask_), s);
        ++in_window_;
        continue;
      }
      if (!(tmin * inv_width_ < kMaxBucketIndex)) {
        // The earliest pending time overflows the mappable index range;
        // widen the buckets until it fits, then retry.
        rebuild(mask_ + 1, tmin / (kMaxBucketIndex / 2.0));
        continue;
      }
      // The window is dry: jump it straight to the earliest pending event
      // instead of crawling across empty buckets.
      win_lo_ = cur_ = bucket_of(tmin);
      refill_from_overflow();
      continue;
    }
    while (buckets_[cur_ & mask_].head == kNil) {
      ++cur_;
      if (cur_ == win_lo_ + (mask_ + 1)) {
        win_lo_ = cur_;
        refill_from_overflow();
      }
    }
    const std::uint32_t head = buckets_[cur_ & mask_].head;
    Event& ev = event(head);
    if (ev.state == State::kCancelled) {
      // Lazy carcass removal: the callable died at cancel() time, the
      // record is discarded here.
      Bucket& bk = buckets_[cur_ & mask_];
      bk.head = ev.next;
      if (bk.head == kNil) bk.tail = kNil;
      --in_window_;
      free_slot(head);
      continue;
    }
    return head;
  }
}

void Scheduler::dispatch(std::uint32_t slot) {
  Bucket& bk = buckets_[cur_ & mask_];
  Event& ev = event(slot);
  bk.head = ev.next;
  if (bk.head == kNil) {
    bk.tail = kNil;
    // The next dispatch comes from a later bucket; probe a few ahead (the
    // bucket array is contiguous, so this is ~one extra cache line) and
    // start their head events' lines towards the core while the handler
    // below runs.  Pure hint: a handler-scheduled earlier event just makes
    // the prefetch useless, never wrong.
    int found = 0;
    for (std::uint64_t k = 1; k <= 8 && found < 2; ++k) {
      const std::uint32_t h = buckets_[(cur_ + k) & mask_].head;
      if (h != kNil) {
        __builtin_prefetch(&event(h));
        ++found;
      }
    }
  } else {
    // The chain successor is the likeliest next dispatch.
    __builtin_prefetch(&event(bk.head));
  }
  --in_window_;
  // kRunning (not freed) while the handler executes: a cancel() aimed at
  // the running event is a defined no-op, and the handle only goes stale
  // when the slot is freed below.
  ev.state = State::kRunning;
  now_ = ev.t;
  ++dispatched_;
  --live_;
  if (ev.t > last_dispatch_t_) {
    const double gap = ev.t - last_dispatch_t_;
    gap_ewma_ = gap_ewma_ == 0.0 ? gap : 0.875 * gap_ewma_ + 0.125 * gap;
  }
  last_dispatch_t_ = ev.t;
  if (--retune_countdown_ == 0) {
    retune_countdown_ = kRetunePeriod;
    maybe_retune();
  }
  // Destroy-and-free runs on the success path and the throw path alike
  // (the run_until exception contract).  The callable executes in place;
  // the slab slot is address-stable throughout.
  struct SlotGuard {
    Scheduler* s;
    std::uint32_t slot;
    ~SlotGuard() { s->free_slot(slot); }
  } guard{this, slot};
  ev.fn.invoke();
}

void Scheduler::rebuild(std::uint64_t nbuckets, double width, bool estimate_width) {
  std::vector<std::uint32_t> slots;
  slots.reserve(live_);
  for (Bucket& bk : buckets_) {
    std::uint32_t s = bk.head;
    while (s != kNil) {
      const std::uint32_t next = event(s).next;
      if (event(s).state == State::kCancelled) {
        free_slot(s);
      } else {
        slots.push_back(s);
      }
      s = next;
    }
    bk.head = bk.tail = kNil;
  }
  for (const OvfEntry& e : overflow_) {
    event(e.slot).in_overflow = false;
    if (event(e.slot).state == State::kCancelled) {
      free_slot(e.slot);
    } else {
      slots.push_back(e.slot);
    }
  }
  overflow_.clear();
  overflow_carcasses_ = 0;

  if (estimate_width && slots.size() >= 32) {
    // Width from the population itself: a strided sample of pending times,
    // sorted; consecutive sample gaps span ~(live / samples) events each,
    // so the median positive gap scaled back down is a robust local
    // inter-event spacing (far-future outliers only inflate the top gaps).
    const std::size_t stride = std::max<std::size_t>(1, slots.size() / 256);
    std::vector<double> ts;
    ts.reserve(slots.size() / stride + 1);
    for (std::size_t i = 0; i < slots.size(); i += stride) {
      const double t = event(slots[i]).t;
      if (std::isfinite(t)) ts.push_back(t);
    }
    std::sort(ts.begin(), ts.end());
    std::vector<double> gaps;
    gaps.reserve(ts.size());
    for (std::size_t i = 1; i < ts.size(); ++i) {
      const double g = ts[i] - ts[i - 1];
      if (g > 0.0) gaps.push_back(g);
    }
    if (gaps.size() >= 8) {
      std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
      const double per_event = gaps[gaps.size() / 2] * static_cast<double>(ts.size()) /
                               static_cast<double>(slots.size());
      width = 2.0 * per_event;  // aim for ~2 events per bucket
    }
  }
  width = std::max(width, 1e-12);
  // now() itself must stay mappable or the new window origin is undefined.
  if (!(now_ / width < kMaxBucketIndex / 2.0)) width = now_ / (kMaxBucketIndex / 2.0);

  buckets_.assign(static_cast<std::size_t>(nbuckets), Bucket{});
  mask_ = nbuckets - 1;
  width_ = width;
  inv_width_ = 1.0 / width;
  in_window_ = 0;
  win_lo_ = cur_ = bucket_of(now_);
  if (win_lo_ == kFarFuture) win_lo_ = cur_ = 0;  // unreachable after the clamp above

  for (const std::uint32_t s : slots) {
    std::uint64_t b = bucket_of(event(s).t);
    if (b >= win_lo_ + (mask_ + 1)) {
      overflow_push(s);
    } else {
      if (b < cur_) b = cur_;
      bucket_insert(static_cast<std::size_t>(b & mask_), s);
      ++in_window_;
    }
  }
}

void Scheduler::grow() { rebuild((mask_ + 1) * 2, width_); }

void Scheduler::maybe_overload_rebuild() {
  overloaded_ = false;
  // Hysteresis: one estimating rebuild per doubling of the population, so
  // a pile-up the estimator cannot separate (e.g. mass ties) degrades to
  // plain sorted inserts instead of a rebuild storm.
  if (live_ < 2 * overload_mark_) return;
  rebuild(mask_ + 1, width_, /*estimate_width=*/true);
  overload_mark_ = live_;
}

void Scheduler::maybe_retune() {
  if (gap_ewma_ <= 0.0) return;
  // Aim for a few events per bucket; only pay for a rebuild when the
  // current width is off by more than an order of magnitude both ways.
  const double target = gap_ewma_ * 2.0;
  if (width_ > target * 16.0 || width_ * 16.0 < target) {
    rebuild(mask_ + 1, target);
  }
}

// --- public API -------------------------------------------------------

bool Scheduler::cancel(EventId id) {
  if (!id.valid() || id.slot_ >= next_unused_) return false;
  Event& ev = event(id.slot_);
  if (ev.gen != id.gen_ || ev.state != State::kQueued) return false;
  ev.state = State::kCancelled;
  ev.fn.destroy();  // release captured resources immediately
  --live_;
  ++cancelled_;
  // In-bucket carcasses die when the scan reaches them (soon: the window
  // covers the near future).  Overflow carcasses could sit for an
  // arbitrarily long sim-time, so compact once they outnumber live
  // overflow events -- amortized O(1) per cancel.
  if (ev.in_overflow && ++overflow_carcasses_ * 2 > overflow_.size()) compact_overflow();
  return true;
}

bool Scheduler::step() {
  const std::uint32_t slot = skim();
  if (slot == kNil) return false;
  dispatch(slot);
  return true;
}

std::uint64_t Scheduler::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t Scheduler::run_until(SimTime t_end) {
  std::uint64_t n = 0;
  for (;;) {
    const std::uint32_t slot = skim();
    if (slot == kNil || event(slot).t > t_end) break;
    dispatch(slot);  // on throw: counted in events_dispatched(), clock at ev.t
    ++n;
  }
  if (now_ < t_end) now_ = t_end;
  return n;
}

}  // namespace mcnet::evsim
