#include "evsim/scheduler.hpp"

#include <stdexcept>
#include <utility>

namespace mcnet::evsim {

void Scheduler::schedule_at(SimTime t, Handler h) {
  if (t < now_) throw std::invalid_argument("cannot schedule into the past");
  queue_.push(Event{t, next_seq_++, std::move(h)});
}

bool Scheduler::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; the handler is moved out via a copy of
  // the shared_ptr-backed std::function, then the event is popped.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  now_ = ev.t;
  ++dispatched_;
  ev.h();
  return true;
}

std::uint64_t Scheduler::run() {
  std::uint64_t n = 0;
  while (step()) ++n;
  return n;
}

std::uint64_t Scheduler::run_until(SimTime t_end) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().t <= t_end) {
    step();
    ++n;
  }
  if (now_ < t_end) now_ = t_end;
  return n;
}

}  // namespace mcnet::evsim
