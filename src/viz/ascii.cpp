#include "viz/ascii.hpp"

#include <algorithm>
#include <sstream>
#include <vector>

namespace mcnet::viz {

namespace {
using topo::Coord2;
using topo::NodeId;
}  // namespace

std::string render_mesh_route(const topo::Mesh2D& mesh,
                              const mcast::MulticastRequest& request,
                              const mcast::MulticastRoute& route) {
  const auto w = static_cast<std::int32_t>(mesh.width());
  const auto h = static_cast<std::int32_t>(mesh.height());
  std::vector<std::string> canvas(2 * h - 1, std::string(4 * w - 3, ' '));
  const auto cell = [&](std::int32_t x, std::int32_t y) -> char& {
    return canvas[2 * (h - 1 - y)][4 * x];
  };
  for (std::int32_t y = 0; y < h; ++y) {
    for (std::int32_t x = 0; x < w; ++x) cell(x, y) = '.';
  }
  const auto mark_link = [&](NodeId a, NodeId b) {
    const Coord2 ca = mesh.coord(a);
    const Coord2 cb = mesh.coord(b);
    if (ca.y == cb.y) {
      const std::int32_t x = std::min(ca.x, cb.x);
      for (int i = 1; i <= 3; ++i) canvas[2 * (h - 1 - ca.y)][4 * x + i] = '-';
    } else {
      const std::int32_t y = std::min(ca.y, cb.y);
      canvas[2 * (h - 1 - y) - 1][4 * ca.x] = '|';
    }
    if (cell(ca.x, ca.y) == '.') cell(ca.x, ca.y) = '*';
    if (cell(cb.x, cb.y) == '.') cell(cb.x, cb.y) = '*';
  };
  for (const auto& p : route.paths) {
    for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) mark_link(p.nodes[i], p.nodes[i + 1]);
  }
  for (const auto& t : route.trees) {
    for (const auto& l : t.links) mark_link(l.from, l.to);
  }
  for (const NodeId d : request.destinations) {
    const Coord2 c = mesh.coord(d);
    cell(c.x, c.y) = 'D';
  }
  const Coord2 s = mesh.coord(request.source);
  cell(s.x, s.y) = 'S';

  std::ostringstream os;
  for (const std::string& line : canvas) os << line << '\n';
  return os.str();
}

std::string describe_route(const mcast::MulticastRoute& route) {
  std::ostringstream os;
  for (std::size_t pi = 0; pi < route.paths.size(); ++pi) {
    const auto& p = route.paths[pi];
    os << "path " << pi << " (class " << int(p.channel_class) << "):";
    for (std::size_t i = 0; i < p.nodes.size(); ++i) {
      os << ' ' << p.nodes[i];
      if (std::find(p.delivery_hops.begin(), p.delivery_hops.end(),
                    static_cast<std::uint32_t>(i)) != p.delivery_hops.end()) {
        os << '!';
      }
    }
    os << '\n';
  }
  for (std::size_t ti = 0; ti < route.trees.size(); ++ti) {
    const auto& t = route.trees[ti];
    os << "tree " << ti << " (class " << int(t.channel_class) << "):";
    for (std::size_t li = 0; li < t.links.size(); ++li) {
      os << " [" << t.links[li].from << "->" << t.links[li].to;
      if (std::find(t.delivery_links.begin(), t.delivery_links.end(),
                    static_cast<std::uint32_t>(li)) != t.delivery_links.end()) {
        os << '!';
      }
      os << ']';
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace mcnet::viz
