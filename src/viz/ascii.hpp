// ASCII rendering of mesh routing patterns -- the library form of the
// paper's Figs. 5.7-5.12 / 6.13-6.17 diagrams (used by the
// routing_patterns example and handy in test failure output).
#pragma once

#include <string>

#include "core/multicast.hpp"
#include "topology/mesh2d.hpp"

namespace mcnet::viz {

/// Render a route on a 2-D mesh: 'S' source, 'D' destinations, '*' transit
/// nodes, '.' untouched nodes, '-'/'|' used links.  Row y = height-1 is
/// printed first (mathematical orientation, matching the paper's figures).
[[nodiscard]] std::string render_mesh_route(const topo::Mesh2D& mesh,
                                            const mcast::MulticastRequest& request,
                                            const mcast::MulticastRoute& route);

/// One-line-per-component textual summary of a route (works for any
/// topology): path node sequences and tree link lists with delivery marks.
[[nodiscard]] std::string describe_route(const mcast::MulticastRoute& route);

}  // namespace mcnet::viz
