// The greedy Steiner-tree (ST) heuristic of Section 5.2 (Figures 5.3 and
// 5.4), simulated as the distributed process the paper specifies:
//
//  * message preparation at the source sorts destinations by ascending
//    distance from the source;
//  * every *replicate* node rebuilds a greedy Steiner tree over its
//    destination sublist: starting from the edge (u, u1), each further
//    destination u_i attaches at the node v nearest to u_i among all nodes
//    lying on shortest paths between the endpoints of existing tree edges
//    (splitting the edge at v when v is interior);
//  * the sublist of each subtree is forwarded toward that subtree's root
//    through *bypass* nodes that simply relay along a deterministic
//    shortest path.
//
// The nearest-node computation is the constant-time clamp of Section 5.2
// (bounding box on meshes, bit-merge on hypercubes), supplied by the host
// topology through `closest`.
#pragma once

#include <functional>

#include "cdg/channel_graph.hpp"
#include "core/multicast.hpp"
#include "topology/topology.hpp"

namespace mcnet::mcast {

/// Nearest node to `w` among nodes on shortest paths between `s` and `t`.
using ClosestOnPathsFn =
    std::function<topo::NodeId(topo::NodeId s, topo::NodeId t, topo::NodeId w)>;

/// Run the greedy ST algorithm.  `unicast` supplies the deterministic
/// shortest-path relay used between replicate nodes (X-first on meshes,
/// e-cube on hypercubes); `closest` supplies the Section 5.2 clamp.
[[nodiscard]] MulticastRoute greedy_st_route(const topo::Topology& topology,
                                             const cdg::RoutingFunction& unicast,
                                             const ClosestOnPathsFn& closest,
                                             const MulticastRequest& request);

}  // namespace mcnet::mcast
