// The sorted multicast-path (MP) and multicast-cycle (MC) heuristics of
// Section 5.1 (Figures 5.1 and 5.2).
//
// Message preparation (at the source): compute the cyclic key
// f(v) = position of v along a fixed Hamiltonian cycle starting from the
// source, and sort the destinations by ascending f.
//
// Message routing (at every forward node): with d the first remaining
// destination, forward to the neighbour w' with the greatest f(w') <= f(d).
// Theorem 5.1 shows the selected edges induce a multicast path; Fact 2
// guarantees progress because the Hamiltonian-cycle successor of w always
// satisfies f = f(w) + 1.
#pragma once

#include "core/multicast.hpp"
#include "topology/hamiltonian.hpp"

namespace mcnet::mcast {

/// Sorted-MP: a single path from the source visiting every destination in
/// cyclic-key order.
[[nodiscard]] MulticastRoute sorted_mp_route(const topo::Topology& topology,
                                             const ham::HamiltonCycle& cycle,
                                             const MulticastRequest& request);

/// Sorted-MC: as sorted-MP, but the path additionally returns to the source
/// (the source is appended with key N), providing the cycle-based
/// acknowledgement of Definition 3.2.
[[nodiscard]] MulticastRoute sorted_mc_route(const topo::Topology& topology,
                                             const ham::HamiltonCycle& cycle,
                                             const MulticastRequest& request);

}  // namespace mcnet::mcast
