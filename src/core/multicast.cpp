#include "core/multicast.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

namespace mcnet::mcast {

void MulticastRequest::validate(std::uint32_t num_nodes) const {
  if (source >= num_nodes) throw std::invalid_argument("source out of range");
  if (destinations.empty()) throw std::invalid_argument("multicast needs >= 1 destination");
  std::vector<NodeId> sorted = destinations;
  std::sort(sorted.begin(), sorted.end());
  if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
    throw std::invalid_argument("duplicate destination");
  }
  for (const NodeId d : sorted) {
    if (d >= num_nodes) throw std::invalid_argument("destination out of range");
    if (d == source) throw std::invalid_argument("destination equals source");
  }
}

bool MulticastRequest::is_normalized(std::uint32_t num_nodes,
                                     RequestScratch& scratch) const {
  if (source >= num_nodes) {
    throw std::invalid_argument("multicast source " + std::to_string(source) +
                                " out of range (network has " + std::to_string(num_nodes) +
                                " nodes)");
  }
  if (destinations.empty()) throw std::invalid_argument("multicast needs >= 1 destination");
  scratch.begin(num_nodes);
  bool clean = true;
  // Keep scanning after the first duplicate: a later destination may be out
  // of range or equal the source, and those must throw exactly as the old
  // rebuild-always path did (error precedence is positional).
  for (const NodeId d : destinations) {
    if (d >= num_nodes) {
      throw std::invalid_argument("multicast destination " + std::to_string(d) +
                                  " out of range (network has " + std::to_string(num_nodes) +
                                  " nodes)");
    }
    if (d == source) {
      throw std::invalid_argument("multicast destination set contains the source node " +
                                  std::to_string(source));
    }
    if (!scratch.mark(d)) clean = false;
  }
  return clean;
}

const MulticastRequest& MulticastRequest::normalize_into(std::uint32_t num_nodes,
                                                         RequestScratch& scratch,
                                                         MulticastRequest& storage) const {
  if (is_normalized(num_nodes, scratch)) return *this;
  // Rebuild with dedup (first occurrence kept, order preserved); validity
  // was established by the scan above, so no re-checking here.
  storage.source = source;
  storage.destinations.clear();
  storage.destinations.reserve(destinations.size());
  scratch.begin(num_nodes);
  for (const NodeId d : destinations) {
    if (scratch.mark(d)) storage.destinations.push_back(d);
  }
  return storage;
}

MulticastRequest MulticastRequest::normalized(std::uint32_t num_nodes) const {
  thread_local RequestScratch scratch;
  MulticastRequest storage;
  const MulticastRequest& result = normalize_into(num_nodes, scratch, storage);
  if (&result == this) return *this;  // clean fast path: plain copy, no rebuild
  return storage;  // NRVO / implicit move
}

std::uint32_t TreeRoute::add_link(NodeId from, NodeId to, std::int32_t parent) {
  Link link;
  link.from = from;
  link.to = to;
  link.parent = parent;
  link.depth = parent < 0 ? 1 : links[static_cast<std::size_t>(parent)].depth + 1;
  links.push_back(link);
  return static_cast<std::uint32_t>(links.size() - 1);
}

std::uint64_t MulticastRoute::traffic() const {
  std::uint64_t t = 0;
  for (const PathRoute& p : paths) t += p.hops();
  for (const TreeRoute& tr : trees) t += tr.links.size();
  return t;
}

std::uint32_t MulticastRoute::max_delivery_hops() const {
  std::uint32_t m = 0;
  for (const PathRoute& p : paths) {
    for (const std::uint32_t h : p.delivery_hops) m = std::max(m, h);
  }
  for (const TreeRoute& tr : trees) {
    for (const std::uint32_t li : tr.delivery_links) m = std::max(m, tr.links[li].depth);
  }
  return m;
}

std::uint32_t MulticastRoute::num_deliveries() const {
  std::uint32_t n = 0;
  for (const PathRoute& p : paths) n += static_cast<std::uint32_t>(p.delivery_hops.size());
  for (const TreeRoute& t : trees) n += static_cast<std::uint32_t>(t.delivery_links.size());
  return n;
}

void verify_route(const topo::Topology& topology, const MulticastRequest& request,
                  const MulticastRoute& route) {
  if (route.source != request.source) throw std::logic_error("route source mismatch");
  std::unordered_map<NodeId, int> delivered;
  for (const NodeId d : request.destinations) delivered[d] = 0;

  for (const PathRoute& p : route.paths) {
    if (p.nodes.empty()) throw std::logic_error("empty path");
    if (p.nodes.front() != request.source) throw std::logic_error("path must start at source");
    for (std::size_t i = 0; i + 1 < p.nodes.size(); ++i) {
      if (!topology.adjacent(p.nodes[i], p.nodes[i + 1])) {
        throw std::logic_error("path step between non-neighbours");
      }
    }
    for (const std::uint32_t h : p.delivery_hops) {
      if (h >= p.nodes.size()) throw std::logic_error("delivery hop out of range");
      const auto it = delivered.find(p.nodes[h]);
      if (it == delivered.end()) throw std::logic_error("delivery at non-destination");
      ++it->second;
    }
  }
  for (const TreeRoute& t : route.trees) {
    if (t.source != request.source) throw std::logic_error("tree source mismatch");
    for (std::size_t i = 0; i < t.links.size(); ++i) {
      const TreeRoute::Link& l = t.links[i];
      if (!topology.adjacent(l.from, l.to)) throw std::logic_error("tree link between non-neighbours");
      const NodeId expected_from = l.parent < 0
                                       ? t.source
                                       : t.links[static_cast<std::size_t>(l.parent)].to;
      if (l.parent >= static_cast<std::int32_t>(i)) throw std::logic_error("tree parent not topologically ordered");
      if (l.from != expected_from) throw std::logic_error("tree link detached from parent");
    }
    for (const std::uint32_t li : t.delivery_links) {
      if (li >= t.links.size()) throw std::logic_error("delivery link out of range");
      const auto it = delivered.find(t.links[li].to);
      if (it == delivered.end()) throw std::logic_error("delivery at non-destination");
      ++it->second;
    }
  }
  for (const auto& [node, count] : delivered) {
    if (count != 1) {
      throw std::logic_error("destination " + std::to_string(node) + " delivered " +
                             std::to_string(count) + " times");
    }
  }
}

}  // namespace mcnet::mcast
