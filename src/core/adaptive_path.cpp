#include "core/adaptive_path.hpp"

#include "core/route_error.hpp"

namespace mcnet::mcast {

void monotone_candidates_into(const topo::Topology& topology, const ham::Labeling& labeling,
                              topo::NodeId cur, topo::NodeId dst,
                              std::vector<topo::NodeId>& out) {
  out.clear();
  const std::uint32_t lc = labeling.label(cur);
  const std::uint32_t ld = labeling.label(dst);
  const bool high = lc < ld;
  const std::uint32_t dist = topology.distance(cur, dst);
  bool have_reducing = false;
  for (const topo::NodeId p : topology.neighbors(cur)) {
    const std::uint32_t lp = labeling.label(p);
    const bool monotone = high ? (lp > lc && lp <= ld) : (lp < lc && lp >= ld);
    if (!monotone) continue;
    const bool reducing = topology.distance(p, dst) < dist;
    if (reducing && !have_reducing) {
      // First distance-reducing candidate: drop the weaker any-monotone set.
      out.clear();
      have_reducing = true;
    }
    if (reducing == have_reducing) out.push_back(p);
  }
}

std::vector<topo::NodeId> monotone_candidates(const topo::Topology& topology,
                                              const ham::Labeling& labeling,
                                              topo::NodeId cur, topo::NodeId dst) {
  std::vector<topo::NodeId> out;
  monotone_candidates_into(topology, labeling, cur, dst, out);
  return out;
}

namespace {

PathRoute random_walk(const topo::Topology& topology, const ham::Labeling& labeling,
                      topo::NodeId source, const std::vector<topo::NodeId>& targets,
                      std::uint8_t channel_class, evsim::Rng& rng) {
  PathRoute path;
  path.channel_class = channel_class;
  path.nodes.push_back(source);
  topo::NodeId w = source;
  std::vector<topo::NodeId> cand;
  for (const topo::NodeId d : targets) {
    while (w != d) {
      monotone_candidates_into(topology, labeling, w, d, cand);
      if (cand.empty()) {
        throw RouteError("adaptive routing stuck", w, labeling.label(w), d);
      }
      w = cand[rng.uniform_int(0, static_cast<std::uint32_t>(cand.size() - 1))];
      path.nodes.push_back(w);
      if (path.nodes.size() > labeling.size() + 1) {
        throw RouteError("adaptive routing loops", w, labeling.label(w), d);
      }
    }
    path.delivery_hops.push_back(static_cast<std::uint32_t>(path.nodes.size() - 1));
  }
  return path;
}

}  // namespace

MulticastRoute adaptive_dual_path_route(const topo::Topology& topology,
                                        const ham::Labeling& labeling,
                                        const MulticastRequest& request, evsim::Rng& rng) {
  const DualPathSplit split = dual_path_prepare(labeling, request);
  MulticastRoute route;
  route.source = request.source;
  if (!split.high.empty()) {
    route.paths.push_back(
        random_walk(topology, labeling, request.source, split.high, kHighChannelClass, rng));
  }
  if (!split.low.empty()) {
    route.paths.push_back(
        random_walk(topology, labeling, request.source, split.low, kLowChannelClass, rng));
  }
  return route;
}

}  // namespace mcnet::mcast
