#include "core/routing_function.hpp"

#include <stdexcept>

namespace mcnet::mcast {

topo::NodeId LabelRouter::next_hop(topo::NodeId cur, topo::NodeId dst) const {
  if (cur == dst) return topo::kInvalidNode;
  const std::uint32_t lc = labeling_->label(cur);
  const std::uint32_t ld = labeling_->label(dst);
  const std::uint32_t dist = topology_->distance(cur, dst);
  const bool high = lc < ld;

  // Two passes: first the label-extremal neighbour among those that move
  // strictly closer to the destination (the repaired Lemma 6.4 rule), then
  // the literal max/min-label rule as a fallback (see header erratum).
  for (const bool require_shorter : {true, false}) {
    topo::NodeId best = topo::kInvalidNode;
    std::uint32_t best_label = 0;
    for (const topo::NodeId p : topology_->neighbors(cur)) {
      const std::uint32_t lp = labeling_->label(p);
      const bool monotone = high ? (lp > lc && lp <= ld) : (lp < lc && lp >= ld);
      if (!monotone) continue;
      if (require_shorter && topology_->distance(p, dst) >= dist) continue;
      const bool better =
          best == topo::kInvalidNode || (high ? lp > best_label : lp < best_label);
      if (better) {
        best = p;
        best_label = lp;
      }
    }
    if (best != topo::kInvalidNode) return best;
  }
  // The Hamiltonian-path neighbour at label l(cur) +/- 1 always qualifies
  // for the fallback pass, so R can never be stuck.
  throw std::logic_error("routing function R stuck");
}

PathRoute LabelRouter::route_path(topo::NodeId source, std::span<const topo::NodeId> targets,
                                  std::optional<topo::NodeId> forced_first_hop,
                                  std::uint8_t channel_class) const {
  PathRoute path;
  path.channel_class = channel_class;
  path.nodes.push_back(source);
  topo::NodeId w = source;
  if (forced_first_hop && !targets.empty()) {
    if (!topology_->adjacent(source, *forced_first_hop)) {
      throw std::invalid_argument("forced first hop is not a neighbour");
    }
    w = *forced_first_hop;
    path.nodes.push_back(w);
    // The forced hop may already be the first target.
  }
  for (const topo::NodeId d : targets) {
    while (w != d) {
      w = next_hop(w, d);
      path.nodes.push_back(w);
      if (path.nodes.size() > labeling_->size() + 1) {
        throw std::logic_error("label routing loops");
      }
    }
    path.delivery_hops.push_back(static_cast<std::uint32_t>(path.nodes.size() - 1));
  }
  return path;
}

}  // namespace mcnet::mcast
