// Dual-path deadlock-free multicast routing (Section 6.2.2, Figures 6.11
// and 6.12; hypercube instantiation in Section 6.3).
//
// Message preparation splits the destinations into D_H (labels above the
// source, sorted ascending) and D_L (labels below, sorted descending); the
// two sublists are served by two path worms routed with R, one confined to
// the high-channel subnetwork and one to the low-channel subnetwork.  Both
// subnetworks are acyclic, so no channel dependency cycle can form
// (Assertion 2 / Corollary 6.1).
#pragma once

#include "core/routing_function.hpp"

namespace mcnet::mcast {

/// Channel-class tags carried by path routes so double-channel simulations
/// can map each path into its own physical subnetwork.
inline constexpr std::uint8_t kHighChannelClass = 0;
inline constexpr std::uint8_t kLowChannelClass = 1;

/// Message preparation (Fig. 6.11): destinations above the source sorted by
/// ascending label, below sorted by descending label.
struct DualPathSplit {
  std::vector<topo::NodeId> high;  // ascending label order
  std::vector<topo::NodeId> low;   // descending label order
};
[[nodiscard]] DualPathSplit dual_path_prepare(const ham::Labeling& labeling,
                                              const MulticastRequest& request);

/// Allocation-hoisted variant: clears and reuses `out`'s capacity, so batch
/// loops prepare thousands of requests without per-request vector churn.
void dual_path_prepare(const ham::Labeling& labeling, const MulticastRequest& request,
                       DualPathSplit& out);

[[nodiscard]] MulticastRoute dual_path_route(const topo::Topology& topology,
                                             const ham::Labeling& labeling,
                                             const MulticastRequest& request);

/// Batch variant routing through a caller-owned split workspace (see
/// Router::route_many); produces exactly the same route as the plain form.
[[nodiscard]] MulticastRoute dual_path_route(const topo::Topology& topology,
                                             const ham::Labeling& labeling,
                                             const MulticastRequest& request,
                                             DualPathSplit& scratch);

}  // namespace mcnet::mcast
