// Memoizing Router decorator: a bounded, sharded, mutex-protected LRU
// keyed on (source, sorted destination set).  Multicast routes are pure
// functions of the request on an immutable topology, so repeated-group
// dynamic traffic and parallel_for sweeps can reuse a route instead of
// recomputing it -- the destination-set persistence that minimum-cost
// multicast work exploits when connections outlive single packets.
//
// route() is thread-safe; hit/miss/eviction counters are exposed for
// observability.  Counters live inside the shards and stats() reads them
// with every shard lock held, so a concurrent sweep always sees one
// consistent (hits, misses, evictions) snapshot rather than a torn mix of
// before/after values.
//
// route_many() is the batch fast path: requests are deduped on raw
// identity first (identical requests inside a batch collapse onto one
// slot without even being canonicalized), survivors probe a thread-local
// direct-mapped route memo (an L1 over the sharded LRU: no lock, no key
// sort), and only memo misses are normalized into cache keys and grouped
// so each shard's mutex is taken once per batch instead of once per
// request.  Results land in one arena-backed RouteBatch instead of N
// pointer-heavy route copies.  Cache entries are shared_ptr-held, so memo
// references stay valid even after the LRU evicts the entry; clear()
// bumps a generation counter that invalidates every thread's memo.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "core/router.hpp"

namespace mcnet::obs {
class MetricsRegistry;
class Counter;
}  // namespace mcnet::obs

namespace mcnet::mcast {

struct RouteCacheConfig {
  /// Total cached routes across all shards.  Must be >= 1; CachingRouter
  /// rejects 0 with std::invalid_argument (an uncached router is spelled
  /// `make_router`, not a zero-capacity cache).
  std::size_t capacity = 4096;
  /// Independent mutex-protected LRU shards (reduces lock contention when
  /// many simulation threads share one router).  Must be >= 1; when shards
  /// exceeds capacity the shard count is clamped to capacity so every
  /// shard can hold at least one route.  The default of 8 was tuned with
  /// bench_route_throughput's shard sweep: contended multi-threaded
  /// lookups gain up to ~2x from 1 -> 8 shards and plateau beyond that,
  /// while the single-threaded batch path is shard-count-insensitive (one
  /// lock acquisition per shard per batch).
  std::size_t shards = 8;
};

struct RouteCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  /// route_many() breakdown: unique-identity lookups served from a cache
  /// level / computed, and requests folded onto an identical request in
  /// the same batch (batch_hits + batch_misses + batch_dedup == requests
  /// routed through route_many).  Deduped requests never touch a shard,
  /// and batch_hits includes thread-local memo hits that bypass the
  /// shards entirely -- so the shard-level `hits` counter undercounts
  /// batch traffic relative to batch_hits by design.
  std::uint64_t batch_hits = 0;
  std::uint64_t batch_misses = 0;
  std::uint64_t batch_dedup = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class CachingRouter final : public Router {
 public:
  /// Throws std::invalid_argument when `inner` is null or `config` has a
  /// zero capacity or shard count.
  explicit CachingRouter(std::unique_ptr<Router> inner, RouteCacheConfig config = {});
  ~CachingRouter() override;

  /// Cached lookup; on a miss the inner router computes outside the shard
  /// lock.  Destination order does not affect the cache key, so permuted
  /// requests for the same multicast set share one entry.
  [[nodiscard]] MulticastRoute route(const MulticastRequest& request) const override;

  /// Batch lookup: intra-batch dedup on raw request identity, a lock-free
  /// thread-local memo in front of the shards, one shard-mutex
  /// acquisition per shard per batch for the rest, misses computed in one
  /// inner route_many call, results assembled arena-to-arena.
  /// Element i always equals route(requests[i]).
  [[nodiscard]] RouteBatch route_many(
      std::span<const MulticastRequest> requests) const override;

  [[nodiscard]] std::vector<worm::WormSpec> specs(const MulticastRoute& route) const override {
    return inner_->specs(route);
  }
  [[nodiscard]] std::string_view name() const override { return inner_->name(); }
  [[nodiscard]] Algorithm algorithm() const override { return inner_->algorithm(); }
  [[nodiscard]] bool deadlock_free() const override { return inner_->deadlock_free(); }
  [[nodiscard]] const topo::Topology& topology() const override { return inner_->topology(); }
  [[nodiscard]] std::uint8_t channel_copies() const override {
    return inner_->channel_copies();
  }

  /// Register live counters route_cache.hits / .misses / .evictions on
  /// `registry` (nullptr detaches).  Counters update as route() runs, so a
  /// registry dump mid-sweep sees current values; stats() stays the
  /// consistent-snapshot interface.
  void set_metrics(obs::MetricsRegistry* registry);

  [[nodiscard]] const Router& inner() const { return *inner_; }
  /// Consistent snapshot: all shard locks are held while the counters are
  /// summed, so hits/misses/evictions always belong to one point in time.
  [[nodiscard]] RouteCacheStats stats() const;
  /// Routes currently held across all shards (<= capacity()).
  [[nodiscard]] std::size_t size() const;
  /// The configured total capacity, exactly as passed in (per-shard budgets
  /// sum to it; no rounding to a shard multiple).
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  /// Effective shard count (config.shards clamped to capacity).
  [[nodiscard]] std::size_t shards() const { return num_shards_; }
  /// Drops every cached route and invalidates all thread-local batch
  /// memos (their entries carry the generation current at fill time).
  void clear();

 private:
  struct Shard;
  struct BatchCounters;

  std::unique_ptr<Router> inner_;
  std::size_t capacity_;
  std::size_t num_shards_;
  std::unique_ptr<Shard[]> shards_;
  std::unique_ptr<BatchCounters> batch_;
  /// Globally unique per (instance, clear() epoch): thread-local memo
  /// entries tagged with an older generation -- or one from a destroyed
  /// router that happened to reuse this address -- never match.
  std::atomic<std::uint64_t> generation_;
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
};

/// make_router(...) wrapped in a CachingRouter.
[[nodiscard]] std::unique_ptr<CachingRouter> make_caching_router(
    const topo::Topology& topology, Algorithm algorithm, std::uint8_t copies = 1,
    RouteCacheConfig config = {});

}  // namespace mcnet::mcast
