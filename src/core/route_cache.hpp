// Memoizing Router decorator: a bounded, sharded, mutex-protected LRU
// keyed on (source, sorted destination set).  Multicast routes are pure
// functions of the request on an immutable topology, so repeated-group
// dynamic traffic and parallel_for sweeps can reuse a route instead of
// recomputing it -- the destination-set persistence that minimum-cost
// multicast work exploits when connections outlive single packets.
//
// route() is thread-safe; hit/miss/eviction counters are exposed for
// observability.  Counters live inside the shards and stats() reads them
// with every shard lock held, so a concurrent sweep always sees one
// consistent (hits, misses, evictions) snapshot rather than a torn mix of
// before/after values.
#pragma once

#include <cstdint>
#include <memory>

#include "core/router.hpp"

namespace mcnet::obs {
class MetricsRegistry;
class Counter;
}  // namespace mcnet::obs

namespace mcnet::mcast {

struct RouteCacheConfig {
  /// Total cached routes across all shards.
  std::size_t capacity = 4096;
  /// Independent mutex-protected LRU shards (reduces lock contention when
  /// many simulation threads share one router).
  std::size_t shards = 8;
};

struct RouteCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class CachingRouter final : public Router {
 public:
  explicit CachingRouter(std::unique_ptr<Router> inner, RouteCacheConfig config = {});
  ~CachingRouter() override;

  /// Cached lookup; on a miss the inner router computes outside the shard
  /// lock.  Destination order does not affect the cache key, so permuted
  /// requests for the same multicast set share one entry.
  [[nodiscard]] MulticastRoute route(const MulticastRequest& request) const override;

  [[nodiscard]] std::vector<worm::WormSpec> specs(const MulticastRoute& route) const override {
    return inner_->specs(route);
  }
  [[nodiscard]] std::string_view name() const override { return inner_->name(); }
  [[nodiscard]] Algorithm algorithm() const override { return inner_->algorithm(); }
  [[nodiscard]] bool deadlock_free() const override { return inner_->deadlock_free(); }
  [[nodiscard]] const topo::Topology& topology() const override { return inner_->topology(); }
  [[nodiscard]] std::uint8_t channel_copies() const override {
    return inner_->channel_copies();
  }

  /// Register live counters route_cache.hits / .misses / .evictions on
  /// `registry` (nullptr detaches).  Counters update as route() runs, so a
  /// registry dump mid-sweep sees current values; stats() stays the
  /// consistent-snapshot interface.
  void set_metrics(obs::MetricsRegistry* registry);

  [[nodiscard]] const Router& inner() const { return *inner_; }
  /// Consistent snapshot: all shard locks are held while the counters are
  /// summed, so hits/misses/evictions always belong to one point in time.
  [[nodiscard]] RouteCacheStats stats() const;
  /// Routes currently held across all shards (<= configured capacity).
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return shard_capacity_ * num_shards_; }
  void clear();

 private:
  struct Shard;

  std::unique_ptr<Router> inner_;
  std::size_t num_shards_;
  std::size_t shard_capacity_;
  std::unique_ptr<Shard[]> shards_;
  obs::Counter* metric_hits_ = nullptr;
  obs::Counter* metric_misses_ = nullptr;
  obs::Counter* metric_evictions_ = nullptr;
};

/// make_router(...) wrapped in a CachingRouter.
[[nodiscard]] std::unique_ptr<CachingRouter> make_caching_router(
    const topo::Topology& topology, Algorithm algorithm, std::uint8_t copies = 1,
    RouteCacheConfig config = {});

}  // namespace mcnet::mcast
