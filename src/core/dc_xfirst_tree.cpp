#include "core/dc_xfirst_tree.hpp"

#include <array>
#include <stdexcept>

namespace mcnet::mcast {

namespace {

using topo::Coord2;
using topo::NodeId;

// X-first tree restricted to one quadrant subnetwork (Fig. 6.6 generalised
// to all four quadrants): advance in the quadrant's X direction while any
// destination lies strictly ahead in X, branching off a Y-column sublist at
// each matching column.
void forward(const topo::Mesh2D& mesh, TreeRoute& tree, NodeId w, std::int32_t link_into_w,
             const std::vector<NodeId>& dests, std::int32_t sx, std::int32_t sy) {
  const Coord2 c = mesh.coord(w);
  std::vector<NodeId> column, ahead;
  for (const NodeId d : dests) {
    const Coord2 dc = mesh.coord(d);
    if (dc.x == c.x && dc.y == c.y) {
      if (link_into_w < 0) throw std::logic_error("source cannot be a destination");
      tree.delivery_links.push_back(static_cast<std::uint32_t>(link_into_w));
    } else if (dc.x == c.x) {
      column.push_back(d);
    } else {
      ahead.push_back(d);
    }
  }
  if (!column.empty()) {
    const NodeId next = mesh.node(c.x, c.y + sy);
    const auto link = static_cast<std::int32_t>(tree.add_link(w, next, link_into_w));
    forward(mesh, tree, next, link, column, sx, sy);
  }
  if (!ahead.empty()) {
    const NodeId next = mesh.node(c.x + sx, c.y);
    const auto link = static_cast<std::int32_t>(tree.add_link(w, next, link_into_w));
    forward(mesh, tree, next, link, ahead, sx, sy);
  }
}

}  // namespace

Quadrant quadrant_of(Coord2 source, Coord2 destination) {
  const std::int32_t dx = destination.x - source.x;
  const std::int32_t dy = destination.y - source.y;
  if (dx > 0 && dy >= 0) return Quadrant::kPosXPosY;
  if (dx <= 0 && dy > 0) return Quadrant::kNegXPosY;
  if (dx < 0 && dy <= 0) return Quadrant::kNegXNegY;
  return Quadrant::kPosXNegY;  // dx >= 0 && dy < 0 (dx == dy == 0 excluded)
}

std::uint8_t quadrant_channel_copy(Quadrant q, std::int32_t dx, std::int32_t dy) {
  // Copy assignment: +X copies -> {+X+Y: 0, +X-Y: 1}; -X -> {-X-Y: 0,
  // -X+Y: 1}; +Y -> {+X+Y: 0, -X+Y: 1}; -Y -> {+X-Y: 0, -X-Y: 1}.
  if (dx > 0) return q == Quadrant::kPosXPosY ? 0 : 1;
  if (dx < 0) return q == Quadrant::kNegXNegY ? 0 : 1;
  if (dy > 0) return q == Quadrant::kPosXPosY ? 0 : 1;
  if (dy < 0) return q == Quadrant::kPosXNegY ? 0 : 1;
  throw std::invalid_argument("zero direction");
}

MulticastRoute dc_xfirst_tree_route(const topo::Mesh2D& mesh,
                                    const MulticastRequest& request) {
  const Coord2 s = mesh.coord(request.source);
  std::array<std::vector<NodeId>, 4> per_quadrant;
  for (const NodeId d : request.destinations) {
    per_quadrant[static_cast<std::size_t>(quadrant_of(s, mesh.coord(d)))].push_back(d);
  }

  static constexpr std::array<std::pair<std::int32_t, std::int32_t>, 4> kSigns = {
      {{+1, +1}, {-1, +1}, {-1, -1}, {+1, -1}}};

  MulticastRoute route;
  route.source = request.source;
  for (std::size_t q = 0; q < 4; ++q) {
    if (per_quadrant[q].empty()) continue;
    TreeRoute tree;
    tree.source = request.source;
    tree.channel_class = static_cast<std::uint8_t>(q);
    forward(mesh, tree, request.source, -1, per_quadrant[q], kSigns[q].first,
            kSigns[q].second);
    route.trees.push_back(std::move(tree));
  }
  return route;
}

}  // namespace mcnet::mcast
