#include "core/route_cache.hpp"

#include <algorithm>
#include <list>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace mcnet::mcast {

namespace {

/// Cache key: [source, sorted destinations...].
using Key = std::vector<topo::NodeId>;

struct KeyHash {
  std::size_t operator()(const Key& key) const {
    // FNV-1a over the node ids.
    std::uint64_t h = 1469598103934665603ull;
    for (const topo::NodeId id : key) {
      h ^= id;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

Key make_key(const MulticastRequest& request) {
  Key key;
  key.reserve(request.destinations.size() + 1);
  key.push_back(request.source);
  key.insert(key.end(), request.destinations.begin(), request.destinations.end());
  std::sort(key.begin() + 1, key.end());
  // Dedupe so requests carrying duplicate destinations share the entry of
  // their normalised form (the inner router dedupes before routing).
  key.erase(std::unique(key.begin() + 1, key.end()), key.end());
  return key;
}

/// make_key into a reused buffer (the batch path's allocation-free variant).
void make_key_into(const MulticastRequest& request, Key& key) {
  key.clear();
  key.reserve(request.destinations.size() + 1);
  key.push_back(request.source);
  key.insert(key.end(), request.destinations.begin(), request.destinations.end());
  std::sort(key.begin() + 1, key.end());
  key.erase(std::unique(key.begin() + 1, key.end()), key.end());
}

/// FNV-1a over a request as-is (source, destinations in request order) --
/// the batch dedup identity, cheaper than canonicalising because it needs
/// no sort.
std::uint64_t raw_hash(const MulticastRequest& request) {
  std::uint64_t h = 1469598103934665603ull;
  h ^= request.source;
  h *= 1099511628211ull;
  for (const topo::NodeId id : request.destinations) {
    h ^= id;
    h *= 1099511628211ull;
  }
  return h;
}

bool raw_equal(const MulticastRequest& a, const MulticastRequest& b) {
  return a.source == b.source && a.destinations == b.destinations;
}

/// Monotonic source for CachingRouter generations: every constructed
/// router and every clear() gets a value no other (router, epoch) pair
/// ever had, which is what lets thread-local memo entries be validated
/// with a single integer compare.
std::atomic<std::uint64_t> g_generation{0};

/// Thread-local L1 in front of the sharded LRU, used only by route_many.
/// Direct-mapped on the raw request hash: a probe is an array index, an
/// integer tag check and a destination compare -- no lock, no key sort,
/// no map.  Entries pin their route via shared_ptr, so they stay valid
/// even after the owning shard evicts (or clear()s) the LRU entry; the
/// generation tag keeps stale routers/epochs from ever matching.
struct RouteMemo {
  struct Entry {
    std::uint64_t generation = 0;  // 0 = empty (g_generation starts at 1)
    std::uint64_t hash = 0;
    topo::NodeId source = 0;
    std::vector<topo::NodeId> destinations;
    std::shared_ptr<const MulticastRoute> route;
  };
  static constexpr std::size_t kSlots = 4096;  // power of two, ~hot-set sized

  std::vector<Entry> entries = std::vector<Entry>(kSlots);

  Entry& slot(std::uint64_t hash) { return entries[hash & (kSlots - 1)]; }

  [[nodiscard]] const std::shared_ptr<const MulticastRoute>* find(
      std::uint64_t generation, std::uint64_t hash, const MulticastRequest& request) {
    const Entry& e = slot(hash);
    if (e.generation == generation && e.hash == hash && e.source == request.source &&
        e.destinations == request.destinations) {
      return &e.route;
    }
    return nullptr;
  }

  void store(std::uint64_t generation, std::uint64_t hash, const MulticastRequest& request,
             std::shared_ptr<const MulticastRoute> route) {
    Entry& e = slot(hash);  // direct-mapped: conflicts simply overwrite
    e.generation = generation;
    e.hash = hash;
    e.source = request.source;
    e.destinations.assign(request.destinations.begin(), request.destinations.end());
    e.route = std::move(route);
  }
};

/// Reusable per-thread state for CachingRouter::route_many.  Everything is
/// cleared (not deallocated) between batches, so the steady-state batch
/// path performs no heap allocation for dedup, keying or grouping -- which
/// is where the batch speedup over the scalar loop comes from.
struct BatchWorkspace {
  /// One entry per distinct raw request in the batch.
  struct Slot {
    std::uint32_t first_request = 0;  // index of the first request with this identity
    std::uint32_t shard = 0;
    std::uint32_t key_begin = 0;  // canonical-key span into key_arena
    std::uint32_t key_count = 0;
    std::uint64_t hash = 0;       // raw identity hash
    std::int32_t miss = -1;       // element index in the inner batch when not cached
    std::shared_ptr<const MulticastRoute> route;  // set on a cache hit
  };

  std::vector<Slot> slots;
  std::vector<topo::NodeId> key_arena;     // concatenated canonical keys
  std::vector<std::uint32_t> table;        // open addressing: slot index + 1, 0 = empty
  std::vector<std::uint32_t> slot_of;      // per request
  std::vector<std::uint32_t> pending;      // slots the memo could not resolve
  std::vector<std::uint32_t> shard_order;  // pending slots grouped by shard
  std::vector<std::uint32_t> shard_begin;  // per shard: offset into shard_order
  std::vector<std::uint32_t> cursor;
  std::vector<std::uint32_t> miss_slots;
  std::vector<MulticastRequest> miss_requests;
  Key probe;
  bool in_use = false;
};

}  // namespace

struct CachingRouter::Shard {
  struct Entry {
    Key key;
    /// Shared so the batch path can hold a reference past the shard lock
    /// (entries may be evicted by other threads the moment it drops) and
    /// copy straight into the output arenas -- one copy per request
    /// instead of stage-then-assemble.  Never mutated after insertion.
    std::shared_ptr<const MulticastRoute> route;
  };

  std::mutex mutex;
  std::list<Entry> lru;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map;
  std::size_t capacity = 0;
  // Counters are guarded by `mutex` (not atomics): stats() locks every
  // shard before summing, so snapshots are never torn across counters.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

// route_many's own counters; guarded by a dedicated mutex that stats()
// acquires alongside the shard locks so the batch triple snapshots
// consistently with the shard counters.
struct CachingRouter::BatchCounters {
  std::mutex mutex;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t dedup = 0;
};

CachingRouter::CachingRouter(std::unique_ptr<Router> inner, RouteCacheConfig config)
    : inner_(std::move(inner)) {
  if (!inner_) throw std::invalid_argument("CachingRouter: inner router must not be null");
  if (config.capacity == 0) {
    throw std::invalid_argument(
        "RouteCacheConfig: capacity must be >= 1 (got 0); use the inner router "
        "directly to disable caching");
  }
  if (config.shards == 0) {
    throw std::invalid_argument("RouteCacheConfig: shards must be >= 1 (got 0)");
  }
  capacity_ = config.capacity;
  num_shards_ = std::min(config.shards, config.capacity);
  shards_ = std::make_unique<Shard[]>(num_shards_);
  batch_ = std::make_unique<BatchCounters>();
  generation_.store(g_generation.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  // Distribute the exact configured capacity: the first (capacity % shards)
  // shards take one extra slot, so per-shard budgets always sum to
  // capacity() with no rounding loss.
  const std::size_t base = capacity_ / num_shards_;
  const std::size_t extra = capacity_ % num_shards_;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    shards_[s].capacity = base + (s < extra ? 1 : 0);
  }
}

CachingRouter::~CachingRouter() = default;

void CachingRouter::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metric_hits_ = metric_misses_ = metric_evictions_ = nullptr;
    return;
  }
  metric_hits_ = &registry->counter("route_cache.hits");
  metric_misses_ = &registry->counter("route_cache.misses");
  metric_evictions_ = &registry->counter("route_cache.evictions");
}

MulticastRoute CachingRouter::route(const MulticastRequest& request) const {
  const Key key = make_key(request);
  Shard& shard = shards_[KeyHash{}(key) % num_shards_];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.hits;
      if (metric_hits_ != nullptr) metric_hits_->inc();
      return *it->second->route;
    }
  }

  // Compute outside the lock: route construction is the expensive part and
  // must not serialise concurrent simulation threads.
  MulticastRoute computed = inner_->route(request);

  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.misses;  // we did the work even if another thread won the insert
  if (metric_misses_ != nullptr) metric_misses_->inc();
  if (shard.map.find(key) != shard.map.end()) {
    return computed;  // another thread inserted the same key while we routed
  }
  shard.lru.push_front(Shard::Entry{key, std::make_shared<MulticastRoute>(computed)});
  shard.map.emplace(shard.lru.front().key, shard.lru.begin());
  if (shard.map.size() > shard.capacity) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
    if (metric_evictions_ != nullptr) metric_evictions_->inc();
  }
  return computed;
}

RouteBatch CachingRouter::route_many(std::span<const MulticastRequest> requests) const {
  RouteBatch out;
  if (requests.empty()) return out;
  out.reserve(requests.size());

  // The workspace is reused across calls on this thread; a nested call
  // (stacked CachingRouters) falls back to a fresh local one.
  thread_local BatchWorkspace tls;
  BatchWorkspace local;
  BatchWorkspace& ws = tls.in_use ? local : tls;
  const bool own_tls = &ws == &tls;
  if (own_tls) tls.in_use = true;

  const std::uint64_t generation = generation_.load(std::memory_order_relaxed);
  thread_local RouteMemo memo;

  try {
    ws.slots.clear();
    ws.key_arena.clear();
    ws.pending.clear();
    ws.miss_slots.clear();
    ws.miss_requests.clear();
    ws.slot_of.resize(requests.size());

    // Phase 1 -- intra-batch dedup on raw request identity (source +
    // destinations in request order) via an open-addressing table with
    // linear probing.  Duplicates collapse onto the first occurrence's
    // slot without paying for canonicalisation, and each distinct
    // identity probes the thread-local memo once: a memo hit resolves the
    // slot right here, skipping key sorting and shard locking entirely.
    std::size_t table_size = 16;
    while (table_size < requests.size() * 2) table_size <<= 1;
    ws.table.assign(table_size, 0);
    const std::size_t mask = table_size - 1;
    std::uint64_t dedup = 0;
    std::uint64_t hit_count = 0;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const std::uint64_t h = raw_hash(requests[i]);
      std::size_t pos = static_cast<std::size_t>(h) & mask;
      std::uint32_t slot_index = 0;
      for (;;) {
        const std::uint32_t entry = ws.table[pos];
        if (entry == 0) {
          slot_index = static_cast<std::uint32_t>(ws.slots.size());
          ws.table[pos] = slot_index + 1;
          BatchWorkspace::Slot slot;
          slot.first_request = static_cast<std::uint32_t>(i);
          slot.hash = h;
          if (const auto* cached = memo.find(generation, h, requests[i])) {
            slot.route = *cached;
            ++hit_count;
          } else {
            ws.pending.push_back(slot_index);
          }
          ws.slots.push_back(std::move(slot));
          break;
        }
        const BatchWorkspace::Slot& existing = ws.slots[entry - 1];
        if (existing.hash == h &&
            raw_equal(requests[existing.first_request], requests[i])) {
          slot_index = entry - 1;
          ++dedup;
          break;
        }
        pos = (pos + 1) & mask;
      }
      ws.slot_of[i] = slot_index;
    }

    // Phase 2 -- canonical cache key (sorted, deduped) per memo-missed
    // slot, then group those slots by shard with a counting sort.
    for (const std::uint32_t si : ws.pending) {
      BatchWorkspace::Slot& slot = ws.slots[si];
      make_key_into(requests[slot.first_request], ws.probe);
      slot.key_begin = static_cast<std::uint32_t>(ws.key_arena.size());
      slot.key_count = static_cast<std::uint32_t>(ws.probe.size());
      slot.shard = static_cast<std::uint32_t>(KeyHash{}(ws.probe) % num_shards_);
      ws.key_arena.insert(ws.key_arena.end(), ws.probe.begin(), ws.probe.end());
    }
    ws.shard_begin.assign(num_shards_ + 1, 0);
    for (const std::uint32_t si : ws.pending) ++ws.shard_begin[ws.slots[si].shard + 1];
    for (std::size_t sh = 1; sh <= num_shards_; ++sh) {
      ws.shard_begin[sh] += ws.shard_begin[sh - 1];
    }
    ws.shard_order.resize(ws.pending.size());
    ws.cursor.assign(ws.shard_begin.begin(), ws.shard_begin.end() - 1);
    for (const std::uint32_t si : ws.pending) {
      ws.shard_order[ws.cursor[ws.slots[si].shard]++] = si;
    }

    // Phase 3 -- grouped lookup: every slot of a shard probes under one
    // lock acquisition.  A hit pins the entry's route via shared_ptr, so
    // it stays valid for assembly after the lock drops (concurrent threads
    // may evict the entry; they cannot free the pinned route).
    for (std::size_t sh = 0; sh < num_shards_; ++sh) {
      const std::uint32_t begin = ws.shard_begin[sh];
      const std::uint32_t end = ws.shard_begin[sh + 1];
      if (begin == end) continue;
      Shard& shard = shards_[sh];
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (std::uint32_t o = begin; o < end; ++o) {
        BatchWorkspace::Slot& slot = ws.slots[ws.shard_order[o]];
        ws.probe.assign(ws.key_arena.begin() + slot.key_begin,
                        ws.key_arena.begin() + slot.key_begin + slot.key_count);
        const auto it = shard.map.find(ws.probe);
        if (it == shard.map.end()) continue;
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        ++shard.hits;
        ++hit_count;
        slot.route = it->second->route;
      }
    }

    // Back-fill the memo with shard hits (outside the locks) and collect
    // the remaining misses.
    for (const std::uint32_t si : ws.pending) {
      BatchWorkspace::Slot& slot = ws.slots[si];
      if (slot.route != nullptr) {
        memo.store(generation, slot.hash, requests[slot.first_request], slot.route);
      } else {
        slot.miss = static_cast<std::int32_t>(ws.miss_slots.size());
        ws.miss_slots.push_back(si);
        ws.miss_requests.push_back(requests[slot.first_request]);
      }
    }
    if (metric_hits_ != nullptr && hit_count > 0) metric_hits_->inc(hit_count);

    // Phase 4 -- route all misses in one inner batch call, outside any
    // lock, then insert the computed routes (again one lock per shard).
    RouteBatch computed;
    if (!ws.miss_requests.empty()) {
      computed = inner_->route_many(ws.miss_requests);

      std::uint64_t evicted = 0;
      for (std::size_t sh = 0; sh < num_shards_; ++sh) {
        const std::uint32_t begin = ws.shard_begin[sh];
        const std::uint32_t end = ws.shard_begin[sh + 1];
        Shard* shard = nullptr;
        std::unique_lock<std::mutex> lock;
        for (std::uint32_t o = begin; o < end; ++o) {
          BatchWorkspace::Slot& slot = ws.slots[ws.shard_order[o]];
          if (slot.miss < 0) continue;
          if (shard == nullptr) {
            shard = &shards_[sh];
            lock = std::unique_lock<std::mutex>(shard->mutex);
          }
          ++shard->misses;
          ws.probe.assign(ws.key_arena.begin() + slot.key_begin,
                          ws.key_arena.begin() + slot.key_begin + slot.key_count);
          if (const auto it = shard->map.find(ws.probe); it != shard->map.end()) {
            slot.route = it->second->route;  // another thread won the insert
            continue;
          }
          slot.route = std::make_shared<MulticastRoute>(
              computed.route_at(static_cast<std::size_t>(slot.miss)));
          shard->lru.push_front(Shard::Entry{ws.probe, slot.route});
          shard->map.emplace(shard->lru.front().key, shard->lru.begin());
          if (shard->map.size() > shard->capacity) {
            shard->map.erase(shard->lru.back().key);
            shard->lru.pop_back();
            ++shard->evictions;
            ++evicted;
          }
        }
      }
      // Memo the fresh routes too (outside the locks); the cache-insert
      // copy doubles as the memo entry, so this adds no extra deep copy.
      for (const std::uint32_t si : ws.miss_slots) {
        const BatchWorkspace::Slot& slot = ws.slots[si];
        memo.store(generation, slot.hash, requests[slot.first_request], slot.route);
      }
      if (metric_misses_ != nullptr) metric_misses_->inc(ws.miss_requests.size());
      if (metric_evictions_ != nullptr && evicted > 0) metric_evictions_->inc(evicted);
    }

    {
      std::lock_guard<std::mutex> lock(batch_->mutex);
      batch_->hits += hit_count;
      batch_->misses += ws.miss_requests.size();
      batch_->dedup += dedup;
    }

    // Phase 5 -- assemble in request order: one copy per request, straight
    // into the output arenas.
    for (std::size_t i = 0; i < requests.size(); ++i) {
      const BatchWorkspace::Slot& slot = ws.slots[ws.slot_of[i]];
      if (slot.miss >= 0) {
        out.append_from(computed, static_cast<std::size_t>(slot.miss));
      } else {
        out.append(*slot.route);
      }
    }
  } catch (...) {
    if (own_tls) tls.in_use = false;
    throw;
  }
  if (own_tls) tls.in_use = false;
  return out;
}

RouteCacheStats CachingRouter::stats() const {
  // Acquire every shard lock (in fixed index order; route() only ever
  // holds one shard at a time, so this cannot deadlock) and sum while all
  // are held: the returned counters are one global point-in-time snapshot.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_shards_ + 1);
  for (std::size_t s = 0; s < num_shards_; ++s) locks.emplace_back(shards_[s].mutex);
  locks.emplace_back(batch_->mutex);
  RouteCacheStats out;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    out.hits += shards_[s].hits;
    out.misses += shards_[s].misses;
    out.evictions += shards_[s].evictions;
  }
  out.batch_hits = batch_->hits;
  out.batch_misses = batch_->misses;
  out.batch_dedup = batch_->dedup;
  return out;
}

std::size_t CachingRouter::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    total += shards_[s].map.size();
  }
  return total;
}

void CachingRouter::clear() {
  // New generation first: a route_many racing clear() may still finish
  // with pre-clear routes (exactly like a scalar loop would), but no memo
  // entry filled before this point can ever match again.
  generation_.store(g_generation.fetch_add(1, std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
  for (std::size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    shards_[s].map.clear();
    shards_[s].lru.clear();
  }
}

std::unique_ptr<CachingRouter> make_caching_router(const topo::Topology& topology,
                                                   Algorithm algorithm, std::uint8_t copies,
                                                   RouteCacheConfig config) {
  return std::make_unique<CachingRouter>(make_router(topology, algorithm, copies), config);
}

}  // namespace mcnet::mcast
