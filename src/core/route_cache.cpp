#include "core/route_cache.hpp"

#include <algorithm>
#include <list>
#include <mutex>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"

namespace mcnet::mcast {

namespace {

/// Cache key: [source, sorted destinations...].
using Key = std::vector<topo::NodeId>;

struct KeyHash {
  std::size_t operator()(const Key& key) const {
    // FNV-1a over the node ids.
    std::uint64_t h = 1469598103934665603ull;
    for (const topo::NodeId id : key) {
      h ^= id;
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

Key make_key(const MulticastRequest& request) {
  Key key;
  key.reserve(request.destinations.size() + 1);
  key.push_back(request.source);
  key.insert(key.end(), request.destinations.begin(), request.destinations.end());
  std::sort(key.begin() + 1, key.end());
  // Dedupe so requests carrying duplicate destinations share the entry of
  // their normalised form (the inner router dedupes before routing).
  key.erase(std::unique(key.begin() + 1, key.end()), key.end());
  return key;
}

}  // namespace

struct CachingRouter::Shard {
  struct Entry {
    Key key;
    MulticastRoute route;
  };

  std::mutex mutex;
  std::list<Entry> lru;  // front = most recently used
  std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map;
  // Counters are guarded by `mutex` (not atomics): stats() locks every
  // shard before summing, so snapshots are never torn across counters.
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
};

CachingRouter::CachingRouter(std::unique_ptr<Router> inner, RouteCacheConfig config)
    : inner_(std::move(inner)),
      num_shards_(std::max<std::size_t>(1, config.shards)),
      shard_capacity_(std::max<std::size_t>(
          1, std::max<std::size_t>(1, config.capacity) / std::max<std::size_t>(1, config.shards))),
      shards_(std::make_unique<Shard[]>(num_shards_)) {
  if (!inner_) throw std::invalid_argument("CachingRouter: inner router must not be null");
}

CachingRouter::~CachingRouter() = default;

void CachingRouter::set_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    metric_hits_ = metric_misses_ = metric_evictions_ = nullptr;
    return;
  }
  metric_hits_ = &registry->counter("route_cache.hits");
  metric_misses_ = &registry->counter("route_cache.misses");
  metric_evictions_ = &registry->counter("route_cache.evictions");
}

MulticastRoute CachingRouter::route(const MulticastRequest& request) const {
  const Key key = make_key(request);
  Shard& shard = shards_[KeyHash{}(key) % num_shards_];
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      ++shard.hits;
      if (metric_hits_ != nullptr) metric_hits_->inc();
      return it->second->route;
    }
  }

  // Compute outside the lock: route construction is the expensive part and
  // must not serialise concurrent simulation threads.
  MulticastRoute computed = inner_->route(request);

  std::lock_guard<std::mutex> lock(shard.mutex);
  ++shard.misses;  // we did the work even if another thread won the insert
  if (metric_misses_ != nullptr) metric_misses_->inc();
  if (shard.map.find(key) != shard.map.end()) {
    return computed;  // another thread inserted the same key while we routed
  }
  shard.lru.push_front(Shard::Entry{key, computed});
  shard.map.emplace(shard.lru.front().key, shard.lru.begin());
  if (shard.map.size() > shard_capacity_) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
    if (metric_evictions_ != nullptr) metric_evictions_->inc();
  }
  return computed;
}

RouteCacheStats CachingRouter::stats() const {
  // Acquire every shard lock (in fixed index order; route() only ever
  // holds one shard at a time, so this cannot deadlock) and sum while all
  // are held: the returned triple is one global point-in-time snapshot.
  std::vector<std::unique_lock<std::mutex>> locks;
  locks.reserve(num_shards_);
  for (std::size_t s = 0; s < num_shards_; ++s) locks.emplace_back(shards_[s].mutex);
  RouteCacheStats out;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    out.hits += shards_[s].hits;
    out.misses += shards_[s].misses;
    out.evictions += shards_[s].evictions;
  }
  return out;
}

std::size_t CachingRouter::size() const {
  std::size_t total = 0;
  for (std::size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    total += shards_[s].map.size();
  }
  return total;
}

void CachingRouter::clear() {
  for (std::size_t s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mutex);
    shards_[s].map.clear();
    shards_[s].lru.clear();
  }
}

std::unique_ptr<CachingRouter> make_caching_router(const topo::Topology& topology,
                                                   Algorithm algorithm, std::uint8_t copies,
                                                   RouteCacheConfig config) {
  return std::make_unique<CachingRouter>(make_router(topology, algorithm, copies), config);
}

}  // namespace mcnet::mcast
