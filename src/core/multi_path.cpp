#include "core/multi_path.hpp"

#include <algorithm>

namespace mcnet::mcast {

namespace {

using topo::NodeId;

// Neighbours of `u` on the given side of the labeling, sorted by label
// (ascending for the high side, descending for the low side).
std::vector<NodeId> side_neighbors(const topo::Topology& topology,
                                   const ham::Labeling& labeling, NodeId u, bool high) {
  const std::uint32_t lu = labeling.label(u);
  std::vector<NodeId> result;
  for (const NodeId p : topology.neighbors(u)) {
    if ((labeling.label(p) > lu) == high) result.push_back(p);
  }
  std::sort(result.begin(), result.end(), [&](NodeId a, NodeId b) {
    return high ? labeling.label(a) < labeling.label(b)
                : labeling.label(a) > labeling.label(b);
  });
  return result;
}

// Mesh split of one side (Fig. 6.14 step 3): when two neighbours exist,
// destinations on neighbour v1's x-side go through v1, the rest through v2.
void emit_mesh_side(const topo::Mesh2D& mesh, const LabelRouter& router,
                    const MulticastRequest& request, const std::vector<NodeId>& sorted_side,
                    const std::vector<NodeId>& neighbors, std::uint8_t channel_class,
                    MulticastRoute& route) {
  if (sorted_side.empty()) return;
  if (neighbors.size() < 2) {
    route.paths.push_back(router.route_path(
        request.source, sorted_side,
        neighbors.empty() ? std::nullopt : std::make_optional(neighbors[0]), channel_class));
    return;
  }
  const std::int32_t x1 = mesh.coord(neighbors[0]).x;
  const std::int32_t x2 = mesh.coord(neighbors[1]).x;
  std::vector<NodeId> d1, d2;
  for (const NodeId d : sorted_side) {
    const std::int32_t x = mesh.coord(d).x;
    const bool to_v1 = (x1 < x2) ? (x <= x1) : (x >= x1);
    (to_v1 ? d1 : d2).push_back(d);
  }
  if (!d1.empty()) {
    route.paths.push_back(router.route_path(request.source, d1, neighbors[0], channel_class));
  }
  if (!d2.empty()) {
    route.paths.push_back(router.route_path(request.source, d2, neighbors[1], channel_class));
  }
}

}  // namespace

MulticastRoute multi_path_route(const topo::Mesh2D& mesh,
                                const ham::MeshBoustrophedonLabeling& labeling,
                                const MulticastRequest& request) {
  const LabelRouter router(mesh, labeling);
  const DualPathSplit split = dual_path_prepare(labeling, request);
  MulticastRoute route;
  route.source = request.source;
  emit_mesh_side(mesh, router, request, split.high,
                 side_neighbors(mesh, labeling, request.source, /*high=*/true),
                 kHighChannelClass, route);
  emit_mesh_side(mesh, router, request, split.low,
                 side_neighbors(mesh, labeling, request.source, /*high=*/false),
                 kLowChannelClass, route);
  return route;
}

MulticastRoute multi_path_route(const topo::Hypercube& cube,
                                const ham::HypercubeGrayLabeling& labeling,
                                const MulticastRequest& request) {
  return multi_path_route(static_cast<const topo::Topology&>(cube),
                          static_cast<const ham::Labeling&>(labeling), request);
}

MulticastRoute multi_path_route(const topo::Topology& topology, const ham::Labeling& labeling,
                                const MulticastRequest& request) {
  const LabelRouter router(topology, labeling);
  const DualPathSplit split = dual_path_prepare(labeling, request);
  MulticastRoute route;
  route.source = request.source;

  // Fig. 6.20 step 3/4: bucket each side by the label ranges of the side's
  // neighbours.  Side lists are label-sorted, neighbour lists likewise, so
  // a single merge pass assigns each destination to the nearest preceding
  // neighbour.
  const auto emit_side = [&](const std::vector<NodeId>& side,
                             const std::vector<NodeId>& nbrs, bool high,
                             std::uint8_t channel_class) {
    if (side.empty()) return;
    std::size_t b = 0;  // current neighbour bucket
    std::vector<NodeId> bucket;
    const auto flush = [&] {
      if (!bucket.empty()) {
        route.paths.push_back(
            router.route_path(request.source, bucket, nbrs[b], channel_class));
        bucket.clear();
      }
    };
    for (const NodeId d : side) {
      const std::uint32_t ld = labeling.label(d);
      while (b + 1 < nbrs.size() &&
             (high ? labeling.label(nbrs[b + 1]) <= ld : labeling.label(nbrs[b + 1]) >= ld)) {
        flush();
        ++b;
      }
      bucket.push_back(d);
    }
    flush();
  };
  emit_side(split.high, side_neighbors(topology, labeling, request.source, true), true,
            kHighChannelClass);
  emit_side(split.low, side_neighbors(topology, labeling, request.source, false), false,
            kLowChannelClass);
  return route;
}

}  // namespace mcnet::mcast
