#include "core/multi_path.hpp"

#include <algorithm>

namespace mcnet::mcast {

namespace {

using topo::NodeId;

// Neighbours of `u` on the given side of the labeling, sorted by label
// (ascending for the high side, descending for the low side).
std::vector<NodeId> side_neighbors(const topo::Topology& topology,
                                   const ham::Labeling& labeling, NodeId u, bool high) {
  const std::uint32_t lu = labeling.label(u);
  std::vector<NodeId> result;
  for (const NodeId p : topology.neighbors(u)) {
    if ((labeling.label(p) > lu) == high) result.push_back(p);
  }
  std::sort(result.begin(), result.end(), [&](NodeId a, NodeId b) {
    return high ? labeling.label(a) < labeling.label(b)
                : labeling.label(a) > labeling.label(b);
  });
  return result;
}

// Mesh split of one side (Fig. 6.14 step 3): when two neighbours exist,
// destinations on neighbour v1's x-side go through v1, the rest through v2.
void prepare_mesh_side(const topo::Mesh2D& mesh, const std::vector<NodeId>& sorted_side,
                       const std::vector<NodeId>& neighbors, std::uint8_t channel_class,
                       std::vector<MultiPathWorm>& worms) {
  if (sorted_side.empty()) return;
  if (neighbors.size() < 2) {
    worms.push_back({channel_class,
                     neighbors.empty() ? std::nullopt : std::make_optional(neighbors[0]),
                     sorted_side});
    return;
  }
  const std::int32_t x1 = mesh.coord(neighbors[0]).x;
  const std::int32_t x2 = mesh.coord(neighbors[1]).x;
  std::vector<NodeId> d1, d2;
  for (const NodeId d : sorted_side) {
    const std::int32_t x = mesh.coord(d).x;
    const bool to_v1 = (x1 < x2) ? (x <= x1) : (x >= x1);
    (to_v1 ? d1 : d2).push_back(d);
  }
  if (!d1.empty()) worms.push_back({channel_class, neighbors[0], std::move(d1)});
  if (!d2.empty()) worms.push_back({channel_class, neighbors[1], std::move(d2)});
}

MulticastRoute route_worms(const LabelRouter& router, const MulticastRequest& request,
                           const std::vector<MultiPathWorm>& worms) {
  MulticastRoute route;
  route.source = request.source;
  for (const MultiPathWorm& worm : worms) {
    route.paths.push_back(
        router.route_path(request.source, worm.targets, worm.first_hop, worm.channel_class));
  }
  return route;
}

}  // namespace

std::vector<MultiPathWorm> multi_path_prepare(const topo::Mesh2D& mesh,
                                              const ham::MeshBoustrophedonLabeling& labeling,
                                              const MulticastRequest& request) {
  const DualPathSplit split = dual_path_prepare(labeling, request);
  std::vector<MultiPathWorm> worms;
  prepare_mesh_side(mesh, split.high,
                    side_neighbors(mesh, labeling, request.source, /*high=*/true),
                    kHighChannelClass, worms);
  prepare_mesh_side(mesh, split.low,
                    side_neighbors(mesh, labeling, request.source, /*high=*/false),
                    kLowChannelClass, worms);
  return worms;
}

std::vector<MultiPathWorm> multi_path_prepare(const topo::Topology& topology,
                                              const ham::Labeling& labeling,
                                              const MulticastRequest& request) {
  const DualPathSplit split = dual_path_prepare(labeling, request);
  std::vector<MultiPathWorm> worms;

  // Fig. 6.20 step 3/4: bucket each side by the label ranges of the side's
  // neighbours.  Side lists are label-sorted, neighbour lists likewise, so
  // a single merge pass assigns each destination to the nearest preceding
  // neighbour.
  const auto prepare_side = [&](const std::vector<NodeId>& side,
                                const std::vector<NodeId>& nbrs, bool high,
                                std::uint8_t channel_class) {
    if (side.empty()) return;
    std::size_t b = 0;  // current neighbour bucket
    std::vector<NodeId> bucket;
    const auto flush = [&] {
      if (!bucket.empty()) {
        worms.push_back({channel_class, nbrs[b], std::move(bucket)});
        bucket.clear();
      }
    };
    for (const NodeId d : side) {
      const std::uint32_t ld = labeling.label(d);
      while (b + 1 < nbrs.size() &&
             (high ? labeling.label(nbrs[b + 1]) <= ld : labeling.label(nbrs[b + 1]) >= ld)) {
        flush();
        ++b;
      }
      bucket.push_back(d);
    }
    flush();
  };
  prepare_side(split.high, side_neighbors(topology, labeling, request.source, true), true,
               kHighChannelClass);
  prepare_side(split.low, side_neighbors(topology, labeling, request.source, false), false,
               kLowChannelClass);
  return worms;
}

MulticastRoute multi_path_route(const topo::Mesh2D& mesh,
                                const ham::MeshBoustrophedonLabeling& labeling,
                                const MulticastRequest& request) {
  return route_worms(LabelRouter(mesh, labeling), request,
                     multi_path_prepare(mesh, labeling, request));
}

MulticastRoute multi_path_route(const topo::Hypercube& cube,
                                const ham::HypercubeGrayLabeling& labeling,
                                const MulticastRequest& request) {
  return multi_path_route(static_cast<const topo::Topology&>(cube),
                          static_cast<const ham::Labeling&>(labeling), request);
}

MulticastRoute multi_path_route(const topo::Topology& topology, const ham::Labeling& labeling,
                                const MulticastRequest& request) {
  return route_worms(LabelRouter(topology, labeling), request,
                     multi_path_prepare(topology, labeling, request));
}

}  // namespace mcnet::mcast
