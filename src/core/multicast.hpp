// Core multicast types: multicast sets, route artefacts produced by the
// routing algorithms (paths, trees, stars), and the traffic / distance
// metrics of Chapter 3 ("traffic" = number of channel traversals, "network
// latency" proxied statically by hops to each destination).
#pragma once

#include <cstdint>
#include <vector>

#include "topology/topology.hpp"

namespace mcnet::mcast {

using topo::NodeId;

/// Reusable duplicate-scan workspace for request normalization: an
/// epoch-tagged mark per node id, grown on demand and never cleared, so a
/// scan over an n-node id space costs O(destinations) with zero allocations
/// once the buffer has reached n.  One instance per thread (or per batch
/// loop); not thread-safe itself.
class RequestScratch {
 public:
  /// Start a new scan over a `num_nodes`-node id space.
  void begin(std::uint32_t num_nodes) {
    if (mark_.size() < num_nodes) mark_.resize(num_nodes, 0);
    ++epoch_;
  }
  /// Mark `id`; true when this is its first occurrence in the current scan.
  [[nodiscard]] bool mark(NodeId id) {
    if (mark_[id] == epoch_) return false;
    mark_[id] = epoch_;
    return true;
  }

 private:
  std::vector<std::uint64_t> mark_;
  std::uint64_t epoch_ = 0;
};

/// A multicast set K = {u0, u1..uk}: one source and k >= 1 distinct
/// destinations, none equal to the source.
struct MulticastRequest {
  NodeId source = 0;
  std::vector<NodeId> destinations;

  /// Raw identity: same source and same destination list in the same
  /// order (the batch-dedup notion of "the same request"; permutations of
  /// one multicast set compare unequal).
  friend bool operator==(const MulticastRequest&, const MulticastRequest&) = default;

  /// Throws std::invalid_argument on duplicate destinations, destination ==
  /// source, or empty destination list.
  void validate(std::uint32_t num_nodes) const;

  /// Sanitised copy for routing: duplicate destinations are removed (first
  /// occurrence kept, order preserved), so sloppy callers cannot build
  /// degenerate double-delivery worms.  Throws std::invalid_argument with a
  /// precise message when the source is in the destination set, a node id
  /// is out of range, or the destination list is empty.  Every Router
  /// normalises requests on entry; validate() stays as the strict check.
  ///
  /// Requests that are already clean (the overwhelmingly common case) take
  /// an allocation-free scan and are returned as a plain copy; the dedup
  /// rebuild only runs when a duplicate was actually found.
  [[nodiscard]] MulticastRequest normalized(std::uint32_t num_nodes) const;

  /// Allocation-free normalization check: throws exactly the errors
  /// normalized() throws (out-of-range source/destination, source in the
  /// destination set, empty list -- same messages, same precedence), and
  /// otherwise returns true iff the destination list carries no duplicates,
  /// i.e. normalized() would return an identical request.
  [[nodiscard]] bool is_normalized(std::uint32_t num_nodes, RequestScratch& scratch) const;

  /// Zero-copy normalization for hot paths: returns `*this` unchanged when
  /// already normalized (no allocation, no copy), otherwise writes the
  /// deduped copy into `storage` (reusing its capacity) and returns a
  /// reference to it.  Throws like normalized().
  [[nodiscard]] const MulticastRequest& normalize_into(std::uint32_t num_nodes,
                                                       RequestScratch& scratch,
                                                       MulticastRequest& storage) const;
};

/// A single multicast path (the MP / star-branch shape): a walk from the
/// source; destinations are absorbed as the message passes them.
struct PathRoute {
  /// Visited nodes; nodes.front() is the source.
  std::vector<NodeId> nodes;
  /// Indices into `nodes` (ascending) at which a destination is delivered.
  std::vector<std::uint32_t> delivery_hops;
  /// Channel class for networks with multiple channels per link: the
  /// subnetwork this path is routed in (0 = high / first copy, 1 = low /
  /// second copy).  Ignored on single-channel networks.
  std::uint8_t channel_class = 0;

  [[nodiscard]] std::uint32_t hops() const {
    return nodes.empty() ? 0 : static_cast<std::uint32_t>(nodes.size() - 1);
  }

  friend bool operator==(const PathRoute&, const PathRoute&) = default;
};

/// A multicast tree (the MT / ST shape).  Stored as a link arena: link i
/// carries the message from `from` to `to`; `parent` is the index of the
/// upstream link (-1 for links leaving the source).
struct TreeRoute {
  struct Link {
    NodeId from = topo::kInvalidNode;
    NodeId to = topo::kInvalidNode;
    std::int32_t parent = -1;
    std::uint32_t depth = 1;  // hops from the source (root links have depth 1)

    friend bool operator==(const Link&, const Link&) = default;
  };

  NodeId source = topo::kInvalidNode;
  std::vector<Link> links;
  /// Indices of links whose `to` node is a destination (a destination at
  /// the source itself never occurs: requests exclude it).
  std::vector<std::uint32_t> delivery_links;
  /// Channel class per the owning subnetwork (double-channel X-first trees
  /// use classes 0..3, one per quadrant subnetwork).
  std::uint8_t channel_class = 0;

  /// Append a link and return its index.
  std::uint32_t add_link(NodeId from, NodeId to, std::int32_t parent);

  friend bool operator==(const TreeRoute&, const TreeRoute&) = default;
};

/// The complete route of one multicast: a set of paths (multicast star /
/// path models) and/or trees (tree models).  Every destination is delivered
/// exactly once across all components.
struct MulticastRoute {
  NodeId source = topo::kInvalidNode;
  std::vector<PathRoute> paths;
  std::vector<TreeRoute> trees;

  /// Total traffic: one unit per message traversal of a channel.
  [[nodiscard]] std::uint64_t traffic() const;
  /// Traffic beyond the k-unit lower bound for k destinations.
  [[nodiscard]] std::int64_t additional_traffic(std::uint32_t k) const {
    return static_cast<std::int64_t>(traffic()) - static_cast<std::int64_t>(k);
  }
  /// Maximum hop count from the source to any delivered destination.
  [[nodiscard]] std::uint32_t max_delivery_hops() const;
  /// Number of deliveries across all components.
  [[nodiscard]] std::uint32_t num_deliveries() const;

  friend bool operator==(const MulticastRoute&, const MulticastRoute&) = default;
};

/// Structural validation used by tests and the simulator: consecutive path
/// nodes adjacent, tree links well-formed, and every requested destination
/// delivered exactly once.  Throws std::logic_error on violation.
void verify_route(const topo::Topology& topology, const MulticastRequest& request,
                  const MulticastRoute& route);

}  // namespace mcnet::mcast
