#include "core/naive_tree.hpp"

#include <bit>
#include <stdexcept>
#include <unordered_set>

namespace mcnet::mcast {

namespace {

using topo::NodeId;

void binomial_expand(const topo::Hypercube& cube, TreeRoute& tree,
                     const std::unordered_set<NodeId>& dests, NodeId u,
                     std::int32_t link_into_u, std::uint32_t first_dim) {
  for (std::uint32_t j = first_dim; j < cube.dimensions(); ++j) {
    const NodeId next = cube.across(u, j);
    const auto link = static_cast<std::int32_t>(tree.add_link(u, next, link_into_u));
    if (dests.contains(next)) tree.delivery_links.push_back(static_cast<std::uint32_t>(link));
    binomial_expand(cube, tree, dests, next, link, j + 1);
  }
}

void ecube_expand(const topo::Hypercube& cube, TreeRoute& tree, NodeId u,
                  std::int32_t link_into_u, std::vector<NodeId> dests) {
  std::erase_if(dests, [&](NodeId d) {
    if (d != u) return false;
    if (link_into_u < 0) throw std::logic_error("source cannot be a destination");
    tree.delivery_links.push_back(static_cast<std::uint32_t>(link_into_u));
    return true;
  });
  while (!dests.empty()) {
    // e-cube: every destination leaves across its lowest differing
    // dimension; group by that dimension.
    const auto dim_of = [&](NodeId d) {
      return static_cast<std::uint32_t>(std::countr_zero(d ^ u));
    };
    const std::uint32_t dim = dim_of(dests.front());
    std::vector<NodeId> covered, rest;
    for (const NodeId d : dests) (dim_of(d) == dim ? covered : rest).push_back(d);
    const NodeId next = cube.across(u, dim);
    const auto link = static_cast<std::int32_t>(tree.add_link(u, next, link_into_u));
    ecube_expand(cube, tree, next, link, std::move(covered));
    dests = std::move(rest);
  }
}

}  // namespace

MulticastRoute binomial_broadcast_route(const topo::Hypercube& cube,
                                        const MulticastRequest& request) {
  TreeRoute tree;
  tree.source = request.source;
  const std::unordered_set<NodeId> dests(request.destinations.begin(),
                                         request.destinations.end());
  binomial_expand(cube, tree, dests, request.source, -1, 0);
  MulticastRoute route;
  route.source = request.source;
  route.trees.push_back(std::move(tree));
  return route;
}

MulticastRoute ecube_mt_route(const topo::Hypercube& cube, const MulticastRequest& request) {
  TreeRoute tree;
  tree.source = request.source;
  ecube_expand(cube, tree, request.source, -1, request.destinations);
  MulticastRoute route;
  route.source = request.source;
  route.trees.push_back(std::move(tree));
  return route;
}

}  // namespace mcnet::mcast
