#include "core/divided_greedy_mt.hpp"

#include <array>
#include <cstdlib>
#include <stdexcept>

namespace mcnet::mcast {

namespace {

using topo::Coord2;
using topo::NodeId;

enum Direction : std::size_t { kPosX = 0, kNegX = 1, kPosY = 2, kNegY = 3 };

void forward(const topo::Mesh2D& mesh, TreeRoute& tree, NodeId w, std::int32_t link_into_w,
             const std::vector<NodeId>& dests) {
  const Coord2 c = mesh.coord(w);

  std::array<std::vector<NodeId>, 4> out;  // direction lists, seeded by axis nodes
  // Quadrants P0..P3 (NE, NW, SW, SE), each split into x- and y-halves.
  std::array<std::vector<NodeId>, 4> sx, sy;

  for (const NodeId d : dests) {
    const Coord2 dc = mesh.coord(d);
    const std::int32_t dx = dc.x - c.x;
    const std::int32_t dy = dc.y - c.y;
    if (dx == 0 && dy == 0) {
      if (link_into_w < 0) throw std::logic_error("source cannot be a destination");
      tree.delivery_links.push_back(static_cast<std::uint32_t>(link_into_w));
      continue;
    }
    if (dy == 0) {
      out[dx > 0 ? kPosX : kNegX].push_back(d);
      continue;
    }
    if (dx == 0) {
      out[dy > 0 ? kPosY : kNegY].push_back(d);
      continue;
    }
    const std::size_t q = (dx > 0) ? (dy > 0 ? 0 : 3) : (dy > 0 ? 1 : 2);
    (std::abs(dx) > std::abs(dy) ? sx : sy)[q].push_back(d);
  }

  // Candidate sets per direction: {quadrant half, sibling direction}.
  struct Candidate {
    const std::vector<NodeId>* set;
    Direction own;
    Direction sibling;  // direction of the same quadrant's other half
  };
  const std::array<Candidate, 8> candidates = {{
      {&sx[0], kPosX, kPosY},
      {&sx[3], kPosX, kNegY},
      {&sx[1], kNegX, kPosY},
      {&sx[2], kNegX, kNegY},
      {&sy[0], kPosY, kPosX},
      {&sy[1], kPosY, kNegX},
      {&sy[2], kNegY, kNegX},
      {&sy[3], kNegY, kPosX},
  }};

  // A direction is open when seeded or when both of its candidates are
  // non-empty; openness is decided before any merging.
  std::array<bool, 4> open{};
  for (std::size_t dir = 0; dir < 4; ++dir) {
    bool both = true;
    for (const Candidate& cand : candidates) {
      if (cand.own == static_cast<Direction>(dir) && cand.set->empty()) both = false;
    }
    open[dir] = !out[dir].empty() || both;
  }

  for (const Candidate& cand : candidates) {
    if (cand.set->empty()) continue;
    const Direction target =
        (!open[cand.own] && open[cand.sibling]) ? cand.sibling : cand.own;
    out[target].insert(out[target].end(), cand.set->begin(), cand.set->end());
  }

  static constexpr std::array<std::pair<std::int32_t, std::int32_t>, 4> kStep = {
      {{+1, 0}, {-1, 0}, {0, +1}, {0, -1}}};
  for (std::size_t dir = 0; dir < 4; ++dir) {
    if (out[dir].empty()) continue;
    const NodeId next = mesh.node(c.x + kStep[dir].first, c.y + kStep[dir].second);
    const auto link = static_cast<std::int32_t>(tree.add_link(w, next, link_into_w));
    forward(mesh, tree, next, link, out[dir]);
  }
}

}  // namespace

MulticastRoute divided_greedy_mt_route(const topo::Mesh2D& mesh,
                                       const MulticastRequest& request) {
  TreeRoute tree;
  tree.source = request.source;
  forward(mesh, tree, request.source, -1, request.destinations);
  MulticastRoute route;
  route.source = request.source;
  route.trees.push_back(std::move(tree));
  return route;
}

}  // namespace mcnet::mcast
