// Exact / optimal solvers for the Chapter 3 multicast models on small
// instances.  Chapter 4 proves OMP, OMC, MST and OMS NP-complete, so these
// exponential-in-k algorithms exist to *calibrate the heuristics*: the
// ablation bench compares heuristic traffic against the true optimum on
// instances small enough to solve exactly.
//
//  * Dreyfus-Wagner dynamic programming for the minimal Steiner tree
//    (O(3^t n + 2^t n^2 + n^3) for t terminals) -- exact MST.
//  * Held-Karp dynamic programming over destination orderings for the
//    optimal multicast path / cycle *length lower bound* (walks may revisit
//    nodes, so this lower-bounds Definition 3.1's simple-path OMP; on the
//    dense mesh/cube hosts the bound is almost always attainable).
//  * Exhaustive partition search for the optimal multicast star bound
//    (each part served by an optimal walk from the source).
#pragma once

#include <cstdint>
#include <vector>

#include "core/multicast.hpp"
#include "topology/topology.hpp"

namespace mcnet::mcast::exact {

/// All-pairs shortest distances by BFS from each source (unit weights).
/// O(n * (n + m)); intended for the small calibration hosts.
[[nodiscard]] std::vector<std::vector<std::uint32_t>> all_pairs_distances(
    const topo::Topology& topology);

/// Exact minimal Steiner tree length for {source} union destinations
/// (Dreyfus-Wagner).  Throws std::invalid_argument for more than 16
/// terminals.
[[nodiscard]] std::uint64_t steiner_tree_optimum(const topo::Topology& topology,
                                                 const MulticastRequest& request);

/// Minimal total length of a walk from the source visiting every
/// destination (Held-Karp over visit orders, shortest paths between
/// consecutive stops).  Lower bound on the OMP of Definition 3.1; equality
/// holds whenever some optimal visiting order admits vertex-disjoint
/// connecting shortest paths.  Throws for more than 20 destinations.
[[nodiscard]] std::uint64_t multicast_path_optimum_bound(const topo::Topology& topology,
                                                         const MulticastRequest& request);

/// As above but the walk must return to the source (OMC bound).
[[nodiscard]] std::uint64_t multicast_cycle_optimum_bound(const topo::Topology& topology,
                                                          const MulticastRequest& request);

/// Minimal total length over all partitions of the destinations into
/// non-empty groups, each served by an optimal walk from the source (OMS
/// bound, Definition 3.5).  Exponential in k; throws for more than 10
/// destinations.
[[nodiscard]] std::uint64_t multicast_star_optimum_bound(const topo::Topology& topology,
                                                         const MulticastRequest& request);

}  // namespace mcnet::mcast::exact
