#include "core/router.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "topology/kary_ncube.hpp"
#include "topology/mesh3d.hpp"

namespace mcnet::mcast {

namespace {

constexpr Algorithm kMeshAlgorithms[] = {
    Algorithm::kMultiUnicast,    Algorithm::kBroadcast,  Algorithm::kSortedMP,
    Algorithm::kSortedMC,        Algorithm::kGreedyST,   Algorithm::kXFirstMT,
    Algorithm::kDividedGreedyMT, Algorithm::kDualPath,   Algorithm::kMultiPath,
    Algorithm::kFixedPath,       Algorithm::kDCXFirstTree};

constexpr Algorithm kCubeAlgorithms[] = {
    Algorithm::kMultiUnicast, Algorithm::kBroadcast, Algorithm::kSortedMP,
    Algorithm::kSortedMC,     Algorithm::kGreedyST,  Algorithm::kLenTree,
    Algorithm::kDualPath,     Algorithm::kMultiPath, Algorithm::kFixedPath,
    Algorithm::kEcubeMT,      Algorithm::kBinomialBroadcast};

constexpr Algorithm kLabeledAlgorithms[] = {
    Algorithm::kMultiUnicast, Algorithm::kBroadcast, Algorithm::kDualPath,
    Algorithm::kMultiPath, Algorithm::kFixedPath};

template <std::size_t N>
bool contains(const Algorithm (&list)[N], Algorithm a) {
  return std::find(std::begin(list), std::end(list), a) != std::end(list);
}

template <std::size_t N>
void require(const Algorithm (&list)[N], Algorithm a, const topo::Topology& t) {
  if (!contains(list, a)) {
    throw std::invalid_argument("algorithm " + std::string(algorithm_name(a)) +
                                " is not applicable to " + t.name());
  }
}

}  // namespace

RouteBatch Router::route_many(std::span<const MulticastRequest> requests) const {
  RouteBatch batch;
  batch.reserve(requests.size());
  for (const MulticastRequest& request : requests) batch.append(route(request));
  return batch;
}

bool algorithm_deadlock_free(Algorithm a) {
  switch (a) {
    case Algorithm::kMultiUnicast:
    case Algorithm::kDualPath:
    case Algorithm::kMultiPath:
    case Algorithm::kFixedPath:
    case Algorithm::kDCXFirstTree:
      return true;
    default:
      return false;
  }
}

std::vector<Algorithm> supported_algorithms(const topo::Topology& topology) {
  const auto to_vector = [](const auto& list) {
    return std::vector<Algorithm>(std::begin(list), std::end(list));
  };
  if (dynamic_cast<const topo::Mesh2D*>(&topology) != nullptr) {
    return to_vector(kMeshAlgorithms);
  }
  if (dynamic_cast<const topo::Hypercube*>(&topology) != nullptr) {
    return to_vector(kCubeAlgorithms);
  }
  if (dynamic_cast<const topo::Mesh3D*>(&topology) != nullptr ||
      dynamic_cast<const topo::KAryNCube*>(&topology) != nullptr) {
    return to_vector(kLabeledAlgorithms);
  }
  return {};
}

std::unique_ptr<Router> make_router(const topo::Topology& topology, Algorithm algorithm,
                                    std::uint8_t copies) {
  if (const auto* mesh = dynamic_cast<const topo::Mesh2D*>(&topology)) {
    return std::make_unique<MeshRouter>(*mesh, algorithm, copies);
  }
  if (const auto* cube = dynamic_cast<const topo::Hypercube*>(&topology)) {
    return std::make_unique<CubeRouter>(*cube, algorithm, copies);
  }
  if (const auto* mesh3 = dynamic_cast<const topo::Mesh3D*>(&topology)) {
    return std::make_unique<LabeledRouter>(
        *mesh3,
        std::make_unique<ham::MixedRadixGrayLabeling>(
            ham::MixedRadixGrayLabeling::for_mesh3d(*mesh3)),
        algorithm, copies);
  }
  if (const auto* kary = dynamic_cast<const topo::KAryNCube*>(&topology)) {
    return std::make_unique<LabeledRouter>(
        *kary,
        std::make_unique<ham::MixedRadixGrayLabeling>(
            ham::MixedRadixGrayLabeling::for_kary(*kary)),
        algorithm, copies);
  }
  throw std::invalid_argument("make_router: unsupported topology " + topology.name());
}

MeshRouter::MeshRouter(const topo::Mesh2D& mesh, Algorithm algorithm, std::uint8_t copies)
    : SuiteRouterBase(algorithm, copies), suite_(mesh) {
  require(kMeshAlgorithms, algorithm, mesh);
}

MulticastRoute MeshRouter::route(const MulticastRequest& request) const {
  return suite_.route(algorithm_, request.normalized(suite_.mesh().num_nodes()));
}

RouteBatch MeshRouter::route_many(std::span<const MulticastRequest> requests) const {
  const std::uint32_t n = suite_.mesh().num_nodes();
  RouteBatch batch;
  batch.reserve(requests.size());
  RequestScratch normalize;
  MulticastRequest storage;
  RouteScratch scratch;
  for (const MulticastRequest& request : requests) {
    batch.append(suite_.route(algorithm_, request.normalize_into(n, normalize, storage),
                              scratch));
  }
  return batch;
}

std::vector<worm::WormSpec> MeshRouter::specs(const MulticastRoute& route) const {
  return worm::make_worm_specs(suite_.mesh(), route, copies_);
}

CubeRouter::CubeRouter(const topo::Hypercube& cube, Algorithm algorithm, std::uint8_t copies)
    : SuiteRouterBase(algorithm, copies), suite_(cube) {
  require(kCubeAlgorithms, algorithm, cube);
}

MulticastRoute CubeRouter::route(const MulticastRequest& request) const {
  return suite_.route(algorithm_, request.normalized(suite_.cube().num_nodes()));
}

RouteBatch CubeRouter::route_many(std::span<const MulticastRequest> requests) const {
  const std::uint32_t n = suite_.cube().num_nodes();
  RouteBatch batch;
  batch.reserve(requests.size());
  RequestScratch normalize;
  MulticastRequest storage;
  RouteScratch scratch;
  for (const MulticastRequest& request : requests) {
    batch.append(suite_.route(algorithm_, request.normalize_into(n, normalize, storage),
                              scratch));
  }
  return batch;
}

std::vector<worm::WormSpec> CubeRouter::specs(const MulticastRoute& route) const {
  return worm::make_worm_specs(suite_.cube(), route, copies_);
}

LabeledRouter::LabeledRouter(const topo::Topology& topology,
                             std::unique_ptr<ham::Labeling> labeling, Algorithm algorithm,
                             std::uint8_t copies)
    : SuiteRouterBase(algorithm, copies), suite_(topology, std::move(labeling)) {
  require(kLabeledAlgorithms, algorithm, topology);
}

MulticastRoute LabeledRouter::route(const MulticastRequest& request) const {
  return suite_.route(algorithm_, request.normalized(suite_.topology().num_nodes()));
}

RouteBatch LabeledRouter::route_many(std::span<const MulticastRequest> requests) const {
  const std::uint32_t n = suite_.topology().num_nodes();
  RouteBatch batch;
  batch.reserve(requests.size());
  RequestScratch normalize;
  MulticastRequest storage;
  RouteScratch scratch;
  for (const MulticastRequest& request : requests) {
    batch.append(suite_.route(algorithm_, request.normalize_into(n, normalize, storage),
                              scratch));
  }
  return batch;
}

std::vector<worm::WormSpec> LabeledRouter::specs(const MulticastRoute& route) const {
  return worm::make_worm_specs(suite_.topology(), route, copies_);
}

}  // namespace mcnet::mcast
