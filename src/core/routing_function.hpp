// The label-order-preserving routing function R of Sections 6.2.2 / 6.3:
//
//   R(u, v) = the neighbour w of u with
//             max { l(p) : l(p) <= l(v) }  when l(u) < l(v)   (high network)
//             min { l(p) : l(p) >= l(v) }  when l(u) > l(v)   (low network)
//
// Lemmas 6.1 / 6.4 claim that for the boustrophedon mesh labeling and the
// Gray-code hypercube labeling R selects a shortest path that is monotone
// in the labels, hence confined to one acyclic subnetwork.  The path worms
// of the dual-, multi- and fixed-path algorithms are built on R.
//
// ERRATUM (documented in DESIGN.md): on the hypercube the literal max-label
// rule is NOT shortest -- e.g. in a 3-cube from 000 (label 0) to 101
// (label 6) it selects 010 (label 3) over 001 (label 1) and needs 4 hops
// instead of 2.  Lemma 6.4's own case analysis constructs a label-monotone
// *distance-reducing* neighbour for every pair, so this implementation
// applies the max/min-label rule over the distance-reducing neighbours
// first (falling back to the literal rule if none exists).  On the mesh the
// two rules coincide (Lemma 6.1 holds as stated), and label monotonicity --
// the property deadlock freedom rests on -- is preserved either way.
#pragma once

#include <optional>
#include <span>

#include "core/multicast.hpp"
#include "topology/hamiltonian.hpp"

namespace mcnet::mcast {

class LabelRouter {
 public:
  LabelRouter(const topo::Topology& topology, const ham::Labeling& labeling)
      : topology_(&topology), labeling_(&labeling) {}

  /// One application of R.  Returns kInvalidNode when cur == dst.
  [[nodiscard]] topo::NodeId next_hop(topo::NodeId cur, topo::NodeId dst) const;

  /// Walk from `source` through each target in order (targets must be
  /// label-monotone relative to the source: all above it or all below it,
  /// sorted accordingly).  `forced_first_hop`, when set, pre-routes the
  /// message one hop before R takes over (the multi-path algorithms address
  /// a specific neighbour).  Deliveries are recorded at each target.
  [[nodiscard]] PathRoute route_path(topo::NodeId source,
                                     std::span<const topo::NodeId> targets,
                                     std::optional<topo::NodeId> forced_first_hop,
                                     std::uint8_t channel_class) const;

  [[nodiscard]] const ham::Labeling& labeling() const { return *labeling_; }
  [[nodiscard]] const topo::Topology& topology() const { return *topology_; }

 private:
  const topo::Topology* topology_;
  const ham::Labeling* labeling_;
};

}  // namespace mcnet::mcast
