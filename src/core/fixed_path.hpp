// Fixed-path multicast routing (Section 6.2.2, Fig. 6.17): the simplest of
// the path-like schemes.  The upper worm follows the Hamiltonian path
// itself, visiting *every* node in increasing label order until the highest
// labeled destination; the lower worm symmetrically in decreasing order.
// Traffic is exactly the label distance to the extreme destinations, so the
// scheme wastes channels for small destination sets but converges to
// dual-path behaviour for large ones (Fig. 7.11).
#pragma once

#include "core/dual_path.hpp"

namespace mcnet::mcast {

[[nodiscard]] MulticastRoute fixed_path_route(const topo::Topology& topology,
                                              const ham::Labeling& labeling,
                                              const MulticastRequest& request);

/// Batch variant reusing a caller-owned split workspace (Router::route_many
/// hoists it out of the per-request loop); same route as the plain form.
[[nodiscard]] MulticastRoute fixed_path_route(const topo::Topology& topology,
                                              const ham::Labeling& labeling,
                                              const MulticastRequest& request,
                                              DualPathSplit& scratch);

}  // namespace mcnet::mcast
