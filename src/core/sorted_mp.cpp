#include "core/sorted_mp.hpp"

#include <algorithm>
#include <stdexcept>

namespace mcnet::mcast {

namespace {

MulticastRoute sorted_route(const topo::Topology& topology, const ham::HamiltonCycle& cycle,
                            const MulticastRequest& request, bool close_cycle) {
  const std::uint32_t n = cycle.size();
  const NodeId source = request.source;

  // f(v): cyclic position from the source; the source itself keys as N when
  // it is the final (cycle-closing) target.
  const auto key = [&](NodeId v, bool returning) -> std::uint32_t {
    if (v == source) return returning ? n : 0;
    return cycle.key_from(source, v);
  };

  std::vector<NodeId> targets = request.destinations;
  std::sort(targets.begin(), targets.end(), [&](NodeId a, NodeId b) {
    return key(a, false) < key(b, false);
  });
  if (close_cycle) targets.push_back(source);

  PathRoute path;
  path.nodes.push_back(source);
  NodeId w = source;
  for (std::size_t ti = 0; ti < targets.size(); ++ti) {
    const NodeId d = targets[ti];
    const bool returning = close_cycle && ti + 1 == targets.size();
    const std::uint32_t fd = key(d, returning);
    while (w != d) {
      // Step 3 of Fig. 5.2: the neighbour with the greatest key <= f(d).
      NodeId next = topo::kInvalidNode;
      std::uint32_t best = 0;
      for (const NodeId p : topology.neighbors(w)) {
        const std::uint32_t fp = key(p, returning);
        if (fp <= fd && fp > key(w, false) && (next == topo::kInvalidNode || fp > best)) {
          next = p;
          best = fp;
        }
      }
      if (next == topo::kInvalidNode) throw std::logic_error("sorted MP routing stuck");
      path.nodes.push_back(next);
      w = next;
    }
    if (!returning) {
      path.delivery_hops.push_back(static_cast<std::uint32_t>(path.nodes.size() - 1));
    }
  }

  MulticastRoute route;
  route.source = source;
  route.paths.push_back(std::move(path));
  return route;
}

}  // namespace

MulticastRoute sorted_mp_route(const topo::Topology& topology, const ham::HamiltonCycle& cycle,
                               const MulticastRequest& request) {
  return sorted_route(topology, cycle, request, /*close_cycle=*/false);
}

MulticastRoute sorted_mc_route(const topo::Topology& topology, const ham::HamiltonCycle& cycle,
                               const MulticastRequest& request) {
  return sorted_route(topology, cycle, request, /*close_cycle=*/true);
}

}  // namespace mcnet::mcast
