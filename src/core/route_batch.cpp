#include "core/route_batch.hpp"

#include <algorithm>

namespace mcnet::mcast {

void RouteBatch::clear() {
  requests_.clear();
  paths_.clear();
  trees_.clear();
  path_nodes_.clear();
  path_deliveries_.clear();
  tree_links_.clear();
  tree_deliveries_.clear();
}

void RouteBatch::reserve(std::size_t requests, std::size_t path_nodes_hint,
                         std::size_t tree_links_hint) {
  requests_.reserve(requests);
  paths_.reserve(requests);  // most algorithms emit 1-4 paths per route
  if (path_nodes_hint > 0) path_nodes_.reserve(path_nodes_hint);
  if (tree_links_hint > 0) tree_links_.reserve(tree_links_hint);
}

std::size_t RouteBatch::append(const MulticastRoute& route) {
  RequestSpan req;
  req.source = route.source;
  req.paths_begin = static_cast<std::uint32_t>(paths_.size());
  req.paths_count = static_cast<std::uint32_t>(route.paths.size());
  req.trees_begin = static_cast<std::uint32_t>(trees_.size());
  req.trees_count = static_cast<std::uint32_t>(route.trees.size());

  for (const PathRoute& p : route.paths) {
    PathSpan span;
    span.nodes_begin = static_cast<std::uint32_t>(path_nodes_.size());
    span.nodes_count = static_cast<std::uint32_t>(p.nodes.size());
    span.deliveries_begin = static_cast<std::uint32_t>(path_deliveries_.size());
    span.deliveries_count = static_cast<std::uint32_t>(p.delivery_hops.size());
    span.channel_class = p.channel_class;
    path_nodes_.insert(path_nodes_.end(), p.nodes.begin(), p.nodes.end());
    path_deliveries_.insert(path_deliveries_.end(), p.delivery_hops.begin(),
                            p.delivery_hops.end());
    paths_.push_back(span);
  }
  for (const TreeRoute& t : route.trees) {
    TreeSpan span;
    span.source = t.source;
    span.links_begin = static_cast<std::uint32_t>(tree_links_.size());
    span.links_count = static_cast<std::uint32_t>(t.links.size());
    span.deliveries_begin = static_cast<std::uint32_t>(tree_deliveries_.size());
    span.deliveries_count = static_cast<std::uint32_t>(t.delivery_links.size());
    span.channel_class = t.channel_class;
    tree_links_.insert(tree_links_.end(), t.links.begin(), t.links.end());
    tree_deliveries_.insert(tree_deliveries_.end(), t.delivery_links.begin(),
                            t.delivery_links.end());
    trees_.push_back(span);
  }
  requests_.push_back(req);
  return requests_.size() - 1;
}

std::size_t RouteBatch::append_from(const RouteBatch& other, std::size_t index) {
  const RequestSpan& src = other.requests_[index];
  RequestSpan req;
  req.source = src.source;
  req.paths_begin = static_cast<std::uint32_t>(paths_.size());
  req.paths_count = src.paths_count;
  req.trees_begin = static_cast<std::uint32_t>(trees_.size());
  req.trees_count = src.trees_count;

  for (const PathSpan& p : other.paths_of(index)) {
    PathSpan span = p;
    span.nodes_begin = static_cast<std::uint32_t>(path_nodes_.size());
    span.deliveries_begin = static_cast<std::uint32_t>(path_deliveries_.size());
    const auto nodes = other.path_nodes(p);
    const auto deliveries = other.path_deliveries(p);
    path_nodes_.insert(path_nodes_.end(), nodes.begin(), nodes.end());
    path_deliveries_.insert(path_deliveries_.end(), deliveries.begin(), deliveries.end());
    paths_.push_back(span);
  }
  for (const TreeSpan& t : other.trees_of(index)) {
    TreeSpan span = t;
    span.links_begin = static_cast<std::uint32_t>(tree_links_.size());
    span.deliveries_begin = static_cast<std::uint32_t>(tree_deliveries_.size());
    const auto links = other.tree_links(t);
    const auto deliveries = other.tree_deliveries(t);
    tree_links_.insert(tree_links_.end(), links.begin(), links.end());
    tree_deliveries_.insert(tree_deliveries_.end(), deliveries.begin(), deliveries.end());
    trees_.push_back(span);
  }
  requests_.push_back(req);
  return requests_.size() - 1;
}

MulticastRoute RouteBatch::route_at(std::size_t index) const {
  const RequestSpan& req = requests_[index];
  MulticastRoute route;
  route.source = req.source;
  route.paths.reserve(req.paths_count);
  route.trees.reserve(req.trees_count);
  for (const PathSpan& p : paths_of(index)) {
    PathRoute path;
    const auto nodes = path_nodes(p);
    const auto deliveries = path_deliveries(p);
    path.nodes.assign(nodes.begin(), nodes.end());
    path.delivery_hops.assign(deliveries.begin(), deliveries.end());
    path.channel_class = p.channel_class;
    route.paths.push_back(std::move(path));
  }
  for (const TreeSpan& t : trees_of(index)) {
    TreeRoute tree;
    tree.source = t.source;
    const auto links = tree_links(t);
    const auto deliveries = tree_deliveries(t);
    tree.links.assign(links.begin(), links.end());
    tree.delivery_links.assign(deliveries.begin(), deliveries.end());
    tree.channel_class = t.channel_class;
    route.trees.push_back(std::move(tree));
  }
  return route;
}

std::uint64_t RouteBatch::traffic_at(std::size_t index) const {
  std::uint64_t total = 0;
  for (const PathSpan& p : paths_of(index)) {
    total += p.nodes_count > 0 ? p.nodes_count - 1 : 0;
  }
  for (const TreeSpan& t : trees_of(index)) total += t.links_count;
  return total;
}

std::uint32_t RouteBatch::deliveries_at(std::size_t index) const {
  std::uint32_t total = 0;
  for (const PathSpan& p : paths_of(index)) total += p.deliveries_count;
  for (const TreeSpan& t : trees_of(index)) total += t.deliveries_count;
  return total;
}

std::uint32_t RouteBatch::max_delivery_hops_at(std::size_t index) const {
  std::uint32_t m = 0;
  for (const PathSpan& p : paths_of(index)) {
    for (const std::uint32_t h : path_deliveries(p)) m = std::max(m, h);
  }
  for (const TreeSpan& t : trees_of(index)) {
    const auto links = tree_links(t);
    for (const std::uint32_t li : tree_deliveries(t)) m = std::max(m, links[li].depth);
  }
  return m;
}

std::uint64_t RouteBatch::total_traffic() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < requests_.size(); ++i) total += traffic_at(i);
  return total;
}

}  // namespace mcnet::mcast
