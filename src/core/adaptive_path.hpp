// Randomised-adaptive variant of the path-based multicast algorithms --
// the Section 8.2 "adaptive routing" extension, in its simplest
// deadlock-safe form.
//
// At every step the deterministic routing function R picks the
// *label-extremal* distance-reducing monotone neighbour; here the next hop
// is drawn uniformly from *all* distance-reducing label-monotone
// neighbours instead.  Every choice stays inside one acyclic subnetwork,
// so deadlock freedom is untouched, while different messages between the
// same endpoints spread over different shortest monotone paths (static
// load balancing; the selection is made at message-preparation time, as
// the header must carry a fixed path in the paper's router model).
#pragma once

#include "core/dual_path.hpp"
#include "core/routing_function.hpp"
#include "evsim/random.hpp"

namespace mcnet::mcast {

/// All label-monotone next hops from `cur` toward `dst`, preferring
/// distance-reducing neighbours (falls back to every monotone neighbour
/// bounded by the destination label when none reduces distance).
[[nodiscard]] std::vector<topo::NodeId> monotone_candidates(const topo::Topology& topology,
                                                            const ham::Labeling& labeling,
                                                            topo::NodeId cur,
                                                            topo::NodeId dst);

/// Allocation-free variant for hot loops and the relation-based analyzer:
/// clears `out` and fills it with the same candidate set.
void monotone_candidates_into(const topo::Topology& topology, const ham::Labeling& labeling,
                              topo::NodeId cur, topo::NodeId dst,
                              std::vector<topo::NodeId>& out);

/// Dual-path multicast with randomised monotone hops.
[[nodiscard]] MulticastRoute adaptive_dual_path_route(const topo::Topology& topology,
                                                      const ham::Labeling& labeling,
                                                      const MulticastRequest& request,
                                                      evsim::Rng& rng);

}  // namespace mcnet::mcast
