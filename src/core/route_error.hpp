// Diagnosable routing-walk failure.  The path routers walk a worm hop by
// hop; when a walk cannot make progress (no legal next hop) or exceeds its
// hop budget, the failure is reported with the walk position -- current
// node, its label, and the target being served -- instead of a bare
// logic_error string, so verification tooling and service logs can say
// *where* a router got stuck.  Derives from std::logic_error: existing
// catch sites keep working unchanged.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "topology/topology.hpp"

namespace mcnet::mcast {

class RouteError : public std::logic_error {
 public:
  RouteError(const std::string& reason, topo::NodeId node, std::uint32_t node_label,
             topo::NodeId target)
      : std::logic_error(reason + " at node " + std::to_string(node) + " (label " +
                         std::to_string(node_label) + ") toward node " +
                         std::to_string(target)),
        node_(node),
        node_label_(node_label),
        target_(target) {}

  /// Node the walk had reached when it failed.
  [[nodiscard]] topo::NodeId node() const { return node_; }
  /// Hamiltonian label of that node.
  [[nodiscard]] std::uint32_t node_label() const { return node_label_; }
  /// Destination the walk was serving.
  [[nodiscard]] topo::NodeId target() const { return target_; }

 private:
  topo::NodeId node_;
  std::uint32_t node_label_;
  topo::NodeId target_;
};

}  // namespace mcnet::mcast
