// The divided greedy multicast-tree algorithm of Section 5.3 (Fig. 5.6).
//
// Unlike X-first routing, the divided greedy algorithm considers the
// positions of *all* destinations when choosing outgoing directions.  At a
// forward node (x0, y0):
//
//  1. destinations on the local axes are seeded directly into the matching
//     direction lists D+X / D-X / D+Y / D-Y;
//  2. the remaining destinations fall into the four open quadrants
//     P0 (NE), P1 (NW), P2 (SW), P3 (SE); each quadrant splits into Six
//     (x-offset dominates) and Siy (otherwise);
//  3. the x-halves of the two quadrants flanking each horizontal direction
//     are its candidate sets (S0x, S3x -> D+X; S1x, S2x -> D-X), and the
//     y-halves flank the vertical directions (S0y, S1y -> D+Y;
//     S2y, S3y -> D-Y);
//  4. a direction is *open* when its seed list is non-empty or both its
//     candidate sets are non-empty; a lone candidate set whose direction is
//     closed is merged into its quadrant sibling's direction when that
//     direction is open (Section 5.4's example: S3x merged into D-Y),
//     avoiding a nearly-empty extra branch.
//
// Every move still reduces the distance to all destinations it carries, so
// all deliveries use shortest paths (Theorem 5.4).
#pragma once

#include "core/multicast.hpp"
#include "topology/mesh2d.hpp"

namespace mcnet::mcast {

[[nodiscard]] MulticastRoute divided_greedy_mt_route(const topo::Mesh2D& mesh,
                                                     const MulticastRequest& request);

}  // namespace mcnet::mcast
