// The double-channel X-first tree-like multicast of Section 6.2.1
// (Figures 6.5-6.7).
//
// Every mesh channel is doubled and the network is partitioned into four
// acyclic subnetworks N_{+X,+Y}, N_{-X,+Y}, N_{-X,-Y}, N_{+X,-Y}, each
// owning one copy of the channels in its two directions.  A multicast
// splits into at most four sub-multicasts, one per quadrant of the
// destination set relative to the source (half-open quadrants so each
// destination belongs to exactly one), routed as an X-first tree entirely
// inside one subnetwork.  Each subnetwork is acyclic, hence the scheme is
// deadlock-free (Assertion 1) -- at the price of double channels and the
// tree blocking behaviour measured in Figures 7.8-7.9.
#pragma once

#include "core/multicast.hpp"
#include "topology/mesh2d.hpp"

namespace mcnet::mcast {

/// Quadrant subnetwork indices, also used as channel classes so the
/// simulator can map each tree onto its own channel copies.
enum class Quadrant : std::uint8_t {
  kPosXPosY = 0,
  kNegXPosY = 1,
  kNegXNegY = 2,
  kPosXNegY = 3,
};

/// Quadrant of destination (x, y) relative to source (x0, y0), using the
/// paper's half-open partition:
///   +X,+Y: x > x0, y >= y0      -X,+Y: x <= x0, y > y0
///   -X,-Y: x < x0, y <= y0      +X,-Y: x >= x0, y < y0
[[nodiscard]] Quadrant quadrant_of(topo::Coord2 source, topo::Coord2 destination);

/// Physical channel copy (0 or 1) that quadrant subnetwork `q` owns for a
/// hop in direction (dx, dy): each direction's two copies are shared by
/// the two subnetworks that use it.
[[nodiscard]] std::uint8_t quadrant_channel_copy(Quadrant q, std::int32_t dx, std::int32_t dy);

/// Route a multicast as up to four X-first trees, one per quadrant; the
/// TreeRoute channel_class carries the quadrant index.
[[nodiscard]] MulticastRoute dc_xfirst_tree_route(const topo::Mesh2D& mesh,
                                                  const MulticastRequest& request);

}  // namespace mcnet::mcast
