#include "core/baselines.hpp"

#include <stdexcept>
#include <unordered_set>

namespace mcnet::mcast {

namespace {

PathRoute walk_unicast(const topo::Topology& topology, const cdg::RoutingFunction& unicast,
                       NodeId source, NodeId destination) {
  PathRoute path;
  path.nodes.push_back(source);
  NodeId cur = source;
  while (cur != destination) {
    const NodeId next = unicast(cur, destination);
    if (next == topo::kInvalidNode) throw std::logic_error("unicast routing stuck");
    path.nodes.push_back(next);
    cur = next;
    if (path.nodes.size() > topology.num_nodes() + 1) {
      throw std::logic_error("unicast routing loops");
    }
  }
  path.delivery_hops.push_back(static_cast<std::uint32_t>(path.nodes.size() - 1));
  return path;
}

}  // namespace

MulticastRoute multi_unicast_route(const topo::Topology& topology,
                                   const cdg::RoutingFunction& unicast,
                                   const MulticastRequest& request) {
  MulticastRoute route;
  route.source = request.source;
  route.paths.reserve(request.destinations.size());
  for (const NodeId d : request.destinations) {
    route.paths.push_back(walk_unicast(topology, unicast, request.source, d));
  }
  return route;
}

MulticastRoute broadcast_route(const topo::Topology& topology,
                               const cdg::RoutingFunction& unicast,
                               const MulticastRequest& request) {
  const std::uint32_t n = topology.num_nodes();
  // predecessor[v] = the unique node that forwards the broadcast to v.
  // Deterministic routing makes the union of source->v paths a tree.
  std::vector<NodeId> predecessor(n, topo::kInvalidNode);
  for (NodeId v = 0; v < n; ++v) {
    if (v == request.source) continue;
    NodeId cur = request.source;
    NodeId prev = request.source;
    while (cur != v) {
      prev = cur;
      cur = unicast(cur, v);
      if (cur == topo::kInvalidNode) throw std::logic_error("unicast routing stuck");
    }
    predecessor[v] = prev;
  }

  // Emit links in BFS order from the source so parents precede children.
  TreeRoute tree;
  tree.source = request.source;
  std::vector<std::int32_t> link_into(n, -1);
  std::vector<std::vector<NodeId>> children(n);
  for (NodeId v = 0; v < n; ++v) {
    if (predecessor[v] != topo::kInvalidNode) children[predecessor[v]].push_back(v);
  }
  std::vector<NodeId> frontier = {request.source};
  while (!frontier.empty()) {
    std::vector<NodeId> next;
    for (const NodeId u : frontier) {
      for (const NodeId v : children[u]) {
        link_into[v] = static_cast<std::int32_t>(
            tree.add_link(u, v, u == request.source ? -1 : link_into[u]));
        next.push_back(v);
      }
    }
    frontier = std::move(next);
  }

  const std::unordered_set<NodeId> dests(request.destinations.begin(),
                                         request.destinations.end());
  for (std::uint32_t li = 0; li < tree.links.size(); ++li) {
    if (dests.contains(tree.links[li].to)) tree.delivery_links.push_back(li);
  }

  MulticastRoute route;
  route.source = request.source;
  route.trees.push_back(std::move(tree));
  return route;
}

}  // namespace mcnet::mcast
