#include "core/xfirst_mt.hpp"

#include <stdexcept>

namespace mcnet::mcast {

namespace {

using topo::Coord2;
using topo::NodeId;

void forward(const topo::Mesh2D& mesh, TreeRoute& tree, NodeId w, std::int32_t link_into_w,
             const std::vector<NodeId>& dests) {
  const Coord2 c = mesh.coord(w);
  std::vector<NodeId> pos_x, neg_x, pos_y, neg_y;
  for (const NodeId d : dests) {
    const Coord2 dc = mesh.coord(d);
    if (dc.x > c.x) {
      pos_x.push_back(d);
    } else if (dc.x < c.x) {
      neg_x.push_back(d);
    } else if (dc.y > c.y) {
      pos_y.push_back(d);
    } else if (dc.y < c.y) {
      neg_y.push_back(d);
    } else {
      // Local delivery: record on the link that carried the message here.
      if (link_into_w < 0) throw std::logic_error("source cannot be a destination");
      tree.delivery_links.push_back(static_cast<std::uint32_t>(link_into_w));
    }
  }
  const auto send = [&](const std::vector<NodeId>& sublist, std::int32_t dx, std::int32_t dy) {
    if (sublist.empty()) return;
    const NodeId next = mesh.node(c.x + dx, c.y + dy);
    const auto link = static_cast<std::int32_t>(tree.add_link(w, next, link_into_w));
    forward(mesh, tree, next, link, sublist);
  };
  send(pos_x, +1, 0);
  send(neg_x, -1, 0);
  send(pos_y, 0, +1);
  send(neg_y, 0, -1);
}

}  // namespace

MulticastRoute xfirst_mt_route(const topo::Mesh2D& mesh, const MulticastRequest& request) {
  TreeRoute tree;
  tree.source = request.source;
  forward(mesh, tree, request.source, -1, request.destinations);
  MulticastRoute route;
  route.source = request.source;
  route.trees.push_back(std::move(tree));
  return route;
}

}  // namespace mcnet::mcast
