// Arena-backed structure-of-arrays batch of multicast routes: the batch
// counterpart of MulticastRoute for the Router::route_many API.
//
// One RouteBatch holds the routes of a whole request batch in four shared
// arenas (path nodes, path delivery hops, tree links, tree delivery links)
// plus per-path / per-tree / per-request offset spans into them.  Appending
// a route copies its data into the arenas; once the arenas have warmed up
// to the batch working-set size, appends allocate nothing -- which is what
// makes batch cache hits cheap compared to returning a fresh pointer-heavy
// MulticastRoute per request.  route_at(i) converts element i back to a
// MulticastRoute, and equals exactly what the scalar API would have
// produced for requests[i] (the batch/scalar equivalence property pinned
// by tests/test_route_batch.cpp).
//
// A RouteBatch is a value type: movable, copyable, no internal pointers
// (spans are index-based), so it can cross thread boundaries freely.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/multicast.hpp"

namespace mcnet::mcast {

class RouteBatch {
 public:
  /// One path worm of one batch element: spans into the node / delivery-hop
  /// arenas plus the channel class the worm is pinned to.
  struct PathSpan {
    std::uint32_t nodes_begin = 0;
    std::uint32_t nodes_count = 0;
    std::uint32_t deliveries_begin = 0;
    std::uint32_t deliveries_count = 0;
    std::uint8_t channel_class = 0;
  };

  /// One tree of one batch element: spans into the link / delivery-link
  /// arenas.  Link parent indices stay element-local (as in TreeRoute).
  struct TreeSpan {
    NodeId source = topo::kInvalidNode;
    std::uint32_t links_begin = 0;
    std::uint32_t links_count = 0;
    std::uint32_t deliveries_begin = 0;
    std::uint32_t deliveries_count = 0;
    std::uint8_t channel_class = 0;
  };

  /// One batch element: spans into the path / tree descriptor arrays.
  struct RequestSpan {
    NodeId source = topo::kInvalidNode;
    std::uint32_t paths_begin = 0;
    std::uint32_t paths_count = 0;
    std::uint32_t trees_begin = 0;
    std::uint32_t trees_count = 0;
  };

  /// Number of routes (batch elements) held.
  [[nodiscard]] std::size_t size() const { return requests_.size(); }
  [[nodiscard]] bool empty() const { return requests_.empty(); }

  /// Drop all elements but keep arena capacity (batch-loop reuse).
  void clear();

  /// Pre-size for `requests` elements; the arena hints are optional (path
  /// nodes / tree links expected across the whole batch).
  void reserve(std::size_t requests, std::size_t path_nodes_hint = 0,
               std::size_t tree_links_hint = 0);

  /// Copy one scalar route into the arenas; returns its element index.
  std::size_t append(const MulticastRoute& route);

  /// Copy element `index` of `other` into this batch (arena-to-arena, no
  /// per-route allocation once capacity is warm); returns the new index.
  std::size_t append_from(const RouteBatch& other, std::size_t index);

  /// Convert element `index` back to the pointer-heavy scalar form.
  [[nodiscard]] MulticastRoute route_at(std::size_t index) const;

  // -- Per-element metrics (no conversion needed) ---------------------------
  [[nodiscard]] NodeId source_at(std::size_t index) const {
    return requests_[index].source;
  }
  /// Channel traversals of element `index` (MulticastRoute::traffic()).
  [[nodiscard]] std::uint64_t traffic_at(std::size_t index) const;
  /// Deliveries of element `index` (MulticastRoute::num_deliveries()).
  [[nodiscard]] std::uint32_t deliveries_at(std::size_t index) const;
  /// Max hops to any delivery of element `index`.
  [[nodiscard]] std::uint32_t max_delivery_hops_at(std::size_t index) const;
  /// Sum of traffic_at over all elements.
  [[nodiscard]] std::uint64_t total_traffic() const;

  // -- Raw span access (bench / spec-conversion hot paths) ------------------
  [[nodiscard]] std::span<const PathSpan> paths_of(std::size_t index) const {
    const RequestSpan& r = requests_[index];
    return {paths_.data() + r.paths_begin, r.paths_count};
  }
  [[nodiscard]] std::span<const TreeSpan> trees_of(std::size_t index) const {
    const RequestSpan& r = requests_[index];
    return {trees_.data() + r.trees_begin, r.trees_count};
  }
  [[nodiscard]] std::span<const NodeId> path_nodes(const PathSpan& p) const {
    return {path_nodes_.data() + p.nodes_begin, p.nodes_count};
  }
  [[nodiscard]] std::span<const std::uint32_t> path_deliveries(const PathSpan& p) const {
    return {path_deliveries_.data() + p.deliveries_begin, p.deliveries_count};
  }
  [[nodiscard]] std::span<const TreeRoute::Link> tree_links(const TreeSpan& t) const {
    return {tree_links_.data() + t.links_begin, t.links_count};
  }
  [[nodiscard]] std::span<const std::uint32_t> tree_deliveries(const TreeSpan& t) const {
    return {tree_deliveries_.data() + t.deliveries_begin, t.deliveries_count};
  }

  /// Arena occupancy, for capacity planning and tests.
  [[nodiscard]] std::size_t arena_path_nodes() const { return path_nodes_.size(); }
  [[nodiscard]] std::size_t arena_tree_links() const { return tree_links_.size(); }

 private:
  std::vector<RequestSpan> requests_;
  std::vector<PathSpan> paths_;
  std::vector<TreeSpan> trees_;
  // Shared arenas.
  std::vector<NodeId> path_nodes_;
  std::vector<std::uint32_t> path_deliveries_;
  std::vector<TreeRoute::Link> tree_links_;
  std::vector<std::uint32_t> tree_deliveries_;
};

}  // namespace mcnet::mcast
