// Baseline "multicast" services that the paper compares against
// (Figures 7.1-7.5): multiple one-to-one messages, and delivery via a full
// broadcast tree in which only the destinations consume the message.
#pragma once

#include "cdg/channel_graph.hpp"
#include "core/multicast.hpp"
#include "topology/topology.hpp"

namespace mcnet::mcast {

/// One separate unicast message per destination, each routed by the
/// deterministic `unicast` function (X-first on meshes, e-cube on cubes).
/// Traffic is the sum of shortest-path distances.
[[nodiscard]] MulticastRoute multi_unicast_route(const topo::Topology& topology,
                                                 const cdg::RoutingFunction& unicast,
                                                 const MulticastRequest& request);

/// Broadcast implementation of multicast: a spanning broadcast tree (the
/// union of the deterministic unicast paths from the source to every node,
/// which is a tree because the routing is deterministic); the router
/// delivers to the local processor only at destination nodes.  Traffic is
/// always N - 1.
[[nodiscard]] MulticastRoute broadcast_route(const topo::Topology& topology,
                                             const cdg::RoutingFunction& unicast,
                                             const MulticastRequest& request);

}  // namespace mcnet::mcast
