// The deadlock-prone tree-based wormhole multicast schemes of Section 6.1,
// kept as named algorithms so the deadlock demonstrations (Figures 6.1-6.4)
// can be reproduced in the wormhole simulator:
//
//  * the nCUBE-2-style binomial broadcast tree on a hypercube (a node
//    reached across dimension j forwards across all dimensions > j);
//  * the e-cube multicast tree on a hypercube (union of e-cube unicast
//    paths, a tree because e-cube is deterministic);
//  * the single-channel X-first multicast tree on a mesh is
//    xfirst_mt_route (Fig. 6.3) from core/xfirst_mt.hpp.
//
// Under the nCUBE-2 lock-step branch semantics these trees hold channels
// while waiting for others, so two concurrent multicasts can deadlock.
#pragma once

#include "core/multicast.hpp"
#include "topology/hypercube.hpp"

namespace mcnet::mcast {

/// Binomial broadcast tree from `source` delivering to the request's
/// destinations (the nCUBE-2 broadcast of Section 6.1, Fig. 6.1).
[[nodiscard]] MulticastRoute binomial_broadcast_route(const topo::Hypercube& cube,
                                                      const MulticastRequest& request);

/// Multicast tree formed by the union of e-cube unicast paths to each
/// destination (lowest differing dimension first).
[[nodiscard]] MulticastRoute ecube_mt_route(const topo::Hypercube& cube,
                                            const MulticastRequest& request);

}  // namespace mcnet::mcast
