// The LEN greedy multicast-tree heuristic for hypercubes
// [Lan, Esfahanian & Ni, "Multicast in hypercube multiprocessors",
// JPDC 1990], the comparison baseline of Fig. 7.4.
//
// At each forward node u with destination list D, repeatedly pick the
// dimension j covering the most remaining destinations (i.e. maximising
// |{d in D : bit j of d xor u set}|, lowest j on ties), forward the covered
// sublist to the neighbour across j, and remove it from D.  Every
// destination moves strictly closer at every hop, so all deliveries use
// shortest paths.
#pragma once

#include "core/multicast.hpp"
#include "topology/hypercube.hpp"

namespace mcnet::mcast {

[[nodiscard]] MulticastRoute len_tree_route(const topo::Hypercube& cube,
                                            const MulticastRequest& request);

}  // namespace mcnet::mcast
