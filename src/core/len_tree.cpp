#include "core/len_tree.hpp"

#include <stdexcept>

namespace mcnet::mcast {

namespace {

using topo::NodeId;

void forward(const topo::Hypercube& cube, TreeRoute& tree, NodeId u, std::int32_t link_into_u,
             std::vector<NodeId> dests) {
  // Local delivery.
  std::erase_if(dests, [&](NodeId d) {
    if (d != u) return false;
    if (link_into_u < 0) throw std::logic_error("source cannot be a destination");
    tree.delivery_links.push_back(static_cast<std::uint32_t>(link_into_u));
    return true;
  });

  const std::uint32_t n = cube.dimensions();
  while (!dests.empty()) {
    // Dimension covering the most remaining destinations.
    std::uint32_t best_dim = 0;
    std::uint32_t best_count = 0;
    for (std::uint32_t j = 0; j < n; ++j) {
      std::uint32_t count = 0;
      for (const NodeId d : dests) {
        if (((d ^ u) >> j) & 1u) ++count;
      }
      if (count > best_count) {
        best_count = count;
        best_dim = j;
      }
    }
    std::vector<NodeId> covered, rest;
    for (const NodeId d : dests) {
      (((d ^ u) >> best_dim) & 1u ? covered : rest).push_back(d);
    }
    const NodeId next = cube.across(u, best_dim);
    const auto link = static_cast<std::int32_t>(tree.add_link(u, next, link_into_u));
    forward(cube, tree, next, link, std::move(covered));
    dests = std::move(rest);
  }
}

}  // namespace

MulticastRoute len_tree_route(const topo::Hypercube& cube, const MulticastRequest& request) {
  TreeRoute tree;
  tree.source = request.source;
  forward(cube, tree, request.source, -1, request.destinations);
  MulticastRoute route;
  route.source = request.source;
  route.trees.push_back(std::move(tree));
  return route;
}

}  // namespace mcnet::mcast
