#include "core/route_factory.hpp"

#include <stdexcept>

#include "cdg/analyzers.hpp"
#include "core/baselines.hpp"
#include "core/dc_xfirst_tree.hpp"
#include "core/divided_greedy_mt.hpp"
#include "core/dual_path.hpp"
#include "core/fixed_path.hpp"
#include "core/greedy_st.hpp"
#include "core/len_tree.hpp"
#include "core/multi_path.hpp"
#include "core/naive_tree.hpp"
#include "core/sorted_mp.hpp"
#include "core/xfirst_mt.hpp"

namespace mcnet::mcast {

std::string_view algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kMultiUnicast: return "multi-unicast";
    case Algorithm::kBroadcast: return "broadcast";
    case Algorithm::kSortedMP: return "sorted-MP";
    case Algorithm::kSortedMC: return "sorted-MC";
    case Algorithm::kGreedyST: return "greedy-ST";
    case Algorithm::kXFirstMT: return "X-first-MT";
    case Algorithm::kDividedGreedyMT: return "divided-greedy-MT";
    case Algorithm::kLenTree: return "LEN-tree";
    case Algorithm::kDualPath: return "dual-path";
    case Algorithm::kMultiPath: return "multi-path";
    case Algorithm::kFixedPath: return "fixed-path";
    case Algorithm::kDCXFirstTree: return "dc-X-first-tree";
    case Algorithm::kEcubeMT: return "ecube-MT";
    case Algorithm::kBinomialBroadcast: return "binomial-broadcast";
  }
  return "unknown";
}

Algorithm parse_algorithm(std::string_view name) {
  for (int a = 0; a <= static_cast<int>(Algorithm::kBinomialBroadcast); ++a) {
    if (algorithm_name(static_cast<Algorithm>(a)) == name) return static_cast<Algorithm>(a);
  }
  throw std::invalid_argument("unknown algorithm: " + std::string(name));
}

MeshRoutingSuite::MeshRoutingSuite(const topo::Mesh2D& mesh)
    : mesh_(&mesh), labeling_(mesh), unicast_(cdg::xfirst_routing(mesh)) {
  if (mesh.num_nodes() == 1 ||
      (mesh.width() % 2 == 0 && mesh.height() >= 2) ||
      (mesh.height() % 2 == 0 && mesh.width() >= 2)) {
    cycle_.emplace(ham::mesh_comb_cycle(mesh));
  }
}

MulticastRoute MeshRoutingSuite::route(Algorithm a, const MulticastRequest& request,
                                       RouteScratch& scratch) const {
  switch (a) {
    case Algorithm::kDualPath:
      return dual_path_route(*mesh_, labeling_, request, scratch.split);
    case Algorithm::kFixedPath:
      return fixed_path_route(*mesh_, labeling_, request, scratch.split);
    default:
      return route(a, request);
  }
}

MulticastRoute MeshRoutingSuite::route(Algorithm a, const MulticastRequest& request) const {
  switch (a) {
    case Algorithm::kMultiUnicast:
      return multi_unicast_route(*mesh_, unicast_, request);
    case Algorithm::kBroadcast:
      return broadcast_route(*mesh_, unicast_, request);
    case Algorithm::kSortedMP:
    case Algorithm::kSortedMC: {
      if (!cycle_) throw std::logic_error("mesh has no Hamiltonian cycle (both dims odd)");
      return a == Algorithm::kSortedMP ? sorted_mp_route(*mesh_, *cycle_, request)
                                       : sorted_mc_route(*mesh_, *cycle_, request);
    }
    case Algorithm::kGreedyST:
      return greedy_st_route(
          *mesh_, unicast_,
          [this](topo::NodeId s, topo::NodeId t, topo::NodeId w) {
            return mesh_->closest_on_shortest_paths(s, t, w);
          },
          request);
    case Algorithm::kXFirstMT:
      return xfirst_mt_route(*mesh_, request);
    case Algorithm::kDividedGreedyMT:
      return divided_greedy_mt_route(*mesh_, request);
    case Algorithm::kDualPath:
      return dual_path_route(*mesh_, labeling_, request);
    case Algorithm::kMultiPath:
      return multi_path_route(*mesh_, labeling_, request);
    case Algorithm::kFixedPath:
      return fixed_path_route(*mesh_, labeling_, request);
    case Algorithm::kDCXFirstTree:
      return dc_xfirst_tree_route(*mesh_, request);
    default:
      throw std::invalid_argument("algorithm not applicable to a 2-D mesh");
  }
}

CubeRoutingSuite::CubeRoutingSuite(const topo::Hypercube& cube)
    : cube_(&cube),
      labeling_(cube),
      unicast_(cdg::ecube_routing(cube)),
      cycle_(ham::hypercube_gray_cycle(cube)) {}

MulticastRoute CubeRoutingSuite::route(Algorithm a, const MulticastRequest& request,
                                       RouteScratch& scratch) const {
  switch (a) {
    case Algorithm::kDualPath:
      return dual_path_route(*cube_, labeling_, request, scratch.split);
    case Algorithm::kFixedPath:
      return fixed_path_route(*cube_, labeling_, request, scratch.split);
    default:
      return route(a, request);
  }
}

MulticastRoute CubeRoutingSuite::route(Algorithm a, const MulticastRequest& request) const {
  switch (a) {
    case Algorithm::kMultiUnicast:
      return multi_unicast_route(*cube_, unicast_, request);
    case Algorithm::kBroadcast:
      return broadcast_route(*cube_, unicast_, request);
    case Algorithm::kSortedMP:
      return sorted_mp_route(*cube_, cycle_, request);
    case Algorithm::kSortedMC:
      return sorted_mc_route(*cube_, cycle_, request);
    case Algorithm::kGreedyST:
      return greedy_st_route(
          *cube_, unicast_,
          [this](topo::NodeId s, topo::NodeId t, topo::NodeId w) {
            return cube_->closest_on_shortest_paths(s, t, w);
          },
          request);
    case Algorithm::kLenTree:
      return len_tree_route(*cube_, request);
    case Algorithm::kDualPath:
      return dual_path_route(*cube_, labeling_, request);
    case Algorithm::kMultiPath:
      return multi_path_route(*cube_, labeling_, request);
    case Algorithm::kFixedPath:
      return fixed_path_route(*cube_, labeling_, request);
    case Algorithm::kEcubeMT:
      return ecube_mt_route(*cube_, request);
    case Algorithm::kBinomialBroadcast:
      return binomial_broadcast_route(*cube_, request);
    default:
      throw std::invalid_argument("algorithm not applicable to a hypercube");
  }
}

LabeledRoutingSuite::LabeledRoutingSuite(const topo::Topology& topology,
                                         std::unique_ptr<ham::Labeling> labeling)
    : topology_(&topology), labeling_(std::move(labeling)) {
  if (!labeling_) throw std::invalid_argument("labeling must not be null");
  // R itself is a deterministic unicast router on any labeled topology.
  const LabelRouter router(*topology_, *labeling_);
  unicast_ = [router](topo::NodeId cur, topo::NodeId dst) {
    return cur == dst ? topo::kInvalidNode : router.next_hop(cur, dst);
  };
}

MulticastRoute LabeledRoutingSuite::route(Algorithm a, const MulticastRequest& request,
                                          RouteScratch& scratch) const {
  switch (a) {
    case Algorithm::kDualPath:
      return dual_path_route(*topology_, *labeling_, request, scratch.split);
    case Algorithm::kFixedPath:
      return fixed_path_route(*topology_, *labeling_, request, scratch.split);
    default:
      return route(a, request);
  }
}

MulticastRoute LabeledRoutingSuite::route(Algorithm a, const MulticastRequest& request) const {
  switch (a) {
    case Algorithm::kMultiUnicast:
      return multi_unicast_route(*topology_, unicast_, request);
    case Algorithm::kBroadcast:
      return broadcast_route(*topology_, unicast_, request);
    case Algorithm::kDualPath:
      return dual_path_route(*topology_, *labeling_, request);
    case Algorithm::kMultiPath:
      return multi_path_route(*topology_, *labeling_, request);
    case Algorithm::kFixedPath:
      return fixed_path_route(*topology_, *labeling_, request);
    default:
      throw std::invalid_argument(
          "algorithm not available through the generic labeled suite");
  }
}

}  // namespace mcnet::mcast
