// Multi-path deadlock-free multicast routing (Section 6.2.2, Figures 6.14
// and 6.15 for the 2-D mesh; Fig. 6.20 for the hypercube).
//
// The dual-path split is refined further: on a mesh, D_H is divided by the
// x-coordinates of the two higher-labeled neighbours of the source (each
// sublist addressed through its neighbour); symmetrically for D_L, giving
// up to four path worms.  On an n-cube, the higher-labeled neighbours
// v_1 < v_2 < ... partition D_H into label ranges
// [l(v_i), l(v_{i+1})), giving up to n worms per side.  All worms stay in
// one acyclic subnetwork, so the scheme is deadlock-free (Assertion 3 /
// Corollary 6.2).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/dual_path.hpp"
#include "core/routing_function.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh2d.hpp"

namespace mcnet::mcast {

/// One path worm of the multi-path split, before routing: the channel class
/// it travels in, an optional forced first hop (the source neighbour that
/// owns the bucket), and the label-ordered targets it serves.  Exposed so
/// the relation-based analyzer can explore every legal path of each worm
/// instead of the one deterministic route R picks.
struct MultiPathWorm {
  std::uint8_t channel_class = 0;
  std::optional<topo::NodeId> first_hop;
  std::vector<topo::NodeId> targets;
};

/// Splits a request into multi-path worms on the mesh (Fig. 6.14: each side
/// of the dual-path split divided by the x-coordinates of the source's two
/// same-side neighbours).
[[nodiscard]] std::vector<MultiPathWorm> multi_path_prepare(
    const topo::Mesh2D& mesh, const ham::MeshBoustrophedonLabeling& labeling,
    const MulticastRequest& request);

/// Splits a request into multi-path worms on any labeled topology
/// (Fig. 6.20: each side bucketed by the label ranges of the source's
/// same-side neighbours).
[[nodiscard]] std::vector<MultiPathWorm> multi_path_prepare(const topo::Topology& topology,
                                                            const ham::Labeling& labeling,
                                                            const MulticastRequest& request);

[[nodiscard]] MulticastRoute multi_path_route(const topo::Mesh2D& mesh,
                                              const ham::MeshBoustrophedonLabeling& labeling,
                                              const MulticastRequest& request);

[[nodiscard]] MulticastRoute multi_path_route(const topo::Hypercube& cube,
                                              const ham::HypercubeGrayLabeling& labeling,
                                              const MulticastRequest& request);

/// Generic multi-path for any topology with a Hamiltonian labeling (3-D
/// meshes, k-ary n-cubes, ...): each side of the dual-path split is
/// bucketed by the label ranges of the source's same-side neighbours, as in
/// the hypercube variant.  Deadlock-free by the same subnetwork argument.
[[nodiscard]] MulticastRoute multi_path_route(const topo::Topology& topology,
                                              const ham::Labeling& labeling,
                                              const MulticastRequest& request);

}  // namespace mcnet::mcast
