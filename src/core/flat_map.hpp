// FlatMap: a sorted-vector associative container for the control-plane
// state that used to live in std::map nodes (ROADMAP item 2: "the
// per-group std::map state wants arena/flat storage at that size").
//
// One contiguous allocation per map instead of one node per entry: with
// thousands of concurrent groups, each holding per-member sender windows,
// detector rows, and receiver streams, the node-based maps dominated both
// memory traffic and cache misses.  Keys stay sorted, so lookups are
// binary searches over a dense array and iteration is a linear scan.
//
// Semantics intentionally differ from std::map in one way that callers
// must respect: insertion and erasure invalidate ALL iterators and
// references (vector reallocation / element shifting).  Code that calls
// out to user callbacks re-finds its entries afterwards instead of
// holding references across the call (see group_service.cpp for the
// mutate-then-notify discipline this forces).
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace mcnet::util {

template <typename Key, typename Value, typename Compare = std::less<Key>>
class FlatMap {
 public:
  using value_type = std::pair<Key, Value>;
  using storage_type = std::vector<value_type>;
  using iterator = typename storage_type::iterator;
  using const_iterator = typename storage_type::const_iterator;

  FlatMap() = default;

  [[nodiscard]] bool empty() const { return data_.empty(); }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  void clear() { data_.clear(); }
  void reserve(std::size_t n) { data_.reserve(n); }

  [[nodiscard]] iterator begin() { return data_.begin(); }
  [[nodiscard]] iterator end() { return data_.end(); }
  [[nodiscard]] const_iterator begin() const { return data_.begin(); }
  [[nodiscard]] const_iterator end() const { return data_.end(); }

  [[nodiscard]] iterator lower_bound(const Key& k) {
    return std::lower_bound(data_.begin(), data_.end(), k, KeyLess{});
  }
  [[nodiscard]] const_iterator lower_bound(const Key& k) const {
    return std::lower_bound(data_.begin(), data_.end(), k, KeyLess{});
  }

  [[nodiscard]] iterator find(const Key& k) {
    const iterator it = lower_bound(k);
    return (it != data_.end() && equal(it->first, k)) ? it : data_.end();
  }
  [[nodiscard]] const_iterator find(const Key& k) const {
    const const_iterator it = lower_bound(k);
    return (it != data_.end() && equal(it->first, k)) ? it : data_.end();
  }

  [[nodiscard]] bool contains(const Key& k) const { return find(k) != data_.end(); }

  /// Insert a default-constructed value if absent; returns the mapped
  /// value.  Invalidates iterators/references on insertion.
  Value& operator[](const Key& k) { return try_emplace(k).first->second; }

  /// std::map::try_emplace semantics: no-op when the key exists.
  template <typename... Args>
  std::pair<iterator, bool> try_emplace(const Key& k, Args&&... args) {
    iterator it = lower_bound(k);
    if (it != data_.end() && equal(it->first, k)) return {it, false};
    it = data_.emplace(it, std::piecewise_construct, std::forward_as_tuple(k),
                       std::forward_as_tuple(std::forward<Args>(args)...));
    return {it, true};
  }

  /// Assign (inserting if absent); returns {iterator, inserted}.
  std::pair<iterator, bool> insert_or_assign(const Key& k, Value v) {
    iterator it = lower_bound(k);
    if (it != data_.end() && equal(it->first, k)) {
      it->second = std::move(v);
      return {it, false};
    }
    it = data_.emplace(it, k, std::move(v));
    return {it, true};
  }

  iterator erase(iterator it) { return data_.erase(it); }

  std::size_t erase(const Key& k) {
    const iterator it = find(k);
    if (it == data_.end()) return 0;
    data_.erase(it);
    return 1;
  }

  /// Remove every entry failing `keep(key, value)` in one pass.
  template <typename Pred>
  void retain(Pred keep) {
    data_.erase(std::remove_if(data_.begin(), data_.end(),
                               [&keep](const value_type& e) {
                                 return !keep(e.first, e.second);
                               }),
                data_.end());
  }

 private:
  struct KeyLess {
    Compare cmp{};
    bool operator()(const value_type& e, const Key& k) const { return cmp(e.first, k); }
  };
  [[nodiscard]] static bool equal(const Key& a, const Key& b) {
    Compare cmp{};
    return !cmp(a, b) && !cmp(b, a);
  }

  storage_type data_;
};

}  // namespace mcnet::util
