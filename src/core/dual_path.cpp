#include "core/dual_path.hpp"

#include <algorithm>

namespace mcnet::mcast {

void dual_path_prepare(const ham::Labeling& labeling, const MulticastRequest& request,
                       DualPathSplit& out) {
  out.high.clear();
  out.low.clear();
  const std::uint32_t ls = labeling.label(request.source);
  for (const topo::NodeId d : request.destinations) {
    (labeling.label(d) > ls ? out.high : out.low).push_back(d);
  }
  std::sort(out.high.begin(), out.high.end(), [&](topo::NodeId a, topo::NodeId b) {
    return labeling.label(a) < labeling.label(b);
  });
  std::sort(out.low.begin(), out.low.end(), [&](topo::NodeId a, topo::NodeId b) {
    return labeling.label(a) > labeling.label(b);
  });
}

DualPathSplit dual_path_prepare(const ham::Labeling& labeling,
                                const MulticastRequest& request) {
  DualPathSplit split;
  dual_path_prepare(labeling, request, split);
  return split;
}

MulticastRoute dual_path_route(const topo::Topology& topology, const ham::Labeling& labeling,
                               const MulticastRequest& request, DualPathSplit& scratch) {
  const LabelRouter router(topology, labeling);
  dual_path_prepare(labeling, request, scratch);
  MulticastRoute route;
  route.source = request.source;
  if (!scratch.high.empty()) {
    route.paths.push_back(
        router.route_path(request.source, scratch.high, std::nullopt, kHighChannelClass));
  }
  if (!scratch.low.empty()) {
    route.paths.push_back(
        router.route_path(request.source, scratch.low, std::nullopt, kLowChannelClass));
  }
  return route;
}

MulticastRoute dual_path_route(const topo::Topology& topology, const ham::Labeling& labeling,
                               const MulticastRequest& request) {
  DualPathSplit split;
  return dual_path_route(topology, labeling, request, split);
}

}  // namespace mcnet::mcast
