#include "core/dual_path.hpp"

#include <algorithm>

namespace mcnet::mcast {

DualPathSplit dual_path_prepare(const ham::Labeling& labeling,
                                const MulticastRequest& request) {
  DualPathSplit split;
  const std::uint32_t ls = labeling.label(request.source);
  for (const topo::NodeId d : request.destinations) {
    (labeling.label(d) > ls ? split.high : split.low).push_back(d);
  }
  std::sort(split.high.begin(), split.high.end(), [&](topo::NodeId a, topo::NodeId b) {
    return labeling.label(a) < labeling.label(b);
  });
  std::sort(split.low.begin(), split.low.end(), [&](topo::NodeId a, topo::NodeId b) {
    return labeling.label(a) > labeling.label(b);
  });
  return split;
}

MulticastRoute dual_path_route(const topo::Topology& topology, const ham::Labeling& labeling,
                               const MulticastRequest& request) {
  const LabelRouter router(topology, labeling);
  const DualPathSplit split = dual_path_prepare(labeling, request);
  MulticastRoute route;
  route.source = request.source;
  if (!split.high.empty()) {
    route.paths.push_back(
        router.route_path(request.source, split.high, std::nullopt, kHighChannelClass));
  }
  if (!split.low.empty()) {
    route.paths.push_back(
        router.route_path(request.source, split.low, std::nullopt, kLowChannelClass));
  }
  return route;
}

}  // namespace mcnet::mcast
