// The X-first multicast-tree algorithm of Section 5.3 (Fig. 5.5): the
// natural multicast extension of X-first (XY) unicast routing.  At every
// forward node the destination list splits into +X / -X (x differs) and
// +Y / -Y (x matches) sublists, each forwarded one hop in its direction.
// All destinations are reached along X-first shortest paths.
//
// This is also exactly the single-channel multicast tree of Fig. 6.3 that
// Section 6.1 proves deadlock-prone under wormhole switching; the naive
// tree demonstrations reuse it.
#pragma once

#include "core/multicast.hpp"
#include "topology/mesh2d.hpp"

namespace mcnet::mcast {

[[nodiscard]] MulticastRoute xfirst_mt_route(const topo::Mesh2D& mesh,
                                             const MulticastRequest& request);

}  // namespace mcnet::mcast
