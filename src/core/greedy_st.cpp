#include "core/greedy_st.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mcnet::mcast {

namespace {

using topo::NodeId;

struct StContext {
  const topo::Topology& topology;
  const cdg::RoutingFunction& unicast;
  const ClosestOnPathsFn& closest;
  std::unordered_set<NodeId> pending;  // destinations not yet delivered
  TreeRoute tree;
};

// Relay the message from `from` to `to` along the deterministic shortest
// path, appending links; returns the index of the link arriving at `to`.
std::int32_t relay(StContext& ctx, NodeId from, NodeId to, std::int32_t parent_link) {
  NodeId cur = from;
  std::int32_t link = parent_link;
  while (cur != to) {
    const NodeId next = ctx.unicast(cur, to);
    if (next == topo::kInvalidNode) throw std::logic_error("greedy ST relay stuck");
    link = static_cast<std::int32_t>(ctx.tree.add_link(cur, next, link));
    cur = next;
  }
  return link;
}

// The greedy tree built at a replicate node: edges are "virtual" node
// pairs whose realisations are shortest-path bundles.
struct VirtualTree {
  std::vector<std::pair<NodeId, NodeId>> edges;
};

// Steps 3-4 of Fig. 5.4: grow the tree rooted at `u` over `list` in order.
VirtualTree build_virtual_tree(const StContext& ctx, NodeId u,
                               const std::vector<NodeId>& list) {
  VirtualTree t;
  t.edges.emplace_back(u, list[0]);
  for (std::size_t i = 1; i < list.size(); ++i) {
    const NodeId ui = list[i];
    NodeId best_v = topo::kInvalidNode;
    std::uint32_t best_d = 0;
    std::size_t best_edge = 0;
    for (std::size_t e = 0; e < t.edges.size(); ++e) {
      const auto [s, tt] = t.edges[e];
      const NodeId v = ctx.closest(s, tt, ui);
      const std::uint32_t d = ctx.topology.distance(ui, v);
      if (best_v == topo::kInvalidNode || d < best_d) {
        best_v = v;
        best_d = d;
        best_edge = e;
      }
    }
    const auto [s, tt] = t.edges[best_edge];
    if (best_v != s && best_v != tt) {
      // Step 4(c): split the edge at the interior attachment point.
      t.edges[best_edge] = {s, best_v};
      t.edges.emplace_back(best_v, tt);
    }
    if (ui != best_v) t.edges.emplace_back(best_v, ui);  // Step 4(d)
  }
  return t;
}

void replicate(StContext& ctx, NodeId u, std::int32_t link_into_u, std::vector<NodeId> list);

// Step 5-6 of Fig. 5.4: partition `list` by the subtree of each son of `u`
// in the virtual tree and forward a copy toward each son.
void fan_out(StContext& ctx, NodeId u, std::int32_t link_into_u, const VirtualTree& vt,
             const std::vector<NodeId>& list) {
  // Adjacency of the virtual tree.
  std::unordered_map<NodeId, std::vector<NodeId>> adj;
  for (const auto& [a, b] : vt.edges) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  }
  // Subtree membership: component containing each son after removing u.
  for (const NodeId son : adj[u]) {
    std::unordered_set<NodeId> subtree;
    std::vector<NodeId> stack = {son};
    subtree.insert(son);
    while (!stack.empty()) {
      const NodeId x = stack.back();
      stack.pop_back();
      for (const NodeId y : adj[x]) {
        if (y != u && subtree.insert(y).second) stack.push_back(y);
      }
    }
    std::vector<NodeId> sublist;
    for (const NodeId d : list) {
      if (subtree.contains(d)) sublist.push_back(d);
    }
    const std::int32_t link = relay(ctx, u, son, link_into_u);
    replicate(ctx, son, link, std::move(sublist));
  }
}

void replicate(StContext& ctx, NodeId u, std::int32_t link_into_u, std::vector<NodeId> list) {
  // Deliver locally if this replicate node is itself a destination.
  if (const auto it = ctx.pending.find(u); it != ctx.pending.end()) {
    ctx.pending.erase(it);
    if (link_into_u < 0) throw std::logic_error("source cannot be a destination");
    ctx.tree.delivery_links.push_back(static_cast<std::uint32_t>(link_into_u));
    std::erase(list, u);
  }
  if (list.empty()) return;
  const VirtualTree vt = build_virtual_tree(ctx, u, list);
  fan_out(ctx, u, link_into_u, vt, list);
}

}  // namespace

MulticastRoute greedy_st_route(const topo::Topology& topology,
                               const cdg::RoutingFunction& unicast,
                               const ClosestOnPathsFn& closest,
                               const MulticastRequest& request) {
  // Message preparation (Fig. 5.3): ascending distance from the source
  // (stable for ties, matching "arbitrary order" for equal keys).
  std::vector<NodeId> sorted = request.destinations;
  std::stable_sort(sorted.begin(), sorted.end(), [&](NodeId a, NodeId b) {
    return topology.distance(request.source, a) < topology.distance(request.source, b);
  });

  StContext ctx{topology, unicast, closest,
                std::unordered_set<NodeId>(sorted.begin(), sorted.end()),
                TreeRoute{}};
  ctx.tree.source = request.source;
  replicate(ctx, request.source, -1, std::move(sorted));

  MulticastRoute route;
  route.source = request.source;
  route.trees.push_back(std::move(ctx.tree));
  return route;
}

}  // namespace mcnet::mcast
