// Uniform access to every multicast routing algorithm in the library, for
// benches, examples and the wormhole simulator.  A suite owns the labeling
// and Hamiltonian-cycle state an algorithm family needs, so callers only
// keep the topology alive.
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "cdg/channel_graph.hpp"
#include "core/dual_path.hpp"
#include "core/multicast.hpp"
#include "topology/hamiltonian.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh2d.hpp"

namespace mcnet::mcast {

enum class Algorithm {
  kMultiUnicast,    // baseline: one unicast per destination
  kBroadcast,       // baseline: full broadcast tree, deliver at destinations
  kSortedMP,        // Ch. 5 multicast path
  kSortedMC,        // Ch. 5 multicast cycle
  kGreedyST,        // Ch. 5 Steiner-tree heuristic
  kXFirstMT,        // Ch. 5 X-first multicast tree (mesh; deadlock-prone worm tree)
  kDividedGreedyMT, // Ch. 5 divided greedy multicast tree (mesh)
  kLenTree,         // LEN greedy tree (hypercube baseline)
  kDualPath,        // Ch. 6 dual-path (deadlock-free)
  kMultiPath,       // Ch. 6 multi-path (deadlock-free)
  kFixedPath,       // Ch. 6 fixed-path (deadlock-free)
  kDCXFirstTree,    // Ch. 6 double-channel X-first tree (mesh, deadlock-free)
  kEcubeMT,         // naive e-cube multicast tree (hypercube, deadlock-prone)
  kBinomialBroadcast,  // nCUBE-2 broadcast tree (hypercube, deadlock-prone)
};

[[nodiscard]] std::string_view algorithm_name(Algorithm a);

/// Inverse of algorithm_name(); throws std::invalid_argument on unknown
/// names (shared by the CLI tools).
[[nodiscard]] Algorithm parse_algorithm(std::string_view name);

/// Per-batch routing workspace: scratch buffers the suites reuse across the
/// requests of one Router::route_many call instead of re-allocating per
/// request (the dual-/fixed-path destination split today; more as further
/// algorithms grow batch variants).  One instance per batch loop; not
/// thread-safe.
struct RouteScratch {
  DualPathSplit split;
};

/// All algorithms instantiated for a 2-D mesh.
class MeshRoutingSuite {
 public:
  explicit MeshRoutingSuite(const topo::Mesh2D& mesh);

  [[nodiscard]] MulticastRoute route(Algorithm a, const MulticastRequest& request) const;
  /// Batch-loop variant: identical routes, scratch reused across requests.
  [[nodiscard]] MulticastRoute route(Algorithm a, const MulticastRequest& request,
                                     RouteScratch& scratch) const;

  [[nodiscard]] const topo::Mesh2D& mesh() const { return *mesh_; }
  [[nodiscard]] const ham::MeshBoustrophedonLabeling& labeling() const { return labeling_; }
  [[nodiscard]] const cdg::RoutingFunction& unicast() const { return unicast_; }
  /// Present when the mesh has an even dimension (fact F1).
  [[nodiscard]] const std::optional<ham::HamiltonCycle>& cycle() const { return cycle_; }

 private:
  const topo::Mesh2D* mesh_;
  ham::MeshBoustrophedonLabeling labeling_;
  cdg::RoutingFunction unicast_;
  std::optional<ham::HamiltonCycle> cycle_;
};

/// All algorithms instantiated for a hypercube.
class CubeRoutingSuite {
 public:
  explicit CubeRoutingSuite(const topo::Hypercube& cube);

  [[nodiscard]] MulticastRoute route(Algorithm a, const MulticastRequest& request) const;
  /// Batch-loop variant: identical routes, scratch reused across requests.
  [[nodiscard]] MulticastRoute route(Algorithm a, const MulticastRequest& request,
                                     RouteScratch& scratch) const;

  [[nodiscard]] const topo::Hypercube& cube() const { return *cube_; }
  [[nodiscard]] const ham::HypercubeGrayLabeling& labeling() const { return labeling_; }
  [[nodiscard]] const cdg::RoutingFunction& unicast() const { return unicast_; }
  [[nodiscard]] const ham::HamiltonCycle& cycle() const { return cycle_; }

 private:
  const topo::Hypercube* cube_;
  ham::HypercubeGrayLabeling labeling_;
  cdg::RoutingFunction unicast_;
  ham::HamiltonCycle cycle_;
};

/// Generic suite over *any* topology equipped with a Hamiltonian labeling
/// (3-D meshes, k-ary n-cubes, ...): supports the path-based deadlock-free
/// algorithms plus the unicast/broadcast baselines, with the label routing
/// function R serving as the deterministic unicast router.
class LabeledRoutingSuite {
 public:
  LabeledRoutingSuite(const topo::Topology& topology,
                      std::unique_ptr<ham::Labeling> labeling);

  [[nodiscard]] MulticastRoute route(Algorithm a, const MulticastRequest& request) const;
  /// Batch-loop variant: identical routes, scratch reused across requests.
  [[nodiscard]] MulticastRoute route(Algorithm a, const MulticastRequest& request,
                                     RouteScratch& scratch) const;

  [[nodiscard]] const topo::Topology& topology() const { return *topology_; }
  [[nodiscard]] const ham::Labeling& labeling() const { return *labeling_; }

 private:
  const topo::Topology* topology_;
  std::unique_ptr<ham::Labeling> labeling_;
  cdg::RoutingFunction unicast_;
};

}  // namespace mcnet::mcast
