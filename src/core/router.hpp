// Polymorphic routing layer: one `Router` seam shared by the multicast
// service, the dynamic wormhole harness, the figure benches and the CLI
// tools, instead of each consumer re-wiring suite + algorithm + worm-spec
// conversion through its own std::function glue.
//
// A Router is bound to one topology, one algorithm and one channel-copy
// count; it produces routes and their simulator-facing worm specs.
// Implementations are immutable after construction and safe to share
// across threads, so parallel experiment sweeps can route through a single
// instance (see CachingRouter in core/route_cache.hpp for the memoizing
// decorator that makes repeated destination sets a cache hit).
#pragma once

#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/route_batch.hpp"
#include "core/route_factory.hpp"
#include "wormhole/worm.hpp"

namespace mcnet::mcast {

class Router {
 public:
  virtual ~Router() = default;

  /// Route one multicast request.  Implementations normalise the request
  /// first (see MulticastRequest::normalized): duplicate destinations are
  /// deduped, and a source inside its own destination set throws
  /// std::invalid_argument instead of producing a degenerate worm.
  [[nodiscard]] virtual MulticastRoute route(const MulticastRequest& request) const = 0;

  /// Route a whole batch of requests into one arena-backed RouteBatch.
  /// Element i of the result converts (route_at) to exactly what
  /// route(requests[i]) returns -- the batch/scalar equivalence every
  /// override must preserve.  The base implementation is the
  /// correct-by-construction scalar loop; decorators override it where
  /// batch state amortises: CachingRouter groups lookups per shard (one
  /// lock acquisition per shard per batch, intra-batch dedup of identical
  /// normalized requests), FaultAwareRouter checks the fault epoch once,
  /// and the suite adapters hoist normalization and labeling scratch into
  /// per-batch workspaces.  Throws whatever route() would throw on the
  /// first invalid request encountered (order may differ from the scalar
  /// loop across an invalid batch).
  [[nodiscard]] virtual RouteBatch route_many(
      std::span<const MulticastRequest> requests) const;

  /// Convert a route into worm specs, applying the topology's channel-copy
  /// pinning policy with the copy count the router was built with.
  [[nodiscard]] virtual std::vector<worm::WormSpec> specs(const MulticastRoute& route) const = 0;

  /// Worm specs for one batch element (route_at(index) + specs()).  Named
  /// distinctly so derived-class `specs` overrides don't hide it.
  [[nodiscard]] std::vector<worm::WormSpec> batch_specs(const RouteBatch& batch,
                                                        std::size_t index) const {
    return specs(batch.route_at(index));
  }

  /// Algorithm name (stable, matches algorithm_name()).
  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual Algorithm algorithm() const = 0;
  /// True when the bound algorithm is deadlock-free under wormhole
  /// switching (Chapter 6 path/tree algorithms and multi-unicast).
  [[nodiscard]] virtual bool deadlock_free() const = 0;
  [[nodiscard]] virtual const topo::Topology& topology() const = 0;
  [[nodiscard]] virtual std::uint8_t channel_copies() const = 0;

  /// route() + specs() in one call: the traffic-generator hot path.
  [[nodiscard]] std::vector<worm::WormSpec> build(
      topo::NodeId source, const std::vector<topo::NodeId>& destinations) const {
    return specs(route(MulticastRequest{source, destinations}));
  }
};

/// True for the algorithms whose worm subnetworks are provably acyclic
/// (dual-/multi-/fixed-path, the double-channel X-first tree) and for
/// multi-unicast over the deterministic deadlock-free unicast routers.
[[nodiscard]] bool algorithm_deadlock_free(Algorithm a);

/// Algorithms `make_router` accepts for this topology (mirrors what the
/// underlying suite can route; sorted-MP/MC on an odd-by-odd mesh still
/// throw at route() time, exactly as the suite does).
[[nodiscard]] std::vector<Algorithm> supported_algorithms(const topo::Topology& topology);

/// Build a router for any supported topology (2-D mesh, hypercube, 3-D
/// mesh, k-ary n-cube).  Throws std::invalid_argument when the topology
/// kind is unknown or the algorithm is not applicable to it.
[[nodiscard]] std::unique_ptr<Router> make_router(const topo::Topology& topology,
                                                  Algorithm algorithm,
                                                  std::uint8_t copies = 1);

/// Shared adapter state for the suite-backed routers below.
class SuiteRouterBase : public Router {
 public:
  [[nodiscard]] std::string_view name() const override { return algorithm_name(algorithm_); }
  [[nodiscard]] Algorithm algorithm() const override { return algorithm_; }
  [[nodiscard]] bool deadlock_free() const override {
    return algorithm_deadlock_free(algorithm_);
  }
  [[nodiscard]] std::uint8_t channel_copies() const override { return copies_; }

 protected:
  SuiteRouterBase(Algorithm algorithm, std::uint8_t copies)
      : algorithm_(algorithm), copies_(copies) {}

  Algorithm algorithm_;
  std::uint8_t copies_;
};

/// 2-D mesh adapter (mesh-aware spec conversion: double-channel X-first
/// trees pin each hop to the copy its quadrant subnetwork owns).
class MeshRouter final : public SuiteRouterBase {
 public:
  MeshRouter(const topo::Mesh2D& mesh, Algorithm algorithm, std::uint8_t copies = 1);

  [[nodiscard]] MulticastRoute route(const MulticastRequest& request) const override;
  [[nodiscard]] RouteBatch route_many(
      std::span<const MulticastRequest> requests) const override;
  [[nodiscard]] std::vector<worm::WormSpec> specs(const MulticastRoute& route) const override;
  [[nodiscard]] const topo::Topology& topology() const override { return suite_.mesh(); }
  [[nodiscard]] const MeshRoutingSuite& suite() const { return suite_; }

 private:
  MeshRoutingSuite suite_;
};

/// Hypercube adapter.
class CubeRouter final : public SuiteRouterBase {
 public:
  CubeRouter(const topo::Hypercube& cube, Algorithm algorithm, std::uint8_t copies = 1);

  [[nodiscard]] MulticastRoute route(const MulticastRequest& request) const override;
  [[nodiscard]] RouteBatch route_many(
      std::span<const MulticastRequest> requests) const override;
  [[nodiscard]] std::vector<worm::WormSpec> specs(const MulticastRoute& route) const override;
  [[nodiscard]] const topo::Topology& topology() const override { return suite_.cube(); }
  [[nodiscard]] const CubeRoutingSuite& suite() const { return suite_; }

 private:
  CubeRoutingSuite suite_;
};

/// Adapter over any topology with a Hamiltonian labeling (3-D meshes,
/// k-ary n-cubes): the path-based deadlock-free algorithms + baselines.
class LabeledRouter final : public SuiteRouterBase {
 public:
  LabeledRouter(const topo::Topology& topology, std::unique_ptr<ham::Labeling> labeling,
                Algorithm algorithm, std::uint8_t copies = 1);

  [[nodiscard]] MulticastRoute route(const MulticastRequest& request) const override;
  [[nodiscard]] RouteBatch route_many(
      std::span<const MulticastRequest> requests) const override;
  [[nodiscard]] std::vector<worm::WormSpec> specs(const MulticastRoute& route) const override;
  [[nodiscard]] const topo::Topology& topology() const override { return suite_.topology(); }
  [[nodiscard]] const LabeledRoutingSuite& suite() const { return suite_; }

 private:
  LabeledRoutingSuite suite_;
};

}  // namespace mcnet::mcast
