#include "core/fixed_path.hpp"

#include <algorithm>

namespace mcnet::mcast {

MulticastRoute fixed_path_route(const topo::Topology& topology, const ham::Labeling& labeling,
                                const MulticastRequest& request) {
  DualPathSplit split;
  return fixed_path_route(topology, labeling, request, split);
}

MulticastRoute fixed_path_route(const topo::Topology& topology, const ham::Labeling& labeling,
                                const MulticastRequest& request, DualPathSplit& scratch) {
  (void)topology;  // adjacency is implied by the Hamiltonian labeling
  dual_path_prepare(labeling, request, scratch);
  const DualPathSplit& split = scratch;
  const std::uint32_t ls = labeling.label(request.source);

  MulticastRoute route;
  route.source = request.source;

  const auto emit = [&](const std::vector<topo::NodeId>& side, bool high,
                        std::uint8_t channel_class) {
    if (side.empty()) return;
    // The side list is sorted with the extreme label last.
    const std::uint32_t extreme = labeling.label(side.back());
    PathRoute path;
    path.channel_class = channel_class;
    std::size_t next_target = 0;
    for (std::uint32_t l = ls;; high ? ++l : --l) {
      path.nodes.push_back(labeling.node_at(l));
      if (next_target < side.size() && labeling.label(side[next_target]) == l) {
        path.delivery_hops.push_back(static_cast<std::uint32_t>(path.nodes.size() - 1));
        ++next_target;
      }
      if (l == extreme) break;
    }
    route.paths.push_back(std::move(path));
  };
  emit(split.high, /*high=*/true, kHighChannelClass);
  emit(split.low, /*high=*/false, kLowChannelClass);
  return route;
}

}  // namespace mcnet::mcast
