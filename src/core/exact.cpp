#include "core/exact.hpp"

#include <algorithm>
#include <bit>
#include <limits>
#include <stdexcept>

namespace mcnet::mcast::exact {

namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max() / 4;

// Held-Karp table: dp[mask][i] = shortest walk from the source visiting
// exactly the destinations in `mask`, ending at destination i.
std::vector<std::vector<std::uint32_t>> held_karp(
    const topo::Topology& topology, const MulticastRequest& request) {
  const auto k = static_cast<std::uint32_t>(request.destinations.size());
  if (k > 18) throw std::invalid_argument("Held-Karp limited to 18 destinations");
  // Pairwise shortest distances among {source} + destinations only.
  std::vector<std::uint32_t> from_source(k);
  std::vector<std::vector<std::uint32_t>> between(k, std::vector<std::uint32_t>(k));
  for (std::uint32_t i = 0; i < k; ++i) {
    from_source[i] = topology.distance(request.source, request.destinations[i]);
    for (std::uint32_t j = 0; j < k; ++j) {
      between[i][j] = topology.distance(request.destinations[i], request.destinations[j]);
    }
  }
  std::vector<std::vector<std::uint32_t>> dp(
      std::size_t{1} << k, std::vector<std::uint32_t>(k, kInf));
  for (std::uint32_t i = 0; i < k; ++i) dp[std::size_t{1} << i][i] = from_source[i];
  for (std::size_t mask = 1; mask < dp.size(); ++mask) {
    for (std::uint32_t i = 0; i < k; ++i) {
      if (!(mask >> i & 1) || dp[mask][i] >= kInf) continue;
      for (std::uint32_t j = 0; j < k; ++j) {
        if (mask >> j & 1) continue;
        const std::size_t next = mask | (std::size_t{1} << j);
        dp[next][j] = std::min(dp[next][j], dp[mask][i] + between[i][j]);
      }
    }
  }
  return dp;
}

}  // namespace

std::vector<std::vector<std::uint32_t>> all_pairs_distances(const topo::Topology& topology) {
  const std::uint32_t n = topology.num_nodes();
  std::vector<std::vector<std::uint32_t>> dist(n, std::vector<std::uint32_t>(n, kInf));
  std::vector<topo::NodeId> queue;
  for (topo::NodeId s = 0; s < n; ++s) {
    auto& d = dist[s];
    d[s] = 0;
    queue.assign(1, s);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const topo::NodeId u = queue[head];
      for (const topo::NodeId v : topology.neighbors(u)) {
        if (d[v] == kInf) {
          d[v] = d[u] + 1;
          queue.push_back(v);
        }
      }
    }
  }
  return dist;
}

std::uint64_t steiner_tree_optimum(const topo::Topology& topology,
                                   const MulticastRequest& request) {
  // Dreyfus-Wagner with the source as the root terminal.
  const auto k = static_cast<std::uint32_t>(request.destinations.size());
  if (k > 12) throw std::invalid_argument("Dreyfus-Wagner limited to 12 destinations");
  const std::uint32_t n = topology.num_nodes();
  const auto dist = all_pairs_distances(topology);

  const std::size_t masks = std::size_t{1} << k;
  // dp[mask][v]: optimal tree spanning destinations in `mask` plus node v.
  std::vector<std::vector<std::uint32_t>> dp(masks, std::vector<std::uint32_t>(n, kInf));
  for (std::uint32_t i = 0; i < k; ++i) {
    for (topo::NodeId v = 0; v < n; ++v) {
      dp[std::size_t{1} << i][v] = dist[request.destinations[i]][v];
    }
  }
  std::vector<std::uint32_t> merged(n);
  for (std::size_t mask = 1; mask < masks; ++mask) {
    if (std::popcount(mask) < 2) continue;
    // Merge step: two subtrees joined at v.
    for (topo::NodeId v = 0; v < n; ++v) {
      std::uint32_t best = kInf;
      // Iterate proper submasks containing the lowest set bit (each split
      // once).
      const std::size_t low = mask & (~mask + 1);
      for (std::size_t sub = (mask - 1) & mask; sub != 0; sub = (sub - 1) & mask) {
        if (!(sub & low)) continue;
        if (sub == mask) continue;
        const std::uint32_t cost = dp[sub][v] + dp[mask ^ sub][v];
        best = std::min(best, cost);
      }
      merged[v] = std::min(best, dp[mask][v]);
    }
    // Propagation step: attach v through the closest junction w.
    for (topo::NodeId v = 0; v < n; ++v) {
      std::uint32_t best = merged[v];
      for (topo::NodeId w = 0; w < n; ++w) {
        if (merged[w] >= kInf) continue;
        best = std::min(best, merged[w] + dist[w][v]);
      }
      dp[mask][v] = best;
    }
  }
  return dp[masks - 1][request.source];
}

std::uint64_t multicast_path_optimum_bound(const topo::Topology& topology,
                                           const MulticastRequest& request) {
  const auto dp = held_karp(topology, request);
  const auto k = static_cast<std::uint32_t>(request.destinations.size());
  std::uint32_t best = kInf;
  for (std::uint32_t i = 0; i < k; ++i) best = std::min(best, dp.back()[i]);
  return best;
}

std::uint64_t multicast_cycle_optimum_bound(const topo::Topology& topology,
                                            const MulticastRequest& request) {
  const auto dp = held_karp(topology, request);
  const auto k = static_cast<std::uint32_t>(request.destinations.size());
  std::uint32_t best = kInf;
  for (std::uint32_t i = 0; i < k; ++i) {
    const std::uint32_t back = topology.distance(request.destinations[i], request.source);
    best = std::min(best, dp.back()[i] + back);
  }
  return best;
}

std::uint64_t multicast_star_optimum_bound(const topo::Topology& topology,
                                           const MulticastRequest& request) {
  const auto k = static_cast<std::uint32_t>(request.destinations.size());
  if (k > 12) throw std::invalid_argument("star enumeration limited to 12 destinations");
  const auto dp = held_karp(topology, request);
  const std::size_t masks = std::size_t{1} << k;
  // Best single-path (walk) cost per destination subset.
  std::vector<std::uint32_t> walk(masks, kInf);
  for (std::size_t mask = 1; mask < masks; ++mask) {
    for (std::uint32_t i = 0; i < k; ++i) {
      if (mask >> i & 1) walk[mask] = std::min(walk[mask], dp[mask][i]);
    }
  }
  // Partition DP: star[mask] = best split of `mask` into walks.
  std::vector<std::uint32_t> star(masks, kInf);
  star[0] = 0;
  for (std::size_t mask = 1; mask < masks; ++mask) {
    const std::size_t low = mask & (~mask + 1);
    for (std::size_t sub = mask; sub != 0; sub = (sub - 1) & mask) {
      if (!(sub & low)) continue;  // the part containing the lowest bit
      if (walk[sub] >= kInf || star[mask ^ sub] >= kInf) continue;
      star[mask] = std::min(star[mask], walk[sub] + star[mask ^ sub]);
    }
  }
  return star[masks - 1];
}

}  // namespace mcnet::mcast::exact
