// mcnet_sim -- command-line driver for static and dynamic multicast
// experiments on any supported topology.
//
// Examples:
//   mcnet_sim --topology mesh:16x16 --algorithm dual-path --dests 10 --static
//   mcnet_sim --topology cube:6 --algorithm multi-path --dests 15
//             --interarrival-us 300 --messages 2000
//   mcnet_sim --topology mesh3:4x4x4 --algorithm fixed-path --dests 8 --static
//   mcnet_sim --topology kary:4x3 --algorithm dual-path --dests 6 --static --csv
#include <cmath>
#include <cstdio>
#include <memory>
#include <set>

#include "arg_parser.hpp"
#include "core/route_cache.hpp"
#include "core/router.hpp"
#include "evsim/random.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topology/spec.hpp"
#include "wormhole/experiment.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

struct Instance {
  std::unique_ptr<topo::Topology> topology;
  std::unique_ptr<mcast::CachingRouter> router;
};

Instance make_instance(const std::string& spec, Algorithm algo, std::uint8_t copies) {
  Instance inst;
  inst.topology = topo::make_topology(spec);
  inst.router = mcast::make_caching_router(*inst.topology, algo, copies);
  return inst;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    tools::ArgParser args(argc, argv);
    const std::string topo_spec =
        args.get("topology", "mesh:8x8",
                 "mesh:WxH | cube:N | mesh3:XxYxZ | kary:KxN | karymesh:KxN");
    const std::string algo_name = args.get("algorithm", "dual-path",
                                           "routing algorithm (see README)");
    const auto dests = static_cast<std::uint32_t>(args.get_int("dests", 10, "destinations"));
    const auto runs = static_cast<std::uint32_t>(
        args.get_int("runs", 1000, "random multicast sets (static mode)"));
    const bool static_mode = args.get_flag("static", "measure static traffic only");
    const double interarrival_us =
        args.get_double("interarrival-us", 300.0, "mean per-node interarrival (dynamic)");
    const auto messages =
        static_cast<std::uint64_t>(args.get_int("messages", 2000, "target messages (dynamic)"));
    const auto copies =
        static_cast<std::uint8_t>(args.get_int("copies", 1, "channel copies per link"));
    const auto flits = static_cast<std::uint32_t>(
        args.get_int("flits", 128, "message length in flits (dynamic)"));
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 2026, "random seed"));
    const auto batch = static_cast<std::uint32_t>(args.get_int(
        "batch", 1, "requests per route_many call (static: chunk size; dynamic: prefetch)"));
    const bool csv = args.get_flag("csv", "machine-readable output");
    const std::string trace_path =
        args.get("trace", "", "write a Chrome/Perfetto trace of the dynamic run (dynamic)");
    const bool metrics_dump =
        args.get_flag("metrics", "dump the metrics registry as JSON after the run (dynamic)");
    if (args.help_requested()) {
      args.print_usage();
      return 0;
    }
    args.reject_unknown();

    const Algorithm algo = mcast::parse_algorithm(algo_name);
    const Instance inst = make_instance(topo_spec, algo, copies);
    const std::uint32_t n = inst.topology->num_nodes();
    if (dests >= n) throw std::invalid_argument("dests must be < number of nodes");

    if (batch == 0) throw std::invalid_argument("batch must be >= 1");

    if (static_mode) {
      evsim::Rng rng(seed);
      double traffic = 0.0, additional = 0.0, max_hops = 0.0;
      // Requests are drawn identically regardless of --batch; the batch
      // path only changes how many reach the router per route_many call,
      // so the reported means are bit-identical to the scalar loop.
      std::vector<mcast::MulticastRequest> chunk;
      chunk.reserve(batch);
      for (std::uint32_t r = 0; r < runs;) {
        chunk.clear();
        for (std::uint32_t b = 0; b < batch && r < runs; ++b, ++r) {
          const topo::NodeId src = rng.uniform_int(0, n - 1);
          chunk.push_back(mcast::MulticastRequest{src, rng.sample_destinations(n, src, dests)});
        }
        const mcast::RouteBatch routes = inst.router->route_many(chunk);
        for (std::size_t i = 0; i < routes.size(); ++i) {
          const mcast::MulticastRoute route = routes.route_at(i);
          traffic += static_cast<double>(route.traffic());
          additional += static_cast<double>(route.additional_traffic(dests));
          max_hops += route.max_delivery_hops();
        }
      }
      if (csv) {
        std::printf("topology,algorithm,dests,runs,traffic,additional,max_hops\n");
        std::printf("%s,%s,%u,%u,%.2f,%.2f,%.2f\n", inst.topology->name().c_str(),
                    algo_name.c_str(), dests, runs, traffic / runs, additional / runs,
                    max_hops / runs);
      } else {
        std::printf("%s, %s, k=%u (%u runs)\n", inst.topology->name().c_str(),
                    algo_name.c_str(), dests, runs);
        std::printf("  mean traffic:            %.2f channels\n", traffic / runs);
        std::printf("  mean additional traffic: %.2f channels\n", additional / runs);
        std::printf("  mean max delivery depth: %.2f hops\n", max_hops / runs);
      }
      return 0;
    }

    worm::DynamicConfig cfg;
    cfg.params = {.flit_time = 50e-9, .message_flits = flits, .channel_copies = copies};
    cfg.traffic = {.mean_interarrival_s = interarrival_us * 1e-6,
                   .avg_destinations = dests,
                   .fixed_destinations = false,
                   .exponential_interarrival = false,
                   .seed = seed,
                   .route_batch = batch};
    cfg.target_messages = messages;
    cfg.max_messages = messages * 4;
    cfg.max_sim_time_s = 2.0;

    obs::MetricsRegistry registry;
    if (metrics_dump) {
      cfg.metrics = &registry;
      inst.router->set_metrics(&registry);
    }
    std::unique_ptr<obs::EventTracer> tracer;
    if (!trace_path.empty()) {
      tracer = std::make_unique<obs::EventTracer>();
      cfg.tracer = tracer.get();
    }

    const worm::DynamicResult r = run_dynamic(*inst.router, cfg);
    const mcast::RouteCacheStats cache = inst.router->stats();
    if (csv) {
      std::printf(
          "topology,algorithm,dests,interarrival_us,latency_us,ci_us,ci_valid,"
          "completion_us,deliveries,messages,converged,saturated\n");
      std::printf("%s,%s,%u,%.1f,%.3f,%.3f,%d,%.3f,%llu,%llu,%d,%d\n",
                  inst.topology->name().c_str(), algo_name.c_str(), dests, interarrival_us,
                  r.mean_latency_us, r.ci_valid ? r.ci_half_us : std::nan(""), r.ci_valid,
                  r.mean_completion_us, static_cast<unsigned long long>(r.deliveries),
                  static_cast<unsigned long long>(r.messages_completed), r.converged,
                  r.saturated);
    } else {
      std::printf("%s, %s, avg %u dests, %.0f us interarrival\n",
                  inst.topology->name().c_str(), algo_name.c_str(), dests, interarrival_us);
      if (r.ci_valid) {
        std::printf("  mean latency:     %.2f us (95%% CI +/- %.2f)\n", r.mean_latency_us,
                    r.ci_half_us);
      } else {
        std::printf("  mean latency:     %.2f us (CI unavailable: too few batches)\n",
                    r.mean_latency_us);
      }
      std::printf("  mean completion:  %.2f us\n", r.mean_completion_us);
      std::printf("  deliveries:       %llu over %llu messages\n",
                  static_cast<unsigned long long>(r.deliveries),
                  static_cast<unsigned long long>(r.messages_completed));
      std::printf("  converged: %s, saturated: %s\n", r.converged ? "yes" : "no",
                  r.saturated ? "yes" : "no");
      std::printf("  route cache:      %llu hits / %llu misses (%.1f%% hit rate)\n",
                  static_cast<unsigned long long>(cache.hits),
                  static_cast<unsigned long long>(cache.misses), cache.hit_rate() * 100.0);
    }
    if (tracer != nullptr) {
      if (!tracer->write_file(trace_path)) {
        std::fprintf(stderr, "error: cannot write trace to %s\n", trace_path.c_str());
        return 1;
      }
      std::fprintf(stderr, "trace: wrote %zu events to %s%s\n", tracer->size(),
                   trace_path.c_str(),
                   tracer->dropped() > 0 ? " (buffer full, some events dropped)" : "");
    }
    if (metrics_dump) {
      std::printf("%s\n", registry.to_json().dump(2).c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n(run with --help for usage)\n", e.what());
    return 1;
  }
}
