# Topology matrix shared by the CI verification and smoke scripts.  Source
# this file (from tools/static_verify.sh or tools/bench_smoke.sh); do not
# execute it directly.

# Topology the simulator trace smoke test drives (bench_smoke.sh).
MCNET_SIM_TOPOLOGY=${MCNET_SIM_TOPOLOGY:-mesh:8x8}

# mcnet_verify matrix: "topology algorithm expectation" triples.  The naive
# tree algorithms must produce concrete deadlock witnesses; the Chapter 6
# algorithms must prove clean (no CDG cycle, no invariant violation).
MCNET_VERIFY_MATRIX=(
  # 2-D mesh
  "mesh:5x4 X-first-MT deadlock"
  "mesh:5x4 dc-X-first-tree clean"
  "mesh:5x4 dual-path clean"
  "mesh:5x4 multi-path clean"
  "mesh:5x4 fixed-path clean"
  # hypercube
  "cube:4 ecube-MT deadlock"
  "cube:4 binomial-broadcast deadlock"
  "cube:4 dual-path clean"
  "cube:4 multi-path clean"
  "cube:4 fixed-path clean"
  # 3-D mesh
  "mesh3:3x3x3 dual-path clean"
  "mesh3:3x3x3 multi-path clean"
  "mesh3:3x3x3 fixed-path clean"
  # k-ary 2-cube (wraparound torus)
  "kary:4x2 dual-path clean"
  "kary:4x2 multi-path clean"
  "kary:4x2 fixed-path clean"
  # Unicast routing functions (plain Dally-Seitz CDG).  Dimension-order
  # routing deadlocks on wraparound rings with k >= 4 -- the classic torus
  # result motivating virtual channels -- but is clean on the mesh variant.
  "mesh:5x4 xfirst clean"
  "cube:4 ecube clean"
  "mesh3:3x3x3 zfirst clean"
  "karymesh:4x3 dimension-order clean"
  "kary:4x2 dimension-order deadlock"
  "mesh:5x4 label-high clean"
  "mesh:5x4 label-low clean"
  "cube:3 label-high clean"
  "cube:3 label-low clean"
)

# Adaptive-relation matrix: "topology relation mode expectation" rows, run
# with mcnet_verify --relation (mode "escape" adds --escape-channels, so
# the verdict must come from the Duato escape-channel certification; mode
# "plain" accepts CDG acyclicity).  adaptive-dual-path must certify CLEAN
# via escape channels on all five CI topologies; the deterministic relation
# views must reproduce the PR 4 verdicts; the planted min-adaptive control
# (no escape) must produce a deadlock witness everywhere, and the
# dimension-order escape control stays CLEAN except on the wraparound ring
# (the classic torus escape cycle).
MCNET_RELATION_MATRIX=(
  # Section 8.2 randomized adaptive dual-path: escape = the label router R.
  "mesh:5x4 adaptive-dual-path escape clean"
  "cube:4 adaptive-dual-path escape clean"
  "mesh3:3x3x3 adaptive-dual-path escape clean"
  "kary:4x2 adaptive-dual-path escape clean"
  "karymesh:4x3 adaptive-dual-path escape clean"
  # Deterministic relation views (validation oracles against PR 4).
  "mesh:5x4 dual-path plain clean"
  "mesh:5x4 multi-path plain clean"
  "mesh:5x4 fixed-path plain clean"
  "cube:4 dual-path plain clean"
  "cube:4 multi-path plain clean"
  "cube:4 fixed-path plain clean"
  "mesh3:3x3x3 dual-path plain clean"
  "mesh3:3x3x3 multi-path plain clean"
  "kary:4x2 dual-path plain clean"
  "kary:4x2 fixed-path plain clean"
  # Planted controls.
  "mesh:5x4 min-adaptive plain deadlock"
  "cube:4 min-adaptive plain deadlock"
  "mesh3:3x3x3 min-adaptive plain deadlock"
  "kary:4x2 min-adaptive plain deadlock"
  "karymesh:4x3 min-adaptive plain deadlock"
  "mesh:5x4 min-adaptive-escape escape clean"
  "cube:4 min-adaptive-escape escape clean"
  "mesh3:3x3x3 min-adaptive-escape escape clean"
  "karymesh:4x3 min-adaptive-escape escape clean"
  "kary:4x2 min-adaptive-escape escape deadlock"
)
