// mcnet_verify: static deadlock-freedom and routing-invariant analyzer.
//
// Without running the simulator, enumerate the channel dependencies a
// multicast algorithm induces over a topology, search the resulting CDG
// for multi-instance cycles (deadlock witnesses, shrunk to a minimal set
// of concurrent multicasts), and sweep the per-router invariants the
// algorithm claims.  Unicast routing functions are checked through the
// classic Dally-Seitz construction.
//
// Exit codes: 0 = verdict matches --expect (or no expectation given),
//             2 = verdict contradicts --expect, 1 = usage/setup error.
#include <cstdio>
#include <exception>
#include <optional>
#include <string>
#include <vector>

#include "analysis/invariants.hpp"
#include "analysis/mcdg.hpp"
#include "analysis/scenario.hpp"
#include "arg_parser.hpp"
#include "cdg/analyzers.hpp"
#include "cdg/channel_graph.hpp"
#include "core/route_factory.hpp"

namespace {

using namespace mcnet;

struct Verdict {
  std::string name;
  bool deadlock_free = false;
  bool invariants_ok = true;

  [[nodiscard]] bool clean() const { return deadlock_free && invariants_ok; }
  [[nodiscard]] const char* label() const {
    if (clean()) return "CLEAN";
    if (!deadlock_free) return invariants_ok ? "DEADLOCK" : "DEADLOCK+VIOLATIONS";
    return "INVARIANT-VIOLATIONS";
  }
};

// Unicast routing functions addressable by name; checked via the plain
// Dally-Seitz CDG instead of the multicast instance enumeration.
std::optional<cdg::RoutingFunction> unicast_routing(const analysis::Fixture& f,
                                                    const std::string& name) {
  if (name == "xfirst" && f.mesh2d != nullptr) return cdg::xfirst_routing(*f.mesh2d);
  if (name == "ecube" && f.cube != nullptr) return cdg::ecube_routing(*f.cube);
  if (name == "zfirst" && f.mesh3d != nullptr) return cdg::zfirst_routing(*f.mesh3d);
  if (name == "dimension-order" && f.kary != nullptr) {
    return cdg::dimension_order_routing(*f.kary);
  }
  if ((name == "label-high" || name == "label-low") && f.labeling != nullptr) {
    return cdg::label_routing(*f.topology, *f.labeling, name == "label-high");
  }
  return std::nullopt;
}

bool is_unicast_name(const std::string& name) {
  return name == "xfirst" || name == "ecube" || name == "zfirst" ||
         name == "dimension-order" || name == "label-high" || name == "label-low";
}

Verdict verify_unicast(const analysis::Fixture& f, const std::string& name) {
  const auto routing = unicast_routing(f, name);
  if (!routing) {
    throw std::invalid_argument("unicast routing \"" + name + "\" is not defined on " +
                                f.topology->name());
  }
  const cdg::ChannelGraph g = cdg::build_unicast_cdg(*f.topology, *routing);
  std::printf("scenario: %s @ %s (unicast)\n", name.c_str(), f.topology->name().c_str());
  std::printf("  channels:     %u\n", g.num_channels());
  std::printf("  dependencies: %zu\n", g.num_dependencies());
  const auto cycle = g.find_cycle();
  if (!cycle) {
    std::printf("  deadlock: NONE (CDG acyclic)\n");
    return {name, true, true};
  }
  std::printf("  deadlock: channel dependency cycle of length %zu:\n", cycle->size());
  for (const topo::ChannelId c : *cycle) {
    const topo::ChannelEnds ends = f.topology->channel_ends(c);
    std::printf("    c%u (%u -> %u)\n", c, ends.from, ends.to);
  }
  return {name, false, true};
}

Verdict verify_multicast(const analysis::Fixture& f, mcast::Algorithm algorithm,
                         const analysis::AnalysisConfig& config) {
  const analysis::Scenario scenario = analysis::make_scenario(f, algorithm);
  std::printf("scenario: %s\n", scenario.name.c_str());

  const analysis::DeadlockReport deadlock = analysis::analyze_deadlock(scenario, config);
  std::printf("  instances analyzed: %zu (destination sets up to %u)\n",
              deadlock.instances_analyzed, config.max_set_size);
  std::printf("  virtual channels:   %zu\n", deadlock.virtual_channels);
  std::printf("  dependencies:       %zu\n", deadlock.dependencies);

  const analysis::InvariantReport inv = analysis::check_invariants(scenario, config);
  if (inv.ok()) {
    std::printf("  invariants: OK (%zu instances checked)\n", inv.instances_checked);
  } else {
    std::printf("  invariants: %zu violation(s) over %zu instances\n", inv.violations,
                inv.instances_checked);
    for (const analysis::InvariantViolation& v : inv.samples) {
      std::printf("    [%s] source %u, %zu destination(s): %s\n", v.kind.c_str(),
                  v.instance.source, v.instance.destinations.size(), v.detail.c_str());
    }
  }

  if (deadlock.deadlock_free()) {
    std::printf("  deadlock: NONE (multicast CDG admits no multi-instance cycle)\n");
  } else {
    std::printf("  %s", deadlock.witness->format(*f.topology).c_str());
  }
  return {std::string(mcast::algorithm_name(algorithm)), deadlock.deadlock_free(), inv.ok()};
}

int run(int argc, char** argv) {
  tools::ArgParser args(argc, argv);
  const std::string topology_spec =
      args.get("topology", "mesh:4x4", "topology spec (mesh:WxH, cube:N, mesh3:XxYxZ, kary:KxN, karymesh:KxN)");
  const std::string algorithm = args.get(
      "algorithm", "all",
      "multicast algorithm name, unicast routing (xfirst, ecube, zfirst, dimension-order, "
      "label-high, label-low), or \"all\" for every verifiable multicast algorithm");
  analysis::AnalysisConfig config;
  config.max_set_size =
      static_cast<std::uint32_t>(args.get_int("max-dests", config.max_set_size,
                                              "largest destination-set size enumerated"));
  config.max_instances = static_cast<std::size_t>(
      args.get_int("max-instances", static_cast<std::int64_t>(config.max_instances),
                   "instance budget (stride-sampled above it)"));
  config.shrink = !args.get_flag("no-shrink", "skip counterexample shrinking");
  const std::string expect =
      args.get("expect", "", "expected verdict: clean, deadlock, or auto (per-algorithm claim)");
  if (args.help_requested()) {
    args.print_usage();
    return 0;
  }
  args.reject_unknown();
  if (!expect.empty() && expect != "clean" && expect != "deadlock" && expect != "auto") {
    throw std::invalid_argument("--expect must be clean, deadlock, or auto");
  }

  const analysis::Fixture fixture = analysis::make_fixture(topology_spec);

  std::vector<Verdict> verdicts;
  std::vector<bool> expected_clean;
  if (algorithm == "all") {
    for (const mcast::Algorithm a : analysis::verifiable_algorithms(fixture)) {
      verdicts.push_back(verify_multicast(fixture, a, config));
      expected_clean.push_back(analysis::claimed_deadlock_free(a));
    }
  } else if (is_unicast_name(algorithm)) {
    verdicts.push_back(verify_unicast(fixture, algorithm));
    expected_clean.push_back(true);
  } else {
    const mcast::Algorithm a = mcast::parse_algorithm(algorithm);
    verdicts.push_back(verify_multicast(fixture, a, config));
    expected_clean.push_back(analysis::claimed_deadlock_free(a));
  }

  int status = 0;
  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    std::printf("  verdict: %s [%s]\n", verdicts[i].label(), verdicts[i].name.c_str());
    if (expect.empty()) continue;
    const bool want_clean = expect == "auto" ? expected_clean[i] : expect == "clean";
    if (verdicts[i].clean() != want_clean) {
      std::printf("  MISMATCH: expected %s\n", want_clean ? "CLEAN" : "DEADLOCK");
      status = 2;
    }
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcnet_verify: error: %s\n", e.what());
    return 1;
  }
}
