// mcnet_verify: static deadlock-freedom and routing-invariant analyzer.
//
// Without running the simulator, enumerate the channel dependencies a
// multicast algorithm induces over a topology, search the resulting CDG
// for multi-instance cycles (deadlock witnesses, shrunk to a minimal set
// of concurrent multicasts), and sweep the per-router invariants the
// algorithm claims.  Unicast routing functions are checked through the
// classic Dally-Seitz construction.  Adaptive routing relations
// (--relation) are explored over every legal choice and certified either
// by CDG acyclicity or by the escape-channel sufficient condition
// (--escape-channels demands the latter).  --json emits one structured
// mcnet-verify-v1 document instead of text.
//
// Exit codes: 0 = verdict matches --expect (or no expectation given),
//             2 = verdict contradicts --expect, 1 = usage/setup error.
#include <cstdio>
#include <exception>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/invariants.hpp"
#include "analysis/mcdg.hpp"
#include "analysis/relation.hpp"
#include "analysis/report.hpp"
#include "analysis/scenario.hpp"
#include "arg_parser.hpp"
#include "cdg/analyzers.hpp"
#include "cdg/channel_graph.hpp"
#include "core/route_factory.hpp"
#include "obs/json.hpp"

namespace {

using namespace mcnet;

// One analyzed scenario: its verdict plus the --json report entry.
struct Outcome {
  std::string name;
  bool clean = false;
  std::string label;
  bool claimed_clean = true;  // drives --expect auto
  obs::Json json;
};

// Unicast routing functions addressable by name; checked via the plain
// Dally-Seitz CDG instead of the multicast instance enumeration.
std::optional<cdg::RoutingFunction> unicast_routing(const analysis::Fixture& f,
                                                    const std::string& name) {
  if (name == "xfirst" && f.mesh2d != nullptr) return cdg::xfirst_routing(*f.mesh2d);
  if (name == "ecube" && f.cube != nullptr) return cdg::ecube_routing(*f.cube);
  if (name == "zfirst" && f.mesh3d != nullptr) return cdg::zfirst_routing(*f.mesh3d);
  if (name == "dimension-order" && f.kary != nullptr) {
    return cdg::dimension_order_routing(*f.kary);
  }
  if ((name == "label-high" || name == "label-low") && f.labeling != nullptr) {
    return cdg::label_routing(*f.topology, *f.labeling, name == "label-high");
  }
  return std::nullopt;
}

bool is_unicast_name(const std::string& name) {
  return name == "xfirst" || name == "ecube" || name == "zfirst" ||
         name == "dimension-order" || name == "label-high" || name == "label-low";
}

Outcome verify_unicast(const analysis::Fixture& f, const std::string& name, bool quiet) {
  const auto routing = unicast_routing(f, name);
  if (!routing) {
    throw std::invalid_argument("unicast routing \"" + name + "\" is not defined on " +
                                f.topology->name());
  }
  const cdg::ChannelGraph g = cdg::build_unicast_cdg(*f.topology, *routing);
  if (!quiet) {
    std::printf("scenario: %s @ %s (unicast)\n", name.c_str(), f.topology->name().c_str());
    std::printf("  channels:     %u\n", g.num_channels());
    std::printf("  dependencies: %zu\n", g.num_dependencies());
  }
  const auto cycle = g.find_cycle();
  if (!quiet) {
    if (!cycle) {
      std::printf("  deadlock: NONE (CDG acyclic)\n");
    } else {
      std::printf("  deadlock: channel dependency cycle of length %zu:\n", cycle->size());
      for (const topo::ChannelId c : *cycle) {
        const topo::ChannelEnds ends = f.topology->channel_ends(c);
        std::printf("    c%u (%u -> %u)\n", c, ends.from, ends.to);
      }
    }
  }
  Outcome out;
  out.name = name;
  out.clean = !cycle.has_value();
  out.label = out.clean ? "CLEAN" : "DEADLOCK";
  out.json = obs::Json::object();
  out.json["mode"] = "unicast";
  out.json["name"] = name;
  out.json["channels"] = g.num_channels();
  out.json["dependencies"] = g.num_dependencies();
  out.json["deadlock_free"] = out.clean;
  if (cycle) {
    obs::Json cyc = obs::Json::array();
    for (const topo::ChannelId c : *cycle) {
      obs::Json e = obs::Json::object();
      e["channel"] = c;
      const topo::ChannelEnds ends = f.topology->channel_ends(c);
      e["from"] = ends.from;
      e["to"] = ends.to;
      cyc.push_back(std::move(e));
    }
    out.json["cycle"] = std::move(cyc);
  } else {
    out.json["cycle"] = obs::Json();
  }
  return out;
}

Outcome verify_multicast(const analysis::Fixture& f, mcast::Algorithm algorithm,
                         const analysis::AnalysisConfig& config, bool quiet) {
  const analysis::Scenario scenario = analysis::make_scenario(f, algorithm);
  if (!quiet) std::printf("scenario: %s\n", scenario.name.c_str());

  const analysis::DeadlockReport deadlock = analysis::analyze_deadlock(scenario, config);
  const analysis::InvariantReport inv = analysis::check_invariants(scenario, config);
  if (!quiet) {
    std::printf("  instances analyzed: %zu (destination sets up to %u)\n",
                deadlock.instances_analyzed, config.max_set_size);
    std::printf("  virtual channels:   %zu\n", deadlock.virtual_channels);
    std::printf("  dependencies:       %zu\n", deadlock.dependencies);
    if (inv.ok()) {
      std::printf("  invariants: OK (%zu instances checked)\n", inv.instances_checked);
    } else {
      std::printf("  invariants: %zu violation(s) over %zu instances\n", inv.violations,
                  inv.instances_checked);
      for (const analysis::InvariantViolation& v : inv.samples) {
        std::printf("    [%s] source %u, %zu destination(s): %s\n", v.kind.c_str(),
                    v.instance.source, v.instance.destinations.size(), v.detail.c_str());
      }
    }
    if (deadlock.deadlock_free()) {
      std::printf("  deadlock: NONE (multicast CDG admits no multi-instance cycle)\n");
    } else {
      std::printf("  %s", deadlock.witness->format(*f.topology).c_str());
    }
  }
  Outcome out;
  out.name = mcast::algorithm_name(algorithm);
  out.clean = deadlock.deadlock_free() && inv.ok();
  if (out.clean) {
    out.label = "CLEAN";
  } else if (!deadlock.deadlock_free()) {
    out.label = inv.ok() ? "DEADLOCK" : "DEADLOCK+VIOLATIONS";
  } else {
    out.label = "INVARIANT-VIOLATIONS";
  }
  out.claimed_clean = analysis::claimed_deadlock_free(algorithm);
  out.json = obs::Json::object();
  out.json["mode"] = "multicast";
  out.json["name"] = out.name;
  out.json["deadlock"] = analysis::deadlock_json(deadlock, *f.topology);
  out.json["invariants"] = analysis::invariants_json(inv);
  return out;
}

Outcome verify_relation(const analysis::Fixture& f, const std::string& name,
                        const analysis::AnalysisConfig& config, bool escape_only, bool quiet) {
  const analysis::RoutingRelation relation = analysis::make_relation(f, name);
  const analysis::RelationReport report = analysis::analyze_relation(relation, config);
  const bool certified =
      escape_only ? (report.stuck_states == 0 && report.escape.certified()) : report.certified();
  if (!quiet) {
    std::printf("scenario: relation %s @ %s%s\n", name.c_str(), f.topology->name().c_str(),
                escape_only ? " (escape-channel condition)" : "");
    std::printf("  instances analyzed: %zu (destination sets up to %u)\n",
                report.instances_analyzed, config.max_set_size);
    std::printf("  worm states:        %zu (%zu stuck)\n", report.worm_states,
                report.stuck_states);
    std::printf("  virtual channels:   %zu\n", report.virtual_channels);
    std::printf("  dependencies:       %zu\n", report.dependencies);
    std::printf("  relation CDG: %s\n", report.cdg_acyclic ? "acyclic" : "cyclic");
    if (report.escape.checked) {
      std::printf("  escape channels: %zu, extended dependencies: %zu -> %s\n",
                  report.escape.escape_channels, report.escape.extended_dependencies,
                  report.escape.certified() ? "certified (escape subgraph acyclic)"
                                            : "NOT certified");
      for (const std::string& failure : report.escape.failures) {
        std::printf("    escape failure: %s\n", failure.c_str());
      }
    } else {
      std::printf("  escape channels: none declared\n");
    }
    if (report.witness) {
      std::printf("  %s", report.witness->format(*f.topology).c_str());
    } else if (certified) {
      std::printf("  deadlock: NONE (%s)\n",
                  report.cdg_acyclic && !escape_only ? "relation CDG acyclic"
                                                     : "escape-channel condition holds");
    }
  }
  Outcome out;
  out.name = name;
  out.clean = certified;
  out.label = certified ? "CLEAN" : "DEADLOCK";
  out.claimed_clean = relation.claimed_deadlock_free;
  out.json = obs::Json::object();
  out.json["mode"] = "relation";
  out.json["name"] = name;
  out.json["escape_only"] = escape_only;
  out.json["relation"] = analysis::relation_json(report, *f.topology);
  return out;
}

int run(int argc, char** argv) {
  tools::ArgParser args(argc, argv);
  const std::string topology_spec =
      args.get("topology", "mesh:4x4", "topology spec (mesh:WxH, cube:N, mesh3:XxYxZ, kary:KxN, karymesh:KxN)");
  const std::string algorithm = args.get(
      "algorithm", "all",
      "multicast algorithm name, unicast routing (xfirst, ecube, zfirst, dimension-order, "
      "label-high, label-low), or \"all\" for every verifiable multicast algorithm");
  const std::string relation = args.get(
      "relation", "",
      "adaptive routing relation to verify (adaptive-dual-path, dual-path, multi-path, "
      "fixed-path, min-adaptive, min-adaptive-escape, or \"all\"); replaces the algorithm "
      "scenarios when set");
  const bool escape_only = args.get_flag(
      "escape-channels", "relations must pass the escape-channel certification (Duato's "
                         "sufficient condition); plain CDG acyclicity no longer counts");
  const bool json_mode =
      args.get_flag("json", "emit one structured mcnet-verify-v1 JSON document");
  analysis::AnalysisConfig config;
  config.max_set_size =
      static_cast<std::uint32_t>(args.get_int("max-dests", config.max_set_size,
                                              "largest destination-set size enumerated"));
  config.max_instances = static_cast<std::size_t>(
      args.get_int("max-instances", static_cast<std::int64_t>(config.max_instances),
                   "instance budget (stride-sampled above it)"));
  config.shrink = !args.get_flag("no-shrink", "skip counterexample shrinking");
  const std::string expect =
      args.get("expect", "", "expected verdict: clean, deadlock, or auto (per-algorithm claim)");
  if (args.help_requested()) {
    args.print_usage();
    return 0;
  }
  args.reject_unknown();
  if (!expect.empty() && expect != "clean" && expect != "deadlock" && expect != "auto") {
    throw std::invalid_argument("--expect must be clean, deadlock, or auto");
  }

  const analysis::Fixture fixture = analysis::make_fixture(topology_spec);

  std::vector<Outcome> outcomes;
  if (!relation.empty()) {
    if (relation == "all") {
      for (const std::string& name : analysis::verifiable_relations(fixture)) {
        outcomes.push_back(verify_relation(fixture, name, config, escape_only, json_mode));
      }
    } else {
      outcomes.push_back(verify_relation(fixture, relation, config, escape_only, json_mode));
    }
  } else if (algorithm == "all") {
    for (const mcast::Algorithm a : analysis::verifiable_algorithms(fixture)) {
      outcomes.push_back(verify_multicast(fixture, a, config, json_mode));
    }
  } else if (is_unicast_name(algorithm)) {
    outcomes.push_back(verify_unicast(fixture, algorithm, json_mode));
  } else {
    outcomes.push_back(
        verify_multicast(fixture, mcast::parse_algorithm(algorithm), config, json_mode));
  }

  int status = 0;
  for (Outcome& out : outcomes) {
    bool mismatch = false;
    if (!expect.empty()) {
      const bool want_clean = expect == "auto" ? out.claimed_clean : expect == "clean";
      if (out.clean != want_clean) {
        mismatch = true;
        status = 2;
      }
      out.json["expected"] = want_clean ? "CLEAN" : "DEADLOCK";
    }
    out.json["verdict"] = out.label;
    out.json["matches_expectation"] = !mismatch;
    if (!json_mode) {
      std::printf("  verdict: %s [%s]\n", out.label.c_str(), out.name.c_str());
      if (mismatch) {
        std::printf("  MISMATCH: expected %s\n",
                    expect == "auto" ? (out.claimed_clean ? "CLEAN" : "DEADLOCK")
                                     : (expect == "clean" ? "CLEAN" : "DEADLOCK"));
      }
    }
  }

  if (json_mode) {
    obs::Json doc = obs::Json::object();
    doc["schema"] = analysis::kReportSchema;
    doc["topology"] = fixture.topology->name();
    doc["spec"] = topology_spec;
    obs::Json cfg = obs::Json::object();
    cfg["max_dests"] = config.max_set_size;
    cfg["max_instances"] = config.max_instances;
    cfg["shrink"] = config.shrink;
    doc["config"] = std::move(cfg);
    obs::Json scenarios = obs::Json::array();
    for (Outcome& out : outcomes) scenarios.push_back(std::move(out.json));
    doc["scenarios"] = std::move(scenarios);
    doc["status"] = status;
    std::printf("%s\n", doc.dump(2).c_str());
  }
  return status;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcnet_verify: error: %s\n", e.what());
    return 1;
  }
}
