// Minimal command-line option parser for the mcnet tools: --key value and
// --key=value flags with typed accessors and automatic usage text.
#pragma once

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

namespace mcnet::tools {

class ArgParser {
 public:
  ArgParser(int argc, char** argv) {
    program_ = argc > 0 ? argv[0] : "mcnet";
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        throw std::invalid_argument("unexpected positional argument: " + arg);
      }
      arg = arg.substr(2);
      const std::size_t eq = arg.find('=');
      if (eq != std::string::npos) {
        values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "";  // boolean flag
      }
    }
  }

  /// Declare an option (for usage text) and fetch it.
  [[nodiscard]] std::string get(const std::string& key, const std::string& def,
                                const std::string& help) {
    declare(key, def, help);
    const auto it = values_.find(key);
    if (it != values_.end()) used_.insert(it->first);
    return it == values_.end() ? def : it->second;
  }
  [[nodiscard]] double get_double(const std::string& key, double def,
                                  const std::string& help) {
    const std::string v = get(key, std::to_string(def), help);
    // std::stod throws bare invalid_argument/out_of_range that name no
    // flag; rewrap so the user learns which option is malformed.
    std::size_t used = 0;
    double parsed = 0.0;
    try {
      parsed = std::stod(v, &used);
    } catch (const std::exception&) {
      throw std::invalid_argument("option --" + key + " expects a number, got \"" + v + "\"");
    }
    if (used != v.size()) {
      throw std::invalid_argument("option --" + key + " expects a number, got \"" + v + "\"");
    }
    return parsed;
  }
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def,
                                     const std::string& help) {
    const std::string v = get(key, std::to_string(def), help);
    std::size_t used = 0;
    std::int64_t parsed = 0;
    try {
      parsed = std::stoll(v, &used);
    } catch (const std::exception&) {
      throw std::invalid_argument("option --" + key + " expects an integer, got \"" + v +
                                  "\"");
    }
    if (used != v.size()) {
      throw std::invalid_argument("option --" + key + " expects an integer, got \"" + v +
                                  "\"");
    }
    return parsed;
  }
  [[nodiscard]] bool get_flag(const std::string& key, const std::string& help) {
    declare(key, "", help);
    const auto it = values_.find(key);
    if (it != values_.end()) used_.insert(it->first);
    return it != values_.end();
  }

  [[nodiscard]] bool help_requested() const {
    return values_.contains("help") || values_.contains("h");
  }

  void print_usage() const {
    std::printf("usage: %s [options]\n\noptions:\n", program_.c_str());
    for (const auto& d : declared_) {
      std::printf("  --%-18s %s%s%s\n", d.key.c_str(), d.help.c_str(),
                  d.def.empty() ? "" : " (default: ", d.def.empty() ? "" : (d.def + ")").c_str());
    }
  }

  /// Throw on unknown options (catch typos); call after all get()s.
  void reject_unknown() const {
    for (const auto& [k, v] : values_) {
      if (k == "help" || k == "h") continue;
      if (!used_.contains(k)) throw std::invalid_argument("unknown option --" + k);
    }
  }

 private:
  struct Declared {
    std::string key, def, help;
  };
  void declare(const std::string& key, const std::string& def, const std::string& help) {
    for (const auto& d : declared_) {
      if (d.key == key) return;
    }
    declared_.push_back({key, def, help});
  }

  std::string program_;
  std::map<std::string, std::string> values_;
  std::set<std::string> used_;
  std::vector<Declared> declared_;
};

}  // namespace mcnet::tools
