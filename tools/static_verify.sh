#!/usr/bin/env bash
# Run the static deadlock-freedom and routing-invariant matrix: every
# (topology, algorithm, expectation) triple from tools/topology_matrix.sh is
# checked with mcnet_verify.  Run from anywhere:
#   tools/static_verify.sh <build-dir>
# Exit status is non-zero when any verdict contradicts its expectation.
set -euo pipefail

build_dir=${1:?usage: static_verify.sh <build-dir>}
# shellcheck source=tools/topology_matrix.sh
source "$(dirname "${BASH_SOURCE[0]}")/topology_matrix.sh"

fail=0
for entry in "${MCNET_VERIFY_MATRIX[@]}"; do
  read -r topology algorithm expectation <<< "${entry}"
  echo "== mcnet_verify --topology ${topology} --algorithm ${algorithm} --expect ${expectation} =="
  if ! "${build_dir}/tools/mcnet_verify" --topology "${topology}" \
       --algorithm "${algorithm}" --expect "${expectation}"; then
    echo "** FAILED: ${topology} ${algorithm} (expected ${expectation})"
    fail=1
  fi
done

for entry in "${MCNET_RELATION_MATRIX[@]}"; do
  read -r topology relation mode expectation <<< "${entry}"
  escape_args=()
  if [[ "${mode}" == "escape" ]]; then
    escape_args=(--escape-channels)
  fi
  echo "== mcnet_verify --topology ${topology} --relation ${relation} ${escape_args[*]:-} --expect ${expectation} =="
  if ! "${build_dir}/tools/mcnet_verify" --topology "${topology}" \
       --relation "${relation}" "${escape_args[@]}" --expect "${expectation}"; then
    echo "** FAILED: ${topology} relation ${relation} (expected ${expectation})"
    fail=1
  fi
done

# --json smoke: the structured report must carry the schema tag and agree
# with the text-mode verdicts (exit status still enforces --expect).
echo "== mcnet_verify --topology mesh:4x4 --relation adaptive-dual-path --escape-channels --json =="
json_out=$("${build_dir}/tools/mcnet_verify" --topology mesh:4x4 \
           --relation adaptive-dual-path --escape-channels --expect clean --json) || fail=1
if ! grep -q '"schema": "mcnet-verify-v1"' <<< "${json_out}"; then
  echo "** FAILED: --json output is missing the mcnet-verify-v1 schema tag"
  fail=1
fi

if [[ ${fail} -ne 0 ]]; then
  echo "static verify: FAILURES (see above)"
  exit 1
fi
echo "static verify: all $((${#MCNET_VERIFY_MATRIX[@]} + ${#MCNET_RELATION_MATRIX[@]})) checks match their expectations"
