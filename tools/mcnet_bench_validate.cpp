// mcnet_bench_validate -- check bench result files against the
// "mcnet-bench-v1" schema (see src/obs/bench_schema.hpp).  CI runs every
// bench at a smoke scale and feeds the JSON through this tool, so a bench
// that silently stops emitting points (or emits a bogus CI) fails the
// build instead of rotting.
//
// Usage: mcnet_bench_validate FILE...
// Exit status: 0 when every file parses and validates, 1 otherwise.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/bench_schema.hpp"
#include "obs/json.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE...\n", argv[0]);
    return 1;
  }
  bool all_ok = true;
  for (int i = 1; i < argc; ++i) {
    const char* path = argv[i];
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", path);
      all_ok = false;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string error;
    const auto doc = mcnet::obs::Json::parse(buffer.str(), &error);
    if (!doc) {
      std::fprintf(stderr, "%s: parse error: %s\n", path, error.c_str());
      all_ok = false;
      continue;
    }
    if (!mcnet::obs::validate_bench_json(*doc, &error)) {
      std::fprintf(stderr, "%s: schema violation: %s\n", path, error.c_str());
      all_ok = false;
      continue;
    }
    std::size_t points = 0;
    if (const mcnet::obs::Json* series = doc->find("series")) {
      for (const auto& s : series->items()) {
        if (const mcnet::obs::Json* p = s.find("points")) points += p->size();
      }
    }
    std::printf("%s: ok (%zu series, %zu points)\n", path,
                doc->find("series")->size(), points);
  }
  return all_ok ? 0 : 1;
}
