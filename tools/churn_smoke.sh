#!/usr/bin/env bash
# Smoke-run the group-churn bench at a small scale, validate its JSON
# against the mcnet-bench-v1 schema, and gate on the healthy baseline:
# the zero-churn point of the "churn" series must keep a delivered-in-view
# rate >= 0.99 (a quiet group with a working detector loses nothing).
# Run from anywhere:
#   tools/churn_smoke.sh <build-dir> [out-dir]
set -euo pipefail

build_dir=${1:?usage: churn_smoke.sh <build-dir> [out-dir]}
out_dir=${2:-"${build_dir}/churn-smoke"}
mkdir -p "${out_dir}"

export MCNET_BENCH_SCALE=${MCNET_BENCH_SCALE:-0.5}
export MCNET_BENCH_JSON_DIR="${out_dir}"

echo "== bench_group_churn (scale ${MCNET_BENCH_SCALE}) =="
"${build_dir}/bench/bench_group_churn"

"${build_dir}/tools/mcnet_bench_validate" "${out_dir}/bench_group_churn.json"

python3 - "${out_dir}/bench_group_churn.json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
series = {s["name"]: s["points"] for s in doc["series"]}
for name in ("size", "churn", "window"):
    assert series.get(name), f"missing series {name!r}"

zero = [p for p in series["churn"] if p["x"] == 0.0]
assert zero, "churn series has no zero-churn baseline point"
rate = zero[0]["y"]
assert rate >= 0.99, f"zero-churn delivered-in-view rate regressed: {rate}"

# Safety invariant surfaced by the bench: every point accounts for every
# owed destination outcome.
for name, points in series.items():
    for p in points:
        owed = p["delivered_in_view"] + p["evicted"] + p["dropped"] + p["unreachable"]
        assert owed == p["owed"], f"{name} x={p['x']}: outcome counts {owed} != owed {p['owed']}"

print(f"churn smoke: zero-churn delivered-in-view rate {rate:.4f} (>= 0.99)")
EOF
