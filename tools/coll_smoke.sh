#!/usr/bin/env bash
# Smoke-run the collectives bench at a small scale, validate its JSON
# against the mcnet-bench-v1 schema, and gate on two invariants:
#   * the zero-churn allreduce point completes every phase with zero
#     re-issued chunks (a quiet view never restarts, so nothing is ever
#     sent twice), and
#   * the all-to-all broadcast step model completes on every torus within
#     2x the Jung & Sakho lower bound ceil((k^n - 1) / (2n)).
# Run from anywhere:
#   tools/coll_smoke.sh <build-dir> [out-dir]
set -euo pipefail

build_dir=${1:?usage: coll_smoke.sh <build-dir> [out-dir]}
out_dir=${2:-"${build_dir}/coll-smoke"}
mkdir -p "${out_dir}"

export MCNET_BENCH_SCALE=${MCNET_BENCH_SCALE:-0.5}
export MCNET_BENCH_JSON_DIR="${out_dir}"

echo "== bench_collectives (scale ${MCNET_BENCH_SCALE}) =="
"${build_dir}/bench/bench_collectives"

"${build_dir}/tools/mcnet_bench_validate" "${out_dir}/bench_collectives.json"

python3 - "${out_dir}/bench_collectives.json" <<'EOF'
import json, sys

doc = json.load(open(sys.argv[1]))
series = {s["name"]: s["points"] for s in doc["series"]}
for name in ("size", "chunk", "churn", "atab", "atab_model"):
    assert series.get(name), f"missing series {name!r}"

# Healthy baseline: a quiet view never re-issues a chunk and every
# started phase completes.
zero = [p for p in series["churn"] if p["x"] == 0.0]
assert zero, "churn series has no zero-churn baseline point"
p = zero[0]
assert p["chunks_reissued"] == 0, f"zero-churn allreduce re-issued chunks: {p['chunks_reissued']}"
assert p["phases_completed"] == p["phases_started"] > 0, (
    f"zero-churn phases {p['phases_completed']}/{p['phases_started']}")

# Exactly-once reduction holds on every point of every series.
for name, points in series.items():
    for pt in points:
        if "double_applies" in pt:
            assert pt["double_applies"] == 0, f"{name} x={pt['x']}: double-applied contributions"

# All-to-all broadcast step model: complete, and within 2x the Jung &
# Sakho bound ceil((k^n - 1) / (2n)) on every torus.
for pt in series["atab_model"]:
    k = int(pt["x"])
    lb = pt["atab_lower_bound"]
    steps = pt["atab_steps"]
    assert pt["atab_complete"], f"atab k={k}: schedule incomplete"
    assert lb == (pt["nodes"] - 1 + 3) // 4, f"atab k={k}: bound mismatch ({lb})"
    assert steps >= lb, f"atab k={k}: steps {steps} beat the lower bound {lb}"
    assert steps <= 2 * lb, f"atab k={k}: steps {steps} exceed 2x bound {lb}"

print(f"coll smoke: zero-churn allreduce reissued 0 chunks across "
      f"{zero[0]['phases_completed']} phases; atab within 2x bound on "
      f"{len(series['atab_model'])} tori")
EOF
