#!/usr/bin/env bash
# Smoke-run one bench per family at a tiny scale and validate every JSON
# result file against the mcnet-bench-v1 schema.  Run from anywhere:
#   tools/bench_smoke.sh <build-dir> [out-dir]
# Exit status is non-zero when a bench fails or emits invalid JSON.
set -euo pipefail

build_dir=${1:?usage: bench_smoke.sh <build-dir> [out-dir]}
out_dir=${2:-"${build_dir}/bench-smoke"}
mkdir -p "${out_dir}"

# shellcheck source=tools/topology_matrix.sh
source "$(dirname "${BASH_SOURCE[0]}")/topology_matrix.sh"

export MCNET_BENCH_SCALE=${MCNET_BENCH_SCALE:-0.05}
export MCNET_BENCH_JSON_DIR="${out_dir}"

# One representative per family: static sweep, dynamic load sweep, dynamic
# destination sweep, ablation, fault robustness, analytic tables, and the
# mixed-traffic extension.
benches=(
  bench_fig7_01_mp_mesh       # static sweep
  bench_fig7_08_dyn_load_dc   # dynamic load sweep
  bench_fig7_09_dyn_dests_dc  # dynamic destination sweep
  bench_ablation_vct          # ablation (two sweeps, one JSON)
  bench_fault_sweep           # reliable delivery under faults
  bench_tables_ch5            # analytic tables
  bench_fig2_3_switching      # switching-model comparison
  bench_route_throughput      # batch routing engine throughput
)

for bench in "${benches[@]}"; do
  echo "== ${bench} (scale ${MCNET_BENCH_SCALE}) =="
  "${build_dir}/bench/${bench}" > /dev/null
done

# The simulator driver's trace output must stay loadable too.
"${build_dir}/tools/mcnet_sim" --topology "${MCNET_SIM_TOPOLOGY}" --algorithm dual-path \
  --dests 5 --messages 50 --interarrival-us 300 \
  --trace "${out_dir}/mcnet_sim_trace.json" --metrics > /dev/null
python3 - "${out_dir}/mcnet_sim_trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert isinstance(doc["traceEvents"], list) and doc["traceEvents"], "empty trace"
EOF

"${build_dir}/tools/mcnet_bench_validate" "${out_dir}"/bench_*.json
echo "bench smoke: all JSON results valid"
