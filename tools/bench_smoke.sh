#!/usr/bin/env bash
# Smoke-run one bench per family at a tiny scale and validate every JSON
# result file against the mcnet-bench-v1 schema.  Run from anywhere:
#   tools/bench_smoke.sh <build-dir> [out-dir]
# Exit status is non-zero when a bench fails or emits invalid JSON.
set -euo pipefail

build_dir=${1:?usage: bench_smoke.sh <build-dir> [out-dir]}
out_dir=${2:-"${build_dir}/bench-smoke"}
mkdir -p "${out_dir}"

# shellcheck source=tools/topology_matrix.sh
source "$(dirname "${BASH_SOURCE[0]}")/topology_matrix.sh"

export MCNET_BENCH_SCALE=${MCNET_BENCH_SCALE:-0.05}
export MCNET_BENCH_JSON_DIR="${out_dir}"

# One representative per family: static sweep, dynamic load sweep, dynamic
# destination sweep, ablation, fault robustness, analytic tables, and the
# mixed-traffic extension.
benches=(
  bench_fig7_01_mp_mesh       # static sweep
  bench_fig7_08_dyn_load_dc   # dynamic load sweep
  bench_fig7_09_dyn_dests_dc  # dynamic destination sweep
  bench_ablation_vct          # ablation (two sweeps, one JSON)
  bench_fault_sweep           # reliable delivery under faults
  bench_tables_ch5            # analytic tables
  bench_fig2_3_switching      # switching-model comparison
  bench_route_throughput      # batch routing engine throughput
)

for bench in "${benches[@]}"; do
  echo "== ${bench} (scale ${MCNET_BENCH_SCALE}) =="
  "${build_dir}/bench/${bench}" > /dev/null
done

# The kernel bench runs at full scale: its headline gate compares the
# calendar-vs-heap speedup against the committed baseline, and that ratio
# only develops once the heap's stale-backstop pending set has had time to
# bloat -- at 5 % scale the heap never degrades and the ratio undershoots.
echo "== bench_kernel (scale 1.0, headline gate) =="
MCNET_BENCH_SCALE=1.0 "${build_dir}/bench/bench_kernel" > /dev/null

# The simulator driver's trace output must stay loadable too.
"${build_dir}/tools/mcnet_sim" --topology "${MCNET_SIM_TOPOLOGY}" --algorithm dual-path \
  --dests 5 --messages 50 --interarrival-us 300 \
  --trace "${out_dir}/mcnet_sim_trace.json" --metrics > /dev/null
python3 - "${out_dir}/mcnet_sim_trace.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert isinstance(doc["traceEvents"], list) and doc["traceEvents"], "empty trace"
EOF

"${build_dir}/tools/mcnet_bench_validate" "${out_dir}"/bench_*.json
echo "bench smoke: all JSON results valid"

# Kernel regression gate.  Absolute events/sec are machine-dependent, so the
# gate compares the machine-independent calendar-vs-heap speedup ratio: the
# smoke run must keep >= 0.9x the committed BENCH_kernel.json headline ratio.
repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
python3 - "${out_dir}/bench_kernel.json" "${repo_root}/BENCH_kernel.json" <<'EOF'
import json, sys
smoke = json.load(open(sys.argv[1]))["meta"]["headline"]
base = json.load(open(sys.argv[2]))["meta"]["headline"]
floor = 0.9 * base["speedup"]
print(f"kernel gate: smoke speedup {smoke['speedup']:.2f}x vs "
      f"baseline {base['speedup']:.2f}x (floor {floor:.2f}x)")
assert smoke["speedup"] >= floor, "kernel headline speedup regressed"
EOF
echo "bench smoke: kernel headline gate passed"
