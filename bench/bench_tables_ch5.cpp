// Tables 5.1-5.4: the Hamiltonian cycles and sorting keys of the sorted-MP
// examples, printed exactly as the dissertation tabulates them (1-based h,
// f relative to the paper's cycle start).
#include <cstdio>

#include "bench_common.hpp"
#include "topology/hamiltonian.hpp"

namespace {

using namespace mcnet;

/// Record a cycle table as two series: node -> h(x) and node -> f(x).
void record_cycle(bench::JsonReporter& json, const char* prefix,
                  const ham::HamiltonCycle& c, topo::NodeId u0) {
  const std::uint32_t h0 = c.position(u0) + 1;
  for (topo::NodeId x = 0; x < c.size(); ++x) {
    obs::Json h = obs::Json::object();
    h["x"] = obs::Json(x);
    h["y"] = obs::Json(c.position(x) + 1);
    json.add_point(std::string(prefix) + ":h", std::move(h));
    obs::Json f = obs::Json::object();
    f["x"] = obs::Json(x);
    f["y"] = obs::Json(c.key_from(u0, x) + h0);
    json.add_point(std::string(prefix) + ":f", std::move(f));
  }
}

void print_mesh_tables(bench::JsonReporter& json) {
  const topo::Mesh2D mesh(4, 4);
  const ham::HamiltonCycle c = ham::mesh_comb_cycle(mesh);
  record_cycle(json, "mesh4x4", c, 9);

  std::printf("=== Table 5.1: Hamilton cycle and mapping h of a 4x4 mesh ===\n");
  std::printf("%6s %6s\n", "h(x)", "x");
  for (std::uint32_t i = 0; i < c.size(); ++i) {
    std::printf("%6u %6u\n", i + 1, c.order()[i]);
  }

  const topo::NodeId u0 = 9;
  std::printf("\n=== Table 5.2: sorting key f(x) and h(x), 4x4 mesh, u0 = 9 ===\n");
  std::printf("%6s %6s %6s\n", "x", "h(x)", "f(x)");
  const std::uint32_t h0 = c.position(u0) + 1;  // paper's h is 1-based
  for (topo::NodeId x = 0; x < c.size(); ++x) {
    std::printf("%6u %6u %6u\n", x, c.position(x) + 1, c.key_from(u0, x) + h0);
  }
}

void print_cube_tables(bench::JsonReporter& json) {
  const topo::Hypercube cube(4);
  const ham::HamiltonCycle c = ham::hypercube_gray_cycle(cube);
  record_cycle(json, "cube4", c, 0b0011);

  std::printf("\n=== Table 5.3: Hamilton cycle and mapping h of a 4-cube ===\n");
  std::printf("%6s %8s\n", "h(x)", "x");
  for (std::uint32_t i = 0; i < c.size(); ++i) {
    const topo::NodeId x = c.order()[i];
    std::printf("%6u %u%u%u%u\n", i + 1, (x >> 3) & 1, (x >> 2) & 1, (x >> 1) & 1, x & 1);
  }

  const topo::NodeId u0 = 0b0011;  // the Section 5.4 example source
  std::printf("\n=== Table 5.4: sorting key f(x) and h(x), 4-cube, u0 = 0011 ===\n");
  std::printf("%8s %6s %6s\n", "x", "h(x)", "f(x)");
  const std::uint32_t h0 = c.position(u0) + 1;
  for (topo::NodeId x = 0; x < c.size(); ++x) {
    std::printf("  %u%u%u%u %6u %6u\n", (x >> 3) & 1, (x >> 2) & 1, (x >> 1) & 1, x & 1,
                c.position(x) + 1, c.key_from(u0, x) + h0);
  }
}

}  // namespace

int main() {
  mcnet::bench::JsonReporter json("bench_tables_ch5");
  print_mesh_tables(json);
  print_cube_tables(json);
  return 0;
}
