// Robustness sweep: reliable multicast delivery under increasing link
// failure rates.  For each failed-link fraction an 8x8 mesh runs a seeded
// stream of multicast_reliable() sends while the fault injector cuts a
// random sample of links; the CSV row reports what fraction of
// destinations was ultimately delivered, at what latency, and how much
// retry budget it took.
//
// Output: CSV on stdout (scale message count with MCNET_BENCH_SCALE).
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_router.hpp"
#include "service/multicast_service.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;

struct SweepRow {
  double fraction = 0.0;
  std::size_t failed_links = 0;
  std::uint32_t messages = 0;
  std::uint64_t destinations = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t unreachable = 0;
  double latency_sum_s = 0.0;
  std::uint64_t attempts_sum = 0;
};

SweepRow run_fraction(double fraction, std::uint32_t messages, std::uint64_t seed) {
  const topo::Mesh2D mesh(8, 8);
  auto faults = std::make_shared<fault::FaultState>(mesh);
  const auto router =
      fault::make_fault_aware_router(mesh, mcast::Algorithm::kDualPath, faults);
  evsim::Scheduler sched;
  const worm::WormholeParams params{.flit_time = 50e-9, .message_flits = 128,
                                    .channel_copies = 1};
  svc::MulticastService service(*router, params, sched);

  // Failures land during the first half of the send window, so the stream
  // sees healthy, degrading, and settled phases.
  const double spacing = 10e-6;
  const double window = spacing * messages;
  const fault::FaultPlan plan =
      fault::FaultPlan::random_link_failures(mesh, fraction, 0.0, window / 2, seed);
  fault::schedule_fault_plan(service.network(), sched, plan);

  SweepRow row;
  row.fraction = fraction;
  row.failed_links = plan.events.size() / 2;  // two directed channels per link
  row.messages = messages;

  evsim::Rng rng(seed * 7919 + 17);
  for (std::uint32_t i = 0; i < messages; ++i) {
    const topo::NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const auto dests =
        rng.sample_destinations(mesh.num_nodes(), src, rng.uniform_int(1, 8));
    sched.schedule_at(static_cast<double>(i) * spacing, [&service, &row, src, dests] {
      service.multicast_reliable({src, dests}, [&row](const svc::DeliveryReport& r) {
        for (const auto& d : r.destinations) {
          ++row.destinations;
          row.attempts_sum += d.attempts;
          switch (d.status) {
            case svc::DeliveryReport::Status::kDelivered:
              ++row.delivered;
              row.latency_sum_s += d.latency_s;
              break;
            case svc::DeliveryReport::Status::kDropped:
              ++row.dropped;
              break;
            case svc::DeliveryReport::Status::kUnreachable:
              ++row.unreachable;
              break;
          }
        }
      });
    });
  }
  sched.run();
  return row;
}

}  // namespace

int main() {
  mcnet::bench::JsonReporter json("bench_fault_sweep");
  const std::uint32_t messages = mcnet::bench::scaled_runs(300);
  std::printf(
      "fraction,failed_links,messages,destinations,delivered,dropped,unreachable,"
      "delivery_rate,mean_latency_us,mean_attempts\n");
  for (const double fraction : {0.0, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    const SweepRow row = run_fraction(fraction, messages, 2026);
    const double rate =
        row.destinations == 0
            ? 0.0
            : static_cast<double>(row.delivered) / static_cast<double>(row.destinations);
    const double mean_latency_us =
        row.delivered == 0 ? 0.0 : row.latency_sum_s / static_cast<double>(row.delivered) * 1e6;
    const double mean_attempts =
        row.destinations == 0
            ? 0.0
            : static_cast<double>(row.attempts_sum) / static_cast<double>(row.destinations);
    std::printf("%.2f,%zu,%u,%llu,%llu,%llu,%llu,%.4f,%.3f,%.3f\n", row.fraction,
                row.failed_links, row.messages,
                static_cast<unsigned long long>(row.destinations),
                static_cast<unsigned long long>(row.delivered),
                static_cast<unsigned long long>(row.dropped),
                static_cast<unsigned long long>(row.unreachable), rate, mean_latency_us,
                mean_attempts);
    mcnet::obs::Json p = mcnet::obs::Json::object();
    p["x"] = mcnet::obs::Json(fraction);
    p["y"] = mcnet::obs::Json(rate);
    p["failed_links"] = mcnet::obs::Json(row.failed_links);
    p["destinations"] = mcnet::obs::Json(row.destinations);
    p["delivered"] = mcnet::obs::Json(row.delivered);
    p["dropped"] = mcnet::obs::Json(row.dropped);
    p["unreachable"] = mcnet::obs::Json(row.unreachable);
    p["mean_latency_us"] = mcnet::obs::Json(mean_latency_us);
    p["mean_attempts"] = mcnet::obs::Json(mean_attempts);
    json.add_point("delivery_rate", std::move(p));
  }
  return 0;
}
