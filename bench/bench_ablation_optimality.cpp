// Ablation: how far are the Chapter 5/6 heuristics from the true optimum?
// Chapter 4 proves the optimal problems NP-complete, so the paper never
// quantifies the gap; on small instances the exact solvers of core/exact
// make the measurement possible.  Reported per model:
//   MP  : sorted-MP traffic / Held-Karp optimal-walk bound
//   MC  : sorted-MC traffic / optimal-cycle bound
//   ST  : greedy-ST traffic / Dreyfus-Wagner optimum
//   MS  : dual-/multi-path traffic / optimal-star bound
#include "bench_common.hpp"
#include "core/exact.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;
using mcast::MulticastRequest;

template <typename Heuristic, typename Optimal>
std::pair<double, double> gap(const topo::Topology& t, std::uint32_t k, std::uint32_t runs,
                              std::uint64_t seed, const Heuristic& heuristic,
                              const Optimal& optimal) {
  evsim::Rng rng(seed);
  double ratio_sum = 0.0, worst = 0.0;
  for (std::uint32_t r = 0; r < runs; ++r) {
    const topo::NodeId src = rng.uniform_int(0, t.num_nodes() - 1);
    const MulticastRequest req{src, rng.sample_destinations(t.num_nodes(), src, k)};
    const double h = static_cast<double>(heuristic(req));
    const double o = static_cast<double>(optimal(req));
    const double ratio = o > 0 ? h / o : 1.0;
    ratio_sum += ratio;
    worst = std::max(worst, ratio);
  }
  return {ratio_sum / runs, worst};
}

void add_gap_point(bench::JsonReporter& json, const std::string& series, std::uint32_t k,
                   std::uint32_t runs, double mean, double worst) {
  obs::Json p = obs::Json::object();
  p["x"] = obs::Json(k);
  p["y"] = obs::Json(mean);
  p["worst"] = obs::Json(worst);
  p["runs"] = obs::Json(runs);
  json.add_point(series, std::move(p));
}

template <typename TopologyT, typename SuiteT>
void run(const char* title, const char* prefix, const TopologyT& t, const SuiteT& suite,
         bench::JsonReporter& json) {
  const std::uint32_t runs = bench::scaled_runs(120);
  std::printf("%s (runs/point = %u)\n", title, runs);
  std::printf("%4s | %9s %9s | %9s %9s | %9s %9s | %9s %9s\n", "k", "MP mean", "worst",
              "MC mean", "worst", "ST mean", "worst", "MS mean", "worst");
  for (const std::uint32_t k : {2u, 4u, 6u, 8u}) {
    const auto [mp_mean, mp_worst] = gap(
        t, k, runs, 11 * k,
        [&](const MulticastRequest& r) { return suite.route(Algorithm::kSortedMP, r).traffic(); },
        [&](const MulticastRequest& r) { return mcast::exact::multicast_path_optimum_bound(t, r); });
    const auto [mc_mean, mc_worst] = gap(
        t, k, runs, 13 * k,
        [&](const MulticastRequest& r) { return suite.route(Algorithm::kSortedMC, r).traffic(); },
        [&](const MulticastRequest& r) { return mcast::exact::multicast_cycle_optimum_bound(t, r); });
    const auto [st_mean, st_worst] = gap(
        t, k, runs, 17 * k,
        [&](const MulticastRequest& r) { return suite.route(Algorithm::kGreedyST, r).traffic(); },
        [&](const MulticastRequest& r) { return mcast::exact::steiner_tree_optimum(t, r); });
    const auto [ms_mean, ms_worst] = gap(
        t, k, runs, 19 * k,
        [&](const MulticastRequest& r) { return suite.route(Algorithm::kDualPath, r).traffic(); },
        [&](const MulticastRequest& r) { return mcast::exact::multicast_star_optimum_bound(t, r); });
    std::printf("%4u | %9.3f %9.3f | %9.3f %9.3f | %9.3f %9.3f | %9.3f %9.3f\n", k,
                mp_mean, mp_worst, mc_mean, mc_worst, st_mean, st_worst, ms_mean, ms_worst);
    add_gap_point(json, std::string(prefix) + ":MP", k, runs, mp_mean, mp_worst);
    add_gap_point(json, std::string(prefix) + ":MC", k, runs, mc_mean, mc_worst);
    add_gap_point(json, std::string(prefix) + ":ST", k, runs, st_mean, st_worst);
    add_gap_point(json, std::string(prefix) + ":MS", k, runs, ms_mean, ms_worst);
    std::fflush(stdout);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  mcnet::bench::JsonReporter json("bench_ablation_optimality");
  {
    const topo::Mesh2D mesh(8, 8);
    const mcast::MeshRoutingSuite suite(mesh);
    run("=== Ablation: heuristic / optimal traffic ratio, 8x8 mesh ===", "mesh", mesh, suite,
        json);
  }
  {
    const topo::Hypercube cube(6);
    const mcast::CubeRoutingSuite suite(cube);
    run("=== Ablation: heuristic / optimal traffic ratio, 6-cube ===", "cube", cube, suite,
        json);
  }
  return 0;
}
