// Extension study (Section 8.2): interaction between unicast and multicast
// traffic.  Nodes generate a mix -- a fraction of messages are plain
// unicasts (1 destination), the rest are 10-destination multicasts -- and
// we measure how the multicast algorithm choice affects everyone's
// latency.
#include "bench_common.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

worm::RouteBuilder mixed_builder(const mcast::MeshRoutingSuite& suite, Algorithm algo,
                                 double unicast_fraction, std::uint64_t seed) {
  auto rng = std::make_shared<evsim::Rng>(seed);
  return [&suite, algo, unicast_fraction, rng](topo::NodeId src,
                                               const std::vector<topo::NodeId>& dests) {
    mcast::MulticastRequest req{src, dests};
    if (rng->uniform(0.0, 1.0) < unicast_fraction) {
      req.destinations.resize(1);  // degrade to a unicast
    }
    // Unicasts ride the same deadlock-free path machinery (a 1-destination
    // dual-path is simply the R route to that destination).
    return worm::make_worm_specs(suite.mesh(), suite.route(algo, req), 1);
  };
}

}  // namespace

int main() {
  const topo::Mesh2D mesh(8, 8);
  const mcast::MeshRoutingSuite suite(mesh);

  for (const double frac : {0.0, 0.5, 0.9}) {
    bench::DynamicSweepConfig cfg;
    cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 1};
    cfg.avg_destinations = 10;
    char title[160];
    std::snprintf(title, sizeof title,
                  "=== Mixed traffic: %.0f%% unicast / %.0f%% 10-dest multicast ===",
                  frac * 100, (1 - frac) * 100);
    bench::run_dynamic_load_sweep(
        title, mesh, {1000, 500, 300, 200, 150},
        {{"dual-path", mixed_builder(suite, Algorithm::kDualPath, frac, 1)},
         {"multi-path", mixed_builder(suite, Algorithm::kMultiPath, frac, 2)}},
        cfg);
  }
  return 0;
}
