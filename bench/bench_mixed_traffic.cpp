// Extension study (Section 8.2): interaction between unicast and multicast
// traffic.  Nodes generate a mix -- a fraction of messages are plain
// unicasts (1 destination), the rest are 10-destination multicasts -- and
// we measure how the multicast algorithm choice affects everyone's
// latency.
#include <mutex>

#include "bench_common.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

// Router decorator degrading a fraction of requests to plain unicasts
// before delegating -- unicasts ride the same deadlock-free path machinery
// (a 1-destination dual-path is simply the R route to that destination).
// Degraded requests repeat often, so the inner route cache earns real hits.
class MixedTrafficRouter final : public mcast::Router {
 public:
  MixedTrafficRouter(std::shared_ptr<const mcast::Router> inner, double unicast_fraction,
                     std::uint64_t seed)
      : inner_(std::move(inner)), unicast_fraction_(unicast_fraction), rng_(seed) {}

  [[nodiscard]] mcast::MulticastRoute route(
      const mcast::MulticastRequest& request) const override {
    bool degrade = false;
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      degrade = rng_.uniform(0.0, 1.0) < unicast_fraction_;
    }
    if (!degrade || request.destinations.size() <= 1) return inner_->route(request);
    mcast::MulticastRequest unicast{request.source, {request.destinations.front()}};
    return inner_->route(unicast);
  }

  [[nodiscard]] std::vector<worm::WormSpec> specs(
      const mcast::MulticastRoute& route) const override {
    return inner_->specs(route);
  }
  [[nodiscard]] std::string_view name() const override { return inner_->name(); }
  [[nodiscard]] mcast::Algorithm algorithm() const override { return inner_->algorithm(); }
  [[nodiscard]] bool deadlock_free() const override { return inner_->deadlock_free(); }
  [[nodiscard]] const topo::Topology& topology() const override {
    return inner_->topology();
  }
  [[nodiscard]] std::uint8_t channel_copies() const override {
    return inner_->channel_copies();
  }

 private:
  std::shared_ptr<const mcast::Router> inner_;
  double unicast_fraction_;
  mutable std::mutex mutex_;
  mutable evsim::Rng rng_;
};

bench::DynamicSeries mixed_series(const topo::Topology& t, Algorithm algo, double frac,
                                  std::uint64_t seed) {
  char name[64];
  std::snprintf(name, sizeof name, "%s u=%.0f%%", std::string(mcast::algorithm_name(algo)).c_str(),
                frac * 100);
  return {name, std::make_shared<MixedTrafficRouter>(mcast::make_caching_router(t, algo, 1),
                                                     frac, seed)};
}

}  // namespace

int main() {
  mcnet::bench::JsonReporter json("bench_mixed_traffic");
  const topo::Mesh2D mesh(8, 8);

  for (const double frac : {0.0, 0.5, 0.9}) {
    bench::DynamicSweepConfig cfg;
    cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 1};
    cfg.avg_destinations = 10;
    char title[160];
    std::snprintf(title, sizeof title,
                  "=== Mixed traffic: %.0f%% unicast / %.0f%% 10-dest multicast ===",
                  frac * 100, (1 - frac) * 100);
    bench::run_dynamic_load_sweep(title, mesh, {1000, 500, 300, 200, 150},
                                  {mixed_series(mesh, Algorithm::kDualPath, frac, 1),
                                   mixed_series(mesh, Algorithm::kMultiPath, frac, 2)},
                                  cfg, &json);
  }
  return 0;
}
