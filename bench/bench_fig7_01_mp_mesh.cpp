// Figure 7.1: traffic of the sorted MP algorithm on a 32x32 mesh versus
// multiple one-to-one (unicast) and broadcast delivery, for 1..900
// destinations, averaged over random multicast sets.
#include "bench_common.hpp"

int main() {
  mcnet::bench::JsonReporter json("bench_fig7_01_mp_mesh");
  using namespace mcnet;
  using mcast::Algorithm;
  const topo::Mesh2D mesh(32, 32);
  const mcast::MeshRoutingSuite suite(mesh);

  const auto algo = [&suite](Algorithm a) {
    return [&suite, a](const mcast::MulticastRequest& req) { return suite.route(a, req); };
  };
  bench::run_static_sweep(
      "=== Figure 7.1: sorted MP algorithm on a 32x32 mesh ===", mesh,
      {1, 2, 5, 10, 20, 50, 100, 150, 200, 300, 400, 500, 600, 700, 800, 900},
      {{"sorted-MP", algo(Algorithm::kSortedMP)},
       {"sorted-MC", algo(Algorithm::kSortedMC)},
       {"multi-unicast", algo(Algorithm::kMultiUnicast)},
       {"broadcast", algo(Algorithm::kBroadcast)}}, &json);
  return 0;
}
