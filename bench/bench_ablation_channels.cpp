// Ablation: channel provisioning and adaptive path diversity under load
// (the Section 8.2 "use of virtual channels / adaptive routing" follow-up
// directions).
//
//  * wires: 1 vs 2 physical copies per channel at full per-copy bandwidth
//    (extra wires, as in the double-channel tree network);
//  * virtual channels: V channels statically sharing one link's bandwidth
//    (flit time scaled by V -- the conservative static-sharing model);
//  * adaptive: randomised monotone shortest paths vs the deterministic
//    label-extremal rule.
#include "bench_common.hpp"
#include "core/adaptive_path.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

worm::RouteBuilder adaptive_builder(const mcast::MeshRoutingSuite& suite,
                                    std::uint8_t copies, std::uint64_t seed) {
  // One RNG per builder; the simulator is single-threaded per experiment.
  auto rng = std::make_shared<evsim::Rng>(seed);
  return [&suite, copies, rng](topo::NodeId src, const std::vector<topo::NodeId>& dests) {
    return worm::make_worm_specs(
        suite.mesh(),
        adaptive_dual_path_route(suite.mesh(), suite.labeling(),
                                 mcast::MulticastRequest{src, dests}, *rng),
        copies);
  };
}

}  // namespace

int main() {
  const topo::Mesh2D mesh(8, 8);
  const mcast::MeshRoutingSuite suite(mesh);

  {
    bench::DynamicSweepConfig cfg;
    cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 1};
    cfg.avg_destinations = 10;
    std::vector<bench::DynamicSeries> series;
    series.push_back({"dual 1 copy", bench::mesh_builder(suite, Algorithm::kDualPath, 1)});
    series.push_back({"dual adaptive", adaptive_builder(suite, 1, 99)});
    bench::run_dynamic_load_sweep(
        "=== Ablation: deterministic vs adaptive dual-path, single channel ===", mesh,
        {1200, 600, 400, 300, 250, 200}, series, cfg);
  }
  {
    // Double wires: 2 copies at full bandwidth.
    bench::DynamicSweepConfig cfg;
    cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 2};
    cfg.avg_destinations = 10;
    bench::run_dynamic_load_sweep(
        "=== Ablation: dual-path on doubled physical channels (extra wires) ===", mesh,
        {1200, 600, 400, 300, 250, 200},
        {{"dual 2 copies", bench::mesh_builder(suite, Algorithm::kDualPath, 2)}}, cfg);
  }
  {
    // Virtual channels: V copies sharing one link's bandwidth -> flit time
    // scales by V (static-sharing approximation).
    for (const std::uint8_t vcs : {2, 4}) {
      bench::DynamicSweepConfig cfg;
      cfg.params = {.flit_time = 50e-9 * vcs,
                    .message_flits = 128,
                    .channel_copies = vcs};
      cfg.avg_destinations = 10;
      std::vector<double> loads = {1200, 600, 400, 300, 250, 200};
      bench::run_dynamic_load_sweep(
          "=== Ablation: dual-path with " + std::to_string(vcs) +
              " virtual channels (shared bandwidth) ===",
          mesh, loads,
          {{"dual " + std::to_string(vcs) + " VCs",
            bench::mesh_builder(suite, Algorithm::kDualPath, vcs)}},
          cfg);
    }
  }
  return 0;
}
