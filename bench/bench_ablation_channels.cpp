// Ablation: channel provisioning and adaptive path diversity under load
// (the Section 8.2 "use of virtual channels / adaptive routing" follow-up
// directions).
//
//  * wires: 1 vs 2 physical copies per channel at full per-copy bandwidth
//    (extra wires, as in the double-channel tree network);
//  * virtual channels: V channels statically sharing one link's bandwidth
//    (flit time scaled by V -- the conservative static-sharing model);
//  * adaptive: randomised monotone shortest paths vs the deterministic
//    label-extremal rule.
#include <mutex>

#include "bench_common.hpp"
#include "core/adaptive_path.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

// Randomised-adaptive dual-path as a Router: no Algorithm enumerator, so it
// plugs into the sweeps through its own adapter (RNG mutex-protected; each
// experiment's simulation is single-threaded but sweeps share the router).
class AdaptiveDualPathRouter final : public mcast::Router {
 public:
  AdaptiveDualPathRouter(const topo::Mesh2D& mesh, std::uint8_t copies, std::uint64_t seed)
      : mesh_(&mesh), labeling_(mesh), copies_(copies), rng_(seed) {}

  [[nodiscard]] mcast::MulticastRoute route(
      const mcast::MulticastRequest& request) const override {
    const std::lock_guard<std::mutex> lock(mutex_);
    return adaptive_dual_path_route(*mesh_, labeling_, request, rng_);
  }
  [[nodiscard]] std::vector<worm::WormSpec> specs(
      const mcast::MulticastRoute& route) const override {
    return worm::make_worm_specs(*mesh_, route, copies_);
  }
  [[nodiscard]] std::string_view name() const override { return "adaptive-dual-path"; }
  [[nodiscard]] mcast::Algorithm algorithm() const override {
    return mcast::Algorithm::kDualPath;
  }
  [[nodiscard]] bool deadlock_free() const override { return true; }
  [[nodiscard]] const topo::Topology& topology() const override { return *mesh_; }
  [[nodiscard]] std::uint8_t channel_copies() const override { return copies_; }

 private:
  const topo::Mesh2D* mesh_;
  ham::MeshBoustrophedonLabeling labeling_;
  std::uint8_t copies_;
  mutable std::mutex mutex_;
  mutable evsim::Rng rng_;
};

}  // namespace

int main() {
  mcnet::bench::JsonReporter json("bench_ablation_channels");
  const topo::Mesh2D mesh(8, 8);

  {
    bench::DynamicSweepConfig cfg;
    cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 1};
    cfg.avg_destinations = 10;
    std::vector<bench::DynamicSeries> series;
    series.push_back({"dual 1 copy", mcast::make_caching_router(mesh, Algorithm::kDualPath, 1)});
    series.push_back({"dual adaptive", std::make_shared<AdaptiveDualPathRouter>(mesh, 1, 99)});
    bench::run_dynamic_load_sweep(
        "=== Ablation: deterministic vs adaptive dual-path, single channel ===", mesh,
        {1200, 600, 400, 300, 250, 200}, series, cfg, &json);
  }
  {
    // Double wires: 2 copies at full bandwidth.
    bench::DynamicSweepConfig cfg;
    cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 2};
    cfg.avg_destinations = 10;
    bench::run_dynamic_load_sweep(
        "=== Ablation: dual-path on doubled physical channels (extra wires) ===", mesh,
        {1200, 600, 400, 300, 250, 200},
        {{"dual 2 copies", mcast::make_caching_router(mesh, Algorithm::kDualPath, 2)}}, cfg, &json);
  }
  {
    // Virtual channels: V copies sharing one link's bandwidth -> flit time
    // scales by V (static-sharing approximation).
    for (const std::uint8_t vcs : {2, 4}) {
      bench::DynamicSweepConfig cfg;
      cfg.params = {.flit_time = 50e-9 * vcs,
                    .message_flits = 128,
                    .channel_copies = vcs};
      cfg.avg_destinations = 10;
      std::vector<double> loads = {1200, 600, 400, 300, 250, 200};
      bench::run_dynamic_load_sweep(
          "=== Ablation: dual-path with " + std::to_string(vcs) +
              " virtual channels (shared bandwidth) ===",
          mesh, loads,
          {{"dual " + std::to_string(vcs) + " VCs",
            mcast::make_caching_router(mesh, Algorithm::kDualPath, vcs)}},
          cfg, &json);
    }
  }
  return 0;
}
