// Figure 7.5: traffic of the X-first and divided greedy multicast-tree
// algorithms on a 16x16 mesh, against the unicast / broadcast baselines.
#include "bench_common.hpp"

int main() {
  mcnet::bench::JsonReporter json("bench_fig7_05_mt_mesh");
  using namespace mcnet;
  using mcast::Algorithm;
  const topo::Mesh2D mesh(16, 16);
  const mcast::MeshRoutingSuite suite(mesh);

  const auto algo = [&suite](Algorithm a) {
    return [&suite, a](const mcast::MulticastRequest& req) { return suite.route(a, req); };
  };
  bench::run_static_sweep(
      "=== Figure 7.5: X-first vs divided greedy on a 16x16 mesh ===", mesh,
      {1, 2, 5, 10, 20, 40, 60, 80, 100, 130, 160, 200, 230},
      {{"X-first-MT", algo(Algorithm::kXFirstMT)},
       {"divided-greedy-MT", algo(Algorithm::kDividedGreedyMT)},
       {"multi-unicast", algo(Algorithm::kMultiUnicast)},
       {"broadcast", algo(Algorithm::kBroadcast)}}, &json);
  return 0;
}
