// Ablation: wormhole vs virtual cut-through under load (Section 2.2's
// qualitative comparison made quantitative).  Same dual-path routes, same
// workloads; the only difference is what a blocked message does -- stall
// in the network (wormhole) or buffer at the blocking node (VCT with
// unbounded buffers).  VCT postpones saturation because blocked messages
// stop holding upstream channels; at light load the two coincide.
#include "bench_common.hpp"

int main() {
  mcnet::bench::JsonReporter json("bench_ablation_vct");
  using namespace mcnet;
  using mcast::Algorithm;
  const topo::Mesh2D mesh(8, 8);

  for (const bool vct : {false, true}) {
    bench::DynamicSweepConfig cfg;
    cfg.params = {.flit_time = 50e-9,
                  .message_flits = 128,
                  .channel_copies = 1,
                  .virtual_cut_through = vct};
    cfg.avg_destinations = 10;
    bench::run_dynamic_load_sweep(
        std::string("=== Ablation: dual-path under ") +
            (vct ? "virtual cut-through" : "wormhole") + " switching ===",
        mesh, {1200, 600, 400, 300, 250, 200, 150},
        {{vct ? "dual-path (VCT)" : "dual-path (wormhole)",
          mcast::make_caching_router(mesh, Algorithm::kDualPath, 1)}},
        cfg, &json);
  }
  return 0;
}
