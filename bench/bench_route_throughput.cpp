// Routing-throughput bench for the batch engine: routes/sec of the scalar
// Router::route loop vs the batch Router::route_many path on a cached
// Zipf-popularity workload (the destination-set locality that makes route
// caching pay in dynamic traffic).
//
// Sweeps:
//   zipf:*       -- scalar vs batch throughput as the Zipf exponent of the
//                   destination-set popularity grows (more skew = more hits)
//   pool:*       -- scalar vs batch as the distinct-request pool outgrows
//                   the cache (hit ratio falls from ~100% towards 0)
//   batch_size   -- batch throughput as requests per route_many call grow
//   shards:*     -- batch + 4-thread contended scalar throughput vs the
//                   cache shard count (the RouteCacheConfig::shards default
//                   was picked from this series)
//
// The headline numbers (meta.headline) are the acceptance gate: batch
// route_many on the 16x16-mesh dual-path Zipf workload must beat the
// scalar loop by >= 2x routes/sec.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/route_cache.hpp"
#include "core/router.hpp"
#include "evsim/random.hpp"
#include "topology/mesh2d.hpp"
#include "wormhole/experiment.hpp"

namespace {

using namespace mcnet;

/// Zipf(s) sampler over [0, n): P(i) ~ 1/(i+1)^s via inverse-CDF binary
/// search (s = 0 degenerates to uniform).
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (double& c : cdf_) c /= total;
  }

  [[nodiscard]] std::size_t draw(evsim::Rng& rng) {
    const double u = rng.uniform(0.0, 1.0);
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1 : static_cast<std::size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

/// A pool of distinct random requests plus a Zipf-drawn usage sequence.
struct Workload {
  std::vector<mcast::MulticastRequest> pool;
  std::vector<mcast::MulticastRequest> sequence;  // materialised draws
};

Workload make_workload(const topo::Topology& t, std::size_t pool_size, double zipf_s,
                       std::uint32_t k, std::size_t length, std::uint64_t seed) {
  Workload w;
  evsim::Rng rng(seed);
  w.pool.reserve(pool_size);
  for (std::size_t i = 0; i < pool_size; ++i) {
    const topo::NodeId src = rng.uniform_int(0, t.num_nodes() - 1);
    w.pool.push_back(mcast::MulticastRequest{src, rng.sample_destinations(t.num_nodes(), src, k)});
  }
  ZipfSampler zipf(pool_size, zipf_s);
  w.sequence.reserve(length);
  for (std::size_t i = 0; i < length; ++i) w.sequence.push_back(w.pool[zipf.draw(rng)]);
  return w;
}

struct Throughput {
  double routes_per_s = 0.0;
  std::uint64_t traffic_sink = 0;  // defeats dead-code elimination
};

Throughput measure_scalar(const mcast::Router& router,
                          const std::vector<mcast::MulticastRequest>& seq) {
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  for (const mcast::MulticastRequest& req : seq) sink += router.route(req).traffic();
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  return {static_cast<double>(seq.size()) / dt.count(), sink};
}

Throughput measure_batch(const mcast::Router& router,
                         const std::vector<mcast::MulticastRequest>& seq,
                         std::size_t batch_size) {
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < seq.size(); i += batch_size) {
    const std::size_t n = std::min(batch_size, seq.size() - i);
    const mcast::RouteBatch batch =
        router.route_many(std::span<const mcast::MulticastRequest>(seq.data() + i, n));
    sink += batch.total_traffic();
  }
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  return {static_cast<double>(seq.size()) / dt.count(), sink};
}

/// Contended scalar throughput: `threads` workers route disjoint slices of
/// `seq` through one shared router (shard-lock pressure).
Throughput measure_scalar_mt(const mcast::Router& router,
                             const std::vector<mcast::MulticastRequest>& seq,
                             unsigned threads) {
  std::vector<std::uint64_t> sinks(threads, 0);
  const std::size_t slice = seq.size() / threads;
  const auto t0 = std::chrono::steady_clock::now();
  worm::parallel_for(
      threads,
      [&](std::size_t w) {
        const std::size_t begin = w * slice;
        const std::size_t end = w + 1 == threads ? seq.size() : begin + slice;
        std::uint64_t sink = 0;
        for (std::size_t i = begin; i < end; ++i) sink += router.route(seq[i]).traffic();
        sinks[w] = sink;
      },
      threads);
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  std::uint64_t sink = 0;
  for (const std::uint64_t s : sinks) sink += s;
  return {static_cast<double>(seq.size()) / dt.count(), sink};
}

/// Repeat a measurement and keep the fastest run: throughput minima are
/// scheduling noise, not signal, and every rep sees identical cache state
/// (the caches are pre-warmed), so max is the honest steady-state figure.
template <typename Fn>
Throughput best_of(int reps, Fn&& fn) {
  Throughput best;
  for (int r = 0; r < reps; ++r) {
    const Throughput t = fn();
    best.traffic_sink = t.traffic_sink;
    if (t.routes_per_s > best.routes_per_s) best.routes_per_s = t.routes_per_s;
  }
  return best;
}

obs::Json point(double x, const Throughput& t, const mcast::CachingRouter* cache) {
  obs::Json p = obs::Json::object();
  p["x"] = obs::Json(x);
  p["y"] = obs::Json(t.routes_per_s);
  p["routes_per_s"] = obs::Json(t.routes_per_s);
  if (cache != nullptr) {
    const mcast::RouteCacheStats st = cache->stats();
    p["hit_rate"] = obs::Json(st.hit_rate());
    p["batch_dedup"] = obs::Json(st.batch_dedup);
  }
  return p;
}

}  // namespace

int main() {
  using namespace mcnet;
  bench::JsonReporter json("bench_route_throughput");

  const topo::Mesh2D mesh(16, 16);
  const mcast::Algorithm algo = mcast::Algorithm::kDualPath;
  const std::uint32_t k = 10;  // destinations per multicast
  const std::size_t seq_len =
      static_cast<std::size_t>(bench::scaled_count(120000));
  const std::size_t headline_batch = 512;  // batch-size sweep's sweet spot

  json.meta()["topology"] = obs::Json(mesh.name());
  json.meta()["algorithm"] = obs::Json(std::string(mcast::algorithm_name(algo)));
  json.meta()["destinations"] = obs::Json(k);
  json.meta()["sequence_length"] = obs::Json(static_cast<std::uint64_t>(seq_len));

  std::printf("route throughput: %s, %s, k=%u, %zu requests/point (scale %.2f)\n\n",
              mesh.name().c_str(), mcast::algorithm_name(algo).data(), k, seq_len,
              bench::bench_scale());

  // -- Headline: cached Zipf workload, scalar vs batch ----------------------
  {
    const Workload w = make_workload(mesh, 1024, 1.0, k, seq_len, 42);
    const auto scalar_router = mcast::make_caching_router(mesh, algo);
    const auto batch_router = mcast::make_caching_router(mesh, algo);
    // Warm both caches identically so the measurement is the steady state.
    (void)measure_batch(*scalar_router, w.pool, headline_batch);
    (void)measure_batch(*batch_router, w.pool, headline_batch);
    const Throughput scalar =
        best_of(3, [&] { return measure_scalar(*scalar_router, w.sequence); });
    const Throughput batch =
        best_of(3, [&] { return measure_batch(*batch_router, w.sequence, headline_batch); });
    const double speedup = batch.routes_per_s / scalar.routes_per_s;
    if (scalar.traffic_sink != batch.traffic_sink) {
      std::fprintf(stderr, "error: scalar/batch traffic mismatch (%llu vs %llu)\n",
                   static_cast<unsigned long long>(scalar.traffic_sink),
                   static_cast<unsigned long long>(batch.traffic_sink));
      return 1;
    }
    std::printf("headline (Zipf s=1.0, pool 1024, batch %zu):\n", headline_batch);
    std::printf("  scalar route():      %12.0f routes/s\n", scalar.routes_per_s);
    std::printf("  batch  route_many(): %12.0f routes/s  (%.2fx)\n\n", batch.routes_per_s,
                speedup);
    obs::Json& h = json.meta()["headline"];
    h = obs::Json::object();
    h["scalar_routes_per_s"] = obs::Json(scalar.routes_per_s);
    h["batch_routes_per_s"] = obs::Json(batch.routes_per_s);
    h["speedup"] = obs::Json(speedup);
    h["batch_size"] = obs::Json(static_cast<std::uint64_t>(headline_batch));
    h["zipf_s"] = obs::Json(1.0);
    h["pool"] = obs::Json(1024);
    json.add_point("headline:scalar", point(1.0, scalar, scalar_router.get()));
    json.add_point("headline:batch", point(1.0, batch, batch_router.get()));
  }

  // -- Zipf-exponent sweep: skew vs throughput ------------------------------
  std::printf("%10s %16s %16s %10s\n", "zipf_s", "scalar r/s", "batch r/s", "hit%");
  for (const double s : {0.0, 0.5, 0.8, 1.0, 1.3}) {
    const Workload w = make_workload(mesh, 1024, s, k, seq_len, 97);
    const auto scalar_router = mcast::make_caching_router(mesh, algo);
    const auto batch_router = mcast::make_caching_router(mesh, algo);
    (void)measure_batch(*scalar_router, w.pool, headline_batch);
    (void)measure_batch(*batch_router, w.pool, headline_batch);
    const Throughput scalar = measure_scalar(*scalar_router, w.sequence);
    const Throughput batch = measure_batch(*batch_router, w.sequence, headline_batch);
    // Workload locality from the scalar router: the batch router's
    // shard-level hit rate undercounts (memo hits never reach a shard).
    const double hit = scalar_router->stats().hit_rate();
    std::printf("%10.1f %16.0f %16.0f %9.1f%%\n", s, scalar.routes_per_s,
                batch.routes_per_s, hit * 100.0);
    json.add_point("zipf:scalar", point(s, scalar, scalar_router.get()));
    json.add_point("zipf:batch", point(s, batch, batch_router.get()));
  }
  std::printf("\n");

  // -- Pool-size sweep: hit ratio falls as the pool outgrows the cache ------
  std::printf("%10s %16s %16s %10s\n", "pool", "scalar r/s", "batch r/s", "hit%");
  for (const std::size_t pool : {256ul, 1024ul, 4096ul, 16384ul}) {
    const Workload w = make_workload(mesh, pool, 0.8, k, seq_len, 131);
    const auto scalar_router = mcast::make_caching_router(mesh, algo);
    const auto batch_router = mcast::make_caching_router(mesh, algo);
    (void)measure_batch(*scalar_router, w.pool, headline_batch);
    (void)measure_batch(*batch_router, w.pool, headline_batch);
    const Throughput scalar = measure_scalar(*scalar_router, w.sequence);
    const Throughput batch = measure_batch(*batch_router, w.sequence, headline_batch);
    // Workload locality from the scalar router: the batch router's
    // shard-level hit rate undercounts (memo hits never reach a shard).
    const double hit = scalar_router->stats().hit_rate();
    std::printf("%10zu %16.0f %16.0f %9.1f%%\n", pool, scalar.routes_per_s,
                batch.routes_per_s, hit * 100.0);
    json.add_point("pool:scalar", point(static_cast<double>(pool), scalar, scalar_router.get()));
    json.add_point("pool:batch", point(static_cast<double>(pool), batch, batch_router.get()));
  }
  std::printf("\n");

  // -- Batch-size sweep ------------------------------------------------------
  std::printf("%10s %16s\n", "batch", "batch r/s");
  {
    const Workload w = make_workload(mesh, 1024, 1.0, k, seq_len, 163);
    for (const std::size_t b : {1ul, 8ul, 32ul, 128ul, 512ul, 2048ul}) {
      const auto router = mcast::make_caching_router(mesh, algo);
      (void)measure_batch(*router, w.pool, headline_batch);
      const Throughput batch = measure_batch(*router, w.sequence, b);
      std::printf("%10zu %16.0f\n", b, batch.routes_per_s);
      json.add_point("batch_size", point(static_cast<double>(b), batch, router.get()));
    }
  }
  std::printf("\n");

  // -- Shard sweep: single-thread batch + contended 4-thread scalar ---------
  std::printf("%10s %16s %18s\n", "shards", "batch r/s", "scalar-mt4 r/s");
  {
    const Workload w = make_workload(mesh, 1024, 1.0, k, seq_len, 199);
    for (const std::size_t shards : {1ul, 2ul, 4ul, 8ul, 16ul, 32ul}) {
      const mcast::RouteCacheConfig cfg{.capacity = 4096, .shards = shards};
      const auto batch_router = mcast::make_caching_router(mesh, algo, 1, cfg);
      const auto mt_router = mcast::make_caching_router(mesh, algo, 1, cfg);
      (void)measure_batch(*batch_router, w.pool, headline_batch);
      (void)measure_batch(*mt_router, w.pool, headline_batch);
      const Throughput batch = measure_batch(*batch_router, w.sequence, headline_batch);
      const Throughput mt = measure_scalar_mt(*mt_router, w.sequence, 4);
      std::printf("%10zu %16.0f %18.0f\n", shards, batch.routes_per_s, mt.routes_per_s);
      json.add_point("shards:batch",
                     point(static_cast<double>(shards), batch, batch_router.get()));
      json.add_point("shards:scalar-mt4",
                     point(static_cast<double>(shards), mt, mt_router.get()));
    }
  }
  std::printf("\n");

  return json.write() ? 0 : 1;
}
