// Group multicast under churn: delivered-in-view rate and stability
// latency of GroupService sends while members join, leave, and crash.
// Three sweeps on an 8x8 mesh:
//   size:   group size at fixed churn and window,
//   churn:  membership event rate at fixed size (the x = 0 point is the
//           healthy baseline -- its delivered-in-view rate anchors the
//           regression gate in tools/churn_smoke.sh),
//   window: sender window size at fixed size and churn (small windows
//           trade throughput stalls for bounded instability).
//
// Output: CSV on stdout, mcnet-bench-v1 JSON via JsonReporter (scale the
// send count with MCNET_BENCH_SCALE).
#include <cstdio>
#include <functional>
#include <memory>

#include "bench_common.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "fault/fault_router.hpp"
#include "service/churn.hpp"
#include "service/group_service.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;

struct PointResult {
  std::uint64_t sends = 0;
  std::uint64_t reports = 0;
  std::uint64_t owed = 0;  // terminal per-destination outcomes
  std::uint64_t delivered_in_view = 0;
  std::uint64_t evicted = 0;
  std::uint64_t dropped = 0;
  std::uint64_t unreachable = 0;
  double stability_p99_us = 0.0;
  svc::GroupService::Stats stats;

  [[nodiscard]] double rate() const {
    return owed == 0 ? 0.0
                     : static_cast<double>(delivered_in_view) / static_cast<double>(owed);
  }
};

struct PointConfig {
  std::uint32_t group_size = 16;
  double churn_events_per_s = 0.0;
  std::uint32_t window_size = 8;
  std::uint32_t sends = 60;
  std::uint64_t seed = 2026;
};

PointResult run_point(const PointConfig& pc) {
  const topo::Mesh2D mesh(8, 8);
  auto faults = std::make_shared<fault::FaultState>(mesh);
  const auto router =
      fault::make_fault_aware_router(mesh, mcast::Algorithm::kDualPath, faults);
  evsim::Scheduler sched;
  const worm::WormholeParams params{.flit_time = 50e-9, .message_flits = 128,
                                    .channel_copies = 1};
  svc::MulticastService service(*router, params, sched);

  svc::GroupConfig cfg;
  cfg.window_size = pc.window_size;
  // Heartbeat slowly enough that liveness traffic does not saturate the
  // mesh at group size 32; the detector still evicts in ~2ms.
  cfg.heartbeat_period_s = 200e-6;
  cfg.sweep_period_s = 100e-6;
  cfg.suspicion_min_timeout_s = 1.6e-3;
  svc::GroupService groups(service, cfg);
  obs::MetricsRegistry registry;
  groups.set_metrics(&registry);

  // Members spread across the mesh; joins draw from the next group_size
  // nodes of the same stride.
  std::vector<topo::NodeId> init;
  std::vector<topo::NodeId> cand;
  const std::uint32_t stride = mesh.num_nodes() / pc.group_size;
  for (std::uint32_t i = 0; i < pc.group_size; ++i) {
    init.push_back(static_cast<topo::NodeId>(i * stride));
    cand.push_back(static_cast<topo::NodeId>(i * stride));
    cand.push_back(static_cast<topo::NodeId>(i * stride + stride / 2));
  }
  const auto gid = groups.create_group(init);

  const double spacing = 40e-6;
  const double t_end = spacing * pc.sends;
  if (pc.churn_events_per_s > 0.0) {
    svc::ChurnConfig cc;
    cc.t_begin_s = 100e-6;
    cc.t_end_s = t_end;
    cc.events_per_s = pc.churn_events_per_s;
    cc.seed = pc.seed;
    schedule_churn(groups, gid, sched, svc::ChurnSchedule::random(init, cand, cc));
  }

  PointResult out;
  evsim::Rng rng(evsim::derive_seed(pc.seed, 0x626e6368ULL));  // "bnch"
  std::function<void(double)> pump = [&](double t) {
    if (t >= t_end) return;
    sched.schedule_at(t, [&groups, gid, &out, &rng, &pump, t] {
      const auto& members = groups.view(gid).members;
      if (!members.empty()) {
        const topo::NodeId sender =
            members[rng.uniform_int(0, static_cast<std::uint32_t>(members.size()) - 1)];
        ++out.sends;
        groups.send(gid, sender, [&out](const svc::GroupSendReport& r) {
          ++out.reports;
          for (const auto& d : r.destinations) {
            ++out.owed;
            switch (d.outcome) {
              case svc::GroupOutcome::kDeliveredInView:
                ++out.delivered_in_view;
                break;
              case svc::GroupOutcome::kEvicted:
                ++out.evicted;
                break;
              case svc::GroupOutcome::kDropped:
                ++out.dropped;
                break;
              case svc::GroupOutcome::kUnreachable:
                ++out.unreachable;
                break;
            }
          }
        });
      }
      pump(t + 40e-6);
    });
  };
  pump(0.0);

  // Leave generous drain time so every send reaches a terminal report
  // (the detector needs ~2ms to evict crash victims first).
  sched.schedule_at(t_end + 10e-3, [&] { groups.stop(); });
  sched.run();

  out.stats = groups.stats();
  out.stability_p99_us = registry.histogram("group.stability_latency_s").percentile(0.99) * 1e6;
  return out;
}

void emit(mcnet::bench::JsonReporter& json, const std::string& series, double x,
          const PointConfig& pc, const PointResult& r) {
  std::printf("%s,%.0f,%u,%.0f,%u,%llu,%llu,%.4f,%.2f,%llu,%llu,%llu,%llu\n",
              series.c_str(), x, pc.group_size, pc.churn_events_per_s, pc.window_size,
              static_cast<unsigned long long>(r.sends),
              static_cast<unsigned long long>(r.owed), r.rate(), r.stability_p99_us,
              static_cast<unsigned long long>(r.stats.view_installs),
              static_cast<unsigned long long>(r.stats.evictions),
              static_cast<unsigned long long>(r.stats.false_positive_evictions),
              static_cast<unsigned long long>(r.stats.window_stalls));
  std::fflush(stdout);

  obs::Json p = obs::Json::object();
  p["x"] = obs::Json(x);
  p["y"] = obs::Json(r.rate());
  p["group_size"] = obs::Json(pc.group_size);
  p["churn_events_per_s"] = obs::Json(pc.churn_events_per_s);
  p["window_size"] = obs::Json(pc.window_size);
  p["sends"] = obs::Json(r.sends);
  p["owed"] = obs::Json(r.owed);
  p["delivered_in_view"] = obs::Json(r.delivered_in_view);
  p["evicted"] = obs::Json(r.evicted);
  p["dropped"] = obs::Json(r.dropped);
  p["unreachable"] = obs::Json(r.unreachable);
  p["stability_p99_us"] = obs::Json(r.stability_p99_us);
  p["view_installs"] = obs::Json(r.stats.view_installs);
  p["evictions"] = obs::Json(r.stats.evictions);
  p["false_positive_evictions"] = obs::Json(r.stats.false_positive_evictions);
  p["window_stalls"] = obs::Json(r.stats.window_stalls);
  p["app_deliveries"] = obs::Json(r.stats.app_deliveries);
  json.add_point(series, std::move(p));
}

}  // namespace

int main() {
  mcnet::bench::JsonReporter json("bench_group_churn");
  json.meta()["topology"] = mcnet::obs::Json(std::string("mesh2d_8x8"));
  json.meta()["heartbeat_period_us"] = mcnet::obs::Json(200.0);
  json.meta()["suspicion_min_timeout_us"] = mcnet::obs::Json(1600.0);

  const std::uint32_t sends = mcnet::bench::scaled_runs(60);
  std::printf(
      "series,x,group_size,churn_events_per_s,window_size,sends,owed,"
      "delivered_in_view_rate,stability_p99_us,view_installs,evictions,"
      "false_positives,window_stalls\n");

  // Delivered-in-view rate vs group size (fixed churn, window 8).
  for (const std::uint32_t size : {4u, 8u, 16u, 32u}) {
    PointConfig pc;
    pc.group_size = size;
    pc.churn_events_per_s = 2e3;
    pc.sends = sends;
    emit(json, "size", size, pc, run_point(pc));
  }

  // Delivered-in-view rate vs churn rate (fixed size 16, window 8).  The
  // zero-churn point is the healthy baseline the smoke gate pins >= 0.99.
  for (const double churn : {0.0, 1e3, 2e3, 4e3, 8e3}) {
    PointConfig pc;
    pc.churn_events_per_s = churn;
    pc.sends = sends;
    emit(json, "churn", churn, pc, run_point(pc));
  }

  // Delivered-in-view rate and stalls vs window size (fixed size, churn).
  for (const std::uint32_t window : {1u, 2u, 4u, 8u, 16u}) {
    PointConfig pc;
    pc.window_size = window;
    pc.churn_events_per_s = 2e3;
    pc.sends = sends;
    emit(json, "window", window, pc, run_point(pc));
  }
  return 0;
}
