// Figure 7.10: average network latency under increasing load on a
// single-channel 8x8 mesh: dual-path vs multi-path routing with an average
// of 10 destinations.  At low/medium load multi-path's shorter paths win
// slightly.
#include "bench_common.hpp"

int main() {
  mcnet::bench::JsonReporter json("bench_fig7_10_dyn_load_sc");
  using namespace mcnet;
  using mcast::Algorithm;
  const topo::Mesh2D mesh(8, 8);

  bench::DynamicSweepConfig cfg;
  cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 1};
  cfg.avg_destinations = 10;
  bench::run_dynamic_load_sweep(
      "=== Figure 7.10: latency vs load, single-channel 8x8 mesh ===", mesh,
      {2000, 1200, 800, 500, 400, 300, 250, 200},
      {bench::router_series(mesh, Algorithm::kDualPath, 1),
       bench::router_series(mesh, Algorithm::kMultiPath, 1)},
      cfg, &json);
  return 0;
}
