// Figure 7.8: average network latency under increasing load on a
// double-channel 8x8 mesh, comparing the tree-like (double-channel X-first)
// algorithm with dual-path and multi-path routing.  Average 10
// destinations, 128-byte messages, 20 Mbyte/s channels, as in the paper.
#include "bench_common.hpp"

int main() {
  mcnet::bench::JsonReporter json("bench_fig7_08_dyn_load_dc");
  using namespace mcnet;
  using mcast::Algorithm;
  const topo::Mesh2D mesh(8, 8);

  bench::DynamicSweepConfig cfg;
  cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 2};
  cfg.avg_destinations = 10;
  bench::run_dynamic_load_sweep(
      "=== Figure 7.8: latency vs load, double-channel 8x8 mesh ===", mesh,
      {2000, 1200, 800, 500, 350, 250, 180, 130},
      {bench::router_series(mesh, Algorithm::kDCXFirstTree, 2),
       bench::router_series(mesh, Algorithm::kDualPath, 2),
       bench::router_series(mesh, Algorithm::kMultiPath, 2)},
      cfg, &json);
  return 0;
}
