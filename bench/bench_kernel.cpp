// Kernel throughput bench: raw events/sec of the calendar-queue arena
// scheduler vs the seed's binary-heap std::function kernel (preserved in
// evsim/legacy_heap.hpp), on the workloads the simulator actually runs.
//
// Series:
//   headline:*  -- 64k-node uniform traffic under reliable delivery: each
//                  node sends with exponential gaps, and every send arms a
//                  1 s timeout backstop while cancelling the previous one
//                  (the service layer's reliable_attempt pattern).  The
//                  calendar kernel truly cancels -- dead backstops never
//                  dispatch, far timers park in the overflow band, carcass
//                  compaction bounds memory.  The heap kernel has to
//                  re-enact the seed's stale-closure idiom (settled-flag
//                  no-ops that stay queued), so its pending set bloats
//                  without bound.  meta.headline carries the
//                  machine-independent speedup ratio; the bench-smoke gate
//                  requires >= 3x and events/sec >= 0.9x the committed
//                  BENCH_kernel.json baseline.
//   hold:*      -- the same hold model as the pending-event population
//                  sweeps 1k -> 256k (heap pays log n, calendar stays O(1)).
//   timeout:*   -- the service-layer timeout pattern: every operation arms a
//                  far-future timeout backstop and completes early.  The
//                  calendar kernel cancels the backstop for real (the dead
//                  closure never dispatches, far timers park in the overflow
//                  band); the heap kernel re-enacts the old stale-closure
//                  no-op pattern it forced on callers.
//   net:*       -- end-to-end wormhole simulation (16x16 mesh dual-path
//                  dynamic traffic): kernel events/sec of the full stack on
//                  the production scheduler.
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "core/route_factory.hpp"
#include "evsim/legacy_heap.hpp"
#include "evsim/scheduler.hpp"
#include "topology/mesh2d.hpp"
#include "wormhole/network.hpp"
#include "wormhole/traffic.hpp"

namespace {

using namespace mcnet;

double wall_seconds(const std::chrono::steady_clock::time_point t0) {
  const std::chrono::duration<double> dt = std::chrono::steady_clock::now() - t0;
  return dt.count();
}

/// PHOLD-style hold model: `entities` self-rescheduling events, exponential
/// holds with mean `mean_s`.  The per-entity xorshift streams make the
/// workload identical on any kernel with (time, schedule-order) dispatch.
template <typename Sched>
struct Phold {
  Sched& sched;
  std::vector<std::uint64_t> state;
  double mean_s;

  Phold(Sched& s, std::uint32_t entities, double mean) : sched(s), mean_s(mean) {
    state.resize(entities);
    for (std::uint32_t i = 0; i < entities; ++i) {
      state[i] = 0x9e3779b97f4a7c15ull ^ (static_cast<std::uint64_t>(i) * 0xbf58476d1ce4e5b9ull);
      arm(i, draw(i));
    }
  }

  double draw(std::uint32_t i) {
    std::uint64_t& s = state[i];
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    const double u = static_cast<double>(s >> 11) * 0x1.0p-53 + 0x1.0p-54;
    return mean_s * -std::log(u);
  }

  void arm(std::uint32_t i, double dt) {
    sched.schedule_at(sched.now() + dt, [this, i] { arm(i, draw(i)); });
  }
};

struct HoldResult {
  std::uint64_t events = 0;
  double events_per_s = 0.0;
  std::size_t peak_pending = 0;
};

template <typename Sched>
HoldResult run_hold(std::uint32_t entities, std::uint64_t target_events, double mean_s) {
  Sched sched;
  Phold<Sched> model(sched, entities, mean_s);
  const double t_end =
      static_cast<double>(target_events) * mean_s / static_cast<double>(entities);
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t n = sched.run_until(t_end);
  const double wall = wall_seconds(t0);
  return {n, static_cast<double>(n) / wall, sched.pending()};
}

/// Headline workload, calendar kernel: uniform traffic with reliable
/// delivery.  Each node sends with exponential gaps; every send arms a 1 s
/// timeout backstop and cancels the previous one (completion beat the
/// timeout).  Cancellation is real -- the backstop's closure dies
/// immediately and carcass compaction keeps the overflow band bounded.
HoldResult run_reliable_calendar(std::uint32_t entities, std::uint64_t target_events,
                                 double mean_s) {
  evsim::Scheduler sched;
  std::vector<std::uint64_t> state(entities);
  std::vector<evsim::EventId> backstop(entities);
  struct Model {
    evsim::Scheduler& sched;
    std::vector<std::uint64_t>& st;
    std::vector<evsim::EventId>& bs;
    double mean;
    double draw(std::uint32_t i) {
      std::uint64_t& s = st[i];
      s ^= s << 13;
      s ^= s >> 7;
      s ^= s << 17;
      const double u = static_cast<double>(s >> 11) * 0x1.0p-53 + 0x1.0p-54;
      return mean * -std::log(u);
    }
    void send(std::uint32_t i) {
      sched.cancel(bs[i]);  // previous message completed: kill its backstop
      bs[i] = sched.schedule_in(1.0, [] { /* would abort the transfer */ });
      sched.schedule_in(draw(i), [this, i] { send(i); });
    }
  } model{sched, state, backstop, mean_s};
  for (std::uint32_t i = 0; i < entities; ++i) {
    state[i] = 0x9e3779b97f4a7c15ull ^ (static_cast<std::uint64_t>(i) * 0xbf58476d1ce4e5b9ull);
    model.send(i);
  }
  const double t_end =
      static_cast<double>(target_events) * mean_s / static_cast<double>(entities);
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t n = sched.run_until(t_end);
  const double wall = wall_seconds(t0);
  return {n, static_cast<double>(n) / wall, sched.pending()};
}

/// The same workload on the heap kernel, written the only way it can be:
/// no cancellation handles, so every backstop stays queued with a
/// shared settled-flag and fires as a stale no-op -- the pending set grows
/// by one dead closure per send for the whole run.
HoldResult run_reliable_heap(std::uint32_t entities, std::uint64_t target_events,
                             double mean_s) {
  evsim::LegacyHeapScheduler sched;
  std::vector<std::uint64_t> state(entities);
  std::vector<std::shared_ptr<bool>> settled(entities);
  struct Model {
    evsim::LegacyHeapScheduler& sched;
    std::vector<std::uint64_t>& st;
    std::vector<std::shared_ptr<bool>>& settled;
    double mean;
    double draw(std::uint32_t i) {
      std::uint64_t& s = st[i];
      s ^= s << 13;
      s ^= s >> 7;
      s ^= s << 17;
      const double u = static_cast<double>(s >> 11) * 0x1.0p-53 + 0x1.0p-54;
      return mean * -std::log(u);
    }
    void send(std::uint32_t i) {
      if (settled[i]) *settled[i] = true;  // previous message completed
      auto flag = std::make_shared<bool>(false);
      settled[i] = flag;
      sched.schedule_in(1.0, [flag] {
        if (!*flag) { /* would abort the transfer */
        }
      });
      sched.schedule_in(draw(i), [this, i] { send(i); });
    }
  } model{sched, state, settled, mean_s};
  for (std::uint32_t i = 0; i < entities; ++i) {
    state[i] = 0x9e3779b97f4a7c15ull ^ (static_cast<std::uint64_t>(i) * 0xbf58476d1ce4e5b9ull);
    model.send(i);
  }
  const double t_end =
      static_cast<double>(target_events) * mean_s / static_cast<double>(entities);
  const auto t0 = std::chrono::steady_clock::now();
  const std::uint64_t n = sched.run_until(t_end);
  const double wall = wall_seconds(t0);
  return {n, static_cast<double>(n) / wall, sched.pending()};
}

/// Service-timeout pattern, calendar kernel: each op arms a 1 s timeout
/// backstop, completes after `mean_s`, and cancels the backstop for real.
HoldResult run_timeout_calendar(std::uint64_t ops, double mean_s) {
  evsim::Scheduler sched;
  std::uint64_t remaining = ops;
  const auto t0 = std::chrono::steady_clock::now();
  std::function<void()> next = [&] {
    if (remaining-- == 0) return;
    bool* fired = new bool(false);
    const evsim::EventId timeout = sched.schedule_in(1.0, [fired] { *fired = true; });
    sched.schedule_in(mean_s, [&sched, timeout, fired, &next] {
      sched.cancel(timeout);  // the backstop dies unfired
      delete fired;
      next();
    });
  };
  next();
  const std::uint64_t n = sched.run();
  const double wall = wall_seconds(t0);
  return {n, static_cast<double>(ops) / wall};
}

/// The same pattern on the heap kernel, the only way it could be written
/// there: the timeout closure stays queued and fires as a stale no-op.
HoldResult run_timeout_heap(std::uint64_t ops, double mean_s) {
  evsim::LegacyHeapScheduler sched;
  std::uint64_t remaining = ops;
  const auto t0 = std::chrono::steady_clock::now();
  std::function<void()> next = [&] {
    if (remaining-- == 0) return;
    auto fired = std::make_shared<bool>(false);
    sched.schedule_in(1.0, [fired] {
      if (!*fired) { /* would abort the op */
      }
    });
    sched.schedule_in(mean_s, [fired, &next] {
      *fired = true;
      next();
    });
  };
  next();
  const std::uint64_t n = sched.run();
  const double wall = wall_seconds(t0);
  return {n, static_cast<double>(ops) / wall};
}

struct NetResult {
  std::uint64_t events = 0;
  std::uint64_t deliveries = 0;
  double events_per_s = 0.0;
};

NetResult run_network(double sim_horizon_s) {
  evsim::Scheduler sched;
  const topo::Mesh2D mesh(16, 16);
  const auto router = mcast::make_router(mesh, mcast::Algorithm::kDualPath);
  worm::WormholeParams params;
  worm::Network network(mesh, params, sched);
  std::uint64_t deliveries = 0;
  worm::NetworkHooks hooks;
  hooks.on_delivery = [&deliveries](std::uint64_t, topo::NodeId, double) { ++deliveries; };
  network.set_hooks(std::move(hooks));
  worm::TrafficConfig tc;
  tc.mean_interarrival_s = 150e-6;
  tc.avg_destinations = 8;
  tc.seed = 4242;
  worm::TrafficDriver driver(sched, network, tc, *router);
  driver.start();
  const auto t0 = std::chrono::steady_clock::now();
  sched.run_until(sim_horizon_s);
  driver.stop();
  sched.run();
  const double wall = wall_seconds(t0);
  return {sched.events_dispatched(), deliveries,
          static_cast<double>(sched.events_dispatched()) / wall};
}

template <typename Fn>
HoldResult best_of(int reps, Fn&& fn) {
  HoldResult best;
  for (int r = 0; r < reps; ++r) {
    const HoldResult t = fn();
    best.events = t.events;
    best.peak_pending = t.peak_pending;
    if (t.events_per_s > best.events_per_s) best.events_per_s = t.events_per_s;
  }
  return best;
}

obs::Json point(double x, const HoldResult& r) {
  obs::Json p = obs::Json::object();
  p["x"] = obs::Json(x);
  p["y"] = obs::Json(r.events_per_s);
  p["events_per_s"] = obs::Json(r.events_per_s);
  p["events"] = obs::Json(r.events);
  return p;
}

}  // namespace

int main() {
  std::setvbuf(stdout, nullptr, _IONBF, 0);  // progress lines land immediately
  bench::JsonReporter json("bench_kernel");

  const std::uint32_t headline_nodes = 65536;
  const double mean_s = 1e-6;
  const std::uint64_t headline_events =
      static_cast<std::uint64_t>(bench::scaled_count(4000000));

  json.meta()["hold_mean_s"] = obs::Json(mean_s);
  json.meta()["headline_nodes"] = obs::Json(headline_nodes);
  json.meta()["headline_events"] = obs::Json(headline_events);

  std::printf("kernel throughput: hold mean %.0f ns, %llu headline events (scale %.2f)\n\n",
              mean_s * 1e9, static_cast<unsigned long long>(headline_events),
              bench::bench_scale());

  // -- Headline: 64k-node uniform traffic with reliable-delivery timeouts ---
  {
    const HoldResult cal = best_of(3, [&] {
      return run_reliable_calendar(headline_nodes, headline_events, mean_s);
    });
    const HoldResult heap = best_of(3, [&] {
      return run_reliable_heap(headline_nodes, headline_events, mean_s);
    });
    const double speedup = cal.events_per_s / heap.events_per_s;
    std::printf("headline (%u nodes, uniform traffic + 1 s reliable-delivery backstops):\n",
                headline_nodes);
    std::printf("  calendar kernel (true cancel):  %12.0f events/s, peak pending %zu\n",
                cal.events_per_s, cal.peak_pending);
    std::printf("  heap kernel (stale backstops):  %12.0f events/s, peak pending %zu\n",
                heap.events_per_s, heap.peak_pending);
    std::printf("  speedup %.2fx\n\n", speedup);
    obs::Json& h = json.meta()["headline"];
    h = obs::Json::object();
    h["nodes"] = obs::Json(headline_nodes);
    h["calendar_events_per_s"] = obs::Json(cal.events_per_s);
    h["heap_events_per_s"] = obs::Json(heap.events_per_s);
    h["calendar_peak_pending"] = obs::Json(cal.peak_pending);
    h["heap_peak_pending"] = obs::Json(heap.peak_pending);
    h["speedup"] = obs::Json(speedup);
    json.add_point("headline:calendar", point(static_cast<double>(headline_nodes), cal));
    json.add_point("headline:heap", point(static_cast<double>(headline_nodes), heap));
  }

  // -- Hold-model population sweep ------------------------------------------
  std::printf("%10s %16s %16s %10s\n", "pending", "calendar ev/s", "heap ev/s", "ratio");
  for (const std::uint32_t n : {1024u, 8192u, 65536u, 262144u}) {
    const std::uint64_t target = static_cast<std::uint64_t>(bench::scaled_count(1000000));
    const HoldResult cal =
        best_of(2, [&] { return run_hold<evsim::Scheduler>(n, target, mean_s); });
    const HoldResult heap =
        best_of(2, [&] { return run_hold<evsim::LegacyHeapScheduler>(n, target, mean_s); });
    std::printf("%10u %16.0f %16.0f %9.2fx\n", n, cal.events_per_s, heap.events_per_s,
                cal.events_per_s / heap.events_per_s);
    json.add_point("hold:calendar", point(static_cast<double>(n), cal));
    json.add_point("hold:heap", point(static_cast<double>(n), heap));
  }
  std::printf("\n");

  // -- Timeout/cancellation pattern -----------------------------------------
  {
    const std::uint64_t ops = static_cast<std::uint64_t>(bench::scaled_count(400000));
    const HoldResult cal = best_of(2, [&] { return run_timeout_calendar(ops, mean_s); });
    const HoldResult heap = best_of(2, [&] { return run_timeout_heap(ops, mean_s); });
    std::printf("timeout pattern (%llu ops, 1 s backstop each):\n",
                static_cast<unsigned long long>(ops));
    std::printf("  calendar (true cancel):  %12.0f ops/s, %llu dispatches\n",
                cal.events_per_s, static_cast<unsigned long long>(cal.events));
    std::printf("  heap (stale no-op fire): %12.0f ops/s, %llu dispatches\n\n",
                heap.events_per_s, static_cast<unsigned long long>(heap.events));
    json.add_point("timeout:calendar", point(static_cast<double>(ops), cal));
    json.add_point("timeout:heap", point(static_cast<double>(ops), heap));
  }

  // -- Full-stack wormhole simulation ---------------------------------------
  {
    const double horizon = 5e-3 * bench::bench_scale();
    const NetResult net = run_network(horizon);
    std::printf("network run (16x16 mesh, dual-path, %.1f ms sim):\n", horizon * 1e3);
    std::printf("  %llu kernel events, %llu deliveries, %12.0f events/s\n",
                static_cast<unsigned long long>(net.events),
                static_cast<unsigned long long>(net.deliveries), net.events_per_s);
    obs::Json p = obs::Json::object();
    p["x"] = obs::Json(horizon);
    p["y"] = obs::Json(net.events_per_s);
    p["events_per_s"] = obs::Json(net.events_per_s);
    p["events"] = obs::Json(net.events);
    p["deliveries"] = obs::Json(net.deliveries);
    json.add_point("net:calendar", p);
  }

  return json.write() ? 0 : 1;
}
