// Figure 7.9: average network latency versus destination count on a
// double-channel 8x8 mesh with 300 us mean interarrival per node, comparing
// tree-like, dual-path and multi-path routing.  The tree algorithm's
// lock-step branches make it degrade fastest as destination sets grow.
#include "bench_common.hpp"

int main() {
  mcnet::bench::JsonReporter json("bench_fig7_09_dyn_dests_dc");
  using namespace mcnet;
  using mcast::Algorithm;
  const topo::Mesh2D mesh(8, 8);

  bench::DynamicSweepConfig cfg;
  cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 2};
  bench::run_dynamic_dest_sweep(
      "=== Figure 7.9: latency vs destinations, double-channel 8x8 mesh, 300 us ===",
      mesh, 300.0, {1, 5, 10, 15, 20, 25, 30, 35, 40, 45},
      {bench::router_series(mesh, Algorithm::kDCXFirstTree, 2),
       bench::router_series(mesh, Algorithm::kDualPath, 2),
       bench::router_series(mesh, Algorithm::kMultiPath, 2)},
      cfg, &json);
  return 0;
}
