// Figure 7.4: additional traffic of the greedy ST algorithm on a 10-cube
// versus the LEN heuristic [Lan, Esfahanian & Ni 90] (and the unicast /
// broadcast baselines for context).
#include "bench_common.hpp"

int main() {
  mcnet::bench::JsonReporter json("bench_fig7_04_st_cube");
  using namespace mcnet;
  using mcast::Algorithm;
  const topo::Hypercube cube(10);
  const mcast::CubeRoutingSuite suite(cube);

  const auto algo = [&suite](Algorithm a) {
    return [&suite, a](const mcast::MulticastRequest& req) { return suite.route(a, req); };
  };
  bench::run_static_sweep(
      "=== Figure 7.4: greedy ST vs LEN heuristic on a 10-cube ===", cube,
      {1, 2, 5, 10, 20, 50, 100, 150, 200, 300, 400, 500, 600, 700, 800, 900},
      {{"greedy-ST", algo(Algorithm::kGreedyST)},
       {"LEN-tree", algo(Algorithm::kLenTree)},
       {"multi-unicast", algo(Algorithm::kMultiUnicast)},
       {"broadcast", algo(Algorithm::kBroadcast)}},
      &json, /*base_runs=*/600);
  return 0;
}
