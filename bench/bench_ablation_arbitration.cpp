// Ablation: channel resource-selection policies (Section 2.3.3) under
// load.  FCFS, oldest-message-first priority, and random selection are
// compared for dual-path multicast on a single-channel 8x8 mesh; the
// blocking-time column shows the contention component of the latency
// decomposition.
#include "bench_common.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

}  // namespace

int main() {
  mcnet::bench::JsonReporter json("bench_ablation_arbitration");
  const topo::Mesh2D mesh(8, 8);
  const auto router = mcast::make_caching_router(mesh, Algorithm::kDualPath, 1);

  struct Mode {
    const char* name;
    worm::Arbitration arb;
  };
  const Mode modes[] = {{"FCFS", worm::Arbitration::kFcfs},
                        {"oldest-first", worm::Arbitration::kOldestFirst},
                        {"random", worm::Arbitration::kRandom}};

  std::printf("=== Ablation: channel arbitration policy, dual-path, 8x8 mesh ===\n");
  std::printf("%16s %14s %16s %16s %14s\n", "interarrival_us", "policy", "latency (us)",
              "blocking (us)", "utilisation");
  for (const double interarrival : {600.0, 400.0, 300.0, 250.0}) {
    for (const Mode& m : modes) {
      worm::DynamicConfig cfg;
      cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 1};
      cfg.params.arbitration = m.arb;
      cfg.traffic = {.mean_interarrival_s = interarrival * 1e-6,
                     .avg_destinations = 10,
                     .fixed_destinations = false,
                     .exponential_interarrival = false,
                     .seed = 5};
      cfg.target_messages = bench::scaled_count(1500);
      cfg.max_messages = bench::scaled_count(6000);
      cfg.max_sim_time_s = 0.25 * bench::bench_scale();
      const worm::DynamicResult r = worm::run_dynamic(*router, cfg);
      std::printf("%16.0f %14s %13.2f%-3s %16.2f %14.3f\n", interarrival, m.name,
                  r.mean_latency_us, r.saturated ? "sat" : "", r.mean_blocking_us,
                  r.utilization);
      json.add_point(m.name, bench::JsonReporter::dynamic_point(interarrival, r));
    }
  }
  std::printf("\n");
  return 0;
}
