// Figure 7.2: traffic of the sorted MP algorithm on a 10-cube versus
// multiple one-to-one (unicast) and broadcast delivery.
#include "bench_common.hpp"

int main() {
  mcnet::bench::JsonReporter json("bench_fig7_02_mp_cube");
  using namespace mcnet;
  using mcast::Algorithm;
  const topo::Hypercube cube(10);
  const mcast::CubeRoutingSuite suite(cube);

  const auto algo = [&suite](Algorithm a) {
    return [&suite, a](const mcast::MulticastRequest& req) { return suite.route(a, req); };
  };
  bench::run_static_sweep(
      "=== Figure 7.2: sorted MP algorithm on a 10-cube ===", cube,
      {1, 2, 5, 10, 20, 50, 100, 150, 200, 300, 400, 500, 600, 700, 800, 900},
      {{"sorted-MP", algo(Algorithm::kSortedMP)},
       {"sorted-MC", algo(Algorithm::kSortedMC)},
       {"multi-unicast", algo(Algorithm::kMultiUnicast)},
       {"broadcast", algo(Algorithm::kBroadcast)}}, &json);
  return 0;
}
