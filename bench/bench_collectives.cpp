// Collective phases over the group layer: allreduce completion latency
// on an 8x8 mesh under three sweeps --
//   size:  group size at fixed chunking, zero churn,
//   chunk: chunks per root at fixed size (concurrent-multicast fan-out),
//   churn: membership event rate at fixed size/chunking (the x = 0 point
//          is the healthy baseline -- its zero re-issued chunks anchor
//          the gate in tools/coll_smoke.sh) --
// plus an atab series running all-to-all broadcast on k-ary 2-cube tori,
// carrying the Jung & Sakho step bound and the synchronous step-model
// schedule length next to the wormhole completion time.
//
// Output: CSV on stdout, mcnet-bench-v1 JSON via JsonReporter (scale the
// phase count with MCNET_BENCH_SCALE).
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "coll/atab.hpp"
#include "coll/collective.hpp"
#include "evsim/scheduler.hpp"
#include "fault/fault_router.hpp"
#include "service/churn.hpp"
#include "service/group_service.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;

struct PointConfig {
  std::uint32_t group_size = 16;
  std::uint32_t chunks = 4;
  double churn_events_per_s = 0.0;
  std::uint32_t phases = 6;
  std::uint64_t seed = 2026;
};

struct PointResult {
  std::uint64_t phases_started = 0;
  std::uint64_t phases_completed = 0;
  double mean_phase_us = 0.0;
  double max_phase_us = 0.0;
  double channel_busy_s = 0.0;
  coll::Collective::Stats stats;
};

PointResult summarize(const std::vector<coll::PhaseResult>& results,
                      const coll::Collective& coll, double busy_s) {
  PointResult out;
  out.stats = coll.stats();
  out.phases_started = out.stats.phases_started;
  out.phases_completed = out.stats.phases_completed;
  out.channel_busy_s = busy_s;
  for (const auto& r : results) {
    const double us = (r.completed_at_s - r.started_at_s) * 1e6;
    out.mean_phase_us += us;
    out.max_phase_us = std::max(out.max_phase_us, us);
  }
  if (!results.empty()) out.mean_phase_us /= static_cast<double>(results.size());
  return out;
}

PointResult run_point(const PointConfig& pc) {
  const topo::Mesh2D mesh(8, 8);
  auto faults = std::make_shared<fault::FaultState>(mesh);
  const auto router =
      fault::make_fault_aware_router(mesh, mcast::Algorithm::kDualPath, faults);
  evsim::Scheduler sched;
  const worm::WormholeParams params{.flit_time = 50e-9, .message_flits = 128,
                                    .channel_copies = 1};
  svc::MulticastService service(*router, params, sched);

  svc::GroupConfig cfg;
  cfg.heartbeat_period_s = 200e-6;
  cfg.sweep_period_s = 100e-6;
  cfg.suspicion_min_timeout_s = 1.6e-3;
  svc::GroupService groups(service, cfg);

  std::vector<topo::NodeId> init;
  std::vector<topo::NodeId> cand;
  const std::uint32_t stride = mesh.num_nodes() / pc.group_size;
  for (std::uint32_t i = 0; i < pc.group_size; ++i) {
    init.push_back(static_cast<topo::NodeId>(i * stride));
    cand.push_back(static_cast<topo::NodeId>(i * stride));
    cand.push_back(static_cast<topo::NodeId>(i * stride + stride / 2));
  }
  const auto gid = groups.create_group(init);

  if (pc.churn_events_per_s > 0.0) {
    svc::ChurnConfig cc;
    cc.t_begin_s = 100e-6;
    cc.t_end_s = 4e-3;
    cc.events_per_s = pc.churn_events_per_s;
    cc.seed = pc.seed;
    schedule_churn(groups, gid, sched, svc::ChurnSchedule::random(init, cand, cc));
  }

  coll::CollConfig ccfg;
  ccfg.chunks = pc.chunks;
  coll::Collective coll(groups, gid, ccfg);

  std::vector<coll::PhaseResult> results;
  std::function<void(const coll::PhaseResult&)> next =
      [&](const coll::PhaseResult& r) {
        results.push_back(r);
        if (results.size() < pc.phases && groups.view(gid).members.size() >= 2) {
          coll.allreduce(next);
        }
      };
  coll.allreduce(next);

  sched.schedule_at(30e-3, [&] { groups.stop(); });
  sched.run();

  return summarize(results, coll, service.network().channel_busy_time());
}

struct AtabResultPoint {
  PointResult phase;
  coll::AtabResult model;
};

AtabResultPoint run_atab_point(std::uint32_t k, std::uint32_t phases) {
  const topo::KAryNCube torus(k, 2, /*wrap=*/true);
  auto faults = std::make_shared<fault::FaultState>(torus);
  const auto router =
      fault::make_fault_aware_router(torus, mcast::Algorithm::kDualPath, faults);
  evsim::Scheduler sched;
  const worm::WormholeParams params{.flit_time = 50e-9, .message_flits = 128,
                                    .channel_copies = 1};
  svc::MulticastService service(*router, params, sched);

  svc::GroupConfig cfg;
  cfg.heartbeat_period_s = 200e-6;
  cfg.sweep_period_s = 100e-6;
  cfg.suspicion_min_timeout_s = 1.6e-3;
  svc::GroupService groups(service, cfg);

  std::vector<topo::NodeId> members;
  for (topo::NodeId v = 0; v < torus.num_nodes(); ++v) members.push_back(v);
  const auto gid = groups.create_group(members);

  coll::CollConfig ccfg;
  ccfg.chunks = 1;
  coll::Collective coll(groups, gid, ccfg);

  std::vector<coll::PhaseResult> results;
  std::function<void(const coll::PhaseResult&)> next =
      [&](const coll::PhaseResult& r) {
        results.push_back(r);
        if (results.size() < phases) coll.all_to_all_broadcast(next);
      };
  coll.all_to_all_broadcast(next);

  sched.schedule_at(30e-3, [&] { groups.stop(); });
  sched.run();

  AtabResultPoint out;
  out.phase = summarize(results, coll, service.network().channel_busy_time());
  out.model = coll::simulate_atab_on_torus(k, 2);
  return out;
}

void emit(mcnet::bench::JsonReporter& json, const std::string& series, double x,
          const PointConfig& pc, const PointResult& r) {
  std::printf("%s,%.0f,%u,%u,%.0f,%llu,%llu,%.2f,%.2f,%llu,%llu,%llu,%llu,%llu,%.6f\n",
              series.c_str(), x, pc.group_size, pc.chunks, pc.churn_events_per_s,
              static_cast<unsigned long long>(r.phases_started),
              static_cast<unsigned long long>(r.phases_completed), r.mean_phase_us,
              r.max_phase_us, static_cast<unsigned long long>(r.stats.chunks_sent),
              static_cast<unsigned long long>(r.stats.chunks_reissued),
              static_cast<unsigned long long>(r.stats.restarts),
              static_cast<unsigned long long>(r.stats.chunks_voided),
              static_cast<unsigned long long>(r.stats.double_applies),
              r.channel_busy_s);
  std::fflush(stdout);

  obs::Json p = obs::Json::object();
  p["x"] = obs::Json(x);
  p["y"] = obs::Json(r.mean_phase_us);
  p["group_size"] = obs::Json(pc.group_size);
  p["chunks"] = obs::Json(pc.chunks);
  p["churn_events_per_s"] = obs::Json(pc.churn_events_per_s);
  p["phases_started"] = obs::Json(r.phases_started);
  p["phases_completed"] = obs::Json(r.phases_completed);
  p["mean_phase_us"] = obs::Json(r.mean_phase_us);
  p["max_phase_us"] = obs::Json(r.max_phase_us);
  p["chunks_sent"] = obs::Json(r.stats.chunks_sent);
  p["chunks_reissued"] = obs::Json(r.stats.chunks_reissued);
  p["chunks_delivered"] = obs::Json(r.stats.chunks_delivered);
  p["restarts"] = obs::Json(r.stats.restarts);
  p["chunks_voided"] = obs::Json(r.stats.chunks_voided);
  p["sends_suppressed"] = obs::Json(r.stats.sends_suppressed);
  p["double_applies"] = obs::Json(r.stats.double_applies);
  p["channel_busy_s"] = obs::Json(r.channel_busy_s);
  json.add_point(series, std::move(p));
}

}  // namespace

int main() {
  mcnet::bench::JsonReporter json("bench_collectives");
  json.meta()["topology"] = mcnet::obs::Json(std::string("mesh2d_8x8"));
  json.meta()["op"] = mcnet::obs::Json(std::string("allreduce"));
  json.meta()["atab_topology"] = mcnet::obs::Json(std::string("kary_k_2_wrap"));
  json.meta()["heartbeat_period_us"] = mcnet::obs::Json(200.0);

  const std::uint32_t phases = mcnet::bench::scaled_runs(6);
  std::printf(
      "series,x,group_size,chunks,churn_events_per_s,phases_started,"
      "phases_completed,mean_phase_us,max_phase_us,chunks_sent,chunks_reissued,"
      "restarts,chunks_voided,double_applies,channel_busy_s\n");

  // Allreduce completion latency vs group size (zero churn).
  for (const std::uint32_t size : {4u, 8u, 16u, 32u}) {
    PointConfig pc;
    pc.group_size = size;
    pc.phases = phases;
    emit(json, "size", size, pc, run_point(pc));
  }

  // Completion latency vs chunks per root: more concurrent multicasts per
  // member against the same wormhole fabric.
  for (const std::uint32_t chunks : {1u, 2u, 4u, 8u}) {
    PointConfig pc;
    pc.chunks = chunks;
    pc.phases = phases;
    emit(json, "chunk", chunks, pc, run_point(pc));
  }

  // Completion latency vs churn rate.  The zero-churn point must show
  // zero re-issued chunks (tools/coll_smoke.sh pins this).
  for (const double churn : {0.0, 1e3, 2e3, 4e3}) {
    PointConfig pc;
    pc.churn_events_per_s = churn;
    pc.phases = phases;
    emit(json, "churn", churn, pc, run_point(pc));
  }

  // All-to-all broadcast on k-ary 2-cubes: wormhole completion time next
  // to the Jung & Sakho lower bound and the synchronous step-model
  // schedule (steps/LB ratio is the bound-check the smoke gate verifies).
  for (const std::uint32_t k : {2u, 3u, 4u}) {
    const auto r = run_atab_point(k, phases);
    PointConfig pc;
    pc.group_size = k * k;
    pc.chunks = 1;
    emit(json, "atab", k, pc, r.phase);
    // Extend the just-emitted CSV line context with the model numbers.
    std::printf("atab_model,%u,%llu,%llu,%.4f,%d\n", k,
                static_cast<unsigned long long>(r.model.steps),
                static_cast<unsigned long long>(r.model.lower_bound),
                static_cast<double>(r.model.steps) /
                    static_cast<double>(r.model.lower_bound),
                r.model.complete ? 1 : 0);
    obs::Json p = mcnet::obs::Json::object();
    p["x"] = mcnet::obs::Json(k);
    p["y"] = mcnet::obs::Json(static_cast<double>(r.model.steps) /
                              static_cast<double>(r.model.lower_bound));
    p["atab_steps"] = mcnet::obs::Json(r.model.steps);
    p["atab_lower_bound"] = mcnet::obs::Json(r.model.lower_bound);
    p["atab_complete"] = mcnet::obs::Json(r.model.complete);
    p["nodes"] = mcnet::obs::Json(r.model.nodes);
    json.add_point("atab_model", std::move(p));
  }
  return 0;
}
