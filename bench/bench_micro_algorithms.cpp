// google-benchmark microbenchmarks backing the complexity claims of
// Chapters 5-6: O(k log k) message preparation, O(k^2) greedy-ST tree
// construction, and per-multicast routing costs of every algorithm.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "core/dual_path.hpp"
#include "core/route_factory.hpp"
#include "evsim/random.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

const topo::Mesh2D& big_mesh() {
  static const topo::Mesh2D mesh(32, 32);
  return mesh;
}
const mcast::MeshRoutingSuite& mesh_suite() {
  static const mcast::MeshRoutingSuite suite(big_mesh());
  return suite;
}
const topo::Hypercube& big_cube() {
  static const topo::Hypercube cube(10);
  return cube;
}
const mcast::CubeRoutingSuite& cube_suite() {
  static const mcast::CubeRoutingSuite suite(big_cube());
  return suite;
}

mcast::MulticastRequest random_request(const topo::Topology& t, std::uint32_t k,
                                       std::uint64_t seed) {
  evsim::Rng rng(seed);
  const topo::NodeId src = rng.uniform_int(0, t.num_nodes() - 1);
  return {src, rng.sample_destinations(t.num_nodes(), src, k)};
}

void BM_DualPathPrepare(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto req = random_request(big_mesh(), k, 1);
  const ham::MeshBoustrophedonLabeling lab(big_mesh());
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcast::dual_path_prepare(lab, req));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_DualPathPrepare)->RangeMultiplier(4)->Range(4, 512)->Complexity();

template <Algorithm A>
void BM_MeshRoute(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto req = random_request(big_mesh(), k, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mesh_suite().route(A, req));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_MeshRoute<Algorithm::kSortedMP>)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_MeshRoute<Algorithm::kGreedyST>)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_MeshRoute<Algorithm::kXFirstMT>)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_MeshRoute<Algorithm::kDividedGreedyMT>)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();
BENCHMARK(BM_MeshRoute<Algorithm::kDualPath>)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_MeshRoute<Algorithm::kMultiPath>)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_MeshRoute<Algorithm::kFixedPath>)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_MeshRoute<Algorithm::kDCXFirstTree>)
    ->RangeMultiplier(4)
    ->Range(4, 256)
    ->Complexity();

template <Algorithm A>
void BM_CubeRoute(benchmark::State& state) {
  const auto k = static_cast<std::uint32_t>(state.range(0));
  const auto req = random_request(big_cube(), k, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cube_suite().route(A, req));
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_CubeRoute<Algorithm::kSortedMP>)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_CubeRoute<Algorithm::kGreedyST>)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_CubeRoute<Algorithm::kLenTree>)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_CubeRoute<Algorithm::kDualPath>)->RangeMultiplier(4)->Range(4, 256)->Complexity();
BENCHMARK(BM_CubeRoute<Algorithm::kMultiPath>)->RangeMultiplier(4)->Range(4, 256)->Complexity();

// Console output forwarded unchanged; per-iteration runs also land in the
// shared JSON report as series "<benchmark>" with x = problem size (the
// SetComplexityN value) and y = adjusted real time per iteration (ns).
class JsonForwardingReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonForwardingReporter(mcnet::bench::JsonReporter* json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    ConsoleReporter::ReportRuns(runs);
    if (json_ == nullptr) return;
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration) continue;
      const std::string name = run.benchmark_name();
      const std::string series = name.substr(0, name.find('/'));
      mcnet::obs::Json p = mcnet::obs::Json::object();
      p["x"] = mcnet::obs::Json(static_cast<double>(run.complexity_n));
      p["y"] = mcnet::obs::Json(run.GetAdjustedRealTime());
      p["iterations"] = mcnet::obs::Json(run.iterations);
      json_->add_point(series, std::move(p));
    }
  }

 private:
  mcnet::bench::JsonReporter* json_;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  mcnet::bench::JsonReporter json("bench_micro_algorithms");
  JsonForwardingReporter reporter(&json);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  return 0;
}
