// Figure 7.6: additional traffic of the deadlock-free multicast methods
// (dual-path, multi-path, fixed-path) on a 6-cube -- the static
// measurement of the Chapter 6 algorithms.
#include "bench_common.hpp"

int main() {
  mcnet::bench::JsonReporter json("bench_fig7_06_static_cube");
  using namespace mcnet;
  using mcast::Algorithm;
  const topo::Hypercube cube(6);
  const mcast::CubeRoutingSuite suite(cube);

  const auto algo = [&suite](Algorithm a) {
    return [&suite, a](const mcast::MulticastRequest& req) { return suite.route(a, req); };
  };
  bench::run_static_sweep(
      "=== Figure 7.6: dual-/multi-/fixed-path multicast on a 6-cube ===", cube,
      {1, 2, 4, 6, 8, 10, 15, 20, 25, 30, 40, 50, 60},
      {{"dual-path", algo(Algorithm::kDualPath)},
       {"multi-path", algo(Algorithm::kMultiPath)},
       {"fixed-path", algo(Algorithm::kFixedPath)},
       {"greedy-ST", algo(Algorithm::kGreedyST)}}, &json);
  return 0;
}
