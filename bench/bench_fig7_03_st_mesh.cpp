// Figure 7.3: additional traffic of the greedy ST algorithm on a 32x32
// mesh versus multiple one-to-one and broadcast delivery.
#include "bench_common.hpp"

int main() {
  mcnet::bench::JsonReporter json("bench_fig7_03_st_mesh");
  using namespace mcnet;
  using mcast::Algorithm;
  const topo::Mesh2D mesh(32, 32);
  const mcast::MeshRoutingSuite suite(mesh);

  const auto algo = [&suite](Algorithm a) {
    return [&suite, a](const mcast::MulticastRequest& req) { return suite.route(a, req); };
  };
  bench::run_static_sweep(
      "=== Figure 7.3: greedy ST algorithm on a 32x32 mesh ===", mesh,
      {1, 2, 5, 10, 20, 50, 100, 150, 200, 300, 400, 500, 600, 700, 800, 900},
      {{"greedy-ST", algo(Algorithm::kGreedyST)},
       {"multi-unicast", algo(Algorithm::kMultiUnicast)},
       {"broadcast", algo(Algorithm::kBroadcast)}},
      &json, /*base_runs=*/600);
  return 0;
}
