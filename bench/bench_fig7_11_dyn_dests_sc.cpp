// Figure 7.11: average network latency versus destination count on a
// single-channel 8x8 mesh under relatively high load: dual-path vs
// multi-path vs fixed-path.  Multi-path's source becomes a hot spot (it
// occupies all outgoing channels at once) and degrades for large
// destination sets; fixed-path converges to dual-path behaviour.
#include "bench_common.hpp"

int main() {
  mcnet::bench::JsonReporter json("bench_fig7_11_dyn_dests_sc");
  using namespace mcnet;
  using mcast::Algorithm;
  const topo::Mesh2D mesh(8, 8);

  bench::DynamicSweepConfig cfg;
  cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 1};
  bench::run_dynamic_dest_sweep(
      "=== Figure 7.11: latency vs destinations, single-channel 8x8 mesh, 400 us ===",
      mesh, 400.0, {1, 5, 10, 15, 20, 25, 30, 35, 40, 45},
      {bench::router_series(mesh, Algorithm::kDualPath, 1),
       bench::router_series(mesh, Algorithm::kMultiPath, 1),
       bench::router_series(mesh, Algorithm::kFixedPath, 1)},
      cfg, &json);
  return 0;
}
