// Shared harness code for the figure-reproduction benches: random multicast
// workloads, static traffic sweeps, dynamic latency sweeps, aligned table
// printing matching the series the paper's figures plot, and a JSON
// reporter that writes every bench's results as a machine-readable
// "mcnet-bench-v1" document (see src/obs/bench_schema.hpp and
// docs/OBSERVABILITY.md) alongside the human table.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "core/route_cache.hpp"
#include "core/router.hpp"
#include "evsim/random.hpp"
#include "evsim/stats.hpp"
#include "obs/bench_schema.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "wormhole/experiment.hpp"

namespace mcnet::bench {

/// Global scale knob: MCNET_BENCH_SCALE multiplies every run count
/// (default 1.0; use e.g. 0.1 for a smoke run, 5 for tighter statistics).
/// Non-finite or non-positive values are rejected (scale 1.0) instead of
/// being fed into run-count arithmetic.
inline double bench_scale() {
  if (const char* s = std::getenv("MCNET_BENCH_SCALE")) {
    char* end = nullptr;
    const double v = std::strtod(s, &end);
    if (end != s && std::isfinite(v) && v > 0.0) return v;
  }
  return 1.0;
}

inline std::uint32_t scaled_runs(std::uint32_t base) {
  const double v = static_cast<double>(base) * bench_scale();
  // Clamp before the double -> uint32_t cast: a huge MCNET_BENCH_SCALE
  // must saturate, not overflow into UB.  (!(v > 8.0) also catches NaN.)
  if (!(v > 8.0)) return 8u;
  constexpr auto kMax = std::numeric_limits<std::uint32_t>::max();
  if (v >= static_cast<double>(kMax)) return kMax;
  return static_cast<std::uint32_t>(v);
}

/// Scale a message-count style quantity the same way (clamped, UB-free).
inline std::uint64_t scaled_count(std::uint64_t base) {
  const double v = static_cast<double>(base) * bench_scale();
  if (!(v > 1.0)) return 1u;
  constexpr auto kMax = std::numeric_limits<std::uint64_t>::max();
  if (v >= static_cast<double>(kMax)) return kMax;
  return static_cast<std::uint64_t>(v);
}

// ---------------------------------------------------------------------------
// Structured JSON results
// ---------------------------------------------------------------------------

/// True unless MCNET_BENCH_JSON is "0", "off" or "none" (JSON output is on
/// by default; the knob exists for timing runs that must not touch disk).
inline bool json_output_enabled() {
  if (const char* s = std::getenv("MCNET_BENCH_JSON")) {
    const std::string v = s;
    if (v == "0" || v == "off" || v == "none") return false;
  }
  return true;
}

/// Collects series/points/histograms for one bench binary and writes a
/// schema-valid "mcnet-bench-v1" JSON file on destruction (or explicit
/// write()).  Output path: $MCNET_BENCH_JSON_DIR/<bench>.json, defaulting
/// to ./<bench>.json; set MCNET_BENCH_JSON=off to disable.
class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : bench_(std::move(bench_name)), start_(std::chrono::steady_clock::now()) {}

  JsonReporter(const JsonReporter&) = delete;
  JsonReporter& operator=(const JsonReporter&) = delete;

  ~JsonReporter() {
    if (!written_) (void)write();
  }

  /// Free-form metadata object ("topology", "params", ...).
  [[nodiscard]] obs::Json& meta() { return meta_; }

  /// Append one point (an object with at least finite "x" and "y") to the
  /// named series, creating the series on first use.
  void add_point(const std::string& series, obs::Json point) {
    for (auto& [name, points] : series_) {
      if (name == series) {
        points.push_back(std::move(point));
        return;
      }
    }
    series_.emplace_back(series, obs::Json::array());
    series_.back().second.push_back(std::move(point));
  }

  /// Record a named histogram summary (count/mean/min/max/p50/p90/p99).
  void add_histogram(const std::string& name, const obs::HistogramSnapshot& snapshot) {
    histograms_[name] = obs::histogram_to_json(snapshot);
  }

  /// Dump a whole registry (counters, gauges, histogram summaries) under
  /// the "metrics" key.
  void add_metrics(const obs::MetricsRegistry& registry) { metrics_ = registry.to_json(); }

  /// Reporter-owned registry: sweeps attach it to their simulations so a
  /// whole binary (multiple sweeps included) aggregates into one set of
  /// instruments, dumped automatically on write().
  [[nodiscard]] obs::MetricsRegistry& registry() {
    registry_used_ = true;
    return registry_;
  }

  /// The standard mapping of one dynamic-experiment result to a point.
  /// `ci_half_us` is NaN for invalid CIs and serialises as null, which is
  /// exactly what the schema demands when ci_valid is false.
  [[nodiscard]] static obs::Json dynamic_point(double x, const worm::DynamicResult& r) {
    obs::Json p = obs::Json::object();
    p["x"] = obs::Json(x);
    p["y"] = obs::Json(r.mean_latency_us);
    p["latency_us"] = obs::Json(r.mean_latency_us);
    p["ci_half_us"] = obs::Json(r.ci_half_us);
    p["ci_valid"] = obs::Json(r.ci_valid);
    p["completion_us"] = obs::Json(r.mean_completion_us);
    p["blocking_us"] = obs::Json(r.mean_blocking_us);
    p["utilization"] = obs::Json(r.utilization);
    p["deliveries"] = obs::Json(r.deliveries);
    p["messages_completed"] = obs::Json(r.messages_completed);
    p["messages_injected"] = obs::Json(r.messages_injected);
    p["sim_time_s"] = obs::Json(r.sim_time_s);
    p["converged"] = obs::Json(r.converged);
    p["saturated"] = obs::Json(r.saturated);
    return p;
  }

  [[nodiscard]] std::string path() const {
    if (const char* dir = std::getenv("MCNET_BENCH_JSON_DIR")) {
      return std::string(dir) + "/" + bench_ + ".json";
    }
    return bench_ + ".json";
  }

  /// Assemble and write the document.  Returns true on success (also when
  /// output is disabled); diagnostics go to stderr.
  bool write() {
    written_ = true;
    if (!json_output_enabled()) return true;
    if (registry_used_) {
      for (const char* name : {"network.delivery_latency_s", "network.grant_wait_s",
                               "network.channel_hold_s"}) {
        const obs::HistogramSnapshot snap = registry_.histogram(name).snapshot();
        if (snap.count > 0 && !histograms_.contains(name)) add_histogram(name, snap);
      }
      if (!metrics_.is_object()) add_metrics(registry_);
    }
    obs::Json doc = obs::Json::object();
    doc["schema"] = obs::Json(std::string(obs::kBenchSchemaName));
    doc["bench"] = obs::Json(bench_);
    doc["scale"] = obs::Json(bench_scale());
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    doc["wall_clock_s"] =
        obs::Json(std::chrono::duration_cast<std::chrono::duration<double>>(elapsed).count());
    obs::Json series = obs::Json::array();
    for (auto& [name, points] : series_) {
      obs::Json entry = obs::Json::object();
      entry["name"] = obs::Json(name);
      entry["points"] = std::move(points);
      series.push_back(std::move(entry));
    }
    doc["series"] = std::move(series);
    if (meta_.size() > 0) doc["meta"] = meta_;
    if (histograms_.size() > 0) doc["histograms"] = histograms_;
    if (metrics_.is_object()) doc["metrics"] = metrics_;

    const std::string file = path();
    std::FILE* f = std::fopen(file.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "json: cannot open %s for writing\n", file.c_str());
      return false;
    }
    const std::string text = doc.dump(2);
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size() &&
                    std::fputc('\n', f) != EOF;
    const bool closed = std::fclose(f) == 0;
    if (ok && closed) {
      std::fprintf(stderr, "json: wrote %s\n", file.c_str());
      return true;
    }
    std::fprintf(stderr, "json: failed writing %s\n", file.c_str());
    return false;
  }

 private:
  std::string bench_;
  std::chrono::steady_clock::time_point start_;
  obs::Json meta_ = obs::Json::object();
  std::vector<std::pair<std::string, obs::Json>> series_;  // name -> points array
  obs::Json histograms_ = obs::Json::object();
  obs::Json metrics_;
  obs::MetricsRegistry registry_;
  bool registry_used_ = false;
  bool written_ = false;
};

// ---------------------------------------------------------------------------
// Static sweeps
// ---------------------------------------------------------------------------

/// Mean additional traffic (traffic - k) of `route_fn` over `runs` random
/// 1-to-k multicasts with uniformly random sources and destination sets.
template <typename RouteFn>
double mean_additional_traffic(const topo::Topology& t, std::uint32_t k, std::uint32_t runs,
                               std::uint64_t seed, const RouteFn& route_fn) {
  evsim::Rng rng(seed);
  double total = 0.0;
  for (std::uint32_t r = 0; r < runs; ++r) {
    const topo::NodeId src = rng.uniform_int(0, t.num_nodes() - 1);
    const mcast::MulticastRequest req{src, rng.sample_destinations(t.num_nodes(), src, k)};
    total += static_cast<double>(route_fn(req).additional_traffic(k));
  }
  return total / runs;
}

/// One column of a static sweep: a named algorithm.
struct StaticSeries {
  std::string name;
  std::function<mcast::MulticastRoute(const mcast::MulticastRequest&)> route;
};

/// Print the paper-figure table: one row per destination count, one column
/// of mean additional traffic per series.  Run counts shrink for large k
/// (the estimator's variance shrinks as traffic concentrates) and scale
/// with MCNET_BENCH_SCALE.  When `json` is given, every cell also lands as
/// a point {x: k, y: mean, runs} in the like-named series.
inline void run_static_sweep(const std::string& title, const topo::Topology& t,
                             const std::vector<std::uint32_t>& ks,
                             const std::vector<StaticSeries>& series,
                             JsonReporter* json = nullptr, std::uint32_t base_runs = 1000,
                             std::uint64_t seed = 2026) {
  std::printf("%s\n", title.c_str());
  std::printf("topology: %s, %u nodes; mean additional traffic (traffic - k) over\n",
              t.name().c_str(), t.num_nodes());
  std::printf("uniform random multicast sets; base runs/point = %u (scale %.2f)\n\n",
              base_runs, bench_scale());
  if (json != nullptr) json->meta()["topology"] = obs::Json(t.name());
  std::printf("%8s %8s", "k", "runs");
  for (const auto& s : series) std::printf(" %18s", s.name.c_str());
  std::printf("\n");
  for (const std::uint32_t k : ks) {
    if (k >= t.num_nodes()) continue;
    const std::uint32_t runs =
        scaled_runs(k <= 100 ? base_runs : (k <= 400 ? base_runs / 3 : base_runs / 8));
    std::printf("%8u %8u", k, runs);
    for (std::size_t si = 0; si < series.size(); ++si) {
      const double mean = mean_additional_traffic(
          t, k, runs, evsim::derive_seed(seed, k * 131 + si), series[si].route);
      std::printf(" %18.1f", mean);
      if (json != nullptr) {
        obs::Json p = obs::Json::object();
        p["x"] = obs::Json(k);
        p["y"] = obs::Json(mean);
        p["runs"] = obs::Json(runs);
        json->add_point(series[si].name, std::move(p));
      }
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n");
}

// ---------------------------------------------------------------------------
// Dynamic sweeps
// ---------------------------------------------------------------------------

/// One dynamic-sweep series: a router driving the wormhole simulator.
struct DynamicSeries {
  std::string name;
  std::shared_ptr<const mcast::Router> router;
};

/// Standard series: `algo` on `t` behind a shared route cache, so repeated
/// destination sets across a sweep's parallel simulations reuse routes.
inline DynamicSeries router_series(const topo::Topology& t, mcast::Algorithm algo,
                                   std::uint8_t copies) {
  return {std::string(mcast::algorithm_name(algo)),
          mcast::make_caching_router(t, algo, copies)};
}

/// Report cache effectiveness for every caching series of a finished sweep
/// (and, when `json` is given, record it under meta.route_cache.<series>).
inline void print_cache_stats(const std::vector<DynamicSeries>& series,
                              JsonReporter* json = nullptr) {
  for (const DynamicSeries& s : series) {
    const auto* caching = dynamic_cast<const mcast::CachingRouter*>(s.router.get());
    if (caching == nullptr) continue;
    const mcast::RouteCacheStats st = caching->stats();
    std::printf("route cache [%s]: %llu hits / %llu misses (%.1f%% hit rate)\n",
                s.name.c_str(), static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses), st.hit_rate() * 100.0);
    if (json != nullptr) {
      obs::Json& entry = json->meta()["route_cache"][s.name];
      entry = obs::Json::object();
      entry["hits"] = obs::Json(st.hits);
      entry["misses"] = obs::Json(st.misses);
      entry["evictions"] = obs::Json(st.evictions);
      entry["hit_rate"] = obs::Json(st.hit_rate());
    }
  }
  std::printf("\n");
}

struct DynamicSweepConfig {
  worm::WormholeParams params;
  std::uint32_t avg_destinations = 10;
  std::uint64_t seed = 7;
  std::uint64_t target_messages = 1500;
  std::uint64_t max_messages = 6000;
  double max_sim_time_s = 0.25;
  std::uint32_t batch_size = 800;
};

namespace detail {

inline void fill_common(worm::DynamicConfig& dc, const DynamicSweepConfig& cfg,
                        obs::MetricsRegistry* metrics) {
  dc.params = cfg.params;
  dc.target_messages = scaled_count(cfg.target_messages);
  dc.max_messages = scaled_count(cfg.max_messages);
  dc.max_sim_time_s = cfg.max_sim_time_s * bench_scale();
  // Size batches so ~25 of them fit in the expected delivery count.
  const std::uint64_t expected_deliveries = dc.target_messages * dc.traffic.avg_destinations;
  dc.batch_size = static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(expected_deliveries / 25, 20, cfg.batch_size));
  dc.metrics = metrics;
}

}  // namespace detail

/// Latency-vs-load sweep (Figures 7.8 / 7.10): rows are per-node message
/// interarrival times, columns are algorithms; cells are mean
/// per-destination latency in microseconds ("sat" marks saturation).
/// JSON series are named "load:<algorithm>" with x = interarrival_us.
inline void run_dynamic_load_sweep(const std::string& title, const topo::Topology& t,
                                   const std::vector<double>& interarrivals_us,
                                   const std::vector<DynamicSeries>& series,
                                   const DynamicSweepConfig& cfg,
                                   JsonReporter* json = nullptr) {
  std::printf("%s\n", title.c_str());
  std::printf(
      "topology: %s; %u-flit messages, %.0f ns/flit, %u channel copies,\n"
      "avg %u destinations/multicast; mean per-destination latency (us)\n\n",
      t.name().c_str(), cfg.params.message_flits, cfg.params.flit_time * 1e9,
      cfg.params.channel_copies, cfg.avg_destinations);
  std::printf("%16s", "interarrival_us");
  for (const auto& s : series) std::printf(" %20s", s.name.c_str());
  std::printf("\n");

  // The reporter's registry serves the whole sweep: the per-point
  // simulations run in parallel and aggregate into the same (thread-safe)
  // instruments.
  obs::MetricsRegistry* metrics =
      (json != nullptr && json_output_enabled()) ? &json->registry() : nullptr;

  // All (load, algorithm) points are independent simulations; spread them
  // over hardware threads.
  const std::size_t n_points = interarrivals_us.size() * series.size();
  std::vector<worm::DynamicResult> results(n_points);
  worm::parallel_for(n_points, [&](std::size_t idx) {
    const std::size_t li = idx / series.size();
    const std::size_t si = idx % series.size();
    worm::DynamicConfig dc;
    dc.traffic = {.mean_interarrival_s = interarrivals_us[li] * 1e-6,
                  .avg_destinations = cfg.avg_destinations,
                  .fixed_destinations = false,
                  .exponential_interarrival = false,
                  .seed = evsim::derive_seed(cfg.seed, idx)};
    detail::fill_common(dc, cfg, metrics);
    results[idx] = worm::run_dynamic(*series[si].router, dc);
  });

  for (std::size_t li = 0; li < interarrivals_us.size(); ++li) {
    std::printf("%16.0f", interarrivals_us[li]);
    for (std::size_t si = 0; si < series.size(); ++si) {
      const worm::DynamicResult& r = results[li * series.size() + si];
      std::printf(" %15.2f%-5s", r.mean_latency_us, r.saturated ? " sat" : "");
      if (json != nullptr) {
        json->add_point("load:" + series[si].name,
                        JsonReporter::dynamic_point(interarrivals_us[li], r));
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
  print_cache_stats(series, json);
  if (json != nullptr) json->meta()["topology"] = obs::Json(t.name());
}

/// Latency-vs-destination-count sweep (Figures 7.9 / 7.11).  JSON series
/// are named "dests:<algorithm>" with x = avg destination count.
inline void run_dynamic_dest_sweep(const std::string& title, const topo::Topology& t,
                                   double interarrival_us,
                                   const std::vector<std::uint32_t>& dest_counts,
                                   const std::vector<DynamicSeries>& series,
                                   DynamicSweepConfig cfg, JsonReporter* json = nullptr) {
  std::printf("%s\n", title.c_str());
  std::printf(
      "topology: %s; %u-flit messages, %.0f ns/flit, %u channel copies,\n"
      "interarrival %.0f us/node; mean per-destination latency (us)\n\n",
      t.name().c_str(), cfg.params.message_flits, cfg.params.flit_time * 1e9,
      cfg.params.channel_copies, interarrival_us);
  std::printf("%12s", "avg_dests");
  for (const auto& s : series) std::printf(" %20s", s.name.c_str());
  std::printf("\n");

  obs::MetricsRegistry* metrics =
      (json != nullptr && json_output_enabled()) ? &json->registry() : nullptr;

  const std::size_t n_points = dest_counts.size() * series.size();
  std::vector<worm::DynamicResult> results(n_points);
  worm::parallel_for(n_points, [&](std::size_t idx) {
    const std::size_t di = idx / series.size();
    const std::size_t si = idx % series.size();
    worm::DynamicConfig dc;
    dc.traffic = {.mean_interarrival_s = interarrival_us * 1e-6,
                  .avg_destinations = dest_counts[di],
                  .fixed_destinations = true,  // exact destination count per row
                  .exponential_interarrival = false,
                  .seed = evsim::derive_seed(cfg.seed, idx)};
    detail::fill_common(dc, cfg, metrics);
    results[idx] = worm::run_dynamic(*series[si].router, dc);
  });

  for (std::size_t di = 0; di < dest_counts.size(); ++di) {
    std::printf("%12u", dest_counts[di]);
    for (std::size_t si = 0; si < series.size(); ++si) {
      const worm::DynamicResult& r = results[di * series.size() + si];
      std::printf(" %15.2f%-5s", r.mean_latency_us, r.saturated ? " sat" : "");
      if (json != nullptr) {
        json->add_point("dests:" + series[si].name,
                        JsonReporter::dynamic_point(dest_counts[di], r));
      }
    }
    std::printf("\n");
  }
  std::printf("\n");
  print_cache_stats(series, json);
  if (json != nullptr) json->meta()["topology"] = obs::Json(t.name());
}

}  // namespace mcnet::bench
