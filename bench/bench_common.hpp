// Shared harness code for the figure-reproduction benches: random multicast
// workloads, static traffic sweeps, dynamic latency sweeps, and aligned
// table printing matching the series the paper's figures plot.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/route_cache.hpp"
#include "core/router.hpp"
#include "evsim/random.hpp"
#include "evsim/stats.hpp"
#include "wormhole/experiment.hpp"

namespace mcnet::bench {

/// Global scale knob: MCNET_BENCH_SCALE multiplies every run count
/// (default 1.0; use e.g. 0.1 for a smoke run, 5 for tighter statistics).
inline double bench_scale() {
  if (const char* s = std::getenv("MCNET_BENCH_SCALE")) {
    const double v = std::atof(s);
    if (v > 0.0) return v;
  }
  return 1.0;
}

inline std::uint32_t scaled_runs(std::uint32_t base) {
  const double v = static_cast<double>(base) * bench_scale();
  return std::max(8u, static_cast<std::uint32_t>(v));
}

/// Mean additional traffic (traffic - k) of `route_fn` over `runs` random
/// 1-to-k multicasts with uniformly random sources and destination sets.
template <typename RouteFn>
double mean_additional_traffic(const topo::Topology& t, std::uint32_t k, std::uint32_t runs,
                               std::uint64_t seed, const RouteFn& route_fn) {
  evsim::Rng rng(seed);
  double total = 0.0;
  for (std::uint32_t r = 0; r < runs; ++r) {
    const topo::NodeId src = rng.uniform_int(0, t.num_nodes() - 1);
    const mcast::MulticastRequest req{src, rng.sample_destinations(t.num_nodes(), src, k)};
    total += static_cast<double>(route_fn(req).additional_traffic(k));
  }
  return total / runs;
}

/// One column of a static sweep: a named algorithm.
struct StaticSeries {
  std::string name;
  std::function<mcast::MulticastRoute(const mcast::MulticastRequest&)> route;
};

/// Print the paper-figure table: one row per destination count, one column
/// of mean additional traffic per series.  Run counts shrink for large k
/// (the estimator's variance shrinks as traffic concentrates) and scale
/// with MCNET_BENCH_SCALE.
inline void run_static_sweep(const std::string& title, const topo::Topology& t,
                             const std::vector<std::uint32_t>& ks,
                             const std::vector<StaticSeries>& series,
                             std::uint32_t base_runs = 1000, std::uint64_t seed = 2026) {
  std::printf("%s\n", title.c_str());
  std::printf("topology: %s, %u nodes; mean additional traffic (traffic - k) over\n",
              t.name().c_str(), t.num_nodes());
  std::printf("uniform random multicast sets; base runs/point = %u (scale %.2f)\n\n",
              base_runs, bench_scale());
  std::printf("%8s %8s", "k", "runs");
  for (const auto& s : series) std::printf(" %18s", s.name.c_str());
  std::printf("\n");
  for (const std::uint32_t k : ks) {
    if (k >= t.num_nodes()) continue;
    const std::uint32_t runs =
        scaled_runs(k <= 100 ? base_runs : (k <= 400 ? base_runs / 3 : base_runs / 8));
    std::printf("%8u %8u", k, runs);
    for (std::size_t si = 0; si < series.size(); ++si) {
      const double mean = mean_additional_traffic(
          t, k, runs, evsim::derive_seed(seed, k * 131 + si), series[si].route);
      std::printf(" %18.1f", mean);
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  std::printf("\n");
}

/// One dynamic-sweep series: a router driving the wormhole simulator.
struct DynamicSeries {
  std::string name;
  std::shared_ptr<const mcast::Router> router;
};

/// Standard series: `algo` on `t` behind a shared route cache, so repeated
/// destination sets across a sweep's parallel simulations reuse routes.
inline DynamicSeries router_series(const topo::Topology& t, mcast::Algorithm algo,
                                   std::uint8_t copies) {
  return {std::string(mcast::algorithm_name(algo)),
          mcast::make_caching_router(t, algo, copies)};
}

/// Report cache effectiveness for every caching series of a finished sweep.
inline void print_cache_stats(const std::vector<DynamicSeries>& series) {
  for (const DynamicSeries& s : series) {
    const auto* caching = dynamic_cast<const mcast::CachingRouter*>(s.router.get());
    if (caching == nullptr) continue;
    const mcast::RouteCacheStats st = caching->stats();
    std::printf("route cache [%s]: %llu hits / %llu misses (%.1f%% hit rate)\n",
                s.name.c_str(), static_cast<unsigned long long>(st.hits),
                static_cast<unsigned long long>(st.misses), st.hit_rate() * 100.0);
  }
  std::printf("\n");
}

struct DynamicSweepConfig {
  worm::WormholeParams params;
  std::uint32_t avg_destinations = 10;
  std::uint64_t seed = 7;
  std::uint64_t target_messages = 1500;
  std::uint64_t max_messages = 6000;
  double max_sim_time_s = 0.25;
  std::uint32_t batch_size = 800;
};

/// Latency-vs-load sweep (Figures 7.8 / 7.10): rows are per-node message
/// interarrival times, columns are algorithms; cells are mean
/// per-destination latency in microseconds ("sat" marks saturation).
inline void run_dynamic_load_sweep(const std::string& title, const topo::Topology& t,
                                   const std::vector<double>& interarrivals_us,
                                   const std::vector<DynamicSeries>& series,
                                   const DynamicSweepConfig& cfg) {
  std::printf("%s\n", title.c_str());
  std::printf(
      "topology: %s; %u-flit messages, %.0f ns/flit, %u channel copies,\n"
      "avg %u destinations/multicast; mean per-destination latency (us)\n\n",
      t.name().c_str(), cfg.params.message_flits, cfg.params.flit_time * 1e9,
      cfg.params.channel_copies, cfg.avg_destinations);
  std::printf("%16s", "interarrival_us");
  for (const auto& s : series) std::printf(" %20s", s.name.c_str());
  std::printf("\n");

  // All (load, algorithm) points are independent simulations; spread them
  // over hardware threads.
  const std::size_t n_points = interarrivals_us.size() * series.size();
  std::vector<worm::DynamicResult> results(n_points);
  worm::parallel_for(n_points, [&](std::size_t idx) {
    const std::size_t li = idx / series.size();
    const std::size_t si = idx % series.size();
    worm::DynamicConfig dc;
    dc.params = cfg.params;
    dc.traffic = {.mean_interarrival_s = interarrivals_us[li] * 1e-6,
                  .avg_destinations = cfg.avg_destinations,
                  .fixed_destinations = false,
                  .exponential_interarrival = false,
                  .seed = evsim::derive_seed(cfg.seed, idx)};
    dc.target_messages = static_cast<std::uint64_t>(cfg.target_messages * bench_scale());
    dc.max_messages = static_cast<std::uint64_t>(cfg.max_messages * bench_scale());
    dc.max_sim_time_s = cfg.max_sim_time_s * bench_scale();
    // Size batches so ~25 of them fit in the expected delivery count.
    const std::uint64_t expected_deliveries =
        dc.target_messages * dc.traffic.avg_destinations;
    dc.batch_size = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        expected_deliveries / 25, 20, cfg.batch_size));
    results[idx] = worm::run_dynamic(*series[si].router, dc);
  });

  for (std::size_t li = 0; li < interarrivals_us.size(); ++li) {
    std::printf("%16.0f", interarrivals_us[li]);
    for (std::size_t si = 0; si < series.size(); ++si) {
      const worm::DynamicResult& r = results[li * series.size() + si];
      std::printf(" %15.2f%-5s", r.mean_latency_us, r.saturated ? " sat" : "");
    }
    std::printf("\n");
  }
  std::printf("\n");
  print_cache_stats(series);
}

/// Latency-vs-destination-count sweep (Figures 7.9 / 7.11).
inline void run_dynamic_dest_sweep(const std::string& title, const topo::Topology& t,
                                   double interarrival_us,
                                   const std::vector<std::uint32_t>& dest_counts,
                                   const std::vector<DynamicSeries>& series,
                                   DynamicSweepConfig cfg) {
  std::printf("%s\n", title.c_str());
  std::printf(
      "topology: %s; %u-flit messages, %.0f ns/flit, %u channel copies,\n"
      "interarrival %.0f us/node; mean per-destination latency (us)\n\n",
      t.name().c_str(), cfg.params.message_flits, cfg.params.flit_time * 1e9,
      cfg.params.channel_copies, interarrival_us);
  std::printf("%12s", "avg_dests");
  for (const auto& s : series) std::printf(" %20s", s.name.c_str());
  std::printf("\n");

  const std::size_t n_points = dest_counts.size() * series.size();
  std::vector<worm::DynamicResult> results(n_points);
  worm::parallel_for(n_points, [&](std::size_t idx) {
    const std::size_t di = idx / series.size();
    const std::size_t si = idx % series.size();
    worm::DynamicConfig dc;
    dc.params = cfg.params;
    dc.traffic = {.mean_interarrival_s = interarrival_us * 1e-6,
                  .avg_destinations = dest_counts[di],
                  .fixed_destinations = true,  // exact destination count per row
                  .exponential_interarrival = false,
                  .seed = evsim::derive_seed(cfg.seed, idx)};
    dc.target_messages = static_cast<std::uint64_t>(cfg.target_messages * bench_scale());
    dc.max_messages = static_cast<std::uint64_t>(cfg.max_messages * bench_scale());
    dc.max_sim_time_s = cfg.max_sim_time_s * bench_scale();
    // Size batches so ~25 of them fit in the expected delivery count.
    const std::uint64_t expected_deliveries =
        dc.target_messages * dc.traffic.avg_destinations;
    dc.batch_size = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
        expected_deliveries / 25, 20, cfg.batch_size));
    results[idx] = worm::run_dynamic(*series[si].router, dc);
  });

  for (std::size_t di = 0; di < dest_counts.size(); ++di) {
    std::printf("%12u", dest_counts[di]);
    for (std::size_t si = 0; si < series.size(); ++si) {
      const worm::DynamicResult& r = results[di * series.size() + si];
      std::printf(" %15.2f%-5s", r.mean_latency_us, r.saturated ? " sat" : "");
    }
    std::printf("\n");
  }
  std::printf("\n");
  print_cache_stats(series);
}

}  // namespace mcnet::bench
