// Figure 7.7: additional traffic of the deadlock-free multicast methods
// (dual-path, multi-path, fixed-path, double-channel X-first tree) on an
// 8x8 mesh, for various destination counts.
#include "bench_common.hpp"

int main() {
  mcnet::bench::JsonReporter json("bench_fig7_07_static_mesh");
  using namespace mcnet;
  using mcast::Algorithm;
  const topo::Mesh2D mesh(8, 8);
  const mcast::MeshRoutingSuite suite(mesh);

  const auto algo = [&suite](Algorithm a) {
    return [&suite, a](const mcast::MulticastRequest& req) { return suite.route(a, req); };
  };
  bench::run_static_sweep(
      "=== Figure 7.7: dual-/multi-/fixed-path multicast on an 8x8 mesh ===", mesh,
      {1, 2, 4, 6, 8, 10, 15, 20, 25, 30, 40, 50, 60},
      {{"dual-path", algo(Algorithm::kDualPath)},
       {"multi-path", algo(Algorithm::kMultiPath)},
       {"fixed-path", algo(Algorithm::kFixedPath)},
       {"dc-X-first-tree", algo(Algorithm::kDCXFirstTree)}}, &json);
  return 0;
}
