// Figure 2.3: comparison of switching technologies -- contention-free
// network latency versus distance for store-and-forward, virtual
// cut-through, circuit switching and wormhole routing.  The analytic
// columns use the Section 2.2 formulas; the simulated columns replay the
// same transfer in the SAF packet simulator and the flit-level wormhole
// simulator to validate the models.
#include <cstdio>

#include "bench_common.hpp"
#include "cdg/analyzers.hpp"
#include "switching/latency_models.hpp"
#include "switching/saf.hpp"

namespace {

using namespace mcnet;

double simulate_saf(const topo::Mesh2D& mesh, std::uint32_t hops, double packet_time) {
  evsim::Scheduler sched;
  sw::SafParams params;
  params.packet_time = packet_time;
  params.structured = true;
  sw::SafNetwork net(mesh, cdg::xfirst_routing(mesh), params, sched);
  double latency = 0.0;
  net.set_on_delivered([&](std::uint32_t, double l) { latency = l; });
  net.inject(0, hops);  // row mesh: node id == distance
  sched.run();
  // The analytic SAF model counts the initial store as one packet time.
  return latency + packet_time;
}

double simulate_wormhole(const topo::Mesh2D& mesh, std::uint32_t hops,
                         const worm::WormholeParams& params) {
  evsim::Scheduler sched;
  worm::Network net(mesh, params, sched);
  double latency = 0.0;
  worm::NetworkHooks hooks;
  hooks.on_delivery = [&](std::uint64_t, topo::NodeId, double l) { latency = l; };
  net.set_hooks(std::move(hooks));
  mcast::MulticastRoute route;
  route.source = 0;
  mcast::PathRoute p;
  for (topo::NodeId n = 0; n <= hops; ++n) p.nodes.push_back(n);
  p.delivery_hops = {hops};
  route.paths.push_back(p);
  net.inject(worm::make_worm_specs(mesh, route, 1));
  sched.run();
  return latency;
}

}  // namespace

int main() {
  const sw::SwitchingParams p{.message_bytes = 128,
                              .bandwidth = 20e6,
                              .header_bytes = 2,
                              .control_bytes = 2,
                              .flit_bytes = 1};
  const topo::Mesh2D row(33, 1);  // a line: node id == hop count
  const worm::WormholeParams wp{.flit_time = p.flit_bytes / p.bandwidth,
                                .message_flits = 128,
                                .channel_copies = 1};

  std::printf("=== Figure 2.3: switching technologies, latency (us) vs distance ===\n");
  std::printf("message %.0f bytes over %.0f Mbyte/s channels\n\n", p.message_bytes,
              p.bandwidth / 1e6);
  std::printf("%6s %12s %12s %12s %12s %14s %14s\n", "D", "SAF", "VCT", "circuit",
              "wormhole", "SAF (sim)", "wormhole (sim)");
  mcnet::bench::JsonReporter json("bench_fig2_3_switching");
  const auto point = [&json](const char* series, std::uint32_t d, double latency_us) {
    mcnet::obs::Json pt = mcnet::obs::Json::object();
    pt["x"] = mcnet::obs::Json(d);
    pt["y"] = mcnet::obs::Json(latency_us);
    json.add_point(series, std::move(pt));
  };
  for (const std::uint32_t d : {1u, 2u, 4u, 8u, 12u, 16u, 20u, 24u, 28u, 32u}) {
    const double saf_us = sw::store_and_forward_latency(p, d) * 1e6;
    const double vct_us = sw::virtual_cut_through_latency(p, d) * 1e6;
    const double circuit_us = sw::circuit_switching_latency(p, d) * 1e6;
    const double worm_us = sw::wormhole_latency(p, d) * 1e6;
    const double saf_sim_us = simulate_saf(row, d, p.message_bytes / p.bandwidth) * 1e6;
    const double worm_sim_us = simulate_wormhole(row, d, wp) * 1e6;
    std::printf("%6u %12.2f %12.2f %12.2f %12.2f %14.2f %14.2f\n", d, saf_us, vct_us,
                circuit_us, worm_us, saf_sim_us, worm_sim_us);
    point("SAF", d, saf_us);
    point("VCT", d, vct_us);
    point("circuit", d, circuit_us);
    point("wormhole", d, worm_us);
    point("SAF (sim)", d, saf_sim_us);
    point("wormhole (sim)", d, worm_sim_us);
  }
  std::printf("\n");
  return 0;
}
