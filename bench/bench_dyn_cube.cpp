// Extension: dynamic wormhole latency on a 6-cube.  Chapter 7.2 evaluates
// only the 2-D mesh; this bench runs the same latency-vs-load sweep for
// the hypercube instantiations of the Chapter 6 algorithms (dual-path,
// multi-path, fixed-path), closing the loop on the Section 6.3 designs.
#include "bench_common.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

worm::RouteBuilder cube_builder(const mcast::CubeRoutingSuite& suite, Algorithm algo) {
  return [&suite, algo](topo::NodeId src, const std::vector<topo::NodeId>& dests) {
    return worm::make_worm_specs(suite.cube(),
                                 suite.route(algo, mcast::MulticastRequest{src, dests}), 1);
  };
}

}  // namespace

int main() {
  const topo::Hypercube cube(6);
  const mcast::CubeRoutingSuite suite(cube);

  bench::DynamicSweepConfig cfg;
  cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 1};
  cfg.avg_destinations = 10;
  bench::run_dynamic_load_sweep(
      "=== Extension: latency vs load on a 6-cube (single channels) ===", cube,
      {2000, 1200, 800, 500, 350, 250, 180},
      {{"dual-path", cube_builder(suite, Algorithm::kDualPath)},
       {"multi-path", cube_builder(suite, Algorithm::kMultiPath)},
       {"fixed-path", cube_builder(suite, Algorithm::kFixedPath)}},
      cfg);

  bench::run_dynamic_dest_sweep(
      "=== Extension: latency vs destinations on a 6-cube, 300 us ===", cube, 300.0,
      {1, 5, 10, 15, 20, 25, 30},
      {{"dual-path", cube_builder(suite, Algorithm::kDualPath)},
       {"multi-path", cube_builder(suite, Algorithm::kMultiPath)},
       {"fixed-path", cube_builder(suite, Algorithm::kFixedPath)}},
      cfg);
  return 0;
}
