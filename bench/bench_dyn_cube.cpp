// Extension: dynamic wormhole latency on a 6-cube.  Chapter 7.2 evaluates
// only the 2-D mesh; this bench runs the same latency-vs-load sweep for
// the hypercube instantiations of the Chapter 6 algorithms (dual-path,
// multi-path, fixed-path), closing the loop on the Section 6.3 designs.
#include "bench_common.hpp"

int main() {
  mcnet::bench::JsonReporter json("bench_dyn_cube");
  using namespace mcnet;
  using mcast::Algorithm;
  const topo::Hypercube cube(6);

  bench::DynamicSweepConfig cfg;
  cfg.params = {.flit_time = 50e-9, .message_flits = 128, .channel_copies = 1};
  cfg.avg_destinations = 10;
  bench::run_dynamic_load_sweep(
      "=== Extension: latency vs load on a 6-cube (single channels) ===", cube,
      {2000, 1200, 800, 500, 350, 250, 180},
      {bench::router_series(cube, Algorithm::kDualPath, 1),
       bench::router_series(cube, Algorithm::kMultiPath, 1),
       bench::router_series(cube, Algorithm::kFixedPath, 1)},
      cfg, &json);

  bench::run_dynamic_dest_sweep(
      "=== Extension: latency vs destinations on a 6-cube, 300 us ===", cube, 300.0,
      {1, 5, 10, 15, 20, 25, 30},
      {bench::router_series(cube, Algorithm::kDualPath, 1),
       bench::router_series(cube, Algorithm::kMultiPath, 1),
       bench::router_series(cube, Algorithm::kFixedPath, 1)},
      cfg, &json);
  return 0;
}
