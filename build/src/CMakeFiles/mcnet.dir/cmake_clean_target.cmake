file(REMOVE_RECURSE
  "libmcnet.a"
)
