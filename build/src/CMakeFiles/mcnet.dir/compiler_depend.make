# Empty compiler generated dependencies file for mcnet.
# This may be replaced when dependencies are built.
