
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdg/analyzers.cpp" "src/CMakeFiles/mcnet.dir/cdg/analyzers.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/cdg/analyzers.cpp.o.d"
  "/root/repo/src/cdg/channel_graph.cpp" "src/CMakeFiles/mcnet.dir/cdg/channel_graph.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/cdg/channel_graph.cpp.o.d"
  "/root/repo/src/core/adaptive_path.cpp" "src/CMakeFiles/mcnet.dir/core/adaptive_path.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/adaptive_path.cpp.o.d"
  "/root/repo/src/core/baselines.cpp" "src/CMakeFiles/mcnet.dir/core/baselines.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/baselines.cpp.o.d"
  "/root/repo/src/core/dc_xfirst_tree.cpp" "src/CMakeFiles/mcnet.dir/core/dc_xfirst_tree.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/dc_xfirst_tree.cpp.o.d"
  "/root/repo/src/core/divided_greedy_mt.cpp" "src/CMakeFiles/mcnet.dir/core/divided_greedy_mt.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/divided_greedy_mt.cpp.o.d"
  "/root/repo/src/core/dual_path.cpp" "src/CMakeFiles/mcnet.dir/core/dual_path.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/dual_path.cpp.o.d"
  "/root/repo/src/core/exact.cpp" "src/CMakeFiles/mcnet.dir/core/exact.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/exact.cpp.o.d"
  "/root/repo/src/core/fixed_path.cpp" "src/CMakeFiles/mcnet.dir/core/fixed_path.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/fixed_path.cpp.o.d"
  "/root/repo/src/core/greedy_st.cpp" "src/CMakeFiles/mcnet.dir/core/greedy_st.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/greedy_st.cpp.o.d"
  "/root/repo/src/core/len_tree.cpp" "src/CMakeFiles/mcnet.dir/core/len_tree.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/len_tree.cpp.o.d"
  "/root/repo/src/core/multi_path.cpp" "src/CMakeFiles/mcnet.dir/core/multi_path.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/multi_path.cpp.o.d"
  "/root/repo/src/core/multicast.cpp" "src/CMakeFiles/mcnet.dir/core/multicast.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/multicast.cpp.o.d"
  "/root/repo/src/core/naive_tree.cpp" "src/CMakeFiles/mcnet.dir/core/naive_tree.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/naive_tree.cpp.o.d"
  "/root/repo/src/core/route_factory.cpp" "src/CMakeFiles/mcnet.dir/core/route_factory.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/route_factory.cpp.o.d"
  "/root/repo/src/core/routing_function.cpp" "src/CMakeFiles/mcnet.dir/core/routing_function.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/routing_function.cpp.o.d"
  "/root/repo/src/core/sorted_mp.cpp" "src/CMakeFiles/mcnet.dir/core/sorted_mp.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/sorted_mp.cpp.o.d"
  "/root/repo/src/core/xfirst_mt.cpp" "src/CMakeFiles/mcnet.dir/core/xfirst_mt.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/core/xfirst_mt.cpp.o.d"
  "/root/repo/src/evsim/facility.cpp" "src/CMakeFiles/mcnet.dir/evsim/facility.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/evsim/facility.cpp.o.d"
  "/root/repo/src/evsim/process.cpp" "src/CMakeFiles/mcnet.dir/evsim/process.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/evsim/process.cpp.o.d"
  "/root/repo/src/evsim/random.cpp" "src/CMakeFiles/mcnet.dir/evsim/random.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/evsim/random.cpp.o.d"
  "/root/repo/src/evsim/scheduler.cpp" "src/CMakeFiles/mcnet.dir/evsim/scheduler.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/evsim/scheduler.cpp.o.d"
  "/root/repo/src/evsim/stats.cpp" "src/CMakeFiles/mcnet.dir/evsim/stats.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/evsim/stats.cpp.o.d"
  "/root/repo/src/service/multicast_service.cpp" "src/CMakeFiles/mcnet.dir/service/multicast_service.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/service/multicast_service.cpp.o.d"
  "/root/repo/src/switching/circuit.cpp" "src/CMakeFiles/mcnet.dir/switching/circuit.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/switching/circuit.cpp.o.d"
  "/root/repo/src/switching/latency_models.cpp" "src/CMakeFiles/mcnet.dir/switching/latency_models.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/switching/latency_models.cpp.o.d"
  "/root/repo/src/switching/saf.cpp" "src/CMakeFiles/mcnet.dir/switching/saf.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/switching/saf.cpp.o.d"
  "/root/repo/src/topology/hamiltonian.cpp" "src/CMakeFiles/mcnet.dir/topology/hamiltonian.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/topology/hamiltonian.cpp.o.d"
  "/root/repo/src/topology/hypercube.cpp" "src/CMakeFiles/mcnet.dir/topology/hypercube.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/topology/hypercube.cpp.o.d"
  "/root/repo/src/topology/kary_ncube.cpp" "src/CMakeFiles/mcnet.dir/topology/kary_ncube.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/topology/kary_ncube.cpp.o.d"
  "/root/repo/src/topology/mesh2d.cpp" "src/CMakeFiles/mcnet.dir/topology/mesh2d.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/topology/mesh2d.cpp.o.d"
  "/root/repo/src/topology/mesh3d.cpp" "src/CMakeFiles/mcnet.dir/topology/mesh3d.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/topology/mesh3d.cpp.o.d"
  "/root/repo/src/topology/topology.cpp" "src/CMakeFiles/mcnet.dir/topology/topology.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/topology/topology.cpp.o.d"
  "/root/repo/src/viz/ascii.cpp" "src/CMakeFiles/mcnet.dir/viz/ascii.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/viz/ascii.cpp.o.d"
  "/root/repo/src/wormhole/channel_pool.cpp" "src/CMakeFiles/mcnet.dir/wormhole/channel_pool.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/wormhole/channel_pool.cpp.o.d"
  "/root/repo/src/wormhole/deadlock.cpp" "src/CMakeFiles/mcnet.dir/wormhole/deadlock.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/wormhole/deadlock.cpp.o.d"
  "/root/repo/src/wormhole/experiment.cpp" "src/CMakeFiles/mcnet.dir/wormhole/experiment.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/wormhole/experiment.cpp.o.d"
  "/root/repo/src/wormhole/network.cpp" "src/CMakeFiles/mcnet.dir/wormhole/network.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/wormhole/network.cpp.o.d"
  "/root/repo/src/wormhole/traffic.cpp" "src/CMakeFiles/mcnet.dir/wormhole/traffic.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/wormhole/traffic.cpp.o.d"
  "/root/repo/src/wormhole/worm.cpp" "src/CMakeFiles/mcnet.dir/wormhole/worm.cpp.o" "gcc" "src/CMakeFiles/mcnet.dir/wormhole/worm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
