#----------------------------------------------------------------
# Generated CMake target import file for configuration "Release".
#----------------------------------------------------------------

# Commands may need to know the format version.
set(CMAKE_IMPORT_FILE_VERSION 1)

# Import target "mcnet::mcnet" for configuration "Release"
set_property(TARGET mcnet::mcnet APPEND PROPERTY IMPORTED_CONFIGURATIONS RELEASE)
set_target_properties(mcnet::mcnet PROPERTIES
  IMPORTED_LINK_INTERFACE_LANGUAGES_RELEASE "CXX"
  IMPORTED_LOCATION_RELEASE "${_IMPORT_PREFIX}/lib/libmcnet.a"
  )

list(APPEND _cmake_import_check_targets mcnet::mcnet )
list(APPEND _cmake_import_check_files_for_mcnet::mcnet "${_IMPORT_PREFIX}/lib/libmcnet.a" )

# Commands beyond this point should not need to know the version.
set(CMAKE_IMPORT_FILE_VERSION)
