# Empty dependencies file for mcnet_sim.
# This may be replaced when dependencies are built.
