file(REMOVE_RECURSE
  "CMakeFiles/mcnet_sim.dir/mcnet_sim.cpp.o"
  "CMakeFiles/mcnet_sim.dir/mcnet_sim.cpp.o.d"
  "mcnet_sim"
  "mcnet_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcnet_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
