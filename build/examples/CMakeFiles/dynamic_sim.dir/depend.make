# Empty dependencies file for dynamic_sim.
# This may be replaced when dependencies are built.
