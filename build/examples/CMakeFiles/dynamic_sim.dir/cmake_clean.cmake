file(REMOVE_RECURSE
  "CMakeFiles/dynamic_sim.dir/dynamic_sim.cpp.o"
  "CMakeFiles/dynamic_sim.dir/dynamic_sim.cpp.o.d"
  "dynamic_sim"
  "dynamic_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
