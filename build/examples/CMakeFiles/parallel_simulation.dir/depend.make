# Empty dependencies file for parallel_simulation.
# This may be replaced when dependencies are built.
