file(REMOVE_RECURSE
  "CMakeFiles/parallel_simulation.dir/parallel_simulation.cpp.o"
  "CMakeFiles/parallel_simulation.dir/parallel_simulation.cpp.o.d"
  "parallel_simulation"
  "parallel_simulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_simulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
