# Empty compiler generated dependencies file for cdg_explorer.
# This may be replaced when dependencies are built.
