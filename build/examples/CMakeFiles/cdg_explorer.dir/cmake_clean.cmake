file(REMOVE_RECURSE
  "CMakeFiles/cdg_explorer.dir/cdg_explorer.cpp.o"
  "CMakeFiles/cdg_explorer.dir/cdg_explorer.cpp.o.d"
  "cdg_explorer"
  "cdg_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdg_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
