file(REMOVE_RECURSE
  "CMakeFiles/routing_patterns.dir/routing_patterns.cpp.o"
  "CMakeFiles/routing_patterns.dir/routing_patterns.cpp.o.d"
  "routing_patterns"
  "routing_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
