# Empty dependencies file for routing_patterns.
# This may be replaced when dependencies are built.
