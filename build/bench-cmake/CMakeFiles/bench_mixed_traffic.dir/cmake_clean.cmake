file(REMOVE_RECURSE
  "../bench/bench_mixed_traffic"
  "../bench/bench_mixed_traffic.pdb"
  "CMakeFiles/bench_mixed_traffic.dir/bench_mixed_traffic.cpp.o"
  "CMakeFiles/bench_mixed_traffic.dir/bench_mixed_traffic.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixed_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
