# Empty dependencies file for bench_fig7_10_dyn_load_sc.
# This may be replaced when dependencies are built.
