# Empty dependencies file for bench_ablation_vct.
# This may be replaced when dependencies are built.
