file(REMOVE_RECURSE
  "../bench/bench_ablation_vct"
  "../bench/bench_ablation_vct.pdb"
  "CMakeFiles/bench_ablation_vct.dir/bench_ablation_vct.cpp.o"
  "CMakeFiles/bench_ablation_vct.dir/bench_ablation_vct.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
