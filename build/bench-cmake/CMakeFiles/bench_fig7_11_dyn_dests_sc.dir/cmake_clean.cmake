file(REMOVE_RECURSE
  "../bench/bench_fig7_11_dyn_dests_sc"
  "../bench/bench_fig7_11_dyn_dests_sc.pdb"
  "CMakeFiles/bench_fig7_11_dyn_dests_sc.dir/bench_fig7_11_dyn_dests_sc.cpp.o"
  "CMakeFiles/bench_fig7_11_dyn_dests_sc.dir/bench_fig7_11_dyn_dests_sc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_11_dyn_dests_sc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
