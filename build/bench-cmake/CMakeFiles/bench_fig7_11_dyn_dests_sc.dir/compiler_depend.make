# Empty compiler generated dependencies file for bench_fig7_11_dyn_dests_sc.
# This may be replaced when dependencies are built.
