file(REMOVE_RECURSE
  "../bench/bench_ablation_arbitration"
  "../bench/bench_ablation_arbitration.pdb"
  "CMakeFiles/bench_ablation_arbitration.dir/bench_ablation_arbitration.cpp.o"
  "CMakeFiles/bench_ablation_arbitration.dir/bench_ablation_arbitration.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_arbitration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
