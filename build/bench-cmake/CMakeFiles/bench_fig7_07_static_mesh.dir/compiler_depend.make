# Empty compiler generated dependencies file for bench_fig7_07_static_mesh.
# This may be replaced when dependencies are built.
