# Empty dependencies file for bench_fig7_05_mt_mesh.
# This may be replaced when dependencies are built.
