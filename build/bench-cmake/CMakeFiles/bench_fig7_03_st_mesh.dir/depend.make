# Empty dependencies file for bench_fig7_03_st_mesh.
# This may be replaced when dependencies are built.
