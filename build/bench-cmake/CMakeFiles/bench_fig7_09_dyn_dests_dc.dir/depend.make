# Empty dependencies file for bench_fig7_09_dyn_dests_dc.
# This may be replaced when dependencies are built.
