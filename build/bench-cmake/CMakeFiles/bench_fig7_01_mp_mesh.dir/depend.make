# Empty dependencies file for bench_fig7_01_mp_mesh.
# This may be replaced when dependencies are built.
