file(REMOVE_RECURSE
  "../bench/bench_ablation_optimality"
  "../bench/bench_ablation_optimality.pdb"
  "CMakeFiles/bench_ablation_optimality.dir/bench_ablation_optimality.cpp.o"
  "CMakeFiles/bench_ablation_optimality.dir/bench_ablation_optimality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_optimality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
