file(REMOVE_RECURSE
  "../bench/bench_fig7_02_mp_cube"
  "../bench/bench_fig7_02_mp_cube.pdb"
  "CMakeFiles/bench_fig7_02_mp_cube.dir/bench_fig7_02_mp_cube.cpp.o"
  "CMakeFiles/bench_fig7_02_mp_cube.dir/bench_fig7_02_mp_cube.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_02_mp_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
