# Empty dependencies file for bench_fig7_02_mp_cube.
# This may be replaced when dependencies are built.
