# Empty compiler generated dependencies file for bench_dyn_cube.
# This may be replaced when dependencies are built.
