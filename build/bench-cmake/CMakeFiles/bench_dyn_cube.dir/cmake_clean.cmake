file(REMOVE_RECURSE
  "../bench/bench_dyn_cube"
  "../bench/bench_dyn_cube.pdb"
  "CMakeFiles/bench_dyn_cube.dir/bench_dyn_cube.cpp.o"
  "CMakeFiles/bench_dyn_cube.dir/bench_dyn_cube.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dyn_cube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
