# Empty dependencies file for bench_fig7_08_dyn_load_dc.
# This may be replaced when dependencies are built.
