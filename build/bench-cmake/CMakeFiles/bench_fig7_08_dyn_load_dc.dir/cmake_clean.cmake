file(REMOVE_RECURSE
  "../bench/bench_fig7_08_dyn_load_dc"
  "../bench/bench_fig7_08_dyn_load_dc.pdb"
  "CMakeFiles/bench_fig7_08_dyn_load_dc.dir/bench_fig7_08_dyn_load_dc.cpp.o"
  "CMakeFiles/bench_fig7_08_dyn_load_dc.dir/bench_fig7_08_dyn_load_dc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_08_dyn_load_dc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
