# Empty dependencies file for bench_fig7_06_static_cube.
# This may be replaced when dependencies are built.
