# Empty dependencies file for bench_tables_ch5.
# This may be replaced when dependencies are built.
