file(REMOVE_RECURSE
  "../bench/bench_tables_ch5"
  "../bench/bench_tables_ch5.pdb"
  "CMakeFiles/bench_tables_ch5.dir/bench_tables_ch5.cpp.o"
  "CMakeFiles/bench_tables_ch5.dir/bench_tables_ch5.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tables_ch5.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
