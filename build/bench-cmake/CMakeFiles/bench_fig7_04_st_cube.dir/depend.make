# Empty dependencies file for bench_fig7_04_st_cube.
# This may be replaced when dependencies are built.
