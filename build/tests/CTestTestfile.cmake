# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_hamiltonian[1]_include.cmake")
include("/root/repo/build/tests/test_cdg[1]_include.cmake")
include("/root/repo/build/tests/test_multicast[1]_include.cmake")
include("/root/repo/build/tests/test_evsim[1]_include.cmake")
include("/root/repo/build/tests/test_sorted_mp[1]_include.cmake")
include("/root/repo/build/tests/test_greedy_st[1]_include.cmake")
include("/root/repo/build/tests/test_mt_heuristics[1]_include.cmake")
include("/root/repo/build/tests/test_path_multicast[1]_include.cmake")
include("/root/repo/build/tests/test_dc_tree[1]_include.cmake")
include("/root/repo/build/tests/test_wormhole[1]_include.cmake")
include("/root/repo/build/tests/test_route_factory[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_exact[1]_include.cmake")
include("/root/repo/build/tests/test_generalized[1]_include.cmake")
include("/root/repo/build/tests/test_switching[1]_include.cmake")
include("/root/repo/build/tests/test_adaptive[1]_include.cmake")
include("/root/repo/build/tests/test_service[1]_include.cmake")
include("/root/repo/build/tests/test_network_audit[1]_include.cmake")
include("/root/repo/build/tests/test_circuit[1]_include.cmake")
include("/root/repo/build/tests/test_viz[1]_include.cmake")
include("/root/repo/build/tests/test_vct[1]_include.cmake")
include("/root/repo/build/tests/test_figures[1]_include.cmake")
include("/root/repo/build/tests/test_arbitration[1]_include.cmake")
include("/root/repo/build/tests/test_evsim_queueing[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
