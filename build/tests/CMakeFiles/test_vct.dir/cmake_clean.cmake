file(REMOVE_RECURSE
  "CMakeFiles/test_vct.dir/test_vct.cpp.o"
  "CMakeFiles/test_vct.dir/test_vct.cpp.o.d"
  "test_vct"
  "test_vct.pdb"
  "test_vct[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
