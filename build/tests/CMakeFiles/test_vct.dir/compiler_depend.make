# Empty compiler generated dependencies file for test_vct.
# This may be replaced when dependencies are built.
