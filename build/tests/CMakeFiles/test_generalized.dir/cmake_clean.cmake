file(REMOVE_RECURSE
  "CMakeFiles/test_generalized.dir/test_generalized.cpp.o"
  "CMakeFiles/test_generalized.dir/test_generalized.cpp.o.d"
  "test_generalized"
  "test_generalized.pdb"
  "test_generalized[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_generalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
