file(REMOVE_RECURSE
  "CMakeFiles/test_route_factory.dir/test_route_factory.cpp.o"
  "CMakeFiles/test_route_factory.dir/test_route_factory.cpp.o.d"
  "test_route_factory"
  "test_route_factory.pdb"
  "test_route_factory[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_route_factory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
