# Empty dependencies file for test_route_factory.
# This may be replaced when dependencies are built.
