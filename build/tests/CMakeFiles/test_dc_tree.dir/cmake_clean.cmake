file(REMOVE_RECURSE
  "CMakeFiles/test_dc_tree.dir/test_dc_tree.cpp.o"
  "CMakeFiles/test_dc_tree.dir/test_dc_tree.cpp.o.d"
  "test_dc_tree"
  "test_dc_tree.pdb"
  "test_dc_tree[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dc_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
