# Empty dependencies file for test_dc_tree.
# This may be replaced when dependencies are built.
