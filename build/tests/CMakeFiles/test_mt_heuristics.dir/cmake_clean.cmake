file(REMOVE_RECURSE
  "CMakeFiles/test_mt_heuristics.dir/test_mt_heuristics.cpp.o"
  "CMakeFiles/test_mt_heuristics.dir/test_mt_heuristics.cpp.o.d"
  "test_mt_heuristics"
  "test_mt_heuristics.pdb"
  "test_mt_heuristics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mt_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
