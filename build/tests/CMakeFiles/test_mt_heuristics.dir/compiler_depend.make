# Empty compiler generated dependencies file for test_mt_heuristics.
# This may be replaced when dependencies are built.
