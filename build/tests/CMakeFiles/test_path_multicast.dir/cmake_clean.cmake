file(REMOVE_RECURSE
  "CMakeFiles/test_path_multicast.dir/test_path_multicast.cpp.o"
  "CMakeFiles/test_path_multicast.dir/test_path_multicast.cpp.o.d"
  "test_path_multicast"
  "test_path_multicast.pdb"
  "test_path_multicast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_path_multicast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
