file(REMOVE_RECURSE
  "CMakeFiles/test_sorted_mp.dir/test_sorted_mp.cpp.o"
  "CMakeFiles/test_sorted_mp.dir/test_sorted_mp.cpp.o.d"
  "test_sorted_mp"
  "test_sorted_mp.pdb"
  "test_sorted_mp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sorted_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
