# Empty dependencies file for test_sorted_mp.
# This may be replaced when dependencies are built.
