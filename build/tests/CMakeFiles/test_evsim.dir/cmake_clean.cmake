file(REMOVE_RECURSE
  "CMakeFiles/test_evsim.dir/test_evsim.cpp.o"
  "CMakeFiles/test_evsim.dir/test_evsim.cpp.o.d"
  "test_evsim"
  "test_evsim.pdb"
  "test_evsim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
