# Empty dependencies file for test_evsim.
# This may be replaced when dependencies are built.
