file(REMOVE_RECURSE
  "CMakeFiles/test_evsim_queueing.dir/test_evsim_queueing.cpp.o"
  "CMakeFiles/test_evsim_queueing.dir/test_evsim_queueing.cpp.o.d"
  "test_evsim_queueing"
  "test_evsim_queueing.pdb"
  "test_evsim_queueing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_evsim_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
