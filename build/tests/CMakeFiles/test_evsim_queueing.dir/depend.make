# Empty dependencies file for test_evsim_queueing.
# This may be replaced when dependencies are built.
