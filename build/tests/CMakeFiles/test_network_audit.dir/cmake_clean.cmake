file(REMOVE_RECURSE
  "CMakeFiles/test_network_audit.dir/test_network_audit.cpp.o"
  "CMakeFiles/test_network_audit.dir/test_network_audit.cpp.o.d"
  "test_network_audit"
  "test_network_audit.pdb"
  "test_network_audit[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_network_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
