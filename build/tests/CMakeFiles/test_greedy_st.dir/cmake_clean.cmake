file(REMOVE_RECURSE
  "CMakeFiles/test_greedy_st.dir/test_greedy_st.cpp.o"
  "CMakeFiles/test_greedy_st.dir/test_greedy_st.cpp.o.d"
  "test_greedy_st"
  "test_greedy_st.pdb"
  "test_greedy_st[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_greedy_st.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
