# Empty dependencies file for test_greedy_st.
# This may be replaced when dependencies are built.
