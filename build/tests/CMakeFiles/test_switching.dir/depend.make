# Empty dependencies file for test_switching.
# This may be replaced when dependencies are built.
