// Tests for the static multicast analyzer (src/analysis/): instance
// enumeration, dependency extraction under both tree semantics, the pinned
// naive-tree deadlock regression, clean proofs for the Chapter 6
// algorithms, and the invariant sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "analysis/instances.hpp"
#include "analysis/invariants.hpp"
#include "analysis/mcdg.hpp"
#include "analysis/scenario.hpp"
#include "core/dual_path.hpp"

namespace {

using namespace mcnet;
using analysis::AnalysisConfig;
using analysis::DeadlockReport;
using analysis::InvariantReport;
using analysis::Scenario;
using analysis::TreeSemantics;
using mcast::Algorithm;
using mcast::MulticastRequest;
using mcast::MulticastRoute;
using mcast::TreeRoute;
using topo::ChannelId;
using topo::NodeId;

TEST(Instances, EnumeratesEverySourceAndDestinationSet) {
  const auto fixture = analysis::make_fixture("mesh:3x3");
  const std::size_t expected = analysis::count_instances(9, 2);  // 9 * (8 + C(8,2))
  EXPECT_EQ(expected, 9u * (8u + 28u));
  const auto instances = analysis::enumerate_instances(*fixture.topology, 2, 0);
  EXPECT_EQ(instances.size(), expected);
  std::set<std::pair<NodeId, std::vector<NodeId>>> seen;
  for (const MulticastRequest& r : instances) {
    EXPECT_FALSE(r.destinations.empty());
    EXPECT_TRUE(std::is_sorted(r.destinations.begin(), r.destinations.end()));
    EXPECT_EQ(std::count(r.destinations.begin(), r.destinations.end(), r.source), 0);
    seen.insert({r.source, r.destinations});
  }
  EXPECT_EQ(seen.size(), expected);  // no duplicates
}

TEST(Instances, StrideSamplingRespectsBudget) {
  const auto fixture = analysis::make_fixture("mesh:4x4");
  const auto sampled = analysis::enumerate_instances(*fixture.topology, 2, 100);
  EXPECT_GT(sampled.size(), 50u);
  EXPECT_LE(sampled.size(), 110u);  // stride rounding may slightly overshoot
}

TEST(Scenario, VerifiableAlgorithmsMatchTopology) {
  const auto mesh = analysis::make_fixture("mesh:4x4");
  const auto mesh_algos = analysis::verifiable_algorithms(mesh);
  EXPECT_TRUE(std::count(mesh_algos.begin(), mesh_algos.end(), Algorithm::kXFirstMT));
  EXPECT_TRUE(std::count(mesh_algos.begin(), mesh_algos.end(), Algorithm::kDCXFirstTree));

  const auto cube = analysis::make_fixture("cube:3");
  const auto cube_algos = analysis::verifiable_algorithms(cube);
  EXPECT_TRUE(std::count(cube_algos.begin(), cube_algos.end(), Algorithm::kEcubeMT));
  EXPECT_TRUE(
      std::count(cube_algos.begin(), cube_algos.end(), Algorithm::kBinomialBroadcast));

  for (const char* spec : {"mesh3:3x3x3", "kary:4x2"}) {
    const auto f = analysis::make_fixture(spec);
    const auto algos = analysis::verifiable_algorithms(f);
    EXPECT_TRUE(std::count(algos.begin(), algos.end(), Algorithm::kDualPath)) << spec;
    EXPECT_TRUE(std::count(algos.begin(), algos.end(), Algorithm::kMultiPath)) << spec;
    EXPECT_TRUE(std::count(algos.begin(), algos.end(), Algorithm::kFixedPath)) << spec;
  }
}

TEST(Scenario, RejectsAlgorithmTopologyMismatch) {
  const auto mesh = analysis::make_fixture("mesh:4x4");
  EXPECT_THROW((void)analysis::make_scenario(mesh, Algorithm::kEcubeMT),
               std::invalid_argument);
  const auto cube = analysis::make_fixture("cube:3");
  EXPECT_THROW((void)analysis::make_scenario(cube, Algorithm::kXFirstMT),
               std::invalid_argument);
}

// Hand-planted tree: two root branches of two links each, created in order
// (spine first).  Under lock-step semantics the two branch channels must
// depend on each other (the cross-branch 2-cycle shape); under independent
// branches only parent -> child edges may appear.
TEST(Mcdg, TreeSemanticsControlDependencyExtraction) {
  const auto fixture = analysis::make_fixture("mesh:3x3");
  const auto* mesh = fixture.mesh2d;
  TreeRoute tree;
  tree.source = mesh->node(1, 1);
  const auto l0 = tree.add_link(mesh->node(1, 1), mesh->node(1, 0), -1);
  const auto l1 =
      tree.add_link(mesh->node(1, 0), mesh->node(0, 0), static_cast<std::int32_t>(l0));
  const auto l2 = tree.add_link(mesh->node(1, 1), mesh->node(1, 2), -1);
  const auto l3 =
      tree.add_link(mesh->node(1, 2), mesh->node(2, 2), static_cast<std::int32_t>(l2));
  tree.delivery_links = {l1, l3};
  MulticastRoute route;
  route.source = tree.source;
  route.trees.push_back(tree);

  const auto channel = [&](std::uint32_t a, std::uint32_t b) {
    const ChannelId c = mesh->channel(a, b);
    EXPECT_NE(c, topo::kInvalidChannel);
    return c;
  };
  const ChannelId spine2 = channel(mesh->node(1, 0), mesh->node(0, 0));   // l1
  const ChannelId branch1 = channel(mesh->node(1, 1), mesh->node(1, 2));  // l2
  const ChannelId branch2 = channel(mesh->node(1, 2), mesh->node(2, 2));  // l3

  Scenario s;
  s.topology = fixture.topology.get();
  s.tree_semantics = TreeSemantics::kLockStep;
  cdg::ChannelGraph lockstep(fixture.topology->num_channels());
  analysis::add_route_dependencies(s, route, lockstep, 7);
  // Cross-branch wait both ways between the two second-hop channels: l3 is
  // not in l1's acquisition closure and vice versa.
  EXPECT_EQ(lockstep.edge_tags(spine2, branch2).size(), 1u);
  EXPECT_EQ(lockstep.edge_tags(spine2, branch2).front(), 7u);
  EXPECT_FALSE(lockstep.edge_tags(branch2, spine2).empty());
  // l2's closure contains l0 (earlier root sibling) but never l1.
  EXPECT_FALSE(lockstep.edge_tags(spine2, branch1).empty());

  s.tree_semantics = TreeSemantics::kIndependentBranches;
  cdg::ChannelGraph independent(fixture.topology->num_channels());
  analysis::add_route_dependencies(s, route, independent, 7);
  // Only parent -> child pairs: 2 edges, no cross-branch dependencies.
  EXPECT_EQ(independent.num_dependencies(), 2u);
  EXPECT_FALSE(independent.edge_tags(branch1, branch2).empty());
  EXPECT_TRUE(independent.edge_tags(spine2, branch2).empty());
  EXPECT_TRUE(independent.edge_tags(branch2, spine2).empty());
}

// Regression pin for the paper's central negative result (Section 6.1): the
// naive X-first multicast tree deadlocks on a 2-D mesh, and the analyzer
// must shrink the counterexample to two concurrent double-destination
// multicasts whose dependency cycle has length two and is realizable (the
// two worms' hold states are channel-disjoint).
TEST(McdgRegression, NaiveXFirstTreeYieldsShrunkRealizableWitness) {
  const auto fixture = analysis::make_fixture("mesh:4x4");
  const Scenario s = analysis::make_scenario(fixture, Algorithm::kXFirstMT);
  const DeadlockReport report = analysis::analyze_deadlock(s, {});
  EXPECT_GT(report.dependencies, 0u);
  ASSERT_FALSE(report.deadlock_free());
  const auto& w = *report.witness;
  ASSERT_EQ(w.instances.size(), 2u);
  // Shrinking cannot go below two destinations per multicast: a single
  // destination makes the tree a path, and X-first paths cannot close a
  // two-instance cycle.
  EXPECT_EQ(w.instances[0].destinations.size(), 2u);
  EXPECT_EQ(w.instances[1].destinations.size(), 2u);
  ASSERT_EQ(w.cycle.size(), 2u);
  EXPECT_NE(w.cycle[0].channel, w.cycle[1].channel);
  ASSERT_EQ(w.edge_instance.size(), 2u);
  EXPECT_NE(w.edge_instance[0], w.edge_instance[1]);
  EXPECT_TRUE(w.realizable);
  EXPECT_FALSE(w.format(*fixture.topology).empty());
}

// The delta-debugged witness must be 1-minimal: dropping any single
// instance from the shrunk pair leaves a deadlock-free subset (a lone
// X-first tree cannot close a cycle on its own).
TEST(McdgRegression, ShrunkNaiveTreeWitnessIsOneMinimal) {
  const auto fixture = analysis::make_fixture("mesh:4x4");
  const Scenario s = analysis::make_scenario(fixture, Algorithm::kXFirstMT);
  const DeadlockReport report = analysis::analyze_deadlock(s, {});
  ASSERT_TRUE(report.witness.has_value());
  const auto& instances = report.witness->instances;
  EXPECT_TRUE(analysis::subset_deadlocks(s, instances, /*require_realizable=*/true));
  for (std::size_t drop = 0; drop < instances.size(); ++drop) {
    std::vector<MulticastRequest> subset;
    for (std::size_t i = 0; i < instances.size(); ++i) {
      if (i != drop) subset.push_back(instances[i]);
    }
    EXPECT_FALSE(analysis::subset_deadlocks(s, subset, /*require_realizable=*/true))
        << "witness not 1-minimal: instance " << drop << " is redundant";
  }
}

TEST(McdgRegression, NaiveHypercubeTreesDeadlock) {
  const auto fixture = analysis::make_fixture("cube:3");
  for (const Algorithm a : {Algorithm::kEcubeMT, Algorithm::kBinomialBroadcast}) {
    const Scenario s = analysis::make_scenario(fixture, a);
    const DeadlockReport report = analysis::analyze_deadlock(s, {});
    EXPECT_FALSE(report.deadlock_free()) << s.name;
    ASSERT_TRUE(report.witness.has_value()) << s.name;
    EXPECT_GE(report.witness->instances.size(), 2u) << s.name;
  }
}

TEST(Mcdg, ChapterSixAlgorithmsProveClean) {
  const struct {
    const char* spec;
    std::vector<Algorithm> algorithms;
  } cases[] = {
      {"mesh:4x4",
       {Algorithm::kDCXFirstTree, Algorithm::kDualPath, Algorithm::kMultiPath,
        Algorithm::kFixedPath}},
      {"cube:3", {Algorithm::kDualPath, Algorithm::kMultiPath, Algorithm::kFixedPath}},
      {"mesh3:2x3x3", {Algorithm::kDualPath, Algorithm::kFixedPath}},
      {"kary:4x2", {Algorithm::kDualPath, Algorithm::kMultiPath}},
  };
  for (const auto& c : cases) {
    const auto fixture = analysis::make_fixture(c.spec);
    for (const Algorithm a : c.algorithms) {
      const Scenario s = analysis::make_scenario(fixture, a);
      const DeadlockReport deadlock = analysis::analyze_deadlock(s, {});
      EXPECT_TRUE(deadlock.deadlock_free()) << s.name;
      const InvariantReport inv = analysis::check_invariants(s, {});
      EXPECT_TRUE(inv.ok()) << s.name << ": " << inv.violations << " violations";
      EXPECT_GT(inv.instances_checked, 0u) << s.name;
    }
  }
}

TEST(Mcdg, WitnessSurvivesWithShrinkingDisabled) {
  const auto fixture = analysis::make_fixture("mesh:4x4");
  const Scenario s = analysis::make_scenario(fixture, Algorithm::kXFirstMT);
  AnalysisConfig config;
  config.shrink = false;
  const DeadlockReport report = analysis::analyze_deadlock(s, config);
  ASSERT_FALSE(report.deadlock_free());
  EXPECT_GE(report.witness->instances.size(), 2u);
  EXPECT_GE(report.witness->cycle.size(), 2u);
}

// The invariant sweep must flag deliberately broken routes: a route that
// walks source -> dest -> source -> dest breaks label monotonicity, reuses
// a channel, and overshoots the shortest-path bound; an algorithm that
// throws for some instance breaks reachability totality.
TEST(Invariants, FlagsBrokenRoutes) {
  const auto fixture = analysis::make_fixture("mesh:3x3");
  Scenario s;
  s.topology = fixture.topology.get();
  s.labeling = fixture.labeling.get();
  s.label_monotone_paths = true;
  s.shortest_unicast = true;
  s.route = [&fixture](const MulticastRequest& r) {
    if (r.destinations.size() != 1) {
      throw std::runtime_error("only unicast supported");
    }
    const NodeId dest = r.destinations.front();
    MulticastRoute route;
    route.source = r.source;
    mcast::PathRoute path;
    path.channel_class = mcast::kHighChannelClass;
    // Ping-pong to an adjacent destination; otherwise a plain two-node path.
    if (fixture.topology->channel(r.source, dest) != topo::kInvalidChannel) {
      path.nodes = {r.source, dest, r.source, dest};
      path.delivery_hops = {3};
    } else {
      path.nodes = {r.source};
      NodeId cur = r.source;
      // Greedy walk: step to any neighbour closer to dest (grid distance).
      while (cur != dest) {
        for (const NodeId n : fixture.topology->neighbors(cur)) {
          if (fixture.topology->distance(n, dest) < fixture.topology->distance(cur, dest)) {
            cur = n;
            break;
          }
        }
        path.nodes.push_back(cur);
      }
      path.delivery_hops = {static_cast<std::uint32_t>(path.nodes.size() - 1)};
    }
    route.paths.push_back(std::move(path));
    return route;
  };

  // The adjacent ping-pong routes violate capacity, monotonicity and the
  // shortest-path bound; at least one of each must be flagged.
  AnalysisConfig unicast;
  unicast.max_set_size = 1;
  const InvariantReport report = analysis::check_invariants(s, unicast);
  EXPECT_FALSE(report.ok());
  EXPECT_GT(report.violations, 0u);
  std::set<std::string> kinds;
  for (const auto& v : report.samples) kinds.insert(v.kind);
  EXPECT_TRUE(kinds.contains("capacity"));
  EXPECT_TRUE(kinds.contains("label-monotone"));
  EXPECT_TRUE(kinds.contains("shortest"));

  // An algorithm that throws for some instance breaks reachability totality.
  Scenario throwing = s;
  throwing.route = [](const MulticastRequest&) -> MulticastRoute {
    throw std::runtime_error("unroutable");
  };
  const InvariantReport unreachable = analysis::check_invariants(throwing, unicast);
  EXPECT_FALSE(unreachable.ok());
  EXPECT_EQ(unreachable.violations, unreachable.instances_checked);
  ASSERT_FALSE(unreachable.samples.empty());
  EXPECT_EQ(unreachable.samples.front().kind, "reachability");
}

TEST(Invariants, CleanAlgorithmsPassOnWraparoundTorus) {
  // The shortest-unicast claim is relaxed on wraparound rings (the label
  // router cannot shortcut across wrap channels), so dual-path must still
  // report zero violations there.
  const auto fixture = analysis::make_fixture("kary:3x2");
  const Scenario s = analysis::make_scenario(fixture, Algorithm::kDualPath);
  EXPECT_FALSE(s.shortest_unicast);
  const InvariantReport report = analysis::check_invariants(s, {});
  EXPECT_TRUE(report.ok()) << report.violations << " violations";
}

}  // namespace
