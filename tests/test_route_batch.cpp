// The batch routing engine: RouteBatch arena semantics, the route_many
// batch/scalar equivalence property across every topology/algorithm pair
// of the CI matrix, CachingRouter's batch fast path (dedup, memo, batch
// counters, config validation) and FaultAwareRouter's batched epoch sync.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

#include "core/route_batch.hpp"
#include "core/route_cache.hpp"
#include "core/router.hpp"
#include "evsim/random.hpp"
#include "fault/fault_router.hpp"
#include "fault/fault_state.hpp"
#include "topology/mesh2d.hpp"
#include "topology/spec.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

std::vector<mcast::MulticastRequest> random_requests(const topo::Topology& t,
                                                     std::uint32_t count,
                                                     std::uint32_t max_k,
                                                     std::uint64_t seed) {
  evsim::Rng rng(seed);
  std::vector<mcast::MulticastRequest> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const topo::NodeId src = rng.uniform_int(0, t.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, max_k);
    out.push_back({src, rng.sample_destinations(t.num_nodes(), src, k)});
  }
  return out;
}

// (a) RouteBatch value semantics: append/route_at round-trips, per-element
// metrics match the scalar accessors, append_from copies across batches.

TEST(RouteBatch, AppendRoundTripsAndMetricsMatch) {
  const topo::Mesh2D mesh(6, 5);
  const auto router = mcast::make_router(mesh, Algorithm::kDualPath);
  const auto requests = random_requests(mesh, 10, 8, 3);

  mcast::RouteBatch batch;
  std::vector<mcast::MulticastRoute> scalar;
  std::uint64_t total = 0;
  for (const auto& req : requests) {
    scalar.push_back(router->route(req));
    EXPECT_EQ(batch.append(scalar.back()), scalar.size() - 1);
    total += scalar.back().traffic();
  }
  ASSERT_EQ(batch.size(), requests.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch.route_at(i), scalar[i]);
    EXPECT_EQ(batch.source_at(i), requests[i].source);
    EXPECT_EQ(batch.traffic_at(i), scalar[i].traffic());
    EXPECT_EQ(batch.deliveries_at(i), scalar[i].num_deliveries());
    EXPECT_EQ(batch.max_delivery_hops_at(i), scalar[i].max_delivery_hops());
  }
  EXPECT_EQ(batch.total_traffic(), total);
}

TEST(RouteBatch, AppendFromCopiesAcrossBatches) {
  const topo::Mesh2D mesh(5, 5);
  const auto router = mcast::make_router(mesh, Algorithm::kMultiPath);
  const auto requests = random_requests(mesh, 6, 6, 17);

  const mcast::RouteBatch source = router->route_many(requests);
  mcast::RouteBatch copy;
  // Reversed order: the copied element must be independent of position.
  for (std::size_t i = source.size(); i-- > 0;) copy.append_from(source, i);
  for (std::size_t i = 0; i < source.size(); ++i) {
    EXPECT_EQ(copy.route_at(copy.size() - 1 - i), source.route_at(i));
  }
}

TEST(RouteBatch, ClearDropsElementsAndArenas) {
  const topo::Mesh2D mesh(4, 4);
  const auto router = mcast::make_router(mesh, Algorithm::kDualPath);
  mcast::RouteBatch batch = router->route_many(random_requests(mesh, 4, 4, 9));
  ASSERT_GT(batch.arena_path_nodes(), 0u);
  batch.clear();
  EXPECT_TRUE(batch.empty());
  EXPECT_EQ(batch.arena_path_nodes(), 0u);
  EXPECT_EQ(batch.total_traffic(), 0u);
}

TEST(RouteBatch, EmptySpanYieldsEmptyBatch) {
  const topo::Mesh2D mesh(4, 4);
  const auto router = mcast::make_caching_router(mesh, Algorithm::kDualPath);
  EXPECT_TRUE(router->route_many({}).empty());
}

// (b) The equivalence property: route_many == N scalar route() calls for
// every algorithm on every topology of the CI matrix, each element
// structurally valid.  Also pinned through a CachingRouter, cold and warm.

TEST(RouteMany, EquivalentToScalarAcrossTopologyMatrix) {
  for (const std::string spec :
       {"mesh:5x4", "cube:4", "mesh3:3x3x3", "kary:4x2", "karymesh:4x3"}) {
    const auto topology = topo::make_topology(spec);
    const auto requests = random_requests(*topology, 12, 6, 29);
    for (const Algorithm a : mcast::supported_algorithms(*topology)) {
      SCOPED_TRACE(spec + " / " + std::string(mcast::algorithm_name(a)));
      const auto router = mcast::make_router(*topology, a);
      const mcast::RouteBatch batch = router->route_many(requests);
      ASSERT_EQ(batch.size(), requests.size());
      for (std::size_t i = 0; i < requests.size(); ++i) {
        const mcast::MulticastRoute route = batch.route_at(i);
        EXPECT_EQ(route, router->route(requests[i]));
        verify_route(*topology, requests[i], route);
      }

      // Cached wrapper: cold pass fills, warm pass hits memo + shards.
      const auto cached = mcast::make_caching_router(*topology, a);
      for (int pass = 0; pass < 2; ++pass) {
        const mcast::RouteBatch cb = cached->route_many(requests);
        ASSERT_EQ(cb.size(), requests.size());
        for (std::size_t i = 0; i < requests.size(); ++i) {
          EXPECT_EQ(cb.route_at(i), router->route(requests[i]));
        }
      }
    }
  }
}

TEST(RouteMany, DuplicatesAndPermutationsMatchScalar) {
  const topo::Mesh2D mesh(8, 8);
  const auto cached = mcast::make_caching_router(mesh, Algorithm::kDualPath);
  const auto plain = mcast::make_router(mesh, Algorithm::kDualPath);

  // Byte-identical duplicates (dedup path), permuted destination lists
  // (distinct raw identity, same cache key) and fresh requests (misses).
  std::vector<mcast::MulticastRequest> requests = {
      {0, {5, 10, 15}}, {0, {5, 10, 15}}, {0, {15, 5, 10}},
      {3, {7, 42}},     {0, {5, 10, 15}}, {3, {42, 7}},
      {9, {1, 2, 3}},   {9, {1, 2, 3}},
  };
  for (int pass = 0; pass < 3; ++pass) {
    if (pass == 2) cached->clear();  // memo generation must roll over too
    const mcast::RouteBatch batch = cached->route_many(requests);
    ASSERT_EQ(batch.size(), requests.size());
    for (std::size_t i = 0; i < requests.size(); ++i) {
      EXPECT_EQ(batch.route_at(i), plain->route(requests[i])) << "pass " << pass;
    }
  }
}

TEST(RouteMany, ConcurrentBatchesMatchScalar) {
  const topo::Mesh2D mesh(8, 8);
  const auto cached = mcast::make_caching_router(
      mesh, Algorithm::kDualPath, 1, {.capacity = 32, .shards = 4});  // force evictions
  const auto plain = mcast::make_router(mesh, Algorithm::kDualPath);
  const auto requests = random_requests(mesh, 96, 8, 41);
  std::vector<mcast::MulticastRoute> expected;
  for (const auto& req : requests) expected.push_back(plain->route(req));

  std::vector<std::thread> threads;
  std::vector<int> mismatches(4, 0);
  for (int w = 0; w < 4; ++w) {
    threads.emplace_back([&, w] {
      for (int rep = 0; rep < 8; ++rep) {
        const mcast::RouteBatch batch = cached->route_many(requests);
        for (std::size_t i = 0; i < requests.size(); ++i) {
          if (batch.route_at(i) != expected[i]) ++mismatches[w];
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (const int m : mismatches) EXPECT_EQ(m, 0);
  EXPECT_LE(cached->size(), cached->capacity());
}

// (c) CachingRouter batch counters and config validation.

TEST(RouteCache, BatchCountersAccountForEveryRequest) {
  const topo::Mesh2D mesh(6, 6);
  const auto cached = mcast::make_caching_router(mesh, Algorithm::kDualPath);

  const mcast::MulticastRequest a{0, {5, 10}};
  const mcast::MulticastRequest b{1, {8, 20}};
  const mcast::MulticastRequest c{2, {30}};
  const std::vector<mcast::MulticastRequest> requests = {a, b, a, c, b, a};

  (void)cached->route_many(requests);
  mcast::RouteCacheStats st = cached->stats();
  EXPECT_EQ(st.batch_hits, 0u);
  EXPECT_EQ(st.batch_misses, 3u);  // a, b, c routed once each
  EXPECT_EQ(st.batch_dedup, 3u);   // the three repeats never reach a shard
  EXPECT_EQ(st.batch_hits + st.batch_misses + st.batch_dedup, requests.size());
  EXPECT_EQ(st.misses, 3u);

  (void)cached->route_many(requests);
  st = cached->stats();
  EXPECT_EQ(st.batch_hits, 3u);  // all three identities now cached
  EXPECT_EQ(st.batch_misses, 3u);
  EXPECT_EQ(st.batch_dedup, 6u);
  EXPECT_EQ(st.batch_hits + st.batch_misses + st.batch_dedup, 2 * requests.size());
}

TEST(RouteCache, RejectsZeroCapacityAndZeroShards) {
  const topo::Mesh2D mesh(4, 4);
  EXPECT_THROW(
      {
        try {
          (void)mcast::make_caching_router(mesh, Algorithm::kDualPath, 1, {.capacity = 0});
        } catch (const std::invalid_argument& e) {
          EXPECT_NE(std::string(e.what()).find("capacity must be >= 1"), std::string::npos);
          throw;
        }
      },
      std::invalid_argument);
  EXPECT_THROW(
      {
        try {
          (void)mcast::make_caching_router(mesh, Algorithm::kDualPath, 1,
                                           {.capacity = 8, .shards = 0});
        } catch (const std::invalid_argument& e) {
          EXPECT_NE(std::string(e.what()).find("shards must be >= 1"), std::string::npos);
          throw;
        }
      },
      std::invalid_argument);
  EXPECT_THROW(mcast::CachingRouter(nullptr, {}), std::invalid_argument);
}

TEST(RouteCache, CapacityIsExactAndShardsClampToIt) {
  const topo::Mesh2D mesh(4, 4);
  // 10 slots over 4 shards: no rounding; 3 slots over 8 shards: clamp to 3.
  const auto a = mcast::make_caching_router(mesh, Algorithm::kDualPath, 1,
                                            {.capacity = 10, .shards = 4});
  EXPECT_EQ(a->capacity(), 10u);
  EXPECT_EQ(a->shards(), 4u);
  const auto b = mcast::make_caching_router(mesh, Algorithm::kDualPath, 1,
                                            {.capacity = 3, .shards = 8});
  EXPECT_EQ(b->capacity(), 3u);
  EXPECT_EQ(b->shards(), 3u);

  // The bound is enforced across shards: never more than capacity() routes.
  const auto requests = random_requests(mesh, 40, 4, 53);
  for (const auto& req : requests) (void)a->route(req);
  EXPECT_LE(a->size(), a->capacity());
  EXPECT_GE(a->stats().evictions, 40u - 10u - a->stats().hits);
}

// (d) FaultAwareRouter: one epoch sync per batch, healthy delegation,
// degraded per-request fallback, and the same throw contract as route().

TEST(FaultRouterBatch, HealthyAndDegradedMatchScalar) {
  const topo::Mesh2D mesh(4, 4);
  auto faults = std::make_shared<fault::FaultState>(mesh);
  const auto router = fault::make_fault_aware_router(mesh, Algorithm::kDualPath, faults);
  const auto requests = random_requests(mesh, 10, 5, 61);

  const mcast::RouteBatch healthy = router->route_many(requests);
  ASSERT_EQ(healthy.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(healthy.route_at(i), router->route(requests[i]));
  }

  // Degrade (still connected): the batch path must agree with scalar
  // fault-aware routing element by element.
  faults->fail_channel(mesh.channel(0, 1));
  faults->fail_channel(mesh.channel(1, 0));
  const mcast::RouteBatch degraded = router->route_many(requests);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(degraded.route_at(i), router->route(requests[i]));
    verify_route(mesh, requests[i], degraded.route_at(i));
  }
}

TEST(FaultRouterBatch, ThrowsOnUnreachableDestination) {
  const topo::Mesh2D mesh(3, 3);
  auto faults = std::make_shared<fault::FaultState>(mesh);
  const auto router = fault::make_fault_aware_router(mesh, Algorithm::kDualPath, faults);
  for (const topo::NodeId v : mesh.neighbors(8)) {
    faults->fail_channel(mesh.channel(8, v));
    faults->fail_channel(mesh.channel(v, 8));
  }
  const std::vector<mcast::MulticastRequest> requests = {{0, {4}}, {0, {4, 8}}};
  EXPECT_THROW((void)router->route_many(requests), std::runtime_error);
}

}  // namespace
