#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "topology/hypercube.hpp"
#include "topology/kary_ncube.hpp"
#include "topology/mesh2d.hpp"
#include "topology/mesh3d.hpp"

namespace {

using namespace mcnet::topo;

TEST(Mesh2D, BasicShape) {
  const Mesh2D m(4, 3);
  EXPECT_EQ(m.num_nodes(), 12u);
  EXPECT_EQ(m.width(), 4u);
  EXPECT_EQ(m.height(), 3u);
  EXPECT_EQ(m.max_degree(), 4u);
  EXPECT_EQ(m.diameter(), 5u);
  // 2 * (links): horizontal 3*3=9, vertical 4*2=8 -> 17 links, 34 channels.
  EXPECT_EQ(m.num_channels(), 34u);
}

TEST(Mesh2D, CoordinateRoundTrip) {
  const Mesh2D m(7, 5);
  for (NodeId u = 0; u < m.num_nodes(); ++u) {
    EXPECT_EQ(m.node(m.coord(u)), u);
  }
}

TEST(Mesh2D, NeighborsAreAdjacentAtDistanceOne) {
  const Mesh2D m(5, 4);
  for (NodeId u = 0; u < m.num_nodes(); ++u) {
    for (const NodeId v : m.neighbors(u)) {
      EXPECT_EQ(m.distance(u, v), 1u);
      EXPECT_TRUE(m.adjacent(u, v));
      EXPECT_TRUE(m.adjacent(v, u));
    }
  }
}

TEST(Mesh2D, CornerAndInteriorDegrees) {
  const Mesh2D m(4, 4);
  EXPECT_EQ(m.neighbors(m.node(0, 0)).size(), 2u);
  EXPECT_EQ(m.neighbors(m.node(1, 0)).size(), 3u);
  EXPECT_EQ(m.neighbors(m.node(1, 1)).size(), 4u);
}

TEST(Mesh2D, ChannelIdsAreDenseAndInvertible) {
  const Mesh2D m(3, 3);
  std::set<ChannelId> seen;
  for (NodeId u = 0; u < m.num_nodes(); ++u) {
    for (const NodeId v : m.neighbors(u)) {
      const ChannelId c = m.channel(u, v);
      ASSERT_NE(c, kInvalidChannel);
      EXPECT_TRUE(seen.insert(c).second) << "duplicate channel id";
      const ChannelEnds ends = m.channel_ends(c);
      EXPECT_EQ(ends.from, u);
      EXPECT_EQ(ends.to, v);
    }
  }
  EXPECT_EQ(seen.size(), m.num_channels());
  EXPECT_EQ(m.channel(0, 5), kInvalidChannel);  // non-edge
}

TEST(Mesh2D, ManhattanDistance) {
  const Mesh2D m(8, 8);
  EXPECT_EQ(m.distance(m.node(0, 0), m.node(7, 7)), 14u);
  EXPECT_EQ(m.distance(m.node(2, 3), m.node(2, 3)), 0u);
  EXPECT_EQ(m.distance(m.node(1, 5), m.node(4, 2)), 6u);
}

TEST(Mesh2D, ClosestOnShortestPathsClampsToBox) {
  const Mesh2D m(8, 8);
  // Bundle between (2,5) and (0,5) is the row segment x in [0,2], y = 5.
  EXPECT_EQ(m.closest_on_shortest_paths(m.node(2, 5), m.node(0, 5), m.node(2, 3)),
            m.node(2, 5));
  // Interior clamp: w inside the box projects to itself.
  EXPECT_EQ(m.closest_on_shortest_paths(m.node(0, 0), m.node(5, 5), m.node(3, 2)),
            m.node(3, 2));
  // The paper's Section 5.4 example: nearest node to [2,3] on paths
  // between [2,7] and [0,5] is [2,5].
  EXPECT_EQ(m.closest_on_shortest_paths(m.node(2, 7), m.node(0, 5), m.node(2, 3)),
            m.node(2, 5));
}

TEST(Mesh2D, ClosestOnShortestPathsIsOptimal) {
  // Exhaustive check on a small mesh: the clamp really is the closest node
  // of the shortest-path bundle.
  const Mesh2D m(5, 4);
  for (NodeId s = 0; s < m.num_nodes(); ++s) {
    for (NodeId t = 0; t < m.num_nodes(); ++t) {
      for (NodeId w = 0; w < m.num_nodes(); ++w) {
        const NodeId v = m.closest_on_shortest_paths(s, t, w);
        // v lies on a shortest path.
        EXPECT_EQ(m.distance(s, v) + m.distance(v, t), m.distance(s, t));
        // No bundle node is closer to w.
        for (NodeId x = 0; x < m.num_nodes(); ++x) {
          if (m.distance(s, x) + m.distance(x, t) == m.distance(s, t)) {
            EXPECT_LE(m.distance(w, v), m.distance(w, x));
          }
        }
      }
    }
  }
}

TEST(Mesh3D, BasicShape) {
  const Mesh3D m(3, 4, 3);
  EXPECT_EQ(m.num_nodes(), 36u);
  EXPECT_EQ(m.diameter(), 7u);
  EXPECT_EQ(m.max_degree(), 6u);  // interior node needs >= 3 layers per axis
  for (NodeId u = 0; u < m.num_nodes(); ++u) {
    EXPECT_EQ(m.node(m.coord(u)), u);
    for (const NodeId v : m.neighbors(u)) EXPECT_EQ(m.distance(u, v), 1u);
  }
}

TEST(Mesh3D, ClosestOnShortestPathsIsOptimal) {
  const Mesh3D m(3, 3, 2);
  for (NodeId s = 0; s < m.num_nodes(); ++s) {
    for (NodeId t = 0; t < m.num_nodes(); ++t) {
      for (NodeId w = 0; w < m.num_nodes(); ++w) {
        const NodeId v = m.closest_on_shortest_paths(s, t, w);
        EXPECT_EQ(m.distance(s, v) + m.distance(v, t), m.distance(s, t));
      }
    }
  }
}

TEST(Hypercube, BasicShape) {
  const Hypercube h(4);
  EXPECT_EQ(h.num_nodes(), 16u);
  EXPECT_EQ(h.num_channels(), 64u);  // 16 nodes * 4 out-channels
  EXPECT_EQ(h.diameter(), 4u);
  EXPECT_EQ(h.max_degree(), 4u);
}

TEST(Hypercube, HammingDistance) {
  const Hypercube h(5);
  EXPECT_EQ(h.distance(0b00000, 0b11111), 5u);
  EXPECT_EQ(h.distance(0b10101, 0b10101), 0u);
  EXPECT_EQ(h.distance(0b10100, 0b00101), 2u);
}

TEST(Hypercube, NeighborsDifferInOneBit) {
  const Hypercube h(4);
  for (NodeId u = 0; u < h.num_nodes(); ++u) {
    std::set<NodeId> nbrs(h.neighbors(u).begin(), h.neighbors(u).end());
    EXPECT_EQ(nbrs.size(), 4u);
    for (const NodeId v : nbrs) {
      EXPECT_EQ(std::popcount(u ^ v), 1);
    }
  }
}

TEST(Hypercube, ClosestOnShortestPathsBitMerge) {
  const Hypercube h(6);
  // Section 5.2: bit j of the answer is w's bit where s and t differ, s's
  // bit where they agree.
  const NodeId s = 0b000110, t = 0b010101, w = 0b000001;
  EXPECT_EQ(h.closest_on_shortest_paths(s, t, w), 0b000101u);
}

TEST(Hypercube, ClosestOnShortestPathsIsOptimal) {
  const Hypercube h(4);
  for (NodeId s = 0; s < h.num_nodes(); ++s) {
    for (NodeId t = 0; t < h.num_nodes(); ++t) {
      for (NodeId w = 0; w < h.num_nodes(); ++w) {
        const NodeId v = h.closest_on_shortest_paths(s, t, w);
        EXPECT_EQ(h.distance(s, v) + h.distance(v, t), h.distance(s, t));
        for (NodeId x = 0; x < h.num_nodes(); ++x) {
          if (h.distance(s, x) + h.distance(x, t) == h.distance(s, t)) {
            EXPECT_LE(h.distance(w, v), h.distance(w, x));
          }
        }
      }
    }
  }
}

TEST(KAryNCube, HypercubeIsSpecialCase) {
  const KAryNCube k2(2, 4);
  const Hypercube h(4);
  ASSERT_EQ(k2.num_nodes(), h.num_nodes());
  for (NodeId u = 0; u < h.num_nodes(); ++u) {
    std::set<NodeId> a(k2.neighbors(u).begin(), k2.neighbors(u).end());
    std::set<NodeId> b(h.neighbors(u).begin(), h.neighbors(u).end());
    EXPECT_EQ(a, b) << "node " << u;
    for (NodeId v = 0; v < h.num_nodes(); ++v) EXPECT_EQ(k2.distance(u, v), h.distance(u, v));
  }
}

TEST(KAryNCube, TorusWrapDistance) {
  const KAryNCube t(5, 2, /*wrap=*/true);
  EXPECT_EQ(t.num_nodes(), 25u);
  // digits (0,0) vs (4,4): wrap distance 1 per dimension.
  EXPECT_EQ(t.distance(0, 24), 2u);
  EXPECT_EQ(t.diameter(), 4u);
}

TEST(KAryNCube, NonWrapMatchesMesh) {
  const KAryNCube k(4, 2, /*wrap=*/false);
  const Mesh2D m(4, 4);
  ASSERT_EQ(k.num_nodes(), m.num_nodes());
  for (NodeId u = 0; u < m.num_nodes(); ++u) {
    for (NodeId v = 0; v < m.num_nodes(); ++v) {
      EXPECT_EQ(k.distance(u, v), m.distance(u, v));
    }
  }
}

TEST(KAryNCube, DigitManipulation) {
  const KAryNCube k(3, 3);
  const NodeId u = 1 * 9 + 2 * 3 + 0;  // digits (z=1, y=2, x=0)
  EXPECT_EQ(k.digit(u, 0), 0u);
  EXPECT_EQ(k.digit(u, 1), 2u);
  EXPECT_EQ(k.digit(u, 2), 1u);
  EXPECT_EQ(k.with_digit(u, 0, 2), u + 2);
}

TEST(Topology, InvalidConstruction) {
  EXPECT_THROW(Mesh2D(0, 4), std::invalid_argument);
  EXPECT_THROW(Mesh3D(2, 0, 2), std::invalid_argument);
  EXPECT_THROW(Hypercube(0), std::invalid_argument);
  EXPECT_THROW(Hypercube(25), std::invalid_argument);
  EXPECT_THROW(KAryNCube(1, 2), std::invalid_argument);
}

}  // namespace
