#include <gtest/gtest.h>

#include "core/multicast.hpp"
#include "core/sorted_mp.hpp"
#include "evsim/random.hpp"
#include "topology/hamiltonian.hpp"

namespace {

using namespace mcnet;
using mcast::MulticastRequest;
using mcast::MulticastRoute;
using topo::Hypercube;
using topo::Mesh2D;
using topo::NodeId;

TEST(SortedMp, PaperExampleMesh4x4) {
  // Section 5.4: K = {9, 0, 1, 6, 12} with source 9 yields the multicast
  // path (9, 13, 12, 8, 4, 0, 1, 2, 6).
  const Mesh2D mesh(4, 4);
  const ham::HamiltonCycle cycle = ham::mesh_comb_cycle(mesh);
  const MulticastRequest req{9, {0, 1, 6, 12}};
  const MulticastRoute route = sorted_mp_route(mesh, cycle, req);
  verify_route(mesh, req, route);
  ASSERT_EQ(route.paths.size(), 1u);
  EXPECT_EQ(route.paths[0].nodes,
            (std::vector<NodeId>{9, 13, 12, 8, 4, 0, 1, 2, 6}));
  EXPECT_EQ(route.traffic(), 8u);
}

TEST(SortedMp, PaperExampleCube4) {
  // Section 5.4: K = {0011(source), 0100, 0111, 1100, 1010, 1111}; the
  // sorted order by f is 0111(6), 0100(8), 1100(9), 1111(11), 1010(13).
  const Hypercube cube(4);
  const ham::HamiltonCycle cycle = ham::hypercube_gray_cycle(cube);
  const MulticastRequest req{0b0011, {0b0100, 0b0111, 0b1100, 0b1010, 0b1111}};
  const MulticastRoute route = sorted_mp_route(cube, cycle, req);
  verify_route(cube, req, route);
  ASSERT_EQ(route.paths.size(), 1u);
  const auto& nodes = route.paths[0].nodes;
  // Destinations are visited in key order.
  std::vector<NodeId> visited_dests;
  for (const std::uint32_t h : route.paths[0].delivery_hops) {
    visited_dests.push_back(nodes[h]);
  }
  EXPECT_EQ(visited_dests,
            (std::vector<NodeId>{0b0111, 0b0100, 0b1100, 0b1111, 0b1010}));
}

TEST(SortedMc, ReturnsToSource) {
  const Mesh2D mesh(4, 4);
  const ham::HamiltonCycle cycle = ham::mesh_comb_cycle(mesh);
  const MulticastRequest req{9, {0, 1, 6, 12}};
  const MulticastRoute route = sorted_mc_route(mesh, cycle, req);
  verify_route(mesh, req, route);
  ASSERT_EQ(route.paths.size(), 1u);
  EXPECT_EQ(route.paths[0].nodes.front(), 9u);
  EXPECT_EQ(route.paths[0].nodes.back(), 9u);
  EXPECT_GT(route.traffic(), sorted_mp_route(mesh, cycle, req).traffic());
}

TEST(SortedMp, PathKeysStrictlyIncrease) {
  // Theorem 5.1 / Fact 2: f strictly increases along the selected path.
  const Mesh2D mesh(8, 8);
  const ham::HamiltonCycle cycle = ham::mesh_comb_cycle(mesh);
  evsim::Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, 12)};
    const MulticastRoute route = sorted_mp_route(mesh, cycle, req);
    verify_route(mesh, req, route);
    const auto& nodes = route.paths[0].nodes;
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
      EXPECT_LT(cycle.key_from(src, nodes[i]), cycle.key_from(src, nodes[i + 1]));
    }
  }
}

TEST(SortedMp, SingleDestinationDegeneratesToPath) {
  const Hypercube cube(4);
  const ham::HamiltonCycle cycle = ham::hypercube_gray_cycle(cube);
  const MulticastRequest req{0, {1}};
  const MulticastRoute route = sorted_mp_route(cube, cycle, req);
  EXPECT_EQ(route.traffic(), 1u);
}

TEST(SortedMp, BoundedByCycleLength) {
  // The MP never exceeds one full tour of the Hamiltonian cycle.
  const Mesh2D mesh(6, 6);
  const ham::HamiltonCycle cycle = ham::mesh_comb_cycle(mesh);
  evsim::Rng rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 30);
    MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    EXPECT_LE(sorted_mp_route(mesh, cycle, req).traffic(), mesh.num_nodes() - 1);
    EXPECT_LE(sorted_mc_route(mesh, cycle, req).traffic(), mesh.num_nodes());
  }
}

// Parameterised property sweep over topology shapes: the sorted MP covers
// all destinations, is a connected walk, and every delivery is on-path.
class SortedMpMeshProperty : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SortedMpMeshProperty, ValidOnRandomSets) {
  const auto [w, h, k] = GetParam();
  const Mesh2D mesh(w, h);
  const ham::HamiltonCycle cycle = ham::mesh_comb_cycle(mesh);
  evsim::Rng rng(static_cast<std::uint64_t>(w * 10007 + h * 101 + k));
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t kk =
        std::min<std::uint32_t>(k, mesh.num_nodes() - 1);
    MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, kk)};
    const MulticastRoute mp = sorted_mp_route(mesh, cycle, req);
    verify_route(mesh, req, mp);
    const MulticastRoute mc = sorted_mc_route(mesh, cycle, req);
    verify_route(mesh, req, mc);
    EXPECT_EQ(mc.paths[0].nodes.back(), src);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SortedMpMeshProperty,
                         ::testing::Values(std::tuple{4, 4, 3}, std::tuple{4, 4, 10},
                                           std::tuple{8, 8, 5}, std::tuple{8, 8, 40},
                                           std::tuple{5, 4, 7}, std::tuple{2, 6, 4},
                                           std::tuple{16, 16, 60}));

class SortedMpCubeProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SortedMpCubeProperty, ValidOnRandomSets) {
  const auto [n, k] = GetParam();
  const Hypercube cube(n);
  const ham::HamiltonCycle cycle = ham::hypercube_gray_cycle(cube);
  evsim::Rng rng(static_cast<std::uint64_t>(n * 1000 + k));
  for (int trial = 0; trial < 20; ++trial) {
    const NodeId src = rng.uniform_int(0, cube.num_nodes() - 1);
    const std::uint32_t kk = std::min<std::uint32_t>(k, cube.num_nodes() - 1);
    MulticastRequest req{src, rng.sample_destinations(cube.num_nodes(), src, kk)};
    const MulticastRoute mp = sorted_mp_route(cube, cycle, req);
    verify_route(cube, req, mp);
    verify_route(cube, req, sorted_mc_route(cube, cycle, req));
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SortedMpCubeProperty,
                         ::testing::Values(std::tuple{3, 3}, std::tuple{4, 8},
                                           std::tuple{5, 15}, std::tuple{6, 30},
                                           std::tuple{8, 100}));

}  // namespace
