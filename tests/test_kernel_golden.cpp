// Golden event-order replay (Kernel suite): seeded dynamic runs recorded
// under the seed's binary-heap scheduler are committed in tests/golden/ and
// must replay bit-identically on the current kernel -- same injected and
// completed message counts, and bit-for-bit identical delivery / drop /
// completion records (times and latencies compared as exact double bit
// patterns via hexfloats).
//
// Records are canonicalised by sorting on (time bits, message, destination):
// within one timestamp the dispatch order of *independent* worms is a
// per-kernel property (tie-break = schedule order, deterministic for any
// given kernel, see docs/KERNEL.md) and is not pinned across kernel
// versions; the set of observable records at each timestamp is.  Replay
// determinism of the running kernel itself (exact unsorted hook sequence)
// is asserted separately by running every scenario twice.
//
// Regenerating (only when the *observable* contract legitimately changes):
//   MCNET_GOLDEN_RECORD=1 ./test_kernel_golden
// writes fresh golden files into the source tree.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "core/router.hpp"
#include "evsim/scheduler.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh2d.hpp"
#include "wormhole/network.hpp"
#include "wormhole/traffic.hpp"

#ifndef MCNET_GOLDEN_DIR
#define MCNET_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace mcnet;

std::uint64_t bits(double x) {
  std::uint64_t u = 0;
  std::memcpy(&u, &x, sizeof(u));
  return u;
}

struct DeliveryRec {
  std::uint64_t message;
  topo::NodeId dest;
  double time;
  double latency;
};
struct DropRec {
  std::uint64_t message;
  topo::NodeId dest;
  double time;
};
struct DoneRec {
  std::uint64_t message;
  double time;
  double latency;
};

struct Trace {
  std::vector<DeliveryRec> deliveries;
  std::vector<DropRec> drops;
  std::vector<DoneRec> done;
  std::uint64_t injected = 0;
  std::uint64_t completed = 0;
  std::uint64_t dispatched = 0;

  void canonicalise() {
    std::sort(deliveries.begin(), deliveries.end(), [](const auto& a, const auto& b) {
      return std::tuple(bits(a.time), a.message, a.dest) <
             std::tuple(bits(b.time), b.message, b.dest);
    });
    std::sort(drops.begin(), drops.end(), [](const auto& a, const auto& b) {
      return std::tuple(bits(a.time), a.message, a.dest) <
             std::tuple(bits(b.time), b.message, b.dest);
    });
    std::sort(done.begin(), done.end(), [](const auto& a, const auto& b) {
      return std::tuple(bits(a.time), a.message) < std::tuple(bits(b.time), b.message);
    });
  }
};

struct Scenario {
  const char* name;
  const topo::Topology& topology;
  mcast::Algorithm algorithm;
  double interarrival_s;
  std::uint32_t avg_destinations;
  std::uint64_t seed;
  double run_until_s;
  topo::ChannelId fail_channel;  // failed mid-run, recovered later
  double fail_at_s;
  double recover_at_s;
};

/// Run `s` to completion and return the observable trace (canonicalised)
/// plus the raw unsorted hook order in `raw` when non-null.
Trace run_scenario(const Scenario& s, std::vector<std::string>* raw = nullptr) {
  evsim::Scheduler sched;
  worm::Network network(s.topology, worm::WormholeParams{}, sched);
  const auto router = mcast::make_router(s.topology, s.algorithm);
  worm::TrafficConfig tc;
  tc.mean_interarrival_s = s.interarrival_s;
  tc.avg_destinations = s.avg_destinations;
  tc.seed = s.seed;
  worm::TrafficDriver driver(sched, network, tc, *router);

  Trace trace;
  char line[160];
  worm::NetworkHooks hooks;
  hooks.on_delivery = [&](std::uint64_t m, topo::NodeId d, double l) {
    trace.deliveries.push_back({m, d, sched.now(), l});
    if (raw != nullptr) {
      std::snprintf(line, sizeof(line), "D %" PRIu64 " %u %a %a", m, d, sched.now(), l);
      raw->emplace_back(line);
    }
  };
  hooks.on_drop = [&](std::uint64_t m, topo::NodeId d, double t) {
    trace.drops.push_back({m, d, t});
    if (raw != nullptr) {
      std::snprintf(line, sizeof(line), "X %" PRIu64 " %u %a", m, d, t);
      raw->emplace_back(line);
    }
  };
  hooks.on_message_done = [&](std::uint64_t m, double l) {
    trace.done.push_back({m, sched.now(), l});
    if (raw != nullptr) {
      std::snprintf(line, sizeof(line), "M %" PRIu64 " %a %a", m, sched.now(), l);
      raw->emplace_back(line);
    }
  };
  network.set_hooks(std::move(hooks));

  // A mid-run channel failure + recovery exercises the kill/cancellation
  // path: killed worms drop their undelivered destinations.
  sched.schedule_at(s.fail_at_s, [&] { network.fail_channel(s.fail_channel); });
  sched.schedule_at(s.recover_at_s, [&] { network.recover_channel(s.fail_channel); });

  driver.start();
  sched.run_until(s.run_until_s);
  driver.stop();
  sched.run();  // drain in-flight worms (traffic stopped: the queue is finite)

  trace.injected = network.messages_injected();
  trace.completed = network.messages_completed();
  trace.dispatched = sched.events_dispatched();
  trace.canonicalise();
  return trace;
}

std::string golden_path(const Scenario& s) {
  return std::string(MCNET_GOLDEN_DIR) + "/" + s.name + ".golden";
}

void write_golden(const Scenario& s, const Trace& t) {
  std::FILE* f = std::fopen(golden_path(s).c_str(), "w");
  ASSERT_NE(f, nullptr) << "cannot write " << golden_path(s);
  std::fprintf(f, "mcnet-golden-v1 %s\n", s.name);
  std::fprintf(f, "deliveries %zu\n", t.deliveries.size());
  for (const auto& d : t.deliveries) {
    std::fprintf(f, "D %" PRIu64 " %u %a %a\n", d.message, d.dest, d.time, d.latency);
  }
  std::fprintf(f, "drops %zu\n", t.drops.size());
  for (const auto& d : t.drops) {
    std::fprintf(f, "X %" PRIu64 " %u %a\n", d.message, d.dest, d.time);
  }
  std::fprintf(f, "done %zu\n", t.done.size());
  for (const auto& d : t.done) {
    std::fprintf(f, "M %" PRIu64 " %a %a\n", d.message, d.time, d.latency);
  }
  std::fprintf(f, "injected %" PRIu64 " completed %" PRIu64 " dispatched %" PRIu64 "\n",
               t.injected, t.completed, t.dispatched);
  std::fclose(f);
}

bool read_golden(const Scenario& s, Trace& t) {
  std::FILE* f = std::fopen(golden_path(s).c_str(), "r");
  if (f == nullptr) return false;
  char tag[32], name[64];
  if (std::fscanf(f, "%31s %63s", tag, name) != 2 ||
      std::string(tag) != "mcnet-golden-v1" || std::string(name) != s.name) {
    std::fclose(f);
    return false;
  }
  std::size_t n = 0;
  bool ok = std::fscanf(f, "%31s %zu", tag, &n) == 2;
  for (std::size_t i = 0; ok && i < n; ++i) {
    DeliveryRec d{};
    ok = std::fscanf(f, "%31s %" SCNu64 " %u %la %la", tag, &d.message, &d.dest, &d.time,
                     &d.latency) == 5;
    t.deliveries.push_back(d);
  }
  ok = ok && std::fscanf(f, "%31s %zu", tag, &n) == 2;
  for (std::size_t i = 0; ok && i < n; ++i) {
    DropRec d{};
    ok = std::fscanf(f, "%31s %" SCNu64 " %u %la", tag, &d.message, &d.dest, &d.time) == 4;
    t.drops.push_back(d);
  }
  ok = ok && std::fscanf(f, "%31s %zu", tag, &n) == 2;
  for (std::size_t i = 0; ok && i < n; ++i) {
    DoneRec d{};
    ok = std::fscanf(f, "%31s %" SCNu64 " %la %la", tag, &d.message, &d.time, &d.latency) == 4;
    t.done.push_back(d);
  }
  ok = ok && std::fscanf(f, "%31s %" SCNu64, tag, &t.injected) == 2 &&
       std::fscanf(f, "%31s %" SCNu64, tag, &t.completed) == 2 &&
       std::fscanf(f, "%31s %" SCNu64, tag, &t.dispatched) == 2;
  std::fclose(f);
  return ok;
}

void expect_trace_eq(const Trace& got, const Trace& want, const char* scenario) {
  EXPECT_EQ(got.injected, want.injected) << scenario;
  EXPECT_EQ(got.completed, want.completed) << scenario;
  ASSERT_EQ(got.deliveries.size(), want.deliveries.size()) << scenario;
  for (std::size_t i = 0; i < want.deliveries.size(); ++i) {
    const auto& g = got.deliveries[i];
    const auto& w = want.deliveries[i];
    ASSERT_TRUE(g.message == w.message && g.dest == w.dest && bits(g.time) == bits(w.time) &&
                bits(g.latency) == bits(w.latency))
        << scenario << " delivery " << i << ": got {msg " << g.message << ", dest " << g.dest
        << ", t " << g.time << ", lat " << g.latency << "} want {msg " << w.message
        << ", dest " << w.dest << ", t " << w.time << ", lat " << w.latency << "}";
  }
  ASSERT_EQ(got.drops.size(), want.drops.size()) << scenario;
  for (std::size_t i = 0; i < want.drops.size(); ++i) {
    const auto& g = got.drops[i];
    const auto& w = want.drops[i];
    ASSERT_TRUE(g.message == w.message && g.dest == w.dest && bits(g.time) == bits(w.time))
        << scenario << " drop " << i;
  }
  ASSERT_EQ(got.done.size(), want.done.size()) << scenario;
  for (std::size_t i = 0; i < want.done.size(); ++i) {
    const auto& g = got.done[i];
    const auto& w = want.done[i];
    ASSERT_TRUE(g.message == w.message && bits(g.time) == bits(w.time) &&
                bits(g.latency) == bits(w.latency))
        << scenario << " done " << i;
  }
  // The batched drain may only ever *reduce* the kernel event count
  // relative to the recorded heap run; a dispatch-count regression above
  // the golden figure means per-link events crept back in.
  EXPECT_LE(got.dispatched, want.dispatched) << scenario;
}

void check_scenario(const Scenario& s) {
  std::vector<std::string> raw1, raw2;
  const Trace got = run_scenario(s, &raw1);
  ASSERT_GT(got.deliveries.size(), 100u) << s.name << ": workload too small to pin anything";
  ASSERT_GT(got.drops.size(), 0u) << s.name << ": fault window killed no worm";

  // Replay determinism of the running kernel: the exact (unsorted) hook
  // sequence must be reproducible run-to-run.
  (void)run_scenario(s, &raw2);
  ASSERT_EQ(raw1, raw2) << s.name << ": kernel replay is not deterministic";

  if (std::getenv("MCNET_GOLDEN_RECORD") != nullptr) {
    write_golden(s, got);
    GTEST_SKIP() << "recorded " << golden_path(s);
  }
  Trace want;
  ASSERT_TRUE(read_golden(s, want)) << "missing/corrupt golden " << golden_path(s)
                                    << " (regenerate with MCNET_GOLDEN_RECORD=1)";
  expect_trace_eq(got, want, s.name);
}

TEST(KernelGolden, MeshDynamicRunReplaysBitIdentically) {
  const topo::Mesh2D mesh(6, 6);
  check_scenario(Scenario{"mesh6x6_dualpath", mesh, mcast::Algorithm::kDualPath,
                          /*interarrival=*/100e-6, /*avg_dests=*/4, /*seed=*/2026,
                          /*run_until=*/2e-3, /*fail_channel=*/3,
                          /*fail_at=*/0.5e-3, /*recover_at=*/0.9e-3});
}

TEST(KernelGolden, HypercubeDynamicRunReplaysBitIdentically) {
  const topo::Hypercube cube(4);
  check_scenario(Scenario{"cube4_multipath", cube, mcast::Algorithm::kMultiPath,
                          /*interarrival=*/80e-6, /*avg_dests=*/5, /*seed=*/909,
                          /*run_until=*/2e-3, /*fail_channel=*/5,
                          /*fail_at=*/0.4e-3, /*recover_at=*/0.8e-3});
}

}  // namespace
