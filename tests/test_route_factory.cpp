#include <gtest/gtest.h>

#include "core/route_factory.hpp"
#include "evsim/random.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;
using mcast::CubeRoutingSuite;
using mcast::MeshRoutingSuite;
using mcast::MulticastRequest;
using topo::Hypercube;
using topo::Mesh2D;
using topo::NodeId;

TEST(RouteFactory, AllMeshAlgorithmsProduceValidRoutes) {
  const Mesh2D mesh(8, 8);
  const MeshRoutingSuite suite(mesh);
  evsim::Rng rng(83);
  const Algorithm algos[] = {Algorithm::kMultiUnicast,    Algorithm::kBroadcast,
                             Algorithm::kSortedMP,        Algorithm::kSortedMC,
                             Algorithm::kGreedyST,        Algorithm::kXFirstMT,
                             Algorithm::kDividedGreedyMT, Algorithm::kDualPath,
                             Algorithm::kMultiPath,       Algorithm::kFixedPath,
                             Algorithm::kDCXFirstTree};
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 20);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    for (const Algorithm a : algos) {
      SCOPED_TRACE(std::string(mcast::algorithm_name(a)));
      verify_route(mesh, req, suite.route(a, req));
    }
  }
}

TEST(RouteFactory, AllCubeAlgorithmsProduceValidRoutes) {
  const Hypercube cube(6);
  const CubeRoutingSuite suite(cube);
  evsim::Rng rng(89);
  const Algorithm algos[] = {Algorithm::kMultiUnicast, Algorithm::kBroadcast,
                             Algorithm::kSortedMP,     Algorithm::kSortedMC,
                             Algorithm::kGreedyST,     Algorithm::kLenTree,
                             Algorithm::kDualPath,     Algorithm::kMultiPath,
                             Algorithm::kFixedPath,    Algorithm::kEcubeMT,
                             Algorithm::kBinomialBroadcast};
  for (int trial = 0; trial < 10; ++trial) {
    const NodeId src = rng.uniform_int(0, cube.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(1, 30);
    const MulticastRequest req{src, rng.sample_destinations(cube.num_nodes(), src, k)};
    for (const Algorithm a : algos) {
      SCOPED_TRACE(std::string(mcast::algorithm_name(a)));
      verify_route(cube, req, suite.route(a, req));
    }
  }
}

TEST(RouteFactory, InapplicableAlgorithmsThrow) {
  const Mesh2D mesh(4, 4);
  const MeshRoutingSuite msuite(mesh);
  EXPECT_THROW((void)msuite.route(Algorithm::kLenTree, {0, {1}}), std::invalid_argument);
  EXPECT_THROW((void)msuite.route(Algorithm::kEcubeMT, {0, {1}}), std::invalid_argument);

  const Hypercube cube(3);
  const CubeRoutingSuite csuite(cube);
  EXPECT_THROW((void)csuite.route(Algorithm::kXFirstMT, {0, {1}}), std::invalid_argument);
  EXPECT_THROW((void)csuite.route(Algorithm::kDCXFirstTree, {0, {1}}), std::invalid_argument);
}

TEST(RouteFactory, OddOddMeshHasNoCycleButOtherAlgorithmsWork) {
  const Mesh2D mesh(5, 5);
  const MeshRoutingSuite suite(mesh);
  EXPECT_FALSE(suite.cycle().has_value());
  EXPECT_THROW((void)suite.route(Algorithm::kSortedMP, {0, {1}}), std::logic_error);
  const MulticastRequest req{12, {0, 24, 7}};
  verify_route(mesh, req, suite.route(Algorithm::kDualPath, req));
  verify_route(mesh, req, suite.route(Algorithm::kGreedyST, req));
}

TEST(RouteFactory, AlgorithmNamesAreUnique) {
  std::set<std::string_view> names;
  for (int a = 0; a <= static_cast<int>(Algorithm::kBinomialBroadcast); ++a) {
    EXPECT_TRUE(names.insert(mcast::algorithm_name(static_cast<Algorithm>(a))).second);
  }
}

// Fig. 7.1 / 7.3 shape as a fast statistical property: on random 1-to-k
// multicasts the heuristics beat both baselines for moderate k.
TEST(RouteFactory, HeuristicsBeatBaselinesOnAverage) {
  const Mesh2D mesh(16, 16);
  const MeshRoutingSuite suite(mesh);
  evsim::Rng rng(97);
  std::uint64_t uni = 0, bc = 0, mp = 0, st = 0, dual = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, 60)};
    uni += suite.route(Algorithm::kMultiUnicast, req).traffic();
    bc += suite.route(Algorithm::kBroadcast, req).traffic();
    mp += suite.route(Algorithm::kSortedMP, req).traffic();
    st += suite.route(Algorithm::kGreedyST, req).traffic();
    dual += suite.route(Algorithm::kDualPath, req).traffic();
  }
  EXPECT_LT(mp, uni);
  EXPECT_LT(mp, bc);
  EXPECT_LT(st, uni);
  EXPECT_LT(st, mp);    // Steiner trees share more than a single path
  EXPECT_LT(dual, uni);
}

}  // namespace
