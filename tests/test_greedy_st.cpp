#include <gtest/gtest.h>

#include <set>

#include "cdg/analyzers.hpp"
#include "core/baselines.hpp"
#include "core/greedy_st.hpp"
#include "evsim/random.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh2d.hpp"

namespace {

using namespace mcnet;
using mcast::MulticastRequest;
using mcast::MulticastRoute;
using topo::Hypercube;
using topo::Mesh2D;
using topo::NodeId;

MulticastRoute run_mesh(const Mesh2D& mesh, const MulticastRequest& req) {
  return greedy_st_route(
      mesh, cdg::xfirst_routing(mesh),
      [&mesh](NodeId s, NodeId t, NodeId w) { return mesh.closest_on_shortest_paths(s, t, w); },
      req);
}

MulticastRoute run_cube(const Hypercube& cube, const MulticastRequest& req) {
  return greedy_st_route(
      cube, cdg::ecube_routing(cube),
      [&cube](NodeId s, NodeId t, NodeId w) { return cube.closest_on_shortest_paths(s, t, w); },
      req);
}

TEST(GreedySt, PaperExampleMesh8x8) {
  // Section 5.4: source [2,7], destinations [0,5], [2,3], [4,1], [6,3],
  // [7,4].  The resulting Steiner tree (Fig. 5.9) uses the virtual edges
  // ([2,7],[2,5]), ([2,5],[0,5]), ([2,5],[2,3]), ([2,3],[4,3]),
  // ([4,3],[4,1]), ([4,3],[6,3]), ([6,3],[7,4]) -- total length
  // 2+2+2+2+2+2+2 = 14 channels.
  const Mesh2D mesh(8, 8);
  const MulticastRequest req{
      mesh.node(2, 7),
      {mesh.node(0, 5), mesh.node(2, 3), mesh.node(4, 1), mesh.node(6, 3), mesh.node(7, 4)}};
  const MulticastRoute route = run_mesh(mesh, req);
  verify_route(mesh, req, route);
  EXPECT_EQ(route.traffic(), 14u);
  // The tree branches at [2,5]: that node must appear as a link endpoint.
  std::set<NodeId> touched;
  for (const auto& l : route.trees[0].links) touched.insert(l.to);
  EXPECT_TRUE(touched.contains(mesh.node(2, 5)));
  EXPECT_TRUE(touched.contains(mesh.node(4, 3)));
}

TEST(GreedySt, PaperExampleCube6) {
  // Section 5.4: source 000110; destinations 010101, 000001, 001101,
  // 101001, 110001 (Fig. 5.10).
  const Hypercube cube(6);
  const MulticastRequest req{0b000110,
                             {0b010101, 0b000001, 0b001101, 0b101001, 0b110001}};
  const MulticastRoute route = run_cube(cube, req);
  verify_route(cube, req, route);
  // The first attachment point is 000101 (nearest to 000001 on the bundle
  // between source and 010101).
  std::set<NodeId> touched;
  for (const auto& l : route.trees[0].links) touched.insert(l.to);
  EXPECT_TRUE(touched.contains(0b000101u));
  // A Steiner tree can never beat the trivial lower bound of max distance,
  // nor lose to multi-unicast.
  const auto unicast = cdg::ecube_routing(cube);
  EXPECT_LE(route.traffic(), multi_unicast_route(cube, unicast, req).traffic());
}

TEST(GreedySt, SingleDestinationIsShortestPath) {
  const Mesh2D mesh(8, 8);
  const MulticastRequest req{mesh.node(1, 1), {mesh.node(6, 4)}};
  const MulticastRoute route = run_mesh(mesh, req);
  verify_route(mesh, req, route);
  EXPECT_EQ(route.traffic(), mesh.distance(req.source, req.destinations[0]));
}

TEST(GreedySt, NeverWorseThanMultiUnicast) {
  // The greedy ST exists to reduce traffic; on random sets it must never
  // exceed the multi-unicast baseline (every subtree path is shortest and
  // shared prefixes only help).
  const Mesh2D mesh(16, 16);
  const auto unicast = cdg::xfirst_routing(mesh);
  evsim::Rng rng(17);
  for (int trial = 0; trial < 40; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(2, 30);
    MulticastRequest req{src, rng.sample_destinations(mesh.num_nodes(), src, k)};
    const MulticastRoute st = run_mesh(mesh, req);
    verify_route(mesh, req, st);
    EXPECT_LE(st.traffic(), multi_unicast_route(mesh, unicast, req).traffic());
    // Lower bound: at least the distance to the farthest destination.
    std::uint32_t far = 0;
    for (const NodeId d : req.destinations) far = std::max(far, mesh.distance(src, d));
    EXPECT_GE(st.traffic(), far);
  }
}

TEST(GreedySt, TreeIsConnectedAndAcyclicInTraffic) {
  // Each link's parent precedes it, so the route is a connected tree whose
  // traffic equals its link count; verify_route checks structure, here we
  // check no node is entered twice per branch chain (no immediate cycles).
  const Hypercube cube(6);
  evsim::Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    const NodeId src = rng.uniform_int(0, cube.num_nodes() - 1);
    const std::uint32_t k = rng.uniform_int(2, 20);
    MulticastRequest req{src, rng.sample_destinations(cube.num_nodes(), src, k)};
    const MulticastRoute st = run_cube(cube, req);
    verify_route(cube, req, st);
    EXPECT_EQ(st.traffic(), st.trees[0].links.size());
  }
}

class GreedyStMeshSweep : public ::testing::TestWithParam<int> {};

TEST_P(GreedyStMeshSweep, ValidAcrossDestinationCounts) {
  const int k = GetParam();
  const Mesh2D mesh(8, 8);
  evsim::Rng rng(static_cast<std::uint64_t>(k) * 7919);
  for (int trial = 0; trial < 15; ++trial) {
    const NodeId src = rng.uniform_int(0, mesh.num_nodes() - 1);
    MulticastRequest req{
        src, rng.sample_destinations(mesh.num_nodes(), src,
                                     std::min<std::uint32_t>(k, mesh.num_nodes() - 1))};
    verify_route(mesh, req, run_mesh(mesh, req));
  }
}

INSTANTIATE_TEST_SUITE_P(DestCounts, GreedyStMeshSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 63));

}  // namespace
