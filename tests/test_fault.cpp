// Fault subsystem: FaultState semantics, deterministic FaultPlan sampling,
// scheduler-driven injection, failure-aware routing and its cache
// invalidation, plus a seeded fuzz pass asserting the two core invariants:
// routes never traverse failed hardware, and unreachable detection matches
// BFS reachability exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <deque>
#include <set>
#include <thread>

#include "core/route_factory.hpp"
#include "evsim/random.hpp"
#include "evsim/scheduler.hpp"
#include "fault/fault_injector.hpp"
#include "fault/fault_plan.hpp"
#include "fault/fault_router.hpp"
#include "fault/fault_state.hpp"
#include "topology/hypercube.hpp"
#include "topology/mesh2d.hpp"
#include "wormhole/network.hpp"

namespace {

using namespace mcnet;
using mcast::Algorithm;

TEST(FaultState, EpochAdvancesOnChangeOnly) {
  const topo::Mesh2D mesh(3, 3);
  fault::FaultState faults(mesh);
  EXPECT_TRUE(faults.healthy());
  EXPECT_EQ(faults.epoch(), 0u);

  const topo::ChannelId c = mesh.channel(0, 1);
  EXPECT_TRUE(faults.fail_channel(c));
  EXPECT_EQ(faults.epoch(), 1u);
  EXPECT_FALSE(faults.fail_channel(c));  // idempotent: no epoch bump
  EXPECT_EQ(faults.epoch(), 1u);
  EXPECT_TRUE(faults.channel_failed(c));
  EXPECT_FALSE(faults.channel_usable(c));
  EXPECT_FALSE(faults.healthy());

  EXPECT_TRUE(faults.recover_channel(c));
  EXPECT_EQ(faults.epoch(), 2u);
  EXPECT_FALSE(faults.recover_channel(c));
  EXPECT_TRUE(faults.healthy());
}

TEST(FaultState, NodeFailureDisablesIncidentChannelsExactly) {
  const topo::Mesh2D mesh(3, 3);
  fault::FaultState faults(mesh);
  const topo::NodeId centre = 4;  // the middle of the 3x3 mesh
  EXPECT_TRUE(faults.fail_node(centre));
  for (const topo::NodeId v : mesh.neighbors(centre)) {
    EXPECT_FALSE(faults.channel_usable(mesh.channel(centre, v)));
    EXPECT_FALSE(faults.channel_usable(mesh.channel(v, centre)));
    // The channels themselves are not marked failed: recovery is exact.
    EXPECT_FALSE(faults.channel_failed(mesh.channel(centre, v)));
  }
  EXPECT_TRUE(faults.channel_usable(mesh.channel(0, 1)));
  EXPECT_TRUE(faults.recover_node(centre));
  EXPECT_TRUE(faults.healthy());
  for (const topo::NodeId v : mesh.neighbors(centre)) {
    EXPECT_TRUE(faults.channel_usable(mesh.channel(centre, v)));
  }
}

TEST(FaultState, ReachabilityRespectsCuts) {
  // 3x3 mesh: isolate node 0 by cutting both its links.
  const topo::Mesh2D mesh(3, 3);
  fault::FaultState faults(mesh);
  faults.fail_channel(mesh.channel(0, 1));
  faults.fail_channel(mesh.channel(1, 0));
  faults.fail_channel(mesh.channel(0, 3));
  faults.fail_channel(mesh.channel(3, 0));

  const auto from1 = faults.reachable_from(1);
  EXPECT_EQ(from1[0], 0);
  for (topo::NodeId n = 1; n < 9; ++n) EXPECT_NE(from1[n], 0) << "node " << n;

  const auto from0 = faults.reachable_from(0);
  EXPECT_NE(from0[0], 0);  // reaches itself
  for (topo::NodeId n = 1; n < 9; ++n) EXPECT_EQ(from0[n], 0) << "node " << n;

  EXPECT_EQ(faults.unreachable_destinations(1, {0, 2, 5}),
            (std::vector<topo::NodeId>{0}));
}

TEST(FaultState, FailedSourceReachesNothing) {
  const topo::Mesh2D mesh(3, 3);
  fault::FaultState faults(mesh);
  faults.fail_node(2);
  const auto seen = faults.reachable_from(2);
  for (topo::NodeId n = 0; n < 9; ++n) EXPECT_EQ(seen[n], 0);
}

TEST(FaultPlan, BuildersAndStableSort) {
  const topo::Mesh2D mesh(2, 2);
  fault::FaultPlan plan;
  plan.fail_link_at(2e-6, mesh, 0, 1)
      .recover_link_at(5e-6, mesh, 0, 1)
      .fail_node_at(1e-6, 3);
  plan.sort();
  ASSERT_EQ(plan.events.size(), 5u);
  EXPECT_EQ(plan.events.front().kind, fault::FaultKind::kNodeFail);
  EXPECT_LE(plan.events[1].time, plan.events[2].time);
  // Same time-stamp events keep builder order (both directions of the link).
  EXPECT_EQ(plan.events[1].id, mesh.channel(0, 1));
  EXPECT_EQ(plan.events[2].id, mesh.channel(1, 0));
  EXPECT_THROW(plan.fail_link_at(0.0, mesh, 0, 3), std::invalid_argument);
}

TEST(FaultPlan, RandomLinkFailuresAreSeedDeterministic) {
  const topo::Mesh2D mesh(4, 4);
  const auto a = fault::FaultPlan::random_link_failures(mesh, 0.25, 0.0, 1e-3, 42);
  const auto b = fault::FaultPlan::random_link_failures(mesh, 0.25, 0.0, 1e-3, 42);
  const auto c = fault::FaultPlan::random_link_failures(mesh, 0.25, 0.0, 1e-3, 43);
  EXPECT_EQ(a.events, b.events);
  EXPECT_NE(a.events, c.events);

  // A 4x4 mesh has 24 undirected links; 25% rounds down to 6 links = 12
  // directed channel failures, each within the window.
  EXPECT_EQ(a.events.size(), 12u);
  std::set<topo::ChannelId> channels;
  for (const auto& e : a.events) {
    EXPECT_EQ(e.kind, fault::FaultKind::kChannelFail);
    EXPECT_GE(e.time, 0.0);
    EXPECT_LT(e.time, 1e-3);
    channels.insert(e.id);
  }
  EXPECT_EQ(channels.size(), 12u);  // sampled without replacement
  EXPECT_THROW(fault::FaultPlan::random_link_failures(mesh, 1.5, 0.0, 1.0, 1),
               std::invalid_argument);
}

TEST(FaultInjector, AppliesPlanAtScheduledTimes) {
  const topo::Mesh2D mesh(3, 3);
  evsim::Scheduler sched;
  worm::Network network(mesh, worm::WormholeParams{}, sched);

  fault::FaultPlan plan;
  plan.fail_link_at(1e-6, mesh, 0, 1).recover_link_at(3e-6, mesh, 0, 1);
  fault::schedule_fault_plan(network, sched, plan);

  const topo::ChannelId c = mesh.channel(0, 1);
  bool checked_mid = false;
  sched.schedule_at(2e-6, [&] {
    checked_mid = true;
    EXPECT_TRUE(network.faults().channel_failed(c));
  });
  sched.run();
  EXPECT_TRUE(checked_mid);
  EXPECT_FALSE(network.faults().channel_failed(c));
  EXPECT_TRUE(network.faults().healthy());
  EXPECT_EQ(network.faults().epoch(), 4u);  // two fails + two recovers
}

TEST(FaultRouter, HealthyPassThroughMatchesInner) {
  const topo::Mesh2D mesh(4, 4);
  auto faults = std::make_shared<fault::FaultState>(mesh);
  const auto router = fault::make_fault_aware_router(mesh, Algorithm::kDualPath, faults);
  const auto plain = mcast::make_router(mesh, Algorithm::kDualPath);

  const mcast::MulticastRequest req{0, {5, 10, 15}};
  const auto result = router->route_with_faults(req);
  EXPECT_FALSE(result.degraded);
  EXPECT_TRUE(result.unreachable.empty());
  EXPECT_EQ(result.route, plain->route(req));
  mcast::verify_route(mesh, req, result.route);
}

TEST(FaultRouter, RoutesAroundFailedLink) {
  const topo::Mesh2D mesh(4, 4);
  auto faults = std::make_shared<fault::FaultState>(mesh);
  const auto router = fault::make_fault_aware_router(mesh, Algorithm::kDualPath, faults);

  // Cut the first hop the dual-path route would take out of node 0.
  faults->fail_channel(mesh.channel(0, 1));
  faults->fail_channel(mesh.channel(1, 0));

  const mcast::MulticastRequest req{0, {1, 5, 15}};
  const auto result = router->route_with_faults(req);
  EXPECT_TRUE(result.unreachable.empty());  // mesh is still connected
  EXPECT_TRUE(router->route_usable(result.route));
  mcast::verify_route(mesh, req, result.route);
}

TEST(FaultRouter, PartitionReportedNotRouted) {
  const topo::Mesh2D mesh(3, 3);
  auto faults = std::make_shared<fault::FaultState>(mesh);
  const auto router = fault::make_fault_aware_router(mesh, Algorithm::kSortedMP, faults);

  // Isolate node 8 (corner: links to 5 and 7).
  for (const topo::NodeId v : mesh.neighbors(8)) {
    faults->fail_channel(mesh.channel(8, v));
    faults->fail_channel(mesh.channel(v, 8));
  }

  const auto result = router->route_with_faults({0, {4, 8}});
  EXPECT_EQ(result.unreachable, (std::vector<topo::NodeId>{8}));
  EXPECT_TRUE(router->route_usable(result.route));
  mcast::verify_route(mesh, {0, {4}}, result.route);

  // The plain Router interface has no partial-delivery channel: it throws.
  EXPECT_THROW((void)router->route({0, {4, 8}}), std::runtime_error);
}

TEST(FaultRouter, EpochChangeInvalidatesCache) {
  const topo::Mesh2D mesh(4, 4);
  auto faults = std::make_shared<fault::FaultState>(mesh);
  const auto router = fault::make_fault_aware_router(mesh, Algorithm::kDualPath, faults);
  ASSERT_NE(router->cache(), nullptr);

  const mcast::MulticastRequest req{0, {5, 10}};
  (void)router->route(req);
  (void)router->route(req);
  EXPECT_EQ(router->cache()->stats().hits, 1u);
  EXPECT_GE(router->cache()->size(), 1u);

  // Any epoch change (even an irrelevant link) must flush the cache: the
  // cheap conservative rule that guarantees no stale route survives.
  faults->fail_channel(mesh.channel(15, 14));
  const auto result = router->route_with_faults(req);
  EXPECT_TRUE(router->route_usable(result.route));
  const auto stats = router->cache()->stats();
  EXPECT_EQ(stats.hits, 1u);  // no new hit: the entry was gone
  EXPECT_EQ(stats.misses, 2u);
}

TEST(FaultRouter, CacheStatsSnapshotIsConsistentUnderThreads) {
  // stats() must return one point-in-time snapshot: with every route() call
  // being a hit or a miss, hits + misses can never exceed the calls issued,
  // and afterwards must equal them exactly.  Run under TSan this also
  // exercises the counters-under-shard-lock claim.
  const topo::Mesh2D mesh(4, 4);
  auto faults = std::make_shared<fault::FaultState>(mesh);
  const auto router = fault::make_fault_aware_router(mesh, Algorithm::kDualPath, faults);

  constexpr int kThreads = 4;
  constexpr int kCallsPerThread = 400;
  std::atomic<bool> go{false};
  std::vector<std::thread> workers;
  workers.reserve(kThreads + 1);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      while (!go.load(std::memory_order_acquire)) {}
      evsim::Rng rng(1000 + static_cast<std::uint64_t>(t));
      for (int i = 0; i < kCallsPerThread; ++i) {
        const topo::NodeId src = rng.uniform_int(0, 15);
        (void)router->route({src, rng.sample_destinations(16, src, 3)});
      }
    });
  }
  workers.emplace_back([&] {
    while (!go.load(std::memory_order_acquire)) {}
    for (int i = 0; i < 200; ++i) {
      const auto s = router->cache()->stats();
      EXPECT_LE(s.hits + s.misses,
                static_cast<std::uint64_t>(kThreads) * kCallsPerThread);
    }
  });
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();

  const auto s = router->cache()->stats();
  EXPECT_EQ(s.hits + s.misses, static_cast<std::uint64_t>(kThreads) * kCallsPerThread);
}

// Independent BFS oracle for the fuzz pass (deliberately not reusing
// FaultState::reachable_from).
std::vector<std::uint8_t> bfs_oracle(const topo::Topology& t,
                                     const fault::FaultState& faults, topo::NodeId src) {
  std::vector<std::uint8_t> seen(t.num_nodes(), 0);
  if (faults.node_failed(src)) return seen;
  seen[src] = 1;
  std::deque<topo::NodeId> q{src};
  while (!q.empty()) {
    const topo::NodeId u = q.front();
    q.pop_front();
    for (const topo::NodeId v : t.neighbors(u)) {
      if (seen[v] || faults.node_failed(v) || faults.channel_failed(t.channel(u, v))) {
        continue;
      }
      seen[v] = 1;
      q.push_back(v);
    }
  }
  return seen;
}

void fuzz_topology(const topo::Topology& t, Algorithm algo, std::uint64_t seed) {
  evsim::Rng rng(seed);
  auto faults = std::make_shared<fault::FaultState>(t);
  const auto router = fault::make_fault_aware_router(t, algo, faults);
  const auto links = fault::undirected_links(t);

  for (int round = 0; round < 60; ++round) {
    // Mutate the failure set: mostly channel flips, occasionally node flips.
    for (int m = rng.uniform_int(0, 3); m-- > 0;) {
      if (rng.uniform(0.0, 1.0) < 0.8) {
        const auto [fwd, rev] = links[rng.uniform_int(
            0, static_cast<std::uint32_t>(links.size() - 1))];
        if (rng.uniform(0.0, 1.0) < 0.6) {
          faults->fail_channel(fwd);
          faults->fail_channel(rev);
        } else {
          faults->recover_channel(fwd);
          faults->recover_channel(rev);
        }
      } else {
        const topo::NodeId n = rng.uniform_int(0, t.num_nodes() - 1);
        if (rng.uniform(0.0, 1.0) < 0.5) {
          faults->fail_node(n);
        } else {
          faults->recover_node(n);
        }
      }
    }

    topo::NodeId src = rng.uniform_int(0, t.num_nodes() - 1);
    if (faults->node_failed(src)) continue;  // a dead node cannot send
    const std::uint32_t k = rng.uniform_int(1, std::min(6u, t.num_nodes() - 1));
    const mcast::MulticastRequest req{src, rng.sample_destinations(t.num_nodes(), src, k)};

    const auto result = router->route_with_faults(req);

    // Invariant (a): the produced route never touches failed hardware.
    EXPECT_TRUE(router->route_usable(result.route))
        << "round " << round << " seed " << seed;

    // Invariant (b): the unreachable set is exactly the BFS complement.
    const auto oracle = bfs_oracle(t, *faults, src);
    std::vector<topo::NodeId> expected;
    for (const topo::NodeId d : req.destinations) {
      if (!oracle[d]) expected.push_back(d);
    }
    EXPECT_EQ(result.unreachable, expected) << "round " << round << " seed " << seed;

    // And the route delivers exactly the reachable destinations.
    std::vector<topo::NodeId> reachable;
    for (const topo::NodeId d : req.destinations) {
      if (oracle[d]) reachable.push_back(d);
    }
    if (!reachable.empty()) {
      mcast::verify_route(t, {src, reachable}, result.route);
    } else {
      EXPECT_EQ(result.route.num_deliveries(), 0u);
    }
  }
}

TEST(FaultFuzz, MeshDualPathNeverRoutesOverFailures) {
  fuzz_topology(topo::Mesh2D(5, 4), Algorithm::kDualPath, 7);
  fuzz_topology(topo::Mesh2D(4, 4), Algorithm::kDualPath, 21);
}

TEST(FaultFuzz, MeshGreedyTreeNeverRoutesOverFailures) {
  fuzz_topology(topo::Mesh2D(4, 4), Algorithm::kGreedyST, 11);
}

TEST(FaultFuzz, HypercubeNeverRoutesOverFailures) {
  fuzz_topology(topo::Hypercube(4), Algorithm::kSortedMP, 13);
  fuzz_topology(topo::Hypercube(3), Algorithm::kLenTree, 17);
}

}  // namespace
